// Command paper regenerates every table and figure of the paper's
// evaluation section (Tables 2-6, Figures 8-10, the Section 4.5 naive
// binning numbers, and the Figure 1 background data) from the Monte
// Carlo populations and the CPU simulator.
//
// Usage:
//
//	paper [-chips N] [-seed S] [-instructions N] [-only table2,figure9,...]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"yieldcache"
	"yieldcache/internal/obs"
	"yieldcache/internal/report"
)

func main() {
	chips := flag.Int("chips", 2000, "Monte Carlo population size")
	seed := flag.Int64("seed", 2006, "master seed for process variation sampling")
	instr := flag.Int("instructions", 300_000, "instructions per benchmark run")
	only := flag.String("only", "", "comma-separated subset (table2..table6, figure1, figure8, figure9, figure10, naive, trend, economics, ssta)")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	run := obsFlags.Activate("paper")
	defer func() {
		if err := run.Close(); err != nil {
			slog.Error("writing observability outputs", "error", err)
		}
	}()
	run.Manifest.Set("chips", *chips).Set("seed", *seed).
		Set("instructions", *instr).Set("only", *only)

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }
	section := func(k string, f func()) {
		if !sel(k) {
			return
		}
		sp := obs.StartSpan(k)
		f()
		sp.End()
	}

	study := yieldcache.NewStudy(yieldcache.StudyConfig{Chips: *chips, Seed: *seed})
	perf := yieldcache.NewPerfEvaluator(yieldcache.PerfConfig{Instructions: *instr})

	fmt.Printf("Population: %d chips, seed %d; limits: delay %.1f ps (cycle %.1f ps), leakage %.2f mW\n\n",
		*chips, *seed, study.Limits.DelayPS, study.Limits.CycleTimePS(), study.Limits.LeakageW*1e3)

	section("figure1", func() {
		fmt.Println(figure1())
	})
	section("figure8", func() {
		fmt.Println(yieldcache.RenderFigure8(study.Figure8(), 72, 24))
	})
	section("table2", func() {
		bd := study.Table2()
		fmt.Println(yieldcache.RenderBreakdown("Table 2: sources of yield loss, regular power-down", bd))
		printYields(bd)
	})
	section("table3", func() {
		bd := study.Table3()
		fmt.Println(yieldcache.RenderBreakdown("Table 3: sources of yield loss, horizontal power-down", bd))
		printYields(bd)
	})
	section("table4", func() {
		fmt.Println(yieldcache.RenderTotals("Table 4: total losses, relaxed/strict, regular power-down", study.Table4()))
	})
	section("table5", func() {
		fmt.Println(yieldcache.RenderTotals("Table 5: total losses, relaxed/strict, horizontal power-down", study.Table5()))
	})
	section("table6", func() {
		fmt.Println(yieldcache.RenderTable6(study.Table6(perf)))
	})
	section("figure9", func() {
		fmt.Println(yieldcache.RenderFigure(perf.Figure9(), 50))
	})
	section("figure10", func() {
		fmt.Println(yieldcache.RenderFigure(perf.Figure10(), 50))
	})
	section("naive", func() {
		p1, p2 := perf.NaiveBinning()
		fmt.Printf("Naive binning (Section 4.5): +1 cycle %.2f%% (paper 6.42%%), +2 cycles %.2f%% (paper 12.62%%)\n\n",
			p1, p2)
	})
	section("trend", func() {
		rows, err := yieldcache.TechnologyTrend(*chips/2, *seed)
		if err != nil {
			slog.Error("technology trend", "error", err)
			os.Exit(1)
		}
		fmt.Println(yieldcache.RenderTrend(rows))
	})
	section("ssta", func() {
		fmt.Println(yieldcache.RenderSSTA(study.CompareSSTA()))
	})
	section("economics", func() {
		rows, err := study.Economics(perf, yieldcache.DefaultCostModel())
		if err != nil {
			slog.Error("economics", "error", err)
			os.Exit(1)
		}
		fmt.Println(yieldcache.RenderEconomics(rows))
	})
	if flag.NArg() > 0 {
		slog.Error("unexpected arguments", "args", flag.Args())
		os.Exit(2)
	}
}

func printYields(bd yieldcache.LossBreakdown) {
	fmt.Printf("base yield %.1f%%", bd.Yield(-1)*100)
	for i, s := range bd.Schemes {
		fmt.Printf("; %s yield %.1f%% (loss -%.1f%%)", s.Scheme, bd.Yield(i)*100, bd.LossReduction(i)*100)
	}
	fmt.Print("\n\n")
}

// figure1 prints the background yield-factor data of Figure 1
// (literature data from the paper's reference [18]; not a simulation
// output, included for completeness of the figure set).
func figure1() string {
	t := report.NewTable("Figure 1: yield factors by process technology (literature data [18])",
		"Node [um]", "Defect density [%]", "Lithography [%]", "Parametric [%]", "Yield [%]")
	rows := [][]interface{}{
		{"0.35", 3, 2, 1, 94},
		{"0.25", 4, 3, 3, 90},
		{"0.18", 5, 5, 8, 82},
		{"0.13", 6, 7, 17, 70},
		{"0.09", 7, 9, 32, 52},
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t.String()
}
