// Command yieldsim runs the Monte Carlo yield study on its own (no CPU
// simulation): it builds the chip population, derives the limits, prints
// the loss breakdowns for both cache organisations and the Figure 8
// scatter, and can emit the raw population as CSV for external tooling.
//
// Usage:
//
//	yieldsim [-chips N] [-seed S] [-constraints nominal|relaxed|strict] [-csv] [-save pop.gob]
//	         [-metrics-out m.json] [-trace-out t.json] [-manifest-out run.json] [-pprof addr]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"yieldcache"
	"yieldcache/internal/obs"
	"yieldcache/internal/report"
)

func main() {
	chips := flag.Int("chips", 2000, "Monte Carlo population size")
	seed := flag.Int64("seed", 2006, "master seed")
	consName := flag.String("constraints", "nominal", "yield constraints: nominal, relaxed or strict")
	csv := flag.Bool("csv", false, "emit the population (latency, leakage, classification) as CSV and exit")
	save := flag.String("save", "", "write the regular population to this file (gob) after building")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	run := obsFlags.Activate("yieldsim")
	defer func() {
		if err := run.Close(); err != nil {
			slog.Error("writing observability outputs", "error", err)
		}
	}()

	var cons yieldcache.Constraints
	switch *consName {
	case "nominal":
		cons = yieldcache.Nominal()
	case "relaxed":
		cons = yieldcache.Relaxed()
	case "strict":
		cons = yieldcache.Strict()
	default:
		slog.Error("unknown constraint set", "constraints", *consName,
			"want", "nominal, relaxed or strict")
		os.Exit(2)
	}
	run.Manifest.Set("chips", *chips).Set("seed", *seed).Set("constraints", *consName)

	study := yieldcache.NewStudy(yieldcache.StudyConfig{Chips: *chips, Seed: *seed, Constraints: &cons})
	run.Manifest.Set("limit_delay_ps", study.Limits.DelayPS).
		Set("limit_leakage_w", study.Limits.LeakageW)

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			slog.Error("saving population", "path", *save, "error", err)
			os.Exit(1)
		}
		if err := study.SavePopulation(f); err != nil {
			slog.Error("saving population", "path", *save, "error", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			slog.Error("saving population", "path", *save, "error", err)
			os.Exit(1)
		}
		slog.Info("population written", "path", *save, "chips", *chips, "seed", *seed)
	}

	if *csv {
		t := report.NewTable("", "chip", "latency_ps", "normalized_leakage", "classification")
		for i, p := range study.Figure8() {
			t.AddRow(i, fmt.Sprintf("%.2f", p.LatencyPS),
				fmt.Sprintf("%.4f", p.NormalizedLeakage), p.Reason.String())
		}
		fmt.Print(t.CSV())
		return
	}

	fmt.Printf("constraints: %s (delay mean+%.1f sigma, leakage %.0fx average)\n",
		cons.Name, cons.DelaySigmaK, cons.LeakageMult)
	fmt.Printf("limits: delay %.1f ps, leakage %.2f mW\n\n",
		study.Limits.DelayPS, study.Limits.LeakageW*1e3)

	bd := study.Table2()
	fmt.Println(yieldcache.RenderBreakdown("Loss breakdown, regular power-down", bd))
	fmt.Printf("base yield %.1f%%", bd.Yield(-1)*100)
	for i, s := range bd.Schemes {
		fmt.Printf("; %s %.1f%%", s.Scheme, bd.Yield(i)*100)
	}
	fmt.Print("\n\n")

	bd3 := study.Table3()
	fmt.Println(yieldcache.RenderBreakdown("Loss breakdown, horizontal power-down", bd3))
	fmt.Printf("base yield %.1f%%", bd3.Yield(-1)*100)
	for i, s := range bd3.Schemes {
		fmt.Printf("; %s %.1f%%", s.Scheme, bd3.Yield(i)*100)
	}
	fmt.Print("\n\n")

	fmt.Println(yieldcache.RenderFigure8(study.Figure8(), 72, 24))
}
