// Command yieldsim runs the Monte Carlo yield study on its own (no CPU
// simulation): it builds the chip population, derives the limits, prints
// the loss breakdowns for both cache organisations and the Figure 8
// scatter, and can emit the raw population as CSV for external tooling.
//
// Usage:
//
//	yieldsim [-chips N] [-seed S] [-constraints nominal|relaxed|strict] [-csv] [-save pop.gob]
//	         [-target-ci W] [-confidence C]
//	         [-metrics-out m.json] [-trace-out t.json] [-manifest-out run.json] [-pprof addr]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"yieldcache"
	"yieldcache/internal/obs"
	"yieldcache/internal/report"
	"yieldcache/internal/stats"
)

func main() {
	chips := flag.Int("chips", 2000, "Monte Carlo population size")
	seed := flag.Int64("seed", 2006, "master seed")
	consName := flag.String("constraints", "nominal", "yield constraints: nominal, relaxed or strict")
	csv := flag.Bool("csv", false, "emit the population (latency, leakage, classification) as CSV and exit")
	save := flag.String("save", "", "write the regular population to this file (gob) after building")
	targetCI := flag.Float64("target-ci", 0,
		"stop sampling early once the base-yield interval half-width reaches this target (0 < W < 1; 0 builds the full population)")
	confidence := flag.Float64("confidence", 0.95,
		"confidence level of the yield intervals printed with every table and of -target-ci")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if *targetCI < 0 || *targetCI >= 1 {
		slog.Error("-target-ci out of range", "target_ci", *targetCI, "want", "0 <= W < 1")
		os.Exit(2)
	}
	if *confidence <= 0 || *confidence >= 1 {
		slog.Error("-confidence out of range", "confidence", *confidence, "want", "0 < C < 1")
		os.Exit(2)
	}

	run := obsFlags.Activate("yieldsim")
	defer func() {
		if err := run.Close(); err != nil {
			slog.Error("writing observability outputs", "error", err)
		}
	}()

	var cons yieldcache.Constraints
	switch *consName {
	case "nominal":
		cons = yieldcache.Nominal()
	case "relaxed":
		cons = yieldcache.Relaxed()
	case "strict":
		cons = yieldcache.Strict()
	default:
		slog.Error("unknown constraint set", "constraints", *consName,
			"want", "nominal, relaxed or strict")
		os.Exit(2)
	}
	run.Manifest.Set("chips", *chips).Set("seed", *seed).Set("constraints", *consName)

	scfg := yieldcache.StudyConfig{Chips: *chips, Seed: *seed, Constraints: &cons}
	if *targetCI > 0 {
		// Check the stopping rule on (nearly) every chip: CLI builds
		// finish in well under the default 250ms snapshot interval.
		scfg.Estimate = &yieldcache.EstimateConfig{
			Interval:      time.Nanosecond,
			TargetCIWidth: *targetCI,
			Confidence:    *confidence,
		}
		run.Manifest.Set("target_ci_width", *targetCI).Set("confidence", *confidence)
	}
	study := yieldcache.NewStudy(scfg)
	run.Manifest.Set("limit_delay_ps", study.Limits.DelayPS).
		Set("limit_leakage_w", study.Limits.LeakageW)
	if est := study.Estimate; est != nil && est.EarlyStop {
		run.Manifest.Set("early_stop", true).Set("chips_measured", est.Chips)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			slog.Error("saving population", "path", *save, "error", err)
			os.Exit(1)
		}
		if err := study.SavePopulation(f); err != nil {
			slog.Error("saving population", "path", *save, "error", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			slog.Error("saving population", "path", *save, "error", err)
			os.Exit(1)
		}
		slog.Info("population written", "path", *save, "chips", *chips, "seed", *seed)
	}

	if *csv {
		t := report.NewTable("", "chip", "latency_ps", "normalized_leakage", "classification")
		for i, p := range study.Figure8() {
			t.AddRow(i, fmt.Sprintf("%.2f", p.LatencyPS),
				fmt.Sprintf("%.4f", p.NormalizedLeakage), p.Reason.String())
		}
		fmt.Print(t.CSV())
		return
	}

	fmt.Printf("constraints: %s (delay mean+%.1f sigma, leakage %.0fx average)\n",
		cons.Name, cons.DelaySigmaK, cons.LeakageMult)
	fmt.Printf("limits: delay %.1f ps, leakage %.2f mW\n",
		study.Limits.DelayPS, study.Limits.LeakageW*1e3)
	if est := study.Estimate; est != nil && est.EarlyStop {
		fmt.Printf("precision: ±%.3f at %.0f%% confidence reached after %d of %d chips (early stop)\n",
			*targetCI, *confidence*100, est.Chips, *chips)
	}
	fmt.Println()

	// ciHalf is the half-width of the Wilson score interval on a yield
	// with k sellable chips out of n, at the -confidence level.
	ciHalf := func(k, n int) float64 {
		lo, hi := stats.WilsonInterval(int64(k), int64(n), *confidence)
		return (hi - lo) / 2
	}
	printYields := func(bd yieldcache.LossBreakdown) {
		fmt.Printf("base yield %.1f%% ±%.1f%%", bd.Yield(-1)*100, ciHalf(bd.N-bd.BaseTotal, bd.N)*100)
		for i, s := range bd.Schemes {
			fmt.Printf("; %s %.1f%% ±%.1f%%", s.Scheme, bd.Yield(i)*100, ciHalf(bd.N-s.Total, bd.N)*100)
		}
		fmt.Print("\n\n")
	}

	bd := study.Table2()
	fmt.Println(yieldcache.RenderBreakdown("Loss breakdown, regular power-down", bd))
	printYields(bd)

	bd3 := study.Table3()
	fmt.Println(yieldcache.RenderBreakdown("Loss breakdown, horizontal power-down", bd3))
	printYields(bd3)

	fmt.Println(yieldcache.RenderFigure8(study.Figure8(), 72, 24))
}
