// Command cpusim runs one synthetic SPEC2000 benchmark (or the whole
// suite) on the out-of-order processor model with a chosen L1 data cache
// configuration and prints CPI and cache statistics.
//
// Usage:
//
//	cpusim [-bench name|all] [-n instructions] [-ways 4,4,4,5] [-hregion -1] [-predict 4] [-seed 1]
//
// Way latencies are comma-separated cycle counts, 0 disabling a way.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"yieldcache/internal/cpu"
	"yieldcache/internal/obs"
	"yieldcache/internal/report"
	"yieldcache/internal/workload"
)

func main() {
	bench := flag.String("bench", "all", "benchmark name or 'all'")
	n := flag.Int("n", 1_000_000, "instructions to simulate")
	ways := flag.String("ways", "", "per-way hit latencies, e.g. 5,4,4,4 (0 disables a way; empty = uniform 4)")
	hregion := flag.Int("hregion", -1, "disabled horizontal region (-1 = none)")
	predict := flag.Int("predict", 0, "scheduler's assumed load-hit latency (0 = default 4)")
	seed := flag.Int64("seed", 1, "trace generator seed")
	detailed := flag.Bool("detailed", false, "use the per-cycle (event-driven) core instead of the one-pass timing model")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	run := obsFlags.Activate("cpusim")
	defer func() {
		if err := run.Close(); err != nil {
			slog.Error("writing observability outputs", "error", err)
		}
	}()
	run.Manifest.Set("bench", *bench).Set("n", *n).Set("ways", *ways).
		Set("hregion", *hregion).Set("predict", *predict).
		Set("seed", *seed).Set("detailed", *detailed)

	var wayCycles []int
	if *ways != "" {
		for _, part := range strings.Split(*ways, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				slog.Error("bad -ways value", "value", part, "error", err)
				os.Exit(2)
			}
			wayCycles = append(wayCycles, v)
		}
	}
	cfg := cpu.DefaultConfig().WithL1D(wayCycles, *hregion, *predict)

	var profiles []workload.Profile
	if *bench == "all" {
		profiles = workload.SPEC2000()
	} else {
		p, ok := workload.ByName(*bench)
		if !ok {
			slog.Error("unknown benchmark", "bench", *bench,
				"have", strings.Join(workload.Names(), ", "))
			os.Exit(2)
		}
		profiles = []workload.Profile{p}
	}

	t := report.NewTable(
		fmt.Sprintf("%d instructions/benchmark, L1D ways=%v hregion=%d predict=%d",
			*n, cfg.L1D.WayCycles, cfg.L1D.HRegionOff, cfg.PredictedLoadCycles),
		"benchmark", "CPI", "L1D miss", "slow hits", "L1I miss", "L2 miss", "replays", "bypass stalls", "mispredicts")
	for _, p := range profiles {
		sim := cpu.Run
		if *detailed {
			sim = cpu.RunDetailed
		}
		sp := obs.StartSpan("bench " + p.Name)
		r := sim(workload.NewGenerator(p, *seed), *n, cfg)
		sp.End()
		missRate := 0.0
		if r.L1DAccesses > 0 {
			missRate = float64(r.L1DMisses) / float64(r.L1DAccesses)
		}
		t.AddRow(p.Name, fmt.Sprintf("%.3f", r.CPI), fmt.Sprintf("%.4f", missRate),
			r.L1DSlowHits, r.L1IMisses, r.L2Misses, r.Replays, r.BypassStalls, r.Mispredicts)
	}
	fmt.Println(t.String())
}
