// Command yieldd serves the yield study as a long-running HTTP JSON
// service: clients POST study parameters (seed, chips, constraints,
// scheme set) and get back loss breakdowns, constraint totals and
// scatter data. Identical requests share one Monte Carlo build
// (singleflight) and later ones are answered from the result cache;
// when the bounded build queue fills, requests are shed with 429 and a
// Retry-After estimate. Metrics are always on, served at /metrics in
// Prometheus text form. docs/API.md is the endpoint reference.
//
// Usage:
//
//	yieldd [-addr :8080] [-workers N] [-queue N] [-cache N] [-max-chips N]
//	       [-timeout D] [-max-timeout D] [-drain D]
//
// On SIGINT/SIGTERM the server stops admitting builds, drains in-flight
// jobs for up to the -drain budget, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"yieldcache/internal/obs"
	"yieldcache/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent study builds (each build parallelises across all CPUs)")
	queue := flag.Int("queue", 8, "builds allowed to queue beyond the running ones before shedding with 429")
	cache := flag.Int("cache", 128, "result-cache capacity in studies (negative disables caching)")
	maxChips := flag.Int("max-chips", 20000, "largest accepted Monte Carlo population")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request build timeout (when the request has no timeout_ms)")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "upper clamp on request timeouts")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for draining in-flight builds")
	flag.Parse()

	// A server wants its metrics live at /metrics, not written on exit:
	// enable the registry unconditionally instead of going through the
	// batch CLIs' obs.Flags bundle.
	obs.Enable()

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		MaxChips:       *maxChips,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("yieldd: listening on %s (workers %d, queue %d, cache %d)",
		*addr, *workers, *queue, *cache)

	select {
	case err := <-errCh:
		log.Fatalf("yieldd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("yieldd: draining in-flight builds (budget %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("yieldd: drain incomplete, builds cancelled: %v", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("yieldd: shutdown: %v", err)
	}
	log.Printf("yieldd: stopped")
}
