// Command yieldd serves the yield study as a long-running HTTP JSON
// service: clients POST study parameters (seed, chips, constraints,
// scheme set) and get back loss breakdowns, constraint totals and
// scatter data. POST /v1/sweep explores whole design-space grids
// (technology axes × cache geometries × constraint sets) in one job,
// reusing correlated Monte Carlo draws across neighbouring configs and
// reducing the results to Pareto frontiers; -max-sweep-configs bounds
// the grid a single request may resolve to. Identical requests share
// one Monte Carlo build (singleflight) and later ones are answered
// from the result cache; when the bounded build queue fills, requests
// are shed with 429 and a Retry-After estimate. Every admitted build
// gets its own telemetry scope: live state, progress and ETA at
// /v1/jobs/{id}, a per-job
// Chrome trace at /v1/jobs/{id}/trace, live telemetry streamed as
// Server-Sent Events at /v1/jobs/{id}/events and /v1/events, and
// structured logs correlated by job id. A background flight recorder
// samples the runtime (goroutines, heap, GC, worker occupancy) into a
// ring served at /v1/runtime/history. Metrics are always on, served at
// /metrics in Prometheus text form. docs/API.md is the endpoint
// reference.
//
// With -store file, job records, cached results, Idempotency-Key
// bindings and build checkpoints are persisted under -data-dir in a
// CRC-checked write-ahead log plus snapshot files; after a crash the
// next start replays the log and resumes interrupted builds from their
// last checkpoint under the same job ids. Graceful shutdown records
// terminal states, so only an unclean death triggers resume. The
// YIELDD_CHAOS environment variable (e.g.
// "err=0.05,lat=2ms,partial=0.01,seed=7") injects storage faults for
// recovery testing.
//
// Usage:
//
//	yieldd [-addr :8080] [-workers N] [-queue N] [-cache N] [-max-chips N]
//	       [-max-sweep-configs N] [-timeout D] [-max-timeout D] [-drain D]
//	       [-job-history N] [-stream-interval D] [-event-buffer N]
//	       [-flight-interval D] [-flight-samples N] [-log-format text|json]
//	       [-store none|mem|file] [-data-dir DIR] [-checkpoint-interval D]
//
// On SIGINT/SIGTERM the server stops admitting builds, ends live event
// streams, drains in-flight jobs for up to the -drain budget, then
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"yieldcache/internal/obs"
	"yieldcache/internal/server"
	"yieldcache/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent study builds (each build parallelises across all CPUs)")
	queue := flag.Int("queue", 8, "builds allowed to queue beyond the running ones before shedding with 429")
	cache := flag.Int("cache", 128, "result-cache capacity in studies (negative disables caching)")
	maxChips := flag.Int("max-chips", 20000, "largest accepted Monte Carlo population")
	maxSweepConfigs := flag.Int("max-sweep-configs", 256, "largest config grid a single /v1/sweep request may resolve to")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request build timeout (when the request has no timeout_ms)")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "upper clamp on request timeouts")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for draining in-flight builds")
	jobHistory := flag.Int("job-history", 64, "finished jobs kept inspectable via /v1/jobs (evicted oldest-first)")
	streamInterval := flag.Duration("stream-interval", 250*time.Millisecond, "minimum interval between job_progress events per SSE stream")
	eventBuffer := flag.Int("event-buffer", 64, "per-SSE-connection event buffer; clients lagging a full buffer are disconnected")
	flightInterval := flag.Duration("flight-interval", time.Second, "runtime flight-recorder sampling period (negative disables)")
	flightSamples := flag.Int("flight-samples", 512, "flight-recorder ring capacity served at /v1/runtime/history")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	storeKind := flag.String("store", "none", "durable job/result store: none, mem (process-lifetime, for testing) or file (WAL under -data-dir)")
	dataDir := flag.String("data-dir", "yieldd-data", "directory for the file store's write-ahead log and snapshots")
	checkpointInterval := flag.Duration("checkpoint-interval", 2*time.Second, "interval between build checkpoints when a store is attached (negative disables checkpointing)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "yieldd: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	// A server wants its metrics live at /metrics, not written on exit:
	// enable the registry unconditionally instead of going through the
	// batch CLIs' obs.Flags bundle.
	obs.Enable()

	var st store.Store
	switch *storeKind {
	case "none":
	case "mem":
		st = store.NewMem()
	case "file":
		fs, err := store.OpenFile(*dataDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yieldd: opening store in %s: %v\n", *dataDir, err)
			os.Exit(1)
		}
		st = fs
		logger.Info("file store open", "data_dir", *dataDir)
	default:
		fmt.Fprintf(os.Stderr, "yieldd: unknown -store %q (want none, mem or file)\n", *storeKind)
		os.Exit(2)
	}
	if st != nil {
		chaos, err := store.ChaosFromEnv()
		if err != nil {
			fmt.Fprintf(os.Stderr, "yieldd: YIELDD_CHAOS: %v\n", err)
			os.Exit(2)
		}
		if chaos.Enabled() {
			logger.Warn("storage fault injection armed", "config", os.Getenv("YIELDD_CHAOS"))
			st = store.WithChaos(st, chaos)
		}
	}

	srv := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		MaxChips:        *maxChips,
		MaxSweepConfigs: *maxSweepConfigs,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		JobHistory:      *jobHistory,
		StreamInterval:  *streamInterval,
		EventBuffer:     *eventBuffer,
		FlightInterval:  *flightInterval,
		FlightSamples:   *flightSamples,
		Logger:          logger,

		Store:              st,
		CheckpointInterval: *checkpointInterval,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("yieldd listening",
		"addr", *addr, "workers", *workers, "queue", *queue, "cache", *cache,
		"job_history", *jobHistory)

	select {
	case err := <-errCh:
		logger.Error("yieldd server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("draining in-flight builds", "budget", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Warn("drain incomplete, builds cancelled", "error", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "error", err)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			logger.Warn("store close", "error", err)
		}
	}
	logger.Info("yieldd stopped")
}
