// Command yieldd serves the yield study as a long-running HTTP JSON
// service: clients POST study parameters (seed, chips, constraints,
// scheme set) and get back loss breakdowns, constraint totals and
// scatter data. Identical requests share one Monte Carlo build
// (singleflight) and later ones are answered from the result cache;
// when the bounded build queue fills, requests are shed with 429 and a
// Retry-After estimate. Every admitted build gets its own telemetry
// scope: live state, progress and ETA at /v1/jobs/{id}, a per-job
// Chrome trace at /v1/jobs/{id}/trace, live telemetry streamed as
// Server-Sent Events at /v1/jobs/{id}/events and /v1/events, and
// structured logs correlated by job id. A background flight recorder
// samples the runtime (goroutines, heap, GC, worker occupancy) into a
// ring served at /v1/runtime/history. Metrics are always on, served at
// /metrics in Prometheus text form. docs/API.md is the endpoint
// reference.
//
// Usage:
//
//	yieldd [-addr :8080] [-workers N] [-queue N] [-cache N] [-max-chips N]
//	       [-timeout D] [-max-timeout D] [-drain D] [-job-history N]
//	       [-stream-interval D] [-event-buffer N] [-flight-interval D]
//	       [-flight-samples N] [-log-format text|json]
//
// On SIGINT/SIGTERM the server stops admitting builds, ends live event
// streams, drains in-flight jobs for up to the -drain budget, then
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"yieldcache/internal/obs"
	"yieldcache/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent study builds (each build parallelises across all CPUs)")
	queue := flag.Int("queue", 8, "builds allowed to queue beyond the running ones before shedding with 429")
	cache := flag.Int("cache", 128, "result-cache capacity in studies (negative disables caching)")
	maxChips := flag.Int("max-chips", 20000, "largest accepted Monte Carlo population")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request build timeout (when the request has no timeout_ms)")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "upper clamp on request timeouts")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for draining in-flight builds")
	jobHistory := flag.Int("job-history", 64, "finished jobs kept inspectable via /v1/jobs (evicted oldest-first)")
	streamInterval := flag.Duration("stream-interval", 250*time.Millisecond, "minimum interval between job_progress events per SSE stream")
	eventBuffer := flag.Int("event-buffer", 64, "per-SSE-connection event buffer; clients lagging a full buffer are disconnected")
	flightInterval := flag.Duration("flight-interval", time.Second, "runtime flight-recorder sampling period (negative disables)")
	flightSamples := flag.Int("flight-samples", 512, "flight-recorder ring capacity served at /v1/runtime/history")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "yieldd: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	// A server wants its metrics live at /metrics, not written on exit:
	// enable the registry unconditionally instead of going through the
	// batch CLIs' obs.Flags bundle.
	obs.Enable()

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		MaxChips:       *maxChips,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		JobHistory:     *jobHistory,
		StreamInterval: *streamInterval,
		EventBuffer:    *eventBuffer,
		FlightInterval: *flightInterval,
		FlightSamples:  *flightSamples,
		Logger:         logger,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("yieldd listening",
		"addr", *addr, "workers", *workers, "queue", *queue, "cache", *cache,
		"job_history", *jobHistory)

	select {
	case err := <-errCh:
		logger.Error("yieldd server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("draining in-flight builds", "budget", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Warn("drain incomplete, builds cancelled", "error", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "error", err)
	}
	logger.Info("yieldd stopped")
}
