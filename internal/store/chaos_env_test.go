package store

import (
	"testing"
	"time"
)

func TestChaosFromEnv(t *testing.T) {
	cases := []struct {
		raw  string
		want ChaosConfig
		ok   bool
	}{
		{"", ChaosConfig{}, true},
		{"err=0.1", ChaosConfig{ErrRate: 0.1}, true},
		{"err=0.1,lat=5ms,partial=0.05,seed=7",
			ChaosConfig{ErrRate: 0.1, Latency: 5 * time.Millisecond, PartialRate: 0.05, Seed: 7}, true},
		{" err=0.2 , seed=3", ChaosConfig{ErrRate: 0.2, Seed: 3}, true},
		{"err=lots", ChaosConfig{}, false},
		{"lat=fast", ChaosConfig{}, false},
		{"bogus=1", ChaosConfig{}, false},
		{"err", ChaosConfig{}, false},
	}
	for _, tc := range cases {
		t.Setenv("YIELDD_CHAOS", tc.raw)
		got, err := ChaosFromEnv()
		if (err == nil) != tc.ok {
			t.Errorf("ChaosFromEnv(%q): err = %v, want ok=%v", tc.raw, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ChaosFromEnv(%q) = %+v, want %+v", tc.raw, got, tc.want)
		}
	}
}

func TestWithChaosDisabledUnwraps(t *testing.T) {
	m := NewMem()
	if s := WithChaos(m, ChaosConfig{}); s != Store(m) {
		t.Error("disabled chaos config did not return the inner store unwrapped")
	}
	if s := WithChaos(m, ChaosConfig{ErrRate: 0.5}); s == Store(m) {
		t.Error("enabled chaos config returned the inner store unwrapped")
	}
}
