//go:build chaos

package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// The chaos build tag gates the heavy fault-injection runs: hundreds of
// injected faults, torn writes and reopen cycles. CI runs them with
//
//	go test -race -tags chaos ./internal/store/...
//
// They are deterministic (seeded RNG) but slow next to the unit tests.

// Error injection must surface as transient storage errors that the Do
// retry helper eventually rides out, and never corrupt the inner state.
func TestChaosErrorInjectionIsTransient(t *testing.T) {
	s := WithChaos(NewMem(), ChaosConfig{ErrRate: 0.5, Seed: 42})
	injected, succeeded := 0, 0
	for i := 0; i < 500; i++ {
		err := s.PutJob(JobRecord{ID: fmt.Sprintf("j%06d", i), Seq: int64(i)})
		if err != nil {
			if !IsTransient(err) {
				t.Fatalf("injected error not transient: %v", err)
			}
			injected++
			continue
		}
		succeeded++
	}
	if injected == 0 || succeeded == 0 {
		t.Fatalf("injection skewed: %d errors, %d successes", injected, succeeded)
	}

	// Do retries transient faults but is bounded (3 attempts): at a 50%
	// error rate a single call fails ~12.5% of the time. Callers that
	// must land a write loop; model that, and check Do does the heavy
	// lifting (total calls well below one-attempt-per-retry).
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%03d", i)
		landed := false
		for attempt := 0; attempt < 20 && !landed; attempt++ {
			landed = Do("put_result", func() error {
				return s.PutResult(key, []byte(`{}`))
			}) == nil
		}
		if !landed {
			t.Fatalf("write %s never landed through chaos", key)
		}
	}
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Results) != 100 {
		t.Errorf("recovered %d results, want all 100", len(rec.Results))
	}
}

// Latency injection must delay, not fail.
func TestChaosLatency(t *testing.T) {
	s := WithChaos(NewMem(), ChaosConfig{Latency: 2 * time.Millisecond, Seed: 1})
	start := time.Now()
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.PutIdem(IdemRecord{Key: fmt.Sprintf("k%d", i)}); err != nil {
			t.Fatalf("latency-only chaos failed an op: %v", err)
		}
	}
	if el := time.Since(start); el < n*2*time.Millisecond {
		t.Errorf("latency not injected: %d ops in %v", n, el)
	}
}

// The full crash loop: a File store with torn-write injection wedges at
// a random frame boundary; reopening the directory must always recover
// a consistent prefix of the acknowledged writes — acknowledged records
// survive, unacknowledged ones vanish cleanly, nothing is corrupt.
func TestChaosTornWriteCrashRecoveryLoop(t *testing.T) {
	dir := t.TempDir()
	acked := make(map[string]bool)
	tears := 0
	for round := 0; round < 30; round++ {
		f, err := OpenFile(dir)
		if err != nil {
			t.Fatalf("round %d: OpenFile: %v", round, err)
		}

		// Everything acked before this round must have survived.
		rec, err := f.Recover()
		if err != nil {
			t.Fatalf("round %d: Recover: %v", round, err)
		}
		seen := make(map[string]bool, len(rec.Jobs))
		for _, j := range rec.Jobs {
			seen[j.ID] = true
		}
		for id := range acked {
			if !seen[id] {
				t.Fatalf("round %d: acknowledged job %s lost", round, id)
			}
		}

		s := WithChaos(f, ChaosConfig{PartialRate: 0.25, Seed: int64(round + 1)})
		for i := 0; i < 20; i++ {
			id := fmt.Sprintf("j%03d-%03d", round, i)
			if err := s.PutJob(JobRecord{ID: id, Seq: int64(round*100 + i), State: "done"}); err != nil {
				tears++
				break // wedged: the "process" is dead until reopen
			}
			acked[id] = true
		}
		s.Close()
	}
	if tears == 0 {
		t.Error("torn-write injection never fired in 30 rounds")
	}
}

// Checkpoint bodies must come back byte-identical through chaos — the
// resume path depends on it.
func TestChaosCheckpointIntegrity(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := WithChaos(f, ChaosConfig{ErrRate: 0.3, Seed: 9})
	payload := bytes.Repeat([]byte{0xAB, 0xCD, 0x00, 0x42}, 4096)
	if err := Do("put_checkpoint", func() error {
		return s.PutCheckpoint("j000001", 1234, payload)
	}); err != nil {
		t.Fatalf("checkpoint never landed: %v", err)
	}
	s.Close()

	f, err = OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, chips, err := f.Checkpoint("j000001")
	if err != nil {
		t.Fatal(err)
	}
	if chips != 1234 || !bytes.Equal(data, payload) {
		t.Errorf("checkpoint mutated in flight: %d chips, %d bytes", chips, len(data))
	}
	if _, _, err := f.Checkpoint("j999999"); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("missing checkpoint: err = %v, want ErrNoCheckpoint", err)
	}
}

// Concurrent writers through the chaos wrapper must stay race-free
// (this test earns its keep under -race).
func TestChaosConcurrentWriters(t *testing.T) {
	f, err := OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := WithChaos(f, ChaosConfig{ErrRate: 0.2, Latency: 100 * time.Microsecond, Seed: 5})
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := fmt.Sprintf("j%d-%d", w, i)
				_ = Do("put_job", func() error {
					return s.PutJob(JobRecord{ID: id, Seq: int64(w*1000 + i)})
				})
				_ = Do("put_result", func() error {
					return s.PutResult(id, []byte(`{"w":true}`))
				})
			}
		}(w)
	}
	wg.Wait()
}
