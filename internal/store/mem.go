package store

import (
	"errors"
	"sort"
	"sync"
)

// errClosed is the cause wrapped by every operation on a closed or
// wedged store.
var errClosed = errors.New("store is closed")

// Mem is an in-process Store: maps under a mutex, no files. It backs
// tests (Clone models the state a kill -9 would leave on disk) and runs
// where the operator wants idempotency/resume semantics without a data
// directory — durability then lasts exactly as long as the process.
type Mem struct {
	mu      sync.Mutex
	closed  bool
	jobs    map[string]JobRecord
	results map[string][]byte
	resSeq  map[string]int64 // insertion order of live results
	idem    map[string]IdemRecord
	ckpts   map[string]ckptEntry
	seq     int64
}

type ckptEntry struct {
	chips int
	data  []byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		jobs:    make(map[string]JobRecord),
		results: make(map[string][]byte),
		resSeq:  make(map[string]int64),
		idem:    make(map[string]IdemRecord),
		ckpts:   make(map[string]ckptEntry),
	}
}

func (m *Mem) err(op string) error {
	return &Error{Op: op, Err: errClosed}
}

// PutJob records the newest lifecycle state of a job.
func (m *Mem) PutJob(rec JobRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.err("put_job")
	}
	m.jobs[rec.ID] = rec
	return nil
}

// PutResult stores a result body under its study key.
func (m *Mem) PutResult(key string, body []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.err("put_result")
	}
	// A re-put moves the key to the back of the recovery order, the
	// same position a fresh WAL append would give it.
	m.seq++
	m.resSeq[key] = m.seq
	m.results[key] = append([]byte(nil), body...)
	return nil
}

// DeleteResult drops a result.
func (m *Mem) DeleteResult(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.err("delete_result")
	}
	delete(m.results, key)
	delete(m.resSeq, key)
	return nil
}

// PutIdem stores an idempotency record.
func (m *Mem) PutIdem(rec IdemRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.err("put_idem")
	}
	m.idem[rec.Key] = rec
	return nil
}

// DeleteIdem expires an idempotency record.
func (m *Mem) DeleteIdem(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.err("delete_idem")
	}
	delete(m.idem, key)
	return nil
}

// PutCheckpoint stores a job's newest checkpoint, replacing any prior.
func (m *Mem) PutCheckpoint(jobID string, chips int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.err("put_checkpoint")
	}
	m.ckpts[jobID] = ckptEntry{chips: chips, data: append([]byte(nil), data...)}
	return nil
}

// Checkpoint returns a job's newest checkpoint, or ErrNoCheckpoint.
func (m *Mem) Checkpoint(jobID string) ([]byte, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, 0, m.err("checkpoint")
	}
	e, ok := m.ckpts[jobID]
	if !ok {
		return nil, 0, ErrNoCheckpoint
	}
	return append([]byte(nil), e.data...), e.chips, nil
}

// DeleteCheckpoint drops a job's checkpoint.
func (m *Mem) DeleteCheckpoint(jobID string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.err("delete_checkpoint")
	}
	delete(m.ckpts, jobID)
	return nil
}

// Recover returns the current state: newest record per job in Seq
// order, results in insertion order, live idempotency records.
func (m *Mem) Recover() (*Recovered, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, m.err("recover")
	}
	r := &Recovered{}
	for _, rec := range m.jobs {
		r.Jobs = append(r.Jobs, rec)
	}
	sort.Slice(r.Jobs, func(i, j int) bool { return r.Jobs[i].Seq < r.Jobs[j].Seq })
	keys := make([]string, 0, len(m.results))
	for k := range m.results {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return m.resSeq[keys[i]] < m.resSeq[keys[j]] })
	for _, k := range keys {
		r.Results = append(r.Results, Result{Key: k, Body: append([]byte(nil), m.results[k]...)})
	}
	for _, rec := range m.idem {
		r.Idem = append(r.Idem, rec)
	}
	sort.Slice(r.Idem, func(i, j int) bool { return r.Idem[i].Key < r.Idem[j].Key })
	return r, nil
}

// Close marks the store unusable.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Clone deep-copies the store's current state into a fresh Mem. Tests
// use it to model kill -9: the clone is "the disk" at the crash
// instant, handed to a new server as if it had reopened the files.
func (m *Mem) Clone() *Mem {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMem()
	c.seq = m.seq
	for k, v := range m.jobs {
		v.Schemes = append([]string(nil), v.Schemes...)
		c.jobs[k] = v
	}
	for k, v := range m.results {
		c.results[k] = append([]byte(nil), v...)
	}
	for k, v := range m.resSeq {
		c.resSeq[k] = v
	}
	for k, v := range m.idem {
		c.idem[k] = v
	}
	for k, v := range m.ckpts {
		c.ckpts[k] = ckptEntry{chips: v.chips, data: append([]byte(nil), v.data...)}
	}
	return c
}
