package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// File is the zero-dependency file-backed Store. Its data directory
// holds one append-only WAL plus snapshot files:
//
//	<dir>/wal.log            framed lifecycle records (jobs, idem keys,
//	                         result/checkpoint index)
//	<dir>/results/<h>.json   one snapshot file per cached result body
//	<dir>/checkpoints/<id>.ckpt  newest build checkpoint per job
//
// Every WAL frame is [uint32 len][uint32 CRC32-C][payload JSON],
// little-endian, fsynced before the append returns. Open replays the
// WAL, truncates it at the first torn or corrupt frame (the tail a
// crash mid-append leaves behind), removes snapshot files the replay
// no longer references, and compacts the live records into a fresh
// WAL. Snapshot files are written tmp+rename so a crash never leaves a
// half-written body under a live name.
//
// A failed append wedges the store: the WAL tail is in an unknown
// state, so File repairs it by truncating back to the last good offset
// and, if even that fails, refuses further writes (crash semantics —
// better no durability than silent corruption).
type File struct {
	dir string

	mu     sync.Mutex
	wal    *os.File
	walLen int64 // offset of the next frame; rollback point on failure
	closed bool
	wedged error

	// Replay state captured at Open, returned by Recover.
	recovered *Recovered
	ckpts     map[string]int // jobID -> checkpointed chips

	// failpoint, when set, intercepts WAL payload writes — the chaos
	// harness uses it to tear a frame mid-write.
	failpoint func(payload []byte) ([]byte, error)
}

// walRecord is the JSON payload of one WAL frame. T selects the kind;
// only that kind's fields are set.
type walRecord struct {
	T string `json:"t"` // job | res | resdel | idem | idemdel | ckpt | ckptdel

	Job *JobRecord `json:"job,omitempty"`

	// res / resdel / ckpt / ckptdel
	Key   string `json:"key,omitempty"`
	Chips int    `json:"chips,omitempty"`

	Idem *IdemRecord `json:"idem,omitempty"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const walName = "wal.log"

// OpenFile opens (creating if needed) a file store rooted at dir,
// replaying and compacting its WAL. The returned store's Recover hands
// back the replayed state.
func OpenFile(dir string) (*File, error) {
	for _, sub := range []string{"", "results", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, &Error{Op: "open", Err: err}
		}
	}
	f := &File{dir: dir, ckpts: make(map[string]int)}
	if err := f.replay(); err != nil {
		return nil, err
	}
	if err := f.compact(); err != nil {
		return nil, err
	}
	return f, nil
}

// Dir returns the store's data directory.
func (f *File) Dir() string { return f.dir }

// replay scans the WAL, truncating at the first torn or corrupt frame,
// and materialises the live state into f.recovered / f.ckpts.
func (f *File) replay() error {
	path := filepath.Join(f.dir, walName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return &Error{Op: "wal_read", Err: err}
	}

	jobs := make(map[string]JobRecord)
	results := make(map[string][]byte) // key -> body (loaded from snapshot)
	var resOrder []string
	idem := make(map[string]IdemRecord)
	var idemOrder []string

	good := int64(0)
	for off := 0; off+8 <= len(data); {
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		end := off + 8 + int(n)
		if n == 0 || n > 1<<26 || end > len(data) {
			break // torn tail: length header or payload incomplete
		}
		payload := data[off+8 : end]
		if crc32.Checksum(payload, crcTable) != sum {
			break // corrupt frame: stop replay here, truncate below
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // CRC passed but payload unreadable: treat as corrupt
		}
		switch rec.T {
		case "job":
			if rec.Job != nil {
				jobs[rec.Job.ID] = *rec.Job
			}
		case "res":
			// A re-put (even after a delete) moves the key to the back of
			// the FIFO order: scrub any earlier occurrence, then append.
			for i, k := range resOrder {
				if k == rec.Key {
					resOrder = append(resOrder[:i], resOrder[i+1:]...)
					break
				}
			}
			resOrder = append(resOrder, rec.Key)
			results[rec.Key] = nil // body loaded after the scan
		case "resdel":
			delete(results, rec.Key)
		case "idem":
			if rec.Idem != nil {
				for i, k := range idemOrder {
					if k == rec.Idem.Key {
						idemOrder = append(idemOrder[:i], idemOrder[i+1:]...)
						break
					}
				}
				idemOrder = append(idemOrder, rec.Idem.Key)
				idem[rec.Idem.Key] = *rec.Idem
			}
		case "idemdel":
			delete(idem, rec.Key)
		case "ckpt":
			f.ckpts[rec.Key] = rec.Chips
		case "ckptdel":
			delete(f.ckpts, rec.Key)
		}
		off = end
		good = int64(end)
	}
	if good < int64(len(data)) {
		// Torn or corrupt tail: truncate the WAL back to the last good
		// frame so the next append starts from a clean boundary.
		if err := os.Truncate(path, good); err != nil {
			return &Error{Op: "wal_truncate", Err: err}
		}
	}

	rec := &Recovered{}
	for _, key := range resOrder {
		if _, live := results[key]; !live {
			continue
		}
		body, err := os.ReadFile(f.resultPath(key))
		if err != nil {
			// The WAL said the result exists but its snapshot is gone or
			// unreadable (crash between WAL append and snapshot rename
			// cannot happen — snapshot lands first — but operators can
			// delete files). Drop the entry rather than fail recovery.
			delete(results, key)
			continue
		}
		rec.Results = append(rec.Results, Result{Key: key, Body: body})
	}
	for id := range f.ckpts {
		if _, err := os.Stat(f.ckptPath(id)); err != nil {
			delete(f.ckpts, id)
		}
	}
	for _, rj := range jobs {
		rec.Jobs = append(rec.Jobs, rj)
	}
	sortJobs(rec.Jobs)
	for _, k := range idemOrder {
		if r, ok := idem[k]; ok {
			rec.Idem = append(rec.Idem, r)
		}
	}
	f.recovered = rec

	// Sweep snapshot files the replay no longer references.
	liveRes := make(map[string]bool, len(results))
	for key := range results {
		liveRes[hashKey(key)] = true
	}
	f.sweep("results", ".json", func(name string) bool { return liveRes[name] })
	f.sweep("checkpoints", ".ckpt", func(name string) bool {
		_, ok := f.ckpts[name]
		return ok
	})
	return nil
}

// sweep removes files in <dir>/<sub> with the given extension whose
// base name fails the live predicate. Best-effort: sweep errors are
// ignored — an orphan snapshot wastes disk, nothing else.
func (f *File) sweep(sub, ext string, live func(base string) bool) {
	entries, err := os.ReadDir(filepath.Join(f.dir, sub))
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ext) {
			// Stray tmp files from interrupted writes are orphans too.
			if strings.HasSuffix(name, ".tmp") {
				os.Remove(filepath.Join(f.dir, sub, name))
			}
			continue
		}
		base := strings.TrimSuffix(name, ext)
		if !live(base) {
			os.Remove(filepath.Join(f.dir, sub, name))
		}
	}
}

// compact rewrites the live state as a minimal WAL (one frame per live
// record) via tmp+rename, bounding WAL growth across restarts.
func (f *File) compact() error {
	tmp := filepath.Join(f.dir, walName+".tmp")
	w, err := os.Create(tmp)
	if err != nil {
		return &Error{Op: "compact", Err: err}
	}
	write := func(rec walRecord) error {
		frame, err := encodeFrame(rec)
		if err != nil {
			return err
		}
		_, err = w.Write(frame)
		return err
	}
	for i := range f.recovered.Jobs {
		if err := write(walRecord{T: "job", Job: &f.recovered.Jobs[i]}); err != nil {
			w.Close()
			return &Error{Op: "compact", Err: err}
		}
	}
	for _, r := range f.recovered.Results {
		if err := write(walRecord{T: "res", Key: r.Key}); err != nil {
			w.Close()
			return &Error{Op: "compact", Err: err}
		}
	}
	for i := range f.recovered.Idem {
		if err := write(walRecord{T: "idem", Idem: &f.recovered.Idem[i]}); err != nil {
			w.Close()
			return &Error{Op: "compact", Err: err}
		}
	}
	for id, chips := range f.ckpts {
		if err := write(walRecord{T: "ckpt", Key: id, Chips: chips}); err != nil {
			w.Close()
			return &Error{Op: "compact", Err: err}
		}
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return &Error{Op: "compact", Err: err}
	}
	if err := w.Close(); err != nil {
		return &Error{Op: "compact", Err: err}
	}
	path := filepath.Join(f.dir, walName)
	if err := os.Rename(tmp, path); err != nil {
		return &Error{Op: "compact", Err: err}
	}
	wal, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return &Error{Op: "wal_open", Err: err}
	}
	st, err := wal.Stat()
	if err != nil {
		wal.Close()
		return &Error{Op: "wal_open", Err: err}
	}
	f.wal = wal
	f.walLen = st.Size()
	return nil
}

// encodeFrame frames one record: [len][crc][payload].
func encodeFrame(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)
	return frame, nil
}

// append frames rec, writes it through the failpoint (if armed) and
// fsyncs. On any failure it rolls the WAL back to the last good frame
// boundary; if the rollback fails too the store wedges.
func (f *File) append(op string, rec walRecord) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appendLocked(op, rec)
}

func (f *File) appendLocked(op string, rec walRecord) error {
	if f.closed {
		return &Error{Op: op, Err: errClosed}
	}
	if f.wedged != nil {
		return &Error{Op: op, Err: fmt.Errorf("store wedged: %w", f.wedged)}
	}
	frame, err := encodeFrame(rec)
	if err != nil {
		return &Error{Op: op, Err: err}
	}
	if f.failpoint != nil {
		var out []byte
		out, err = f.failpoint(frame)
		if err != nil && out != nil {
			// Torn write: a prefix of the frame reaches the file and the
			// process "dies" — wedge without rollback, exactly the state a
			// crash mid-append leaves for the next Open to repair.
			f.wal.Write(out)
			f.wal.Sync()
			f.wedged = err
			return &Error{Op: op, Err: fmt.Errorf("torn write injected: %w", err)}
		}
		if err == nil {
			frame = out
			_, err = f.wal.Write(frame)
			if err == nil {
				err = f.wal.Sync()
			}
		}
	} else {
		_, err = f.wal.Write(frame)
		if err == nil {
			err = f.wal.Sync()
		}
	}
	if err != nil {
		// Roll back to the pre-append offset so the WAL ends on a frame
		// boundary again. If that fails the tail state is unknown: wedge.
		if terr := f.wal.Truncate(f.walLen); terr != nil {
			f.wedged = terr
			return &Error{Op: op, Err: fmt.Errorf("%w (rollback failed: %v)", err, terr)}
		}
		if _, serr := f.wal.Seek(f.walLen, io.SeekStart); serr != nil {
			f.wedged = serr
		}
		return &Error{Op: op, Transient: true, Err: err}
	}
	f.walLen += int64(len(frame))
	return nil
}

// writeSnapshot writes body to path atomically: tmp file in the same
// directory, fsync, rename.
func (f *File) writeSnapshot(op, path string, body []byte) error {
	tmp := path + ".tmp"
	w, err := os.Create(tmp)
	if err != nil {
		return &Error{Op: op, Transient: true, Err: err}
	}
	if _, err = w.Write(body); err == nil {
		err = w.Sync()
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return &Error{Op: op, Transient: true, Err: err}
	}
	return nil
}

func (f *File) resultPath(key string) string {
	return filepath.Join(f.dir, "results", hashKey(key)+".json")
}

func (f *File) ckptPath(jobID string) string {
	return filepath.Join(f.dir, "checkpoints", jobID+".ckpt")
}

// hashKey maps an arbitrary study key to a fixed-length file name.
func hashKey(key string) string {
	return fmt.Sprintf("%08x%08x",
		crc32.Checksum([]byte(key), crcTable),
		crc32.ChecksumIEEE([]byte(key)))
}

// PutJob appends the job's newest lifecycle record to the WAL.
func (f *File) PutJob(rec JobRecord) error {
	return f.append("put_job", walRecord{T: "job", Job: &rec})
}

// PutResult writes the body snapshot first, then the WAL entry that
// makes it live — a crash between the two leaves only an orphan file,
// which the next Open sweeps.
func (f *File) PutResult(key string, body []byte) error {
	if err := f.writeSnapshot("put_result", f.resultPath(key), body); err != nil {
		return err
	}
	return f.append("put_result", walRecord{T: "res", Key: key})
}

// DeleteResult logs the deletion and removes the snapshot.
func (f *File) DeleteResult(key string) error {
	if err := f.append("delete_result", walRecord{T: "resdel", Key: key}); err != nil {
		return err
	}
	os.Remove(f.resultPath(key))
	return nil
}

// PutIdem appends an idempotency record.
func (f *File) PutIdem(rec IdemRecord) error {
	return f.append("put_idem", walRecord{T: "idem", Idem: &rec})
}

// DeleteIdem logs an idempotency-key expiry.
func (f *File) DeleteIdem(key string) error {
	return f.append("delete_idem", walRecord{T: "idemdel", Key: key})
}

// PutCheckpoint snapshots the checkpoint payload, then logs its
// frontier. Only the newest checkpoint per job is kept.
func (f *File) PutCheckpoint(jobID string, chips int, data []byte) error {
	if err := f.writeSnapshot("put_checkpoint", f.ckptPath(jobID), data); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.appendLocked("put_checkpoint", walRecord{T: "ckpt", Key: jobID, Chips: chips}); err != nil {
		return err
	}
	f.ckpts[jobID] = chips
	return nil
}

// Checkpoint loads a job's newest checkpoint payload.
func (f *File) Checkpoint(jobID string) ([]byte, int, error) {
	f.mu.Lock()
	chips, ok := f.ckpts[jobID]
	f.mu.Unlock()
	if !ok {
		return nil, 0, ErrNoCheckpoint
	}
	data, err := os.ReadFile(f.ckptPath(jobID))
	if err != nil {
		return nil, 0, &Error{Op: "checkpoint", Err: err}
	}
	return data, chips, nil
}

// DeleteCheckpoint logs the removal and deletes the snapshot.
func (f *File) DeleteCheckpoint(jobID string) error {
	f.mu.Lock()
	err := f.appendLocked("delete_checkpoint", walRecord{T: "ckptdel", Key: jobID})
	if err == nil {
		delete(f.ckpts, jobID)
	}
	f.mu.Unlock()
	if err != nil {
		return err
	}
	os.Remove(f.ckptPath(jobID))
	return nil
}

// Recover returns the state replayed at Open.
func (f *File) Recover() (*Recovered, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, &Error{Op: "recover", Err: errClosed}
	}
	return f.recovered, nil
}

// Close syncs and closes the WAL.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	if f.wal != nil {
		f.wal.Sync()
		return f.wal.Close()
	}
	return nil
}

// sortJobs orders job records by ascending Seq.
func sortJobs(jobs []JobRecord) {
	for i := 1; i < len(jobs); i++ {
		for j := i; j > 0 && jobs[j].Seq < jobs[j-1].Seq; j-- {
			jobs[j], jobs[j-1] = jobs[j-1], jobs[j]
		}
	}
}
