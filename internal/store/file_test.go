package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// appendRaw writes raw bytes to the end of the WAL, simulating what a
// crash mid-append leaves behind.
func appendRaw(t *testing.T, dir string, raw []byte) {
	t.Helper()
	w, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("opening wal for damage: %v", err)
	}
	if _, err := w.Write(raw); err != nil {
		t.Fatalf("writing damage: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func mustOpen(t *testing.T, dir string) *File {
	t.Helper()
	f, err := OpenFile(dir)
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", dir, err)
	}
	return f
}

// A frame cut off mid-payload — the canonical torn write — must not
// cost any record before it, and the next append must land cleanly.
func TestFileTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	f := mustOpen(t, dir)
	if err := f.PutJob(JobRecord{ID: "j000001", Seq: 1, State: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := f.PutResult("key1", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear: a full-length header promising 64 payload bytes, then only 5.
	torn := make([]byte, 8, 13)
	binary.LittleEndian.PutUint32(torn, 64)
	torn = append(torn, "hello"...)
	appendRaw(t, dir, torn)
	before, _ := os.Stat(filepath.Join(dir, walName))

	f = mustOpen(t, dir)
	defer f.Close()
	rec, err := f.Recover()
	if err != nil {
		t.Fatalf("Recover after tear: %v", err)
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "j000001" {
		t.Errorf("jobs after tear = %+v, want j000001 intact", rec.Jobs)
	}
	if len(rec.Results) != 1 || !bytes.Equal(rec.Results[0].Body, []byte(`{"ok":true}`)) {
		t.Errorf("results after tear = %+v, want key1 intact", rec.Results)
	}
	after, _ := os.Stat(filepath.Join(dir, walName))
	if after.Size() >= before.Size() {
		t.Errorf("WAL not repaired: %d bytes before open, %d after", before.Size(), after.Size())
	}

	// The repaired WAL must accept appends on a clean frame boundary.
	if err := f.PutJob(JobRecord{ID: "j000002", Seq: 2, State: "queued"}); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	f.Close()
	rec, err = mustOpen(t, dir).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 2 {
		t.Errorf("jobs after repair+append = %d, want 2", len(rec.Jobs))
	}
}

// A bit flip in a frame's payload fails the CRC: replay stops there and
// keeps everything before it.
func TestFileCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	f := mustOpen(t, dir)
	if err := f.PutJob(JobRecord{ID: "j000001", Seq: 1, State: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := f.PutJob(JobRecord{ID: "j000002", Seq: 2, State: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the LAST frame (frame 2 starts after
	// frame 1; find it by walking the length headers).
	n1 := binary.LittleEndian.Uint32(data)
	off := 8 + int(n1)
	data[off+8] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	f = mustOpen(t, dir)
	defer f.Close()
	rec, err := f.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "j000001" {
		t.Errorf("jobs after corruption = %+v, want only j000001", rec.Jobs)
	}
}

// CRC catches damage anywhere in the frame, including a corrupted
// length header pointing past the end: replay must never panic.
func TestFileGarbageWALStartsEmpty(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	appendRaw(t, dir, []byte("this is not a WAL at all, but it is long enough to look like one"))
	f := mustOpen(t, dir)
	defer f.Close()
	rec, err := f.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs)+len(rec.Results)+len(rec.Idem) != 0 {
		t.Errorf("garbage WAL recovered state: %+v", rec)
	}
}

// Orphan snapshots — result bodies and tmp files with no live WAL
// record — are swept on open; live ones survive.
func TestFileOrphanSnapshotsSwept(t *testing.T) {
	dir := t.TempDir()
	f := mustOpen(t, dir)
	if err := f.PutResult("live", []byte(`{"live":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	resDir := filepath.Join(dir, "results")
	orphan := filepath.Join(resDir, "deadbeefdeadbeef.json")
	tmp := filepath.Join(resDir, "0123456701234567.json.tmp")
	for _, p := range []string{orphan, tmp} {
		if err := os.WriteFile(p, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	f = mustOpen(t, dir)
	defer f.Close()
	for _, p := range []string{orphan, tmp} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived open", filepath.Base(p))
		}
	}
	livePath := filepath.Join(resDir, hashKey("live")+".json")
	if _, err := os.Stat(livePath); err != nil {
		t.Errorf("live snapshot swept: %v", err)
	}
}

// Rewriting the same records over and over must not grow the WAL
// without bound: open-time compaction keeps one frame per live record.
func TestFileCompactionBoundsWAL(t *testing.T) {
	dir := t.TempDir()
	f := mustOpen(t, dir)
	rec := JobRecord{ID: "j000001", Seq: 1, State: "running", Seed: 2006, Chips: 2000}
	for i := 0; i < 200; i++ {
		if err := f.PutJob(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fat, _ := os.Stat(filepath.Join(dir, walName))

	f = mustOpen(t, dir)
	defer f.Close()
	slim, _ := os.Stat(filepath.Join(dir, walName))
	if slim.Size() >= fat.Size()/10 {
		t.Errorf("compaction left %d bytes of a %d-byte WAL", slim.Size(), fat.Size())
	}
	recovered, err := f.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered.Jobs) != 1 || recovered.Jobs[0].State != "running" {
		t.Errorf("compaction lost state: %+v", recovered.Jobs)
	}
}

// The torn-write failpoint contract: an injected tear writes a strict
// prefix, wedges the store (no rollback — the "process" is dead), and
// the next open repairs the WAL back to the last good frame.
func TestFileFailpointTearWedgesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	f := mustOpen(t, dir)
	if err := f.PutJob(JobRecord{ID: "j000001", Seq: 1, State: "done"}); err != nil {
		t.Fatal(err)
	}

	f.failpoint = func(frame []byte) ([]byte, error) {
		return frame[:len(frame)/2], os.ErrClosed // tear: prefix + error
	}
	err := f.PutJob(JobRecord{ID: "j000002", Seq: 2, State: "queued"})
	if err == nil {
		t.Fatal("torn append reported success")
	}
	if IsTransient(err) {
		t.Error("torn append reported transient; the store is wedged, retry cannot help")
	}
	// Every subsequent write fails too: the store is wedged.
	if err := f.PutResult("k", []byte("{}")); err == nil {
		t.Fatal("wedged store accepted a write")
	}
	f.Close()

	// The tail really is torn on disk.
	data, _ := os.ReadFile(filepath.Join(dir, walName))
	n1 := binary.LittleEndian.Uint32(data)
	if int(n1)+8 >= len(data) {
		t.Fatalf("expected a torn tail after the first frame, WAL is %d bytes", len(data))
	}

	f = mustOpen(t, dir)
	defer f.Close()
	rec, rerr := f.Recover()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "j000001" {
		t.Errorf("recovery after tear = %+v, want only j000001", rec.Jobs)
	}
}

// A pure error injection (no bytes written) must roll back cleanly and
// report transient: the retry path, not the crash path.
func TestFileFailpointErrorRollsBack(t *testing.T) {
	dir := t.TempDir()
	f := mustOpen(t, dir)
	defer f.Close()
	if err := f.PutJob(JobRecord{ID: "j000001", Seq: 1, State: "done"}); err != nil {
		t.Fatal(err)
	}

	fail := true
	f.failpoint = func(frame []byte) ([]byte, error) {
		if fail {
			return nil, os.ErrDeadlineExceeded // transient: nothing written
		}
		return frame, nil
	}
	err := f.PutJob(JobRecord{ID: "j000002", Seq: 2, State: "queued"})
	if !IsTransient(err) {
		t.Fatalf("pure error injection: err = %v, want transient", err)
	}
	fail = false
	if err := f.PutJob(JobRecord{ID: "j000002", Seq: 2, State: "queued"}); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
}

// hashKey must produce distinct fixed-length names for the file layout.
func TestHashKeyShape(t *testing.T) {
	a, b := hashKey("study-a"), hashKey("study-b")
	if len(a) != 16 || len(b) != 16 {
		t.Errorf("hashKey lengths %d/%d, want 16", len(a), len(b))
	}
	if a == b {
		t.Error("distinct keys hashed identically")
	}
}
