// Package store is yieldd's durability layer: a pluggable persistent
// record of job lifecycles, study results and build checkpoints, so a
// crash or redeploy loses neither finished work nor in-flight builds.
// The server writes opaque bytes (JSON responses, gob checkpoints) and
// small typed records; the store guarantees they come back intact after
// a restart, or not at all — never corrupted.
//
// Two implementations ship: Mem (process-local maps, for tests and
// single-run durability semantics) and File (a zero-dependency
// append-only WAL of CRC-framed records plus snapshot files, with
// fsync on every append and torn-write recovery on open). Chaos wraps
// either with fault injection for crash-recovery testing.
package store

import (
	"fmt"
	"time"

	"yieldcache/internal/obs"
)

// JobRecord is one job's persisted lifecycle state. The server appends
// a full record at every transition (queued, running, done, failed);
// replay keeps the newest record per ID, so the WAL
// doubles as the job's history and its current state.
type JobRecord struct {
	// ID is the job id ("j000042"); stable across restarts, so the
	// X-Job-Id a client captured before a crash stays valid after it.
	ID string `json:"id"`
	// Seq is the registry sequence number behind the ID; recovery seeds
	// the registry counter past the largest recovered Seq.
	Seq int64 `json:"seq"`
	// Key is the canonical study key the job builds.
	Key string `json:"key"`
	// State is queued, running, done or failed.
	State string `json:"state"`

	// The resolved study parameters, enough to re-run the build.
	Seed        int64    `json:"seed"`
	Chips       int      `json:"chips"`
	ConsName    string   `json:"cons_name"`
	DelaySigmaK float64  `json:"delay_sigma_k"`
	LeakageMult float64  `json:"leakage_mult"`
	Schemes     []string `json:"schemes"`
	TimeoutMS   int64    `json:"timeout_ms"`

	// TargetCIWidth and Confidence persist a study's precision target,
	// so a crash-resumed build keeps stopping early at the same
	// interval width; zero means no target. EarlyStop records that the
	// target truncated the build before the full population.
	TargetCIWidth float64 `json:"target_ci_width,omitempty"`
	Confidence    float64 `json:"confidence,omitempty"`
	EarlyStop     bool    `json:"early_stop,omitempty"`

	// Kind distinguishes job flavours; empty means a study build, "sweep"
	// a design-space sweep. Spec carries a sweep's canonical resolved
	// request JSON, enough to replan and resume it after a crash (the
	// study fields above serve that role for studies).
	Kind string `json:"kind,omitempty"`
	Spec []byte `json:"spec,omitempty"`

	// Restarts counts how many times the job has been resumed after a
	// crash; CheckpointChips is the frontier of its newest checkpoint.
	Restarts        int `json:"restarts,omitempty"`
	CheckpointChips int `json:"checkpoint_chips,omitempty"`

	// QueueWaitMS accumulates admission-to-slot waits across restarts.
	QueueWaitMS   float64 `json:"queue_wait_ms,omitempty"`
	CreatedUnixMS int64   `json:"created_unix_ms"`

	// Terminal outcome of done/failed records.
	Class string `json:"class,omitempty"`
	Error string `json:"error,omitempty"`
}

// IdemRecord maps an Idempotency-Key to the request body it was first
// used with and the study that answered it, so a retried request can
// replay the recorded response and a reused key with a different body
// can be refused.
type IdemRecord struct {
	// Key is the client's Idempotency-Key header value.
	Key string `json:"key"`
	// BodyHash is the hex SHA-256 of the raw request body.
	BodyHash string `json:"body_hash"`
	// StudyKey is the canonical study key whose cached result replays.
	StudyKey string `json:"study_key"`
	// JobID is the job that produced (or will produce) the response.
	JobID string `json:"job_id"`
}

// Result is one persisted study response, key plus opaque JSON body.
type Result struct {
	Key  string
	Body []byte
}

// Recovered is everything a store holds after replay: the newest record
// per job (ascending Seq), results in write order (oldest first, so the
// FIFO cache rebuilds with its original eviction order), and the live
// idempotency records.
type Recovered struct {
	Jobs    []JobRecord
	Results []Result
	Idem    []IdemRecord
}

// Store is the durability interface yieldd talks to. Implementations
// must be safe for concurrent use. All data is opaque bytes: the store
// never interprets result bodies or checkpoint payloads.
type Store interface {
	// PutJob appends a job lifecycle record; the newest record per ID
	// wins on recovery.
	PutJob(rec JobRecord) error
	// PutResult persists a finished study response under its canonical
	// key; DeleteResult drops it (cache eviction).
	PutResult(key string, body []byte) error
	DeleteResult(key string) error
	// PutIdem persists an idempotency record; DeleteIdem expires it.
	PutIdem(rec IdemRecord) error
	DeleteIdem(key string) error
	// PutCheckpoint persists a build checkpoint for a job, replacing
	// any previous one; chips is the checkpoint's measured frontier.
	PutCheckpoint(jobID string, chips int, data []byte) error
	// Checkpoint returns a job's newest checkpoint, or ErrNoCheckpoint.
	Checkpoint(jobID string) (data []byte, chips int, err error)
	// DeleteCheckpoint drops a job's checkpoint (build finished).
	DeleteCheckpoint(jobID string) error
	// Recover replays the persisted state. The File store replays its
	// WAL once at Open; Recover hands the server the result.
	Recover() (*Recovered, error)
	// Close releases resources; the store is unusable afterwards.
	Close() error
}

// Error wraps a storage failure with its operation and whether a retry
// may help. It classifies as obs.ClassStorage in the error taxonomy.
type Error struct {
	// Op names the failing operation ("wal_append", "snapshot", …).
	Op string
	// Transient reports whether retrying the operation may succeed.
	Transient bool
	// Err is the underlying cause.
	Err error
}

// Error formats the failure.
func (e *Error) Error() string { return "store: " + e.Op + ": " + e.Err.Error() }

// Unwrap returns the underlying cause.
func (e *Error) Unwrap() error { return e.Err }

// ErrorClass stamps storage failures with their taxonomy class; see
// obs.ClassifyError.
func (e *Error) ErrorClass() obs.ErrClass { return obs.ClassStorage }

// ErrNoCheckpoint is returned by Checkpoint when a job has none.
var ErrNoCheckpoint = &Error{Op: "checkpoint", Err: fmt.Errorf("no checkpoint recorded")}

// IsTransient reports whether err is a storage error worth retrying.
func IsTransient(err error) bool {
	var se *Error
	if ok := asStoreError(err, &se); ok {
		return se.Transient
	}
	return false
}

// retryAttempts and retryBase bound Do's backoff: at most three tries,
// 5 ms then 25 ms apart — a worst case of ~30 ms added to the calling
// path, small next to a build but enough to ride out a slow fsync.
const (
	retryAttempts = 3
	retryBase     = 5 * time.Millisecond
)

// Do runs a storage operation with bounded retry-with-backoff for
// transient errors. Permanent errors (corruption, wedged store) return
// immediately. Every retry increments store_retries_total; a final
// failure increments store_errors_total{op=...}.
func Do(op string, fn func() error) error {
	delay := retryBase
	var err error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if !IsTransient(err) {
			break
		}
		obs.C("store_retries_total").Inc()
		time.Sleep(delay)
		delay *= 5
	}
	obs.C(`store_errors_total{op="` + op + `"}`).Inc()
	return err
}

// asStoreError is errors.As specialised to *Error without importing
// errors at every call site.
func asStoreError(err error, target **Error) bool {
	for err != nil {
		if se, ok := err.(*Error); ok {
			*target = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
