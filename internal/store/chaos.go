package store

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"yieldcache/internal/obs"
)

// ChaosConfig parameterises fault injection. Zero values inject
// nothing; every probability is per-operation.
type ChaosConfig struct {
	// ErrRate is the probability an operation fails with a transient
	// storage error before touching the wrapped store.
	ErrRate float64
	// Latency is a fixed delay added before every operation.
	Latency time.Duration
	// PartialRate is the probability a File WAL append is torn: a random
	// prefix of the frame lands on disk and the store wedges, exactly as
	// a crash mid-append would. Ignored when the wrapped store is not a
	// *File.
	PartialRate float64
	// Seed makes the fault sequence reproducible (0 seeds from 1).
	Seed int64
}

// ChaosFromEnv parses the YIELDD_CHAOS environment variable —
// "err=0.1,lat=5ms,partial=0.05,seed=7" — returning a zero config (and
// no error) when it is unset. Unknown or malformed terms are errors so
// a typo cannot silently disable a chaos run.
func ChaosFromEnv() (ChaosConfig, error) {
	var cfg ChaosConfig
	raw := os.Getenv("YIELDD_CHAOS")
	if raw == "" {
		return cfg, nil
	}
	for _, term := range strings.Split(raw, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(term), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: malformed term %q", term)
		}
		switch k {
		case "err":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return cfg, fmt.Errorf("chaos: err=%q: %v", v, err)
			}
			cfg.ErrRate = p
		case "lat":
			d, err := time.ParseDuration(v)
			if err != nil {
				return cfg, fmt.Errorf("chaos: lat=%q: %v", v, err)
			}
			cfg.Latency = d
		case "partial":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return cfg, fmt.Errorf("chaos: partial=%q: %v", v, err)
			}
			cfg.PartialRate = p
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("chaos: seed=%q: %v", v, err)
			}
			cfg.Seed = n
		default:
			return cfg, fmt.Errorf("chaos: unknown term %q", k)
		}
	}
	return cfg, nil
}

// Enabled reports whether the config injects any fault at all.
func (c ChaosConfig) Enabled() bool {
	return c.ErrRate > 0 || c.Latency > 0 || c.PartialRate > 0
}

// Chaos wraps a Store with fault injection per ChaosConfig. It is the
// crash-recovery harness: tests (and operators, via YIELDD_CHAOS) run
// yieldd against a store that fails, stalls or tears writes on a
// reproducible schedule, and assert recovery still holds.
type Chaos struct {
	inner Store
	cfg   ChaosConfig

	mu  sync.Mutex
	rng *rand.Rand
}

// WithChaos wraps inner per cfg. A disabled config returns inner
// unwrapped, so the zero-injection path costs nothing. When inner is a
// *File and PartialRate > 0, the file store's WAL failpoint is armed
// to tear frames.
func WithChaos(inner Store, cfg ChaosConfig) Store {
	if !cfg.Enabled() {
		return inner
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Chaos{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	if f, ok := inner.(*File); ok && cfg.PartialRate > 0 {
		f.failpoint = c.tear
	}
	return c
}

// roll returns a uniform [0,1) draw under the harness lock.
func (c *Chaos) roll() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// tear is the File WAL failpoint: with probability PartialRate it keeps
// a random strict prefix of the frame and reports a crash.
func (c *Chaos) tear(frame []byte) ([]byte, error) {
	c.mu.Lock()
	hit := c.rng.Float64() < c.cfg.PartialRate
	var cut int
	if hit && len(frame) > 0 {
		cut = c.rng.Intn(len(frame))
	}
	c.mu.Unlock()
	if !hit {
		return frame, nil
	}
	obs.C(`store_chaos_injected_total{kind="torn"}`).Inc()
	return frame[:cut], fmt.Errorf("chaos: torn write after %d/%d bytes", cut, len(frame))
}

// inject applies latency and error injection ahead of one operation.
func (c *Chaos) inject(op string) error {
	if c.cfg.Latency > 0 {
		time.Sleep(c.cfg.Latency)
	}
	if c.cfg.ErrRate > 0 && c.roll() < c.cfg.ErrRate {
		obs.C(`store_chaos_injected_total{kind="err"}`).Inc()
		return &Error{Op: op, Transient: true, Err: fmt.Errorf("chaos: injected fault")}
	}
	return nil
}

// PutJob injects faults, then forwards.
func (c *Chaos) PutJob(rec JobRecord) error {
	if err := c.inject("put_job"); err != nil {
		return err
	}
	return c.inner.PutJob(rec)
}

// PutResult injects faults, then forwards.
func (c *Chaos) PutResult(key string, body []byte) error {
	if err := c.inject("put_result"); err != nil {
		return err
	}
	return c.inner.PutResult(key, body)
}

// DeleteResult injects faults, then forwards.
func (c *Chaos) DeleteResult(key string) error {
	if err := c.inject("delete_result"); err != nil {
		return err
	}
	return c.inner.DeleteResult(key)
}

// PutIdem injects faults, then forwards.
func (c *Chaos) PutIdem(rec IdemRecord) error {
	if err := c.inject("put_idem"); err != nil {
		return err
	}
	return c.inner.PutIdem(rec)
}

// DeleteIdem injects faults, then forwards.
func (c *Chaos) DeleteIdem(key string) error {
	if err := c.inject("delete_idem"); err != nil {
		return err
	}
	return c.inner.DeleteIdem(key)
}

// PutCheckpoint injects faults, then forwards.
func (c *Chaos) PutCheckpoint(jobID string, chips int, data []byte) error {
	if err := c.inject("put_checkpoint"); err != nil {
		return err
	}
	return c.inner.PutCheckpoint(jobID, chips, data)
}

// Checkpoint injects faults, then forwards.
func (c *Chaos) Checkpoint(jobID string) ([]byte, int, error) {
	if err := c.inject("checkpoint"); err != nil {
		return nil, 0, err
	}
	return c.inner.Checkpoint(jobID)
}

// DeleteCheckpoint injects faults, then forwards.
func (c *Chaos) DeleteCheckpoint(jobID string) error {
	if err := c.inject("delete_checkpoint"); err != nil {
		return err
	}
	return c.inner.DeleteCheckpoint(jobID)
}

// Recover forwards without injection: recovery is the path under test,
// not the one being failed.
func (c *Chaos) Recover() (*Recovered, error) { return c.inner.Recover() }

// Close forwards without injection.
func (c *Chaos) Close() error { return c.inner.Close() }
