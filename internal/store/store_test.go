package store

import (
	"bytes"
	"errors"
	"testing"
)

// eachStore runs a subtest against every Store implementation, so the
// contract stays identical between Mem and File. The restart callback
// models a process boundary: for Mem it hands back the same store (its
// durability is the process), for File it closes the store and reopens
// the data directory, exactly what a crashed-and-restarted yieldd does.
func eachStore(t *testing.T, run func(t *testing.T, s Store, restart func(Store) Store)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		run(t, NewMem(), func(s Store) Store { return s })
	})
	t.Run("file", func(t *testing.T) {
		dir := t.TempDir()
		f, err := OpenFile(dir)
		if err != nil {
			t.Fatalf("OpenFile: %v", err)
		}
		run(t, f, func(s Store) Store {
			if err := s.Close(); err != nil {
				t.Fatalf("Close before restart: %v", err)
			}
			nf, err := OpenFile(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			return nf
		})
	})
}

func TestStoreJobNewestRecordWins(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store, restart func(Store) Store) {
		defer s.Close()
		put := func(rec JobRecord) {
			t.Helper()
			if err := s.PutJob(rec); err != nil {
				t.Fatalf("PutJob: %v", err)
			}
		}
		put(JobRecord{ID: "j000002", Seq: 2, Key: "k2", State: "queued", Seed: 7})
		put(JobRecord{ID: "j000001", Seq: 1, Key: "k1", State: "queued", Seed: 2006})
		put(JobRecord{ID: "j000001", Seq: 1, Key: "k1", State: "running", Seed: 2006})
		put(JobRecord{ID: "j000001", Seq: 1, Key: "k1", State: "done", Seed: 2006, Class: "ok"})

		s = restart(s)
		rec, err := s.Recover()
		if err != nil {
			t.Fatalf("Recover: %v", err)
		}
		if len(rec.Jobs) != 2 {
			t.Fatalf("recovered %d jobs, want 2", len(rec.Jobs))
		}
		// Ascending Seq, newest record per ID.
		if rec.Jobs[0].ID != "j000001" || rec.Jobs[0].State != "done" || rec.Jobs[0].Class != "ok" {
			t.Errorf("job[0] = %+v, want j000001 done/ok", rec.Jobs[0])
		}
		if rec.Jobs[1].ID != "j000002" || rec.Jobs[1].State != "queued" {
			t.Errorf("job[1] = %+v, want j000002 queued", rec.Jobs[1])
		}
	})
}

func TestStoreResultsKeepWriteOrder(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store, restart func(Store) Store) {
		defer s.Close()
		for _, k := range []string{"a", "b", "c"} {
			if err := s.PutResult(k, []byte(`{"key":"`+k+`"}`)); err != nil {
				t.Fatalf("PutResult(%s): %v", k, err)
			}
		}
		if err := s.DeleteResult("b"); err != nil {
			t.Fatalf("DeleteResult: %v", err)
		}
		// Re-inserting moves the key to the back of the FIFO.
		if err := s.PutResult("a", []byte(`{"key":"a2"}`)); err != nil {
			t.Fatalf("PutResult(a again): %v", err)
		}
		s = restart(s)
		rec, err := s.Recover()
		if err != nil {
			t.Fatalf("Recover: %v", err)
		}
		if len(rec.Results) != 2 {
			t.Fatalf("recovered %d results, want 2", len(rec.Results))
		}
		if rec.Results[0].Key != "c" || rec.Results[1].Key != "a" {
			t.Errorf("result order = %s,%s, want c,a", rec.Results[0].Key, rec.Results[1].Key)
		}
		if !bytes.Equal(rec.Results[1].Body, []byte(`{"key":"a2"}`)) {
			t.Errorf("re-put body = %s, want the newest write", rec.Results[1].Body)
		}
	})
}

func TestStoreIdemRoundTrip(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store, restart func(Store) Store) {
		defer s.Close()
		a := IdemRecord{Key: "alpha", BodyHash: "h1", StudyKey: "k1", JobID: "j000001"}
		b := IdemRecord{Key: "beta", BodyHash: "h2", StudyKey: "k2", JobID: "j000002"}
		for _, r := range []IdemRecord{a, b} {
			if err := s.PutIdem(r); err != nil {
				t.Fatalf("PutIdem: %v", err)
			}
		}
		if err := s.DeleteIdem("beta"); err != nil {
			t.Fatalf("DeleteIdem: %v", err)
		}
		s = restart(s)
		rec, err := s.Recover()
		if err != nil {
			t.Fatalf("Recover: %v", err)
		}
		if len(rec.Idem) != 1 || rec.Idem[0] != a {
			t.Errorf("recovered idem = %+v, want exactly %+v", rec.Idem, a)
		}
	})
}

func TestStoreCheckpointReplaceAndDelete(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store, restart func(Store) Store) {
		defer s.Close()
		if _, _, err := s.Checkpoint("j000001"); !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("Checkpoint before put: err = %v, want ErrNoCheckpoint", err)
		}
		if err := s.PutCheckpoint("j000001", 100, []byte("ckpt-v1")); err != nil {
			t.Fatalf("PutCheckpoint: %v", err)
		}
		if err := s.PutCheckpoint("j000001", 250, []byte("ckpt-v2")); err != nil {
			t.Fatalf("PutCheckpoint(replace): %v", err)
		}
		data, chips, err := s.Checkpoint("j000001")
		if err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		if chips != 250 || !bytes.Equal(data, []byte("ckpt-v2")) {
			t.Errorf("checkpoint = %d chips %q, want 250 chips ckpt-v2", chips, data)
		}
		if err := s.DeleteCheckpoint("j000001"); err != nil {
			t.Fatalf("DeleteCheckpoint: %v", err)
		}
		if _, _, err := s.Checkpoint("j000001"); !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("Checkpoint after delete: err = %v, want ErrNoCheckpoint", err)
		}
	})
}

func TestStoreClosedRefusesWrites(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store, restart func(Store) Store) {
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		err := s.PutJob(JobRecord{ID: "j000001", Seq: 1})
		var se *Error
		if !errors.As(err, &se) {
			t.Fatalf("PutJob after Close: err = %v, want *store.Error", err)
		}
		if se.Transient {
			t.Error("closed-store error reported transient")
		}
	})
}

func TestMemCloneIsIndependent(t *testing.T) {
	m := NewMem()
	if err := m.PutResult("k", []byte("body")); err != nil {
		t.Fatal(err)
	}
	snap := m.Clone()
	if err := m.DeleteResult("k"); err != nil {
		t.Fatal(err)
	}
	rec, err := snap.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Results) != 1 || rec.Results[0].Key != "k" {
		t.Errorf("clone lost the snapshot: %+v", rec.Results)
	}
}

func TestDoRetriesTransientOnly(t *testing.T) {
	calls := 0
	err := Do("test_op", func() error {
		calls++
		if calls < 3 {
			return &Error{Op: "test_op", Transient: true, Err: errors.New("flaky")}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("transient retry: err=%v calls=%d, want nil after 3", err, calls)
	}

	calls = 0
	perm := &Error{Op: "test_op", Err: errors.New("wedged")}
	if err := Do("test_op", func() error { calls++; return perm }); err != perm || calls != 1 {
		t.Errorf("permanent error: err=%v calls=%d, want immediate %v", err, calls, perm)
	}

	calls = 0
	err = Do("test_op", func() error {
		calls++
		return &Error{Op: "test_op", Transient: true, Err: errors.New("always down")}
	})
	if err == nil || calls != retryAttempts {
		t.Errorf("exhausted retries: err=%v calls=%d, want failure after %d", err, calls, retryAttempts)
	}
	if !IsTransient(err) {
		t.Error("final error lost its transient flag")
	}
}
