// Package workload generates synthetic instruction traces that stand in
// for the 24 SPEC2000 benchmarks (13 floating-point + 11 integer) of the
// paper's performance evaluation.
//
// Each benchmark is described by a Profile: instruction mix, dependence
// distances, branch behaviour and a memory-locality model (hot set, cold
// working set, strided streams, pointer chasing). The generator turns a
// profile into a deterministic instruction stream whose cache and
// pipeline behaviour spans the same range as the real suite — art, mcf
// and swim are memory-bound and suffer most from cache degradation,
// while eon and mesa barely notice — which is the property Figures 9-10
// and Table 6 measure.
package workload

// Class distinguishes the integer and floating-point halves of the suite.
type Class int

const (
	Integer Class = iota
	FloatingPoint
)

func (c Class) String() string {
	if c == FloatingPoint {
		return "FP"
	}
	return "INT"
}

// Profile characterises one benchmark's synthetic behaviour.
type Profile struct {
	Name  string
	Class Class

	// Instruction mix; fractions of the dynamic stream. The remainder
	// after loads, stores, branches, and the FP/mul/div fractions is
	// plain integer ALU work.
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	FPFrac     float64 // FP add/sub fraction (FloatingPoint class only)
	MulFrac    float64 // multiplies (integer or FP per class)
	DivFrac    float64 // divides (long latency)

	// Dependences: distance (in dynamic instructions) from a consumer to
	// its producer is 1 + a geometric draw with parameter DepGeomP —
	// larger p means tighter chains and less ILP. SecondSrcProb is the
	// probability an instruction has a second register source.
	DepGeomP      float64
	SecondSrcProb float64

	// Branching: probability a branch is mispredicted. The paper's
	// processor flushes and refills the pipeline on each mispredict.
	MispredictRate float64

	// Data memory locality. An access is strided with probability
	// StrideFrac (sequential walks over big arrays — perfect spatial
	// locality, misses only at block boundaries); otherwise it falls in
	// the hot set with probability HotFrac (random within HotSetKB,
	// mostly L1 hits) or in the cold working set (random within
	// WorkingSetKB, mostly L1 misses and, if the set exceeds L2, memory
	// accesses). StrideReuse is how many consecutive stride accesses
	// touch each element before advancing — loop bodies that reuse their
	// operands miss less often per access (a reuse of r makes roughly
	// one stride access in 4r a block miss for 8-byte elements and
	// 32-byte blocks).
	StrideFrac   float64
	StrideReuse  int
	HotFrac      float64
	HotSetKB     int
	WorkingSetKB int

	// Instruction-fetch locality: code footprint in KB; the front end
	// walks loop bodies inside it. Footprints beyond the 16 KB L1I
	// generate instruction-cache misses (gcc, crafty, vortex).
	CodeKB int
}

// SPEC2000 returns the 24-benchmark suite: 11 SPECint and 13 SPECfp
// models matching the paper's "13 floating-point and 11 integer
// benchmarks". The numbers are calibrated from the suite's published
// characterisations: memory-bound outliers (mcf, art, swim, lucas),
// balanced cores (gcc, gap, applu), and compute-bound extremes (eon,
// mesa, sixtrack, crafty).
func SPEC2000() []Profile {
	return []Profile{
		// --- SPECint (11) ---
		{Name: "gzip", Class: Integer, LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.17,
			MulFrac: 0.01, DepGeomP: 0.48, SecondSrcProb: 0.45, MispredictRate: 0.06,
			StrideFrac: 0.20, StrideReuse: 2, HotFrac: 0.995, HotSetKB: 4, WorkingSetKB: 180, CodeKB: 8},
		{Name: "vpr", Class: Integer, LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.14,
			MulFrac: 0.02, DepGeomP: 0.53, SecondSrcProb: 0.50, MispredictRate: 0.09,
			StrideFrac: 0.20, StrideReuse: 2, HotFrac: 0.99, HotSetKB: 5, WorkingSetKB: 512, CodeKB: 12},
		{Name: "gcc", Class: Integer, LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.19,
			MulFrac: 0.01, DepGeomP: 0.51, SecondSrcProb: 0.42, MispredictRate: 0.07,
			StrideFrac: 0.25, StrideReuse: 2, HotFrac: 0.98, HotSetKB: 5, WorkingSetKB: 1400, CodeKB: 28},
		{Name: "mcf", Class: Integer, LoadFrac: 0.31, StoreFrac: 0.09, BranchFrac: 0.17,
			MulFrac: 0.01, DepGeomP: 0.63, SecondSrcProb: 0.40, MispredictRate: 0.08,
			StrideFrac: 0.05, StrideReuse: 1, HotFrac: 0.76, HotSetKB: 6, WorkingSetKB: 50000, CodeKB: 6},
		{Name: "crafty", Class: Integer, LoadFrac: 0.27, StoreFrac: 0.07, BranchFrac: 0.13,
			MulFrac: 0.02, DepGeomP: 0.43, SecondSrcProb: 0.55, MispredictRate: 0.08,
			StrideFrac: 0.20, StrideReuse: 4, HotFrac: 0.997, HotSetKB: 4, WorkingSetKB: 250, CodeKB: 24},
		{Name: "parser", Class: Integer, LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.18,
			MulFrac: 0.01, DepGeomP: 0.55, SecondSrcProb: 0.45, MispredictRate: 0.09,
			StrideFrac: 0.20, StrideReuse: 2, HotFrac: 0.981, HotSetKB: 5, WorkingSetKB: 900, CodeKB: 14},
		{Name: "eon", Class: Integer, LoadFrac: 0.26, StoreFrac: 0.13, BranchFrac: 0.11,
			MulFrac: 0.04, DepGeomP: 0.41, SecondSrcProb: 0.55, MispredictRate: 0.04,
			StrideFrac: 0.20, StrideReuse: 8, HotFrac: 0.9985, HotSetKB: 3, WorkingSetKB: 60, CodeKB: 18},
		{Name: "perlbmk", Class: Integer, LoadFrac: 0.27, StoreFrac: 0.12, BranchFrac: 0.16,
			MulFrac: 0.01, DepGeomP: 0.49, SecondSrcProb: 0.45, MispredictRate: 0.06,
			StrideFrac: 0.20, StrideReuse: 3, HotFrac: 0.99, HotSetKB: 5, WorkingSetKB: 400, CodeKB: 26},
		{Name: "gap", Class: Integer, LoadFrac: 0.26, StoreFrac: 0.09, BranchFrac: 0.15,
			MulFrac: 0.03, DepGeomP: 0.51, SecondSrcProb: 0.48, MispredictRate: 0.05,
			StrideFrac: 0.30, StrideReuse: 3, HotFrac: 0.993, HotSetKB: 5, WorkingSetKB: 700, CodeKB: 16},
		{Name: "vortex", Class: Integer, LoadFrac: 0.29, StoreFrac: 0.14, BranchFrac: 0.15,
			MulFrac: 0.01, DepGeomP: 0.47, SecondSrcProb: 0.44, MispredictRate: 0.04,
			StrideFrac: 0.25, StrideReuse: 2, HotFrac: 0.995, HotSetKB: 5, WorkingSetKB: 1200, CodeKB: 30},
		{Name: "bzip2", Class: Integer, LoadFrac: 0.24, StoreFrac: 0.09, BranchFrac: 0.15,
			MulFrac: 0.01, DepGeomP: 0.50, SecondSrcProb: 0.46, MispredictRate: 0.07,
			StrideFrac: 0.30, StrideReuse: 3, HotFrac: 0.993, HotSetKB: 5, WorkingSetKB: 850, CodeKB: 8},

		// --- SPECfp (13) ---
		{Name: "wupwise", Class: FloatingPoint, LoadFrac: 0.24, StoreFrac: 0.09, BranchFrac: 0.06,
			FPFrac: 0.30, MulFrac: 0.12, DivFrac: 0.003, DepGeomP: 0.43, SecondSrcProb: 0.55,
			MispredictRate: 0.02, StrideFrac: 0.60, StrideReuse: 4, HotFrac: 0.969, HotSetKB: 5, WorkingSetKB: 2200, CodeKB: 8},
		{Name: "swim", Class: FloatingPoint, LoadFrac: 0.30, StoreFrac: 0.11, BranchFrac: 0.03,
			FPFrac: 0.32, MulFrac: 0.10, DivFrac: 0.001, DepGeomP: 0.46, SecondSrcProb: 0.60,
			MispredictRate: 0.01, StrideFrac: 0.75, StrideReuse: 1, HotFrac: 0.95, HotSetKB: 7, WorkingSetKB: 14000, CodeKB: 4},
		{Name: "mgrid", Class: FloatingPoint, LoadFrac: 0.33, StoreFrac: 0.07, BranchFrac: 0.03,
			FPFrac: 0.34, MulFrac: 0.11, DivFrac: 0.001, DepGeomP: 0.45, SecondSrcProb: 0.60,
			MispredictRate: 0.01, StrideFrac: 0.70, StrideReuse: 2, HotFrac: 0.89, HotSetKB: 6, WorkingSetKB: 7000, CodeKB: 5},
		{Name: "applu", Class: FloatingPoint, LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.04,
			FPFrac: 0.31, MulFrac: 0.12, DivFrac: 0.004, DepGeomP: 0.44, SecondSrcProb: 0.58,
			MispredictRate: 0.01, StrideFrac: 0.65, StrideReuse: 2, HotFrac: 0.946, HotSetKB: 6, WorkingSetKB: 6000, CodeKB: 7},
		{Name: "mesa", Class: FloatingPoint, LoadFrac: 0.24, StoreFrac: 0.12, BranchFrac: 0.09,
			FPFrac: 0.22, MulFrac: 0.09, DivFrac: 0.002, DepGeomP: 0.41, SecondSrcProb: 0.50,
			MispredictRate: 0.03, StrideFrac: 0.45, StrideReuse: 16, HotFrac: 0.995, HotSetKB: 3, WorkingSetKB: 90, CodeKB: 16},
		{Name: "galgel", Class: FloatingPoint, LoadFrac: 0.29, StoreFrac: 0.07, BranchFrac: 0.05,
			FPFrac: 0.33, MulFrac: 0.13, DivFrac: 0.002, DepGeomP: 0.47, SecondSrcProb: 0.60,
			MispredictRate: 0.02, StrideFrac: 0.55, StrideReuse: 2, HotFrac: 0.998, HotSetKB: 6, WorkingSetKB: 900, CodeKB: 6},
		{Name: "art", Class: FloatingPoint, LoadFrac: 0.32, StoreFrac: 0.06, BranchFrac: 0.09,
			FPFrac: 0.28, MulFrac: 0.11, DivFrac: 0.001, DepGeomP: 0.58, SecondSrcProb: 0.55,
			MispredictRate: 0.02, StrideFrac: 0.35, StrideReuse: 1, HotFrac: 0.858, HotSetKB: 7, WorkingSetKB: 3600, CodeKB: 4},
		{Name: "equake", Class: FloatingPoint, LoadFrac: 0.31, StoreFrac: 0.08, BranchFrac: 0.06,
			FPFrac: 0.28, MulFrac: 0.12, DivFrac: 0.003, DepGeomP: 0.51, SecondSrcProb: 0.55,
			MispredictRate: 0.02, StrideFrac: 0.40, StrideReuse: 1, HotFrac: 0.967, HotSetKB: 6, WorkingSetKB: 2500, CodeKB: 5},
		{Name: "facerec", Class: FloatingPoint, LoadFrac: 0.27, StoreFrac: 0.07, BranchFrac: 0.05,
			FPFrac: 0.31, MulFrac: 0.12, DivFrac: 0.002, DepGeomP: 0.44, SecondSrcProb: 0.57,
			MispredictRate: 0.02, StrideFrac: 0.55, StrideReuse: 2, HotFrac: 0.976, HotSetKB: 5, WorkingSetKB: 1800, CodeKB: 6},
		{Name: "ammp", Class: FloatingPoint, LoadFrac: 0.29, StoreFrac: 0.09, BranchFrac: 0.06,
			FPFrac: 0.29, MulFrac: 0.11, DivFrac: 0.004, DepGeomP: 0.53, SecondSrcProb: 0.55,
			MispredictRate: 0.02, StrideFrac: 0.30, StrideReuse: 1, HotFrac: 0.95, HotSetKB: 6, WorkingSetKB: 2000, CodeKB: 8},
		{Name: "lucas", Class: FloatingPoint, LoadFrac: 0.26, StoreFrac: 0.10, BranchFrac: 0.02,
			FPFrac: 0.33, MulFrac: 0.14, DivFrac: 0.001, DepGeomP: 0.47, SecondSrcProb: 0.62,
			MispredictRate: 0.01, StrideFrac: 0.60, StrideReuse: 1, HotFrac: 0.998, HotSetKB: 7, WorkingSetKB: 10000, CodeKB: 4},
		{Name: "fma3d", Class: FloatingPoint, LoadFrac: 0.27, StoreFrac: 0.11, BranchFrac: 0.07,
			FPFrac: 0.30, MulFrac: 0.12, DivFrac: 0.003, DepGeomP: 0.46, SecondSrcProb: 0.55,
			MispredictRate: 0.02, StrideFrac: 0.45, StrideReuse: 2, HotFrac: 0.938, HotSetKB: 5, WorkingSetKB: 1600, CodeKB: 12},
		{Name: "apsi", Class: FloatingPoint, LoadFrac: 0.28, StoreFrac: 0.09, BranchFrac: 0.05,
			FPFrac: 0.30, MulFrac: 0.12, DivFrac: 0.003, DepGeomP: 0.45, SecondSrcProb: 0.57,
			MispredictRate: 0.02, StrideFrac: 0.50, StrideReuse: 2, HotFrac: 0.925, HotSetKB: 6, WorkingSetKB: 1900, CodeKB: 9},
	}
}

// ByName returns the profile with the given benchmark name.
func ByName(name string) (Profile, bool) {
	for _, p := range SPEC2000() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns the benchmark names in suite order.
func Names() []string {
	suite := SPEC2000()
	out := make([]string, len(suite))
	for i, p := range suite {
		out[i] = p.Name
	}
	return out
}
