package workload

import (
	"fmt"
	"math"

	"yieldcache/internal/stats"
)

// OpClass is the functional class of a synthetic instruction.
type OpClass int

const (
	IALU OpClass = iota
	IMul
	IDiv
	FAdd
	FMul
	FDiv
	Load
	Store
	Branch
	NumOpClasses
)

var opNames = [NumOpClasses]string{"ialu", "imul", "idiv", "fadd", "fmul", "fdiv", "load", "store", "branch"}

func (o OpClass) String() string {
	if o < 0 || o >= NumOpClasses {
		return fmt.Sprintf("OpClass(%d)", int(o))
	}
	return opNames[o]
}

// Instr is one dynamic instruction of a synthetic trace.
type Instr struct {
	Op OpClass
	// Src1Dist/Src2Dist are the distances (in dynamic instructions) back
	// to the producers of the source operands; 0 means no register
	// dependence on recent instructions.
	Src1Dist, Src2Dist int
	// Addr is the data address of a load or store.
	Addr uint64
	// PC is the instruction address (drives the I-cache).
	PC uint64
	// Taken and Mispredicted describe branch outcome and prediction.
	Taken, Mispredicted bool
}

// Generator produces the deterministic instruction stream of one
// benchmark profile.
type Generator struct {
	p   Profile
	rng *stats.RNG

	pc        uint64
	codeBase  uint64
	loopStart uint64
	loopLeft  int

	// data regions
	hotBase     uint64
	coldBase    uint64
	streamPtrs  []uint64 // strided walkers
	streamReuse []int    // remaining touches of the current element
	streamIdx   int

	count uint64
}

// streamStagger offsets each stream's walk so that the concurrently
// active stream blocks land in different cache sets. Real array bases
// are effectively random relative to each other; without the stagger all
// walkers would advance in lockstep through identical set indices and
// pile into a single set — an artefact that makes associativity look far
// more precious than it is.
func streamStagger(i int) uint64 {
	return uint64(i) * 2080 // 65 cache blocks: co-prime-ish with 128 sets
}

// Region base addresses keep the synthetic address spaces of code, hot
// data, cold data and streams disjoint.
const (
	codeRegion   = 0x0040_0000
	hotRegion    = 0x1000_0000
	coldRegion   = 0x2000_0000
	streamRegion = 0x4000_0000
	numStreams   = 4
)

// NewGenerator returns a generator for profile p; the stream is a pure
// function of (p, seed).
func NewGenerator(p Profile, seed int64) *Generator {
	g := &Generator{
		p:        p,
		rng:      stats.NewRNG(seed),
		pc:       codeRegion,
		codeBase: codeRegion,
		hotBase:  hotRegion,
		coldBase: coldRegion,
	}
	g.streamPtrs = make([]uint64, numStreams)
	g.streamReuse = make([]int, numStreams)
	for i := range g.streamPtrs {
		g.streamPtrs[i] = streamRegion + uint64(i)<<24 + streamStagger(i)
	}
	g.loopStart = g.pc
	g.loopLeft = g.loopLen()
	return g
}

// Profile returns the profile the generator was built from.
func (g *Generator) Profile() Profile { return g.p }

func (g *Generator) loopLen() int {
	// Loop bodies of 20..200 instructions walked repeatedly.
	return 20 + g.rng.Intn(180)
}

// geometric returns 1 + Geom(p): the dependence distance draw.
func (g *Generator) geometric(p float64) int {
	if p <= 0 {
		return 1
	}
	u := g.rng.Float64()
	// Inverse CDF of the geometric distribution on {0, 1, ...}.
	k := int(math.Floor(math.Log(1-u) / math.Log(1-p)))
	if k < 0 {
		k = 0
	}
	return 1 + k
}

// dataAddr draws the next data address per the locality model.
func (g *Generator) dataAddr() uint64 {
	r := g.rng.Float64()
	switch {
	case r < g.p.StrideFrac:
		// Sequential walk of one of the streams: each element is touched
		// StrideReuse times, then the walker advances 8 bytes, wrapping
		// within the working set so the footprint stays bounded.
		i := g.streamIdx
		g.streamIdx = (g.streamIdx + 1) % numStreams
		if g.streamReuse[i] > 0 {
			g.streamReuse[i]--
			return g.streamPtrs[i]
		}
		reuse := g.p.StrideReuse
		if reuse < 1 {
			reuse = 1
		}
		g.streamReuse[i] = reuse - 1
		g.streamPtrs[i] += 8
		span := uint64(g.p.WorkingSetKB) * 1024 / numStreams
		if span == 0 {
			span = 4096
		}
		base := streamRegion + uint64(i)<<24
		if g.streamPtrs[i] >= base+span {
			g.streamPtrs[i] = base + streamStagger(i)
		}
		return g.streamPtrs[i]
	case r < g.p.StrideFrac+(1-g.p.StrideFrac)*g.p.HotFrac:
		// Hot-set reuse is heavily skewed (stack frames, top-of-heap
		// structures): drawing the offset as span*u^4 concentrates most
		// accesses in a small core while the tail still touches the whole
		// hot set. This is what makes real codes lose only ~1% CPI when a
		// cache way is disabled — a uniform draw would churn the whole
		// set and overstate the YAPD penalty by an order of magnitude.
		span := float64(g.p.HotSetKB) * 1024
		if span == 0 {
			span = 1024
		}
		u := g.rng.Float64()
		off := uint64(span * u * u * u * u)
		return g.hotBase + off&^7
	default:
		span := uint64(g.p.WorkingSetKB) * 1024
		if span == 0 {
			span = 4096
		}
		return g.coldBase + (uint64(g.rng.Int63()) % span &^ 7)
	}
}

// Next returns the next dynamic instruction.
func (g *Generator) Next() Instr {
	in := Instr{PC: g.pc}
	r := g.rng.Float64()
	p := g.p
	switch {
	case r < p.LoadFrac:
		in.Op = Load
		in.Addr = g.dataAddr()
	case r < p.LoadFrac+p.StoreFrac:
		in.Op = Store
		in.Addr = g.dataAddr()
	case r < p.LoadFrac+p.StoreFrac+p.BranchFrac:
		in.Op = Branch
	case r < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac:
		in.Op = FAdd
	case r < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac+p.MulFrac:
		if p.Class == FloatingPoint {
			in.Op = FMul
		} else {
			in.Op = IMul
		}
	case r < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac+p.MulFrac+p.DivFrac:
		if p.Class == FloatingPoint {
			in.Op = FDiv
		} else {
			in.Op = IDiv
		}
	default:
		in.Op = IALU
	}

	// Register dependences: every consumer reaches back a geometric
	// distance; stores and branches consume (address/condition), loads
	// consume their address register.
	in.Src1Dist = g.geometric(p.DepGeomP)
	if g.rng.Float64() < p.SecondSrcProb {
		in.Src2Dist = g.geometric(p.DepGeomP)
	}

	// Advance the PC: straight-line inside the loop body, back edge (or
	// occasional fresh loop elsewhere in the code footprint) at the end.
	g.pc += 4
	g.loopLeft--
	if in.Op == Branch {
		in.Taken = g.loopLeft <= 0
		in.Mispredicted = g.rng.Float64() < p.MispredictRate
	}
	if g.loopLeft <= 0 {
		if g.rng.Float64() < 0.25 {
			// Move to a different loop in the code footprint.
			span := uint64(p.CodeKB) * 1024
			if span == 0 {
				span = 1024
			}
			g.loopStart = g.codeBase + (uint64(g.rng.Int63())%span)&^3
		}
		g.pc = g.loopStart
		g.loopLeft = g.loopLen()
	}
	g.count++
	return in
}

// Generated reports how many instructions have been produced.
func (g *Generator) Generated() uint64 { return g.count }
