package workload

import "testing"

func TestStreamsWrapWithinWorkingSet(t *testing.T) {
	p, _ := ByName("swim") // stride-heavy
	g := NewGenerator(p, 3)
	span := uint64(p.WorkingSetKB) * 1024 / numStreams
	for i := 0; i < 2_000_000; i++ {
		in := g.Next()
		if in.Op != Load && in.Op != Store {
			continue
		}
		if in.Addr < streamRegion {
			continue
		}
		stream := (in.Addr - streamRegion) >> 24
		base := streamRegion + stream<<24
		if off := in.Addr - base; off >= span+streamStagger(int(stream)) {
			t.Fatalf("stream %d escaped its span: offset %d >= %d", stream, off, span)
		}
	}
}

func TestStreamsAreStaggeredAcrossSets(t *testing.T) {
	// The concurrently active stream blocks must not share a cache set
	// (32B blocks, 128 sets); see streamStagger.
	seen := map[uint64]bool{}
	for i := 0; i < numStreams; i++ {
		set := (streamStagger(i) >> 5) & 127
		if seen[set] {
			t.Fatalf("streams collide in set %d", set)
		}
		seen[set] = true
	}
}

func TestStrideReuseTouchesElementRepeatedly(t *testing.T) {
	p, _ := ByName("crafty") // StrideReuse = 4
	g := NewGenerator(p, 9)
	// Count consecutive repeats per stream address.
	last := map[uint64]uint64{}
	repeats, advances := 0, 0
	for i := 0; i < 500_000; i++ {
		in := g.Next()
		if (in.Op != Load && in.Op != Store) || in.Addr < streamRegion {
			continue
		}
		stream := (in.Addr - streamRegion) >> 24
		if last[stream] == in.Addr {
			repeats++
		} else {
			advances++
		}
		last[stream] = in.Addr
	}
	if advances == 0 {
		t.Fatal("streams never advanced")
	}
	ratio := float64(repeats) / float64(advances)
	// Reuse 4 means ~3 repeats per advance.
	if ratio < 2.4 || ratio > 3.6 {
		t.Errorf("repeat/advance ratio = %v, want ~3 for reuse 4", ratio)
	}
}

func TestHotSetConcentration(t *testing.T) {
	p, _ := ByName("gzip")
	g := NewGenerator(p, 5)
	span := uint64(p.HotSetKB) * 1024
	inCore, total := 0, 0
	for i := 0; i < 500_000; i++ {
		in := g.Next()
		if (in.Op != Load && in.Op != Store) || in.Addr < hotRegion || in.Addr >= coldRegion {
			continue
		}
		total++
		if in.Addr-hotRegion < span/8 {
			inCore++
		}
	}
	if total == 0 {
		t.Fatal("no hot accesses")
	}
	// u^4 drawing: P(offset < span/8) = (1/8)^(1/4) ~ 0.59.
	frac := float64(inCore) / float64(total)
	if frac < 0.45 || frac > 0.75 {
		t.Errorf("hot-core concentration = %v, want ~0.6 (u^4 draw)", frac)
	}
}
