package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSuiteComposition(t *testing.T) {
	suite := SPEC2000()
	if len(suite) != 24 {
		t.Fatalf("suite has %d benchmarks, want 24", len(suite))
	}
	ints, fps := 0, 0
	seen := map[string]bool{}
	for _, p := range suite {
		if seen[p.Name] {
			t.Errorf("duplicate benchmark %q", p.Name)
		}
		seen[p.Name] = true
		switch p.Class {
		case Integer:
			ints++
		case FloatingPoint:
			fps++
		}
	}
	if ints != 11 || fps != 13 {
		t.Errorf("suite split = %d INT + %d FP, want 11 + 13 (Section 5.2)", ints, fps)
	}
}

func TestProfileFractionsSane(t *testing.T) {
	for _, p := range SPEC2000() {
		sum := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.FPFrac + p.MulFrac + p.DivFrac
		if sum >= 1 {
			t.Errorf("%s: instruction-mix fractions sum to %v >= 1", p.Name, sum)
		}
		if p.LoadFrac <= 0 || p.HotSetKB <= 0 || p.WorkingSetKB <= 0 || p.CodeKB <= 0 {
			t.Errorf("%s: degenerate profile %+v", p.Name, p)
		}
		if p.HotSetKB > 16 {
			t.Errorf("%s: hot set %dKB exceeds the 16KB L1", p.Name, p.HotSetKB)
		}
		if p.StrideFrac < 0 || p.StrideFrac > 1 || p.HotFrac < 0 || p.HotFrac > 1 {
			t.Errorf("%s: locality fractions out of range", p.Name)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, ok := ByName("mcf"); !ok {
		t.Error("mcf missing")
	}
	if _, ok := ByName("doom"); ok {
		t.Error("unknown benchmark found")
	}
	if len(Names()) != 24 {
		t.Error("Names() length wrong")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("gcc")
	a := NewGenerator(p, 42)
	b := NewGenerator(p, 42)
	for i := 0; i < 10000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, x, y)
		}
	}
	if a.Generated() != 10000 {
		t.Errorf("Generated() = %d", a.Generated())
	}
}

func TestGeneratorMixConverges(t *testing.T) {
	p, _ := ByName("swim")
	g := NewGenerator(p, 7)
	n := 200000
	counts := make([]int, NumOpClasses)
	for i := 0; i < n; i++ {
		counts[g.Next().Op]++
	}
	loadFrac := float64(counts[Load]) / float64(n)
	if math.Abs(loadFrac-p.LoadFrac) > 0.01 {
		t.Errorf("load fraction = %v, want ~%v", loadFrac, p.LoadFrac)
	}
	storeFrac := float64(counts[Store]) / float64(n)
	if math.Abs(storeFrac-p.StoreFrac) > 0.01 {
		t.Errorf("store fraction = %v, want ~%v", storeFrac, p.StoreFrac)
	}
	if counts[FMul] == 0 || counts[FAdd] == 0 {
		t.Error("FP benchmark generated no FP ops")
	}
	if counts[IMul] != 0 {
		t.Error("FP benchmark should map multiplies to FMul")
	}
}

func TestIntegerBenchmarkHasNoFP(t *testing.T) {
	p, _ := ByName("gzip")
	g := NewGenerator(p, 3)
	for i := 0; i < 50000; i++ {
		in := g.Next()
		if in.Op == FAdd || in.Op == FMul || in.Op == FDiv {
			t.Fatalf("integer benchmark generated %v", in.Op)
		}
	}
}

func TestAddressesStayInRegions(t *testing.T) {
	p, _ := ByName("mcf")
	g := NewGenerator(p, 11)
	for i := 0; i < 100000; i++ {
		in := g.Next()
		switch in.Op {
		case Load, Store:
			if in.Addr == 0 {
				t.Fatal("memory op without address")
			}
			if in.Addr%8 != 0 {
				t.Fatalf("unaligned synthetic address %#x", in.Addr)
			}
			if in.Addr < hotRegion {
				t.Fatalf("data address %#x collides with code region", in.Addr)
			}
		default:
			if in.Addr != 0 {
				t.Fatalf("%v carries a data address", in.Op)
			}
		}
		if in.PC < codeRegion || in.PC >= hotRegion {
			t.Fatalf("PC %#x outside code region", in.PC)
		}
		if in.PC%4 != 0 {
			t.Fatalf("unaligned PC %#x", in.PC)
		}
	}
}

func TestDependenceDistances(t *testing.T) {
	p, _ := ByName("mcf") // tight chains: DepGeomP = 0.5
	g := NewGenerator(p, 5)
	n := 100000
	sum, withSecond := 0, 0
	for i := 0; i < n; i++ {
		in := g.Next()
		if in.Src1Dist < 1 {
			t.Fatal("Src1Dist must be at least 1")
		}
		sum += in.Src1Dist
		if in.Src2Dist > 0 {
			withSecond++
		}
	}
	mean := float64(sum) / float64(n)
	want := 1 + (1-p.DepGeomP)/p.DepGeomP // mean of 1+Geom(p)
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("mean dependence distance = %v, want ~%v", mean, want)
	}
	frac := float64(withSecond) / float64(n)
	if math.Abs(frac-p.SecondSrcProb) > 0.01 {
		t.Errorf("second-source fraction = %v, want ~%v", frac, p.SecondSrcProb)
	}
}

func TestMemoryIntensityOrdering(t *testing.T) {
	// The suite must span the memory-boundedness range the paper's
	// figures rely on: mcf's cold fraction far above eon's.
	cold := func(name string) float64 {
		p, _ := ByName(name)
		return (1 - p.StrideFrac) * (1 - p.HotFrac)
	}
	if !(cold("mcf") > 5*cold("eon")) {
		t.Errorf("mcf cold fraction (%v) should dwarf eon's (%v)", cold("mcf"), cold("eon"))
	}
	if !(cold("art") > cold("mesa")) {
		t.Errorf("art (%v) should be more memory-bound than mesa (%v)", cold("art"), cold("mesa"))
	}
}

func TestBranchBehaviour(t *testing.T) {
	p, _ := ByName("gcc")
	g := NewGenerator(p, 13)
	n := 200000
	branches, mispred := 0, 0
	for i := 0; i < n; i++ {
		in := g.Next()
		if in.Op == Branch {
			branches++
			if in.Mispredicted {
				mispred++
			}
		} else if in.Mispredicted || in.Taken {
			t.Fatal("non-branch carries branch outcome")
		}
	}
	if branches == 0 {
		t.Fatal("no branches generated")
	}
	rate := float64(mispred) / float64(branches)
	if math.Abs(rate-p.MispredictRate) > 0.01 {
		t.Errorf("mispredict rate = %v, want ~%v", rate, p.MispredictRate)
	}
}

// Property: any profile from the suite with any seed generates valid
// instructions (op in range, distances positive, loads/stores addressed).
func TestGeneratorValidityProperty(t *testing.T) {
	suite := SPEC2000()
	f := func(seed int64, pick uint8, steps uint16) bool {
		p := suite[int(pick)%len(suite)]
		g := NewGenerator(p, seed)
		n := int(steps%2000) + 1
		for i := 0; i < n; i++ {
			in := g.Next()
			if in.Op < 0 || in.Op >= NumOpClasses {
				return false
			}
			if in.Src1Dist < 1 {
				return false
			}
			if (in.Op == Load || in.Op == Store) == (in.Addr == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
