package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters never go down
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("hits_total") != c {
		t.Error("second lookup should return the same counter")
	}
	g := r.Gauge("speed")
	g.Set(2.5)
	g.Add(0.5)
	if got := g.Value(); got != 3.0 {
		t.Errorf("gauge = %v, want 3", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every disabled-path accessor must be a no-op, not a panic.
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", nil).Observe(1)
	var tr *Tracer
	sp := tr.StartSpan("x")
	sp.Child("y").End()
	sp.Worker("z", 3).End()
	sp.End()
	if s := tr.Summary(); !strings.Contains(s, "no spans") {
		t.Errorf("nil tracer summary = %q", s)
	}
	Disable()
	C("x").Inc()
	G("x").Set(1)
	H("x", nil).Observe(1)
	StartSpan("x").End()
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0} {
		h.Observe(v)
	}
	// Bounds are inclusive upper edges: 0.5,1.0 -> le=1; 1.5,2.0 -> le=2;
	// 3.0,4.0 -> le=4; 100 -> overflow.
	want := []int64{2, 2, 2, 1}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if math.Abs(h.Sum()-112.0) > 1e-9 {
		t.Errorf("sum = %v, want 112", h.Sum())
	}
	// Unsorted bounds are sorted at construction.
	h2 := newHistogram([]float64{4, 1, 2})
	h2.Observe(1.5)
	if b := h2.Buckets(); b[1] != 1 {
		t.Errorf("unsorted-bounds bucketing wrong: %v", b)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0.5, 0.25, 3)
	if lin[0] != 0.5 || lin[1] != 0.75 || lin[2] != 1.0 {
		t.Errorf("linear buckets = %v", lin)
	}
	exp := ExpBuckets(1e-3, 10, 3)
	if exp[0] != 1e-3 || exp[1] != 1e-2 || exp[2] != 1e-1 {
		t.Errorf("exp buckets = %v", exp)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{10, 100, 1000}).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Errorf("concurrent gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total").Add(3)
	r.Gauge("chips_per_second").Set(123.5)
	r.Histogram("cpi", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64     `json:"count"`
			Sum     float64   `json:"sum"`
			Bounds  []float64 `json:"bounds"`
			Buckets []int64   `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if out.Counters["runs_total"] != 3 {
		t.Errorf("counters = %v", out.Counters)
	}
	if out.Gauges["chips_per_second"] != 123.5 {
		t.Errorf("gauges = %v", out.Gauges)
	}
	h := out.Histograms["cpi"]
	if h.Count != 1 || h.Sum != 1.5 || len(h.Buckets) != 3 || h.Buckets[1] != 1 {
		t.Errorf("histogram = %+v", h)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total").Add(3)
	r.Counter(`scheme_saved_total{scheme="YAPD"}`).Add(7)
	r.Gauge("chips_per_second").Set(123.5)
	h := r.Histogram("cpi", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE runs_total counter",
		"runs_total 3",
		"# TYPE scheme_saved_total counter",
		`scheme_saved_total{scheme="YAPD"} 7`,
		"# TYPE chips_per_second gauge",
		"chips_per_second 123.5",
		"# TYPE cpi histogram",
		`cpi_bucket{le="1"} 1`,
		`cpi_bucket{le="2"} 2`,
		`cpi_bucket{le="+Inf"} 3`,
		"cpi_sum 11",
		"cpi_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTracerTreeAndChromeTrace(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("pipeline")
	build := tr.StartSpan("build") // nested: build is open inside pipeline
	w0 := build.Worker("worker", 0)
	w1 := build.Worker("worker", 1)
	time.Sleep(time.Millisecond)
	w0.End()
	w1.End()
	build.End()
	eval := tr.StartSpan("evaluate")
	eval.End()
	root.End()

	sum := tr.Summary()
	for _, want := range []string{"pipeline", "build", "worker ×2", "evaluate"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	// "build" indents deeper than "pipeline".
	var pipeIndent, buildIndent int
	for _, line := range strings.Split(sum, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		if strings.HasPrefix(trimmed, "pipeline") {
			pipeIndent = len(line) - len(trimmed)
		}
		if strings.HasPrefix(trimmed, "build") {
			buildIndent = len(line) - len(trimmed)
		}
	}
	if buildIndent <= pipeIndent {
		t.Errorf("build (indent %d) should nest under pipeline (indent %d):\n%s",
			buildIndent, pipeIndent, sum)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) != 5 {
		t.Fatalf("trace has %d events, want 5", len(trace.TraceEvents))
	}
	tids := map[string]int{}
	for _, e := range trace.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q phase = %q, want X", e.Name, e.Ph)
		}
		if e.Dur < 0 {
			t.Errorf("event %q has negative duration", e.Name)
		}
		tids[e.Name] = e.Tid
	}
	if tids["pipeline"] != 1 || tids["build"] != 1 {
		t.Errorf("main-lane spans should be on tid 1: %v", tids)
	}
	// The two workers share a name; at least one must be off the main lane.
	if tids["worker"] == 1 {
		t.Errorf("worker spans should have their own lanes: %v", tids)
	}
}

func TestTracerOpenSpanSnapshot(t *testing.T) {
	tr := NewTracer()
	tr.StartSpan("never_ended")
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Summary(), "never_ended") {
		t.Error("open span missing from summary")
	}
}

func TestManifest(t *testing.T) {
	m := NewManifest("yieldsim")
	m.Set("seed", int64(2006)).Set("chips", 2000).Set("constraints", "nominal")
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out Manifest
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if out.Tool != "yieldsim" || out.GoVersion == "" || out.GOMAXPROCS < 1 {
		t.Errorf("environment fields missing: %+v", out)
	}
	if out.Params["seed"] != "2006" || out.Params["chips"] != "2000" ||
		out.Params["constraints"] != "nominal" {
		t.Errorf("params = %v", out.Params)
	}
	// Nil manifest (observability off) must absorb Set chains.
	var nilM *Manifest
	nilM.Set("a", 1).Set("b", 2)
}

func TestEnableDisableDefault(t *testing.T) {
	defer Disable()
	r := Enable()
	C("x").Inc()
	if r.Counter("x").Value() != 1 {
		t.Error("package-level counter did not reach the default registry")
	}
	tr := EnableTracing()
	StartSpan("phase").End()
	if !strings.Contains(tr.Summary(), "phase") {
		t.Error("package-level span did not reach the default tracer")
	}
	Disable()
	if Default() != nil || DefaultTracer() != nil {
		t.Error("Disable did not clear the defaults")
	}
}

// BenchmarkObsDisabled proves the disabled instrumentation path costs a
// few nanoseconds: an atomic pointer load plus nil-receiver method
// calls, no allocation.
func BenchmarkObsDisabled(b *testing.B) {
	Disable()
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			C("cpu_instructions_total").Add(1)
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			H("perf_benchmark_cpi", nil).Observe(1.5)
		}
	})
	b.Run("span", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			StartSpan("phase").End()
		}
	})
	b.Run("span_ctx", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			StartSpanCtx(ctx, "phase").End()
		}
	})
	b.Run("scope_progress", func(b *testing.B) {
		var s *Scope
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.AddProgress(1)
		}
	})
}

// BenchmarkObsEnabled is the comparison point: the live counter path.
func BenchmarkObsEnabled(b *testing.B) {
	Enable()
	defer Disable()
	c := C("cpu_instructions_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
