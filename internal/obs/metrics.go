package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe on a nil receiver (the disabled no-op path) and for concurrent
// use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the current value.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram: bounds are the
// inclusive upper edges of the finite buckets; one overflow bucket
// catches everything beyond the last bound.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	total   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns the (non-cumulative) per-bucket counts; the final
// entry is the overflow bucket.
func (h *Histogram) Buckets() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Bounds returns the finite bucket upper edges.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n bounds start, start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry holds named metrics. Metric names follow Prometheus
// conventions and may carry a label suffix in exposition form, e.g.
// `core_scheme_saved_total{scheme="YAPD"}` — the whole string is the
// registry key, and the encoders split it back into name and labels.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (registering on first use) the named counter.
// Nil-safe: a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram;
// bounds are only consulted on first registration.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

type histogramJSON struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

type registryJSON struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]histogramJSON `json:"histograms"`
}

// WriteJSON encodes the whole registry as one JSON object (keys sorted,
// so output is diffable across runs).
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	out := registryJSON{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]histogramJSON),
	}
	r.mu.Lock()
	for n, c := range r.counters {
		out.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		out.Gauges[n] = g.Value()
	}
	for n, h := range r.histograms {
		out.Histograms[n] = histogramJSON{
			Count: h.Count(), Sum: h.Sum(), Bounds: h.Bounds(), Buckets: h.Buckets(),
		}
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// splitName separates a registry key into its metric name and an
// optional `{...}` label suffix (exposition form).
func splitName(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// joinLabels merges an existing label set with one extra label.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus encodes the registry in the Prometheus text
// exposition format (version 0.0.4): TYPE comments per metric family,
// cumulative `_bucket` series with `le` labels for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := sortedKeys(r.counters)
	gauges := sortedKeys(r.gauges)
	hists := sortedKeys(r.histograms)
	r.mu.Unlock()

	var b strings.Builder
	typed := make(map[string]bool)
	emitType := func(name, kind string) {
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
		}
	}
	for _, key := range counters {
		name, labels := splitName(key)
		emitType(name, "counter")
		fmt.Fprintf(&b, "%s %d\n", series(name, labels), r.Counter(key).Value())
	}
	for _, key := range gauges {
		name, labels := splitName(key)
		emitType(name, "gauge")
		fmt.Fprintf(&b, "%s %s\n", series(name, labels), formatFloat(r.Gauge(key).Value()))
	}
	for _, key := range hists {
		name, labels := splitName(key)
		emitType(name, "histogram")
		h := r.Histogram(key, nil)
		cum := int64(0)
		bounds := h.Bounds()
		for i, c := range h.Buckets() {
			cum += c
			le := "+Inf"
			if i < len(bounds) {
				le = formatFloat(bounds[i])
			}
			fmt.Fprintf(&b, "%s %d\n",
				series(name+"_bucket", joinLabels(labels, `le="`+le+`"`)), cum)
		}
		fmt.Fprintf(&b, "%s %s\n", series(name+"_sum", labels), formatFloat(h.Sum()))
		fmt.Fprintf(&b, "%s %d\n", series(name+"_count", labels), h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func series(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
