// Package obs is the instrumentation layer of the yield pipeline:
// a metrics registry (atomic counters, gauges, fixed-bucket histograms
// with JSON and Prometheus text encoders), span-based phase tracing
// (wall-time per pipeline phase, rendered as a text flame summary or a
// Chrome trace_event file), and a run-manifest writer that captures
// everything needed to reproduce a run.
//
// The package-level default registry and tracer start disabled: every
// accessor is nil-safe, so instrumented code pays only an atomic load
// and a nil check when observability is off (see BenchmarkObsDisabled).
// CLIs switch it on via Flags/Activate; libraries just call C, G, H and
// StartSpan unconditionally.
package obs

import "sync/atomic"

var (
	defaultRegistry atomic.Pointer[Registry]
	defaultTracer   atomic.Pointer[Tracer]
)

// Enable installs (and returns) a fresh default metrics registry.
// Instrumented code picks it up on its next C/G/H call.
func Enable() *Registry {
	r := NewRegistry()
	defaultRegistry.Store(r)
	return r
}

// EnableTracing installs (and returns) a fresh default tracer.
func EnableTracing() *Tracer {
	t := NewTracer()
	defaultTracer.Store(t)
	return t
}

// Disable switches both the default registry and the default tracer
// off again; subsequent C/G/H/StartSpan calls become no-ops.
func Disable() {
	defaultRegistry.Store(nil)
	defaultTracer.Store(nil)
}

// Default returns the default registry, or nil when disabled.
func Default() *Registry { return defaultRegistry.Load() }

// DefaultTracer returns the default tracer, or nil when disabled.
func DefaultTracer() *Tracer { return defaultTracer.Load() }

// C returns the named counter of the default registry (nil → no-op).
func C(name string) *Counter { return defaultRegistry.Load().Counter(name) }

// G returns the named gauge of the default registry (nil → no-op).
func G(name string) *Gauge { return defaultRegistry.Load().Gauge(name) }

// H returns the named histogram of the default registry (nil → no-op).
// The bounds apply only on first registration of the name.
func H(name string, bounds []float64) *Histogram {
	return defaultRegistry.Load().Histogram(name, bounds)
}

// StartSpan opens a phase span on the default tracer, nested under the
// innermost span currently open on the caller's (sequential) phase
// stack. Returns nil — a no-op span — when tracing is disabled.
func StartSpan(name string) *Span { return defaultTracer.Load().StartSpan(name) }
