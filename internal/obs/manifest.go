package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// Manifest captures everything needed to reproduce a run: the tool and
// its arguments, the run parameters (seed, chip count, constraint set,
// ...), and the execution environment. Written next to the results it
// makes every run auditable after the fact.
type Manifest struct {
	Tool       string            `json:"tool"`
	Args       []string          `json:"args"`
	Start      time.Time         `json:"start"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	Params     map[string]string `json:"params"`
}

// NewManifest returns a manifest pre-filled with the environment and
// the process arguments.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		Tool:       tool,
		Args:       append([]string(nil), os.Args[1:]...),
		Start:      time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Params:     make(map[string]string),
	}
}

// Set records one run parameter; values are stringified with %v.
func (m *Manifest) Set(key string, value interface{}) *Manifest {
	if m == nil {
		return nil
	}
	m.Params[key] = fmt.Sprint(value)
	return m
}

// WriteJSON encodes the manifest as indented JSON (params sorted by
// key, so manifests diff cleanly between runs).
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
