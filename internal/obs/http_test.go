package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsHandler(t *testing.T) {
	reg := Enable()
	defer Disable()
	reg.Counter("demo_total").Add(3)

	rec := httptest.NewRecorder()
	MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "# TYPE demo_total counter\ndemo_total 3\n") {
		t.Errorf("exposition missing counter:\n%s", body)
	}
}

func TestMetricsHandlerDisabled(t *testing.T) {
	Disable()
	rec := httptest.NewRecorder()
	MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Errorf("disabled registry: status %d, body %q", rec.Code, rec.Body.String())
	}
}

func TestInstrument(t *testing.T) {
	reg := Enable()
	defer Disable()

	h := Instrument("demo", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("ok")) // implicit 200
	}))
	for _, path := range []string{"/", "/", "/missing"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	}

	if got := reg.Counter(`http_requests_total{handler="demo",code="200"}`).Value(); got != 2 {
		t.Errorf("200 count = %d, want 2", got)
	}
	if got := reg.Counter(`http_requests_total{handler="demo",code="404"}`).Value(); got != 1 {
		t.Errorf("404 count = %d, want 1", got)
	}
	if got := reg.Histogram(`http_request_seconds{handler="demo"}`, nil).Count(); got != 3 {
		t.Errorf("latency observations = %d, want 3", got)
	}
}
