package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsHandler(t *testing.T) {
	reg := Enable()
	defer Disable()
	reg.Counter("demo_total").Add(3)

	rec := httptest.NewRecorder()
	MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "# TYPE demo_total counter\ndemo_total 3\n") {
		t.Errorf("exposition missing counter:\n%s", body)
	}
}

func TestMetricsHandlerDisabled(t *testing.T) {
	Disable()
	rec := httptest.NewRecorder()
	MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Errorf("disabled registry: status %d, body %q", rec.Code, rec.Body.String())
	}
}

func TestInstrument(t *testing.T) {
	reg := Enable()
	defer Disable()

	h := Instrument("demo", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("ok")) // implicit 200
	}))
	for _, path := range []string{"/", "/", "/missing"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	}

	if got := reg.Counter(`http_requests_total{handler="demo",code="200"}`).Value(); got != 2 {
		t.Errorf("200 count = %d, want 2", got)
	}
	if got := reg.Counter(`http_requests_total{handler="demo",code="404"}`).Value(); got != 1 {
		t.Errorf("404 count = %d, want 1", got)
	}
	if got := reg.Histogram(`http_request_seconds{handler="demo"}`, nil).Count(); got != 3 {
		t.Errorf("latency observations = %d, want 3", got)
	}
}

// Regression: streaming handlers must see their Flush reach the
// connection through the Instrument wrapper — before this test, the
// wrapper hid the underlying Flusher and SSE responses sat in the
// server's buffer until the handler returned.
func TestInstrumentForwardsFlush(t *testing.T) {
	reg := Enable()
	defer Disable()

	flushed := false
	h := Instrument("stream", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("data: x\n\n"))
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("ResponseWriter behind Instrument does not implement http.Flusher")
		}
		f.Flush()
		flushed = true
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if !flushed {
		t.Fatal("handler never reached Flush")
	}
	if !rec.Flushed {
		t.Error("Flush was not forwarded to the underlying writer")
	}
	if got := reg.Counter(`http_requests_total{handler="stream",code="200"}`).Value(); got != 1 {
		t.Errorf("request counted with code != 200 (200-count = %d)", got)
	}
}

// Regression: a WriteHeader arriving after the first body write must
// neither change the recorded status (the client already saw 200) nor
// be forwarded (net/http would log a superfluous-WriteHeader warning).
func TestInstrumentLateWriteHeader(t *testing.T) {
	reg := Enable()
	defer Disable()

	h := Instrument("late", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("body already out"))
		w.WriteHeader(http.StatusInternalServerError) // too late: must be ignored
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))

	if rec.Code != http.StatusOK {
		t.Errorf("underlying writer saw status %d, want 200", rec.Code)
	}
	if got := reg.Counter(`http_requests_total{handler="late",code="200"}`).Value(); got != 1 {
		t.Errorf("late WriteHeader misreported the request (200-count = %d, want 1)", got)
	}
	if got := reg.Counter(`http_requests_total{handler="late",code="500"}`).Value(); got != 0 {
		t.Errorf("late WriteHeader recorded as 500 (%d observations)", got)
	}
}

// Flush before any explicit write commits an implicit 200; the metric
// must reflect that, and a WriteHeader after the flush is late.
func TestInstrumentFlushCommitsStatus(t *testing.T) {
	reg := Enable()
	defer Disable()

	h := Instrument("flushfirst", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.(http.Flusher).Flush()
		w.WriteHeader(http.StatusNotFound) // late: ignored
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if got := reg.Counter(`http_requests_total{handler="flushfirst",code="200"}`).Value(); got != 1 {
		t.Errorf("flush-first request not recorded as 200 (count = %d)", got)
	}
}
