package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
)

// A nil scope must be a complete no-op: every accessor returns a usable
// nil-safe handle, mirroring the package-level disabled path.
func TestScopeNilSafety(t *testing.T) {
	var s *Scope
	s.C("c").Inc()
	s.G("g").Set(1)
	s.H("h", nil).Observe(1)
	s.StartSpan("sp").End()
	s.SetProgressTotal(10)
	s.AddProgress(3)
	if done, total := s.Progress(); done != 0 || total != 0 {
		t.Errorf("nil scope progress = %d/%d, want 0/0", done, total)
	}
	if s.Log() == nil {
		t.Error("nil scope Log() returned nil")
	}
	s.Log().Info("must not panic")
}

func TestScopeContextRoundTrip(t *testing.T) {
	if got := ScopeFrom(context.Background()); got != nil {
		t.Errorf("ScopeFrom(Background) = %v, want nil", got)
	}
	sc := NewScope("j1", nil)
	ctx := WithScope(context.Background(), sc)
	if got := ScopeFrom(ctx); got != sc {
		t.Errorf("ScopeFrom returned %v, want the attached scope", got)
	}
}

// StartSpanCtx must route spans to the scope's tracer when one is
// attached, and to the default tracer otherwise — per-job isolation
// with the global CLI path unchanged.
func TestStartSpanCtxRouting(t *testing.T) {
	defer Disable()
	global := EnableTracing()

	sc := NewScope("j1", nil)
	ctx := WithScope(context.Background(), sc)
	StartSpanCtx(ctx, "scoped_phase").End()
	StartSpanCtx(context.Background(), "global_phase").End()

	if sum := sc.Tracer.Summary(); !strings.Contains(sum, "scoped_phase") {
		t.Errorf("scope tracer missing scoped span:\n%s", sum)
	}
	if sum := sc.Tracer.Summary(); strings.Contains(sum, "global_phase") {
		t.Errorf("scope tracer captured a global span:\n%s", sum)
	}
	if sum := global.Summary(); !strings.Contains(sum, "global_phase") {
		t.Errorf("default tracer missing global span:\n%s", sum)
	}
	if sum := global.Summary(); strings.Contains(sum, "scoped_phase") {
		t.Errorf("default tracer captured a scoped span — the PR-4 interleaving bug:\n%s", sum)
	}
}

func TestScopeProgress(t *testing.T) {
	sc := NewScope("j1", nil)
	sc.SetProgressTotal(100)
	for i := 0; i < 40; i++ {
		sc.AddProgress(1)
	}
	if done, total := sc.Progress(); done != 40 || total != 100 {
		t.Errorf("progress = %d/%d, want 40/100", done, total)
	}
}

// The scope logger must stamp every record with the job id, so logs
// from concurrent builds stay correlated to their jobs.
func TestScopeLoggerCarriesJobID(t *testing.T) {
	var buf bytes.Buffer
	base := slog.New(slog.NewTextHandler(&buf, nil))
	sc := NewScope("j000042", base)
	sc.Log().Info("build started", "chips", 2000)
	line := buf.String()
	if !strings.Contains(line, "job=j000042") {
		t.Errorf("log line missing job attribute: %q", line)
	}
	if !strings.Contains(line, "chips=2000") {
		t.Errorf("log line missing call attribute: %q", line)
	}
}

// Scope metrics land in the scope registry, not the default one.
func TestScopeMetricsIsolated(t *testing.T) {
	defer Disable()
	global := Enable()
	sc := NewScope("j1", nil)
	sc.C("job_chips_built_total").Add(7)
	if got := sc.Registry.Counter("job_chips_built_total").Value(); got != 7 {
		t.Errorf("scope counter = %d, want 7", got)
	}
	if got := global.Counter("job_chips_built_total").Value(); got != 0 {
		t.Errorf("default registry leaked scope counter: %d", got)
	}
}

// Tracer.Spans must expose the recorded spans with closed-at-now
// semantics for open ones.
func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	outer := tr.StartSpan("outer")
	tr.StartSpan("inner").End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("Spans() = %d records, want 2", len(spans))
	}
	if spans[0].Name != "outer" || !spans[0].Open {
		t.Errorf("span 0 = %+v, want open 'outer'", spans[0])
	}
	if spans[1].Name != "inner" || spans[1].Open || spans[1].Parent != 0 {
		t.Errorf("span 1 = %+v, want closed 'inner' with parent 0", spans[1])
	}
	if spans[0].End < spans[0].Start {
		t.Errorf("open span snapshot has End %v < Start %v", spans[0].End, spans[0].Start)
	}
	outer.End()
	var nilTracer *Tracer
	if got := nilTracer.Spans(); len(got) != 0 {
		t.Errorf("nil tracer Spans() = %v, want empty", got)
	}
}
