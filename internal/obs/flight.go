package obs

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeSample is one flight-recorder observation: a point-in-time
// capture of the Go runtime plus any caller-supplied gauges.
type RuntimeSample struct {
	TimeMS         int64   `json:"time_ms"`
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	HeapObjects    uint64  `json:"heap_objects"`
	GCCycles       uint32  `json:"gc_cycles"`
	GCPauseTotalMS float64 `json:"gc_pause_total_ms"`
	// Extra carries the caller-supplied gauges captured with this
	// sample — for yieldd: worker-pool occupancy, queue depth, the EWMA
	// build estimate and the event-subscriber count.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// FlightRecorder is a runtime flight recorder: a background sampler
// that captures goroutine, heap and GC statistics — plus caller gauges
// — into a fixed-size ring buffer, so the recent history of the process
// survives to be read after (or during) an incident. yieldd serves the
// ring at GET /v1/runtime/history and mirrors the newest sample onto
// the default metrics registry, which summarises it on /metrics.
// All methods are nil-safe.
type FlightRecorder struct {
	interval time.Duration
	extra    func() map[string]float64

	mu    sync.Mutex
	ring  []RuntimeSample
	next  int  // ring index of the next write
	wrap  bool // ring has wrapped at least once
	stop  chan struct{}
	donec chan struct{}
}

// NewFlightRecorder returns a recorder sampling every interval into a
// ring of capacity samples. extra, when non-nil, is invoked at each
// sample to capture caller gauges; its keys are mirrored verbatim as
// gauges on the default metrics registry, so callers should pass fully
// qualified metric names. The recorder is inert until Start.
func NewFlightRecorder(interval time.Duration, capacity int, extra func() map[string]float64) *FlightRecorder {
	if interval <= 0 {
		interval = time.Second
	}
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{
		interval: interval,
		extra:    extra,
		ring:     make([]RuntimeSample, capacity),
	}
}

// Interval returns the sampling period.
func (f *FlightRecorder) Interval() time.Duration {
	if f == nil {
		return 0
	}
	return f.interval
}

// Capacity returns the ring-buffer size in samples.
func (f *FlightRecorder) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Start takes one sample immediately (so History is never empty on a
// live recorder) and begins background sampling. Starting an already
// started recorder is a no-op.
func (f *FlightRecorder) Start() {
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.stop != nil {
		f.mu.Unlock()
		return
	}
	f.stop = make(chan struct{})
	f.donec = make(chan struct{})
	stop, done := f.stop, f.donec
	f.mu.Unlock()

	f.SampleNow()
	go func() {
		defer close(done)
		t := time.NewTicker(f.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				f.SampleNow()
			case <-stop:
				return
			}
		}
	}()
}

// Stop ends background sampling and waits for the sampler goroutine to
// exit. The recorded history stays readable. Safe to call on a
// recorder that was never started.
func (f *FlightRecorder) Stop() {
	if f == nil {
		return
	}
	f.mu.Lock()
	stop, done := f.stop, f.donec
	f.stop, f.donec = nil, nil
	f.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// SampleNow captures one sample into the ring and mirrors it onto the
// default metrics registry (runtime_* gauges plus the extra keys).
// The background loop calls it on every tick; tests and callers that
// want an up-to-the-moment reading may call it directly.
func (f *FlightRecorder) SampleNow() {
	if f == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeSample{
		TimeMS:         time.Now().UnixMilli(),
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		HeapObjects:    ms.HeapObjects,
		GCCycles:       ms.NumGC,
		GCPauseTotalMS: float64(ms.PauseTotalNs) / 1e6,
	}
	if f.extra != nil {
		s.Extra = f.extra()
	}

	G("runtime_goroutines").Set(float64(s.Goroutines))
	G("runtime_heap_alloc_bytes").Set(float64(s.HeapAllocBytes))
	G("runtime_heap_sys_bytes").Set(float64(s.HeapSysBytes))
	G("runtime_heap_objects").Set(float64(s.HeapObjects))
	G("runtime_gc_cycles_total").Set(float64(s.GCCycles))
	G("runtime_gc_pause_total_ms").Set(s.GCPauseTotalMS)
	for name, v := range s.Extra {
		G(name).Set(v)
	}

	f.mu.Lock()
	f.ring[f.next] = s
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.wrap = true
	}
	f.mu.Unlock()
}

// History returns the recorded samples, oldest first. The slice is a
// copy; the ring keeps recording.
func (f *FlightRecorder) History() []RuntimeSample {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.wrap {
		return append([]RuntimeSample(nil), f.ring[:f.next]...)
	}
	out := make([]RuntimeSample, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}
