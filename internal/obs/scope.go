package obs

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

// Scope is one job's telemetry: a private metrics registry, a private
// phase tracer, a structured logger stamped with the job id, and a
// lock-free progress counter. Scopes exist so concurrent builds do not
// interleave their spans in the process-global tracer: the yieldd
// server creates one Scope per admitted build and threads it through
// the pipeline via context.Context (WithScope / ScopeFrom), and the
// per-job trace is later served from Scope.Tracer.
//
// Every method is nil-safe, mirroring the package-level C/G/H/StartSpan
// contract: code instrumented against a Scope pays only a nil check
// when no scope is attached.
type Scope struct {
	// ID names the job; it doubles as the log correlation key.
	ID string
	// Registry collects the job's own metrics, separate from the
	// process-global registry behind /metrics.
	Registry *Registry
	// Tracer records the job's phase spans; WriteChromeTrace on it
	// yields the per-job trace served at /v1/jobs/{id}/trace.
	Tracer *Tracer

	logger *slog.Logger

	progressDone  atomic.Int64
	progressTotal atomic.Int64

	// Event publishing, wired by AttachEvents. events is read without
	// synchronisation on the per-chip hot path, so it must be attached
	// before the scope is handed to the build workers.
	events        *EventBus
	progressMinNS int64
	lastProgress  atomic.Int64 // UnixNano of the last progress event
	lastEstimate  atomic.Int64 // UnixNano of the last estimate event
}

// discardLogger swallows log records; the fallback for nil scopes and
// scopes built without a base logger.
var discardLogger = slog.New(slog.NewTextHandler(io.Discard, nil))

// NewScope returns a fresh Scope with its own registry and tracer. The
// scope's logger is base with a "job" attribute set to id (a discarding
// logger when base is nil).
func NewScope(id string, base *slog.Logger) *Scope {
	logger := discardLogger
	if base != nil {
		logger = base.With("job", id)
	}
	return &Scope{
		ID:       id,
		Registry: NewRegistry(),
		Tracer:   NewTracer(),
		logger:   logger,
	}
}

// Log returns the scope's structured logger; never nil.
func (s *Scope) Log() *slog.Logger {
	if s == nil || s.logger == nil {
		return discardLogger
	}
	return s.logger
}

// C returns the named counter of the scope's registry (nil scope →
// no-op counter).
func (s *Scope) C(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.Registry.Counter(name)
}

// G returns the named gauge of the scope's registry (nil scope → no-op).
func (s *Scope) G(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.Registry.Gauge(name)
}

// H returns the named histogram of the scope's registry (nil scope →
// no-op). Bounds apply only on first registration of the name.
func (s *Scope) H(name string, bounds []float64) *Histogram {
	if s == nil {
		return nil
	}
	return s.Registry.Histogram(name, bounds)
}

// StartSpan opens a span on the scope's tracer (nil scope → no-op
// span). When an event bus is attached and has a subscriber, entering
// the phase also publishes a job_phase event.
func (s *Scope) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	if s.events.Active() {
		s.events.Publish(Event{Type: EventJobPhase, Job: s.ID, Phase: name})
	}
	return s.Tracer.StartSpan(name)
}

// AttachEvents connects the scope to a telemetry bus: AddProgress
// publishes a job_progress snapshot at most once per interval and
// StartSpan publishes job_phase events — but only while the bus has a
// subscriber. With no subscriber attached the progress hot path pays
// one extra atomic load and nothing else (see
// BenchmarkScopeProgressIdleBus and the zero-alloc pin in
// scope_test.go). Must be called before the scope is shared with
// build workers.
func (s *Scope) AttachEvents(bus *EventBus, interval time.Duration) {
	if s == nil {
		return
	}
	s.events = bus
	if interval < 0 {
		interval = 0
	}
	s.progressMinNS = interval.Nanoseconds()
}

// SetProgressTotal records the number of work units the job will
// process — for the population build, the chip count.
func (s *Scope) SetProgressTotal(n int64) {
	if s == nil {
		return
	}
	s.progressTotal.Store(n)
}

// AddProgress adds n completed work units. The build workers call it
// once per chip at the cancellation poll point, so the path without an
// event subscriber must stay one atomic add plus one atomic load: no
// locks, no allocation. With a subscriber attached (via AttachEvents)
// it additionally publishes a throttled job_progress event.
func (s *Scope) AddProgress(n int64) {
	if s == nil {
		return
	}
	done := s.progressDone.Add(n)
	if s.events == nil || !s.events.Active() {
		return
	}
	s.publishProgress(done)
}

// publishProgress emits a job_progress event unless one was published
// within the throttle interval. Racing workers elect one publisher via
// the CompareAndSwap; the losers return without blocking.
func (s *Scope) publishProgress(done int64) {
	now := time.Now().UnixNano()
	last := s.lastProgress.Load()
	if now-last < s.progressMinNS || !s.lastProgress.CompareAndSwap(last, now) {
		return
	}
	s.events.Publish(Event{
		Type: EventJobProgress, Job: s.ID,
		Done: done, Total: s.progressTotal.Load(),
	})
}

// PublishEstimate emits a job_estimate event carrying a streaming
// yield estimate — the live yield over the chips chips measured so
// far, with its confidence interval — unless one was published within
// the progress throttle interval or the bus has no subscriber. Like
// publishProgress, racing publishers elect one via CompareAndSwap and
// the losers return without blocking; an idle bus costs one atomic
// load. Nil-safe.
func (s *Scope) PublishEstimate(yield, ciLow, ciHigh float64, chips, total int64) {
	if s == nil || s.events == nil || !s.events.Active() {
		return
	}
	now := time.Now().UnixNano()
	last := s.lastEstimate.Load()
	if now-last < s.progressMinNS || !s.lastEstimate.CompareAndSwap(last, now) {
		return
	}
	s.events.Publish(Event{
		Type: EventJobEstimate, Job: s.ID,
		Yield: yield, CILow: ciLow, CIHigh: ciHigh,
		Done: chips, Total: total,
	})
}

// Progress returns the completed and total work-unit counts. done is
// monotonically non-decreasing over a job's lifetime and equals total
// once the build has finished uncancelled.
func (s *Scope) Progress() (done, total int64) {
	if s == nil {
		return 0, 0
	}
	return s.progressDone.Load(), s.progressTotal.Load()
}

// scopeKey is the context key carrying a *Scope.
type scopeKey struct{}

// WithScope returns a context carrying s; the pipeline's instrumented
// phases pick it up via ScopeFrom / StartSpanCtx.
func WithScope(ctx context.Context, s *Scope) context.Context {
	return context.WithValue(ctx, scopeKey{}, s)
}

// ScopeFrom returns the scope carried by ctx, or nil when there is none
// (the CLIs' case: they run one job per process on the global tracer).
func ScopeFrom(ctx context.Context) *Scope {
	s, _ := ctx.Value(scopeKey{}).(*Scope)
	return s
}

// StartSpanCtx opens a span on the scope carried by ctx, falling back
// to the default (process-global) tracer when no scope is attached.
// This is how the core pipeline keeps one instrumentation call site
// serving both the per-job server path and the global CLI path. Going
// through Scope.StartSpan means phase entries also reach the scope's
// event bus when one is attached and subscribed.
func StartSpanCtx(ctx context.Context, name string) *Span {
	if s := ScopeFrom(ctx); s != nil {
		return s.StartSpan(name)
	}
	return defaultTracer.Load().StartSpan(name)
}
