package obs

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers
	"os"
	"strings"
)

// Flags is the observability flag bundle shared by the CLIs
// (yieldsim, cpusim, paper).
type Flags struct {
	MetricsOut  string // metrics file; .prom suffix selects Prometheus text, else JSON
	TraceOut    string // Chrome trace_event JSON file
	ManifestOut string // run-manifest JSON file
	PprofAddr   string // listen address for net/http/pprof, e.g. localhost:6060
	LogFormat   string // slog handler for diagnostics: text (default) or json
}

// AddFlags registers the observability flags on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsOut, "metrics-out", "",
		"write metrics to this file on exit (JSON; a .prom suffix selects Prometheus text)")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write a Chrome trace_event JSON phase trace to this file on exit")
	fs.StringVar(&f.ManifestOut, "manifest-out", "",
		"write a reproducibility manifest (seed, params, environment) to this file on exit")
	fs.StringVar(&f.PprofAddr, "pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&f.LogFormat, "log-format", "text",
		"structured-log encoding for diagnostics on stderr: text or json")
	return f
}

// Run is one activated observability session; Close flushes the
// requested outputs.
type Run struct {
	flags    *Flags
	Manifest *Manifest // nil unless -manifest-out was given
	tracer   *Tracer
	root     *Span
}

// Activate switches on whatever the flags ask for: the default metrics
// registry, the default tracer (with a root span named after the tool),
// the manifest, the pprof server, and the process's slog default
// handler (text or json per -log-format). With no flags set only the
// logger is configured and the instrumented code paths stay on their
// nil fast path.
func (f *Flags) Activate(tool string) *Run {
	r := &Run{flags: f}
	switch f.LogFormat {
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	default:
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}
	if f.MetricsOut != "" {
		Enable()
	}
	if f.TraceOut != "" {
		r.tracer = EnableTracing()
		r.root = r.tracer.StartSpan(tool)
	}
	if f.ManifestOut != "" {
		r.Manifest = NewManifest(tool)
	}
	if f.PprofAddr != "" {
		go func(addr string) {
			fmt.Fprintf(os.Stderr, "%s: pprof listening on http://%s/debug/pprof/\n", tool, addr)
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "%s: pprof server: %v\n", tool, err)
			}
		}(f.PprofAddr)
	}
	return r
}

// Close ends the root span and writes the metrics, trace (plus a text
// flame summary on stderr), and manifest files. It returns the first
// error but attempts every output.
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if r.flags.MetricsOut != "" {
		keep(writeFile(r.flags.MetricsOut, func(w *os.File) error {
			if strings.HasSuffix(r.flags.MetricsOut, ".prom") {
				return Default().WritePrometheus(w)
			}
			return Default().WriteJSON(w)
		}))
	}
	if r.flags.TraceOut != "" {
		r.root.End()
		keep(writeFile(r.flags.TraceOut, func(w *os.File) error {
			return r.tracer.WriteChromeTrace(w)
		}))
		fmt.Fprint(os.Stderr, r.tracer.Summary())
	}
	if r.flags.ManifestOut != "" {
		keep(writeFile(r.flags.ManifestOut, func(w *os.File) error {
			return r.Manifest.WriteJSON(w)
		}))
	}
	return first
}

func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
