package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer records wall-time spans of the pipeline phases as a tree.
//
// The main pipeline runs its phases sequentially, so StartSpan keeps an
// implicit stack: a span started while another is open becomes its
// child. Parallel workers must not touch that stack — they get explicit
// lanes via Span.Worker, which parents the span directly and gives it
// its own Chrome-trace thread id.
type Tracer struct {
	mu    sync.Mutex
	base  time.Time
	spans []spanRec
	stack []int // indices of open spans on the sequential phase stack
}

type spanRec struct {
	name       string
	parent     int // index into spans; -1 for roots
	tid        int // Chrome trace_event lane; 1 is the main pipeline
	start, end time.Duration
	open       bool
}

// Span is a handle to one recorded phase. A nil Span is a valid no-op.
type Span struct {
	t   *Tracer
	idx int
}

// NewTracer returns an empty tracer; its clock starts now.
func NewTracer() *Tracer { return &Tracer{base: time.Now()} }

// StartSpan opens a span nested under the innermost open span of the
// sequential phase stack (a root span when the stack is empty).
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	parent := -1
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	idx := t.push(name, parent, 1)
	t.stack = append(t.stack, idx)
	return &Span{t: t, idx: idx}
}

// Child opens a span explicitly parented to s, without involving the
// phase stack; safe to call from any goroutine.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return &Span{t: s.t, idx: s.t.push(name, s.idx, s.t.spans[s.idx].tid)}
}

// Worker opens a child span on its own trace lane (thread id 2+id), for
// concurrent workers whose spans overlap in time.
func (s *Span) Worker(name string, id int) *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return &Span{t: s.t, idx: s.t.push(name, s.idx, 2+id)}
}

// push appends an open span record; the caller holds t.mu.
func (t *Tracer) push(name string, parent, tid int) int {
	t.spans = append(t.spans, spanRec{
		name:   name,
		parent: parent,
		tid:    tid,
		start:  time.Since(t.base),
		open:   true,
	})
	return len(t.spans) - 1
}

// End closes the span. Stack-tracked spans are removed from the phase
// stack even when ended out of order.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := &t.spans[s.idx]
	if !rec.open {
		return
	}
	rec.end = time.Since(t.base)
	rec.open = false
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s.idx {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
}

// snapshot copies the records, closing still-open spans at "now" so the
// encoders never see negative durations.
func (t *Tracer) snapshot() []spanRec {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Since(t.base)
	out := append([]spanRec(nil), t.spans...)
	for i := range out {
		if out[i].open {
			out[i].end = now
		}
	}
	return out
}

// SpanInfo is one recorded span in a Spans snapshot.
type SpanInfo struct {
	Name   string
	Parent int // index into the snapshot; -1 for roots
	Lane   int // Chrome trace lane (tid); 1 is the main pipeline
	Start  time.Duration
	End    time.Duration
	Open   bool // still running at snapshot time (End is the snapshot time)
}

// Spans returns a point-in-time copy of the recorded spans, open ones
// closed at "now". The yieldd server uses it to fold a finished job's
// phase durations into the global /metrics histograms.
func (t *Tracer) Spans() []SpanInfo {
	recs := t.snapshot()
	out := make([]SpanInfo, len(recs))
	for i, r := range recs {
		out[i] = SpanInfo{
			Name:   r.name,
			Parent: r.parent,
			Lane:   r.tid,
			Start:  r.start,
			End:    r.end,
			Open:   r.open,
		}
	}
	return out
}

// WriteChromeTrace writes the span set in the Chrome trace_event JSON
// array format — load it at chrome://tracing or https://ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	type event struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
		Ts   float64 `json:"ts"`  // microseconds
		Dur  float64 `json:"dur"` // microseconds
	}
	spans := t.snapshot()
	events := make([]event, len(spans))
	for i, s := range spans {
		events[i] = event{
			Name: s.name,
			Ph:   "X",
			Pid:  1,
			Tid:  s.tid,
			Ts:   float64(s.start) / float64(time.Microsecond),
			Dur:  float64(s.end-s.start) / float64(time.Microsecond),
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []event `json:"traceEvents"`
	}{events})
}

// Summary renders the span tree as an indented text flame summary.
// Same-named siblings are merged into one line (count, summed time);
// percentages are of the parent's wall time (of the total for roots).
func (t *Tracer) Summary() string {
	spans := t.snapshot()
	if len(spans) == 0 {
		return "phase trace: (no spans)\n"
	}
	children := make(map[int][]int)
	var total time.Duration
	for i, s := range spans {
		children[s.parent] = append(children[s.parent], i)
		if s.parent == -1 && s.end > total {
			total = s.end
		}
	}
	if total == 0 {
		total = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, "phase trace (wall %s)\n", total.Round(time.Microsecond))
	var walk func(parent int, parentDur time.Duration, depth int)
	walk = func(parent int, parentDur time.Duration, depth int) {
		// Merge same-named siblings, preserving first-seen order.
		type group struct {
			name  string
			dur   time.Duration
			count int
			kids  []int
		}
		var order []string
		groups := make(map[string]*group)
		for _, ci := range children[parent] {
			s := spans[ci]
			g, ok := groups[s.name]
			if !ok {
				g = &group{name: s.name}
				groups[s.name] = g
				order = append(order, s.name)
			}
			g.dur += s.end - s.start
			g.count++
			g.kids = append(g.kids, ci)
		}
		sort.SliceStable(order, func(a, b int) bool {
			return groups[order[a]].dur > groups[order[b]].dur
		})
		for _, name := range order {
			g := groups[name]
			label := g.name
			if g.count > 1 {
				label = fmt.Sprintf("%s ×%d", g.name, g.count)
			}
			pct := 100 * float64(g.dur) / float64(parentDur)
			fmt.Fprintf(&b, "%s%-*s %10s %5.1f%%\n",
				strings.Repeat("  ", depth+1), 36-2*depth, label,
				g.dur.Round(time.Microsecond), pct)
			// Recurse using the group's summed duration as the base so a
			// ×N merged line's children still report sensible fractions.
			for _, ci := range g.kids {
				walk(ci, g.dur, depth+1)
			}
		}
	}
	walk(-1, total, 0)
	return b.String()
}
