package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventType names one kind of telemetry event on an EventBus. The set
// is closed and low-cardinality by design: SSE clients filter on it and
// metrics may label series with it.
type EventType string

// The event taxonomy. Job lifecycle events carry the job id; cache and
// queue events describe server-wide state transitions.
const (
	// EventJobAdmitted fires when a study build is accepted into the
	// queue; EventJobStarted when it acquires a worker slot.
	EventJobAdmitted EventType = "job_admitted"
	EventJobStarted  EventType = "job_started"
	// EventJobProgress is a throttled snapshot of the build's lock-free
	// chip counter (Done out of Total chips measured).
	EventJobProgress EventType = "job_progress"
	// EventJobPhase fires when a build enters a new pipeline phase
	// (queue_wait, new_study, build_population/pair, …).
	EventJobPhase EventType = "job_phase"
	// EventJobEstimate is a throttled streaming yield estimate: the
	// build's live yield with its confidence interval (Yield,
	// CILow/CIHigh) over the Done chips measured so far.
	EventJobEstimate EventType = "job_estimate"
	// EventJobCompleted and EventJobFailed are terminal: exactly one of
	// them ends every admitted job, carrying the error class.
	EventJobCompleted EventType = "job_completed"
	EventJobFailed    EventType = "job_failed"
	// EventJobResumed fires when a restarted yieldd picks an incomplete
	// job back up from its last durable checkpoint; Done carries the
	// checkpoint frontier and Restarts the job's restart count.
	EventJobResumed EventType = "job_resumed"
	// EventJobCheckpoint is a throttled record of a build checkpoint
	// reaching the store, carrying the checkpointed chip frontier.
	EventJobCheckpoint EventType = "job_checkpoint"
	// EventSweepConfig fires when a design-space sweep finishes one
	// config: Key carries the config label ("vdd=1.08 nominal") and
	// Done/Total count configs, not chips.
	EventSweepConfig EventType = "sweep_config"
	// EventCacheHit fires when a request is answered from the result
	// cache; EventCacheEvict when an entry ages out.
	EventCacheHit   EventType = "cache_hit"
	EventCacheEvict EventType = "cache_evict"
	// EventQueuePressure reports builds waiting beyond the worker pool;
	// EventShed a request refused because the queue was full.
	EventQueuePressure EventType = "queue_pressure"
	EventShed          EventType = "shed"
)

// allEventTypes is the closed set behind EventType.Valid.
var allEventTypes = map[EventType]bool{
	EventJobAdmitted: true, EventJobStarted: true, EventJobProgress: true,
	EventJobPhase: true, EventJobEstimate: true,
	EventJobCompleted: true, EventJobFailed: true,
	EventJobResumed: true, EventJobCheckpoint: true, EventSweepConfig: true,
	EventCacheHit: true, EventCacheEvict: true,
	EventQueuePressure: true, EventShed: true,
}

// Valid reports whether t is one of the defined event types.
func (t EventType) Valid() bool { return allEventTypes[t] }

// EventTypes returns every defined event type, for documentation and
// filter validation.
func EventTypes() []EventType {
	out := make([]EventType, 0, len(allEventTypes))
	for t := range allEventTypes {
		out = append(out, t)
	}
	return out
}

// Event is one telemetry record. Only the fields relevant to its Type
// are set; the JSON encoding omits the rest, so an SSE frame stays one
// short line. Seq is assigned by the bus at publish time and increases
// monotonically, so a subscriber can detect gaps left by drop-oldest
// overflow. Replayed snapshot events synthesised for late subscribers
// carry Seq 0.
type Event struct {
	Seq    uint64    `json:"seq,omitempty"`
	TimeMS int64     `json:"time_ms"`
	Type   EventType `json:"type"`

	// Job is the subject job id of job_* / cache_hit / shed events.
	Job string `json:"job,omitempty"`
	// Class is the ErrClass of terminal and shed events.
	Class string `json:"class,omitempty"`
	// Phase is the pipeline phase name of job_phase events.
	Phase string `json:"phase,omitempty"`
	// Error is the failure reason of job_failed events.
	Error string `json:"error,omitempty"`
	// Done/Total are the chip progress counters of job_progress and
	// terminal events.
	Done  int64 `json:"done,omitempty"`
	Total int64 `json:"total,omitempty"`
	// Queued/Running describe queue_pressure events.
	Queued  int `json:"queued,omitempty"`
	Running int `json:"running,omitempty"`
	// Key is the canonical study key of cache_evict events.
	Key string `json:"key,omitempty"`
	// Yield and CILow/CIHigh carry a job_estimate event's streaming
	// yield estimate and its confidence interval; Done counts the chips
	// the estimate covers.
	Yield  float64 `json:"yield,omitempty"`
	CILow  float64 `json:"ci_low,omitempty"`
	CIHigh float64 `json:"ci_high,omitempty"`
	// QueueWaitMS is the admission-to-slot wait of job_started events.
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	// ElapsedMS is the build wall time of job_completed events.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	// Restarts is the crash-resume count of job_resumed events.
	Restarts int `json:"restarts,omitempty"`
}

// EventBus is a bounded, drop-oldest, multi-subscriber pub/sub for
// telemetry events. It is built for a hot publisher and few slow
// consumers: Publish with no subscribers is one atomic load and an
// immediate return (no locks, no allocation — see
// BenchmarkEventBusIdlePublish), and a subscriber that stops draining
// its buffer loses its oldest events, never blocking the publisher or
// its fellow subscribers. All methods are nil-safe.
type EventBus struct {
	active  atomic.Int32  // subscriber count; the Publish fast-path gate
	seq     atomic.Uint64 // publish sequence; gaps reveal drops
	dropped atomic.Uint64 // events dropped across all subscribers

	mu   sync.Mutex
	subs map[*EventSub]struct{}
}

// NewEventBus returns an empty bus.
func NewEventBus() *EventBus {
	return &EventBus{subs: make(map[*EventSub]struct{})}
}

// Active reports whether any subscriber is attached. Publishers on hot
// paths call it before assembling an Event so the idle cost stays one
// atomic load.
func (b *EventBus) Active() bool { return b != nil && b.active.Load() > 0 }

// Subscribers returns the number of attached subscribers.
func (b *EventBus) Subscribers() int {
	if b == nil {
		return 0
	}
	return int(b.active.Load())
}

// Dropped returns the total events dropped across all subscribers since
// the bus was created.
func (b *EventBus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// Publish stamps ev with the next sequence number and the current time
// and offers it to every subscriber whose type filter matches. A
// subscriber with a full buffer has its oldest event dropped to make
// room (drop-oldest), so publishing never blocks. With no subscribers
// Publish returns immediately without touching the lock.
func (b *EventBus) Publish(ev Event) {
	if b == nil || b.active.Load() == 0 {
		return
	}
	ev.Seq = b.seq.Add(1)
	ev.TimeMS = time.Now().UnixMilli()
	b.mu.Lock()
	for s := range b.subs {
		if !s.wants(ev.Type) {
			continue
		}
		select {
		case s.ch <- ev:
			continue
		default:
		}
		// Buffer full: evict the oldest queued event, then retry once.
		// The receiver may race us for the oldest slot; either way one
		// slot frees and the second send can only fail if the receiver
		// refilled the buffer, which it cannot — it only drains.
		select {
		case <-s.ch:
			s.dropped.Add(1)
			b.dropped.Add(1)
		default:
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// Subscribe attaches a new subscriber with the given buffer capacity
// (minimum 1). An empty types list receives everything; otherwise only
// the listed types are delivered. The caller must Close the subscriber
// when done.
func (b *EventBus) Subscribe(buf int, types ...EventType) *EventSub {
	if b == nil {
		return nil
	}
	if buf < 1 {
		buf = 1
	}
	s := &EventSub{bus: b, ch: make(chan Event, buf)}
	if len(types) > 0 {
		s.types = make(map[EventType]bool, len(types))
		for _, t := range types {
			s.types[t] = true
		}
	}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	b.active.Add(1)
	return s
}

// EventSub is one subscription on an EventBus. Events arrive on the
// channel returned by Events; Dropped counts the ones lost to buffer
// overflow. All methods are nil-safe.
type EventSub struct {
	bus     *EventBus
	ch      chan Event
	types   map[EventType]bool // nil = all types
	dropped atomic.Uint64
	once    sync.Once
}

func (s *EventSub) wants(t EventType) bool {
	return s.types == nil || s.types[t]
}

// Events returns the delivery channel. It is closed by Close; a
// receiver seeing the channel close knows the subscription ended.
func (s *EventSub) Events() <-chan Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped returns how many events this subscriber lost to overflow.
func (s *EventSub) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close detaches the subscriber and closes its channel. Safe to call
// more than once.
func (s *EventSub) Close() {
	if s == nil {
		return
	}
	s.once.Do(func() {
		s.bus.mu.Lock()
		delete(s.bus.subs, s)
		// Closing under the bus lock: Publish sends only while holding
		// the same lock and only to subscribers still in the map, so a
		// send on the closed channel is impossible.
		close(s.ch)
		s.bus.mu.Unlock()
		s.bus.active.Add(-1)
	})
}
