package obs

import (
	"testing"
	"time"
)

func TestFlightRecorderRingWraps(t *testing.T) {
	calls := 0
	f := NewFlightRecorder(time.Hour, 3, func() map[string]float64 {
		calls++
		return map[string]float64{"server_queue_depth": float64(calls)}
	})
	for i := 0; i < 5; i++ {
		f.SampleNow()
	}
	hist := f.History()
	if len(hist) != 3 {
		t.Fatalf("history holds %d samples, want 3 (ring capacity)", len(hist))
	}
	// Oldest-first after wrapping: samples 3, 4, 5 survive.
	for i, s := range hist {
		if want := float64(3 + i); s.Extra["server_queue_depth"] != want {
			t.Errorf("sample %d: extra = %v, want server_queue_depth %g", i, s.Extra, want)
		}
		if s.Goroutines <= 0 {
			t.Errorf("sample %d: goroutines = %d, want > 0", i, s.Goroutines)
		}
		if s.HeapAllocBytes == 0 || s.TimeMS == 0 {
			t.Errorf("sample %d: missing runtime stats: %+v", i, s)
		}
	}
	if f.Capacity() != 3 || f.Interval() != time.Hour {
		t.Errorf("Capacity=%d Interval=%v", f.Capacity(), f.Interval())
	}
}

func TestFlightRecorderPartialHistoryOrder(t *testing.T) {
	f := NewFlightRecorder(time.Hour, 8, nil)
	f.SampleNow()
	f.SampleNow()
	hist := f.History()
	if len(hist) != 2 {
		t.Fatalf("history holds %d samples, want 2", len(hist))
	}
	if hist[0].TimeMS > hist[1].TimeMS {
		t.Errorf("history out of order: %d then %d", hist[0].TimeMS, hist[1].TimeMS)
	}
}

func TestFlightRecorderMirrorsGauges(t *testing.T) {
	reg := Enable()
	defer Disable()
	f := NewFlightRecorder(time.Hour, 2, func() map[string]float64 {
		return map[string]float64{"server_workers_busy": 2}
	})
	f.SampleNow()
	if v := reg.Gauge("runtime_goroutines").Value(); v <= 0 {
		t.Errorf("runtime_goroutines gauge = %g, want > 0", v)
	}
	if v := reg.Gauge("runtime_heap_alloc_bytes").Value(); v <= 0 {
		t.Errorf("runtime_heap_alloc_bytes gauge = %g, want > 0", v)
	}
	if v := reg.Gauge("server_workers_busy").Value(); v != 2 {
		t.Errorf("extra gauge server_workers_busy = %g, want 2", v)
	}
}

func TestFlightRecorderStartStop(t *testing.T) {
	f := NewFlightRecorder(5*time.Millisecond, 16, nil)
	f.Start()
	f.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for len(f.History()) < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := len(f.History()); n < 2 {
		t.Fatalf("background sampler recorded %d samples, want >= 2", n)
	}
	f.Stop()
	n := len(f.History())
	time.Sleep(15 * time.Millisecond)
	if got := len(f.History()); got != n {
		t.Errorf("recorder kept sampling after Stop: %d -> %d", n, got)
	}
	f.Stop() // safe when already stopped

	var nilRec *FlightRecorder
	nilRec.Start()
	nilRec.Stop()
	nilRec.SampleNow()
	if nilRec.History() != nil || nilRec.Capacity() != 0 || nilRec.Interval() != 0 {
		t.Error("nil recorder misbehaves")
	}
}
