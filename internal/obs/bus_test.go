package obs

import (
	"testing"
	"time"
)

func drain(s *EventSub) []Event {
	var out []Event
	for {
		select {
		case ev := <-s.Events():
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestEventBusFanOutAndFilter(t *testing.T) {
	b := NewEventBus()
	all := b.Subscribe(16)
	onlyShed := b.Subscribe(16, EventShed)
	defer all.Close()
	defer onlyShed.Close()

	b.Publish(Event{Type: EventJobAdmitted, Job: "j1"})
	b.Publish(Event{Type: EventShed, Job: "j2"})
	b.Publish(Event{Type: EventJobCompleted, Job: "j1"})

	got := drain(all)
	if len(got) != 3 {
		t.Fatalf("unfiltered subscriber got %d events, want 3", len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.TimeMS == 0 {
			t.Errorf("event %d: no timestamp", i)
		}
	}
	shed := drain(onlyShed)
	if len(shed) != 1 || shed[0].Type != EventShed || shed[0].Job != "j2" {
		t.Errorf("filtered subscriber got %+v, want one shed event for j2", shed)
	}
}

// A saturated subscriber must lose its oldest events, keep the newest,
// and never block the publisher or a healthy subscriber.
func TestEventBusOverflowDropsOldest(t *testing.T) {
	b := NewEventBus()
	slow := b.Subscribe(4)
	fast := b.Subscribe(16)
	defer slow.Close()
	defer fast.Close()

	published := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			b.Publish(Event{Type: EventJobProgress, Done: int64(i + 1)})
		}
		close(published)
	}()
	select {
	case <-published:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a saturated subscriber")
	}

	got := drain(slow)
	if len(got) != 4 {
		t.Fatalf("saturated subscriber holds %d events, want 4 (buffer size)", len(got))
	}
	// Drop-oldest: the survivors are the newest four, in order.
	for i, ev := range got {
		if want := int64(7 + i); ev.Done != want {
			t.Errorf("survivor %d: done %d, want %d (oldest must be dropped)", i, ev.Done, want)
		}
	}
	if d := slow.Dropped(); d != 6 {
		t.Errorf("slow.Dropped() = %d, want 6", d)
	}
	if d := b.Dropped(); d != 6 {
		t.Errorf("bus.Dropped() = %d, want 6", d)
	}
	if got := drain(fast); len(got) != 10 || fast.Dropped() != 0 {
		t.Errorf("healthy subscriber got %d events (%d dropped), want all 10",
			len(got), fast.Dropped())
	}
}

func TestEventBusSubscribeClose(t *testing.T) {
	b := NewEventBus()
	if b.Active() {
		t.Error("fresh bus reports Active")
	}
	s := b.Subscribe(1)
	if !b.Active() || b.Subscribers() != 1 {
		t.Errorf("after Subscribe: Active=%v Subscribers=%d", b.Active(), b.Subscribers())
	}
	s.Close()
	s.Close() // idempotent
	if b.Active() || b.Subscribers() != 0 {
		t.Errorf("after Close: Active=%v Subscribers=%d", b.Active(), b.Subscribers())
	}
	if _, ok := <-s.Events(); ok {
		t.Error("closed subscription channel still delivers")
	}
	b.Publish(Event{Type: EventShed}) // must not panic or deliver anywhere
}

func TestEventBusNilSafety(t *testing.T) {
	var b *EventBus
	b.Publish(Event{Type: EventShed})
	if b.Active() || b.Subscribers() != 0 || b.Dropped() != 0 {
		t.Error("nil bus reports activity")
	}
	if s := b.Subscribe(1); s != nil {
		t.Error("nil bus returned a subscription")
	}
	var sub *EventSub
	sub.Close()
	if sub.Events() != nil || sub.Dropped() != 0 {
		t.Error("nil subscription misbehaves")
	}
}

func TestEventTypeValid(t *testing.T) {
	for _, typ := range EventTypes() {
		if !typ.Valid() {
			t.Errorf("EventTypes() returned invalid type %q", typ)
		}
	}
	if EventType("bogus").Valid() {
		t.Error(`"bogus" reported valid`)
	}
	if n := len(EventTypes()); n != 14 {
		t.Errorf("EventTypes() has %d entries, want 14", n)
	}
}

// The no-subscriber publish path is the one the per-chip hot loop sees:
// it must not allocate.
func TestEventBusIdlePublishZeroAlloc(t *testing.T) {
	b := NewEventBus()
	allocs := testing.AllocsPerRun(1000, func() {
		b.Publish(Event{Type: EventJobProgress, Job: "j000001", Done: 1, Total: 2000})
	})
	if allocs != 0 {
		t.Errorf("idle Publish allocates %.1f times per op, want 0", allocs)
	}
}

// Scope.AddProgress with a bus attached but no subscriber is the exact
// per-chip cost the yieldd build pays when nobody is streaming: pin it
// at zero allocations.
func TestScopeProgressIdleBusZeroAlloc(t *testing.T) {
	s := NewScope("j000001", nil)
	s.AttachEvents(NewEventBus(), 250*time.Millisecond)
	s.SetProgressTotal(2000)
	allocs := testing.AllocsPerRun(1000, func() { s.AddProgress(1) })
	if allocs != 0 {
		t.Errorf("AddProgress with idle bus allocates %.1f times per op, want 0", allocs)
	}
}

func TestScopeProgressPublishesThrottled(t *testing.T) {
	b := NewEventBus()
	sub := b.Subscribe(64, EventJobProgress)
	defer sub.Close()

	s := NewScope("j000042", nil)
	s.AttachEvents(b, time.Hour) // first event passes, the rest throttle
	s.SetProgressTotal(100)
	for i := 0; i < 100; i++ {
		s.AddProgress(1)
	}
	got := drain(sub)
	if len(got) != 1 {
		t.Fatalf("got %d progress events under a 1h throttle, want 1", len(got))
	}
	if got[0].Job != "j000042" || got[0].Done != 1 || got[0].Total != 100 {
		t.Errorf("progress event = %+v", got[0])
	}

	// Zero interval: every AddProgress publishes.
	s2 := NewScope("j000043", nil)
	s2.AttachEvents(b, 0)
	s2.SetProgressTotal(10)
	for i := 0; i < 10; i++ {
		s2.AddProgress(1)
	}
	if got := drain(sub); len(got) != 10 {
		t.Errorf("got %d progress events with no throttle, want 10", len(got))
	}
}

func TestScopeStartSpanPublishesPhase(t *testing.T) {
	b := NewEventBus()
	s := NewScope("j000007", nil)
	s.AttachEvents(b, 0)

	s.StartSpan("before_subscribe").End() // no subscriber: no event
	sub := b.Subscribe(8, EventJobPhase)
	defer sub.Close()
	s.StartSpan("build_population/pair").End()

	got := drain(sub)
	if len(got) != 1 || got[0].Phase != "build_population/pair" || got[0].Job != "j000007" {
		t.Errorf("phase events = %+v, want one build_population/pair for j000007", got)
	}
}

func BenchmarkEventBusIdlePublish(b *testing.B) {
	bus := NewEventBus()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(Event{Type: EventJobProgress, Job: "j000001", Done: int64(i), Total: 2000})
	}
}

func BenchmarkScopeProgressIdleBus(b *testing.B) {
	s := NewScope("j000001", nil)
	s.AttachEvents(NewEventBus(), 250*time.Millisecond)
	s.SetProgressTotal(int64(b.N))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddProgress(1)
	}
}

func BenchmarkEventBusPublishOneSubscriber(b *testing.B) {
	bus := NewEventBus()
	sub := bus.Subscribe(64, EventJobProgress)
	defer sub.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.Events() {
		}
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(Event{Type: EventJobProgress, Done: int64(i)})
	}
	b.StopTimer()
	sub.Close()
	<-done
}

func TestScopePublishEstimateThrottled(t *testing.T) {
	b := NewEventBus()
	sub := b.Subscribe(64, EventJobEstimate)
	defer sub.Close()

	s := NewScope("j000051", nil)
	s.AttachEvents(b, time.Hour) // first estimate passes, the rest throttle
	for i := 0; i < 50; i++ {
		s.PublishEstimate(0.8, 0.75, 0.85, int64(i+1), 2000)
	}
	got := drain(sub)
	if len(got) != 1 {
		t.Fatalf("got %d estimate events under a 1h throttle, want 1", len(got))
	}
	ev := got[0]
	if ev.Job != "j000051" || ev.Yield != 0.8 || ev.CILow != 0.75 || ev.CIHigh != 0.85 ||
		ev.Done != 1 || ev.Total != 2000 {
		t.Errorf("estimate event = %+v", ev)
	}

	// No subscriber for the type: publishing is a no-op, and a nil
	// scope or unattached bus never panics.
	var nilScope *Scope
	nilScope.PublishEstimate(1, 1, 1, 1, 1)
	NewScope("j000052", nil).PublishEstimate(1, 1, 1, 1, 1)
}
