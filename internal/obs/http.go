package obs

import (
	"net/http"
	"strconv"
	"time"
)

// MetricsHandler returns an http.Handler serving the default metrics
// registry in the Prometheus text exposition format — the /metrics
// endpoint of yieldd. With observability disabled it serves an empty
// (valid) exposition.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A nil default registry writes nothing, which is a valid
		// (empty) exposition.
		_ = Default().WritePrometheus(w)
	})
}

// statusWriter records the first status code a handler writes so the
// Instrument middleware can label its request counter with it. It
// forwards Flush to the underlying writer (streaming handlers — the
// SSE endpoints — break behind a wrapper that hides it) and exposes
// Unwrap so http.ResponseController reaches the connection's flush and
// deadline support through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code != 0 {
		// The status is already on the wire (explicitly, or implicitly
		// via a first Write): recording this late code would misreport
		// what the client saw, and forwarding it would only trigger
		// net/http's "superfluous WriteHeader" warning.
		return
	}
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it supports flushing,
// so SSE and other streaming handlers work behind Instrument.
func (sw *statusWriter) Flush() {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// Instrument wraps h with per-request metrics on the default registry:
// a counter http_requests_total{handler,code} and a latency histogram
// http_request_seconds{handler}. The handler label should be a short
// static name (one per route), not the raw URL, to keep the series
// cardinality bounded.
func Instrument(handler string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		C(`http_requests_total{handler="` + handler + `",code="` + strconv.Itoa(code) + `"}`).Inc()
		H(`http_request_seconds{handler="`+handler+`"}`, ExpBuckets(1e-3, 4, 10)).
			Observe(time.Since(t0).Seconds())
	})
}
