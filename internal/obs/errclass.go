package obs

import (
	"context"
	"errors"
)

// ErrClass is the low-cardinality failure taxonomy shared by yieldd's
// request counters, job records and terminal telemetry events. Every
// request outcome maps onto exactly one class, so a metric or event
// labelled with it can never blow up series cardinality the way raw
// error strings would.
type ErrClass string

// The taxonomy. ClassOK marks success; the rest classify failures by
// what a client should do about them: fix the request (validation),
// retry later (shed), retry with a larger budget (timeout), nothing —
// the server is going away (canceled) — or report a bug (internal).
const (
	ClassOK         ErrClass = "ok"
	ClassValidation ErrClass = "validation"
	ClassTimeout    ErrClass = "timeout"
	ClassCanceled   ErrClass = "canceled"
	ClassShed       ErrClass = "shed"
	ClassInternal   ErrClass = "internal"
	// ClassStorage marks durability-layer failures (WAL append, snapshot
	// write, recovery). Storage errors degrade durability, not requests:
	// they surface on store_errors_total and job records, never as a
	// request rejection.
	ClassStorage ErrClass = "storage"
)

// Classer is implemented by errors that know their own taxonomy class
// (the store package's Error, for one). ClassifyError checks for it
// before falling back to the context-error rules.
type Classer interface {
	ErrorClass() ErrClass
}

// String returns the class label.
func (c ErrClass) String() string { return string(c) }

// ClassifyError maps an error to its class: nil is ClassOK, context
// deadline and cancellation errors (however deeply wrapped) map to
// ClassTimeout and ClassCanceled, and everything else is ClassInternal.
// Validation and shed outcomes never reach this function — they are
// rejected before an error value exists and are classified at the
// rejection site.
// Errors implementing Classer (however deeply wrapped) take precedence
// after the context rules, so a storage failure inside a build surfaces
// as ClassStorage rather than a generic internal error.
func ClassifyError(err error) ErrClass {
	switch {
	case err == nil:
		return ClassOK
	case errors.Is(err, context.DeadlineExceeded):
		return ClassTimeout
	case errors.Is(err, context.Canceled):
		return ClassCanceled
	}
	var c Classer
	if errors.As(err, &c) {
		return c.ErrorClass()
	}
	return ClassInternal
}
