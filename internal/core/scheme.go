package core

import (
	"sort"

	"yieldcache/internal/sram"
)

// CacheConfig is the configuration a saved chip ships with: the cycle
// count of each way (0 = way powered down) and, for horizontal
// power-down, the disabled region. It is what the CPU simulator prices.
type CacheConfig struct {
	WayCycles  []int // per way; 0 means the way is disabled
	HRegionOff int   // disabled horizontal region, or -1
}

// BaseConfig returns the all-ways-at-4-cycles configuration.
func BaseConfig(ways int) CacheConfig {
	c := CacheConfig{WayCycles: make([]int, ways), HRegionOff: -1}
	for i := range c.WayCycles {
		c.WayCycles[i] = BaseCycles
	}
	return c
}

// EnabledWays returns the number of powered ways. A configuration with a
// disabled horizontal region keeps all ways powered but behaves as one
// fewer way for hit/miss purposes (Section 4.2), which EffectiveAssoc
// reports.
func (c CacheConfig) EnabledWays() int {
	n := 0
	for _, cy := range c.WayCycles {
		if cy > 0 {
			n++
		}
	}
	return n
}

// EffectiveAssoc returns the associativity the program observes.
func (c CacheConfig) EffectiveAssoc() int {
	n := c.EnabledWays()
	if c.HRegionOff >= 0 {
		n--
	}
	return n
}

// Counts returns how many enabled ways need 4, 5 and 6-or-more cycles —
// the N-N-N triples of Table 6.
func (c CacheConfig) Counts() (n4, n5, n6 int) {
	for _, cy := range c.WayCycles {
		switch {
		case cy == 0:
		case cy <= BaseCycles:
			n4++
		case cy == BaseCycles+1:
			n5++
		default:
			n6++
		}
	}
	return
}

// CacheView is the evaluated cache a scheme decides on; it is the sram
// measurement (per-way latency/leakage with per-bank detail).
type CacheView = sram.CacheMeasurement

// Outcome is a scheme's verdict on one chip.
type Outcome struct {
	// Saved reports whether the chip is sellable under the scheme
	// (including chips that pass without intervention).
	Saved bool
	// Passing reports whether the chip met the constraints with no
	// intervention; the schemes have zero performance impact on such
	// chips (Section 5: "the proposed schemes are only activated when a
	// chip does not meet design criteria").
	Passing bool
	Config  CacheConfig
	// DisabledWay / DisabledRegion record the power-down action taken,
	// -1 if none.
	DisabledWay    int
	DisabledRegion int
}

// Scheme is a yield-aware cache architecture: it decides whether a
// failing chip can be saved and at what configuration.
type Scheme interface {
	Name() string
	Apply(m sram.CacheMeasurement, lim Limits) Outcome
}

// helper facts shared by the schemes

func totalLeak(m sram.CacheMeasurement) float64 { return m.LeakageW }

func wayCycles(m sram.CacheMeasurement, lim Limits) []int {
	out := make([]int, len(m.Ways))
	for i, w := range m.Ways {
		out[i] = lim.WayCycles(w.LatencyPS)
	}
	return out
}

func passes(m sram.CacheMeasurement, lim Limits) bool {
	return Classify(m, lim) == LossNone
}

func passOutcome(m sram.CacheMeasurement) Outcome {
	return Outcome{
		Saved:          true,
		Passing:        true,
		Config:         BaseConfig(len(m.Ways)),
		DisabledWay:    -1,
		DisabledRegion: -1,
	}
}

func lostOutcome(m sram.CacheMeasurement) Outcome {
	return Outcome{Config: BaseConfig(len(m.Ways)), DisabledWay: -1, DisabledRegion: -1}
}

// Base is the yield-unaware cache: a chip is sellable only if it passes
// both constraints outright.
type Base struct{}

func (Base) Name() string { return "Base" }

func (Base) Apply(m sram.CacheMeasurement, lim Limits) Outcome {
	if passes(m, lim) {
		return passOutcome(m)
	}
	return lostOutcome(m)
}

// YAPD is the Yield-Aware Power-Down of Section 4.1: at most one way may
// be turned off (Gated-Vdd removes both its delay paths and its entire
// leakage, periphery included). The chip is saved if some single-way
// shutdown leaves every remaining way within the delay limit and the
// total leakage within the power limit.
type YAPD struct{}

func (YAPD) Name() string { return "YAPD" }

func (YAPD) Apply(m sram.CacheMeasurement, lim Limits) Outcome {
	if passes(m, lim) {
		return passOutcome(m)
	}
	// Candidate ways, worst first: delay violators by latency, then by
	// leakage — matching testing practice (disable the failing way; on a
	// leakage failure, the leakiest way).
	order := make([]int, len(m.Ways))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := m.Ways[order[a]], m.Ways[order[b]]
		va := wa.LatencyPS > lim.DelayPS
		vb := wb.LatencyPS > lim.DelayPS
		if va != vb {
			return va
		}
		if va {
			return wa.LatencyPS > wb.LatencyPS
		}
		return wa.LeakageW > wb.LeakageW
	})
	for _, i := range order {
		if yapdValid(m, lim, i) {
			cfg := BaseConfig(len(m.Ways))
			cfg.WayCycles[i] = 0
			return Outcome{Saved: true, Config: cfg, DisabledWay: i, DisabledRegion: -1}
		}
	}
	return lostOutcome(m)
}

func yapdValid(m sram.CacheMeasurement, lim Limits, off int) bool {
	leak := totalLeak(m) - m.Ways[off].LeakageW
	if leak > lim.LeakageW {
		return false
	}
	for i, w := range m.Ways {
		if i != off && w.LatencyPS > lim.DelayPS {
			return false
		}
	}
	return true
}

// HYAPD is the horizontal power-down of Section 4.2: at most one
// horizontal region (the same physical row range of every way) may be
// turned off. Delay-wise this removes each way's paths through that
// region; leakage-wise it removes only the region's cell arrays (the
// periphery cannot be fully gated). The program-visible associativity
// drops to ways-1 thanks to the modified post-decoders, so the hit/miss
// behaviour matches YAPD exactly.
type HYAPD struct{}

func (HYAPD) Name() string { return "H-YAPD" }

func (HYAPD) Apply(m sram.CacheMeasurement, lim Limits) Outcome {
	if passes(m, lim) {
		return passOutcome(m)
	}
	regions := len(m.Ways[0].Banks)
	best, bestLeak := -1, 0.0
	for r := 0; r < regions; r++ {
		leak, ok := hyapdCheck(m, lim, r)
		if ok && (best < 0 || leak < bestLeak) {
			best, bestLeak = r, leak
		}
	}
	if best < 0 {
		return lostOutcome(m)
	}
	cfg := BaseConfig(len(m.Ways))
	cfg.HRegionOff = best
	return Outcome{Saved: true, Config: cfg, DisabledWay: -1, DisabledRegion: best}
}

// hyapdCheck returns the chip's leakage with region r off and whether
// the chip then meets both constraints.
func hyapdCheck(m sram.CacheMeasurement, lim Limits, r int) (float64, bool) {
	leak := 0.0
	for _, w := range m.Ways {
		leak += w.LeakageWithoutBank(r)
		if w.LatencyWithoutBank(r) > lim.DelayPS {
			return leak, false
		}
	}
	return leak, leak <= lim.LeakageW
}

// VACA is the variable-latency cache architecture of Section 4.3: slow
// ways stay enabled and complete in 5 cycles, backed by single-entry
// load-bypass buffers at the functional-unit inputs. Ways needing 6 or
// more cycles cannot be covered, and VACA has no means of reducing
// leakage.
type VACA struct{}

func (VACA) Name() string { return "VACA" }

func (VACA) Apply(m sram.CacheMeasurement, lim Limits) Outcome {
	if passes(m, lim) {
		return passOutcome(m)
	}
	if totalLeak(m) > lim.LeakageW {
		return lostOutcome(m)
	}
	cfg := CacheConfig{WayCycles: wayCycles(m, lim), HRegionOff: -1}
	for _, cy := range cfg.WayCycles {
		if cy > MaxVACACycles {
			return lostOutcome(m)
		}
	}
	return Outcome{Saved: true, Config: cfg, DisabledWay: -1, DisabledRegion: -1}
}

// Hybrid combines VACA with a power-down mechanism (Section 4.4): ways
// are kept enabled as long as possible (5-cycle ways run under VACA);
// a way is turned off only when it needs more than 5 cycles or when the
// leakage constraint is violated, and at most one way may be turned off.
// Horizontal selects the H-YAPD region shutdown instead of a vertical
// way shutdown.
type Hybrid struct {
	Horizontal bool
}

func (h Hybrid) Name() string {
	if h.Horizontal {
		return "Hybrid(H)"
	}
	return "Hybrid"
}

func (h Hybrid) Apply(m sram.CacheMeasurement, lim Limits) Outcome {
	if passes(m, lim) {
		return passOutcome(m)
	}
	// Keep everything on if the chip is valid as a pure VACA.
	cycles := wayCycles(m, lim)
	if totalLeak(m) <= lim.LeakageW && maxInt(cycles) <= MaxVACACycles {
		return Outcome{
			Saved:          true,
			Config:         CacheConfig{WayCycles: cycles, HRegionOff: -1},
			DisabledWay:    -1,
			DisabledRegion: -1,
		}
	}
	if h.Horizontal {
		return h.applyHorizontal(m, lim)
	}
	// Try turning off one way: prefer the slowest unfixable way, then the
	// leakiest.
	order := make([]int, len(m.Ways))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := m.Ways[order[a]], m.Ways[order[b]]
		va := lim.WayCycles(wa.LatencyPS) > MaxVACACycles
		vb := lim.WayCycles(wb.LatencyPS) > MaxVACACycles
		if va != vb {
			return va
		}
		if va {
			return wa.LatencyPS > wb.LatencyPS
		}
		return wa.LeakageW > wb.LeakageW
	})
	for _, off := range order {
		if totalLeak(m)-m.Ways[off].LeakageW > lim.LeakageW {
			continue
		}
		ok := true
		cfg := CacheConfig{WayCycles: make([]int, len(m.Ways)), HRegionOff: -1}
		for i := range m.Ways {
			if i == off {
				continue
			}
			cfg.WayCycles[i] = cycles[i]
			if cycles[i] > MaxVACACycles {
				ok = false
				break
			}
		}
		if ok {
			return Outcome{Saved: true, Config: cfg, DisabledWay: off, DisabledRegion: -1}
		}
	}
	return lostOutcome(m)
}

func (h Hybrid) applyHorizontal(m sram.CacheMeasurement, lim Limits) Outcome {
	regions := len(m.Ways[0].Banks)
	best, bestLeak := -1, 0.0
	var bestCycles []int
	for r := 0; r < regions; r++ {
		leak := 0.0
		cyc := make([]int, len(m.Ways))
		ok := true
		for i, w := range m.Ways {
			leak += w.LeakageWithoutBank(r)
			cyc[i] = lim.WayCycles(w.LatencyWithoutBank(r))
			if cyc[i] > MaxVACACycles {
				ok = false
				break
			}
		}
		if ok && leak <= lim.LeakageW && (best < 0 || leak < bestLeak) {
			best, bestLeak, bestCycles = r, leak, cyc
		}
	}
	if best < 0 {
		return lostOutcome(m)
	}
	return Outcome{
		Saved:          true,
		Config:         CacheConfig{WayCycles: bestCycles, HRegionOff: best},
		DisabledWay:    -1,
		DisabledRegion: best,
	}
}

// NaiveBinning is the Section 4.5 strawman: the whole cache is binned at
// the latency of its slowest way, so every load takes that many cycles.
// MaxCycles caps how slow a bin the manufacturer is willing to sell
// (e.g. 5 or 6).
type NaiveBinning struct {
	MaxCycles int
}

func (n NaiveBinning) Name() string { return "NaiveBinning" }

func (n NaiveBinning) Apply(m sram.CacheMeasurement, lim Limits) Outcome {
	if passes(m, lim) {
		return passOutcome(m)
	}
	if totalLeak(m) > lim.LeakageW {
		return lostOutcome(m)
	}
	worst := maxInt(wayCycles(m, lim))
	if worst > n.MaxCycles {
		return lostOutcome(m)
	}
	cfg := CacheConfig{WayCycles: make([]int, len(m.Ways)), HRegionOff: -1}
	for i := range cfg.WayCycles {
		cfg.WayCycles[i] = worst
	}
	return Outcome{Saved: true, Config: cfg, DisabledWay: -1, DisabledRegion: -1}
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
