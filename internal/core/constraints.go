// Package core implements the paper's primary contribution: parametric
// yield analysis of the L1 data cache under process variation, and the
// four yield-aware schemes — YAPD, H-YAPD, VACA and Hybrid — that convert
// would-be parametric losses into working (slightly degraded) parts.
//
// The flow mirrors Section 5.1: build a Monte Carlo population of chips
// (package sram provides per-way latency and leakage), derive the delay
// and leakage limits from the population statistics, classify each chip's
// loss reason, and ask each scheme whether it can save the chip and at
// what configuration (which package cpu then prices in CPI).
package core

import (
	"fmt"
	"math"

	"yieldcache/internal/sram"
	"yieldcache/internal/stats"
)

// BaseCycles is the nominal L1 data cache hit latency in cycles
// (Section 4.3: "cache hit latency, which is four cycles in our
// architecture").
const BaseCycles = 4

// MaxVACACycles is the slowest access VACA can tolerate: the load-bypass
// buffers have a single entry, allowing 4- or 5-cycle accesses
// (Section 4.3). Ways needing more are a loss for VACA and must be
// powered down by the Hybrid scheme.
const MaxVACACycles = 5

// Constraints expresses a yield requirement in the paper's parametric
// form: the delay limit sits DelaySigmaK standard deviations above the
// population mean latency, and the leakage limit is LeakageMult times
// the population average leakage.
type Constraints struct {
	Name        string
	DelaySigmaK float64
	LeakageMult float64
}

// The three constraint sets of Section 5.1.
func Nominal() Constraints { return Constraints{Name: "nominal", DelaySigmaK: 1.0, LeakageMult: 3} }
func Relaxed() Constraints { return Constraints{Name: "relaxed", DelaySigmaK: 1.5, LeakageMult: 4} }
func Strict() Constraints  { return Constraints{Name: "strict", DelaySigmaK: 0.5, LeakageMult: 2} }

// Limits are the absolute pass/fail thresholds derived from a reference
// population. Both cache organisations (regular and H-YAPD) are judged
// against limits derived from the *regular* population — the chips are
// sold at the same frequency bin regardless of their internal decoder
// organisation — which is why the H-YAPD base case loses more chips
// (Section 5.1: 18.1% vs 16.9%).
type Limits struct {
	DelayPS  float64 // maximum cache access latency that still bins at BaseCycles
	LeakageW float64 // maximum total cache leakage power
}

// CycleTimePS returns the clock budget of a single cycle: the delay
// limit spread over the BaseCycles pipeline cycles of a hit.
func (l Limits) CycleTimePS() float64 { return l.DelayPS / BaseCycles }

// WayCycles returns the number of cycles a way with the given latency
// needs: BaseCycles if it meets the limit, and one more for each extra
// cycle budget it spills into.
func (l Limits) WayCycles(latencyPS float64) int {
	if latencyPS <= l.DelayPS {
		return BaseCycles
	}
	return int(math.Ceil(latencyPS / l.CycleTimePS()))
}

// DeriveLimits computes the absolute limits from the reference (regular
// organisation) population under the given constraints.
func DeriveLimits(ref *Population, c Constraints) Limits {
	lat := ref.Latencies()
	leak := ref.Leakages()
	m, s := stats.MeanStd(lat)
	return Limits{
		DelayPS:  m + c.DelaySigmaK*s,
		LeakageW: c.LeakageMult * stats.Mean(leak),
	}
}

// LossReason classifies why a chip fails the parametric test, following
// the row structure of Tables 2 and 3. Leakage takes priority: a chip
// over the leakage limit is counted in the leakage row regardless of its
// delay behaviour (delay-violating ways still matter to the schemes).
type LossReason int

const (
	LossNone    LossReason = iota // chip passes both constraints
	LossLeakage                   // leakage constraint violated
	LossDelay1                    // delay constraint violated by exactly 1 way
	LossDelay2
	LossDelay3
	LossDelay4
)

func (r LossReason) String() string {
	switch r {
	case LossNone:
		return "none"
	case LossLeakage:
		return "Leakage Constraint"
	case LossDelay1, LossDelay2, LossDelay3, LossDelay4:
		return fmt.Sprintf("Delay Constraint (%d Way)", int(r-LossDelay1)+1)
	default:
		return fmt.Sprintf("LossReason(%d)", int(r))
	}
}

// NumLossReasons is the number of distinct loss rows (the length of
// LossReasons). Fixed-size accumulator arrays — the streaming yield
// estimator's per-reason tallies in particular — are dimensioned with
// it so arming them costs no per-snapshot allocation.
const NumLossReasons = 5

// LossReasons lists the loss rows in table order.
func LossReasons() []LossReason {
	return []LossReason{LossLeakage, LossDelay1, LossDelay2, LossDelay3, LossDelay4}
}

// Classify returns the loss reason of a chip under the given limits.
func Classify(m sram.CacheMeasurement, lim Limits) LossReason {
	if m.LeakageW > lim.LeakageW {
		return LossLeakage
	}
	n := 0
	for _, w := range m.Ways {
		if w.LatencyPS > lim.DelayPS {
			n++
		}
	}
	if n == 0 {
		return LossNone
	}
	return LossDelay1 + LossReason(n-1)
}
