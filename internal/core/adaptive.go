package core

import "sort"

// AdaptiveHybrid implements the policy Section 4.4 discusses but leaves
// fixed in the paper: when a chip can be saved either by keeping a
// 5-cycle way enabled (VACA behaviour) or by turning it off (YAPD
// behaviour), choose per workload. A memory-intensive application loses
// more from the capacity cut than from the extra cycle; a
// compute-intensive one prefers the smaller cache at full speed.
//
// The decision is driven by a MemoryIntensity figure in [0, 1] — the
// fraction of execution time attributable to the data cache (miss-rate
// times miss-cost normalised), which a deployment would profile once.
// Intensity above Threshold keeps ways on; below it, the slowest
// 5-cycle way is powered down too when that still satisfies the
// constraints.
type AdaptiveHybrid struct {
	// MemoryIntensity of the target application, in [0, 1].
	MemoryIntensity float64
	// Threshold above which ways are kept enabled (default 0.5 when
	// zero).
	Threshold float64
}

func (AdaptiveHybrid) Name() string { return "AdaptiveHybrid" }

func (a AdaptiveHybrid) threshold() float64 {
	if a.Threshold == 0 {
		return 0.5
	}
	return a.Threshold
}

// Apply saves exactly the chips the fixed Hybrid saves (the policy only
// changes the *configuration* of saved chips, never sacrifices one),
// but for compute-bound workloads it additionally powers down a
// 5-cycle way when no way had to be disabled for other reasons.
func (a AdaptiveHybrid) Apply(m CacheView, lim Limits) Outcome {
	out := Hybrid{}.Apply(m, lim)
	if !out.Saved || out.Passing {
		return out
	}
	if a.MemoryIntensity >= a.threshold() {
		return out // memory-bound: keep every way on, eat the 5th cycle
	}
	if out.DisabledWay >= 0 {
		return out // the single allowed shutdown is already spent
	}
	// Compute-bound: turn off the slowest 5-cycle way if the chip still
	// meets the constraints without it.
	slowest, worst := -1, 0.0
	for i, cy := range out.Config.WayCycles {
		if cy > BaseCycles && m.Ways[i].LatencyPS > worst {
			slowest, worst = i, m.Ways[i].LatencyPS
		}
	}
	if slowest < 0 {
		return out
	}
	if totalLeak(m)-m.Ways[slowest].LeakageW > lim.LeakageW {
		return out
	}
	cfg := CacheConfig{WayCycles: append([]int(nil), out.Config.WayCycles...), HRegionOff: -1}
	cfg.WayCycles[slowest] = 0
	return Outcome{Saved: true, Config: cfg, DisabledWay: slowest, DisabledRegion: -1}
}

// LineDisable is the finer-grained baseline of the related-work
// comparison (Agarwal et al. [3]): individual cache lines — here,
// bank-rows — that fail timing are disabled instead of whole ways or
// regions. It ignores the spatial correlation the paper exploits, so it
// needs no budget on how many ways it touches, but it cannot reduce
// leakage (disabled lines are a tiny fraction of the array) and a way
// whose periphery (decoder, sense amps) is slow fails on every row.
//
// MaxDisabledFrac caps the fraction of rows that may be turned off
// before the capacity loss is considered unacceptable (the paper's 2%
// performance budget translated to capacity).
type LineDisable struct {
	MaxDisabledFrac float64 // default 0.25 when zero
}

func (LineDisable) Name() string { return "LineDisable" }

func (l LineDisable) maxFrac() float64 {
	if l.MaxDisabledFrac == 0 {
		return 0.25
	}
	return l.MaxDisabledFrac
}

// Apply disables every representative path (row region) that violates
// the delay limit, way by way. The chip is saved if the disabled
// fraction stays within budget and leakage meets the limit (line
// disabling barely moves leakage, so leakage violators are lost).
func (l LineDisable) Apply(m CacheView, lim Limits) Outcome {
	if passes(m, lim) {
		return passOutcome(m)
	}
	if totalLeak(m) > lim.LeakageW {
		return lostOutcome(m)
	}
	totalPaths, disabled := 0, 0
	for _, w := range m.Ways {
		for _, b := range w.Banks {
			for _, p := range b.Paths {
				totalPaths++
				if p.DelayPS > lim.DelayPS {
					disabled++
				}
			}
		}
	}
	if totalPaths == 0 || float64(disabled)/float64(totalPaths) > l.maxFrac() {
		return lostOutcome(m)
	}
	// All remaining paths meet timing by construction; the performance
	// configuration is the full 4-way cache with proportionally reduced
	// capacity, which we conservatively report as the base config (the
	// CPI cost of scattered dead lines is bounded by the way-shutdown
	// cost the budget encodes).
	return Outcome{Saved: true, Config: BaseConfig(len(m.Ways)), DisabledWay: -1, DisabledRegion: -1}
}

// SchemeComparison evaluates an arbitrary set of schemes on one
// population and returns their total losses, sorted best-first. It is
// the generalised engine behind the examples' scheme shoot-outs.
func SchemeComparison(pop *Population, lim Limits, schemes []Scheme) []SchemeLosses {
	bd := BreakdownLosses(pop, lim, schemes...)
	out := append([]SchemeLosses(nil), bd.Schemes...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].Total < out[b].Total })
	return out
}
