package core

import (
	"context"
	"runtime/debug"
	"testing"
	"time"
)

// armedConfig returns a PopulationConfig with estimation armed at a
// per-batch cadence (1ns interval => every deadline check fires).
func armedConfig(n int, workers int, sink func(*YieldEstimate)) PopulationConfig {
	if sink == nil {
		sink = func(*YieldEstimate) {}
	}
	return PopulationConfig{
		N: n, Seed: 2006, Workers: workers,
		Estimate: &EstimateConfig{
			Interval:    time.Nanosecond,
			Constraints: Nominal(),
			Sink:        sink,
		},
	}
}

// TestEstimateWorkerCountIndependent pins the estimator's central
// determinism claim: the final snapshot is a pure function of the
// measured prefix, so builds differing only in worker count produce
// bit-identical final estimates (every field, intervals included).
func TestEstimateWorkerCountIndependent(t *testing.T) {
	var ref *YieldEstimate
	for _, workers := range []int{1, 2, 3, 7, 8} {
		_, _, est, err := BuildPopulationPairEstimate(
			context.Background(), armedConfig(240, workers, nil))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if est == nil {
			t.Fatalf("workers=%d: nil final estimate", workers)
		}
		if est.Chips != 240 || est.Total != 240 || est.EarlyStop {
			t.Fatalf("workers=%d: unexpected final shape %+v", workers, est)
		}
		if ref == nil {
			ref = est
			continue
		}
		if *est != *ref {
			t.Errorf("workers=%d: final estimate differs:\n got %+v\nwant %+v", workers, est, ref)
		}
	}
}

// TestEstimateFinalMatchesTables checks that the terminal snapshot
// reproduces the table pipeline exactly: provisional limits over the
// full population equal DeriveLimits bit for bit, and the loss tallies
// equal BreakdownLosses' base column.
func TestEstimateFinalMatchesTables(t *testing.T) {
	reg, _, est, err := BuildPopulationPairEstimate(
		context.Background(), armedConfig(200, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	cons := Nominal()
	lim := DeriveLimits(reg, cons)
	if est.Limits != lim {
		t.Errorf("final limits %+v != DeriveLimits %+v", est.Limits, lim)
	}
	bd := BreakdownLosses(reg, lim)
	if int(est.Lost) != bd.BaseTotal {
		t.Errorf("final lost %d != breakdown base total %d", est.Lost, bd.BaseTotal)
	}
	if est.Yield != bd.Yield(-1) {
		t.Errorf("final yield %v != breakdown base yield %v", est.Yield, bd.Yield(-1))
	}
	for j, r := range LossReasons() {
		if int(est.Reasons[j].Lost) != bd.Base[r] {
			t.Errorf("reason %v: estimate lost %d != breakdown %d",
				r, est.Reasons[j].Lost, bd.Base[r])
		}
		if est.Reasons[j].Reason != r {
			t.Errorf("reason slot %d holds %v, want %v", j, est.Reasons[j].Reason, r)
		}
	}
	if est.CILow > est.Yield || est.CIHigh < est.Yield {
		t.Errorf("interval [%v, %v] does not bracket yield %v", est.CILow, est.CIHigh, est.Yield)
	}
}

// TestEstimateGoldenUnaffected checks the bit-identity acceptance
// criterion: arming estimation (without a precision target) changes
// nothing about the built populations or the tables derived from them.
func TestEstimateGoldenUnaffected(t *testing.T) {
	plainReg, plainHor := BuildPopulationPair(PopulationConfig{N: 200, Seed: 2006})
	snapshots := 0
	armed := armedConfig(200, 0, func(*YieldEstimate) { snapshots++ })
	reg, hor, est, err := BuildPopulationPairEstimate(context.Background(), armed)
	if err != nil {
		t.Fatal(err)
	}
	if snapshots == 0 || est == nil {
		t.Fatalf("estimation did not publish (snapshots=%d)", snapshots)
	}
	if len(reg.Chips) != len(plainReg.Chips) {
		t.Fatalf("armed build has %d chips, plain %d", len(reg.Chips), len(plainReg.Chips))
	}
	for i := range reg.Chips {
		if reg.Chips[i].Meas.LatencyPS != plainReg.Chips[i].Meas.LatencyPS ||
			reg.Chips[i].Meas.LeakageW != plainReg.Chips[i].Meas.LeakageW ||
			hor.Chips[i].Meas.LatencyPS != plainHor.Chips[i].Meas.LatencyPS {
			t.Fatalf("chip %d differs between armed and plain builds", i)
		}
	}
	lim := DeriveLimits(plainReg, Nominal())
	plainBD := BreakdownLosses(plainReg, lim, YAPD{}, VACA{}, Hybrid{})
	armedBD := BreakdownLosses(reg, DeriveLimits(reg, Nominal()), YAPD{}, VACA{}, Hybrid{})
	if plainBD.BaseTotal != armedBD.BaseTotal {
		t.Errorf("base totals differ: plain %d, armed %d", plainBD.BaseTotal, armedBD.BaseTotal)
	}
	for i := range plainBD.Schemes {
		if plainBD.Schemes[i].Total != armedBD.Schemes[i].Total {
			t.Errorf("scheme %s totals differ", plainBD.Schemes[i].Scheme)
		}
	}
}

// TestEstimateEarlyStop drives the precision-targeted stopping rule: a
// loose CI target must stop the build before the full population, on a
// batch-aligned frontier, with a final half-width at or under the
// target — and the surviving prefix must be bit-identical to the same
// chips of an untruncated build.
func TestEstimateEarlyStop(t *testing.T) {
	const n = 4000
	cfg := armedConfig(n, 0, nil)
	cfg.Estimate.TargetCIWidth = 0.05
	reg, hor, est, err := BuildPopulationPairEstimate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if est == nil || !est.EarlyStop {
		t.Fatalf("expected early stop, got %+v", est)
	}
	if est.Chips >= n {
		t.Fatalf("stopped at %d chips, expected fewer than %d", est.Chips, n)
	}
	if est.Chips < cfg.Estimate.MinChips {
		// MinChips was defaulted by the build; the decision frontier
		// respects the documented floor of 128.
		if est.Chips < 128 {
			t.Errorf("stopped at %d chips, below the MinChips floor", est.Chips)
		}
	}
	if est.HalfWidth > 0.05 {
		t.Errorf("final half-width %v exceeds target 0.05", est.HalfWidth)
	}
	if len(reg.Chips) != est.Chips || len(hor.Chips) != est.Chips {
		t.Fatalf("populations have %d/%d chips, estimate says %d",
			len(reg.Chips), len(hor.Chips), est.Chips)
	}
	// Chip i is a pure function of (Seed, i): the truncated prefix must
	// match an untruncated build chip for chip.
	full, _ := BuildPopulationPair(PopulationConfig{N: n, Seed: 2006})
	for i := range reg.Chips {
		if reg.Chips[i].Meas.LatencyPS != full.Chips[i].Meas.LatencyPS {
			t.Fatalf("truncated chip %d differs from full build", i)
		}
	}
}

// TestEstimateDisabled checks the off path: no sink and no target
// means no estimator, and the entry point reports a nil estimate.
func TestEstimateDisabled(t *testing.T) {
	reg, _, est, err := BuildPopulationPairEstimate(context.Background(),
		PopulationConfig{N: 64, Seed: 9, Estimate: &EstimateConfig{Constraints: Nominal()}})
	if err != nil {
		t.Fatal(err)
	}
	if est != nil {
		t.Errorf("estimate without sink or target should be nil, got %+v", est)
	}
	if len(reg.Chips) != 64 {
		t.Errorf("population truncated without a target: %d chips", len(reg.Chips))
	}
}

// TestEstimateAllocBudget pins the arming cost next to the
// checkpointer's: at most 2 extra allocations per build (the estimator
// struct with its embedded snapshot buffer, and the frontier slice).
func TestEstimateAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget is pinned by the non-race run")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	cfg := PopulationConfig{N: 200, Seed: 1, Workers: 1}
	BuildPopulationPair(cfg)
	plain := testing.AllocsPerRun(10, func() { BuildPopulationPair(cfg) })

	armed := cfg
	armed.Estimate = &EstimateConfig{
		Interval:    time.Millisecond,
		Constraints: Nominal(),
		Sink:        func(*YieldEstimate) {},
	}
	BuildPopulationPair(armed)
	withEst := testing.AllocsPerRun(10, func() { BuildPopulationPair(armed) })
	if withEst > plain+2 {
		t.Errorf("estimating pair build allocates %.1f times per run, plain is %.1f: estimation may add at most 2",
			withEst, plain)
	}
}
