package core

import "testing"

func TestPerturbZeroNoiseIsIdentity(t *testing.T) {
	pop := BuildPopulation(PopulationConfig{N: 10, Seed: 3})
	mm := MeasurementModel{Seed: 1}
	for _, chip := range pop.Chips {
		n := mm.Perturb(chip.ID, chip.Meas)
		if n.LatencyPS != chip.Meas.LatencyPS || n.LeakageW != chip.Meas.LeakageW {
			t.Fatal("zero-noise perturbation changed aggregates")
		}
	}
}

func TestPerturbConsistency(t *testing.T) {
	pop := BuildPopulation(PopulationConfig{N: 5, Seed: 4})
	mm := MeasurementModel{LatencySigma: 0.05, LeakageSigma: 0.10, Seed: 9}
	for _, chip := range pop.Chips {
		n := mm.Perturb(chip.ID, chip.Meas)
		again := mm.Perturb(chip.ID, chip.Meas)
		if n.LatencyPS != again.LatencyPS {
			t.Fatal("perturbation not deterministic")
		}
		// Aggregates must be recomputed from the noisy parts.
		maxWay, leak := 0.0, 0.0
		for _, w := range n.Ways {
			if w.LatencyPS > maxWay {
				maxWay = w.LatencyPS
			}
			leak += w.LeakageW
			bankMax := 0.0
			for _, b := range w.Banks {
				if b.MaxPS > bankMax {
					bankMax = b.MaxPS
				}
			}
			if bankMax != w.LatencyPS {
				t.Fatal("noisy way latency inconsistent with banks")
			}
		}
		if maxWay != n.LatencyPS || !approxEq(leak, n.LeakageW) {
			t.Fatal("noisy cache aggregates inconsistent")
		}
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(a+b)
}

func TestEvaluateUnderNoisePerfectTester(t *testing.T) {
	pop := BuildPopulation(PopulationConfig{N: 200, Seed: 2006})
	lim := DeriveLimits(pop, Nominal())
	out := EvaluateUnderNoise(pop, lim, Hybrid{}, MeasurementModel{Seed: 1})
	if out.Escapes != 0 || out.Overkill != 0 {
		t.Errorf("perfect tester should have no escapes/overkill: %+v", out)
	}
	if out.Shipped != out.Perfect {
		t.Errorf("perfect tester ships exactly the perfect set: %+v", out)
	}
}

func TestEvaluateUnderNoiseDegradesGracefully(t *testing.T) {
	pop := BuildPopulation(PopulationConfig{N: 400, Seed: 2006})
	lim := DeriveLimits(pop, Nominal())
	mild := EvaluateUnderNoise(pop, lim, Hybrid{},
		MeasurementModel{LatencySigma: 0.01, LeakageSigma: 0.03, Seed: 1})
	harsh := EvaluateUnderNoise(pop, lim, Hybrid{},
		MeasurementModel{LatencySigma: 0.10, LeakageSigma: 0.30, Seed: 1})
	if mild.Escapes+mild.Overkill > harsh.Escapes+harsh.Overkill {
		t.Errorf("more noise should mean more misdecisions: mild %+v vs harsh %+v", mild, harsh)
	}
	if harsh.Escapes == 0 && harsh.Overkill == 0 {
		t.Error("10%/30% measurement error should cause some misdecisions")
	}
	// Escapes stay a small fraction of shipped parts even under harsh
	// noise (most chips are far from the limits).
	if harsh.Shipped > 0 && float64(harsh.Escapes)/float64(harsh.Shipped) > 0.2 {
		t.Errorf("escape rate implausibly high: %+v", harsh)
	}
}

func TestConfigValidCatchesViolations(t *testing.T) {
	lim := Limits{DelayPS: 100, LeakageW: 1.0}
	// True chip: way 0 needs 6+ cycles. A decision that binned it at 5
	// (e.g. from an optimistic measurement) is an escape.
	m := synthChip([4]float64{130, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	bad := Outcome{
		Saved:          true,
		Config:         CacheConfig{WayCycles: []int{5, 4, 4, 4}, HRegionOff: -1},
		DisabledWay:    -1,
		DisabledRegion: -1,
	}
	if configValid(m, lim, bad) {
		t.Error("a 6-cycle way shipped at 5 cycles must be flagged")
	}
	good := Outcome{
		Saved:          true,
		Config:         CacheConfig{WayCycles: []int{0, 4, 4, 4}, HRegionOff: -1},
		DisabledWay:    0,
		DisabledRegion: -1,
	}
	if !configValid(m, lim, good) {
		t.Error("powering the slow way down is a valid ship")
	}
	// Leakage: shipping all ways of an over-limit chip is an escape.
	leaky := synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.5, 0.3, 0.2, 0.2})
	all := Outcome{Saved: true, Config: BaseConfig(4), DisabledWay: -1, DisabledRegion: -1}
	if configValid(leaky, lim, all) {
		t.Error("shipping a leakage violator unmodified must be flagged")
	}
}

func TestSchemesShipOnlyValidConfigs(t *testing.T) {
	// The fundamental soundness property of every scheme: with perfect
	// measurement, any chip a scheme declares saved must, on its true
	// parameters, meet the delay limit at the shipped cycle counts and
	// the leakage limit on the enabled portion. configValid is the same
	// checker the noise study uses.
	pop := BuildPopulation(PopulationConfig{N: 600, Seed: 2006})
	hor := BuildPopulation(PopulationConfig{N: 600, Seed: 2006, HYAPD: true})
	lim := DeriveLimits(pop, Nominal())
	vertical := []Scheme{Base{}, YAPD{}, VACA{}, Hybrid{},
		NaiveBinning{MaxCycles: 5}, NaiveBinning{MaxCycles: 6},
		AdaptiveHybrid{MemoryIntensity: 0.1}, AdaptiveHybrid{MemoryIntensity: 0.9}}
	for _, s := range vertical {
		for _, chip := range pop.Chips {
			out := s.Apply(chip.Meas, lim)
			if !out.Saved {
				continue
			}
			if !configValid(chip.Meas, lim, out) {
				t.Fatalf("%s shipped an invalid config for chip %d: %+v",
					s.Name(), chip.ID, out)
			}
		}
	}
	for _, s := range []Scheme{HYAPD{}, Hybrid{Horizontal: true}} {
		for _, chip := range hor.Chips {
			out := s.Apply(chip.Meas, lim)
			if !out.Saved || out.DisabledRegion < 0 {
				continue
			}
			if !configValid(chip.Meas, lim, out) {
				t.Fatalf("%s shipped an invalid config for chip %d: %+v",
					s.Name(), chip.ID, out)
			}
		}
	}
}
