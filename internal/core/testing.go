package core

import (
	"yieldcache/internal/sram"
	"yieldcache/internal/stats"
)

// The schemes' power-down decisions are made from post-fabrication
// measurements — memory tests for latency, on-die leakage sensors for
// power (Section 4.1 cites Kim et al.'s sub-90nm leakage sensor). Real
// measurements carry error, and a yield-aware scheme configured from
// noisy data can misfire in two ways:
//
//   - a test escape: the chip is shipped in a configuration that, on
//     its true parameters, still violates a constraint;
//   - overkill: a chip that a perfect measurement would have saved (or
//     passed) is discarded.
//
// MeasurementModel perturbs a chip's measured latencies and leakages
// with multiplicative Gaussian error before the scheme decides, then
// scores the decision against the true values.

// MeasurementModel describes the tester's accuracy.
type MeasurementModel struct {
	// LatencySigma is the relative 1-sigma error of path-delay
	// measurement (speed binning resolution), e.g. 0.02 for 2%.
	LatencySigma float64
	// LeakageSigma is the relative 1-sigma error of the leakage sensors,
	// typically coarser than delay test.
	LeakageSigma float64
	// Seed makes the noise deterministic.
	Seed int64
}

// Perturb returns a copy of the measurement with noise applied. Each
// path delay and each bank leakage gets an independent multiplicative
// error; aggregates are recomputed from the noisy parts, so the noisy
// view is internally consistent.
func (mm MeasurementModel) Perturb(chipID int, m sram.CacheMeasurement) sram.CacheMeasurement {
	rng := stats.NewRNG(mm.Seed).Split(int64(chipID) + 1)
	out := sram.CacheMeasurement{Ways: make([]sram.WayMeasurement, len(m.Ways))}
	for wi, w := range m.Ways {
		nw := sram.WayMeasurement{
			Banks:       make([]sram.BankMeasurement, len(w.Banks)),
			PeriphLeakW: w.PeriphLeakW * factor(rng, mm.LeakageSigma),
		}
		for bi, b := range w.Banks {
			nb := sram.BankMeasurement{
				Paths:      make([]sram.PathMeasurement, len(b.Paths)),
				ArrayLeakW: b.ArrayLeakW * factor(rng, mm.LeakageSigma),
			}
			for pi, p := range b.Paths {
				p.DelayPS *= factor(rng, mm.LatencySigma)
				nb.Paths[pi] = p
				if p.DelayPS > nb.MaxPS {
					nb.MaxPS = p.DelayPS
				}
			}
			nw.Banks[bi] = nb
			if nb.MaxPS > nw.LatencyPS {
				nw.LatencyPS = nb.MaxPS
			}
			nw.LeakageW += nb.ArrayLeakW
		}
		nw.LeakageW += nw.PeriphLeakW
		out.Ways[wi] = nw
		if nw.LatencyPS > out.LatencyPS {
			out.LatencyPS = nw.LatencyPS
		}
		out.LeakageW += nw.LeakageW
	}
	return out
}

func factor(rng *stats.RNG, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	f := rng.Normal(1, sigma)
	if f < 0.01 {
		f = 0.01
	}
	return f
}

// TestOutcome summarises a scheme's decisions under measurement noise.
type TestOutcome struct {
	Shipped  int // chips sold (decided sellable from the noisy view)
	Escapes  int // shipped chips whose true configuration still violates
	Overkill int // chips a perfect tester would sell but this one discards
	Perfect  int // chips the perfect tester sells (the reference)
}

// EvaluateUnderNoise applies the scheme to every chip's *noisy*
// measurement and checks the resulting configuration against the true
// one. A shipped chip's configuration is validated by re-checking the
// true per-way values under the shipped way/region assignments.
func EvaluateUnderNoise(pop *Population, lim Limits, s Scheme, mm MeasurementModel) TestOutcome {
	var out TestOutcome
	for _, chip := range pop.Chips {
		perfect := s.Apply(chip.Meas, lim)
		if perfect.Saved {
			out.Perfect++
		}
		noisy := mm.Perturb(chip.ID, chip.Meas)
		decision := s.Apply(noisy, lim)
		if !decision.Saved {
			if perfect.Saved {
				out.Overkill++
			}
			continue
		}
		out.Shipped++
		if !configValid(chip.Meas, lim, decision) {
			out.Escapes++
		}
	}
	return out
}

// configValid checks a shipped configuration against the chip's true
// parameters: every enabled way must meet the cycle count it was binned
// at, and the true leakage of the enabled portion must meet the limit.
func configValid(m sram.CacheMeasurement, lim Limits, o Outcome) bool {
	leak := 0.0
	for i, w := range m.Ways {
		if o.DisabledRegion >= 0 {
			leak += w.LeakageWithoutBank(o.DisabledRegion)
			if lim.WayCycles(w.LatencyWithoutBank(o.DisabledRegion)) > maxCyclesOf(o, i) {
				return false
			}
			continue
		}
		if o.Config.WayCycles[i] == 0 {
			continue // powered down: contributes nothing
		}
		leak += w.LeakageW
		if lim.WayCycles(w.LatencyPS) > o.Config.WayCycles[i] {
			return false
		}
	}
	return leak <= lim.LeakageW
}

func maxCyclesOf(o Outcome, way int) int {
	if o.Config.WayCycles[way] == 0 {
		return 1 << 30 // region-disabled configs keep all ways powered
	}
	return o.Config.WayCycles[way]
}
