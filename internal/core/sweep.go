package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"yieldcache/internal/circuit"
	"yieldcache/internal/obs"
	"yieldcache/internal/sram"
)

// This file is the design-space exploration engine: a SweepSpec names a
// grid over technology parameters, cache geometries and constraint
// sets; PlanSweep turns it into an evaluation plan that maximises
// DeltaBuilder draw reuse; RunSweep executes the plan with per-config
// cancellation, skip-based resume and progress reporting; and
// ParetoFrontier/SweepFrontiers reduce the per-config evaluations into
// yield × performance × leakage frontiers.

// techParams maps canonical sweep parameter names to the circuit.Tech
// field they address. The names double as the wire schema of sweep
// specs, so they are part of the public API (docs/SWEEPS.md).
var techParams = map[string]func(*circuit.Tech) *float64{
	"vdd":                 func(t *circuit.Tech) *float64 { return &t.Vdd },
	"vt_nominal":          func(t *circuit.Tech) *float64 { return &t.VtNominal },
	"alpha":               func(t *circuit.Tech) *float64 { return &t.Alpha },
	"dibl":                func(t *circuit.Tech) *float64 { return &t.DIBL },
	"subvt_slope":         func(t *circuit.Tech) *float64 { return &t.SubVtSlope },
	"coupling_frac":       func(t *circuit.Tech) *float64 { return &t.CouplingFrac },
	"diffusion_frac":      func(t *circuit.Tech) *float64 { return &t.DiffusionFrac },
	"cell_leakage":        func(t *circuit.Tech) *float64 { return &t.CellLeakage },
	"periphery_leak_frac": func(t *circuit.Tech) *float64 { return &t.PeripheryLeakFrac },
	"sense_margin_gain":   func(t *circuit.Tech) *float64 { return &t.SenseMarginGain },
	"sense_margin_max":    func(t *circuit.Tech) *float64 { return &t.SenseMarginMax },
}

// TechParamNames returns the canonical names a TechAxis may sweep, in
// sorted order.
func TechParamNames() []string {
	names := make([]string, 0, len(techParams))
	for n := range techParams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetTechParam sets the named technology parameter on t. It is the
// write half of the sweep parameter registry; unknown names error.
func SetTechParam(t *circuit.Tech, name string, v float64) error {
	f, ok := techParams[name]
	if !ok {
		return fmt.Errorf("unknown tech parameter %q (want one of %s)",
			name, strings.Join(TechParamNames(), ", "))
	}
	*f(t) = v
	return nil
}

// TechAxis is one swept technology parameter: the canonical parameter
// name (see TechParamNames) and the grid values it takes. Values keep
// their given order; the first value anchors the DeltaBuilder base, so
// listing values nearest the technology's nominal point first keeps
// deltas small.
type TechAxis struct {
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// SweepSpec names a design-space grid: the cross product of every
// geometry, every technology grid point (the cross product of the
// axes applied to Base) and every constraint set. The zero value of
// each dimension means "the paper's default" — Paper16KB geometry,
// PTM45 base technology, nominal constraints.
type SweepSpec struct {
	// N is the Monte Carlo population size per config; 0 means
	// PaperPopulationSize.
	N int `json:"n,omitempty"`
	// Seed is the master variation seed shared by every config —
	// common random numbers are what make adjacent grid points directly
	// comparable.
	Seed int64 `json:"seed"`
	// Base is the technology the axes perturb; nil means circuit.PTM45.
	Base *circuit.Tech `json:"base,omitempty"`
	// Axes are the swept technology parameters; empty sweeps only
	// geometry × constraints.
	Axes []TechAxis `json:"axes,omitempty"`
	// Constraints are the k/m constraint sets to derive limits from;
	// empty means Nominal only.
	Constraints []Constraints `json:"constraints,omitempty"`
	// Geometries are the cache organisations to sweep; empty means
	// sram.Paper16KB only. Ways must stay within 1..4 (the variation
	// mesh is 2×2).
	Geometries []sram.Geometry `json:"geometries,omitempty"`
}

// maxSweepConfigs bounds the planner against runaway grids; servers
// apply their own (much lower) admission limits on top.
const maxSweepConfigs = 1 << 20

func (s *SweepSpec) fill() {
	if s.N == 0 {
		s.N = PaperPopulationSize
	}
	if s.Base == nil {
		t := circuit.PTM45()
		s.Base = &t
	}
	if len(s.Constraints) == 0 {
		s.Constraints = []Constraints{Nominal()}
	}
	for i := range s.Constraints {
		if s.Constraints[i].Name == "" {
			s.Constraints[i].Name = fmt.Sprintf("k=%g,m=%g",
				s.Constraints[i].DelaySigmaK, s.Constraints[i].LeakageMult)
		}
	}
	if len(s.Geometries) == 0 {
		s.Geometries = []sram.Geometry{sram.Paper16KB()}
	}
}

func (s *SweepSpec) validate() error {
	if s.N < 0 {
		return fmt.Errorf("sweep: N must be positive, got %d", s.N)
	}
	seen := make(map[string]bool, len(s.Axes))
	for _, ax := range s.Axes {
		if _, ok := techParams[ax.Param]; !ok {
			return fmt.Errorf("sweep: unknown tech parameter %q (want one of %s)",
				ax.Param, strings.Join(TechParamNames(), ", "))
		}
		if seen[ax.Param] {
			return fmt.Errorf("sweep: tech parameter %q swept twice", ax.Param)
		}
		seen[ax.Param] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("sweep: axis %q has no values", ax.Param)
		}
	}
	for _, c := range s.Constraints {
		if c.DelaySigmaK <= 0 || c.LeakageMult <= 0 {
			return fmt.Errorf("sweep: constraint %q needs positive k and m (got k=%g, m=%g)",
				c.Name, c.DelaySigmaK, c.LeakageMult)
		}
	}
	for _, g := range s.Geometries {
		if g.Ways < 1 || g.Ways > 4 {
			return fmt.Errorf("sweep: geometry ways must be 1..4 (the variation mesh is 2×2), got %d", g.Ways)
		}
		if g.BanksPerWay < 1 || g.RowsPerBank < 1 || g.BitsPerRow < 1 || g.PathsPerBank < 1 {
			return fmt.Errorf("sweep: geometry %dw×%db×%dr×%dc×%dp has a non-positive dimension",
				g.Ways, g.BanksPerWay, g.RowsPerBank, g.BitsPerRow, g.PathsPerBank)
		}
	}
	points := 1
	for _, ax := range s.Axes {
		points *= len(ax.Values)
		if points > maxSweepConfigs {
			return fmt.Errorf("sweep: tech grid exceeds %d points", maxSweepConfigs)
		}
	}
	total := points * len(s.Constraints) * len(s.Geometries)
	if total > maxSweepConfigs {
		return fmt.Errorf("sweep: %d configs exceed the %d-config planner cap", total, maxSweepConfigs)
	}
	return nil
}

// SweepConfig is one fully resolved point of the design space: a
// geometry, a concrete technology (Base with the axis point applied)
// and a constraint set. Index is the config's dense position in spec
// enumeration order (geometry-major, then tech grid row-major, then
// constraints) — results are always reported in Index order, whatever
// order the planner evaluates in.
type SweepConfig struct {
	Index       int                `json:"index"`
	Geometry    sram.Geometry      `json:"geometry"`
	Tech        circuit.Tech       `json:"tech"`
	Point       map[string]float64 `json:"point,omitempty"`
	Constraints Constraints        `json:"constraints"`
}

// Label renders a short human-readable config identity ("vdd=1.08
// k=1,m=3") for logs and progress events.
func (c SweepConfig) Label() string {
	parts := make([]string, 0, len(c.Point)+1)
	keys := make([]string, 0, len(c.Point))
	for k := range c.Point {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%g", k, c.Point[k]))
	}
	parts = append(parts, c.Constraints.Name)
	return strings.Join(parts, " ")
}

// SweepUnit is one population build: a distinct technology within a
// cluster, the measurement parts its diff against the cluster base
// touches, and the configs (by Index) that share its populations.
// Deduplication means a unit's populations are built once however many
// constraint sets read them.
type SweepUnit struct {
	Tech    circuit.Tech
	Point   map[string]float64
	Parts   sram.TechParts
	Configs []int
}

// SweepCluster groups the units that share one DeltaBuilder: all tech
// grid points of one geometry, delta-evaluated against Base (the grid
// origin — every axis at its first value), whose full build doubles as
// the origin unit's populations.
type SweepCluster struct {
	Geometry sram.Geometry
	Base     circuit.Tech
	Units    []SweepUnit
}

// SweepStats summarises how much work a plan avoids relative to naive
// per-config full rebuilds.
type SweepStats struct {
	// Configs is the total number of evaluated design points.
	Configs int `json:"configs"`
	// FullBuilds is the number of from-scratch sampled builds (one per
	// cluster: the DeltaBuilder base).
	FullBuilds int `json:"full_builds"`
	// CopyBuilds is the number of units whose tech diff touches nothing
	// (populations copied from the base, no kernel work).
	CopyBuilds int `json:"copy_builds"`
	// DeltaBuilds is the number of units re-evaluated from retained
	// draws (sampling skipped; only the diffed parts recomputed).
	DeltaBuilds int `json:"delta_builds"`
	// SharedEvals is the number of configs that reuse another config's
	// populations outright (constraint sets sharing a unit).
	SharedEvals int `json:"shared_evals"`
}

// SweepPlan is a planned sweep: the resolved spec, the dense config
// list in spec order, and the cluster/unit evaluation structure that
// maximises draw reuse.
type SweepPlan struct {
	Spec     SweepSpec
	Configs  []SweepConfig
	Clusters []SweepCluster
}

// Stats reports the plan's reuse structure.
func (p *SweepPlan) Stats() SweepStats {
	st := SweepStats{Configs: len(p.Configs), FullBuilds: len(p.Clusters)}
	units := 0
	for _, cl := range p.Clusters {
		units += len(cl.Units)
		for _, u := range cl.Units {
			if u.Parts.Any() {
				st.DeltaBuilds++
			} else {
				st.CopyBuilds++
			}
		}
	}
	st.SharedEvals = len(p.Configs) - units
	return st
}

// PlanSweep validates spec, fills its defaults and plans the
// evaluation order:
//
//   - one cluster per geometry, its DeltaBuilder based at the grid
//     origin (every axis at its first value), so the base build is
//     itself a swept config rather than throwaway work;
//   - one unit per distinct technology (identical grid points
//     deduplicate: draws are sampled once per cluster and every unit
//     reuses them);
//   - every constraint set of a unit shares its populations — the
//     cheapest reuse of all, zero kernel work per extra config;
//   - units ordered cheapest-delta-first (copy, leak-rescale,
//     single-sided re-eval, both-sided re-eval), so early results
//     stream out at minimum cost and same-shape deltas run
//     back-to-back.
//
// Every evaluated population is bit-identical to a full
// BuildPopulationPair at that config (the DeltaBuilder guarantee), so
// a sweep's numbers never differ from one-off studies of the same
// seed.
func PlanSweep(spec SweepSpec) (*SweepPlan, error) {
	spec.fill()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	plan := &SweepPlan{Spec: spec}

	// Enumerate the tech grid once, row-major (axis 0 slowest), as
	// (tech, point) pairs shared by every geometry cluster.
	type gridPoint struct {
		tech  circuit.Tech
		point map[string]float64
	}
	points := []gridPoint{{tech: *spec.Base}}
	for _, ax := range spec.Axes {
		next := make([]gridPoint, 0, len(points)*len(ax.Values))
		for _, p := range points {
			for _, v := range ax.Values {
				t := p.tech
				if err := SetTechParam(&t, ax.Param, v); err != nil {
					return nil, err
				}
				np := make(map[string]float64, len(p.point)+1)
				for k, pv := range p.point {
					np[k] = pv
				}
				np[ax.Param] = v
				next = append(next, gridPoint{tech: t, point: np})
			}
		}
		points = next
	}

	for _, geom := range spec.Geometries {
		cl := SweepCluster{Geometry: geom, Base: points[0].tech}
		byTech := make(map[circuit.Tech]int, len(points))
		for _, p := range points {
			ui, ok := byTech[p.tech]
			if !ok {
				ui = len(cl.Units)
				byTech[p.tech] = ui
				cl.Units = append(cl.Units, SweepUnit{
					Tech:  p.tech,
					Point: p.point,
					Parts: sram.DiffTech(cl.Base, p.tech),
				})
			}
			for _, cons := range spec.Constraints {
				idx := len(plan.Configs)
				plan.Configs = append(plan.Configs, SweepConfig{
					Index:       idx,
					Geometry:    geom,
					Tech:        p.tech,
					Point:       p.point,
					Constraints: cons,
				})
				cl.Units[ui].Configs = append(cl.Units[ui].Configs, idx)
			}
		}
		sort.SliceStable(cl.Units, func(a, b int) bool {
			return deltaClass(cl.Units[a].Parts) < deltaClass(cl.Units[b].Parts)
		})
		plan.Clusters = append(plan.Clusters, cl)
	}
	return plan, nil
}

// deltaClass ranks a tech diff by how much of the measurement kernel
// it re-runs: 0 copies, 1 rescales cached leakage aggregates, 2
// re-evaluates one side (delay or leakage), 3 re-evaluates both.
func deltaClass(p sram.TechParts) int {
	switch {
	case !p.Any():
		return 0
	case !p.Delay && !p.LeakFactors:
		return 1
	case p.Delay != p.LeakFactors:
		return 2
	default:
		return 3
	}
}

// SchemeYield is one scheme's outcome at one sweep config.
type SchemeYield struct {
	Scheme string  `json:"scheme"`
	Yield  float64 `json:"yield"`
	Lost   int     `json:"lost"`
}

// SweepEval is the evaluation of one sweep config on the regular cache
// organisation: the derived limits, the population's mean performance
// and leakage, and the base plus per-scheme yields.
type SweepEval struct {
	Config SweepConfig `json:"config"`
	Limits Limits      `json:"limits"`
	// MeanLatencyPS and MeanLeakageW are population means — the
	// performance and power axes of the Pareto reduction.
	MeanLatencyPS float64 `json:"mean_latency_ps"`
	MeanLeakageW  float64 `json:"mean_leakage_w"`
	// BaseYield is the yield-unaware sellable fraction; BaseLost the
	// chips it loses.
	BaseYield float64 `json:"base_yield"`
	BaseLost  int     `json:"base_lost"`
	// Yields are the per-scheme outcomes, in option scheme order.
	Yields []SchemeYield `json:"yields"`
	// Skipped marks configs the Skip hook short-circuited (resume);
	// their other fields are zero and the caller overlays stored
	// results.
	Skipped bool `json:"skipped,omitempty"`
}

// SweepRunOptions tune RunSweep.
type SweepRunOptions struct {
	// Schemes evaluated per config; nil means YAPD, VACA, Hybrid.
	Schemes []Scheme
	// Parallel is the number of geometry clusters evaluated
	// concurrently; 0 or 1 is sequential. Results are independent of it.
	Parallel int
	// Skip short-circuits a config by Index (crash resume): return true
	// and the config is not evaluated — its eval comes back zero-valued
	// with Skipped set.
	Skip func(configIndex int) bool
	// OnEval observes each completed evaluation with running done/total
	// counts. It may be called from multiple goroutines when Parallel >
	// 1; done counts are monotonic but interleaved.
	OnEval func(ev SweepEval, done, total int)
}

// DefaultSweepSchemes is the scheme set sweeps evaluate when none is
// given: the paper's YAPD, VACA and (vertical) Hybrid.
func DefaultSweepSchemes() []Scheme {
	return []Scheme{YAPD{}, VACA{}, Hybrid{}}
}

// RunSweep executes a plan: per cluster it builds the DeltaBuilder
// base once, delta-builds each unit's population pair from the
// retained draws, and evaluates every config sharing those
// populations. Evaluations are returned densely indexed by
// SweepConfig.Index — spec order, independent of Parallel and of the
// planner's cheapest-first evaluation order. Cancellation is polled
// between batches inside builds and between configs outside them; the
// first error cancels the remaining clusters. When ctx carries an
// obs.Scope, its progress counter runs in configs (not chips).
func RunSweep(ctx context.Context, plan *SweepPlan, opt SweepRunOptions) ([]SweepEval, error) {
	schemes := opt.Schemes
	if schemes == nil {
		schemes = DefaultSweepSchemes()
	}
	total := len(plan.Configs)
	scope := obs.ScopeFrom(ctx)
	scope.SetProgressTotal(int64(total))

	evals := make([]SweepEval, total)
	var done atomic.Int64
	skipped := 0
	for _, cfg := range plan.Configs {
		if opt.Skip != nil && opt.Skip(cfg.Index) {
			evals[cfg.Index] = SweepEval{Config: cfg, Skipped: true}
			skipped++
		}
	}
	if skipped > 0 {
		done.Store(int64(skipped))
		scope.AddProgress(int64(skipped))
		obs.C("core_sweep_configs_skipped_total").Add(int64(skipped))
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	par := opt.Parallel
	if par < 1 {
		par = 1
	}
	if par > len(plan.Clusters) {
		par = len(plan.Clusters)
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	sem := make(chan struct{}, par)
	for ci := range plan.Clusters {
		cl := &plan.Clusters[ci]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if err := runCluster(ctx, plan, cl, schemes, evals, &done, total, opt.OnEval); err != nil {
				fail(err)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	obs.C("core_sweep_configs_total").Add(int64(total - skipped))
	return evals, nil
}

// runCluster evaluates one geometry cluster: base build, then units in
// planned order, skipping any unit whose configs were all resumed.
func runCluster(ctx context.Context, plan *SweepPlan, cl *SweepCluster, schemes []Scheme,
	evals []SweepEval, done *atomic.Int64, total int, onEval func(SweepEval, int, int)) error {
	needed := func(u *SweepUnit) bool {
		for _, idx := range u.Configs {
			if !evals[idx].Skipped {
				return true
			}
		}
		return false
	}
	any := false
	for i := range cl.Units {
		if needed(&cl.Units[i]) {
			any = true
			break
		}
	}
	if !any {
		return nil
	}

	sp := obs.StartSpanCtx(ctx, "sweep_cluster")
	defer sp.End()
	db, err := NewDeltaBuilderCtx(ctx, PopulationConfig{
		N:    plan.Spec.N,
		Seed: plan.Spec.Seed,
		Tech: &cl.Base,
		Geom: &cl.Geometry,
	})
	if err != nil {
		return err
	}
	obs.C("core_sweep_base_builds_total").Inc()

	for ui := range cl.Units {
		u := &cl.Units[ui]
		if !needed(u) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		usp := obs.StartSpanCtx(ctx, "sweep_unit")
		reg, _, err := db.BuildPairCtx(ctx, u.Tech)
		if err != nil {
			usp.End()
			return err
		}
		if u.Parts.Any() {
			obs.C("core_sweep_delta_builds_total").Inc()
		} else {
			obs.C("core_sweep_copy_builds_total").Inc()
		}
		for _, idx := range u.Configs {
			if evals[idx].Skipped {
				continue
			}
			if err := ctx.Err(); err != nil {
				usp.End()
				return err
			}
			ev := evalSweepConfig(plan.Configs[idx], reg, schemes)
			evals[idx] = ev
			d := int(done.Add(1))
			obs.ScopeFrom(ctx).AddProgress(1)
			if onEval != nil {
				onEval(ev, d, total)
			}
		}
		usp.End()
	}
	return nil
}

// evalSweepConfig derives limits from the population itself (each
// config is its own reference, exactly as a standalone study would)
// and evaluates base plus scheme yields and the population means.
func evalSweepConfig(cfg SweepConfig, reg *Population, schemes []Scheme) SweepEval {
	lim := DeriveLimits(reg, cfg.Constraints)
	bd := BreakdownLosses(reg, lim, schemes...)
	ev := SweepEval{
		Config:    cfg,
		Limits:    lim,
		BaseYield: bd.Yield(-1),
		BaseLost:  bd.BaseTotal,
		Yields:    make([]SchemeYield, len(schemes)),
	}
	for i := range schemes {
		ev.Yields[i] = SchemeYield{
			Scheme: bd.Schemes[i].Scheme,
			Yield:  bd.Yield(i),
			Lost:   bd.Schemes[i].Total,
		}
	}
	lats, leaks := reg.Latencies(), reg.Leakages()
	var sumLat, sumLeak float64
	for i := range lats {
		sumLat += lats[i]
		sumLeak += leaks[i]
	}
	if n := float64(len(lats)); n > 0 {
		ev.MeanLatencyPS = sumLat / n
		ev.MeanLeakageW = sumLeak / n
	}
	return ev
}

// ParetoPoint is one candidate of a frontier reduction: yield is
// maximised, latency and leakage are minimised.
type ParetoPoint struct {
	Yield     float64
	LatencyPS float64
	LeakageW  float64
}

// dominates reports whether a is at least as good as b on every axis
// and strictly better on at least one.
func (a ParetoPoint) dominates(b ParetoPoint) bool {
	if a.Yield < b.Yield || a.LatencyPS > b.LatencyPS || a.LeakageW > b.LeakageW {
		return false
	}
	return a.Yield > b.Yield || a.LatencyPS < b.LatencyPS || a.LeakageW < b.LeakageW
}

// ParetoFrontier returns the indices of the non-dominated points, in
// ascending index order. Exactly equal points do not dominate each
// other, so ties all stay on the frontier — the reduction is
// deterministic and order-independent.
func ParetoFrontier(pts []ParetoPoint) []int {
	var out []int
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i != j && q.dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// SweepFrontiers reduces a complete evaluation set into one Pareto
// frontier per scheme (plus "Base"): the config indices whose (yield,
// mean latency, mean leakage) triple no other config dominates under
// that scheme. Evals must be the dense RunSweep result with no skipped
// entries remaining.
func SweepFrontiers(evals []SweepEval) map[string][]int {
	if len(evals) == 0 {
		return map[string][]int{}
	}
	names := []string{"Base"}
	for _, y := range evals[0].Yields {
		names = append(names, y.Scheme)
	}
	out := make(map[string][]int, len(names))
	pts := make([]ParetoPoint, len(evals))
	for ni, name := range names {
		for i, ev := range evals {
			y := ev.BaseYield
			if ni > 0 {
				y = ev.Yields[ni-1].Yield
			}
			pts[i] = ParetoPoint{Yield: y, LatencyPS: ev.MeanLatencyPS, LeakageW: ev.MeanLeakageW}
		}
		out[name] = ParetoFrontier(pts)
	}
	return out
}
