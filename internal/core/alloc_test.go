package core

import (
	"runtime/debug"
	"testing"
	"time"
)

// TestPairBuildAllocBudget pins the steady-state allocation budget of
// the pair builder: at most 28 allocations per build regardless of N
// (the per-chip hot loop is allocation-free; what remains is per-build
// setup — models, arenas, sampler, evaluator shell), and arming the
// checkpointer may add at most 2 more (its struct and frontier).
//
// GC is disabled for the measurement because the kernel's pooled
// buffers live in a sync.Pool, which a collection may clear; the
// budget is about what the code allocates, not about GC timing.
func TestPairBuildAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget is pinned by the non-race run")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	cfg := PopulationConfig{N: 200, Seed: 1, Workers: 1}
	BuildPopulationPair(cfg) // warm the kernel buffer pool
	plain := testing.AllocsPerRun(10, func() { BuildPopulationPair(cfg) })
	if plain > 28 {
		t.Errorf("pair build allocates %.1f times per run, budget is 28", plain)
	}

	ck := cfg
	ck.Checkpoint = &CheckpointConfig{
		Interval: time.Millisecond,
		Sink:     func(*BuildCheckpoint) error { return nil },
	}
	BuildPopulationPair(ck)
	withCk := testing.AllocsPerRun(10, func() { BuildPopulationPair(ck) })
	if withCk > plain+2 {
		t.Errorf("checkpointed pair build allocates %.1f times per run, plain is %.1f: checkpointing may add at most 2",
			withCk, plain)
	}
}
