package core

import (
	"sort"

	"yieldcache/internal/obs"
)

// SchemeLosses is one scheme's column in Tables 2/3: how many chips of
// each base-case loss category remain lost under the scheme.
type SchemeLosses struct {
	Scheme   string
	ByReason map[LossReason]int
	Total    int
}

// LossBreakdown is the full content of Table 2 (regular power-down) or
// Table 3 (horizontal power-down): the base-case loss counts by reason
// and, for each scheme, the losses that remain.
type LossBreakdown struct {
	N         int // population size
	Base      map[LossReason]int
	BaseTotal int
	Schemes   []SchemeLosses
}

// BreakdownLosses classifies every chip of the population under the
// given limits and applies each scheme to the failing ones.
func BreakdownLosses(pop *Population, lim Limits, schemes ...Scheme) LossBreakdown {
	sp := obs.StartSpan("breakdown_losses")
	defer sp.End()
	bd := LossBreakdown{
		N:    len(pop.Chips),
		Base: make(map[LossReason]int),
	}
	for _, s := range schemes {
		bd.Schemes = append(bd.Schemes, SchemeLosses{
			Scheme:   s.Name(),
			ByReason: make(map[LossReason]int),
		})
	}
	for _, chip := range pop.Chips {
		reason := Classify(chip.Meas, lim)
		if reason == LossNone {
			continue
		}
		bd.Base[reason]++
		bd.BaseTotal++
		for i, s := range schemes {
			if out := s.Apply(chip.Meas, lim); !out.Saved {
				bd.Schemes[i].ByReason[reason]++
				bd.Schemes[i].Total++
			}
		}
	}
	obs.C("core_chips_classified_total").Add(int64(bd.N))
	obs.C("core_chips_lost_base_total").Add(int64(bd.BaseTotal))
	for _, s := range bd.Schemes {
		obs.C(`core_scheme_saved_total{scheme="` + s.Scheme + `"}`).
			Add(int64(bd.BaseTotal - s.Total))
		obs.C(`core_scheme_lost_total{scheme="` + s.Scheme + `"}`).
			Add(int64(s.Total))
	}
	return bd
}

// Yield returns the fraction of sellable chips for the scheme at column
// index i (the base case for i < 0).
func (bd LossBreakdown) Yield(i int) float64 {
	lost := bd.BaseTotal
	if i >= 0 {
		lost = bd.Schemes[i].Total
	}
	return 1 - float64(lost)/float64(bd.N)
}

// LossReduction returns the fractional reduction in parametric yield
// loss achieved by scheme column i relative to the base case (the
// "yield losses can be reduced by 68.1%..." numbers of the abstract).
func (bd LossBreakdown) LossReduction(i int) float64 {
	if bd.BaseTotal == 0 {
		return 0
	}
	return 1 - float64(bd.Schemes[i].Total)/float64(bd.BaseTotal)
}

// ConfigKey identifies a cache-way latency configuration by how many
// ways need 4, 5 and 6-or-more cycles — the row labels of Table 6.
// Leakage-limited chips that meet timing appear as {4, 0, 0}.
type ConfigKey struct {
	N4, N5, N6 int
}

// SavedConfig is one row of Table 6: a configuration, how many saved
// chips exhibit it, and which schemes can save it.
type SavedConfig struct {
	Key   ConfigKey
	Chips int
	// LeakageLimited reports whether the chips behind this row failed the
	// leakage constraint (relevant for the {4,0,0} row).
	LeakageLimited bool
}

// SavedConfigurations tabulates, over chips that fail the base test but
// are saved by the union scheme (the Hybrid — every chip any scheme can
// save, the Hybrid saves too), the original way-latency configuration.
// Rows are keyed by (N4, N5, N6) and split on leakage-limited, mirroring
// Table 6 where 4-0-0 denotes leakage-limited chips.
func SavedConfigurations(pop *Population, lim Limits, union Scheme) []SavedConfig {
	type rk struct {
		key  ConfigKey
		leak bool
	}
	counts := make(map[rk]int)
	for _, chip := range pop.Chips {
		reason := Classify(chip.Meas, lim)
		if reason == LossNone {
			continue
		}
		out := union.Apply(chip.Meas, lim)
		if !out.Saved {
			continue
		}
		cycles := wayCycles(chip.Meas, lim)
		var key ConfigKey
		for _, cy := range cycles {
			switch {
			case cy <= BaseCycles:
				key.N4++
			case cy == BaseCycles+1:
				key.N5++
			default:
				key.N6++
			}
		}
		counts[rk{key, reason == LossLeakage}]++
	}
	rows := make([]SavedConfig, 0, len(counts))
	for k, n := range counts {
		rows = append(rows, SavedConfig{Key: k.key, Chips: n, LeakageLimited: k.leak})
	}
	sort.Slice(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		if ra.Key.N6 != rb.Key.N6 {
			return ra.Key.N6 < rb.Key.N6
		}
		if ra.Key.N5 != rb.Key.N5 {
			return ra.Key.N5 < rb.Key.N5
		}
		if ra.LeakageLimited != rb.LeakageLimited {
			return !ra.LeakageLimited
		}
		return ra.Key.N4 > rb.Key.N4
	})
	return rows
}

// ConstraintTotals is one row of Tables 4/5: the base-case loss count
// and per-scheme remaining losses under one constraint set.
type ConstraintTotals struct {
	Constraint Constraints
	Base       int
	Schemes    []SchemeLosses
}

// TotalsUnderConstraints evaluates the population under several
// constraint sets (Tables 4 and 5 use relaxed and strict). Limits are
// always derived from the reference population ref (the regular
// organisation), while losses are counted on pop.
func TotalsUnderConstraints(pop, ref *Population, cs []Constraints, schemes ...Scheme) []ConstraintTotals {
	out := make([]ConstraintTotals, 0, len(cs))
	for _, c := range cs {
		lim := DeriveLimits(ref, c)
		bd := BreakdownLosses(pop, lim, schemes...)
		row := ConstraintTotals{Constraint: c, Base: bd.BaseTotal}
		for _, s := range bd.Schemes {
			row.Schemes = append(row.Schemes, SchemeLosses{Scheme: s.Scheme, Total: s.Total})
		}
		out = append(out, row)
	}
	return out
}
