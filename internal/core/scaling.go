package core

import (
	"fmt"

	"yieldcache/internal/circuit"
	"yieldcache/internal/variation"
)

// NodeYield is one row of the model-generated Figure 1 trend: the
// parametric yield of the cache at one technology node, without and
// with the yield-aware schemes.
type NodeYield struct {
	NodeNM      int
	BaseYield   float64
	YAPDYield   float64
	HybridYield float64
	LeakageLoss int // base-case chips lost to the leakage constraint
	DelayLoss   int // base-case chips lost to delay constraints
}

// YieldTrend evaluates the parametric yield across technology nodes —
// the modelled counterpart of Figure 1's parametric component. Each
// node gets its own population (same seed, node-scaled process spec and
// technology constants) and its own nominal limits; the growing
// relative variation at smaller nodes fattens both distribution tails,
// so the base parametric yield falls with scaling while the schemes
// recover a growing share.
func YieldTrend(chips int, seed int64) ([]NodeYield, error) {
	var out []NodeYield
	for _, node := range variation.Nodes() {
		spec, err := variation.SpecAt(node)
		if err != nil {
			return nil, err
		}
		tech, err := circuit.TechAt(int(node))
		if err != nil {
			return nil, err
		}
		pop := BuildPopulation(PopulationConfig{
			N: chips, Seed: seed, Tech: &tech, Spec: &spec,
		})
		lim := DeriveLimits(pop, Nominal())
		bd := BreakdownLosses(pop, lim, YAPD{}, Hybrid{})
		row := NodeYield{
			NodeNM:      int(node),
			BaseYield:   bd.Yield(-1),
			YAPDYield:   bd.Yield(0),
			HybridYield: bd.Yield(1),
			LeakageLoss: bd.Base[LossLeakage],
		}
		for _, r := range []LossReason{LossDelay1, LossDelay2, LossDelay3, LossDelay4} {
			row.DelayLoss += bd.Base[r]
		}
		out = append(out, row)
	}
	return out, nil
}

// String formats one trend row.
func (n NodeYield) String() string {
	return fmt.Sprintf("%2d nm: base %.1f%%, YAPD %.1f%%, Hybrid %.1f%% (leak %d, delay %d)",
		n.NodeNM, n.BaseYield*100, n.YAPDYield*100, n.HybridYield*100, n.LeakageLoss, n.DelayLoss)
}
