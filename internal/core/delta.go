package core

import (
	"context"
	"sync/atomic"

	"yieldcache/internal/circuit"
	"yieldcache/internal/sram"
	"yieldcache/internal/variation"
)

// DeltaBuilder makes dense technology sweeps nearly free by sharing
// one set of variation draws (common random numbers) across every
// sweep point. It builds the base population pair once, retaining each
// batch's DrawSet and leakage aggregates; BuildPair then re-evaluates
// only the measurement parts the technology diff touches:
//
//   - sampling never reruns — the retained draws are reused verbatim,
//     which is also what makes adjacent grid points directly
//     comparable (no Monte Carlo noise between them);
//   - a diff confined to leakage scaling (CellLeakage,
//     PeripheryLeakFrac) rescales cached aggregates without touching
//     draws at all;
//   - a diff confined to the leakage exponential (SubVtSlope)
//     recomputes leakage columns and copies the delay side, and vice
//     versa for delay-only diffs (Alpha, CouplingFrac, DiffusionFrac,
//     sense-margin shape);
//   - parameters entering both (Vdd, VtNominal, DIBL) re-evaluate both
//     halves, still skipping sampling.
//
// Every BuildPair result is bit-identical to a full
// BuildPopulationPair of the same configuration at the new technology:
// the kernel preserves draw and accumulation order, and cached
// aggregates are the exact floats a full build computes.
//
// The retained draws cost about 7.7 KB per chip (N=2000 ≈ 15 MB), so
// the builder is an opt-in for sweep-shaped workloads rather than the
// default build path. Chips are evaluated in fixed sequential batches
// of sram.BatchWidth, so results are independent of any worker
// configuration; a DeltaBuilder is not safe for concurrent use.
type DeltaBuilder struct {
	cfg      PopulationConfig
	baseTech circuit.Tech
	geom     sram.Geometry
	sampler  *variation.Sampler
	draws    []*sram.DrawSet
	leaks    []*sram.LeakState
	baseReg  *Population
	baseHor  *Population
}

// NewDeltaBuilder builds the base population pair for cfg (cfg.Workers
// and cfg.Checkpoint are ignored; the build is sequential) and retains
// the per-batch draws and leakage aggregates for delta re-evaluation.
func NewDeltaBuilder(cfg PopulationConfig) *DeltaBuilder {
	d, _ := NewDeltaBuilderCtx(context.Background(), cfg)
	return d
}

// NewDeltaBuilderCtx is NewDeltaBuilder with cancellation: the base
// build polls ctx once per sram.BatchWidth-chip batch and returns
// ctx.Err() early when it fires, so a sweep job can abandon a large
// base build the moment its request is cancelled.
func NewDeltaBuilderCtx(ctx context.Context, cfg PopulationConfig) (*DeltaBuilder, error) {
	cfg.fill()
	regModel := newModelWithGeom(*cfg.Tech, false, cfg.Geom)
	sampler := variation.NewSampler(*cfg.Spec, *cfg.Fact, cfg.Seed)
	geom := regModel.Geom
	d := &DeltaBuilder{
		cfg:      cfg,
		baseTech: *cfg.Tech,
		geom:     geom,
		sampler:  sampler,
	}

	cancelled, stopWatch := watchCancel(ctx)
	defer stopWatch()

	ev := regModel.NewEvaluator(sampler.NewScratch())
	defer ev.Release()
	regChips := newChipArena(cfg.N, geom, cancelled)
	horChips := newChipArena(cfg.N, geom, cancelled)

	nBatches := (cfg.N + sram.BatchWidth - 1) / sram.BatchWidth
	d.draws = make([]*sram.DrawSet, nBatches)
	d.leaks = make([]*sram.LeakState, nBatches)
	var ids [sram.BatchWidth]int
	var regV, horV [sram.BatchWidth]*sram.CacheMeasurement
	for k := 0; k < nBatches; k++ {
		if cancelled.Load() {
			return nil, ctx.Err()
		}
		lo := k * sram.BatchWidth
		bn := min(sram.BatchWidth, cfg.N-lo)
		for j := 0; j < bn; j++ {
			ids[j] = lo + j
			regV[j] = &regChips[lo+j].Meas
			horV[j] = &horChips[lo+j].Meas
		}
		ds := new(sram.DrawSet)
		ls := new(sram.LeakState)
		ev.Sample(ids[:bn], ds)
		ev.EvalPair(ds, regV[:bn], horV[:bn], ls)
		d.draws[k] = ds
		d.leaks[k] = ls
	}
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	d.baseReg = &Population{Chips: regChips, Model: regModel, Seed: cfg.Seed}
	d.baseHor = &Population{Chips: horChips, Model: newModelWithGeom(*cfg.Tech, true, cfg.Geom), Seed: cfg.Seed}
	return d, nil
}

// watchCancel translates ctx cancellation into an atomic flag the batch
// loops can poll without touching the context. The returned stop func
// must be called to release the watcher goroutine; with no Done channel
// the flag is a shared never-set atomic and stop is a no-op.
func watchCancel(ctx context.Context) (*atomic.Bool, func()) {
	done := ctx.Done()
	if done == nil {
		return &neverCancelled, func() {}
	}
	var flag atomic.Bool
	stop := make(chan struct{})
	go func() {
		select {
		case <-done:
			flag.Store(true)
		case <-stop:
		}
	}()
	return &flag, func() { close(stop) }
}

var neverCancelled atomic.Bool

// Base returns the base-technology population pair the builder was
// constructed from.
func (d *DeltaBuilder) Base() (regular, horizontal *Population) {
	return d.baseReg, d.baseHor
}

// Parts returns the measurement parts a sweep to tech would
// re-evaluate, for callers that want to inspect sweep cost up front.
func (d *DeltaBuilder) Parts(tech circuit.Tech) sram.TechParts {
	return sram.DiffTech(d.baseTech, tech)
}

// BuildPair evaluates the retained chip draws under tech, reusing
// everything the technology diff against the base does not touch. The
// result is bit-identical to BuildPopulationPair of the builder's
// configuration with Tech set to tech.
func (d *DeltaBuilder) BuildPair(tech circuit.Tech) (regular, horizontal *Population) {
	regular, horizontal, _ = d.BuildPairCtx(context.Background(), tech)
	return regular, horizontal
}

// BuildPairCtx is BuildPair with cancellation, polled once per batch
// like NewDeltaBuilderCtx. On cancellation it returns ctx.Err() and nil
// populations; the builder itself stays valid for further calls.
func (d *DeltaBuilder) BuildPairCtx(ctx context.Context, tech circuit.Tech) (regular, horizontal *Population, err error) {
	parts := sram.DiffTech(d.baseTech, tech)
	regModel := newModelWithGeom(tech, false, &d.geom)
	cancelled, stopWatch := watchCancel(ctx)
	defer stopWatch()
	regChips := newChipArena(d.cfg.N, d.geom, cancelled)
	horChips := newChipArena(d.cfg.N, d.geom, cancelled)

	if !parts.Any() {
		for i := range regChips {
			if i&4095 == 0 && cancelled.Load() {
				return nil, nil, ctx.Err()
			}
			copyMeasInto(&regChips[i].Meas, &d.baseReg.Chips[i].Meas)
			copyMeasInto(&horChips[i].Meas, &d.baseHor.Chips[i].Meas)
		}
	} else {
		ev := regModel.NewEvaluator(d.sampler.NewScratch())
		defer ev.Release()
		var regV, horV, baseV [sram.BatchWidth]*sram.CacheMeasurement
		for k, ds := range d.draws {
			if cancelled.Load() {
				return nil, nil, ctx.Err()
			}
			lo := k * sram.BatchWidth
			bn := ds.Len()
			for j := 0; j < bn; j++ {
				regV[j] = &regChips[lo+j].Meas
				horV[j] = &horChips[lo+j].Meas
				baseV[j] = &d.baseReg.Chips[lo+j].Meas
			}
			ev.EvalPairDelta(ds, parts, baseV[:bn], d.leaks[k], regV[:bn], horV[:bn])
		}
	}
	if cancelled.Load() {
		return nil, nil, ctx.Err()
	}
	regular = &Population{Chips: regChips, Model: regModel, Seed: d.cfg.Seed}
	horizontal = &Population{Chips: horChips, Model: newModelWithGeom(tech, true, &d.geom), Seed: d.cfg.Seed}
	return regular, horizontal, nil
}
