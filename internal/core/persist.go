package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"yieldcache/internal/circuit"
	"yieldcache/internal/sram"
)

// populationFile is the on-disk form of a population: everything needed
// to reload it and keep analysing without re-running the Monte Carlo.
type populationFile struct {
	Version int
	Seed    int64
	HYAPD   bool
	Tech    circuit.Tech
	Geom    sram.Geometry
	Chips   []Chip
}

const persistVersion = 1

// Save serialises the population (gob-encoded) so that expensive
// Monte Carlo runs can be cached on disk and shared between tools.
func (p *Population) Save(w io.Writer) error {
	f := populationFile{
		Version: persistVersion,
		Seed:    p.Seed,
		HYAPD:   p.Model.HYAPD,
		Tech:    p.Model.Tech,
		Geom:    p.Model.Geom,
		Chips:   p.Chips,
	}
	if err := gob.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("core: encoding population: %w", err)
	}
	return nil
}

// ReadPopulation reloads a population written by Save.
func ReadPopulation(r io.Reader) (*Population, error) {
	var f populationFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding population: %w", err)
	}
	if f.Version != persistVersion {
		return nil, fmt.Errorf("core: population file version %d, want %d", f.Version, persistVersion)
	}
	if len(f.Chips) == 0 {
		return nil, fmt.Errorf("core: population file holds no chips")
	}
	model := &sram.Model{Tech: f.Tech, Geom: f.Geom, HYAPD: f.HYAPD}
	return &Population{Chips: f.Chips, Model: model, Seed: f.Seed}, nil
}
