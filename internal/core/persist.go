package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"yieldcache/internal/circuit"
	"yieldcache/internal/sram"
)

// The persisted-file framing shared by population snapshots and build
// checkpoints: a 5-byte magic identifying the kind, one format-version
// byte, the payload length and its CRC32-C, then the gob payload. The
// header lets a truncated, corrupt or foreign file fail with a
// descriptive error before gob ever sees it.
const (
	populationMagic = "YCPOP"
	checkpointMagic = "YCCKP"
	persistVersion  = 2
)

var persistCRC = crc32.MakeTable(crc32.Castagnoli)

// writeFramed writes one framed payload: magic, version, uint32 length,
// uint32 CRC32-C, payload (little-endian).
func writeFramed(w io.Writer, magic string, payload []byte) error {
	var hdr [14]byte
	copy(hdr[:5], magic)
	hdr[5] = persistVersion
	binary.LittleEndian.PutUint32(hdr[6:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[10:], crc32.Checksum(payload, persistCRC))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("core: writing %s header: %w", magic, err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("core: writing %s payload: %w", magic, err)
	}
	return nil
}

// readFramed reads and verifies one framed payload written by
// writeFramed, with errors that name what went wrong: wrong magic,
// unsupported version, truncation, or checksum mismatch.
func readFramed(r io.Reader, magic, kind string) ([]byte, error) {
	var hdr [14]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: %s file truncated in header: %w", kind, err)
	}
	if string(hdr[:5]) != magic {
		return nil, fmt.Errorf("core: not a %s file (magic %q, want %q)", kind, hdr[:5], magic)
	}
	if hdr[5] != persistVersion {
		return nil, fmt.Errorf("core: %s file format version %d, want %d", kind, hdr[5], persistVersion)
	}
	n := binary.LittleEndian.Uint32(hdr[6:])
	sum := binary.LittleEndian.Uint32(hdr[10:])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("core: %s file truncated: %d-byte payload unreadable: %w", kind, n, err)
	}
	if got := crc32.Checksum(payload, persistCRC); got != sum {
		return nil, fmt.Errorf("core: %s file corrupt: payload checksum %08x, want %08x", kind, got, sum)
	}
	return payload, nil
}

// populationFile is the on-disk form of a population: everything needed
// to reload it and keep analysing without re-running the Monte Carlo.
type populationFile struct {
	Seed  int64
	HYAPD bool
	Tech  circuit.Tech
	Geom  sram.Geometry
	Chips []Chip
}

// Save serialises the population — a magic/version/checksum header
// followed by the gob payload — so that expensive Monte Carlo runs can
// be cached on disk and shared between tools. A snapshot truncated or
// corrupted after the fact is detected on read by its checksum.
func (p *Population) Save(w io.Writer) error {
	f := populationFile{
		Seed:  p.Seed,
		HYAPD: p.Model.HYAPD,
		Tech:  p.Model.Tech,
		Geom:  p.Model.Geom,
		Chips: p.Chips,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("core: encoding population: %w", err)
	}
	return writeFramed(w, populationMagic, buf.Bytes())
}

// ReadPopulation reloads a population written by Save, verifying the
// header and payload checksum before decoding.
func ReadPopulation(r io.Reader) (*Population, error) {
	payload, err := readFramed(r, populationMagic, "population")
	if err != nil {
		return nil, err
	}
	var f populationFile
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding population: %w", err)
	}
	if len(f.Chips) == 0 {
		return nil, fmt.Errorf("core: population file holds no chips")
	}
	model := &sram.Model{Tech: f.Tech, Geom: f.Geom, HYAPD: f.HYAPD}
	return &Population{Chips: f.Chips, Model: model, Seed: f.Seed}, nil
}

// BuildCheckpoint is a consistent prefix of an interrupted pair build:
// every chip below Done measured for both organisations, plus the
// parameters needed to validate that a resume really continues the
// same build. Chip i is a pure function of (Seed, i) — the O(1)
// seed-jump — so Done alone locates the resume point; no sampler state
// is saved.
type BuildCheckpoint struct {
	// Seed and N identify the build; Pair records that both cache
	// organisations were measured (the only checkpointed mode).
	Seed int64
	N    int
	Done int
	Pair bool
	// Tech and Geom guard against resuming under a different model.
	Tech circuit.Tech
	Geom sram.Geometry
	// Regular and Horizontal hold the measured prefix [0, Done).
	Regular    []Chip
	Horizontal []Chip
}

// Encode serialises the checkpoint with the same framed
// magic/version/checksum layout as population snapshots.
func (c *BuildCheckpoint) Encode(w io.Writer) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	return writeFramed(w, checkpointMagic, buf.Bytes())
}

// DecodeBuildCheckpoint reads a checkpoint written by Encode, verifying
// the header and payload checksum before decoding.
func DecodeBuildCheckpoint(r io.Reader) (*BuildCheckpoint, error) {
	payload, err := readFramed(r, checkpointMagic, "checkpoint")
	if err != nil {
		return nil, err
	}
	var c BuildCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&c); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if c.Done < 0 || c.Done > c.N || len(c.Regular) != c.Done || (c.Pair && len(c.Horizontal) != c.Done) {
		return nil, fmt.Errorf("core: checkpoint inconsistent: done=%d n=%d regular=%d horizontal=%d",
			c.Done, c.N, len(c.Regular), len(c.Horizontal))
	}
	return &c, nil
}
