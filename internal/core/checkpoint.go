package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"yieldcache/internal/obs"
	"yieldcache/internal/sram"
)

// CheckpointConfig turns on periodic build checkpointing and, when
// Resume is set, continues an interrupted build from its saved prefix.
//
// The consistency argument: worker w measures chips base+w, base+w+W,
// … and, after finishing a batch ending at chip i, publishes i+W as
// its frontier with an atomic store. The checkpointer takes P = min
// over worker frontiers; every chip below P was finished before the
// store that made it visible (atomic store/load order), so
// Regular[:P]/Horizontal[:P] is an immutable, fully-measured prefix —
// no locks, no copying, and the hot loop pays one frontier store plus
// a deadline check per batch only when checkpointing is on (nothing at
// all when it is off). Because frontiers move at batch boundaries, the
// published prefix is always batch-aligned: a resumed build restarts
// at a batch edge and re-measures no partially-published batch.
type CheckpointConfig struct {
	// Interval is the time between checkpoint attempts; zero or
	// negative disables the checkpointer (Resume still works).
	Interval time.Duration
	// Sink receives each checkpoint. The pointed-to chips alias the
	// live build arena: the prefix is immutable, but the Sink must
	// finish with it (encode, hash) before returning and must not
	// retain the slices. A Sink error skips that checkpoint; the build
	// carries on and tries again next interval.
	Sink func(*BuildCheckpoint) error
	// Resume, when set, seeds the build with a previously checkpointed
	// prefix: chips below Resume.Done are copied into the arena and
	// measurement starts at Done. The checkpoint's seed, size, mode and
	// model must match the build's.
	Resume *BuildCheckpoint
}

// validateResume checks that a checkpoint belongs to this build.
func validateResume(r *BuildCheckpoint, cfg *PopulationConfig, pair bool, geom sram.Geometry) error {
	switch {
	case r.Seed != cfg.Seed:
		return fmt.Errorf("core: resume checkpoint seed %d, build seed %d", r.Seed, cfg.Seed)
	case r.N != cfg.N:
		return fmt.Errorf("core: resume checkpoint for %d chips, build wants %d", r.N, cfg.N)
	case r.Pair != pair:
		return fmt.Errorf("core: resume checkpoint pair=%v, build pair=%v", r.Pair, pair)
	case r.Geom != geom:
		return fmt.Errorf("core: resume checkpoint geometry %+v, build geometry %+v", r.Geom, geom)
	case r.Tech != *cfg.Tech:
		return fmt.Errorf("core: resume checkpoint built under a different technology model")
	}
	return nil
}

// copyMeasInto copies a checkpointed chip measurement into an arena
// slot whose nested slices are already wired to the flat backing
// arrays, preserving the arena's allocation discipline.
func copyMeasInto(dst, src *sram.CacheMeasurement) {
	dst.LatencyPS = src.LatencyPS
	dst.LeakageW = src.LeakageW
	for w := range dst.Ways {
		dw, sw := &dst.Ways[w], &src.Ways[w]
		dw.PeriphLeakW = sw.PeriphLeakW
		dw.LatencyPS = sw.LatencyPS
		dw.LeakageW = sw.LeakageW
		for b := range dw.Banks {
			db, sb := &dw.Banks[b], &sw.Banks[b]
			db.MaxPS = sb.MaxPS
			db.ArrayLeakW = sb.ArrayLeakW
			copy(db.Paths, sb.Paths)
		}
	}
}

// checkpointer drives the periodic Sink calls for one build. It has no
// goroutine of its own: workers publish their frontier per batch, and
// whichever worker first crosses the interval deadline CAS-elects
// itself to assemble the checkpoint (into a reusable embedded
// BuildCheckpoint — the prefix slices alias the live arena) and call
// the Sink synchronously. Enabling checkpoints therefore costs exactly
// two allocations per build (this struct and the frontier slice), and
// checkpoints track actual progress instead of wall-clock ticks that a
// busy CPU might never schedule.
type checkpointer struct {
	cfg      *CheckpointConfig
	frontier []atomic.Int64
	n        int
	interval int64        // nanoseconds between publish attempts
	deadline atomic.Int64 // unix nanos of the next publish attempt
	electing atomic.Int32 // CAS gate: one publisher at a time
	last     int          // frontier of the last accepted checkpoint (publisher-only)
	buf      BuildCheckpoint
	reg, hor []Chip
	scope    *obs.Scope
}

// newCheckpointer returns the worker-driven checkpointer; nil when
// checkpointing is disabled for this build.
func newCheckpointer(ck *CheckpointConfig, base, n, workers int, pair bool, cfg *PopulationConfig,
	geom sram.Geometry, reg, hor []Chip, scope *obs.Scope) *checkpointer {
	if ck == nil || ck.Sink == nil || ck.Interval <= 0 {
		return nil
	}
	c := &checkpointer{
		cfg:      ck,
		frontier: make([]atomic.Int64, workers),
		n:        n,
		interval: int64(ck.Interval),
		last:     base,
		buf: BuildCheckpoint{
			Seed: cfg.Seed, N: n, Pair: pair,
			Tech: *cfg.Tech, Geom: geom,
		},
		reg:   reg,
		hor:   hor,
		scope: scope,
	}
	for w := range c.frontier {
		c.frontier[w].Store(int64(base + w))
	}
	c.deadline.Store(time.Now().UnixNano() + c.interval)
	return c
}

// min returns the consistent frontier: every chip below it is measured.
func (c *checkpointer) min() int {
	p := int64(c.n)
	for w := range c.frontier {
		if f := c.frontier[w].Load(); f < p {
			p = f
		}
	}
	return int(p)
}

// advance publishes that worker w has finished every chip of its stripe
// up to and including i, and publishes a checkpoint if the interval
// deadline has passed and no other worker is already publishing. The
// off-deadline fast path is one atomic store plus one clock read and
// one atomic load.
func (c *checkpointer) advance(w, i, workers int) {
	c.frontier[w].Store(int64(i + workers))
	now := time.Now().UnixNano()
	if now < c.deadline.Load() {
		return
	}
	if !c.electing.CompareAndSwap(0, 1) {
		return
	}
	// Re-check under the gate: a racing worker may have just published
	// and pushed the deadline forward.
	if now >= c.deadline.Load() {
		c.publish()
		c.deadline.Store(now + c.interval)
	}
	c.electing.Store(0)
}

// publish assembles the current frontier prefix into the reusable
// checkpoint and hands it to the Sink. Caller holds the electing gate;
// successive publishers are ordered by its CAS, so buf and last are
// effectively single-threaded.
func (c *checkpointer) publish() {
	p := c.min()
	if p <= c.last {
		return
	}
	c.buf.Done = p
	c.buf.Regular = c.reg[:p]
	if c.buf.Pair {
		c.buf.Horizontal = c.hor[:p]
	}
	if err := c.cfg.Sink(&c.buf); err != nil {
		obs.C("core_checkpoint_sink_errors_total").Inc()
		return
	}
	c.last = p
	obs.C("core_checkpoints_total").Inc()
	c.scope.G("job_checkpoint_chips").Set(float64(p))
}

// close is the end-of-build hook; the worker-driven checkpointer has
// nothing to stop or wait for.
func (c *checkpointer) close() {}
