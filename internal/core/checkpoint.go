package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"yieldcache/internal/obs"
	"yieldcache/internal/sram"
)

// CheckpointConfig turns on periodic build checkpointing and, when
// Resume is set, continues an interrupted build from its saved prefix.
//
// The consistency argument: worker w measures chips base+w, base+w+W,
// … and, after finishing chip i, publishes i+W as its frontier with an
// atomic store. The checkpointer takes P = min over worker frontiers;
// every chip below P was finished before the store that made it
// visible (atomic store/load order), so Regular[:P]/Horizontal[:P] is
// an immutable, fully-measured prefix — no locks, no copying, and the
// hot loop pays one predictable nil-check plus one atomic store per
// chip only when checkpointing is on (nothing at all when it is off).
type CheckpointConfig struct {
	// Interval is the time between checkpoint attempts; zero or
	// negative disables the checkpointer (Resume still works).
	Interval time.Duration
	// Sink receives each checkpoint. The pointed-to chips alias the
	// live build arena: the prefix is immutable, but the Sink must
	// finish with it (encode, hash) before returning and must not
	// retain the slices. A Sink error skips that checkpoint; the build
	// carries on and tries again next interval.
	Sink func(*BuildCheckpoint) error
	// Resume, when set, seeds the build with a previously checkpointed
	// prefix: chips below Resume.Done are copied into the arena and
	// measurement starts at Done. The checkpoint's seed, size, mode and
	// model must match the build's.
	Resume *BuildCheckpoint
}

// validateResume checks that a checkpoint belongs to this build.
func validateResume(r *BuildCheckpoint, cfg *PopulationConfig, pair bool, geom sram.Geometry) error {
	switch {
	case r.Seed != cfg.Seed:
		return fmt.Errorf("core: resume checkpoint seed %d, build seed %d", r.Seed, cfg.Seed)
	case r.N != cfg.N:
		return fmt.Errorf("core: resume checkpoint for %d chips, build wants %d", r.N, cfg.N)
	case r.Pair != pair:
		return fmt.Errorf("core: resume checkpoint pair=%v, build pair=%v", r.Pair, pair)
	case r.Geom != geom:
		return fmt.Errorf("core: resume checkpoint geometry %+v, build geometry %+v", r.Geom, geom)
	case r.Tech != *cfg.Tech:
		return fmt.Errorf("core: resume checkpoint built under a different technology model")
	}
	return nil
}

// copyMeasInto copies a checkpointed chip measurement into an arena
// slot whose nested slices are already wired to the flat backing
// arrays, preserving the arena's allocation discipline.
func copyMeasInto(dst, src *sram.CacheMeasurement) {
	dst.LatencyPS = src.LatencyPS
	dst.LeakageW = src.LeakageW
	for w := range dst.Ways {
		dw, sw := &dst.Ways[w], &src.Ways[w]
		dw.PeriphLeakW = sw.PeriphLeakW
		dw.LatencyPS = sw.LatencyPS
		dw.LeakageW = sw.LeakageW
		for b := range dw.Banks {
			db, sb := &dw.Banks[b], &sw.Banks[b]
			db.MaxPS = sb.MaxPS
			db.ArrayLeakW = sb.ArrayLeakW
			copy(db.Paths, sb.Paths)
		}
	}
}

// checkpointer drives the periodic Sink calls for one build.
type checkpointer struct {
	cfg      *CheckpointConfig
	frontier []atomic.Int64
	stop     chan struct{}
	wg       sync.WaitGroup
}

// newCheckpointer starts the ticker goroutine; nil when checkpointing
// is disabled for this build.
func newCheckpointer(ck *CheckpointConfig, base, n, workers int, pair bool, cfg *PopulationConfig,
	geom sram.Geometry, reg, hor []Chip, scope *obs.Scope) *checkpointer {
	if ck == nil || ck.Sink == nil || ck.Interval <= 0 {
		return nil
	}
	c := &checkpointer{cfg: ck, frontier: make([]atomic.Int64, workers), stop: make(chan struct{})}
	for w := range c.frontier {
		c.frontier[w].Store(int64(base + w))
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(ck.Interval)
		defer t.Stop()
		last := base
		for {
			select {
			case <-t.C:
				p := c.min(n)
				if p <= last {
					continue
				}
				bc := &BuildCheckpoint{
					Seed: cfg.Seed, N: n, Done: p, Pair: pair,
					Tech: *cfg.Tech, Geom: geom,
					Regular: reg[:p],
				}
				if pair {
					bc.Horizontal = hor[:p]
				}
				if err := ck.Sink(bc); err != nil {
					obs.C("core_checkpoint_sink_errors_total").Inc()
					continue
				}
				last = p
				obs.C("core_checkpoints_total").Inc()
				scope.G("job_checkpoint_chips").Set(float64(p))
			case <-c.stop:
				return
			}
		}
	}()
	return c
}

// min returns the consistent frontier: every chip below it is measured.
func (c *checkpointer) min(n int) int {
	p := int64(n)
	for w := range c.frontier {
		if f := c.frontier[w].Load(); f < p {
			p = f
		}
	}
	return int(p)
}

// advance publishes that worker w has finished chip i.
func (c *checkpointer) advance(w, i, workers int) {
	c.frontier[w].Store(int64(i + workers))
}

// close stops the ticker goroutine and waits for it.
func (c *checkpointer) close() {
	if c == nil {
		return
	}
	close(c.stop)
	c.wg.Wait()
}
