package core

import "testing"

func TestYieldTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("four populations")
	}
	rows, err := YieldTrend(500, 2006)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("nodes = %d", len(rows))
	}
	if rows[0].NodeNM != 90 || rows[3].NodeNM != 32 {
		t.Error("node order wrong")
	}
	// The Figure 1 parametric story: leakage-driven losses explode with
	// scaling, and the newest node has the worst base yield.
	if !(rows[3].LeakageLoss > rows[0].LeakageLoss) {
		t.Errorf("leakage losses should grow with scaling: 90nm %d vs 32nm %d",
			rows[0].LeakageLoss, rows[3].LeakageLoss)
	}
	if !(rows[3].BaseYield < rows[0].BaseYield) {
		t.Errorf("base yield should fall with scaling: 90nm %.3f vs 32nm %.3f",
			rows[0].BaseYield, rows[3].BaseYield)
	}
	for _, r := range rows {
		if !(r.BaseYield <= r.YAPDYield && r.YAPDYield <= r.HybridYield) {
			t.Errorf("%d nm: scheme ordering violated: %+v", r.NodeNM, r)
		}
		if r.BaseYield < 0.5 || r.HybridYield > 1.0 {
			t.Errorf("%d nm: implausible yields: %+v", r.NodeNM, r)
		}
	}
}

func TestYieldTrendSmallPopulation(t *testing.T) {
	rows, err := YieldTrend(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("nodes = %d", len(rows))
	}
}
