package core

import (
	"reflect"
	"testing"

	"yieldcache/internal/circuit"
	"yieldcache/internal/sram"
)

// measIdentical compares two populations on every measurement field —
// paths, bank aggregates, way aggregates and chip totals — so any
// single differing bit fails. chipsEqual (checkpoint_test.go) only
// samples the analysis-facing aggregates; the delta builder's contract
// is stronger.
func measIdentical(t *testing.T, label string, a, b *Population) {
	t.Helper()
	if len(a.Chips) != len(b.Chips) {
		t.Fatalf("%s: %d chips vs %d", label, len(a.Chips), len(b.Chips))
	}
	for i := range a.Chips {
		if !reflect.DeepEqual(a.Chips[i].Meas, b.Chips[i].Meas) {
			t.Fatalf("%s: chip %d measurement diverges\nwant %+v\ngot  %+v",
				label, i, b.Chips[i].Meas, a.Chips[i].Meas)
		}
	}
}

// TestDeltaBuilderBaseMatchesFullBuild pins the builder's base pair to
// the ordinary build path: retaining draws must not perturb results.
func TestDeltaBuilderBaseMatchesFullBuild(t *testing.T) {
	cfg := PopulationConfig{N: 37, Seed: 2006}
	wantReg, wantHor := BuildPopulationPair(cfg)
	d := NewDeltaBuilder(cfg)
	gotReg, gotHor := d.Base()
	measIdentical(t, "base regular", gotReg, wantReg)
	measIdentical(t, "base horizontal", gotHor, wantHor)
}

// TestDeltaBuilderGridBitIdentical is the delta-build acceptance
// criterion: a two-parameter technology grid sweep (cell leakage ×
// alpha, exercising the leak-rescale path, the delay-only path, their
// combination and the no-op corner) built through BuildPair must be
// bit-identical to a full BuildPopulationPair at every grid point.
func TestDeltaBuilderGridBitIdentical(t *testing.T) {
	base := circuit.PTM45()
	cfg := PopulationConfig{N: 2*sram.BatchWidth + 5, Seed: 2006, Tech: &base}
	d := NewDeltaBuilder(cfg)

	leakScale := []float64{1.0, 0.8, 1.25}
	alphas := []float64{base.Alpha, 1.25, 1.40}
	for _, ls := range leakScale {
		for _, al := range alphas {
			tech := base
			tech.CellLeakage *= ls
			tech.Alpha = al
			full := cfg
			full.Tech = &tech
			wantReg, wantHor := BuildPopulationPair(full)
			gotReg, gotHor := d.BuildPair(tech)
			label := d.Parts(tech)
			measIdentical(t, "regular "+labelOf(label), gotReg, wantReg)
			measIdentical(t, "horizontal "+labelOf(label), gotHor, wantHor)
		}
	}
}

func labelOf(p sram.TechParts) string {
	switch {
	case !p.Any():
		return "(no-op)"
	case p.Delay && p.LeakScale:
		return "(delay+leak-scale)"
	case p.Delay:
		return "(delay)"
	case p.LeakScale:
		return "(leak-scale)"
	default:
		return "(leak-factors)"
	}
}

// TestDeltaBuilderFullReevalGrid exercises the parts that re-run the
// leakage exponential and the everything-touched fallback: SubVtSlope
// and Vdd sweeps must also be bit-identical to full builds.
func TestDeltaBuilderFullReevalGrid(t *testing.T) {
	base := circuit.PTM45()
	cfg := PopulationConfig{N: sram.BatchWidth + 3, Seed: 2006, Tech: &base}
	d := NewDeltaBuilder(cfg)
	for _, mut := range []func(*circuit.Tech){
		func(t *circuit.Tech) { t.SubVtSlope = 0.030 },
		func(t *circuit.Tech) { t.Vdd = 0.95 },
		func(t *circuit.Tech) { t.Vdd = 1.05; t.CellLeakage *= 1.1; t.SubVtSlope = 0.026 },
	} {
		tech := base
		mut(&tech)
		full := cfg
		full.Tech = &tech
		wantReg, wantHor := BuildPopulationPair(full)
		gotReg, gotHor := d.BuildPair(tech)
		measIdentical(t, "regular "+labelOf(d.Parts(tech)), gotReg, wantReg)
		measIdentical(t, "horizontal "+labelOf(d.Parts(tech)), gotHor, wantHor)
	}
}

// TestBuildBatchBoundaries sweeps population sizes around the kernel
// batch width — a single chip, one under, one over, and a prime well
// past it — across worker counts, checking each against the sequential
// delta-builder base (an independently-batched evaluation of the same
// draws). This pins the ragged-final-batch and stripe-assembly logic.
func TestBuildBatchBoundaries(t *testing.T) {
	for _, n := range []int{1, sram.BatchWidth - 1, sram.BatchWidth + 1, 97} {
		want := NewDeltaBuilder(PopulationConfig{N: n, Seed: 2006})
		wantReg, wantHor := want.Base()
		for _, workers := range []int{1, 3} {
			reg, hor := BuildPopulationPair(PopulationConfig{N: n, Seed: 2006, Workers: workers})
			measIdentical(t, "regular", reg, wantReg)
			measIdentical(t, "horizontal", hor, wantHor)
		}
	}
}

// TestBuildPrefixPurity checks that chip i's measurement depends only
// on the seed and i — never on N, worker count, or batch packing — by
// comparing a small build against the prefix of a larger one.
func TestBuildPrefixPurity(t *testing.T) {
	const small, large = 17, 64
	sReg, sHor := BuildPopulationPair(PopulationConfig{N: small, Seed: 2006})
	lReg, lHor := BuildPopulationPair(PopulationConfig{N: large, Seed: 2006, Workers: 4})
	for i := 0; i < small; i++ {
		if !reflect.DeepEqual(sReg.Chips[i].Meas, lReg.Chips[i].Meas) {
			t.Fatalf("regular chip %d differs between N=%d and N=%d builds", i, small, large)
		}
		if !reflect.DeepEqual(sHor.Chips[i].Meas, lHor.Chips[i].Meas) {
			t.Fatalf("horizontal chip %d differs between N=%d and N=%d builds", i, small, large)
		}
	}
}
