package core

import (
	"math"
	"testing"

	"yieldcache/internal/sram"
)

// synthChip builds a measurement with the given per-way latencies (ps)
// and leakages (W). Each way gets 4 banks whose max path equals the way
// latency, with earlier banks slightly faster, and array leakage spread
// evenly across banks plus a small periphery.
func synthChip(lat [4]float64, leak [4]float64) sram.CacheMeasurement {
	var cm sram.CacheMeasurement
	cm.Ways = make([]sram.WayMeasurement, 4)
	for w := 0; w < 4; w++ {
		wm := sram.WayMeasurement{Banks: make([]sram.BankMeasurement, 4)}
		wm.PeriphLeakW = leak[w] * 0.2
		for b := 0; b < 4; b++ {
			d := lat[w] - float64(3-b)*10 // bank 3 is the critical one
			wm.Banks[b] = sram.BankMeasurement{
				Paths:      []sram.PathMeasurement{{Bank: b, Slot: 0, DelayPS: d}},
				MaxPS:      d,
				ArrayLeakW: leak[w] * 0.2,
			}
		}
		wm.LatencyPS = lat[w]
		wm.LeakageW = leak[w]
		cm.Ways[w] = wm
		if lat[w] > cm.LatencyPS {
			cm.LatencyPS = lat[w]
		}
		cm.LeakageW += leak[w]
	}
	return cm
}

var testLim = Limits{DelayPS: 100, LeakageW: 1.0}

func TestConstraintSets(t *testing.T) {
	if n := Nominal(); n.DelaySigmaK != 1 || n.LeakageMult != 3 {
		t.Errorf("nominal constraints wrong: %+v", n)
	}
	if r := Relaxed(); r.DelaySigmaK != 1.5 || r.LeakageMult != 4 {
		t.Errorf("relaxed constraints wrong: %+v", r)
	}
	if s := Strict(); s.DelaySigmaK != 0.5 || s.LeakageMult != 2 {
		t.Errorf("strict constraints wrong: %+v", s)
	}
}

func TestWayCycles(t *testing.T) {
	lim := Limits{DelayPS: 400} // cycle time 100ps
	cases := []struct {
		lat  float64
		want int
	}{
		{300, 4}, {400, 4}, {400.1, 5}, {500, 5}, {500.1, 6}, {900, 9},
	}
	for _, c := range cases {
		if got := lim.WayCycles(c.lat); got != c.want {
			t.Errorf("WayCycles(%v) = %d, want %d", c.lat, got, c.want)
		}
	}
	if ct := lim.CycleTimePS(); ct != 100 {
		t.Errorf("CycleTimePS = %v, want 100", ct)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		m    sram.CacheMeasurement
		want LossReason
	}{
		{"pass", synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1}), LossNone},
		{"leak", synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.5, 0.5, 0.1, 0.1}), LossLeakage},
		{"leak priority over delay", synthChip([4]float64{150, 90, 90, 90}, [4]float64{0.5, 0.5, 0.1, 0.1}), LossLeakage},
		{"1 way", synthChip([4]float64{150, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1}), LossDelay1},
		{"2 ways", synthChip([4]float64{150, 110, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1}), LossDelay2},
		{"3 ways", synthChip([4]float64{150, 110, 101, 90}, [4]float64{0.1, 0.1, 0.1, 0.1}), LossDelay3},
		{"4 ways", synthChip([4]float64{150, 110, 101, 101}, [4]float64{0.1, 0.1, 0.1, 0.1}), LossDelay4},
	}
	for _, c := range cases {
		if got := Classify(c.m, testLim); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestLossReasonStrings(t *testing.T) {
	if LossLeakage.String() != "Leakage Constraint" {
		t.Error("leakage reason label wrong")
	}
	if LossDelay3.String() != "Delay Constraint (3 Way)" {
		t.Errorf("delay reason label wrong: %q", LossDelay3.String())
	}
	if len(LossReasons()) != 5 {
		t.Error("LossReasons should list the 5 table rows")
	}
}

func TestBaseScheme(t *testing.T) {
	pass := synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	out := Base{}.Apply(pass, testLim)
	if !out.Saved || !out.Passing {
		t.Error("base scheme should pass a conforming chip")
	}
	if out.Config.EnabledWays() != 4 || out.Config.EffectiveAssoc() != 4 {
		t.Error("passing config should keep 4 ways")
	}
	fail := synthChip([4]float64{150, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	if out := (Base{}).Apply(fail, testLim); out.Saved {
		t.Error("base scheme cannot save a failing chip")
	}
}

func TestYAPDSavesOneSlowWay(t *testing.T) {
	m := synthChip([4]float64{150, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	out := YAPD{}.Apply(m, testLim)
	if !out.Saved || out.Passing {
		t.Fatal("YAPD should save a single-way delay violator")
	}
	if out.DisabledWay != 0 {
		t.Errorf("YAPD disabled way %d, want the slow way 0", out.DisabledWay)
	}
	if out.Config.EnabledWays() != 3 {
		t.Error("saved config should have 3 ways")
	}
	n4, n5, n6 := out.Config.Counts()
	if n4 != 3 || n5 != 0 || n6 != 0 {
		t.Errorf("saved config counts = %d-%d-%d, want 3-0-0", n4, n5, n6)
	}
}

func TestYAPDCannotSaveTwoSlowWays(t *testing.T) {
	m := synthChip([4]float64{150, 140, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	if out := (YAPD{}).Apply(m, testLim); out.Saved {
		t.Error("YAPD is limited to a single way shutdown")
	}
}

func TestYAPDSavesLeakage(t *testing.T) {
	// Total leakage 1.3 > 1.0; dropping the leakiest way (0.6) fixes it.
	m := synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.6, 0.3, 0.2, 0.2})
	out := YAPD{}.Apply(m, testLim)
	if !out.Saved {
		t.Fatal("YAPD should save a leakage violator by dropping the leakiest way")
	}
	if out.DisabledWay != 0 {
		t.Errorf("disabled way %d, want leakiest way 0", out.DisabledWay)
	}
}

func TestYAPDLeakageBeyondRescue(t *testing.T) {
	m := synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.6, 0.6, 0.5, 0.5})
	if out := (YAPD{}).Apply(m, testLim); out.Saved {
		t.Error("dropping one way cannot fix a 2.2x over-limit leakage")
	}
}

func TestYAPDCombinedLeakAndDelaySameWay(t *testing.T) {
	// Way 0 is both the slow way and the leaky way: one shutdown fixes both.
	m := synthChip([4]float64{150, 90, 90, 90}, [4]float64{0.5, 0.2, 0.2, 0.2})
	out := YAPD{}.Apply(m, testLim)
	if !out.Saved || out.DisabledWay != 0 {
		t.Error("YAPD should fix combined leak+delay when one way causes both")
	}
	// Different ways cause the two violations: unfixable with one shutdown
	// (dropping the slow way leaves 1.1 of leakage; dropping the leaky way
	// leaves the slow way violating).
	m2 := synthChip([4]float64{150, 90, 90, 90}, [4]float64{0.1, 0.7, 0.2, 0.2})
	if out := (YAPD{}).Apply(m2, testLim); out.Saved {
		t.Error("YAPD cannot fix leak and delay living in different ways")
	}
}

func TestHYAPDSavesRegionConcentratedViolation(t *testing.T) {
	// synthChip puts every way's critical path in bank 3, 10ps/bank apart.
	// A way at 105ps violates; removing region 3 leaves 95ps -> saved.
	m := synthChip([4]float64{105, 104, 103, 102}, [4]float64{0.1, 0.1, 0.1, 0.1})
	out := HYAPD{}.Apply(m, testLim)
	if !out.Saved {
		t.Fatal("H-YAPD should save a 4-way violation concentrated in one region")
	}
	if out.DisabledRegion != 3 {
		t.Errorf("disabled region %d, want the critical region 3", out.DisabledRegion)
	}
	if out.Config.EffectiveAssoc() != 3 {
		t.Error("H-YAPD config should behave as a 3-way cache")
	}
	if out.Config.EnabledWays() != 4 {
		t.Error("H-YAPD keeps all vertical ways powered")
	}
	// Note YAPD cannot save this chip: 4 ways violate.
	if out := (YAPD{}).Apply(m, testLim); out.Saved {
		t.Error("YAPD should not be able to save a 4-way violation")
	}
}

func TestHYAPDCannotFixWayUniformSlowness(t *testing.T) {
	// A way slow by more than the 10ps inter-bank spread cannot be fixed
	// by removing one region.
	m := synthChip([4]float64{140, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	if out := (HYAPD{}).Apply(m, testLim); out.Saved {
		t.Error("H-YAPD cannot fix a uniformly slow way")
	}
}

func TestHYAPDLeakagePeripheryStays(t *testing.T) {
	// Each way: leak 0.3, of which 0.06 periphery and 0.06 per bank array.
	// Total 1.2 > 1.0. Removing one region saves 4*0.06 = 0.24 -> 0.96 ok.
	m := synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.3, 0.3, 0.3, 0.3})
	out := HYAPD{}.Apply(m, testLim)
	if !out.Saved {
		t.Fatal("H-YAPD should shave leakage by dropping one region's arrays")
	}
	// 1.25x over: one region (20% of total) is not enough: 1.25*0.8 = 1.0... use 1.3x.
	m2 := synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.33, 0.33, 0.33, 0.33})
	if out := (HYAPD{}).Apply(m2, testLim); out.Saved {
		t.Error("H-YAPD cannot gate the periphery, so a 1.32x leakage chip is lost")
	}
}

func TestVACA(t *testing.T) {
	lim := Limits{DelayPS: 100, LeakageW: 1.0} // cycle 25ps; 5 cycles covers 125ps
	// One way at 110ps -> 5 cycles: saved, no way disabled.
	m := synthChip([4]float64{110, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	out := VACA{}.Apply(m, lim)
	if !out.Saved || out.DisabledWay != -1 {
		t.Fatal("VACA should save a 5-cycle way without disabling anything")
	}
	n4, n5, n6 := out.Config.Counts()
	if n4 != 3 || n5 != 1 || n6 != 0 {
		t.Errorf("VACA config = %d-%d-%d, want 3-1-0", n4, n5, n6)
	}
	// A 6-cycle way (>125ps) is beyond the single-entry buffers.
	m6 := synthChip([4]float64{130, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	if out := (VACA{}).Apply(m6, lim); out.Saved {
		t.Error("VACA cannot save a 6-cycle way")
	}
	// VACA does not address leakage at all.
	mL := synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.6, 0.3, 0.2, 0.2})
	if out := (VACA{}).Apply(mL, lim); out.Saved {
		t.Error("VACA cannot save a leakage violator")
	}
}

func TestVACAAllWaysFiveCycles(t *testing.T) {
	lim := Limits{DelayPS: 100, LeakageW: 1.0}
	m := synthChip([4]float64{110, 112, 114, 116}, [4]float64{0.1, 0.1, 0.1, 0.1})
	out := VACA{}.Apply(m, lim)
	if !out.Saved {
		t.Fatal("VACA should save an all-5-cycle chip")
	}
	n4, n5, n6 := out.Config.Counts()
	if n4 != 0 || n5 != 4 || n6 != 0 {
		t.Errorf("config = %d-%d-%d, want 0-4-0", n4, n5, n6)
	}
}

func TestHybridKeepsWaysOn(t *testing.T) {
	lim := Limits{DelayPS: 100, LeakageW: 1.0}
	// Paper Section 5.2: for 3-1-0 the Hybrid keeps the 5-cycle way
	// enabled and behaves like VACA.
	m := synthChip([4]float64{110, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	out := Hybrid{}.Apply(m, lim)
	if !out.Saved || out.DisabledWay != -1 {
		t.Fatal("Hybrid must keep ways on when VACA suffices")
	}
	n4, n5, _ := out.Config.Counts()
	if n4 != 3 || n5 != 1 {
		t.Error("Hybrid 3-1-0 config should match VACA")
	}
}

func TestHybridDisablesSixCycleWay(t *testing.T) {
	lim := Limits{DelayPS: 100, LeakageW: 1.0}
	// 3-0-1: disable the 6-cycle way, run the rest at 4 (like YAPD).
	m := synthChip([4]float64{130, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	out := Hybrid{}.Apply(m, lim)
	if !out.Saved || out.DisabledWay != 0 {
		t.Fatal("Hybrid should disable the 6-cycle way")
	}
	n4, n5, n6 := out.Config.Counts()
	if n4 != 3 || n5 != 0 || n6 != 0 {
		t.Errorf("config = %d-%d-%d, want 3-0-0 enabled", n4, n5, n6)
	}
	// 2-1-1: disable the 6-cycle way, keep the 5-cycle one.
	m211 := synthChip([4]float64{130, 110, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	out = Hybrid{}.Apply(m211, lim)
	if !out.Saved || out.DisabledWay != 0 {
		t.Fatal("Hybrid should disable only the 6-cycle way of a 2-1-1 chip")
	}
	n4, n5, n6 = out.Config.Counts()
	if n4 != 2 || n5 != 1 || n6 != 0 {
		t.Errorf("config = %d-%d-%d, want 2-1-0 enabled", n4, n5, n6)
	}
	// Two 6-cycle ways: lost (at most one shutdown).
	m2 := synthChip([4]float64{130, 128, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	if out := (Hybrid{}).Apply(m2, lim); out.Saved {
		t.Error("Hybrid cannot save two 6-cycle ways")
	}
}

func TestHybridLeakage(t *testing.T) {
	lim := Limits{DelayPS: 100, LeakageW: 1.0}
	// Leakage violator with a 5-cycle way: drop the leakiest way, keep
	// the 5-cycle way enabled under VACA.
	m := synthChip([4]float64{110, 90, 90, 90}, [4]float64{0.1, 0.6, 0.2, 0.2})
	out := Hybrid{}.Apply(m, lim)
	if !out.Saved || out.DisabledWay != 1 {
		t.Fatalf("Hybrid should drop the leakiest way, got disabled=%d saved=%v", out.DisabledWay, out.Saved)
	}
	n4, n5, _ := out.Config.Counts()
	if n4 != 2 || n5 != 1 {
		t.Error("remaining ways should be 2x4cyc + 1x5cyc")
	}
}

func TestHybridHorizontal(t *testing.T) {
	lim := Limits{DelayPS: 100, LeakageW: 1.0}
	// All ways 5-cycle-violating via the critical region: removing region
	// 3 turns a 0-0-4... here 126ps = 6 cycles; region off -> 116 = 5 cycles.
	m := synthChip([4]float64{126, 126, 126, 126}, [4]float64{0.1, 0.1, 0.1, 0.1})
	out := Hybrid{Horizontal: true}.Apply(m, lim)
	if !out.Saved || out.DisabledRegion != 3 {
		t.Fatalf("horizontal Hybrid should cut region 3: %+v", out)
	}
	n4, n5, n6 := out.Config.Counts()
	if n4 != 0 || n5 != 4 || n6 != 0 {
		t.Errorf("post-shutdown cycles = %d-%d-%d, want 0-4-0", n4, n5, n6)
	}
}

func TestNaiveBinning(t *testing.T) {
	lim := Limits{DelayPS: 100, LeakageW: 1.0}
	m := synthChip([4]float64{110, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	out := NaiveBinning{MaxCycles: 5}.Apply(m, lim)
	if !out.Saved {
		t.Fatal("naive binning should sell the chip in the 5-cycle bin")
	}
	for _, cy := range out.Config.WayCycles {
		if cy != 5 {
			t.Fatalf("naive binning must run ALL ways at the worst latency, got %v", out.Config.WayCycles)
		}
	}
	if out := (NaiveBinning{MaxCycles: 5}).Apply(synthChip([4]float64{130, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1}), lim); out.Saved {
		t.Error("a 6-cycle chip does not fit the 5-cycle bin")
	}
	if out := (NaiveBinning{MaxCycles: 6}).Apply(synthChip([4]float64{130, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1}), lim); !out.Saved {
		t.Error("the 6-cycle bin should take a 6-cycle chip")
	}
}

func TestSchemesPassThroughConformingChips(t *testing.T) {
	m := synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	for _, s := range []Scheme{Base{}, YAPD{}, HYAPD{}, VACA{}, Hybrid{}, Hybrid{Horizontal: true}, NaiveBinning{MaxCycles: 5}} {
		out := s.Apply(m, testLim)
		if !out.Saved || !out.Passing {
			t.Errorf("%s altered a passing chip: %+v", s.Name(), out)
		}
		if out.DisabledWay != -1 || out.DisabledRegion != -1 {
			t.Errorf("%s took action on a passing chip", s.Name())
		}
	}
}

func TestSchemeDominance(t *testing.T) {
	// Structural invariants across a random-ish set of synthetic chips:
	// Hybrid saves everything YAPD or VACA saves; every scheme saves
	// passing chips.
	lats := []float64{90, 95, 101, 105, 110, 118, 126, 140}
	leaks := []float64{0.1, 0.2, 0.3, 0.4}
	lim := Limits{DelayPS: 100, LeakageW: 1.0}
	for _, l0 := range lats {
		for _, l1 := range lats {
			for _, k0 := range leaks {
				m := synthChip([4]float64{l0, l1, 95, 93}, [4]float64{k0, 0.2, 0.15, 0.15})
				y := YAPD{}.Apply(m, lim)
				v := VACA{}.Apply(m, lim)
				h := Hybrid{}.Apply(m, lim)
				if (y.Saved || v.Saved) && !h.Saved {
					t.Fatalf("Hybrid failed a chip YAPD/VACA saves: lat=%v,%v leak=%v", l0, l1, k0)
				}
				hh := Hybrid{Horizontal: true}.Apply(m, lim)
				hy := HYAPD{}.Apply(m, lim)
				if (hy.Saved || v.Saved) && !hh.Saved {
					t.Fatalf("Hybrid(H) failed a chip H-YAPD/VACA saves: lat=%v,%v leak=%v", l0, l1, k0)
				}
			}
		}
	}
}

func TestBreakdownLosses(t *testing.T) {
	pop := &Population{Chips: []Chip{
		{ID: 0, Meas: synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})},   // pass
		{ID: 1, Meas: synthChip([4]float64{150, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})},  // 1-way
		{ID: 2, Meas: synthChip([4]float64{150, 140, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})}, // 2-way
		{ID: 3, Meas: synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.6, 0.3, 0.2, 0.2})},   // leakage
	}}
	bd := BreakdownLosses(pop, testLim, YAPD{}, VACA{})
	if bd.BaseTotal != 3 {
		t.Fatalf("base total = %d, want 3", bd.BaseTotal)
	}
	if bd.Base[LossDelay1] != 1 || bd.Base[LossDelay2] != 1 || bd.Base[LossLeakage] != 1 {
		t.Errorf("base breakdown wrong: %+v", bd.Base)
	}
	// YAPD saves the 1-way and leakage chips, not the 2-way chip.
	if bd.Schemes[0].Total != 1 || bd.Schemes[0].ByReason[LossDelay2] != 1 {
		t.Errorf("YAPD losses wrong: %+v", bd.Schemes[0])
	}
	// VACA: 150ps = 6 cycles -> loses chips 1 and 2; loses the leakage chip.
	if bd.Schemes[1].Total != 3 {
		t.Errorf("VACA losses = %d, want 3", bd.Schemes[1].Total)
	}
	if y := bd.Yield(-1); math.Abs(y-0.25) > 1e-12 {
		t.Errorf("base yield = %v, want 0.25", y)
	}
	if y := bd.Yield(0); math.Abs(y-0.75) > 1e-12 {
		t.Errorf("YAPD yield = %v, want 0.75", y)
	}
	if r := bd.LossReduction(0); math.Abs(r-2.0/3.0) > 1e-12 {
		t.Errorf("YAPD loss reduction = %v, want 2/3", r)
	}
}

func TestSavedConfigurations(t *testing.T) {
	lim := Limits{DelayPS: 100, LeakageW: 1.0}
	pop := &Population{Chips: []Chip{
		{ID: 0, Meas: synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})},   // pass: excluded
		{ID: 1, Meas: synthChip([4]float64{110, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})},  // 3-1-0
		{ID: 2, Meas: synthChip([4]float64{112, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})},  // 3-1-0
		{ID: 3, Meas: synthChip([4]float64{130, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})},  // 3-0-1
		{ID: 4, Meas: synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.6, 0.3, 0.2, 0.2})},   // 4-0-0 leak
		{ID: 5, Meas: synthChip([4]float64{130, 128, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})}, // unsaved
	}}
	rows := SavedConfigurations(pop, lim, Hybrid{})
	want := map[ConfigKey]int{
		{N4: 3, N5: 1, N6: 0}: 2,
		{N4: 3, N5: 0, N6: 1}: 1,
		{N4: 4, N5: 0, N6: 0}: 1,
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d: %+v", len(rows), len(want), rows)
	}
	total := 0
	for _, r := range rows {
		if want[r.Key] != r.Chips {
			t.Errorf("row %+v: chips = %d, want %d", r.Key, r.Chips, want[r.Key])
		}
		if (r.Key == ConfigKey{N4: 4}) && !r.LeakageLimited {
			t.Error("the 4-0-0 row should be leakage-limited")
		}
		total += r.Chips
	}
	if total != 4 {
		t.Errorf("total saved = %d, want 4", total)
	}
}

func TestBuildPopulationDeterministicAndParallel(t *testing.T) {
	cfg := PopulationConfig{N: 50, Seed: 123}
	a := BuildPopulation(cfg)
	b := BuildPopulation(cfg)
	if len(a.Chips) != 50 {
		t.Fatalf("population size = %d", len(a.Chips))
	}
	for i := range a.Chips {
		if a.Chips[i].Meas.LatencyPS != b.Chips[i].Meas.LatencyPS {
			t.Fatalf("chip %d differs across identical builds", i)
		}
		if a.Chips[i].ID != i {
			t.Fatalf("chip %d has ID %d", i, a.Chips[i].ID)
		}
	}
}

func TestRegularAndHYAPDShareDraws(t *testing.T) {
	reg := BuildPopulation(PopulationConfig{N: 30, Seed: 7})
	hor := BuildPopulation(PopulationConfig{N: 30, Seed: 7, HYAPD: true})
	for i := range reg.Chips {
		ratio := hor.Chips[i].Meas.LatencyPS / reg.Chips[i].Meas.LatencyPS
		if math.Abs(ratio-sram.HYAPDLatencyPenalty) > 1e-9 {
			t.Fatalf("chip %d: H/regular latency ratio %v, want the 2.5%% penalty", i, ratio)
		}
	}
}

func TestDeriveLimits(t *testing.T) {
	pop := BuildPopulation(PopulationConfig{N: 200, Seed: 9})
	nom := DeriveLimits(pop, Nominal())
	rel := DeriveLimits(pop, Relaxed())
	str := DeriveLimits(pop, Strict())
	if !(str.DelayPS < nom.DelayPS && nom.DelayPS < rel.DelayPS) {
		t.Error("delay limits should order strict < nominal < relaxed")
	}
	if !(str.LeakageW < nom.LeakageW && nom.LeakageW < rel.LeakageW) {
		t.Error("leakage limits should order strict < nominal < relaxed")
	}
}

func TestScatter(t *testing.T) {
	pop := BuildPopulation(PopulationConfig{N: 100, Seed: 5})
	lim := DeriveLimits(pop, Nominal())
	pts := pop.Scatter(lim)
	if len(pts) != 100 {
		t.Fatalf("scatter has %d points", len(pts))
	}
	mean := 0.0
	for _, p := range pts {
		mean += p.NormalizedLeakage
		if p.LatencyPS <= 0 {
			t.Fatal("non-positive latency in scatter")
		}
	}
	if math.Abs(mean/100-1) > 1e-9 {
		t.Errorf("normalized leakage mean = %v, want 1", mean/100)
	}
}

func TestTotalsUnderConstraints(t *testing.T) {
	pop := BuildPopulation(PopulationConfig{N: 300, Seed: 11})
	rows := TotalsUnderConstraints(pop, pop, []Constraints{Relaxed(), Strict()}, YAPD{}, VACA{}, Hybrid{})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Base >= rows[1].Base {
		t.Errorf("relaxed base losses (%d) should be below strict (%d)", rows[0].Base, rows[1].Base)
	}
	for _, r := range rows {
		for _, s := range r.Schemes {
			if s.Total > r.Base {
				t.Errorf("%s under %s lost more than base", s.Scheme, r.Constraint.Name)
			}
		}
	}
}
