//go:build race

package core

// raceEnabled reports whether the race detector is instrumenting this
// build; its allocations make allocation-budget tests meaningless.
const raceEnabled = true
