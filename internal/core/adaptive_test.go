package core

import "testing"

func TestAdaptiveHybridSavesExactlyHybridChips(t *testing.T) {
	// The adaptive policy never changes *which* chips are saved, only
	// their configuration.
	pop := BuildPopulation(PopulationConfig{N: 300, Seed: 2006})
	lim := DeriveLimits(pop, Nominal())
	for _, intensity := range []float64{0.1, 0.9} {
		a := AdaptiveHybrid{MemoryIntensity: intensity}
		for _, chip := range pop.Chips {
			h := Hybrid{}.Apply(chip.Meas, lim)
			got := a.Apply(chip.Meas, lim)
			if h.Saved != got.Saved {
				t.Fatalf("intensity %v chip %d: adaptive saved=%v, hybrid saved=%v",
					intensity, chip.ID, got.Saved, h.Saved)
			}
		}
	}
}

func TestAdaptiveHybridComputeBoundDisablesSlowWay(t *testing.T) {
	lim := Limits{DelayPS: 100, LeakageW: 1.0}
	m := synthChip([4]float64{110, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	// Memory-bound: keep the 5-cycle way on (fixed Hybrid behaviour).
	mem := AdaptiveHybrid{MemoryIntensity: 0.9}.Apply(m, lim)
	if !mem.Saved || mem.DisabledWay != -1 {
		t.Fatal("memory-bound policy should keep the 5-cycle way enabled")
	}
	n4, n5, _ := mem.Config.Counts()
	if n4 != 3 || n5 != 1 {
		t.Error("memory-bound config should be 3x4 + 1x5")
	}
	// Compute-bound: power the slow way down instead.
	cpu := AdaptiveHybrid{MemoryIntensity: 0.1}.Apply(m, lim)
	if !cpu.Saved || cpu.DisabledWay != 0 {
		t.Fatalf("compute-bound policy should disable the 5-cycle way: %+v", cpu)
	}
	n4, n5, _ = cpu.Config.Counts()
	if n4 != 3 || n5 != 0 {
		t.Error("compute-bound config should be 3 fast ways")
	}
}

func TestAdaptiveHybridRespectsSingleShutdown(t *testing.T) {
	lim := Limits{DelayPS: 100, LeakageW: 1.0}
	// A 6-cycle way forces the one allowed shutdown; the remaining
	// 5-cycle way must stay on even for compute-bound workloads.
	m := synthChip([4]float64{130, 110, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	out := AdaptiveHybrid{MemoryIntensity: 0.1}.Apply(m, lim)
	if !out.Saved || out.DisabledWay != 0 {
		t.Fatalf("should disable only the 6-cycle way: %+v", out)
	}
	_, n5, _ := out.Config.Counts()
	if n5 != 1 {
		t.Error("the 5-cycle way must remain enabled (single-shutdown budget)")
	}
}

func TestAdaptiveHybridLeakageGuard(t *testing.T) {
	lim := Limits{DelayPS: 100, LeakageW: 1.0}
	// Chip right at the leakage limit: compute-bound policy must not
	// disable the slow way if... actually disabling only reduces leakage,
	// so the guard is about chips where the remaining leakage cannot be
	// the binding issue. Verify the policy does not *lose* such a chip.
	m := synthChip([4]float64{110, 90, 90, 90}, [4]float64{0.25, 0.25, 0.25, 0.24})
	out := AdaptiveHybrid{MemoryIntensity: 0.1}.Apply(m, lim)
	if !out.Saved {
		t.Fatal("chip within limits must stay saved under any policy")
	}
}

func TestAdaptiveHybridPassThrough(t *testing.T) {
	m := synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.1, 0.1, 0.1, 0.1})
	out := AdaptiveHybrid{MemoryIntensity: 0.1}.Apply(m, testLim)
	if !out.Passing || out.DisabledWay != -1 {
		t.Error("passing chips must not be touched")
	}
}

func TestLineDisable(t *testing.T) {
	lim := Limits{DelayPS: 100, LeakageW: 1.0}
	// synthChip: per way, bank b's path delay = lat - (3-b)*10. A way at
	// 105 has paths {75, 85, 95, 105}: only bank 3 violates -> 4 rows of
	// 16 disabled (25%), within the default budget.
	m := synthChip([4]float64{105, 105, 105, 105}, [4]float64{0.1, 0.1, 0.1, 0.1})
	out := LineDisable{}.Apply(m, lim)
	if !out.Saved {
		t.Fatal("line disabling should fix a one-bank-per-way violation")
	}
	// Uniformly slow ways: every path violates -> over budget.
	bad := synthChip([4]float64{160, 160, 160, 160}, [4]float64{0.1, 0.1, 0.1, 0.1})
	if out := (LineDisable{}).Apply(bad, lim); out.Saved {
		t.Error("line disabling cannot fix a uniformly slow cache")
	}
	// Leakage violations are untouchable at line granularity.
	leaky := synthChip([4]float64{90, 90, 90, 90}, [4]float64{0.6, 0.3, 0.2, 0.2})
	if out := (LineDisable{}).Apply(leaky, lim); out.Saved {
		t.Error("line disabling cannot fix leakage")
	}
}

func TestLineDisableBudget(t *testing.T) {
	lim := Limits{DelayPS: 100, LeakageW: 1.0}
	m := synthChip([4]float64{105, 105, 105, 105}, [4]float64{0.1, 0.1, 0.1, 0.1})
	// The same chip fails under a tighter capacity budget.
	if out := (LineDisable{MaxDisabledFrac: 0.1}).Apply(m, lim); out.Saved {
		t.Error("10% budget cannot absorb 25% disabled rows")
	}
}

func TestSchemeComparisonSorted(t *testing.T) {
	pop := BuildPopulation(PopulationConfig{N: 300, Seed: 2006})
	lim := DeriveLimits(pop, Nominal())
	rows := SchemeComparison(pop, lim, []Scheme{VACA{}, Hybrid{}, YAPD{}, LineDisable{}})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Total > rows[i].Total {
			t.Fatal("comparison not sorted best-first")
		}
	}
	if rows[0].Scheme != "Hybrid" {
		t.Errorf("Hybrid should win the shoot-out, got %s", rows[0].Scheme)
	}
}
