package core

import (
	"math"
	"sync/atomic"
	"time"

	"yieldcache/internal/obs"
	"yieldcache/internal/stats"
)

// EstimateConfig arms streaming yield estimation on a population
// build: while workers measure chips, the build periodically publishes
// a YieldEstimate snapshot — live yield with a Wilson confidence
// interval, per-loss-reason shares with their own intervals, and
// latency/leakage moments — computed over the consistent prefix of
// chips measured so far. With TargetCIWidth set it also turns the
// estimate into a stopping rule: once the yield interval's half-width
// reaches the target, the build stops sampling at the next batch
// boundary and returns the truncated (fully measured, batch-aligned)
// population. Nil adds nothing to the build's hot loop.
type EstimateConfig struct {
	// Interval is the minimum time between snapshots; zero or negative
	// defaults to 250ms.
	Interval time.Duration
	// Constraints selects the yield requirement the estimate classifies
	// against. Snapshots derive *provisional* limits from the measured
	// prefix with exactly the DeriveLimits arithmetic, so the final
	// snapshot (prefix = whole population) reproduces the table limits
	// bit for bit.
	Constraints Constraints
	// Confidence is the two-sided confidence level of every interval;
	// zero defaults to 0.95.
	Confidence float64
	// TargetCIWidth, when positive, enables precision-targeted
	// stopping: the build stops early once the yield interval's
	// half-width is <= TargetCIWidth (and at least MinChips are
	// measured). Zero disables stopping; snapshots still stream.
	TargetCIWidth float64
	// MinChips is the floor below which the stopping rule never fires,
	// guarding against lucky early streaks; zero defaults to 128.
	MinChips int
	// Sink receives each snapshot, including a final one published
	// after the build completes (EarlyStop reports whether the
	// precision target cut it short). The pointed-to estimate is a
	// reusable buffer: the Sink must copy what it keeps and must not
	// retain the pointer.
	Sink func(*YieldEstimate)
}

// fill applies the documented defaults in place.
func (c *EstimateConfig) fill() {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.95
	}
	if c.MinChips <= 0 {
		c.MinChips = 128
	}
}

// ReasonEstimate is one loss reason's share of the measured prefix
// with its Wilson confidence interval — a live, error-barred row of
// Table 2.
type ReasonEstimate struct {
	Reason LossReason
	Lost   int64   // chips lost to this reason in the prefix
	Share  float64 // Lost / Chips
	CILow  float64
	CIHigh float64
}

// YieldEstimate is one streaming snapshot of a build's statistical
// state: the parametric yield of the first Chips measured chips under
// provisional limits derived from that same prefix, with Wilson
// confidence intervals on the yield and on every loss reason's share,
// plus latency/leakage moments. Snapshots are published into a
// reusable buffer (see EstimateConfig.Sink); all fields are plain
// values so a shallow copy detaches a snapshot from the buffer.
type YieldEstimate struct {
	Chips      int     // measured prefix size the estimate covers
	Total      int     // full requested population size
	Confidence float64 // two-sided confidence level of the intervals

	Yield     float64 // passing fraction of the prefix
	Lost      int64   // chips lost in the prefix
	CILow     float64 // Wilson lower bound on Yield
	CIHigh    float64 // Wilson upper bound on Yield
	HalfWidth float64 // (CIHigh - CILow) / 2, the stopping-rule metric

	// Limits are the provisional pass/fail thresholds derived from the
	// prefix; at Chips == Total they equal DeriveLimits exactly.
	Limits Limits

	MeanLatencyPS   float64
	StdErrLatencyPS float64
	MeanLeakageW    float64
	StdErrLeakageW  float64

	// Reasons holds the per-loss-reason breakdown in table order
	// (LossReasons order: leakage, then delay by way count).
	Reasons [NumLossReasons]ReasonEstimate

	// EarlyStop is set on the final snapshot when the precision target
	// stopped the build before the full population.
	EarlyStop bool
}

// estimator drives streaming yield estimation for one build. Like the
// checkpointer it has no goroutine: workers publish their batch
// frontier with an atomic store, and whichever worker first crosses
// the interval deadline CAS-elects itself to compute and publish a
// snapshot. The snapshot is a sequential scan of the consistent prefix
// [0, P) — P the min over worker frontiers — rather than a merge of
// per-worker floating-point partials: per-chip classification needs
// limits, limits need the whole prefix's moments, and a sequential
// scan in chip order makes every published number a pure function of
// P. That is what keeps estimates bit-identical across worker counts
// (the per-worker state that *is* merged lock-free — the frontier min
// — is an integer, so merge order cannot matter). The scan is O(P)
// but runs at most once per Interval; at the default 250ms it costs
// well under a millisecond per publish at paper-scale populations.
// Arming the estimator costs exactly two allocations per build (this
// struct, with the snapshot buffer embedded, and the frontier slice).
type estimator struct {
	cfg      EstimateConfig
	frontier []atomic.Int64
	n        int
	interval int64        // nanoseconds between publish attempts
	deadline atomic.Int64 // unix nanos of the next publish attempt
	electing atomic.Int32 // CAS gate: one publisher at a time
	stop     atomic.Bool  // precision target met: stop sampling
	stopAt   atomic.Int64 // decision frontier at the moment stop was set
	last     int          // prefix of the last published snapshot (publisher-only)
	buf      YieldEstimate
	reg      []Chip
	scope    *obs.Scope
}

// newEstimator returns the worker-driven estimator; nil when
// estimation is disabled for this build (no sink and no precision
// target).
func newEstimator(ec *EstimateConfig, base, n, workers int, reg []Chip, scope *obs.Scope) *estimator {
	if ec == nil || (ec.Sink == nil && ec.TargetCIWidth <= 0) {
		return nil
	}
	e := &estimator{
		cfg:      *ec,
		frontier: make([]atomic.Int64, workers),
		n:        n,
		reg:      reg,
		scope:    scope,
	}
	e.cfg.fill()
	e.interval = int64(e.cfg.Interval)
	for w := range e.frontier {
		e.frontier[w].Store(int64(base + w))
	}
	e.deadline.Store(time.Now().UnixNano() + e.interval)
	return e
}

// min returns the consistent frontier: every chip below it is measured.
func (e *estimator) min() int {
	p := int64(e.n)
	for w := range e.frontier {
		if f := e.frontier[w].Load(); f < p {
			p = f
		}
	}
	return int(p)
}

// stopped reports whether the precision target has fired; workers poll
// it at batch boundaries alongside the cancellation flag. Nil-safe:
// the disabled path pays one nil check.
func (e *estimator) stopped() bool {
	return e != nil && e.stop.Load()
}

// stopPrefix returns the batch-aligned frontier at which the stopping
// rule fired, or 0 when the build ran to completion. Nil-safe.
func (e *estimator) stopPrefix() int {
	if e == nil {
		return 0
	}
	return int(e.stopAt.Load())
}

// advance publishes that worker w has finished its stripe up to and
// including chip i, and publishes a snapshot if the interval deadline
// has passed and no other worker is already publishing — the same
// election discipline as checkpointer.advance. Nil-safe; the
// off-deadline fast path is one atomic store plus one clock read and
// one atomic load.
func (e *estimator) advance(w, i, workers int) {
	if e == nil {
		return
	}
	e.frontier[w].Store(int64(i + workers))
	now := time.Now().UnixNano()
	if now < e.deadline.Load() {
		return
	}
	if !e.electing.CompareAndSwap(0, 1) {
		return
	}
	if now >= e.deadline.Load() {
		e.publish()
		e.deadline.Store(now + e.interval)
	}
	e.electing.Store(0)
}

// publish computes a snapshot over the current consistent prefix and
// hands it to the Sink, then evaluates the stopping rule. Caller holds
// the electing gate, so buf and last are effectively single-threaded.
func (e *estimator) publish() {
	p := e.min()
	if p <= e.last || p == 0 {
		return
	}
	e.snapshot(p)
	e.last = p
	obs.C("core_estimates_published_total").Inc()
	e.scope.G("job_estimate_chips").Set(float64(p))
	if e.cfg.Sink != nil {
		e.cfg.Sink(&e.buf)
	}
	if e.cfg.TargetCIWidth > 0 && p >= e.cfg.MinChips && p < e.n &&
		e.buf.HalfWidth <= e.cfg.TargetCIWidth {
		e.stopAt.Store(int64(p))
		e.stop.Store(true)
	}
}

// finalize publishes the terminal snapshot over the finished
// population (truncated to the decision frontier when the stopping
// rule fired). It runs after the workers have joined, so there is no
// election to take. Nil-safe.
func (e *estimator) finalize(p int, early bool) {
	if e == nil || p == 0 {
		return
	}
	e.snapshot(p)
	e.buf.EarlyStop = early
	if e.cfg.Sink != nil {
		e.cfg.Sink(&e.buf)
	}
}

// final returns a detached copy of the last snapshot, for entry points
// that hand the caller the end-of-build estimate. Nil-safe (nil when
// estimation is disabled or nothing was measured).
func (e *estimator) final() *YieldEstimate {
	if e == nil || e.buf.Chips == 0 {
		return nil
	}
	f := e.buf
	return &f
}

// snapshot fills the reusable buffer with the estimate over the
// immutable prefix [0, p). Pass 1 accumulates the latency/leakage
// moments and derives provisional limits with exactly the arithmetic
// of stats.MeanStd + DeriveLimits (naive sum / sum-of-squares in chip
// order), so the p == n snapshot reproduces the table limits bit for
// bit; pass 2 classifies each chip under those limits. It allocates
// nothing.
func (e *estimator) snapshot(p int) {
	var s, ss, leakSum float64
	var latM, leakM stats.Moments
	for i := 0; i < p; i++ {
		m := &e.reg[i].Meas
		s += m.LatencyPS
		ss += m.LatencyPS * m.LatencyPS
		leakSum += m.LeakageW
		latM.Add(m.LatencyPS)
		leakM.Add(m.LeakageW)
	}
	n := float64(p)
	mean := s / n
	v := ss/n - mean*mean
	if v < 0 {
		v = 0
	}
	lim := Limits{
		DelayPS:  mean + e.cfg.Constraints.DelaySigmaK*math.Sqrt(v),
		LeakageW: e.cfg.Constraints.LeakageMult * (leakSum / n),
	}

	var pass stats.Tally
	var lost [NumLossReasons]int64
	for i := 0; i < p; i++ {
		r := Classify(e.reg[i].Meas, lim)
		pass.Add(r == LossNone)
		if r != LossNone {
			lost[int(r-LossLeakage)]++
		}
	}

	b := &e.buf
	b.Chips = p
	b.Total = e.n
	b.Confidence = e.cfg.Confidence
	b.Yield = pass.Rate()
	b.Lost = pass.N - pass.K
	b.CILow, b.CIHigh = stats.WilsonInterval(pass.K, pass.N, b.Confidence)
	b.HalfWidth = (b.CIHigh - b.CILow) / 2
	b.Limits = lim
	b.MeanLatencyPS = latM.Mean
	b.StdErrLatencyPS = latM.StdErr()
	b.MeanLeakageW = leakM.Mean
	b.StdErrLeakageW = leakM.StdErr()
	b.EarlyStop = false
	for j := range b.Reasons {
		t := stats.Tally{K: lost[j], N: int64(p)}
		re := &b.Reasons[j]
		re.Reason = LossLeakage + LossReason(j)
		re.Lost = t.K
		re.Share = t.Rate()
		re.CILow, re.CIHigh = stats.WilsonInterval(t.K, t.N, b.Confidence)
	}
}
