package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestPopulationRoundTrip(t *testing.T) {
	orig := BuildPopulation(PopulationConfig{N: 50, Seed: 11, HYAPD: true})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPopulation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != orig.Seed || !got.Model.HYAPD {
		t.Error("metadata lost in round trip")
	}
	if len(got.Chips) != len(orig.Chips) {
		t.Fatalf("chips = %d, want %d", len(got.Chips), len(orig.Chips))
	}
	for i := range got.Chips {
		if got.Chips[i].Meas.LatencyPS != orig.Chips[i].Meas.LatencyPS ||
			got.Chips[i].Meas.LeakageW != orig.Chips[i].Meas.LeakageW {
			t.Fatalf("chip %d altered by round trip", i)
		}
	}
	// The reloaded population supports the full analysis path.
	lim := DeriveLimits(got, Nominal())
	bd := BreakdownLosses(got, lim, Hybrid{})
	if bd.N != 50 {
		t.Error("analysis on reloaded population broken")
	}
}

func TestReadPopulationErrors(t *testing.T) {
	if _, err := ReadPopulation(strings.NewReader("not gob")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadPopulation(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}
