package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestPopulationRoundTrip(t *testing.T) {
	orig := BuildPopulation(PopulationConfig{N: 50, Seed: 11, HYAPD: true})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPopulation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != orig.Seed || !got.Model.HYAPD {
		t.Error("metadata lost in round trip")
	}
	if len(got.Chips) != len(orig.Chips) {
		t.Fatalf("chips = %d, want %d", len(got.Chips), len(orig.Chips))
	}
	for i := range got.Chips {
		if got.Chips[i].Meas.LatencyPS != orig.Chips[i].Meas.LatencyPS ||
			got.Chips[i].Meas.LeakageW != orig.Chips[i].Meas.LeakageW {
			t.Fatalf("chip %d altered by round trip", i)
		}
	}
	// The reloaded population supports the full analysis path.
	lim := DeriveLimits(got, Nominal())
	bd := BreakdownLosses(got, lim, Hybrid{})
	if bd.N != 50 {
		t.Error("analysis on reloaded population broken")
	}
}

func TestReadPopulationErrors(t *testing.T) {
	if _, err := ReadPopulation(strings.NewReader("not gob")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadPopulation(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

// Every way a snapshot can be damaged must fail with an error that
// names the problem, before gob ever touches the bytes.
func TestReadPopulationDescriptiveErrors(t *testing.T) {
	pop := BuildPopulation(PopulationConfig{N: 10, Seed: 5})
	var buf bytes.Buffer
	if err := pop.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	check := func(name string, data []byte, want string) {
		t.Helper()
		_, err := ReadPopulation(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("%s accepted", name)
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("%s: error %q does not mention %q", name, err, want)
		}
	}

	check("truncated header", good[:7], "truncated in header")

	wrongMagic := append([]byte(nil), good...)
	copy(wrongMagic, "NOPE!")
	check("wrong magic", wrongMagic, "magic")

	wrongVersion := append([]byte(nil), good...)
	wrongVersion[5] = 99
	check("wrong version", wrongVersion, "version 99")

	check("truncated payload", good[:len(good)-10], "truncated")

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0x40
	check("payload bit flip", flipped, "checksum")
}
