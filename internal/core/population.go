package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"yieldcache/internal/circuit"
	"yieldcache/internal/obs"
	"yieldcache/internal/sram"
	"yieldcache/internal/variation"
)

// PaperPopulationSize is the number of Monte Carlo chips the paper
// simulates (Section 5.1).
const PaperPopulationSize = 2000

// Chip is one simulated die: its id within the population and its
// evaluated cache.
type Chip struct {
	ID   int
	Meas sram.CacheMeasurement
}

// Population is a Monte Carlo sample of chips evaluated on one cache
// organisation.
type Population struct {
	Chips []Chip
	Model *sram.Model
	Seed  int64

	// Derived columns, computed once on first use. The returned slices
	// are shared: callers must treat them as read-only.
	colOnce sync.Once
	lats    []float64
	leaks   []float64
	leakAvg float64
}

// PopulationConfig parameterises BuildPopulation.
type PopulationConfig struct {
	N       int   // number of chips; 0 means PaperPopulationSize
	Seed    int64 // master seed of the variation sampler
	HYAPD   bool  // evaluate the H-YAPD cache organisation
	Workers int   // parallel evaluation workers; 0 means GOMAXPROCS
	Tech    *circuit.Tech
	Spec    *variation.Spec
	Fact    *variation.Factors
	// Geom overrides the cache geometry; nil (the default) keeps the
	// paper's 16 KB organisation (sram.Paper16KB). Ways must stay within
	// the 2×2 variation mesh (1..4) — geometry sweeps are validated by
	// PlanSweep; direct callers own that invariant.
	Geom *sram.Geometry
	// Checkpoint enables periodic build checkpointing and crash resume;
	// nil (the default) adds nothing to the hot loop.
	Checkpoint *CheckpointConfig
	// Estimate arms streaming yield estimation (live confidence
	// intervals and, optionally, precision-targeted stopping); nil (the
	// default) adds nothing to the hot loop.
	Estimate *EstimateConfig
}

func (c *PopulationConfig) fill() {
	if c.N == 0 {
		c.N = PaperPopulationSize
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.N {
		c.Workers = c.N
	}
	if c.Tech == nil {
		t := circuit.PTM45()
		c.Tech = &t
	}
	if c.Spec == nil {
		s := variation.Nassif45nm()
		c.Spec = &s
	}
	if c.Fact == nil {
		f := variation.PaperFactors()
		c.Fact = &f
	}
}

// BuildPopulation samples and evaluates a chip population. Chip i is a
// pure function of (Seed, i), so the regular and H-YAPD organisations
// built from the same seed see identical process variation draws — the
// paper's "we have applied the same process variation parameters used in
// the previous simulations". Evaluation is parallelised across CPUs;
// the result is independent of the worker count.
func BuildPopulation(cfg PopulationConfig) *Population {
	reg, _, _, _ := buildPopulations(context.Background(), cfg, false)
	return reg
}

// BuildPopulationCtx is BuildPopulation with cancellation: the build
// stops early (returning ctx.Err()) when ctx is cancelled or its
// deadline passes. Long-running callers — the yieldd request path in
// particular — use it to bound the Monte Carlo by a request timeout.
func BuildPopulationCtx(ctx context.Context, cfg PopulationConfig) (*Population, error) {
	reg, _, _, err := buildPopulations(ctx, cfg, false)
	return reg, err
}

// BuildPopulationPair samples every chip's variation tree once and
// measures both cache organisations from the same draws, returning the
// regular and H-YAPD populations. cfg.HYAPD is ignored. The pair is
// bit-identical to two BuildPopulation calls with the same seed, but
// the "same process variation parameters" guarantee holds by
// construction — and the sampling cost is paid once instead of twice.
func BuildPopulationPair(cfg PopulationConfig) (regular, horizontal *Population) {
	regular, horizontal, _, _ = buildPopulations(context.Background(), cfg, true)
	return regular, horizontal
}

// BuildPopulationPairCtx is BuildPopulationPair with cancellation,
// mirroring BuildPopulationCtx.
func BuildPopulationPairCtx(ctx context.Context, cfg PopulationConfig) (regular, horizontal *Population, err error) {
	regular, horizontal, _, err = buildPopulations(ctx, cfg, true)
	return regular, horizontal, err
}

// BuildPopulationPairEstimate is BuildPopulationPairCtx returning the
// final streaming yield estimate alongside the populations. The
// estimate is nil unless cfg.Estimate armed estimation; when its
// EarlyStop field is set, the returned populations are truncated to
// the (batch-aligned, fully measured) prefix at which the precision
// target was met, and every chip in them is bit-identical to the same
// chip of an untruncated build.
func BuildPopulationPairEstimate(ctx context.Context, cfg PopulationConfig) (regular, horizontal *Population, final *YieldEstimate, err error) {
	regular, horizontal, est, err := buildPopulations(ctx, cfg, true)
	if err != nil {
		return nil, nil, nil, err
	}
	return regular, horizontal, est.final(), nil
}

// buildPopulations is the single-pass Monte Carlo engine behind all
// entry points. Each worker owns a variation scratch, a measurement
// evaluator and a stripe of the chip arena, evaluated through the
// structure-of-arrays batch kernel sram.BatchWidth chips at a time, so
// the hot loop performs no heap allocation: way/bank/path measurement
// storage comes from flat arrays sliced up front and draw/factor
// columns live in the evaluator. Cancellation is polled once per batch
// — an atomic flag set by a watcher goroutine, so the hot loop never
// touches the context directly. When ctx carries an obs.Scope (the
// yieldd per-job path), spans land on the scope's tracer instead of the
// global one and the scope's progress counter advances once per batch
// at the same poll point, so a running job can report live chips-done
// counts at no extra hot-loop cost beyond one atomic add.
func buildPopulations(ctx context.Context, cfg PopulationConfig, pair bool) (*Population, *Population, *estimator, error) {
	cfg.fill()
	spanName := "build_population"
	if pair {
		spanName = "build_population/pair"
	} else if cfg.HYAPD {
		spanName = "build_population/hyapd"
	}
	scope := obs.ScopeFrom(ctx)
	scope.SetProgressTotal(int64(cfg.N))
	sp := obs.StartSpanCtx(ctx, spanName)
	defer sp.End()
	begin := time.Now()

	regModel := newModelWithGeom(*cfg.Tech, cfg.HYAPD && !pair, cfg.Geom)
	sampler := variation.NewSampler(*cfg.Spec, *cfg.Fact, cfg.Seed)
	geom := regModel.Geom

	// Cancellation: the workers poll one shared atomic per chip instead
	// of selecting on ctx.Done() in the hot loop. Started before the
	// arenas so that their setup loops (millions of slice-header writes
	// for large N) can poll it too.
	var cancelled atomic.Bool
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				cancelled.Store(true)
			case <-stop:
			}
		}()
	}

	regChips := newChipArena(cfg.N, geom, &cancelled)
	var horChips []Chip
	var horModel *sram.Model
	if pair {
		horModel = newModelWithGeom(*cfg.Tech, true, cfg.Geom)
		horChips = newChipArena(cfg.N, geom, &cancelled)
	}
	if cancelled.Load() {
		obs.C("core_population_builds_cancelled_total").Inc()
		return nil, nil, nil, ctx.Err()
	}

	// Resume: seed the arena with a checkpointed prefix. Chip i is a
	// pure function of (Seed, i), so measurement restarting at base
	// yields chips bit-identical to an uninterrupted run.
	base := 0
	if cfg.Checkpoint != nil && cfg.Checkpoint.Resume != nil {
		r := cfg.Checkpoint.Resume
		if err := validateResume(r, &cfg, pair, geom); err != nil {
			return nil, nil, nil, err
		}
		for i := 0; i < r.Done; i++ {
			copyMeasInto(&regChips[i].Meas, &r.Regular[i].Meas)
			if pair {
				copyMeasInto(&horChips[i].Meas, &r.Horizontal[i].Meas)
			}
		}
		base = r.Done
		scope.AddProgress(int64(base))
		obs.C("core_builds_resumed_total").Inc()
	}

	workers := cfg.Workers
	ckp := newCheckpointer(cfg.Checkpoint, base, cfg.N, workers, pair, &cfg, geom, regChips, horChips, scope)
	est := newEstimator(cfg.Estimate, base, cfg.N, workers, regChips, scope)
	workerSec := obs.H("core_population_worker_seconds", obs.ExpBuckets(1e-4, 4, 10))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w, start int) {
			defer wg.Done()
			ws := sp.Worker("measure_chips", start)
			t0 := time.Now()
			ev := regModel.NewEvaluator(sampler.NewScratch())
			defer ev.Release()
			// The worker walks its stripe (start, start+W, …) in batches
			// of up to sram.BatchWidth chips through the SoA kernel.
			// Chip values are a pure function of (Seed, id), so the
			// batching — like the striping — cannot change any result.
			// Cancellation is polled and the checkpoint frontier is
			// published at batch boundaries only, keeping the frontier
			// batch-aligned: a checkpointed prefix never splits a batch.
			var ids [sram.BatchWidth]int
			var regV, horV [sram.BatchWidth]*sram.CacheMeasurement
			for i := start; i < cfg.N; {
				if cancelled.Load() || est.stopped() {
					break
				}
				bn, last := 0, i
				for ; bn < sram.BatchWidth && i < cfg.N; i += workers {
					ids[bn] = i
					regV[bn] = &regChips[i].Meas
					if pair {
						horV[bn] = &horChips[i].Meas
					}
					last = i
					bn++
				}
				if pair {
					ev.MeasurePairBatch(ids[:bn], regV[:bn], horV[:bn])
				} else {
					ev.MeasureBatch(ids[:bn], regV[:bn])
				}
				scope.AddProgress(int64(bn))
				if ckp != nil {
					ckp.advance(w, last, workers)
				}
				est.advance(w, last, workers)
			}
			workerSec.Observe(time.Since(t0).Seconds())
			ws.End()
		}(w, base+w)
	}
	wg.Wait()
	ckp.close()
	if err := ctx.Err(); err != nil {
		obs.C("core_population_builds_cancelled_total").Inc()
		return nil, nil, nil, err
	}

	// Precision-targeted stop: truncate to the exact batch-aligned
	// frontier at which the stopping rule fired, so the final
	// population — and every statistic derived from it — is the prefix
	// the decision was made on (final CI half-width <= target by
	// construction). Workers may have measured a few batches past the
	// frontier between the decision and their next poll; those chips
	// are discarded, keeping the result a pure function of the decision
	// frontier rather than of scheduling luck. The truncation happens
	// at the Population literals below rather than by reassigning
	// regChips/horChips — a reassignment after the workers captured the
	// slices would force their headers onto the heap and cost the
	// disabled path an allocation.
	built := cfg.N
	early := false
	if p := est.stopPrefix(); p > 0 {
		built = p
		early = true
		done, _ := scope.Progress()
		scope.SetProgressTotal(done)
		obs.C("core_builds_early_stopped_total").Inc()
	}
	est.finalize(built, early)

	measured := built
	if pair {
		measured *= 2
	}
	elapsed := time.Since(begin).Seconds()
	obs.C("core_chips_built_total").Add(int64(measured))
	obs.G("core_population_build_seconds").Set(elapsed)
	if elapsed > 0 {
		obs.G("core_population_chips_per_second").Set(float64(measured) / elapsed)
		scope.G("job_chips_per_second").Set(float64(measured) / elapsed)
	}
	scope.C("job_chips_built_total").Add(int64(measured))
	scope.G("job_build_seconds").Set(elapsed)
	reg := &Population{Chips: regChips[:built], Model: regModel, Seed: cfg.Seed}
	if !pair {
		return reg, nil, est, nil
	}
	return reg, &Population{Chips: horChips[:built], Model: horModel, Seed: cfg.Seed}, est, nil
}

// newModelWithGeom builds an sram.Model and, when g is non-nil,
// replaces the default paper geometry. The measurement kernel is fully
// geometry-generic; only the variation mesh caps Ways at 4.
func newModelWithGeom(tech circuit.Tech, hyapd bool, g *sram.Geometry) *sram.Model {
	m := sram.NewModel(tech, hyapd)
	if g != nil {
		m.Geom = *g
	}
	return m
}

// newChipArena allocates a chip slice whose per-chip measurement slices
// all come from three flat backing arrays, pre-sized by sram.Prepare.
// Full-capacity slice expressions keep a chip's append (which never
// happens in practice) from bleeding into its neighbour. The setup loop
// polls cancelled periodically and returns the partially wired arena —
// the caller checks cancellation itself before using it.
func newChipArena(n int, g Geometry, cancelled *atomic.Bool) []Chip {
	chips := make([]Chip, n)
	ways := make([]sram.WayMeasurement, n*g.Ways)
	banks := make([]sram.BankMeasurement, n*g.Ways*g.BanksPerWay)
	paths := make([]sram.PathMeasurement, n*g.Ways*g.BanksPerWay*g.PathsPerBank)
	for i := range chips {
		if i&4095 == 0 && cancelled.Load() {
			return chips
		}
		chips[i].ID = i
		chips[i].Meas.Ways = ways[i*g.Ways : (i+1)*g.Ways : (i+1)*g.Ways]
		for w := range chips[i].Meas.Ways {
			bo := (i*g.Ways + w) * g.BanksPerWay
			chips[i].Meas.Ways[w].Banks = banks[bo : bo+g.BanksPerWay : bo+g.BanksPerWay]
			for b := range chips[i].Meas.Ways[w].Banks {
				po := (bo + b) * g.PathsPerBank
				chips[i].Meas.Ways[w].Banks[b].Paths = paths[po : po+g.PathsPerBank : po+g.PathsPerBank]
			}
		}
	}
	return chips
}

// Geometry is re-exported for arena sizing.
type Geometry = sram.Geometry

// columns computes the latency and leakage columns once. Populations
// read from persisted files (or built by literal construction in tests)
// memoize lazily too, so the sync.Once lives on the Population itself.
func (p *Population) columns() {
	p.colOnce.Do(func() {
		p.lats = make([]float64, len(p.Chips))
		p.leaks = make([]float64, len(p.Chips))
		sum := 0.0
		for i := range p.Chips {
			p.lats[i] = p.Chips[i].Meas.LatencyPS
			p.leaks[i] = p.Chips[i].Meas.LeakageW
			sum += p.leaks[i]
		}
		if len(p.Chips) > 0 {
			p.leakAvg = sum / float64(len(p.Chips))
		}
	})
}

// Latencies returns the cache access latency of every chip. The slice
// is computed once and shared across calls: treat it as read-only.
func (p *Population) Latencies() []float64 {
	p.columns()
	return p.lats
}

// Leakages returns the total cache leakage of every chip. The slice is
// computed once and shared across calls: treat it as read-only.
func (p *Population) Leakages() []float64 {
	p.columns()
	return p.leaks
}

// ScatterPoint is one chip of the Figure 8 scatter plot.
type ScatterPoint struct {
	LatencyPS         float64
	NormalizedLeakage float64 // leakage / population average
	Reason            LossReason
}

// Scatter returns the Figure 8 data: latency versus leakage normalised
// to the population average, with each chip's loss classification under
// the given limits.
func (p *Population) Scatter(lim Limits) []ScatterPoint {
	p.columns()
	pts := make([]ScatterPoint, len(p.Chips))
	for i, c := range p.Chips {
		pts[i] = ScatterPoint{
			LatencyPS:         c.Meas.LatencyPS,
			NormalizedLeakage: p.leaks[i] / p.leakAvg,
			Reason:            Classify(c.Meas, lim),
		}
	}
	return pts
}
