package core

import (
	"runtime"
	"sync"
	"time"

	"yieldcache/internal/circuit"
	"yieldcache/internal/obs"
	"yieldcache/internal/sram"
	"yieldcache/internal/variation"
)

// PaperPopulationSize is the number of Monte Carlo chips the paper
// simulates (Section 5.1).
const PaperPopulationSize = 2000

// Chip is one simulated die: its id within the population and its
// evaluated cache.
type Chip struct {
	ID   int
	Meas sram.CacheMeasurement
}

// Population is a Monte Carlo sample of chips evaluated on one cache
// organisation.
type Population struct {
	Chips []Chip
	Model *sram.Model
	Seed  int64
}

// PopulationConfig parameterises BuildPopulation.
type PopulationConfig struct {
	N     int   // number of chips; 0 means PaperPopulationSize
	Seed  int64 // master seed of the variation sampler
	HYAPD bool  // evaluate the H-YAPD cache organisation
	Tech  *circuit.Tech
	Spec  *variation.Spec
	Fact  *variation.Factors
}

func (c *PopulationConfig) fill() {
	if c.N == 0 {
		c.N = PaperPopulationSize
	}
	if c.Tech == nil {
		t := circuit.PTM45()
		c.Tech = &t
	}
	if c.Spec == nil {
		s := variation.Nassif45nm()
		c.Spec = &s
	}
	if c.Fact == nil {
		f := variation.PaperFactors()
		c.Fact = &f
	}
}

// BuildPopulation samples and evaluates a chip population. Chip i is a
// pure function of (Seed, i), so the regular and H-YAPD organisations
// built from the same seed see identical process variation draws — the
// paper's "we have applied the same process variation parameters used in
// the previous simulations". Evaluation is parallelised across CPUs.
func BuildPopulation(cfg PopulationConfig) *Population {
	cfg.fill()
	spanName := "build_population"
	if cfg.HYAPD {
		spanName = "build_population/hyapd"
	}
	sp := obs.StartSpan(spanName)
	defer sp.End()
	begin := time.Now()

	model := sram.NewModel(*cfg.Tech, cfg.HYAPD)
	sampler := variation.NewSampler(*cfg.Spec, *cfg.Fact, cfg.Seed)

	chips := make([]Chip, cfg.N)
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.N {
		workers = cfg.N
	}
	workerSec := obs.H("core_population_worker_seconds", obs.ExpBuckets(1e-4, 4, 10))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			ws := sp.Worker("measure_chips", start)
			t0 := time.Now()
			for i := start; i < cfg.N; i += workers {
				chips[i] = Chip{ID: i, Meas: model.Measure(sampler.Chip(i))}
			}
			workerSec.Observe(time.Since(t0).Seconds())
			ws.End()
		}(w)
	}
	wg.Wait()

	elapsed := time.Since(begin).Seconds()
	obs.C("core_chips_built_total").Add(int64(cfg.N))
	obs.G("core_population_build_seconds").Set(elapsed)
	if elapsed > 0 {
		obs.G("core_population_chips_per_second").Set(float64(cfg.N) / elapsed)
	}
	return &Population{Chips: chips, Model: model, Seed: cfg.Seed}
}

// Latencies returns the cache access latency of every chip.
func (p *Population) Latencies() []float64 {
	out := make([]float64, len(p.Chips))
	for i, c := range p.Chips {
		out[i] = c.Meas.LatencyPS
	}
	return out
}

// Leakages returns the total cache leakage of every chip.
func (p *Population) Leakages() []float64 {
	out := make([]float64, len(p.Chips))
	for i, c := range p.Chips {
		out[i] = c.Meas.LeakageW
	}
	return out
}

// ScatterPoint is one chip of the Figure 8 scatter plot.
type ScatterPoint struct {
	LatencyPS         float64
	NormalizedLeakage float64 // leakage / population average
	Reason            LossReason
}

// Scatter returns the Figure 8 data: latency versus leakage normalised
// to the population average, with each chip's loss classification under
// the given limits.
func (p *Population) Scatter(lim Limits) []ScatterPoint {
	leaks := p.Leakages()
	avg := 0.0
	for _, l := range leaks {
		avg += l
	}
	avg /= float64(len(leaks))
	pts := make([]ScatterPoint, len(p.Chips))
	for i, c := range p.Chips {
		pts[i] = ScatterPoint{
			LatencyPS:         c.Meas.LatencyPS,
			NormalizedLeakage: leaks[i] / avg,
			Reason:            Classify(c.Meas, lim),
		}
	}
	return pts
}
