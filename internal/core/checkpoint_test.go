package core

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// chipsEqual compares two populations chip by chip on the measurement
// fields the analysis consumes; used to assert bit-identical resumes.
func chipsEqual(t *testing.T, label string, a, b *Population) {
	t.Helper()
	if len(a.Chips) != len(b.Chips) {
		t.Fatalf("%s: %d chips vs %d", label, len(a.Chips), len(b.Chips))
	}
	for i := range a.Chips {
		ma, mb := &a.Chips[i].Meas, &b.Chips[i].Meas
		if ma.LatencyPS != mb.LatencyPS || ma.LeakageW != mb.LeakageW {
			t.Fatalf("%s: chip %d differs: latency %v vs %v, leakage %v vs %v",
				label, i, ma.LatencyPS, mb.LatencyPS, ma.LeakageW, mb.LeakageW)
		}
		for w := range ma.Ways {
			wa, wb := &ma.Ways[w], &mb.Ways[w]
			if wa.LatencyPS != wb.LatencyPS || wa.LeakageW != wb.LeakageW {
				t.Fatalf("%s: chip %d way %d differs", label, i, w)
			}
		}
	}
}

// A build resumed from a mid-flight checkpoint must produce populations
// bit-identical to an uninterrupted run with the same seed — the
// acceptance bar for crash recovery.
func TestResumeFromCheckpointBitIdentical(t *testing.T) {
	const n, seed = 120, 2006
	wantReg, wantHor := BuildPopulationPair(PopulationConfig{N: n, Seed: seed})

	// Capture checkpoints from an instrumented build.
	var mu sync.Mutex
	var last *BuildCheckpoint
	cfg := PopulationConfig{N: n, Seed: seed, Workers: 4, Checkpoint: &CheckpointConfig{
		Interval: time.Millisecond,
		Sink: func(bc *BuildCheckpoint) error {
			// Deep-copy through the wire format, exactly like the server:
			// the in-memory checkpoint aliases the build arena.
			var buf bytes.Buffer
			if err := bc.Encode(&buf); err != nil {
				return err
			}
			dec, err := DecodeBuildCheckpoint(&buf)
			if err != nil {
				return err
			}
			mu.Lock()
			// Keep the newest strictly-mid-build checkpoint: the final
			// tick can land after every chip finished, and resuming from
			// a complete prefix would not exercise the rebuild tail.
			if dec.Done < n && (last == nil || dec.Done > last.Done) {
				last = dec
			}
			mu.Unlock()
			return nil
		},
	}}
	reg, hor, err := BuildPopulationPairCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	chipsEqual(t, "instrumented regular", reg, wantReg)
	chipsEqual(t, "instrumented horizontal", hor, wantHor)

	mu.Lock()
	ck := last
	mu.Unlock()
	if ck == nil {
		// Build finished between ticks; force a checkpoint by hand from
		// the uninterrupted run's prefix so the resume path still runs.
		ck = &BuildCheckpoint{
			Seed: seed, N: n, Done: n / 3, Pair: true,
			Tech: wantReg.Model.Tech, Geom: wantReg.Model.Geom,
			Regular:    wantReg.Chips[:n/3],
			Horizontal: wantHor.Chips[:n/3],
		}
	}
	if ck.Done == 0 || ck.Done >= n {
		t.Fatalf("checkpoint frontier %d of %d is not mid-build", ck.Done, n)
	}

	// Resume: the prefix comes from the checkpoint, the rest rebuilds.
	reg2, hor2, err := BuildPopulationPairCtx(context.Background(), PopulationConfig{
		N: n, Seed: seed, Workers: 2, // different worker count on purpose
		Checkpoint: &CheckpointConfig{Resume: ck},
	})
	if err != nil {
		t.Fatal(err)
	}
	chipsEqual(t, "resumed regular", reg2, wantReg)
	chipsEqual(t, "resumed horizontal", hor2, wantHor)
}

// A checkpoint from a different build must be refused, not silently
// blended into the wrong population.
func TestResumeValidatesProvenance(t *testing.T) {
	const n, seed = 40, 7
	reg, hor := BuildPopulationPair(PopulationConfig{N: n, Seed: seed})
	good := &BuildCheckpoint{
		Seed: seed, N: n, Done: 10, Pair: true,
		Tech: reg.Model.Tech, Geom: reg.Model.Geom,
		Regular: reg.Chips[:10], Horizontal: hor.Chips[:10],
	}

	cases := []struct {
		name   string
		mutate func(c *BuildCheckpoint)
		want   string
	}{
		{"wrong seed", func(c *BuildCheckpoint) { c.Seed = 999 }, "seed"},
		{"wrong n", func(c *BuildCheckpoint) { c.N = n + 1 }, "chips"},
		{"wrong mode", func(c *BuildCheckpoint) { c.Pair = false }, "pair"},
		{"wrong geometry", func(c *BuildCheckpoint) { c.Geom.Ways = 99 }, "geometry"},
		{"wrong tech", func(c *BuildCheckpoint) { c.Tech.Vdd = 9.9 }, "technology"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := *good
			tc.mutate(&bad)
			_, _, err := BuildPopulationPairCtx(context.Background(), PopulationConfig{
				N: n, Seed: seed, Checkpoint: &CheckpointConfig{Resume: &bad},
			})
			if err == nil {
				t.Fatal("mismatched checkpoint accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the %s mismatch", err, tc.want)
			}
		})
	}
}

// The checkpoint wire format round-trips and rejects damage with
// descriptive errors.
func TestCheckpointEncodeDecode(t *testing.T) {
	const n, seed = 30, 3
	reg, hor := BuildPopulationPair(PopulationConfig{N: n, Seed: seed})
	ck := &BuildCheckpoint{
		Seed: seed, N: n, Done: n, Pair: true,
		Tech: reg.Model.Tech, Geom: reg.Model.Geom,
		Regular: reg.Chips, Horizontal: hor.Chips,
	}
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBuildCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Done != n || got.Seed != seed || len(got.Regular) != n || len(got.Horizontal) != n {
		t.Fatalf("round trip mangled the checkpoint: %+v", got)
	}
	for i := range got.Regular {
		if got.Regular[i].Meas.LatencyPS != reg.Chips[i].Meas.LatencyPS {
			t.Fatalf("chip %d latency changed in round trip", i)
		}
	}

	// Inconsistent frontier: Done beyond the stored prefix.
	bad := *ck
	bad.Done = n + 5
	bad.N = n + 10
	buf.Reset()
	if err := bad.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBuildCheckpoint(&buf); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Errorf("inconsistent checkpoint: err = %v, want named inconsistency", err)
	}

	// A population file is not a checkpoint.
	buf.Reset()
	if err := reg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBuildCheckpoint(&buf); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("population file decoded as checkpoint: err = %v", err)
	}
}
