package core

import (
	"context"
	"sync"
	"testing"

	"yieldcache/internal/circuit"
	"yieldcache/internal/sram"
)

func TestTechParamRegistry(t *testing.T) {
	names := TechParamNames()
	if len(names) != 11 {
		t.Fatalf("expected 11 sweepable tech parameters, got %d: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("TechParamNames not sorted: %v", names)
		}
	}
	tech := circuit.PTM45()
	if err := SetTechParam(&tech, "vdd", 1.23); err != nil {
		t.Fatal(err)
	}
	if tech.Vdd != 1.23 {
		t.Fatalf("SetTechParam(vdd) = %v", tech.Vdd)
	}
	if err := SetTechParam(&tech, "nope", 1); err == nil {
		t.Fatal("unknown parameter accepted")
	}
}

func TestPlanSweepValidation(t *testing.T) {
	bad := []SweepSpec{
		{Axes: []TechAxis{{Param: "nope", Values: []float64{1}}}},
		{Axes: []TechAxis{{Param: "vdd", Values: nil}}},
		{Axes: []TechAxis{
			{Param: "vdd", Values: []float64{1}},
			{Param: "vdd", Values: []float64{1.1}},
		}},
		{Constraints: []Constraints{{Name: "zero-k", DelaySigmaK: 0, LeakageMult: 3}}},
		{Geometries: []sram.Geometry{{Ways: 5, BanksPerWay: 4, RowsPerBank: 64, BitsPerRow: 128, PathsPerBank: 4}}},
		{Geometries: []sram.Geometry{{Ways: 2, BanksPerWay: 0, RowsPerBank: 64, BitsPerRow: 128, PathsPerBank: 4}}},
	}
	for i, spec := range bad {
		if _, err := PlanSweep(spec); err == nil {
			t.Errorf("spec %d accepted, want error", i)
		}
	}
}

// TestPlanSweepOrderingAndReuse is the planner contract: the cluster
// base is the grid origin (its unit is a zero-cost copy build),
// identical grid points deduplicate into one unit, constraint sets
// share units, and units evaluate cheapest-delta-first.
func TestPlanSweepOrderingAndReuse(t *testing.T) {
	base := circuit.PTM45()
	spec := SweepSpec{
		N:    8,
		Seed: 2006,
		Axes: []TechAxis{
			// Origin value first; the duplicate 1.25 exercises dedup.
			{Param: "cell_leakage", Values: []float64{base.CellLeakage, base.CellLeakage * 1.25, base.CellLeakage * 1.25}},
			{Param: "alpha", Values: []float64{base.Alpha, 1.25}},
		},
		Constraints: []Constraints{Nominal(), Strict()},
	}
	plan, err := PlanSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(plan.Configs), 3*2*2; got != want {
		t.Fatalf("configs = %d, want %d", got, want)
	}
	if len(plan.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(plan.Clusters))
	}
	cl := plan.Clusters[0]
	if cl.Base != base {
		t.Fatalf("cluster base is not the grid origin: %+v", cl.Base)
	}
	// 3×2 grid points but only 2×2 distinct techs after dedup.
	if got, want := len(cl.Units), 4; got != want {
		t.Fatalf("units = %d, want %d after dedup", got, want)
	}
	if cl.Units[0].Parts.Any() {
		t.Fatalf("first unit should be the zero-cost origin copy, got parts %+v", cl.Units[0].Parts)
	}
	for i := 1; i < len(cl.Units); i++ {
		if deltaClass(cl.Units[i-1].Parts) > deltaClass(cl.Units[i].Parts) {
			t.Fatalf("units not in cheapest-delta-first order at %d: %+v then %+v",
				i, cl.Units[i-1].Parts, cl.Units[i].Parts)
		}
	}
	// Every config appears in exactly one unit.
	seen := make(map[int]bool)
	for _, u := range cl.Units {
		for _, idx := range u.Configs {
			if seen[idx] {
				t.Fatalf("config %d planned twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != len(plan.Configs) {
		t.Fatalf("planned %d of %d configs", len(seen), len(plan.Configs))
	}
	st := plan.Stats()
	if st.FullBuilds != 1 || st.CopyBuilds < 1 {
		t.Fatalf("stats = %+v, want 1 full build and ≥1 copy build", st)
	}
	// The duplicated grid point and the extra constraint set both show
	// up as shared evaluations: 12 configs over 4 population builds.
	if want := len(plan.Configs) - 4; st.SharedEvals != want {
		t.Fatalf("shared evals = %d, want %d", st.SharedEvals, want)
	}
	if st.DeltaBuilds+st.CopyBuilds != 4 {
		t.Fatalf("builds don't cover units: %+v", st)
	}
}

// sweepTestSpec is a 2-parameter tech grid × 2 constraint sets used by
// the identity and resume tests.
func sweepTestSpec(n int) SweepSpec {
	base := circuit.PTM45()
	return SweepSpec{
		N:    n,
		Seed: 2006,
		Axes: []TechAxis{
			{Param: "cell_leakage", Values: []float64{base.CellLeakage, base.CellLeakage * 1.25}},
			{Param: "alpha", Values: []float64{base.Alpha, 1.30}},
		},
		Constraints: []Constraints{Nominal(), Strict()},
	}
}

// TestRunSweepBitIdenticalToFullBuilds is the sweep acceptance
// criterion: every evaluation of a planned sweep must equal — bit for
// bit — the evaluation of an independently built population pair at
// that config.
func TestRunSweepBitIdenticalToFullBuilds(t *testing.T) {
	spec := sweepTestSpec(2*sram.BatchWidth + 3)
	plan, err := PlanSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	evals, err := RunSweep(context.Background(), plan, SweepRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	schemes := DefaultSweepSchemes()
	for _, ev := range evals {
		cfg := ev.Config
		tech := cfg.Tech
		geom := cfg.Geometry
		reg, _ := BuildPopulationPair(PopulationConfig{
			N: plan.Spec.N, Seed: plan.Spec.Seed, Tech: &tech, Geom: &geom,
		})
		want := evalSweepConfig(cfg, reg, schemes)
		if ev.Limits != want.Limits {
			t.Fatalf("config %d (%s): limits %+v != independent %+v", cfg.Index, cfg.Label(), ev.Limits, want.Limits)
		}
		if ev.BaseYield != want.BaseYield || ev.BaseLost != want.BaseLost {
			t.Fatalf("config %d: base yield %v/%d != %v/%d", cfg.Index, ev.BaseYield, ev.BaseLost, want.BaseYield, want.BaseLost)
		}
		if ev.MeanLatencyPS != want.MeanLatencyPS || ev.MeanLeakageW != want.MeanLeakageW {
			t.Fatalf("config %d: means (%v, %v) != (%v, %v)", cfg.Index,
				ev.MeanLatencyPS, ev.MeanLeakageW, want.MeanLatencyPS, want.MeanLeakageW)
		}
		for i := range ev.Yields {
			if ev.Yields[i] != want.Yields[i] {
				t.Fatalf("config %d scheme %s: %+v != %+v", cfg.Index, ev.Yields[i].Scheme, ev.Yields[i], want.Yields[i])
			}
		}
	}
}

// TestRunSweepSkipResume checks the resume contract: skipped configs
// come back zero-valued with Skipped set, and the re-evaluated rest is
// bit-identical to an uninterrupted run.
func TestRunSweepSkipResume(t *testing.T) {
	spec := sweepTestSpec(sram.BatchWidth + 1)
	plan, err := PlanSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunSweep(context.Background(), plan, SweepRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := RunSweep(context.Background(), plan, SweepRunOptions{
		Skip: func(idx int) bool { return idx%2 == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range resumed {
		if i%2 == 0 {
			if !resumed[i].Skipped {
				t.Fatalf("config %d not marked skipped", i)
			}
			continue
		}
		if resumed[i].Skipped {
			t.Fatalf("config %d wrongly skipped", i)
		}
		if resumed[i].BaseYield != full[i].BaseYield ||
			resumed[i].MeanLatencyPS != full[i].MeanLatencyPS ||
			resumed[i].MeanLeakageW != full[i].MeanLeakageW ||
			resumed[i].Limits != full[i].Limits {
			t.Fatalf("config %d differs after resume: %+v != %+v", i, resumed[i], full[i])
		}
	}
}

// TestRunSweepGeometryCluster sweeps two geometries and checks that a
// down-sized organisation evaluates identically to a direct build with
// the geometry override.
func TestRunSweepGeometryCluster(t *testing.T) {
	small := sram.Geometry{Ways: 2, BanksPerWay: 2, RowsPerBank: 32, BitsPerRow: 64, PathsPerBank: 2}
	spec := SweepSpec{
		N:          sram.BatchWidth + 2,
		Seed:       7,
		Geometries: []sram.Geometry{sram.Paper16KB(), small},
	}
	plan, err := PlanSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(plan.Clusters))
	}
	evals, err := RunSweep(context.Background(), plan, SweepRunOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evals {
		if ev.Config.Geometry != small {
			continue
		}
		tech := ev.Config.Tech
		geom := ev.Config.Geometry
		reg, _ := BuildPopulationPair(PopulationConfig{N: plan.Spec.N, Seed: plan.Spec.Seed, Tech: &tech, Geom: &geom})
		if len(reg.Chips[0].Meas.Ways) != small.Ways {
			t.Fatalf("geometry override ignored: %d ways", len(reg.Chips[0].Meas.Ways))
		}
		want := evalSweepConfig(ev.Config, reg, DefaultSweepSchemes())
		if ev.MeanLatencyPS != want.MeanLatencyPS || ev.BaseYield != want.BaseYield {
			t.Fatalf("small-geometry eval differs: %+v != %+v", ev, want)
		}
	}
}

func TestRunSweepOnEvalProgress(t *testing.T) {
	spec := sweepTestSpec(sram.BatchWidth)
	plan, err := PlanSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	calls := 0
	maxDone := 0
	evals, err := RunSweep(context.Background(), plan, SweepRunOptions{
		OnEval: func(ev SweepEval, done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if done > maxDone {
				maxDone = done
			}
			if total != len(plan.Configs) {
				t.Errorf("total = %d, want %d", total, len(plan.Configs))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(plan.Configs) || maxDone != len(plan.Configs) {
		t.Fatalf("OnEval calls = %d, max done = %d, want %d", calls, maxDone, len(plan.Configs))
	}
	for i, ev := range evals {
		if ev.Config.Index != i {
			t.Fatalf("eval %d carries config index %d", i, ev.Config.Index)
		}
	}
}

func TestRunSweepCancellation(t *testing.T) {
	spec := sweepTestSpec(4 * sram.BatchWidth)
	plan, err := PlanSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSweep(ctx, plan, SweepRunOptions{}); err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
}

// TestParetoFrontierFixture is the hand-built 3-config reduction
// check: A dominates C outright, B trades yield for latency and power,
// so the frontier is exactly {A, B}.
func TestParetoFrontierFixture(t *testing.T) {
	pts := []ParetoPoint{
		{Yield: 0.90, LatencyPS: 100, LeakageW: 1.00}, // A
		{Yield: 0.80, LatencyPS: 90, LeakageW: 0.90},  // B: worse yield, better perf+power
		{Yield: 0.70, LatencyPS: 110, LeakageW: 1.10}, // C: dominated by A
	}
	got := ParetoFrontier(pts)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("frontier = %v, want [0 1]", got)
	}

	// Exactly equal points don't dominate each other: both stay.
	ties := []ParetoPoint{
		{Yield: 0.9, LatencyPS: 100, LeakageW: 1},
		{Yield: 0.9, LatencyPS: 100, LeakageW: 1},
	}
	if got := ParetoFrontier(ties); len(got) != 2 {
		t.Fatalf("tie frontier = %v, want both points", got)
	}

	// Strict dominance on one axis with equality on the rest dominates.
	edge := []ParetoPoint{
		{Yield: 0.9, LatencyPS: 100, LeakageW: 1},
		{Yield: 0.9, LatencyPS: 100, LeakageW: 1.01},
	}
	if got := ParetoFrontier(edge); len(got) != 1 || got[0] != 0 {
		t.Fatalf("edge frontier = %v, want [0]", got)
	}
}

func TestSweepFrontiers(t *testing.T) {
	mk := func(idx int, baseY, y, lat, leak float64) SweepEval {
		return SweepEval{
			Config:        SweepConfig{Index: idx},
			BaseYield:     baseY,
			MeanLatencyPS: lat,
			MeanLeakageW:  leak,
			Yields:        []SchemeYield{{Scheme: "YAPD", Yield: y}},
		}
	}
	evals := []SweepEval{
		mk(0, 0.5, 0.9, 100, 1.0),
		mk(1, 0.6, 0.7, 100, 1.0), // base-better, scheme-worse than 0
	}
	fr := SweepFrontiers(evals)
	if got := fr["Base"]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("base frontier = %v, want [1]", got)
	}
	if got := fr["YAPD"]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("YAPD frontier = %v, want [0]", got)
	}
	if len(SweepFrontiers(nil)) != 0 {
		t.Fatal("empty evals should reduce to no frontiers")
	}
}
