package core

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"yieldcache/internal/obs"
)

// goldenChip pins a chip's measurement to hex-exact values captured
// from the pre-refactor tree-based double-build path (seed 2006,
// N=200). The single-pass shared-draw builder must reproduce them bit
// for bit — the acceptance bar of the paper-reproduction tables.
type goldenChip struct {
	id              int
	regLat, regLeak float64
	horLat, horLeak float64
}

var golden2006 = []goldenChip{
	{0, 0x1.99af714dfd98p+09, 0x1.fca893c3e8454p-06, 0x1.a3ed6dbcbd889p+09, 0x1.fca893c3e8454p-06},
	{1, 0x1.40d260d7f441cp+10, 0x1.92c3d59942c6dp-07, 0x1.48d7a343c0c36p+10, 0x1.92c3d59942c6dp-07},
	{7, 0x1.5659a78c88a0ep+09, 0x1.3b4886deda06ap-05, 0x1.5ee8b2233f3e7p+09, 0x1.3b4886deda06ap-05},
	{63, 0x1.58e024849b3d9p+09, 0x1.b5dc87dced15dp-05, 0x1.617f58a185857p+09, 0x1.b5dc87dced15dp-05},
	{199, 0x1.df7828535d874p+09, 0x1.dd32ee5111516p-06, 0x1.eb74c2ef0caa9p+09, 0x1.dd32ee5111516p-06},
}

const (
	goldenRegLatSum  = 0x1.312d5bb4e55e8p+17
	goldenRegLeakSum = 0x1.79aefc7f957cap+03
	goldenHorLatSum  = 0x1.38ce7dffd1812p+17
	goldenHorLeakSum = 0x1.79aefc7f957cap+03
	goldenLimDelay   = 0x1.e5ca3362b807ap+09
	goldenLimLeak    = 0x1.6a9381c2291b8p-03
)

func hexEq(t *testing.T, what string, got, want float64) {
	t.Helper()
	if got != want {
		t.Errorf("%s = %x (%.17g), want %x", what, got, got, want)
	}
}

// TestGoldenSeed2006 is the bit-identity regression for the single-pass
// builder: spot chips, population sums, derived limits and the Table 2
// loss breakdown must all match the values the old double-build path
// produced for seed 2006.
func TestGoldenSeed2006(t *testing.T) {
	reg, hor := BuildPopulationPair(PopulationConfig{N: 200, Seed: 2006})
	for _, g := range golden2006 {
		hexEq(t, "reg lat", reg.Chips[g.id].Meas.LatencyPS, g.regLat)
		hexEq(t, "reg leak", reg.Chips[g.id].Meas.LeakageW, g.regLeak)
		hexEq(t, "hor lat", hor.Chips[g.id].Meas.LatencyPS, g.horLat)
		hexEq(t, "hor leak", hor.Chips[g.id].Meas.LeakageW, g.horLeak)
	}
	var rl, rk, hl, hk float64
	for i := range reg.Chips {
		rl += reg.Chips[i].Meas.LatencyPS
		rk += reg.Chips[i].Meas.LeakageW
		hl += hor.Chips[i].Meas.LatencyPS
		hk += hor.Chips[i].Meas.LeakageW
	}
	hexEq(t, "reg lat sum", rl, goldenRegLatSum)
	hexEq(t, "reg leak sum", rk, goldenRegLeakSum)
	hexEq(t, "hor lat sum", hl, goldenHorLatSum)
	hexEq(t, "hor leak sum", hk, goldenHorLeakSum)

	lim := DeriveLimits(reg, Nominal())
	hexEq(t, "limit delay", lim.DelayPS, goldenLimDelay)
	hexEq(t, "limit leak", lim.LeakageW, goldenLimLeak)

	bd := BreakdownLosses(reg, lim, YAPD{}, VACA{}, Hybrid{})
	if bd.BaseTotal != 35 || bd.Schemes[0].Total != 13 || bd.Schemes[1].Total != 14 || bd.Schemes[2].Total != 3 {
		t.Errorf("loss breakdown = base %d yapd %d vaca %d hybrid %d, want 35/13/14/3",
			bd.BaseTotal, bd.Schemes[0].Total, bd.Schemes[1].Total, bd.Schemes[2].Total)
	}
}

// TestPairMatchesDoubleBuild checks that one shared-draw pair build
// equals two independent single builds chip for chip, for both
// organisations.
func TestPairMatchesDoubleBuild(t *testing.T) {
	cfg := PopulationConfig{N: 64, Seed: 41}
	reg, hor := BuildPopulationPair(cfg)
	wantReg := BuildPopulation(PopulationConfig{N: 64, Seed: 41})
	wantHor := BuildPopulation(PopulationConfig{N: 64, Seed: 41, HYAPD: true})
	if !reflect.DeepEqual(reg.Chips, wantReg.Chips) {
		t.Fatal("pair regular population diverges from single build")
	}
	if !reflect.DeepEqual(hor.Chips, wantHor.Chips) {
		t.Fatal("pair H-YAPD population diverges from single build")
	}
	if !reg.Model.HYAPD == false || hor.Model.HYAPD != true {
		t.Fatal("pair models carry wrong organisations")
	}
}

// TestWorkerCountIndependence checks determinism across parallelism:
// a serial build and a wide build produce identical chips, because chip
// i is a pure function of (seed, i) regardless of which worker draws it.
func TestWorkerCountIndependence(t *testing.T) {
	serial := BuildPopulation(PopulationConfig{N: 50, Seed: 2006, Workers: 1})
	wide := BuildPopulation(PopulationConfig{N: 50, Seed: 2006, Workers: 8})
	if !reflect.DeepEqual(serial.Chips, wide.Chips) {
		t.Fatal("population depends on worker count")
	}
	sp, wp := BuildPopulationPair(PopulationConfig{N: 50, Seed: 2006, Workers: 1})
	s8, w8 := BuildPopulationPair(PopulationConfig{N: 50, Seed: 2006, Workers: 8})
	if !reflect.DeepEqual(sp.Chips, s8.Chips) || !reflect.DeepEqual(wp.Chips, w8.Chips) {
		t.Fatal("pair population depends on worker count")
	}
}

// TestBuildPopulationCtxCancellation checks that the ctx-aware builders
// abort early: a cancelled context returns its error without building,
// and an expiring deadline stops a large build well before completion.
func TestBuildPopulationCtxCancellation(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildPopulationCtx(cancelled, PopulationConfig{N: 10, Seed: 1}); err != context.Canceled {
		t.Errorf("BuildPopulationCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, _, err := BuildPopulationPairCtx(cancelled, PopulationConfig{N: 10, Seed: 1}); err != context.Canceled {
		t.Errorf("BuildPopulationPairCtx on cancelled ctx = %v, want context.Canceled", err)
	}

	ctx, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	t0 := time.Now()
	_, _, err := BuildPopulationPairCtx(ctx, PopulationConfig{N: 200_000, Seed: 1})
	if err != context.DeadlineExceeded {
		t.Errorf("deadline build = %v, want context.DeadlineExceeded", err)
	}
	// 200k chips take tens of seconds; the abort must be near-immediate
	// (worker cancellation polls once per chip).
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Errorf("cancelled build took %s", elapsed)
	}

	// The background-context paths are unaffected.
	if p := BuildPopulation(PopulationConfig{N: 5, Seed: 1}); len(p.Chips) != 5 {
		t.Error("BuildPopulation broken after ctx refactor")
	}
}

// TestMemoizedColumns checks the derived columns are computed once,
// shared between calls, and agree with the chip measurements.
func TestMemoizedColumns(t *testing.T) {
	p := BuildPopulation(PopulationConfig{N: 20, Seed: 9})
	lats, leaks := p.Latencies(), p.Leakages()
	if &lats[0] != &p.Latencies()[0] || &leaks[0] != &p.Leakages()[0] {
		t.Fatal("columns reallocated on second call")
	}
	sum := 0.0
	for i, c := range p.Chips {
		if lats[i] != c.Meas.LatencyPS || leaks[i] != c.Meas.LeakageW {
			t.Fatalf("column %d disagrees with chip measurement", i)
		}
		sum += c.Meas.LeakageW
	}
	pts := p.Scatter(Limits{DelayPS: math.Inf(1), LeakageW: math.Inf(1)})
	avg := sum / float64(len(p.Chips))
	for i := range pts {
		if pts[i].NormalizedLeakage != leaks[i]/avg {
			t.Fatalf("scatter point %d normalisation off", i)
		}
	}
}

// TestBuildProgressMonotonic drives a build with a telemetry scope in
// the context and polls its progress concurrently: done must never
// decrease, never exceed total, and must land exactly on N when the
// build finishes uncancelled.
func TestBuildProgressMonotonic(t *testing.T) {
	const n = 400
	sc := obs.NewScope("test-job", nil)
	ctx := obs.WithScope(context.Background(), sc)

	stop := make(chan struct{})
	var pollErr atomic.Value
	go func() {
		defer close(stop)
		var last int64
		for {
			done, total := sc.Progress()
			if done < last {
				pollErr.Store(fmt.Sprintf("progress went backwards: %d after %d", done, last))
				return
			}
			if total != 0 && done > total {
				pollErr.Store(fmt.Sprintf("progress overshot: %d/%d", done, total))
				return
			}
			last = done
			if total != 0 && done == total {
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	if _, _, err := BuildPopulationPairCtx(ctx, PopulationConfig{N: n, Seed: 7, Workers: 4}); err != nil {
		t.Fatalf("build failed: %v", err)
	}
	<-stop
	if msg := pollErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	if done, total := sc.Progress(); done != n || total != n {
		t.Errorf("final progress = %d/%d, want %d/%d", done, total, n, n)
	}
}

// TestBuildProgressPartialOnCancel checks a cancelled build leaves
// progress strictly below total instead of faking completion.
func TestBuildProgressPartialOnCancel(t *testing.T) {
	sc := obs.NewScope("test-job", nil)
	ctx, cancel := context.WithCancel(obs.WithScope(context.Background(), sc))
	cancel()
	if _, _, err := BuildPopulationPairCtx(ctx, PopulationConfig{N: 10_000, Seed: 1}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if done, total := sc.Progress(); done >= total || total != 10_000 {
		t.Errorf("cancelled build progress = %d/%d, want done < total = 10000", done, total)
	}
}
