package cpu

import (
	"yieldcache/internal/obs"
	"yieldcache/internal/workload"
)

// Result aggregates one simulation run.
type Result struct {
	Instructions uint64
	Cycles       uint64
	CPI          float64

	L1DAccesses uint64
	L1DMisses   uint64
	L1DSlowHits uint64 // hits served by a slower-than-base way (VACA 5-cycle hits)
	L1IMisses   uint64
	L2Misses    uint64
	MemAccesses uint64

	Forwards       uint64 // loads satisfied by store-to-load forwarding
	BypassStalls   uint64 // dependents that waited in a load-bypass buffer
	BufferConflict uint64 // bypass-buffer structural conflicts
	Replays        uint64 // dependents replayed after a load miss
	Mispredicts    uint64
}

// ring sizes: must exceed ROB and the dependence lookback.
const (
	ringSize = 1024
	lookback = 512
)

type machine struct {
	cfg  Config
	hier *Hierarchy

	// per-instruction timing rings (absolute cycle numbers)
	fetchT    [ringSize]int64
	issueT    [ringSize]int64
	execT     [ringSize]int64
	completeT [ringSize]int64
	commitT   [ringSize]int64
	opRing    [ringSize]workload.OpClass

	// slot allocators (width-limited pipeline stages)
	fetchSlot  slotAlloc
	renameSlot slotAlloc
	issueSlot  slotAlloc
	commitSlot slotAlloc

	// functional units: next-free time per unit
	ialu, imult, fpalu, fpmult, memport []int64

	// bypass buffers: one entry per FU input; modelled as a small pool
	// whose slots are busy for the stall duration.
	bypass []int64

	// store-to-load forwarding: word address -> instruction index
	storeIdx map[uint64]int

	fetchNotBefore int64
	lastFetchBlock uint64

	res Result
}

// slotAlloc hands out cycle slots for a width-limited stage.
type slotAlloc struct {
	cycle int64
	used  int
	width int
}

// next returns the earliest slot cycle >= t and consumes it.
func (s *slotAlloc) next(t int64) int64 {
	if t > s.cycle {
		s.cycle = t
		s.used = 0
	}
	if s.used >= s.width {
		s.cycle++
		s.used = 0
		if s.cycle < t {
			s.cycle = t
		}
	}
	s.used++
	return s.cycle
}

func newMachine(cfg Config) *machine {
	m := &machine{
		cfg: cfg,
		hier: NewHierarchy(
			NewCache(cfg.L1I), NewCache(cfg.L1D), NewCache(cfg.L2),
			cfg.MemCycles, cfg.MSHRs),
		fetchSlot:      slotAlloc{width: cfg.FetchWidth},
		renameSlot:     slotAlloc{width: cfg.FetchWidth},
		issueSlot:      slotAlloc{width: cfg.IssueWidth},
		commitSlot:     slotAlloc{width: cfg.CommitWidth},
		ialu:           make([]int64, cfg.IALUs),
		imult:          make([]int64, cfg.IMults),
		fpalu:          make([]int64, cfg.FPALUs),
		fpmult:         make([]int64, cfg.FPMults),
		memport:        make([]int64, cfg.MemPorts),
		storeIdx:       make(map[uint64]int),
		lastFetchBlock: ^uint64(0),
	}
	// One bypass entry per FU input pair, as in Figure 7: each
	// functional unit carries BypassEntries slots per source operand.
	units := cfg.IALUs + cfg.IMults + cfg.FPALUs + cfg.FPMults + cfg.MemPorts
	n := units * 2 * cfg.BypassEntries
	if n < 1 {
		n = 1
	}
	m.bypass = make([]int64, n)
	m.hier.NextLinePrefetch = cfg.NextLinePrefetch
	return m
}

func (m *machine) units(op workload.OpClass) []int64 {
	switch op {
	case workload.IMul, workload.IDiv:
		return m.imult
	case workload.FAdd:
		return m.fpalu
	case workload.FMul, workload.FDiv:
		return m.fpmult
	case workload.Load, workload.Store:
		return m.memport
	default:
		return m.ialu
	}
}

// acquireUnit books the earliest-available unit at or after t and
// returns the actual start time.
func acquireUnit(units []int64, t int64, busy int64) int64 {
	best := 0
	for i, f := range units {
		if f < units[best] {
			best = i
		}
	}
	start := t
	if units[best] > t {
		start = units[best]
	}
	units[best] = start + busy
	return start
}

// producer returns the ring index of the instruction dist back from i,
// or -1 when it is beyond the tracked window (long retired: its value is
// available from the register file with no stall).
func producer(i, dist int) int {
	if dist <= 0 || dist > lookback {
		return -1
	}
	j := i - dist
	if j < 0 {
		return -1
	}
	return j % ringSize
}

// Run simulates n instructions from the generator on the configured
// machine and returns the aggregate result.
func Run(gen *workload.Generator, n int, cfg Config) Result {
	m := newMachine(cfg)
	S := int64(cfg.SchedToExec)
	P := int64(cfg.PredictedLoadCycles)

	for i := 0; i < n; i++ {
		in := gen.Next()
		r := i % ringSize
		m.opRing[r] = in.Op

		// ---- Fetch ----
		block := in.PC &^ uint64(cfg.L1I.BlockBytes-1)
		t := m.fetchSlot.next(m.fetchNotBefore)
		if block != m.lastFetchBlock {
			m.lastFetchBlock = block
			lat, hit, _ := m.hier.L1I.Access(in.PC, false)
			_ = lat
			if !hit {
				m.res.L1IMisses++
				extra := m.hier.missPath(in.PC, false, t)
				m.fetchNotBefore = t + extra
				t = m.fetchSlot.next(m.fetchNotBefore)
			}
		}
		m.fetchT[r] = t

		// ---- Rename/dispatch: width-limited, gated by ROB and IQ space ----
		ren := t + int64(cfg.FrontStages)
		if i >= cfg.ROB {
			if prev := m.commitT[(i-cfg.ROB)%ringSize] + 1; prev > ren {
				ren = prev
			}
		}
		if i >= cfg.IQ {
			if prev := m.issueT[(i-cfg.IQ)%ringSize] + 1; prev > ren {
				ren = prev
			}
		}
		ren = m.renameSlot.next(ren)

		// ---- Schedule (issue) ----
		// Wakeup constraints from producers; loads wake dependents with
		// the predicted latency, everything else exactly.
		issue := ren + 1
		var slowLoads [2]int // ring indices of slower-than-predicted load producers
		nSlow := 0
		for _, dist := range [2]int{in.Src1Dist, in.Src2Dist} {
			j := producer(i, dist)
			if j < 0 {
				continue
			}
			var c int64
			if m.opRing[j] == workload.Load {
				pred := m.execT[j] + P
				if m.completeT[j] > pred {
					if nSlow < 2 {
						slowLoads[nSlow] = j
						nSlow++
					}
					c = pred // speculative wakeup
				} else {
					c = m.completeT[j]
				}
			} else {
				c = m.completeT[j]
			}
			if w := c - S; w > issue {
				issue = w
			}
		}
		// If by its tentative issue time the scheduler has already seen a
		// producer's miss (tag check at predicted-complete time), it holds
		// the dependent in the IQ instead of issuing it speculatively.
		for k := 0; k < nSlow; k++ {
			j := slowLoads[k]
			missDetect := m.execT[j] + P
			if issue >= missDetect {
				if w := m.completeT[j] - S; w > issue {
					issue = w
				}
				slowLoads[k] = -1
			}
		}
		issue = m.issueSlot.next(issue)
		m.issueT[r] = issue

		// ---- Execute ----
		exec := issue + S
		// Actual operand availability: a dependent that reaches the FU
		// before its data stalls in the load-bypass buffer (one extra
		// cycle per entry); if the producer load actually missed, the
		// dependent is flushed and replayed (Section 4.3).
		actual := exec
		for _, dist := range [2]int{in.Src1Dist, in.Src2Dist} {
			j := producer(i, dist)
			if j >= 0 && m.completeT[j] > actual {
				actual = m.completeT[j]
			}
		}
		if actual > exec {
			delay := actual - exec
			if delay <= int64(cfg.BypassEntries) {
				m.res.BypassStalls++
				// Occupy a bypass slot; conflicts push the start out.
				slot := acquireUnit(m.bypass, exec, delay)
				if slot > exec {
					m.res.BufferConflict++
				}
				exec = slot + delay
			} else {
				m.res.Replays++
				exec = actual + int64(cfg.ReplayCycles)
			}
		}

		lat := int64(opLatency(in.Op))
		busy := int64(1)
		if !pipelined(in.Op) {
			busy = lat
		}
		exec = acquireUnit(m.units(in.Op), exec, busy)
		m.execT[r] = exec

		// ---- Complete ----
		var complete int64
		switch in.Op {
		case workload.Load:
			word := in.Addr &^ 7
			if si, ok := m.storeIdx[word]; ok && i-si <= cfg.StoreForwardWindow {
				m.res.Forwards++
				complete = exec + int64(cfg.PredictedLoadCycles)
			} else {
				m.res.L1DAccesses++
				miss0 := m.hier.L1D.Misses
				complete = m.hier.DataAccess(in.Addr, false, exec)
				if m.hier.L1D.Misses > miss0 {
					m.res.L1DMisses++
				}
			}
		case workload.Store:
			m.storeIdx[in.Addr&^7] = i
			m.res.L1DAccesses++
			miss0 := m.hier.L1D.Misses
			m.hier.DataAccess(in.Addr, true, exec)
			if m.hier.L1D.Misses > miss0 {
				m.res.L1DMisses++
			}
			complete = exec + lat
		default:
			complete = exec + lat
		}
		m.completeT[r] = complete

		// ---- Branch redirect ----
		if in.Op == workload.Branch && in.Mispredicted {
			m.res.Mispredicts++
			if complete+1 > m.fetchNotBefore {
				m.fetchNotBefore = complete + 1
			}
			m.lastFetchBlock = ^uint64(0)
		}

		// ---- Commit ----
		com := complete + 1
		if i > 0 {
			if prev := m.commitT[(i-1)%ringSize]; prev > com {
				com = prev
			}
		}
		com = m.commitSlot.next(com)
		m.commitT[r] = com
	}

	last := m.commitT[(n-1)%ringSize]
	m.res.Instructions = uint64(n)
	m.res.Cycles = uint64(last)
	if n > 0 {
		m.res.CPI = float64(last) / float64(n)
	}
	m.res.L1DSlowHits = m.hier.L1D.SlowHits
	m.res.L2Misses = m.hier.L2Misses
	m.res.MemAccesses = m.hier.MemAccesses
	recordRunMetrics(&m.res)
	return m.res
}

// recordRunMetrics surfaces one run's tallies on the metrics registry.
// Aggregated once per run, not per instruction, so the simulator's
// inner loop is untouched; disabled instrumentation costs nil checks.
func recordRunMetrics(r *Result) {
	obs.C("cpu_runs_total").Inc()
	obs.C("cpu_instructions_total").Add(int64(r.Instructions))
	obs.C("cpu_cycles_total").Add(int64(r.Cycles))
	obs.C("cpu_l1d_accesses_total").Add(int64(r.L1DAccesses))
	obs.C("cpu_l1d_hits_total").Add(int64(r.L1DAccesses - r.L1DMisses))
	obs.C("cpu_l1d_misses_total").Add(int64(r.L1DMisses))
	obs.C("cpu_l1d_slow_hits_total").Add(int64(r.L1DSlowHits))
	obs.C("cpu_l2_misses_total").Add(int64(r.L2Misses))
	obs.C("cpu_replays_total").Add(int64(r.Replays))
	obs.C("cpu_bypass_stalls_total").Add(int64(r.BypassStalls))
}
