package cpu

import (
	"testing"

	"yieldcache/internal/workload"
)

func runBench(t *testing.T, name string, n int, cfg Config) Result {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	return Run(workload.NewGenerator(p, 1), n, cfg)
}

func TestRunBasics(t *testing.T) {
	r := runBench(t, "gzip", 50000, DefaultConfig())
	if r.Instructions != 50000 {
		t.Fatalf("instructions = %d", r.Instructions)
	}
	if r.Cycles == 0 || r.CPI <= 0 {
		t.Fatal("no cycles simulated")
	}
	// A 4-wide machine cannot beat 0.25 CPI and a sane run of gzip should
	// stay well under 10.
	if r.CPI < 0.25 || r.CPI > 10 {
		t.Errorf("gzip CPI = %v, implausible", r.CPI)
	}
	if r.L1DAccesses == 0 || r.Mispredicts == 0 {
		t.Error("memory or branch activity missing")
	}
}

func TestRunDeterminism(t *testing.T) {
	a := runBench(t, "vpr", 30000, DefaultConfig())
	b := runBench(t, "vpr", 30000, DefaultConfig())
	if a != b {
		t.Error("identical runs differ")
	}
}

func TestSlowWayCostsCycles(t *testing.T) {
	base := runBench(t, "gzip", 100000, DefaultConfig())
	slow := runBench(t, "gzip", 100000, DefaultConfig().WithL1D([]int{5, 4, 4, 4}, -1, 4))
	if slow.CPI <= base.CPI {
		t.Errorf("a 5-cycle way should cost cycles: %v vs %v", slow.CPI, base.CPI)
	}
	if slow.L1DSlowHits == 0 {
		t.Error("no hits landed in the slow way")
	}
	if slow.BypassStalls <= base.BypassStalls {
		t.Error("5-cycle hits should produce load-bypass stalls")
	}
	allSlow := runBench(t, "gzip", 100000, DefaultConfig().WithL1D([]int{5, 5, 5, 5}, -1, 4))
	if allSlow.CPI <= slow.CPI {
		t.Error("four slow ways should cost more than one")
	}
}

func TestDisabledWayCostsMisses(t *testing.T) {
	base := runBench(t, "galgel", 100000, DefaultConfig())
	way3 := runBench(t, "galgel", 100000, DefaultConfig().WithL1D([]int{0, 4, 4, 4}, -1, 4))
	if way3.L1DMisses <= base.L1DMisses {
		t.Error("losing a way should increase misses")
	}
	if way3.CPI <= base.CPI {
		t.Error("losing a way should cost cycles")
	}
	// But the capacity cost must be mild (the Section 4.2 "2% budget"):
	// under 10% CPI even for a cache-sensitive benchmark.
	if way3.CPI/base.CPI > 1.10 {
		t.Errorf("one-way shutdown cost %.1f%%, implausibly high",
			(way3.CPI/base.CPI-1)*100)
	}
}

func TestNaiveBinningMatchesVACAUpperBound(t *testing.T) {
	// VACA with one slow way must cost less than naively binning the
	// whole cache at 5 cycles (Section 4.5 motivates VACA this way).
	base := runBench(t, "perlbmk", 100000, DefaultConfig())
	vaca := runBench(t, "perlbmk", 100000, DefaultConfig().WithL1D([]int{5, 4, 4, 4}, -1, 4))
	naive := runBench(t, "perlbmk", 100000, DefaultConfig().WithL1D([]int{5, 5, 5, 5}, -1, 5))
	if !(base.CPI < vaca.CPI && vaca.CPI < naive.CPI) {
		t.Errorf("ordering violated: base %v, vaca %v, naive %v", base.CPI, vaca.CPI, naive.CPI)
	}
	// The naive machine expects 5 cycles, so its loads are never "late":
	// no bypass stalls from cache hits.
	if naive.Replays > base.Replays*2 {
		t.Errorf("naive binning should not replay more: %d vs %d", naive.Replays, base.Replays)
	}
}

func TestSixCycleBinWorseThanFive(t *testing.T) {
	five := runBench(t, "crafty", 100000, DefaultConfig().WithL1D([]int{5, 5, 5, 5}, -1, 5))
	six := runBench(t, "crafty", 100000, DefaultConfig().WithL1D([]int{6, 6, 6, 6}, -1, 6))
	if six.CPI <= five.CPI {
		t.Errorf("6-cycle bin (%v) should cost more than 5-cycle (%v)", six.CPI, five.CPI)
	}
}

func TestHRegionConfigRuns(t *testing.T) {
	base := runBench(t, "gcc", 100000, DefaultConfig())
	hoff := runBench(t, "gcc", 100000, DefaultConfig().WithL1D(nil, 2, 4))
	if hoff.CPI <= base.CPI {
		t.Error("losing a horizontal region should cost cycles")
	}
	way3 := runBench(t, "gcc", 100000, DefaultConfig().WithL1D([]int{0, 4, 4, 4}, -1, 4))
	// H-YAPD and YAPD have identical hit/miss behaviour (Section 4.2):
	// CPIs should be close (not identical: different ways get excluded).
	ratio := hoff.CPI / way3.CPI
	if ratio < 0.97 || ratio > 1.03 {
		t.Errorf("h-region vs way shutdown CPI ratio = %v, want ~1 (same associativity)", ratio)
	}
}

func TestMemoryBoundVsComputeBoundSensitivity(t *testing.T) {
	// eon (compute-bound, load-latency-sensitive) must suffer more from
	// +1 cycle loads than mcf (memory-bound, dominated by DRAM time) in
	// relative terms — the spread Figures 9 and 10 show.
	dFor := func(name string) float64 {
		base := runBench(t, name, 150000, DefaultConfig())
		slow := runBench(t, name, 150000, DefaultConfig().WithL1D([]int{5, 5, 5, 5}, -1, 5))
		return slow.CPI/base.CPI - 1
	}
	if dEon, dMcf := dFor("eon"), dFor("mcf"); dEon < 2*dMcf {
		t.Errorf("eon (+%v) should be far more latency-sensitive than mcf (+%v)", dEon, dMcf)
	}
}

func TestMispredictsCostCycles(t *testing.T) {
	p, _ := workload.ByName("vpr")
	noMiss := p
	noMiss.MispredictRate = 0
	cfg := DefaultConfig()
	with := Run(workload.NewGenerator(p, 2), 100000, cfg)
	without := Run(workload.NewGenerator(noMiss, 2), 100000, cfg)
	if with.Mispredicts == 0 || without.Mispredicts != 0 {
		t.Fatal("mispredict counting wrong")
	}
	if with.CPI <= without.CPI {
		t.Error("mispredicts should cost cycles")
	}
}

func TestICacheFootprintCosts(t *testing.T) {
	p, _ := workload.ByName("gzip") // 8KB code: fits the 16KB L1I
	big := p
	big.CodeKB = 256
	small := Run(workload.NewGenerator(p, 3), 100000, DefaultConfig())
	large := Run(workload.NewGenerator(big, 3), 100000, DefaultConfig())
	if large.L1IMisses <= small.L1IMisses {
		t.Error("big code footprint should miss the I-cache more")
	}
	if large.CPI <= small.CPI {
		t.Error("I-cache misses should cost cycles")
	}
}

func TestStoreForwarding(t *testing.T) {
	r := runBench(t, "eon", 100000, DefaultConfig())
	if r.Forwards == 0 {
		t.Error("store-to-load forwarding never triggered")
	}
}

func TestBypassDepthTwoCoversSixCycleWays(t *testing.T) {
	// The paper's rejected extension: 2-entry buffers make 6-cycle ways
	// tolerable. With depth 1, a 6-cycle way triggers replays; with
	// depth 2 those turn into buffered stalls.
	cfg1 := DefaultConfig().WithL1D([]int{6, 4, 4, 4}, -1, 4)
	cfg2 := cfg1
	cfg2.BypassEntries = 2
	r1 := runBench(t, "gap", 100000, cfg1)
	r2 := runBench(t, "gap", 100000, cfg2)
	if r2.Replays >= r1.Replays {
		t.Errorf("deeper buffers should cut replays: %d vs %d", r2.Replays, r1.Replays)
	}
	if r2.CPI >= r1.CPI {
		t.Errorf("deeper buffers should recover cycles: %v vs %v", r2.CPI, r1.CPI)
	}
}

func TestSlotAlloc(t *testing.T) {
	s := slotAlloc{width: 2}
	if s.next(5) != 5 || s.next(5) != 5 {
		t.Error("two slots should fit in cycle 5")
	}
	if s.next(5) != 6 {
		t.Error("third request should spill to cycle 6")
	}
	if s.next(10) != 10 {
		t.Error("later request should jump forward")
	}
	if s.next(3) != 10 {
		t.Error("requests never go back in time")
	}
}

func TestAcquireUnit(t *testing.T) {
	units := []int64{0, 0}
	if acquireUnit(units, 10, 1) != 10 {
		t.Error("free unit should start immediately")
	}
	if acquireUnit(units, 10, 1) != 10 {
		t.Error("second unit free")
	}
	if acquireUnit(units, 10, 1) != 11 {
		t.Error("both busy: start should defer")
	}
}

func TestProducerIndexing(t *testing.T) {
	if producer(100, 0) != -1 || producer(100, lookback+1) != -1 {
		t.Error("out-of-window distances should be -1")
	}
	if producer(5, 10) != -1 {
		t.Error("pre-start producers should be -1")
	}
	if producer(100, 3) != 97 {
		t.Errorf("producer(100,3) = %d", producer(100, 3))
	}
}

func TestNextLinePrefetchHelpsStreams(t *testing.T) {
	// swim is stream-dominated: a next-line prefetcher should cut its
	// demand miss rate and CPI substantially.
	cfg := DefaultConfig()
	base := runBench(t, "swim", 150000, cfg)
	cfg.NextLinePrefetch = true
	pf := runBench(t, "swim", 150000, cfg)
	if pf.L1DMisses >= base.L1DMisses {
		t.Errorf("prefetching did not cut misses: %d vs %d", pf.L1DMisses, base.L1DMisses)
	}
	if pf.CPI >= base.CPI {
		t.Errorf("prefetching did not cut CPI: %v vs %v", pf.CPI, base.CPI)
	}
}

func TestPrefetchDoesNotPolluteDemandStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NextLinePrefetch = true
	r := runBench(t, "gzip", 100000, cfg)
	if r.L1DAccesses == 0 {
		t.Fatal("no accesses recorded")
	}
	// Demand accesses must match the number of loads+stores that reached
	// the cache (i.e. be no larger than total memory ops).
	p, _ := workload.ByName("gzip")
	maxMemOps := uint64(float64(100000) * (p.LoadFrac + p.StoreFrac) * 1.1)
	if r.L1DAccesses > maxMemOps {
		t.Errorf("demand accesses %d exceed plausible memory ops %d (prefetches leaked into stats)",
			r.L1DAccesses, maxMemOps)
	}
}
