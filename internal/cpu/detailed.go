package cpu

import "yieldcache/internal/workload"

// This file holds the event-driven (explicit per-cycle) out-of-order
// core. Run (pipeline.go) computes the same machine's timing in a
// single program-order pass with closed-form resource windows, which is
// fast; RunDetailed walks the pipeline cycle by cycle with explicit
// ROB/IQ occupancy, per-cycle issue selection and wakeup. The two
// implementations are developed independently and cross-validated
// against each other (TestDetailedAgreesWithFastModel); the detailed
// core is the reference, the fast one is what the experiment drivers
// use.

type uopState int

const (
	uopFetched uopState = iota
	uopInIQ
	uopIssued
	uopDone
	uopCommitted
)

type uop struct {
	seq        int64
	op         workload.OpClass
	src1, src2 int64 // absolute producer sequence numbers, -1 if none
	addr       uint64
	mispred    bool

	state    uopState
	issuedAt int64
	execAt   int64 // cycle execution starts (after SchedToExec + stalls)
	doneAt   int64
	replayed bool
	predDone int64 // when the scheduler believes the result arrives
	inReplay bool  // waiting to be re-issued after a replay
	replayAt int64 // cycle at which the replayed uop may issue again
}

// detailedMachine is the explicit-state core.
type detailedMachine struct {
	cfg  Config
	hier *Hierarchy
	gen  *workload.Generator

	rob      []*uop // in program order, oldest first
	iq       []*uop // dispatched, waiting to issue
	fetchQ   []*uop
	byseq    map[int64]*uop
	nextSeq  int64
	fetched  int64
	target   int64
	cycle    int64
	redirect int64 // fetch stalls until this cycle (mispredict/ICache)

	lastFetchBlock uint64

	ialu, imult, fpalu, fpmult, memport []int64
	bypass                              []int64

	storeSeq map[uint64]int64

	res Result
}

// RunDetailed simulates n instructions cycle by cycle and returns the
// aggregate result. It is several times slower than Run and exists for
// validation and for studies that need exact structural occupancy.
func RunDetailed(gen *workload.Generator, n int, cfg Config) Result {
	m := &detailedMachine{
		cfg:            cfg,
		hier:           NewHierarchy(NewCache(cfg.L1I), NewCache(cfg.L1D), NewCache(cfg.L2), cfg.MemCycles, cfg.MSHRs),
		gen:            gen,
		byseq:          make(map[int64]*uop, cfg.ROB*2),
		target:         int64(n),
		ialu:           make([]int64, cfg.IALUs),
		imult:          make([]int64, cfg.IMults),
		fpalu:          make([]int64, cfg.FPALUs),
		fpmult:         make([]int64, cfg.FPMults),
		memport:        make([]int64, cfg.MemPorts),
		bypass:         make([]int64, (cfg.IALUs+cfg.IMults+cfg.FPALUs+cfg.FPMults+cfg.MemPorts)*2*max(1, cfg.BypassEntries)),
		storeSeq:       make(map[uint64]int64),
		lastFetchBlock: ^uint64(0),
	}
	m.hier.NextLinePrefetch = cfg.NextLinePrefetch

	committed := int64(0)
	for committed < m.target {
		committed += m.commit()
		m.issueAndExecute()
		m.dispatch()
		m.fetch()
		m.cycle++
		// Liveness guard: a correct machine always commits within a
		// bounded window (memory latency + pipeline depth).
		if m.cycle > 1000*(m.target+1000) {
			panic("cpu: detailed model livelocked")
		}
	}
	m.res.Instructions = uint64(m.target)
	m.res.Cycles = uint64(m.cycle)
	m.res.CPI = float64(m.cycle) / float64(m.target)
	m.res.L1DSlowHits = m.hier.L1D.SlowHits
	m.res.L2Misses = m.hier.L2Misses
	m.res.MemAccesses = m.hier.MemAccesses
	recordRunMetrics(&m.res)
	return m.res
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fetch brings up to FetchWidth instructions into the fetch queue,
// honouring I-cache misses and mispredict redirects.
func (m *detailedMachine) fetch() {
	if m.cycle < m.redirect {
		return
	}
	for i := 0; i < m.cfg.FetchWidth && m.fetched < m.target; i++ {
		if len(m.fetchQ) >= m.cfg.FetchWidth*(m.cfg.FrontStages+1) {
			return // front-end buffer full
		}
		in := m.gen.Next()
		block := in.PC &^ uint64(m.cfg.L1I.BlockBytes-1)
		if block != m.lastFetchBlock {
			m.lastFetchBlock = block
			if _, hit, _ := m.hier.L1I.Access(in.PC, false); !hit {
				m.res.L1IMisses++
				extra := m.hier.missPath(in.PC, false, m.cycle)
				m.redirect = m.cycle + extra
			}
		}
		u := &uop{
			seq:  m.nextSeq,
			op:   in.Op,
			src1: -1, src2: -1,
			addr:    in.Addr,
			mispred: in.Op == workload.Branch && in.Mispredicted,
		}
		if in.Src1Dist > 0 && m.nextSeq-int64(in.Src1Dist) >= 0 {
			u.src1 = m.nextSeq - int64(in.Src1Dist)
		}
		if in.Src2Dist > 0 && m.nextSeq-int64(in.Src2Dist) >= 0 {
			u.src2 = m.nextSeq - int64(in.Src2Dist)
		}
		m.nextSeq++
		m.fetched++
		m.fetchQ = append(m.fetchQ, u)
		if m.cycle < m.redirect {
			return // the I-miss stalls the rest of this fetch group
		}
	}
}

// dispatch moves fetched uops into the ROB and IQ, limited by width and
// by structural occupancy.
func (m *detailedMachine) dispatch() {
	for i := 0; i < m.cfg.FetchWidth && len(m.fetchQ) > 0; i++ {
		if len(m.rob) >= m.cfg.ROB || len(m.iq) >= m.cfg.IQ {
			return
		}
		u := m.fetchQ[0]
		m.fetchQ = m.fetchQ[1:]
		u.state = uopInIQ
		m.rob = append(m.rob, u)
		m.iq = append(m.iq, u)
		m.byseq[u.seq] = u
	}
}

// producerReadyAt returns when the scheduler believes (predicted) and
// when the producer actually delivers. Missing producers (retired long
// ago or none) are ready immediately.
func (m *detailedMachine) producerReadyAt(seq int64) (pred, actual int64, ok bool) {
	if seq < 0 {
		return 0, 0, true
	}
	p, live := m.byseq[seq]
	if !live {
		return 0, 0, true // long retired: register file has the value
	}
	if p.state == uopCommitted || p.state == uopDone {
		return p.doneAt, p.doneAt, true
	}
	if p.state != uopIssued {
		return 0, 0, false // not even issued: no wakeup yet
	}
	return p.predDone, p.doneAt, true
}

// issueAndExecute selects up to IssueWidth ready uops oldest-first,
// books functional units, runs memory accesses and handles the
// load-bypass stall / replay semantics of Section 4.3.
func (m *detailedMachine) issueAndExecute() {
	issued := 0
	S := int64(m.cfg.SchedToExec)
	for idx := 0; idx < len(m.iq) && issued < m.cfg.IssueWidth; idx++ {
		u := m.iq[idx]
		if u.inReplay && m.cycle < u.replayAt {
			continue
		}
		p1, a1, ok1 := m.producerReadyAt(u.src1)
		p2, a2, ok2 := m.producerReadyAt(u.src2)
		if !ok1 || !ok2 {
			continue
		}
		// Speculative wakeup: issue so that execution begins when the
		// *predicted* completion arrives.
		predReady := maxi64(p1, p2)
		if predReady > m.cycle+S {
			continue // too early to issue even speculatively
		}
		// Book a functional unit at the planned execution time.
		lat := int64(opLatency(u.op))
		busy := int64(1)
		if !pipelined(u.op) {
			busy = lat
		}
		exec := acquireUnit(m.unitsFor(u.op), m.cycle+S, busy)

		actualReady := maxi64(a1, a2)
		if actualReady > exec {
			delay := actualReady - exec
			if delay <= int64(m.cfg.BypassEntries) {
				m.res.BypassStalls++
				slot := acquireUnit(m.bypass, exec, delay)
				if slot > exec {
					m.res.BufferConflict++
				}
				exec = slot + delay
			} else {
				// Replay: the uop returns to the IQ and may not issue
				// again until the producer's data is actually close.
				m.res.Replays++
				u.inReplay = true
				u.replayAt = actualReady - S + int64(m.cfg.ReplayCycles)
				continue
			}
		}

		u.state = uopIssued
		u.issuedAt = m.cycle
		u.execAt = exec
		switch u.op {
		case workload.Load:
			word := u.addr &^ 7
			if sseq, ok := m.storeSeq[word]; ok && u.seq-sseq <= int64(m.cfg.StoreForwardWindow) {
				m.res.Forwards++
				u.doneAt = exec + int64(m.cfg.PredictedLoadCycles)
			} else {
				m.res.L1DAccesses++
				miss0 := m.hier.L1D.Misses
				u.doneAt = m.hier.DataAccess(u.addr, false, exec)
				if m.hier.L1D.Misses > miss0 {
					m.res.L1DMisses++
				}
			}
			u.predDone = exec + int64(m.cfg.PredictedLoadCycles)
		case workload.Store:
			m.storeSeq[u.addr&^7] = u.seq
			m.res.L1DAccesses++
			miss0 := m.hier.L1D.Misses
			m.hier.DataAccess(u.addr, true, exec)
			if m.hier.L1D.Misses > miss0 {
				m.res.L1DMisses++
			}
			u.doneAt = exec + lat
			u.predDone = u.doneAt
		default:
			u.doneAt = exec + lat
			u.predDone = u.doneAt
		}
		if u.mispred {
			m.res.Mispredicts++
			if r := u.doneAt + 1; r > m.redirect {
				m.redirect = r
			}
			m.lastFetchBlock = ^uint64(0)
		}
		// Remove from the IQ (entry freed at issue).
		m.iq = append(m.iq[:idx], m.iq[idx+1:]...)
		idx--
		issued++
	}
	// Writeback: mark issued uops whose completion time has passed.
	for _, u := range m.rob {
		if u.state == uopIssued && u.doneAt <= m.cycle {
			u.state = uopDone
		}
	}
}

// commit retires up to CommitWidth done uops from the ROB head and
// returns how many retired this cycle.
func (m *detailedMachine) commit() int64 {
	n := int64(0)
	for n < int64(m.cfg.CommitWidth) && len(m.rob) > 0 {
		u := m.rob[0]
		if u.state != uopDone || u.doneAt >= m.cycle {
			break
		}
		u.state = uopCommitted
		delete(m.byseq, u.seq)
		m.rob = m.rob[1:]
		n++
	}
	return n
}

func (m *detailedMachine) unitsFor(op workload.OpClass) []int64 {
	switch op {
	case workload.IMul, workload.IDiv:
		return m.imult
	case workload.FAdd:
		return m.fpalu
	case workload.FMul, workload.FDiv:
		return m.fpmult
	case workload.Load, workload.Store:
		return m.memport
	default:
		return m.ialu
	}
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
