package cpu

import (
	"testing"

	"yieldcache/internal/workload"
)

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

func runDetailed(t *testing.T, name string, n int, cfg Config) Result {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	return RunDetailed(workload.NewGenerator(p, 1), n, cfg)
}

func TestDetailedBasics(t *testing.T) {
	r := runDetailed(t, "gzip", 50000, DefaultConfig())
	if r.Instructions != 50000 || r.CPI <= 0.25 || r.CPI > 10 {
		t.Fatalf("implausible detailed run: %+v", r)
	}
	if r.L1DAccesses == 0 || r.Mispredicts == 0 {
		t.Error("missing activity")
	}
}

func TestDetailedDeterminism(t *testing.T) {
	a := runDetailed(t, "vpr", 20000, DefaultConfig())
	b := runDetailed(t, "vpr", 20000, DefaultConfig())
	if a != b {
		t.Error("identical detailed runs differ")
	}
}

func TestDetailedAgreesWithFastModel(t *testing.T) {
	// The one-pass model (Run) and the per-cycle model (RunDetailed) are
	// independent implementations of the same machine. They must agree:
	//  - exactly on cache behaviour (same access sequence),
	//  - within 20% on absolute CPI,
	//  - and on the *direction and rough size* of configuration deltas,
	//    which is what every experiment measures.
	for _, name := range []string{"gzip", "eon", "mcf", "swim"} {
		p, _ := workload.ByName(name)
		fast := Run(workload.NewGenerator(p, 1), 80000, DefaultConfig())
		det := RunDetailed(workload.NewGenerator(p, 1), 80000, DefaultConfig())
		// Cache behaviour must match almost exactly; the residual is the
		// detailed core issuing loads out of order around stores, which
		// shifts a handful of accesses in or out of the forwarding window.
		if d := absDiff(fast.L1DAccesses, det.L1DAccesses); d*1000 > fast.L1DAccesses {
			t.Errorf("%s: access counts diverged: %d vs %d", name, fast.L1DAccesses, det.L1DAccesses)
		}
		if d := absDiff(fast.L1DMisses, det.L1DMisses); d*200 > fast.L1DMisses+200 {
			t.Errorf("%s: miss counts diverged: %d vs %d", name, fast.L1DMisses, det.L1DMisses)
		}
		if r := det.CPI / fast.CPI; r < 0.80 || r > 1.25 {
			t.Errorf("%s: detailed/fast CPI ratio %v outside [0.8, 1.25]", name, r)
		}
	}
}

func TestDetailedDeltaAgreement(t *testing.T) {
	// The headline experiment quantity: CPI degradation from a slow way.
	// Both models must agree it is positive and of similar magnitude.
	p, _ := workload.ByName("crafty")
	n := 80000
	fastBase := Run(workload.NewGenerator(p, 1), n, DefaultConfig())
	fastSlow := Run(workload.NewGenerator(p, 1), n, DefaultConfig().WithL1D([]int{5, 5, 5, 5}, -1, 4))
	detBase := RunDetailed(workload.NewGenerator(p, 1), n, DefaultConfig())
	detSlow := RunDetailed(workload.NewGenerator(p, 1), n, DefaultConfig().WithL1D([]int{5, 5, 5, 5}, -1, 4))
	dFast := fastSlow.CPI/fastBase.CPI - 1
	dDet := detSlow.CPI/detBase.CPI - 1
	if dDet <= 0 {
		t.Fatalf("detailed model shows no slow-way cost: %v", dDet)
	}
	if dDet < 0.3*dFast || dDet > 3*dFast {
		t.Errorf("delta disagreement: fast %+.2f%% vs detailed %+.2f%%", dFast*100, dDet*100)
	}
}

func TestDetailedReplaysOnMisses(t *testing.T) {
	r := runDetailed(t, "mcf", 60000, DefaultConfig())
	if r.Replays == 0 {
		t.Error("a miss-heavy benchmark must trigger replays")
	}
	slow := runDetailed(t, "gzip", 60000, DefaultConfig().WithL1D([]int{5, 4, 4, 4}, -1, 4))
	if slow.BypassStalls == 0 || slow.L1DSlowHits == 0 {
		t.Error("a 5-cycle way must exercise the bypass buffers")
	}
}

func TestDetailedStructuralLimits(t *testing.T) {
	// Shrinking the ROB must cost cycles (occupancy is explicit here).
	small := DefaultConfig()
	small.ROB = 16
	smallR := runDetailed(t, "swim", 60000, small)
	bigR := runDetailed(t, "swim", 60000, DefaultConfig())
	if smallR.CPI <= bigR.CPI {
		t.Errorf("a 16-entry ROB should be slower than 256: %v vs %v", smallR.CPI, bigR.CPI)
	}
}
