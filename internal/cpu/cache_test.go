package cpu

import (
	"testing"
	"testing/quick"
)

func l1dSpec() CacheSpec {
	return CacheSpec{Name: "L1D", SizeKB: 16, Assoc: 4, BlockBytes: 32, HitCycles: 4, HRegionOff: -1}
}

func TestCacheSpecValidate(t *testing.T) {
	good := l1dSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("paper L1D spec invalid: %v", err)
	}
	bad := good
	bad.SizeKB = 0
	if bad.Validate() == nil {
		t.Error("zero size accepted")
	}
	bad = good
	bad.BlockBytes = 48
	if bad.Validate() == nil {
		t.Error("non-power-of-two block accepted")
	}
	bad = good
	bad.WayCycles = []int{4, 4}
	if bad.Validate() == nil {
		t.Error("mismatched WayCycles accepted")
	}
	bad = good
	bad.WayCycles = []int{0, 0, 0, 0}
	if bad.Validate() == nil {
		t.Error("all-disabled cache accepted")
	}
	bad = good
	bad.WayCycles = []int{4, 0, 0, 0}
	bad.HRegionOff = 0
	if bad.Validate() == nil {
		t.Error("h-region plus three disabled ways leaves nothing")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(l1dSpec())
	if _, hit, _ := c.Access(0x1000, false); hit {
		t.Error("cold cache should miss")
	}
	lat, hit, _ := c.Access(0x1000, false)
	if !hit || lat != 4 {
		t.Errorf("second access: hit=%v lat=%d, want hit at 4 cycles", hit, lat)
	}
	// Same block, different word: still a hit.
	if _, hit, _ := c.Access(0x1010, false); !hit {
		t.Error("same-block access missed")
	}
	// Different block: miss.
	if _, hit, _ := c.Access(0x1020, false); hit {
		t.Error("adjacent block should miss")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("stats: %d accesses %d misses", c.Accesses, c.Misses)
	}
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate %v", c.MissRate())
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	c := NewCache(l1dSpec())
	sets := uint64(c.NumSets())
	blk := uint64(32)
	// Fill all 4 ways of set 0, then touch the first line again so the
	// second becomes LRU, then force an eviction.
	addrs := []uint64{0, sets * blk, 2 * sets * blk, 3 * sets * blk}
	for _, a := range addrs {
		c.Access(a, false)
	}
	c.Access(addrs[0], false) // refresh line 0
	c.Access(4*sets*blk, false)
	if _, hit, _ := c.Access(addrs[0], false); !hit {
		t.Error("recently-used line was evicted")
	}
	if _, hit, _ := c.Access(addrs[1], false); hit {
		t.Error("LRU line should have been the victim")
	}
}

func TestCacheDisabledWay(t *testing.T) {
	spec := l1dSpec()
	spec.WayCycles = []int{0, 4, 4, 4}
	c := NewCache(spec)
	sets := uint64(c.NumSets())
	blk := uint64(32)
	// Three distinct blocks fit the 3 enabled ways of one set.
	for i := uint64(0); i < 3; i++ {
		c.Access(i*sets*blk, false)
	}
	for i := uint64(0); i < 3; i++ {
		if _, hit, _ := c.Access(i*sets*blk, false); !hit {
			t.Fatalf("block %d missing from 3 enabled ways", i)
		}
	}
	// A fourth block must evict exactly one resident (the LRU, block 0).
	c.Access(3*sets*blk, false)
	if _, hit, _ := c.Access(0, false); hit {
		t.Error("LRU block survived a fill into a full 3-way set")
	}
}

func TestCachePerWayLatency(t *testing.T) {
	spec := l1dSpec()
	spec.WayCycles = []int{5, 4, 4, 4}
	c := NewCache(spec)
	// Fill all ways of one set and re-touch: some hit must cost 5.
	sets := uint64(c.NumSets())
	blk := uint64(32)
	for i := uint64(0); i < 4; i++ {
		c.Access(i*sets*blk, false)
	}
	saw5 := false
	for i := uint64(0); i < 4; i++ {
		lat, hit, _ := c.Access(i*sets*blk, false)
		if !hit {
			t.Fatal("refill missed")
		}
		if lat == 5 {
			saw5 = true
		} else if lat != 4 {
			t.Fatalf("unexpected latency %d", lat)
		}
	}
	if !saw5 {
		t.Error("no hit was served by the 5-cycle way")
	}
	if c.SlowHits == 0 {
		t.Error("slow hits not counted")
	}
}

func TestCacheHRegionExclusion(t *testing.T) {
	spec := l1dSpec()
	spec.HRegionOff = 1
	c := NewCache(spec)
	// Every set must have exactly 3 enabled ways, and the excluded way
	// must differ across index regions (the Figure 5 rotation).
	seen := map[int]bool{}
	for set := 0; set < c.NumSets(); set++ {
		enabled := 0
		for w := 0; w < 4; w++ {
			if c.wayEnabled(set, w) {
				enabled++
			}
		}
		if enabled != 3 {
			t.Fatalf("set %d has %d enabled ways", set, enabled)
		}
		seen[c.excludedWay(set)] = true
	}
	if len(seen) != 4 {
		t.Errorf("excluded way covers %d distinct ways, want 4 (one per region)", len(seen))
	}
	// Capacity check: behaves as a 3-way cache — three blocks fit, the
	// fourth evicts.
	sets := uint64(c.NumSets())
	blk := uint64(32)
	for i := uint64(0); i < 3; i++ {
		c.Access(i*sets*blk, false)
	}
	for i := uint64(0); i < 3; i++ {
		if _, hit, _ := c.Access(i*sets*blk, false); !hit {
			t.Fatalf("block %d missing from the 3 available ways", i)
		}
	}
	c.Access(3*sets*blk, false)
	if _, hit, _ := c.Access(0, false); hit {
		t.Error("LRU block survived a fill into a full 3-way set")
	}
}

func TestCacheWritebacks(t *testing.T) {
	c := NewCache(l1dSpec())
	sets := uint64(c.NumSets())
	blk := uint64(32)
	c.Access(0, true) // dirty
	for i := uint64(1); i <= 4; i++ {
		c.Access(i*sets*blk, false)
	}
	if c.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1 (dirty line evicted)", c.Writebacks)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(NewCache(cfg.L1I), NewCache(cfg.L1D), NewCache(cfg.L2), cfg.MemCycles, cfg.MSHRs)
	// Cold load: L1 miss, L2 miss, memory: 4 + 25 + 350.
	done := h.DataAccess(0x10000, false, 100)
	if done != 100+4+25+350 {
		t.Errorf("cold access completes at %d, want %d", done, 100+4+25+350)
	}
	// Now in every level: L1 hit at 4 cycles.
	if done := h.DataAccess(0x10000, false, 200); done != 204 {
		t.Errorf("warm access completes at %d, want 204", done)
	}
	// Evict from L1 only (fill the set), then hit in L2 at 4+25.
	sets := uint64(h.L1D.NumSets())
	for i := uint64(1); i <= 4; i++ {
		h.DataAccess(0x10000+i*sets*32, false, 300)
	}
	if done := h.DataAccess(0x10000, false, 400); done != 400+4+25 {
		t.Errorf("L2 hit completes at %d, want %d", done, 400+4+25)
	}
}

func TestMSHRBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 1
	h := NewHierarchy(NewCache(cfg.L1I), NewCache(cfg.L1D), NewCache(cfg.L2), cfg.MemCycles, 1)
	// Two concurrent cold misses with a single MSHR: the second serialises.
	d1 := h.DataAccess(0x10000, false, 0)
	d2 := h.DataAccess(0x90000, false, 0)
	if d2 <= d1 {
		t.Errorf("second miss (%d) should wait for the single MSHR (first done %d)", d2, d1)
	}
	if h.MSHRStalls == 0 {
		t.Error("MSHR stall not counted")
	}
}

func TestWithL1D(t *testing.T) {
	cfg := DefaultConfig().WithL1D([]int{0, 5, 4, 4}, 2, 0)
	if cfg.L1D.WayCycles[0] != 0 || cfg.L1D.HRegionOff != 2 {
		t.Error("WithL1D did not apply")
	}
	if cfg.PredictedLoadCycles != 4 {
		t.Error("predicted latency should default to 4")
	}
	cfg = DefaultConfig().WithL1D(nil, -1, 6)
	if cfg.PredictedLoadCycles != 6 {
		t.Error("predicted latency override failed")
	}
}

// Property: for any address sequence the cache never reports more hits
// than accesses and inclusion of stats holds.
func TestCacheStatsProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := NewCache(l1dSpec())
		for _, a := range addrs {
			c.Access(uint64(a)*8, a%3 == 0)
		}
		return c.Misses <= c.Accesses && c.Accesses == uint64(len(addrs)) &&
			c.Writebacks <= c.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
