package cpu

import "yieldcache/internal/workload"

// Config is the processor configuration of Section 5.2.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROB         int
	IQ          int
	// FrontStages is the fetch-to-rename depth; SchedToExec is the
	// paper's "7 pipeline stages between the schedule and execute
	// stages", which sets both the speculative-scheduling window of load
	// dependents and part of the mispredict penalty.
	FrontStages int
	SchedToExec int

	// Functional units.
	IALUs, IMults, FPALUs, FPMults, MemPorts int

	// PredictedLoadCycles is what the scheduler assumes a load hit takes
	// when it speculatively schedules dependents: BaseCycles (4) for the
	// normal and VACA machines, the bin latency for naive binning
	// (Section 4.5).
	PredictedLoadCycles int
	// BypassEntries is the per-functional-unit-input load-bypass buffer
	// depth (Section 4.3 uses a single entry, covering 5-cycle loads).
	BypassEntries int
	// ReplayCycles is the selective-replay overhead charged to a
	// dependent that was speculatively scheduled but whose load missed.
	ReplayCycles int

	L1I CacheSpec
	L1D CacheSpec
	L2  CacheSpec
	// MemCycles is the memory access delay (350, Section 5.2); MSHRs
	// bounds outstanding misses (lock-up-free caches).
	MemCycles int
	MSHRs     int

	// StoreForwardWindow is how many instructions back a load can find a
	// matching store and receive its data via the LSQ at base latency.
	StoreForwardWindow int

	// NextLinePrefetch enables the L1D next-line prefetcher (not part of
	// the paper's machine; used by the prefetch ablation).
	NextLinePrefetch bool
}

// DefaultConfig returns the simulated processor of Section 5.2: 4-wide,
// IQ 128, ROB 256, L1I 16KB/4-way/64B/2cyc, L1D 16KB/4-way/32B/4cyc,
// unified L2 512KB/8-way/128B/25cyc, 350-cycle memory, 7 stages between
// schedule and execute.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		IssueWidth:  4,
		CommitWidth: 4,
		ROB:         256,
		IQ:          128,
		FrontStages: 4,
		SchedToExec: 7,

		IALUs: 4, IMults: 1, FPALUs: 4, FPMults: 1, MemPorts: 2,

		PredictedLoadCycles: 4,
		BypassEntries:       1,
		ReplayCycles:        3,

		L1I: CacheSpec{Name: "L1I", SizeKB: 16, Assoc: 4, BlockBytes: 64, HitCycles: 2, HRegionOff: -1},
		L1D: CacheSpec{Name: "L1D", SizeKB: 16, Assoc: 4, BlockBytes: 32, HitCycles: 4, HRegionOff: -1},
		L2:  CacheSpec{Name: "L2", SizeKB: 512, Assoc: 8, BlockBytes: 128, HitCycles: 25, HRegionOff: -1},

		MemCycles: 350,
		MSHRs:     8,

		StoreForwardWindow: 64,
	}
}

// WithL1D returns a copy of the config with the L1 data cache's per-way
// latencies, disabled horizontal region and scheduler prediction set.
// wayCycles entries are cycle counts (0 = way disabled); nil keeps the
// uniform 4-cycle cache. predicted 0 keeps the default prediction.
func (c Config) WithL1D(wayCycles []int, hRegionOff, predicted int) Config {
	c.L1D.WayCycles = wayCycles
	c.L1D.HRegionOff = hRegionOff
	if predicted > 0 {
		c.PredictedLoadCycles = predicted
	}
	return c
}

// opLatency returns the execution latency of an op class, matching
// SimpleScalar's defaults.
func opLatency(op workload.OpClass) int {
	switch op {
	case workload.IALU, workload.Branch:
		return 1
	case workload.IMul:
		return 3
	case workload.IDiv:
		return 20
	case workload.FAdd:
		return 2
	case workload.FMul:
		return 4
	case workload.FDiv:
		return 12
	case workload.Load, workload.Store:
		return 1 // address generation; memory time comes from the hierarchy
	default:
		return 1
	}
}

// pipelined reports whether the unit accepts a new op every cycle.
func pipelined(op workload.OpClass) bool {
	return op != workload.IDiv && op != workload.FDiv
}
