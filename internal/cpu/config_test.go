package cpu

import (
	"testing"

	"yieldcache/internal/workload"
)

func TestDefaultConfigMatchesSection52(t *testing.T) {
	c := DefaultConfig()
	if c.FetchWidth != 4 || c.IssueWidth != 4 || c.CommitWidth != 4 {
		t.Error("the paper's processor is 4-wide")
	}
	if c.IQ != 128 || c.ROB != 256 {
		t.Error("issue queue 128 / ROB 256 per Section 5.2")
	}
	if c.SchedToExec != 7 {
		t.Error("7 pipeline stages between schedule and execute")
	}
	if c.L1I.SizeKB != 16 || c.L1I.BlockBytes != 64 || c.L1I.HitCycles != 2 {
		t.Errorf("L1I spec wrong: %+v", c.L1I)
	}
	if c.L1D.SizeKB != 16 || c.L1D.Assoc != 4 || c.L1D.BlockBytes != 32 || c.L1D.HitCycles != 4 {
		t.Errorf("L1D spec wrong: %+v", c.L1D)
	}
	if c.L2.SizeKB != 512 || c.L2.Assoc != 8 || c.L2.BlockBytes != 128 || c.L2.HitCycles != 25 {
		t.Errorf("L2 spec wrong: %+v", c.L2)
	}
	if c.MemCycles != 350 {
		t.Error("memory delay is 350 cycles")
	}
	if c.PredictedLoadCycles != 4 || c.BypassEntries != 1 {
		t.Error("VACA defaults wrong")
	}
	for _, spec := range []CacheSpec{c.L1I, c.L1D, c.L2} {
		if err := spec.Validate(); err != nil {
			t.Errorf("default %s invalid: %v", spec.Name, err)
		}
	}
}

func TestOpLatencies(t *testing.T) {
	cases := map[workload.OpClass]int{
		workload.IALU: 1, workload.Branch: 1, workload.IMul: 3,
		workload.IDiv: 20, workload.FAdd: 2, workload.FMul: 4,
		workload.FDiv: 12, workload.Load: 1, workload.Store: 1,
	}
	for op, want := range cases {
		if got := opLatency(op); got != want {
			t.Errorf("latency(%v) = %d, want %d", op, got, want)
		}
	}
	if pipelined(workload.IDiv) || pipelined(workload.FDiv) {
		t.Error("dividers are unpipelined")
	}
	if !pipelined(workload.IALU) || !pipelined(workload.FMul) {
		t.Error("ALUs and multipliers are pipelined")
	}
}

func TestDetailedHRegionMatchesWayShutdown(t *testing.T) {
	// The detailed core must also honour the horizontal-region exclusion
	// with ~3-way behaviour.
	base := runDetailed(t, "gcc", 60000, DefaultConfig())
	hoff := runDetailed(t, "gcc", 60000, DefaultConfig().WithL1D(nil, 1, 4))
	if hoff.CPI <= base.CPI {
		t.Error("region shutdown should cost cycles in the detailed core too")
	}
	if hoff.L1DMisses <= base.L1DMisses {
		t.Error("region shutdown should add misses")
	}
}

func TestRunMatchesResultAccounting(t *testing.T) {
	p, _ := workload.ByName("gap")
	r := Run(workload.NewGenerator(p, 4), 50000, DefaultConfig())
	if r.Cycles == 0 || r.CPI != float64(r.Cycles)/float64(r.Instructions) {
		t.Error("CPI accounting inconsistent")
	}
	if r.L1DMisses > r.L1DAccesses {
		t.Error("more misses than accesses")
	}
	if r.MemAccesses > r.L2Misses+r.L1IMisses {
		t.Error("memory accesses exceed L2 misses")
	}
}
