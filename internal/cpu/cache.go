// Package cpu is the cycle-level out-of-order processor model that
// stands in for the paper's modified SimpleScalar 3.0. It implements the
// Section 5.2 machine: a 4-wide core with a 128-entry issue queue, a
// 256-entry ROB, 7 pipeline stages between schedule and execute,
// speculative scheduling of load dependents with load-bypass buffers and
// selective replay (the VACA datapath of Section 4.3), and a lock-up-free
// two-level cache hierarchy whose L1 data cache supports per-way
// latencies, disabled ways and disabled horizontal regions.
package cpu

import "fmt"

// CacheSpec describes one cache array.
type CacheSpec struct {
	Name       string
	SizeKB     int
	Assoc      int
	BlockBytes int
	// HitCycles is the uniform hit latency. For the L1 data cache,
	// WayCycles overrides it per way: entry w is the hit latency of way
	// w, and 0 marks the way as powered down (YAPD).
	HitCycles int
	WayCycles []int
	// HRegionOff disables one horizontal region (-1 = none): each set
	// loses exactly one way, a different way per region of the set index
	// space, matching the rotated post-decoders of Figure 5.
	HRegionOff int
	// Regions is the number of horizontal regions (banks) used by the
	// HRegionOff mapping; defaults to Assoc.
	Regions int
}

// Validate checks the spec for internal consistency.
func (s CacheSpec) Validate() error {
	if s.SizeKB <= 0 || s.Assoc <= 0 || s.BlockBytes <= 0 {
		return fmt.Errorf("cpu: %s: non-positive geometry", s.Name)
	}
	sets := s.SizeKB * 1024 / s.BlockBytes / s.Assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cpu: %s: set count %d is not a positive power of two", s.Name, sets)
	}
	if s.BlockBytes&(s.BlockBytes-1) != 0 {
		return fmt.Errorf("cpu: %s: block size %d is not a power of two", s.Name, s.BlockBytes)
	}
	if s.WayCycles != nil && len(s.WayCycles) != s.Assoc {
		return fmt.Errorf("cpu: %s: WayCycles has %d entries for %d ways", s.Name, len(s.WayCycles), s.Assoc)
	}
	enabled := s.Assoc
	if s.WayCycles != nil {
		enabled = 0
		for _, c := range s.WayCycles {
			if c != 0 {
				enabled++
			}
		}
	}
	if s.HRegionOff >= 0 {
		enabled--
	}
	if enabled <= 0 {
		return fmt.Errorf("cpu: %s: no enabled ways", s.Name)
	}
	return nil
}

type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// Cache is a set-associative array with true LRU replacement.
type Cache struct {
	Spec      CacheSpec
	sets      [][]cacheLine
	blockBits uint
	setMask   uint64
	tick      uint64

	Accesses uint64
	Misses   uint64
	// SlowHits counts hits served by a way slower than the base latency
	// (the 5-cycle hits of VACA).
	SlowHits   uint64
	Writebacks uint64
}

// NewCache builds a cache from the spec; it panics on an invalid spec
// (specs are programmer-provided configuration, not runtime input).
func NewCache(spec CacheSpec) *Cache {
	if spec.Regions == 0 {
		spec.Regions = spec.Assoc
	}
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	numSets := spec.SizeKB * 1024 / spec.BlockBytes / spec.Assoc
	c := &Cache{Spec: spec, setMask: uint64(numSets - 1)}
	for spec.BlockBytes>>c.blockBits > 1 {
		c.blockBits++
	}
	c.sets = make([][]cacheLine, numSets)
	lines := make([]cacheLine, numSets*spec.Assoc)
	for i := range c.sets {
		c.sets[i], lines = lines[:spec.Assoc], lines[spec.Assoc:]
	}
	return c
}

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	blk := addr >> c.blockBits
	return int(blk & c.setMask), blk >> 0 // tag includes set bits; fine for equality
}

// wayEnabled reports whether way w may hold data for the given set.
func (c *Cache) wayEnabled(set, w int) bool {
	if c.Spec.WayCycles != nil && c.Spec.WayCycles[w] == 0 {
		return false
	}
	if c.Spec.HRegionOff >= 0 && c.excludedWay(set) == w {
		return false
	}
	return true
}

// excludedWay implements the Figure 5 post-decoder rotation: the sets of
// region r lose way (HRegionOff + r) mod Assoc, so every address keeps
// Assoc-1 places and the disabled physical region maps to a different
// way in each region of the index space.
func (c *Cache) excludedWay(set int) int {
	regions := c.Spec.Regions
	region := set * regions / len(c.sets)
	return (c.Spec.HRegionOff + region) % c.Spec.Assoc
}

// HitLatency returns the hit latency of way w.
func (c *Cache) HitLatency(w int) int {
	if c.Spec.WayCycles != nil {
		return c.Spec.WayCycles[w]
	}
	return c.Spec.HitCycles
}

// Access looks up addr, updating LRU state and statistics. On a miss it
// fills the line (evicting the LRU enabled way) and reports the miss to
// the caller, which models the next level. isWrite marks the line dirty.
// It returns the hit latency in cycles and whether it was a hit; on a
// miss the returned latency is 0 and the caller adds the lower-level
// time. evictedDirty reports whether the fill displaced a dirty line.
func (c *Cache) Access(addr uint64, isWrite bool) (lat int, hit bool, evictedDirty bool) {
	c.tick++
	c.Accesses++
	set, tag := c.index(addr)
	lines := c.sets[set]
	for w := range lines {
		if !c.wayEnabled(set, w) {
			continue
		}
		if lines[w].valid && lines[w].tag == tag {
			lines[w].lru = c.tick
			if isWrite {
				lines[w].dirty = true
			}
			l := c.HitLatency(w)
			if l > c.baseLatency() {
				c.SlowHits++
			}
			return l, true, false
		}
	}
	c.Misses++
	// Fill: an invalid enabled way if there is one (hash-picked so that
	// long-lived lines spread across ways instead of piling into way 0 —
	// a lowest-index preference would systematically park the hottest
	// blocks in one way and bias the per-way-latency results), otherwise
	// the LRU enabled way.
	victim := -1
	nInvalid := 0
	for w := range lines {
		if !c.wayEnabled(set, w) {
			continue
		}
		if !lines[w].valid {
			nInvalid++
			continue
		}
		if victim < 0 || (lines[victim].valid && lines[w].lru < lines[victim].lru) {
			victim = w
		}
	}
	if nInvalid > 0 {
		pick := int((tag ^ uint64(set)) % uint64(nInvalid))
		for w := range lines {
			if !c.wayEnabled(set, w) || lines[w].valid {
				continue
			}
			if pick == 0 {
				victim = w
				break
			}
			pick--
		}
	}
	if victim < 0 {
		panic("cpu: cache access with no enabled ways")
	}
	evictedDirty = lines[victim].valid && lines[victim].dirty
	if evictedDirty {
		c.Writebacks++
	}
	lines[victim] = cacheLine{tag: tag, valid: true, dirty: isWrite, lru: c.tick}
	return 0, false, evictedDirty
}

// Prefetch fills addr's block if it is not resident, without touching
// the demand-access statistics. It reports whether a fill happened.
func (c *Cache) Prefetch(addr uint64) bool {
	set, tag := c.index(addr)
	lines := c.sets[set]
	for w := range lines {
		if c.wayEnabled(set, w) && lines[w].valid && lines[w].tag == tag {
			return false
		}
	}
	before := c.Accesses
	missBefore := c.Misses
	c.Access(addr, false)
	c.Accesses = before
	c.Misses = missBefore
	return true
}

// baseLatency is the fastest configured hit latency.
func (c *Cache) baseLatency() int {
	if c.Spec.WayCycles == nil {
		return c.Spec.HitCycles
	}
	best := 0
	for _, l := range c.Spec.WayCycles {
		if l > 0 && (best == 0 || l < best) {
			best = l
		}
	}
	return best
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Hierarchy ties the caches together with the memory latency and a
// finite set of MSHRs (the caches are lock-up free, Section 5.2).
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	MemCycles    int

	// NextLinePrefetch fills block B+1 into the L1D on every demand miss
	// to block B — not part of the paper's machine (an extension knob
	// for the prefetch ablation; sequential workloads stop paying the
	// L2 round-trip on every fourth access).
	NextLinePrefetch bool

	mshrFree []int64 // completion time per MSHR slot

	L2Accesses    uint64
	L2Misses      uint64
	MemAccesses   uint64
	MSHRStalls    uint64
	PrefetchFills uint64
}

// NewHierarchy builds the hierarchy with the given MSHR count.
func NewHierarchy(l1i, l1d, l2 *Cache, memCycles, mshrs int) *Hierarchy {
	if mshrs <= 0 {
		mshrs = 1
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, MemCycles: memCycles, mshrFree: make([]int64, mshrs)}
}

// mshrAcquire returns the earliest time at or after now at which a slot
// is free, and books the slot until done.
func (h *Hierarchy) mshrAcquire(now int64, busy int) int64 {
	best := 0
	for i, t := range h.mshrFree {
		if t < h.mshrFree[best] {
			best = i
		}
	}
	start := now
	if h.mshrFree[best] > now {
		start = h.mshrFree[best]
		h.MSHRStalls++
	}
	h.mshrFree[best] = start + int64(busy)
	return start
}

// missPath returns the latency beyond L1 for a miss issued at time now:
// the L2 lookup, and the memory access on an L2 miss. Dirty evictions
// are modelled as writeback traffic counters only.
func (h *Hierarchy) missPath(addr uint64, isWrite bool, now int64) int64 {
	_, l2hit, _ := h.L2.Access(addr, isWrite)
	h.L2Accesses++
	lat := int64(h.L2.Spec.HitCycles)
	if !l2hit {
		h.L2Misses++
		h.MemAccesses++
		lat += int64(h.MemCycles)
	}
	start := h.mshrAcquire(now, int(lat))
	return (start - now) + lat
}

// DataAccess performs a load or store at time now and returns the cycle
// at which the data is available (loads) or the line is owned (stores).
func (h *Hierarchy) DataAccess(addr uint64, isWrite bool, now int64) int64 {
	lat, hit, _ := h.L1D.Access(addr, isWrite)
	if hit {
		return now + int64(lat)
	}
	done := now + int64(h.L1D.baseLatency()) + h.missPath(addr, isWrite, now)
	if h.NextLinePrefetch {
		// Fill the next block too; the prefetch rides the same miss
		// window (its MSHR/L2 occupancy is charged, its latency is not
		// on the demand path). Skip if already resident.
		next := addr + uint64(h.L1D.Spec.BlockBytes)
		if h.L1D.Prefetch(next) {
			h.missPath(next, false, now)
			h.PrefetchFills++
		}
	}
	return done
}

// FetchAccess performs an instruction fetch of the block containing pc
// and returns the cycle at which the block is available.
func (h *Hierarchy) FetchAccess(pc uint64, now int64) int64 {
	lat, hit, _ := h.L1I.Access(pc, false)
	if hit {
		return now + int64(lat)
	}
	return now + int64(h.L1I.Spec.HitCycles) + h.missPath(pc, false, now)
}
