package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// Every real study build streams yield estimates: the response must
// carry the final estimate block, post-hoc Wilson intervals on every
// breakdown yield, and the GET /v1/jobs/{id}/estimate endpoint must
// serve the same final snapshot.
func TestStudyResponseCarriesEstimateAndYieldCIs(t *testing.T) {
	srv := New(Config{Workers: 1, FlightInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, res, _ := postStudy(t, ts.URL, `{"chips": 120, "seed": 2006}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("study: status %d", resp.StatusCode)
	}
	if res.Estimate == nil {
		t.Fatal("study response has no estimate block")
	}
	e := res.Estimate
	if e.Chips != 120 || e.Total != 120 || e.EarlyStop || res.EarlyStop {
		t.Errorf("final estimate shape = %+v (early_stop %v)", e, res.EarlyStop)
	}
	if e.Confidence != 0.95 {
		t.Errorf("estimate confidence = %v, want the 0.95 default", e.Confidence)
	}
	if e.CILow > e.Yield || e.CIHigh < e.Yield || e.HalfWidth <= 0 {
		t.Errorf("estimate interval [%v, %v] around %v (half-width %v)",
			e.CILow, e.CIHigh, e.Yield, e.HalfWidth)
	}
	if got, want := e.Yield, res.Regular.Yields["base"]; got != want {
		t.Errorf("estimate yield %v != breakdown base yield %v", got, want)
	}
	if len(e.Reasons) == 0 {
		t.Error("estimate has no per-reason error bars")
	}

	for _, bd := range []Breakdown{res.Regular, res.Horizontal} {
		for name, y := range bd.Yields {
			ci, ok := bd.YieldCIs[name]
			if !ok {
				t.Errorf("breakdown yield %q has no confidence interval", name)
				continue
			}
			if ci.Low > y || ci.High < y {
				t.Errorf("yield %q: interval [%v, %v] does not bracket %v", name, ci.Low, ci.High, y)
			}
		}
	}

	id := resp.Header.Get("X-Job-Id")
	jr, err := http.Get(ts.URL + "/v1/jobs/" + id + "/estimate")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	if jr.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s/estimate: status %d", id, jr.StatusCode)
	}
	var je JobEstimateResponse
	if err := json.NewDecoder(jr.Body).Decode(&je); err != nil {
		t.Fatal(err)
	}
	if je.Job != id || je.State != jobDone {
		t.Errorf("estimate endpoint job/state = %s/%s, want %s/done", je.Job, je.State, id)
	}
	if je.Estimate.Chips != 120 || je.Estimate.Yield != e.Yield {
		t.Errorf("endpoint estimate %+v differs from response estimate %+v", je.Estimate, e)
	}
}

// A precision-targeted study stops sampling before the requested
// population: the response records early_stop, the estimate meets the
// target, the tables cover only the measured prefix, and the job
// summary carries the provenance flag.
func TestStudyPrecisionEarlyStop(t *testing.T) {
	srv := New(Config{Workers: 1, FlightInterval: -1, MaxChips: 20000, StreamInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, res, _ := postStudy(t, ts.URL,
		`{"chips": 4000, "seed": 2006, "precision": {"target_ci_width": 0.05}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("study: status %d", resp.StatusCode)
	}
	if !res.EarlyStop || res.Estimate == nil || !res.Estimate.EarlyStop {
		t.Fatalf("precision study did not stop early: early_stop=%v estimate=%+v",
			res.EarlyStop, res.Estimate)
	}
	if res.Estimate.Chips >= 4000 {
		t.Errorf("stopped at %d chips, expected fewer than 4000", res.Estimate.Chips)
	}
	if res.Estimate.HalfWidth > 0.05 {
		t.Errorf("final half-width %v exceeds the 0.05 target", res.Estimate.HalfWidth)
	}
	if res.Regular.N != res.Estimate.Chips {
		t.Errorf("breakdown covers %d chips, estimate says %d measured", res.Regular.N, res.Estimate.Chips)
	}

	id := resp.Header.Get("X-Job-Id")
	jr, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	var jd JobDetail
	if err := json.NewDecoder(jr.Body).Decode(&jd); err != nil {
		t.Fatal(err)
	}
	if !jd.EarlyStop {
		t.Errorf("job detail lacks early_stop: %+v", jd.JobSummary)
	}

	// The same request without a precision target must not share the
	// truncated cache entry: the full-population build reports no
	// early stop and covers all 4000 chips.
	resp2, full, _ := postStudy(t, ts.URL, `{"chips": 4000, "seed": 2006}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("full study: status %d", resp2.StatusCode)
	}
	if full.Cached || full.EarlyStop || full.Regular.N != 4000 {
		t.Errorf("full study after precision study: cached=%v early_stop=%v n=%d",
			full.Cached, full.EarlyStop, full.Regular.N)
	}
}

// Precision validation: out-of-range targets and confidences are 400s.
func TestStudyPrecisionValidation(t *testing.T) {
	srv := New(Config{Workers: 1, FlightInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"chips": 40, "precision": {"target_ci_width": 0}}`,
		`{"chips": 40, "precision": {"target_ci_width": 1.5}}`,
		`{"chips": 40, "precision": {"target_ci_width": 0.1, "confidence": 1}}`,
		`{"chips": 40, "precision": {"target_ci_width": 0.1, "confidence": -0.5}}`,
	} {
		resp, _, fail := postStudy(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", body, resp.StatusCode)
		}
		if fail.Class != "validation" {
			t.Errorf("%s: class %q, want validation", body, fail.Class)
		}
	}
}

// The estimate endpoint 404s for unknown jobs and for jobs that never
// published a snapshot (here: a job that was shed at admission).
func TestJobEstimateNotFound(t *testing.T) {
	srv := New(Config{Workers: 1, FlightInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/jobs/j999999/estimate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job estimate: status %d, want 404", resp.StatusCode)
	}
}

// Sweep results carry post-hoc Wilson intervals on the base and
// per-scheme yields of every config.
func TestSweepYieldCIs(t *testing.T) {
	srv := New(Config{Workers: 1, FlightInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, sw, _ := postSweep(t, ts.URL, `{"chips": 60, "seed": 2006}`, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d", resp.StatusCode)
	}
	if len(sw.Results) == 0 {
		t.Fatal("sweep returned no results")
	}
	for _, r := range sw.Results {
		if r.BaseCILow > r.BaseYield || r.BaseCIHigh < r.BaseYield {
			t.Errorf("config %d: base interval [%v, %v] does not bracket %v",
				r.Index, r.BaseCILow, r.BaseCIHigh, r.BaseYield)
		}
		if r.BaseCILow == 0 && r.BaseCIHigh == 0 {
			t.Errorf("config %d: base interval missing", r.Index)
		}
		for _, y := range r.Yields {
			if y.CILow > y.Yield || y.CIHigh < y.Yield {
				t.Errorf("config %d scheme %s: interval [%v, %v] does not bracket %v",
					r.Index, y.Scheme, y.CILow, y.CIHigh, y.Yield)
			}
		}
	}
}
