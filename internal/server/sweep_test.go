package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"yieldcache/internal/obs"
	"yieldcache/internal/store"
)

func postSweep(t *testing.T, url, body, idemKey string) (*http.Response, SweepResponse, ErrorResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/sweep: %v", err)
	}
	defer resp.Body.Close()
	var ok SweepResponse
	var fail ErrorResponse
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&ok); err != nil {
			t.Fatalf("decoding SweepResponse: %v", err)
		}
	} else {
		if err := dec.Decode(&fail); err != nil {
			t.Fatalf("decoding ErrorResponse (status %d): %v", resp.StatusCode, err)
		}
	}
	return resp, ok, fail
}

// A real two-config sweep end to end: delta reuse in the stats, dense
// results, frontiers over every scheme, a cache hit on the second
// request, and economics as pure presentation.
func TestSweepEndToEnd(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"chips": 60, "seed": 2006, "axes": [{"param": "vdd", "values": [1.1, 1.05]}]}`
	resp, first, _ := postSweep(t, ts.URL, body, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first sweep: status %d", resp.StatusCode)
	}
	if first.Cached {
		t.Error("first sweep reported cached")
	}
	if first.Configs != 2 || len(first.Results) != 2 {
		t.Fatalf("configs = %d, results = %d, want 2", first.Configs, len(first.Results))
	}
	if first.Stats.FullBuilds != 1 || first.Stats.DeltaBuilds != 1 {
		t.Errorf("stats = %+v, want 1 full + 1 delta build", first.Stats)
	}
	for i, r := range first.Results {
		if r.Index != i {
			t.Errorf("results[%d].Index = %d, not dense", i, r.Index)
		}
		if r.Label == "" || len(r.Yields) != 3 {
			t.Errorf("results[%d] incomplete: label %q, %d yields", i, r.Label, len(r.Yields))
		}
		if r.Economics != nil {
			t.Errorf("results[%d] has economics without an economics spec", i)
		}
	}
	if first.Results[0].MeanLatencyPS == first.Results[1].MeanLatencyPS {
		t.Error("vdd axis did not move mean latency")
	}
	for _, name := range []string{"Base", "YAPD", "VACA", "Hybrid"} {
		front, ok := first.Frontiers[name]
		if !ok || len(front) == 0 {
			t.Errorf("frontier %q missing or empty", name)
			continue
		}
		for _, idx := range front {
			if idx < 0 || idx >= len(first.Results) {
				t.Errorf("frontier %q index %d out of range", name, idx)
			}
		}
	}

	// Same grid with economics: a cache hit, priced per request.
	econBody := `{"chips": 60, "seed": 2006, "axes": [{"param": "vdd", "values": [1.1, 1.05]}], "economics": {}}`
	resp, second, _ := postSweep(t, ts.URL, econBody, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second sweep: status %d", resp.StatusCode)
	}
	if !second.Cached {
		t.Error("identical grid not served from the cache")
	}
	for i, r := range second.Results {
		if len(r.Economics) != 4 {
			t.Fatalf("results[%d]: %d economics rows, want 4 (base + 3 schemes)", i, len(r.Economics))
		}
		if r.Economics[0].Scheme != "Base" {
			t.Errorf("results[%d]: first economics row is %q, want Base", i, r.Economics[0].Scheme)
		}
		for _, e := range r.Economics[1:] {
			if e.RevenuePerWafer < r.Economics[0].RevenuePerWafer {
				t.Errorf("results[%d]: scheme %s earns less than base", i, e.Scheme)
			}
		}
	}
	if got := reg.Counter("server_sweep_cache_hits_total").Value(); got != 1 {
		t.Errorf("sweep cache hits = %d, want 1", got)
	}

	// A third request without economics must not see the second
	// request's pricing leak into the cached entry.
	_, third, _ := postSweep(t, ts.URL, body, "")
	for i, r := range third.Results {
		if r.Economics != nil {
			t.Errorf("results[%d]: economics leaked into the cached response", i)
		}
	}

	// The job registry reports the sweep kind.
	jresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var jobs JobsResponse
	if err := json.NewDecoder(jresp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range jobs.Jobs {
		if j.Kind == "sweep" {
			found = true
			if j.ChipsDone != 2 || j.ChipsTotal != 2 {
				t.Errorf("sweep job progress %d/%d, want 2/2 configs", j.ChipsDone, j.ChipsTotal)
			}
		}
	}
	if !found {
		t.Error("no job with kind=sweep in /v1/jobs")
	}
}

func TestSweepValidation(t *testing.T) {
	srv := New(Config{Workers: 1, MaxSweepConfigs: 4, MaxChips: 1000})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, body, wantSubstr string
	}{
		{"unknown param", `{"chips": 50, "axes": [{"param": "threshold", "values": [0.3]}]}`, "unknown tech parameter"},
		{"empty axis", `{"chips": 50, "axes": [{"param": "vdd", "values": []}]}`, "no values"},
		{"unknown scheme", `{"chips": 50, "schemes": ["YAPD", "Turbo"]}`, "unknown scheme"},
		{"grid too large", `{"chips": 50, "axes": [{"param": "vdd", "values": [1, 2, 3, 4, 5]}]}`, "exceeding the server limit"},
		{"chips too large", `{"chips": 100000}`, "exceeds the server limit"},
		{"bad custom constraints", `{"chips": 50, "constraints": [{"name": "loose"}]}`, "named set"},
		{"named plus custom", `{"chips": 50, "constraints": [{"name": "nominal", "delay_sigma_k": 2}]}`, "cannot also carry"},
		{"unknown field", `{"chip_count": 50}`, "unknown field"},
		{"bad geometry", `{"chips": 50, "geometries": [{"ways": 9, "banks_per_way": 4, "rows_per_bank": 64, "bits_per_row": 128, "paths_per_bank": 2}]}`, "ways"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _, fail := postSweep(t, ts.URL, tc.body, "")
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			if !strings.Contains(fail.Error, tc.wantSubstr) {
				t.Errorf("error %q does not mention %q", fail.Error, tc.wantSubstr)
			}
		})
	}
}

// One Idempotency-Key, byte-identical bodies, two endpoints: the sweep
// must see a body conflict, not replay the study's response.
func TestSweepIdempotencyCrossEndpointConflict(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"chips": 50, "seed": 2006}`
	resp, _, _ := postStudyIdem(t, ts.URL, body, "shared-key")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("study: status %d", resp.StatusCode)
	}
	resp, _, fail := postSweep(t, ts.URL, body, "shared-key")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("sweep with reused key: status %d, want 409", resp.StatusCode)
	}
	if fail.Class != string(obs.ClassValidation) {
		t.Errorf("conflict class %q, want validation", fail.Class)
	}
}

// Kill -9 mid-sweep: the new server must resume from the config
// checkpoint under the same job id and produce results and frontiers
// bit-identical to an uninterrupted sweep.
func TestCrashedSweepResumesBitIdentical(t *testing.T) {
	body := `{"chips": 500, "seed": 2006, "axes": [{"param": "vdd", "values": [1.1, 1.08, 1.05, 1.02]}]}`

	ref := New(Config{Workers: 2})
	tsRef := httptest.NewServer(ref.Handler())
	_, want, _ := postSweep(t, tsRef.URL, body, "")
	drain(t, ref)
	tsRef.Close()
	if want.Configs != 4 {
		t.Fatalf("reference sweep resolved to %d configs, want 4", want.Configs)
	}

	st := store.NewMem()
	srv1 := New(Config{Workers: 2, Store: st, CheckpointInterval: time.Millisecond})
	ts1 := httptest.NewServer(srv1.Handler())
	go func() {
		resp, err := http.Post(ts1.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	var crash *store.Mem
	var jobID string
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		rec, err := st.Recover()
		if err != nil {
			t.Fatalf("Recover: %v", err)
		}
		if len(rec.Jobs) > 0 {
			jobID = rec.Jobs[0].ID
			if _, configs, err := st.Checkpoint(jobID); err == nil && configs > 0 && configs < 4 {
				crash = st.Clone() // the kill -9 instant
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	// Abandon srv1 without draining so the clone stays frozen.
	ts1.Close()
	if crash == nil {
		t.Skip("sweep finished before a mid-flight checkpoint landed; nothing to crash")
	}

	srv2 := New(Config{Workers: 2, Store: crash, CheckpointInterval: time.Millisecond})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer drain(t, srv2)

	var detail JobDetail
	for i := 0; ; i++ {
		jresp, err := http.Get(ts2.URL + "/v1/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		if jresp.StatusCode != http.StatusOK {
			t.Fatalf("resumed sweep %s not found after restart: status %d", jobID, jresp.StatusCode)
		}
		if err := json.NewDecoder(jresp.Body).Decode(&detail); err != nil {
			t.Fatal(err)
		}
		jresp.Body.Close()
		if detail.State == jobDone || detail.State == jobFailed {
			break
		}
		if i > 20000 {
			t.Fatalf("resumed sweep stuck in state %q", detail.State)
		}
		time.Sleep(time.Millisecond)
	}
	if detail.State != jobDone {
		t.Fatalf("resumed sweep finished %q (%s), want done", detail.State, detail.Error)
	}
	if detail.Kind != "sweep" || !detail.Resumed || detail.Restarts != 1 {
		t.Errorf("resumed sweep reports kind=%q resumed=%v restarts=%d, want sweep/true/1",
			detail.Kind, detail.Resumed, detail.Restarts)
	}

	resp, got, _ := postSweep(t, ts2.URL, body, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetching resumed sweep: status %d", resp.StatusCode)
	}
	if !got.Cached {
		t.Error("resumed sweep result not served from cache")
	}
	if got.ResumedConfigs == 0 {
		t.Error("resumed sweep reports zero resumed configs")
	}
	assertSameSweep(t, got, want)
}

// assertSameSweep compares the science of two sweep responses: every
// config evaluation and every frontier, bit for bit.
func assertSameSweep(t *testing.T, got, want SweepResponse) {
	t.Helper()
	g, err := json.Marshal(struct {
		Results   []SweepConfigResult
		Frontiers map[string][]int
	}{got.Results, got.Frontiers})
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(struct {
		Results   []SweepConfigResult
		Frontiers map[string][]int
	}{want.Results, want.Frontiers})
	if err != nil {
		t.Fatal(err)
	}
	if string(g) != string(w) {
		t.Errorf("sweep results diverge:\n got %s\nwant %s", g, w)
	}
}
