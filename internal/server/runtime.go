package server

import (
	"net/http"

	"yieldcache/internal/obs"
)

// handleRuntimeHistory serves GET /v1/runtime/history: the flight
// recorder's ring of runtime samples (goroutines, heap, GC, worker-pool
// occupancy, queue depth, EWMA build estimate), oldest first. With the
// recorder disabled (-flight-interval < 0) the response carries zero
// capacity and no samples.
func (s *Server) handleRuntimeHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	out := RuntimeHistoryResponse{Samples: []obs.RuntimeSample{}}
	if s.flight != nil {
		out.IntervalMS = s.flight.Interval().Seconds() * 1e3
		out.Capacity = s.flight.Capacity()
		if hist := s.flight.History(); hist != nil {
			out.Samples = hist
		}
	}
	writeJSON(w, http.StatusOK, out)
}
