package server

import (
	"time"

	"yieldcache/internal/obs"
)

// StudyRequest is the body of POST /v1/study. Zero fields take the
// paper's defaults (seed 2006, 2000 chips, nominal constraints, all
// three schemes). docs/API.md is the authoritative field reference.
type StudyRequest struct {
	// Seed drives all process-variation sampling (default 2006).
	Seed int64 `json:"seed,omitempty"`
	// Chips is the Monte Carlo population size (default 2000, capped by
	// the server's -max-chips).
	Chips int `json:"chips,omitempty"`
	// Constraints names a yield requirement: nominal, relaxed or strict
	// (default nominal). Mutually exclusive with CustomConstraints.
	Constraints string `json:"constraints,omitempty"`
	// CustomConstraints sets the requirement parameters directly.
	CustomConstraints *CustomConstraints `json:"custom_constraints,omitempty"`
	// Schemes selects the yield-aware schemes to evaluate, a subset of
	// YAPD, VACA, Hybrid (default all). On the horizontal organisation
	// the analogues H-YAPD and horizontal Hybrid are substituted.
	Schemes []string `json:"schemes,omitempty"`
	// IncludeScatter adds the Figure 8 per-chip scatter to the response.
	IncludeScatter bool `json:"include_scatter,omitempty"`
	// IncludeSavedConfigs adds the Table 6 row keys (saved way-latency
	// configurations) to the response.
	IncludeSavedConfigs bool `json:"include_saved_configs,omitempty"`
	// TimeoutMS bounds the study build in milliseconds (default and cap
	// set by the server; exceeding the deadline returns 504).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Precision, when present, stops sampling early: the build ends as
	// soon as the streaming yield interval is at least as tight as the
	// requested half-width. The response's estimate block records the
	// decision (early_stop) and the populations are truncated to the
	// measured prefix.
	Precision *PrecisionSpec `json:"precision,omitempty"`
}

// PrecisionSpec is the optional precision target of a study: stop
// sampling once the Wilson interval on the base yield has half-width
// at most TargetCIWidth at the given confidence.
type PrecisionSpec struct {
	// TargetCIWidth is the half-width the yield interval must reach
	// before sampling stops (0 < w < 1). Required.
	TargetCIWidth float64 `json:"target_ci_width"`
	// Confidence is the interval's confidence level (default 0.95).
	Confidence float64 `json:"confidence,omitempty"`
}

// CustomConstraints is a caller-defined yield requirement: the delay
// limit sits DelaySigmaK standard deviations above the population mean
// latency and the leakage limit is LeakageMult times the average.
type CustomConstraints struct {
	DelaySigmaK float64 `json:"delay_sigma_k"`
	LeakageMult float64 `json:"leakage_mult"`
}

// StudyResponse is the body of a successful POST /v1/study.
type StudyResponse struct {
	Seed        int64           `json:"seed"`
	Chips       int             `json:"chips"`
	Constraints ConstraintsInfo `json:"constraints"`
	Limits      LimitsInfo      `json:"limits"`
	// Regular is the Table 2 loss breakdown (regular power-down cache).
	Regular Breakdown `json:"regular"`
	// Horizontal is the Table 3 loss breakdown (horizontal power-down
	// cache, judged against the regular organisation's limits).
	Horizontal Breakdown `json:"horizontal"`
	// RegularTotals and HorizontalTotals are the Table 4/5 rows: total
	// losses under the relaxed and strict constraint sets.
	RegularTotals    []ConstraintTotals `json:"regular_totals"`
	HorizontalTotals []ConstraintTotals `json:"horizontal_totals"`
	// Scatter is the Figure 8 data (include_scatter only).
	Scatter []ScatterPoint `json:"scatter,omitempty"`
	// SavedConfigs are the Table 6 row keys (include_saved_configs only).
	SavedConfigs []SavedConfig `json:"saved_configs,omitempty"`
	// Cached reports whether this result came from the result cache
	// without rebuilding the population.
	Cached bool `json:"cached"`
	// ElapsedMS is the wall time of the build that produced the result
	// (not of this request, when Cached).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Estimate is the build's final streaming yield estimate: the base
	// yield with its confidence interval and per-loss-reason error bars
	// over the chips actually measured.
	Estimate *EstimateInfo `json:"estimate,omitempty"`
	// EarlyStop records the provenance of a precision-targeted build
	// that stopped before measuring the full requested population; the
	// breakdown tables then cover Estimate.Chips chips.
	EarlyStop bool `json:"early_stop,omitempty"`
}

// EstimateInfo is a streaming yield estimate on the wire: the body of
// GET /v1/jobs/{id}/estimate and the estimate block of a study
// response.
type EstimateInfo struct {
	// Chips is how many chips the estimate covers; Total the requested
	// population size. Chips < Total while the build runs, and stays
	// below it when a precision target stopped the build early.
	Chips int `json:"chips"`
	Total int `json:"total"`
	// Confidence is the level of every interval in this estimate.
	Confidence float64 `json:"confidence"`
	// Yield is the estimated base sellable fraction with its Wilson
	// interval [CILow, CIHigh]; HalfWidth is the interval's half-width,
	// the quantity a precision target compares against.
	Yield     float64 `json:"yield"`
	CILow     float64 `json:"ci_low"`
	CIHigh    float64 `json:"ci_high"`
	HalfWidth float64 `json:"half_width"`
	// Lost counts chips failing the provisional limits.
	Lost int64 `json:"lost"`
	// MeanLatencyPS and MeanLeakageW are the population means so far,
	// each with its standard error.
	MeanLatencyPS   float64 `json:"mean_latency_ps"`
	StdErrLatencyPS float64 `json:"stderr_latency_ps"`
	MeanLeakageW    float64 `json:"mean_leakage_w"`
	StdErrLeakageW  float64 `json:"stderr_leakage_w"`
	// Reasons are the per-loss-reason error bars in table order.
	Reasons []ReasonEstimateInfo `json:"reasons"`
	// EarlyStop reports that a precision target ended the build at
	// Chips chips.
	EarlyStop bool `json:"early_stop,omitempty"`
}

// ReasonEstimateInfo is one loss reason's share of the measured chips
// with its confidence interval.
type ReasonEstimateInfo struct {
	Reason string  `json:"reason"`
	Lost   int64   `json:"lost"`
	Share  float64 `json:"share"`
	CILow  float64 `json:"ci_low"`
	CIHigh float64 `json:"ci_high"`
}

// JobEstimateResponse is the body of GET /v1/jobs/{id}/estimate: the
// job's most recent streaming yield estimate.
type JobEstimateResponse struct {
	// Job is the job id; State its lifecycle state at read time.
	Job   string `json:"job"`
	State string `json:"state"`
	// Estimate is the latest published snapshot — live while the job
	// runs, final once it is done.
	Estimate EstimateInfo `json:"estimate"`
}

// YieldCI is a Wilson confidence interval on one sellable fraction.
type YieldCI struct {
	Low  float64 `json:"ci_low"`
	High float64 `json:"ci_high"`
}

// ConstraintsInfo echoes the resolved yield requirement.
type ConstraintsInfo struct {
	Name        string  `json:"name"`
	DelaySigmaK float64 `json:"delay_sigma_k"`
	LeakageMult float64 `json:"leakage_mult"`
}

// LimitsInfo is the absolute pass/fail thresholds derived from the
// population under the resolved constraints.
type LimitsInfo struct {
	DelayPS  float64 `json:"delay_ps"`
	LeakageW float64 `json:"leakage_w"`
}

// Breakdown is one loss-breakdown table: per-reason base losses and,
// per scheme, the losses that remain.
type Breakdown struct {
	N         int            `json:"n"`
	Rows      []BreakdownRow `json:"rows"`
	BaseTotal int            `json:"base_total"`
	// Totals maps scheme name to its remaining loss count.
	Totals map[string]int `json:"totals"`
	// Yields maps "base" and each scheme name to the sellable fraction.
	Yields map[string]float64 `json:"yields"`
	// YieldCIs maps "base" and each scheme name to the 95% Wilson
	// interval on its yield, computed from the loss counts over N chips.
	YieldCIs map[string]YieldCI `json:"yield_cis"`
}

// BreakdownRow is one loss-reason row of a Breakdown.
type BreakdownRow struct {
	Reason    string         `json:"reason"`
	Base      int            `json:"base"`
	Remaining map[string]int `json:"remaining"`
}

// ConstraintTotals is one Table 4/5 row: total losses under one
// constraint set.
type ConstraintTotals struct {
	Constraint string         `json:"constraint"`
	Base       int            `json:"base"`
	Totals     map[string]int `json:"totals"`
}

// ScatterPoint is one chip of the Figure 8 scatter.
type ScatterPoint struct {
	LatencyPS         float64 `json:"latency_ps"`
	NormalizedLeakage float64 `json:"normalized_leakage"`
	Reason            string  `json:"reason"`
}

// SavedConfig is one Table 6 row key: a way-latency configuration and
// how many saved chips exhibit it.
type SavedConfig struct {
	N4             int  `json:"ways_4cyc"`
	N5             int  `json:"ways_5cyc"`
	N6             int  `json:"ways_6cyc"`
	LeakageLimited bool `json:"leakage_limited"`
	Chips          int  `json:"chips"`
}

// JobSummary is one row of GET /v1/jobs: an admitted build's identity,
// lifecycle state and live chip progress.
type JobSummary struct {
	// ID is the job's identifier, also echoed in the X-Job-Id response
	// header of the study that started it and used as the "job" log
	// attribute.
	ID string `json:"id"`
	// Kind is "sweep" for design-space sweeps (POST /v1/sweep); omitted
	// for study builds. Sweep jobs count progress in configs, not chips.
	Kind string `json:"kind,omitempty"`
	// State is queued, running, done or failed.
	State string `json:"state"`
	// Seed, Chips, Constraints and Schemes echo the resolved study
	// parameters.
	Seed        int64    `json:"seed"`
	Chips       int      `json:"chips"`
	Constraints string   `json:"constraints"`
	Schemes     []string `json:"schemes"`
	// CreatedAt is the admission time (UTC).
	CreatedAt time.Time `json:"created_at"`
	// ChipsDone/ChipsTotal is the live Monte Carlo progress: chips
	// measured so far out of the population size. ChipsDone never
	// decreases and reaches ChipsTotal when the build completes.
	ChipsDone  int64 `json:"chips_done"`
	ChipsTotal int64 `json:"chips_total"`
	// Class is the job's terminal error class (ok, validation, timeout,
	// canceled, shed, internal); empty while the job is queued or
	// running.
	Class string `json:"class,omitempty"`
	// Resumed reports that the job survived at least one server restart
	// and was picked back up from its durable checkpoint; Restarts
	// counts how many times. The job id (and X-Job-Id) stays stable
	// across resumes.
	Resumed  bool `json:"resumed,omitempty"`
	Restarts int  `json:"restarts,omitempty"`
	// EarlyStop reports that a precision target stopped the build
	// before the full requested population (ChipsDone < ChipsTotal for
	// a done job).
	EarlyStop bool `json:"early_stop,omitempty"`
}

// JobsResponse is the body of GET /v1/jobs.
type JobsResponse struct {
	// Jobs lists every in-flight job plus the bounded finished history,
	// newest first.
	Jobs []JobSummary `json:"jobs"`
	// HistoryCap is the server's -job-history bound on finished jobs.
	HistoryCap int `json:"history_cap"`
}

// JobDetail is the body of GET /v1/jobs/{id}.
type JobDetail struct {
	JobSummary
	// QueueWaitMS is the time between admission and a worker slot (for
	// a queued job, the wait so far). For a resumed job it accumulates
	// the waits from before each restart too.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// ElapsedMS is the build's run time: so far when running, final
	// when done or failed.
	ElapsedMS float64 `json:"elapsed_ms"`
	// EtaMS estimates the remaining build time from the server's
	// smoothed (EWMA) build duration scaled by the unfinished chip
	// fraction; omitted once the job has finished or when no estimate
	// exists yet.
	EtaMS float64 `json:"eta_ms,omitempty"`
	// CacheHits counts later requests answered from this job's cached
	// result; Coalesced counts concurrent identical requests that
	// shared this build.
	CacheHits int64 `json:"cache_hits"`
	Coalesced int64 `json:"coalesced"`
	// Error is the failure reason of a failed job.
	Error string `json:"error,omitempty"`
	// TraceURL is the job's Chrome trace_event endpoint.
	TraceURL string `json:"trace_url"`
}

// ErrorResponse is the body of every non-2xx response. Class is the
// low-cardinality error taxonomy label (validation, timeout, canceled,
// shed, internal) also used on the server_requests_total metric and on
// terminal job events.
type ErrorResponse struct {
	Error string `json:"error"`
	Class string `json:"class,omitempty"`
}

// RuntimeHistoryResponse is the body of GET /v1/runtime/history: the
// flight recorder's ring of runtime samples, oldest first.
type RuntimeHistoryResponse struct {
	// IntervalMS is the sampling period; Capacity the ring size. Both
	// are zero when the recorder is disabled (-flight-interval < 0).
	IntervalMS float64 `json:"interval_ms"`
	Capacity   int     `json:"capacity"`
	// Samples holds up to Capacity observations, oldest first.
	Samples []obs.RuntimeSample `json:"samples"`
}
