package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"yieldcache/internal/obs"
)

// SSE connection tuning. Keepalive comments hold idle connections open
// through proxies; the write deadline bounds how long a stalled client
// can pin a handler goroutine inside a single write.
const (
	sseKeepalive    = 15 * time.Second
	sseWriteTimeout = 30 * time.Second
)

// sseWriter frames telemetry events as Server-Sent Events and flushes
// each one immediately, so subscribers see events as they happen rather
// than when a buffer fills.
type sseWriter struct {
	w  http.ResponseWriter
	rc *http.ResponseController
}

// start sends the SSE response header and an opening comment naming the
// stream, committing the 200 before the first event.
func (sw *sseWriter) start(name string) error {
	h := sw.w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	sw.w.WriteHeader(http.StatusOK)
	return sw.comment(name)
}

// writeEvent sends one event frame: an optional id (the bus sequence
// number; replayed snapshots carry none), the event type, and the JSON
// payload.
func (sw *sseWriter) writeEvent(ev obs.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	var b bytes.Buffer
	if ev.Seq > 0 {
		fmt.Fprintf(&b, "id: %d\n", ev.Seq)
	}
	fmt.Fprintf(&b, "event: %s\ndata: %s\n\n", ev.Type, data)
	return sw.send(b.Bytes())
}

// comment sends an SSE comment line — invisible to EventSource clients,
// but it keeps the connection alive and marks stream milestones for
// curl -N users.
func (sw *sseWriter) comment(text string) error {
	return sw.send([]byte(": " + text + "\n\n"))
}

func (sw *sseWriter) send(frame []byte) error {
	// Best-effort deadline: recorders in tests do not support one.
	_ = sw.rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
	if _, err := sw.w.Write(frame); err != nil {
		return err
	}
	if err := sw.rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
		return err
	}
	return nil
}

// canStream reports whether the innermost ResponseWriter can flush.
// The obs.Instrument wrapper forwards Flush unconditionally, so the
// wrapper itself always type-asserts as a Flusher — unwrap to the
// writer that actually talks to the connection before deciding.
func canStream(w http.ResponseWriter) bool {
	for {
		if u, ok := w.(interface{ Unwrap() http.ResponseWriter }); ok {
			w = u.Unwrap()
			continue
		}
		_, ok := w.(http.Flusher)
		return ok
	}
}

// jobStreamTypes is the event subset a per-job stream subscribes to;
// admission is observable only on the firehose (a job-scoped stream can
// only be opened after the admission that minted the id).
var jobStreamTypes = []obs.EventType{
	obs.EventJobStarted, obs.EventJobProgress, obs.EventJobPhase,
	obs.EventJobEstimate,
	obs.EventJobCompleted, obs.EventJobFailed,
	obs.EventJobResumed, obs.EventJobCheckpoint, obs.EventSweepConfig,
}

// terminalEvent reports whether ev ends a job's stream.
func terminalEvent(t obs.EventType) bool {
	return t == obs.EventJobCompleted || t == obs.EventJobFailed
}

// handleJobEvents serves GET /v1/jobs/{id}/events: the job's telemetry
// as an SSE stream. The current state is replayed on connect — a
// subscriber attaching after the job finished still receives a progress
// snapshot and the terminal event, never a silent hang — then live
// events follow until the job reaches a terminal state, the client
// disconnects, or the server drains.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	j, ok := s.jobsReg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id (finished jobs are retained up to the -job-history bound)")
		return
	}
	if !canStream(w) {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by the underlying connection")
		return
	}

	// Subscribe before snapshotting, so no event falls between the
	// snapshot and the live tail.
	sub := s.bus.Subscribe(s.cfg.EventBuffer, jobStreamTypes...)
	defer sub.Close()

	sw := &sseWriter{w: w, rc: http.NewResponseController(w)}
	if err := sw.start("stream for job " + j.id); err != nil {
		return
	}
	replay, terminal := s.jobSnapshotEvents(j)
	for _, ev := range replay {
		if sw.writeEvent(ev) != nil {
			return
		}
	}
	if terminal {
		return
	}
	s.streamLoop(r, sw, sub, j.id)
}

// handleEvents serves GET /v1/events: the full telemetry firehose as an
// SSE stream, optionally narrowed with ?types=job_completed,shed,… to a
// comma-separated subset of event types.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	var types []obs.EventType
	if raw := r.URL.Query().Get("types"); raw != "" {
		for _, name := range strings.Split(raw, ",") {
			t := obs.EventType(strings.TrimSpace(name))
			if !t.Valid() {
				writeError(w, http.StatusBadRequest, fmt.Sprintf(
					"unknown event type %q (want a subset of %s)", name, eventTypeList()))
				return
			}
			types = append(types, t)
		}
	}
	if !canStream(w) {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by the underlying connection")
		return
	}

	sub := s.bus.Subscribe(s.cfg.EventBuffer, types...)
	defer sub.Close()
	sw := &sseWriter{w: w, rc: http.NewResponseController(w)}
	if err := sw.start("event stream connected"); err != nil {
		return
	}
	s.streamLoop(r, sw, sub, "")
}

// streamLoop tails a subscription onto an SSE connection until the
// client goes away, the server drains, a write fails, the subscriber
// falls a full buffer behind, or (when jobID is set) the job's terminal
// event has been delivered.
func (s *Server) streamLoop(r *http.Request, sw *sseWriter, sub *obs.EventSub, jobID string) {
	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.streamCtx.Done():
			_ = sw.comment("server draining")
			return
		case <-keepalive.C:
			if sw.comment("keepalive") != nil {
				return
			}
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if jobID != "" && ev.Job != jobID {
				continue
			}
			if sw.writeEvent(ev) != nil {
				return
			}
			if jobID != "" && terminalEvent(ev.Type) {
				return
			}
			if sub.Dropped() > uint64(s.cfg.EventBuffer) {
				// The client consumes slower than events arrive and has
				// already lost more than a full buffer: cut it loose
				// rather than stream silent gaps forever.
				obs.C("server_sse_slow_disconnects_total").Inc()
				_ = sw.comment("disconnected: client too slow, events dropped")
				return
			}
		}
	}
}

// jobSnapshotEvents renders a job's current state as synthetic events
// (Seq 0: they never occupy bus sequence numbers): always a progress
// snapshot, the latest yield estimate when the build has published one,
// plus the terminal event when the job already finished.
func (s *Server) jobSnapshotEvents(j *job) (evs []obs.Event, terminal bool) {
	s.jobsReg.mu.Lock()
	state, class, errMsg := j.state, j.class, j.errMsg
	started, finished := j.started, j.finished
	s.jobsReg.mu.Unlock()
	done, total := j.scope.Progress()

	now := time.Now().UnixMilli()
	evs = append(evs, obs.Event{TimeMS: now, Type: obs.EventJobProgress,
		Job: j.id, Done: done, Total: total})
	if e := j.estimate.Load(); e != nil {
		evs = append(evs, obs.Event{TimeMS: now, Type: obs.EventJobEstimate,
			Job: j.id, Yield: e.Yield, CILow: e.CILow, CIHigh: e.CIHigh,
			Done: int64(e.Chips), Total: int64(e.Total)})
	}
	switch state {
	case jobDone:
		elapsed := 0.0
		if !started.IsZero() {
			elapsed = finished.Sub(started).Seconds() * 1e3
		}
		evs = append(evs, obs.Event{TimeMS: now, Type: obs.EventJobCompleted,
			Job: j.id, Class: string(class), Done: done, Total: total, ElapsedMS: elapsed})
		terminal = true
	case jobFailed:
		evs = append(evs, obs.Event{TimeMS: now, Type: obs.EventJobFailed,
			Job: j.id, Class: string(class), Error: errMsg, Done: done, Total: total})
		terminal = true
	}
	return evs, terminal
}

// eventTypeList returns the valid event type names for error messages.
func eventTypeList() string {
	types := obs.EventTypes()
	names := make([]string, len(types))
	for i, t := range types {
		names[i] = string(t)
	}
	return strings.Join(names, ", ")
}
