package server

import (
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"yieldcache"
	"yieldcache/internal/obs"
)

// Job lifecycle states reported by /v1/jobs.
const (
	jobQueued  = "queued"  // admitted, waiting for a worker slot
	jobRunning = "running" // building the populations
	jobDone    = "done"    // finished, result published
	jobFailed  = "failed"  // finished with an error (timeout, cancel, …)
)

// jobKindSweep marks a design-space sweep job; the empty kind is a
// study build. The value is persisted in store.JobRecord.Kind.
const jobKindSweep = "sweep"

// job is one admitted build and its telemetry scope. The scope's
// progress counters are updated lock-free by the build workers; every
// other mutable field is guarded by the owning jobRegistry's mutex.
type job struct {
	id    string
	seq   int64
	key   string // canonical study/sweep key; ties cache hits back to the job
	scope *obs.Scope

	// kind is "" for study builds, "sweep" for design-space sweeps; spec
	// holds a sweep's canonical resolved request JSON for persistence.
	kind string
	spec []byte

	// Echoed request parameters, immutable after creation.
	seed        int64
	chips       int
	constraints string
	schemes     []string

	created  time.Time // first admission; survives resume for display
	admitted time.Time // admission into THIS server lifetime; queue waits measure from here
	state    string
	started  time.Time // worker slot acquired
	finished time.Time
	errMsg   string
	class    obs.ErrClass // terminal error class; "" until finished

	// restarts counts crash resumes; priorWaitMS accumulates the queue
	// waits spent before each restart, so QueueWaitMS stays honest
	// across a server's lifetimes.
	restarts    int
	priorWaitMS float64

	cacheHits atomic.Int64 // later requests served from this job's cached result
	coalesced atomic.Int64 // concurrent identical requests that waited on this build

	// estimate is the most recent streaming yield estimate published by
	// the build (a detached copy; nil until the first snapshot), served
	// at /v1/jobs/{id}/estimate. earlyStop records that a precision
	// target truncated the build.
	estimate  atomic.Pointer[yieldcache.YieldEstimate]
	earlyStop atomic.Bool
}

// jobRegistry tracks in-flight jobs and a bounded FIFO history of
// finished ones, so /v1/jobs stays inspectable without growing without
// bound. In-flight jobs are never evicted (the admission queue already
// bounds them); finished jobs beyond maxDone are dropped oldest-first.
// Every created job's scope is attached to the server's event bus, so
// build progress and phase transitions stream to SSE subscribers.
type jobRegistry struct {
	mu      sync.Mutex
	seq     int64
	byID    map[string]*job
	byKey   map[string]*job // most recent build per canonical key
	done    []*job          // finished jobs, oldest first
	maxDone int

	bus            *obs.EventBus // scopes publish progress/phase events here
	streamInterval time.Duration // job_progress throttle
}

func newJobRegistry(maxDone int, bus *obs.EventBus, streamInterval time.Duration) *jobRegistry {
	return &jobRegistry{
		byID:           make(map[string]*job),
		byKey:          make(map[string]*job),
		maxDone:        maxDone,
		bus:            bus,
		streamInterval: streamInterval,
	}
}

// create registers a queued job for one admitted build. base is the
// server's logger; the job's scope stamps it with the job id.
func (r *jobRegistry) create(p params, key string, base *slog.Logger) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	j := r.newJobLocked(p, key, base)
	j.state = jobQueued
	r.byID[j.id] = j
	r.byKey[key] = j
	return j
}

// createFailed registers a job that never ran — a shed request — in
// its terminal state, so /v1/jobs shows refused work alongside the
// builds. The job goes straight into the bounded finished history and
// deliberately stays out of byKey: a later cache hit on the same study
// must attribute to the job that actually built the entry.
func (r *jobRegistry) createFailed(p params, key string, class obs.ErrClass, msg string) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	j := r.newJobLocked(p, key, nil)
	j.state = jobFailed
	j.finished = j.created
	j.class = class
	j.errMsg = msg
	r.byID[j.id] = j
	r.done = append(r.done, j)
	r.evictLocked()
	return j
}

// newJobLocked allocates the next job id and its scope; the caller
// holds r.mu and sets the lifecycle state.
func (r *jobRegistry) newJobLocked(p params, key string, base *slog.Logger) *job {
	r.seq++
	id := fmt.Sprintf("j%06d", r.seq)
	j := &job{
		id:          id,
		seq:         r.seq,
		key:         key,
		scope:       obs.NewScope(id, base),
		seed:        p.seed,
		chips:       p.chips,
		constraints: p.cons.Name,
		schemes:     p.schemes,
		created:     time.Now(),
	}
	j.admitted = j.created
	j.scope.AttachEvents(r.bus, r.streamInterval)
	return j
}

// createSweep registers a queued sweep job. The params echo the sweep's
// shared knobs (seed, per-config population, scheme set); the job's
// progress counters run in configs rather than chips.
func (r *jobRegistry) createSweep(p params, key string, spec []byte, base *slog.Logger) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	j := r.newJobLocked(p, key, base)
	j.kind = jobKindSweep
	j.spec = spec
	j.state = jobQueued
	r.byID[j.id] = j
	r.byKey[key] = j
	return j
}

// markRunning transitions a job to running and returns its queue wait
// (within this server lifetime; resumed jobs carry earlier waits in
// priorWaitMS).
func (r *jobRegistry) markRunning(j *job) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	j.state = jobRunning
	j.started = time.Now()
	return j.started.Sub(j.admitted)
}

// finish transitions a job to done/failed — stamping its error class —
// and folds it into the bounded history, evicting oldest finished jobs
// beyond the cap.
func (r *jobRegistry) finish(j *job, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j.finished = time.Now()
	j.class = obs.ClassifyError(err)
	if err != nil {
		j.state, j.errMsg = jobFailed, err.Error()
	} else {
		j.state = jobDone
	}
	r.done = append(r.done, j)
	r.evictLocked()
}

// evictLocked drops the oldest finished jobs beyond the history cap;
// the caller holds r.mu.
func (r *jobRegistry) evictLocked() {
	for len(r.done) > r.maxDone {
		old := r.done[0]
		r.done = r.done[1:]
		delete(r.byID, old.id)
		if r.byKey[old.key] == old {
			delete(r.byKey, old.key)
		}
	}
}

// get returns the job by id.
func (r *jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.byID[id]
	return j, ok
}

// lookupKey returns the most recent job that built the given canonical
// key, if it is still within the bounded history.
func (r *jobRegistry) lookupKey(key string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.byKey[key]
	return j, ok
}

// all returns every tracked job, newest first.
func (r *jobRegistry) all() []*job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*job, 0, len(r.byID))
	for _, j := range r.byID {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq > out[b].seq })
	return out
}

// summary snapshots the mutable state under the registry lock.
func (r *jobRegistry) summary(j *job) JobSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.summaryLocked(j)
}

func (r *jobRegistry) summaryLocked(j *job) JobSummary {
	done, total := j.scope.Progress()
	return JobSummary{
		ID:          j.id,
		Kind:        j.kind,
		State:       j.state,
		Seed:        j.seed,
		Chips:       j.chips,
		Constraints: j.constraints,
		Schemes:     j.schemes,
		CreatedAt:   j.created.UTC(),
		ChipsDone:   done,
		ChipsTotal:  total,
		Class:       string(j.class),
		Resumed:     j.restarts > 0,
		Restarts:    j.restarts,
		EarlyStop:   j.earlyStop.Load(),
	}
}

// totalChips sums the chip progress of every tracked job; the flight
// recorder diffs successive sums into the build_chips_per_second gauge.
func (r *jobRegistry) totalChips() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, j := range r.byID {
		done, _ := j.scope.Progress()
		total += done
	}
	return total
}

// handleJobs serves GET /v1/jobs: every in-flight job plus the bounded
// finished history, newest first.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	jobs := s.jobsReg.all()
	out := JobsResponse{Jobs: make([]JobSummary, 0, len(jobs)), HistoryCap: s.jobsReg.maxDone}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, s.jobsReg.summary(j))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleJob serves GET /v1/jobs/{id}: live state, queue wait, progress,
// an EWMA-based completion estimate, and cache-hit provenance.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	j, ok := s.jobsReg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id (finished jobs are retained up to the -job-history bound)")
		return
	}
	writeJSON(w, http.StatusOK, s.jobDetail(j))
}

// handleJobTrace serves GET /v1/jobs/{id}/trace: the job's phase spans
// in the Chrome trace_event JSON format, readable at chrome://tracing
// or ui.perfetto.dev. For a running job the trace is a live snapshot
// with open spans closed at "now".
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	j, ok := s.jobsReg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id (finished jobs are retained up to the -job-history bound)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = j.scope.Tracer.WriteChromeTrace(w)
}

// handleJobEstimate serves GET /v1/jobs/{id}/estimate: the job's most
// recent streaming yield estimate — live confidence intervals while the
// build runs, the final estimate once it is done. A job whose build has
// not yet published a snapshot (or that never ran) returns 404.
func (s *Server) handleJobEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	j, ok := s.jobsReg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id (finished jobs are retained up to the -job-history bound)")
		return
	}
	e := j.estimate.Load()
	if e == nil {
		writeError(w, http.StatusNotFound, "no estimate published yet for this job")
		return
	}
	s.jobsReg.mu.Lock()
	state := j.state
	s.jobsReg.mu.Unlock()
	writeJSON(w, http.StatusOK, JobEstimateResponse{
		Job: j.id, State: state, Estimate: toEstimateInfo(e),
	})
}

// jobDetail assembles the GET /v1/jobs/{id} body. The ETA blends the
// server's smoothed build estimate (the same EWMA behind Retry-After)
// with the job's own progress fraction; when no build has ever
// completed, it extrapolates from the job's chips/sec so far.
func (s *Server) jobDetail(j *job) JobDetail {
	s.jobsReg.mu.Lock()
	sum := s.jobsReg.summaryLocked(j)
	started, finished := j.started, j.finished
	admitted := j.admitted
	priorWait := j.priorWaitMS
	errMsg := j.errMsg
	s.jobsReg.mu.Unlock()

	d := JobDetail{
		JobSummary: sum,
		CacheHits:  j.cacheHits.Load(),
		Coalesced:  j.coalesced.Load(),
		Error:      errMsg,
		TraceURL:   "/v1/jobs/" + sum.ID + "/trace",
	}
	now := time.Now()
	switch sum.State {
	case jobQueued:
		d.QueueWaitMS = priorWait + now.Sub(admitted).Seconds()*1e3
	default:
		// Jobs restored from the store (and create-time failures) never
		// ran in this process: started is zero and priorWaitMS already
		// holds the whole recorded wait.
		d.QueueWaitMS = priorWait
		if !started.IsZero() {
			d.QueueWaitMS += started.Sub(admitted).Seconds() * 1e3
		}
	}
	switch sum.State {
	case jobRunning:
		d.ElapsedMS = now.Sub(started).Seconds() * 1e3
	case jobDone, jobFailed:
		if !started.IsZero() {
			d.ElapsedMS = finished.Sub(started).Seconds() * 1e3
		}
	}

	est := math.Float64frombits(s.buildEWMA.Load())
	switch sum.State {
	case jobQueued:
		if est > 0 {
			d.EtaMS = est * 1e3
		}
	case jobRunning:
		remaining := 1.0
		if sum.ChipsTotal > 0 {
			remaining = 1 - float64(sum.ChipsDone)/float64(sum.ChipsTotal)
		}
		switch {
		case est > 0:
			d.EtaMS = est * remaining * 1e3
		case sum.ChipsDone > 0 && sum.ChipsTotal > 0:
			// First-ever build: extrapolate from this job's own rate.
			perChip := d.ElapsedMS / float64(sum.ChipsDone)
			d.EtaMS = perChip * float64(sum.ChipsTotal-sum.ChipsDone)
		}
	}
	return d
}

// phaseLabelSet caps the distinct phase label values fed into the
// server_build_phase_seconds histogram family, so a pathological span
// namer cannot blow up the /metrics cardinality: the first capLimit
// distinct names keep their own series, the rest fold into "other".
type phaseLabelSet struct {
	mu       sync.Mutex
	seen     map[string]bool
	capLimit int
}

func newPhaseLabelSet(capLimit int) *phaseLabelSet {
	return &phaseLabelSet{seen: make(map[string]bool), capLimit: capLimit}
}

func (ps *phaseLabelSet) label(name string) string {
	clean := sanitizePhase(name)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.seen[clean] {
		return clean
	}
	if len(ps.seen) >= ps.capLimit {
		return "other"
	}
	ps.seen[clean] = true
	return clean
}

// sanitizePhase restricts a span name to characters safe inside a
// Prometheus label value embedded in a registry key.
func sanitizePhase(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '/', r == '.', r == '-':
			return r
		default:
			return '_'
		}
	}, name)
}

// observePhases folds a finished job's span durations into the global
// per-phase build-duration histograms on /metrics. The queue_wait span
// is skipped — it has its own server_queue_wait_seconds histogram.
func (s *Server) observePhases(sc *obs.Scope) {
	if sc == nil || sc.Tracer == nil {
		return
	}
	for _, sp := range sc.Tracer.Spans() {
		if sp.Open || sp.Name == "queue_wait" {
			continue
		}
		obs.H(`server_build_phase_seconds{phase="`+s.phases.label(sp.Name)+`"}`,
			obs.ExpBuckets(1e-4, 4, 10)).Observe((sp.End - sp.Start).Seconds())
	}
}
