package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"yieldcache/internal/store"
)

// postStudyIdem posts a study with an Idempotency-Key header.
func postStudyIdem(t *testing.T, url, body, key string) (*http.Response, StudyResponse, ErrorResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/study", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/study: %v", err)
	}
	defer resp.Body.Close()
	var ok StudyResponse
	var fail ErrorResponse
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&ok); err != nil {
			t.Fatalf("decoding StudyResponse: %v", err)
		}
	} else if err := dec.Decode(&fail); err != nil {
		t.Fatalf("decoding ErrorResponse (status %d): %v", resp.StatusCode, err)
	}
	return resp, ok, fail
}

func drain(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// A restarted server must answer a repeated study from the recovered
// result cache and still list the producing job under its original id.
func TestRestartRecoversCacheAndHistory(t *testing.T) {
	st := store.NewMem()
	srv1 := New(Config{Workers: 2, Store: st})
	ts1 := httptest.NewServer(srv1.Handler())

	body := `{"chips": 50, "seed": 2006}`
	resp, first, _ := postStudyIdem(t, ts1.URL, body, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first build: status %d", resp.StatusCode)
	}
	jobID := resp.Header.Get("X-Job-Id")
	drain(t, srv1)
	ts1.Close()

	// "Restart": a fresh server over the same store.
	srv2 := New(Config{Workers: 2, Store: st})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer drain(t, srv2)

	resp, second, _ := postStudyIdem(t, ts2.URL, body, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart request: status %d", resp.StatusCode)
	}
	if !second.Cached {
		t.Error("post-restart identical request rebuilt instead of using the recovered cache")
	}
	if second.Regular.BaseTotal != first.Regular.BaseTotal {
		t.Errorf("recovered result differs: base total %d vs %d",
			second.Regular.BaseTotal, first.Regular.BaseTotal)
	}
	if got := resp.Header.Get("X-Job-Id"); got != jobID {
		t.Errorf("cache hit attributed to job %q, want original %q", got, jobID)
	}

	jresp, err := http.Get(ts2.URL + "/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s after restart: status %d", jobID, jresp.StatusCode)
	}
	var detail JobDetail
	if err := json.NewDecoder(jresp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	if detail.State != jobDone {
		t.Errorf("recovered job state %q, want done", detail.State)
	}
	if detail.QueueWaitMS < 0 {
		t.Errorf("recovered job queue wait %v ms is negative", detail.QueueWaitMS)
	}
}

// Kill -9 mid-build: a new server over the crash-instant store state
// must resume the job under the same id, finish it, and produce tables
// bit-identical to an uninterrupted run.
func TestCrashedBuildResumesBitIdentical(t *testing.T) {
	body := `{"chips": 600, "seed": 2006}`

	// The uninterrupted reference.
	ref := New(Config{Workers: 2})
	tsRef := httptest.NewServer(ref.Handler())
	_, want, _ := postStudyIdem(t, tsRef.URL, body, "")
	drain(t, ref)
	tsRef.Close()

	st := store.NewMem()
	srv1 := New(Config{Workers: 2, Store: st, CheckpointInterval: time.Millisecond})
	ts1 := httptest.NewServer(srv1.Handler())

	// Start the build and snapshot "the disk" once a checkpoint lands.
	// Fire-and-forget: the "crashed" server's response is irrelevant.
	go func() {
		req, err := http.NewRequest(http.MethodPost, ts1.URL+"/v1/study", strings.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", "retry-after-crash")
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	var crash *store.Mem
	var jobID string
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		rec, err := st.Recover()
		if err != nil {
			t.Errorf("Recover: %v", err)
			return
		}
		if len(rec.Jobs) > 0 {
			jobID = rec.Jobs[0].ID
			if _, chips, err := st.Checkpoint(jobID); err == nil && chips > 0 && chips < 600 {
				crash = st.Clone() // the kill -9 instant
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	// Abandon srv1 without draining — its goroutines write to st, not
	// to the clone, so the clone stays frozen at the crash instant.
	ts1.Close()
	if crash == nil {
		t.Skip("build finished before a mid-flight checkpoint landed; nothing to crash")
	}

	srv2 := New(Config{Workers: 2, Store: crash, CheckpointInterval: time.Millisecond})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer drain(t, srv2)

	// The resumed job carries its identity and restart count.
	var detail JobDetail
	for i := 0; ; i++ {
		jresp, err := http.Get(ts2.URL + "/v1/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		if jresp.StatusCode != http.StatusOK {
			t.Fatalf("resumed job %s not found after restart: status %d", jobID, jresp.StatusCode)
		}
		if err := json.NewDecoder(jresp.Body).Decode(&detail); err != nil {
			t.Fatal(err)
		}
		jresp.Body.Close()
		if detail.State == jobDone || detail.State == jobFailed {
			break
		}
		if i > 20000 {
			t.Fatalf("resumed job stuck in state %q", detail.State)
		}
		time.Sleep(time.Millisecond)
	}
	if detail.State != jobDone {
		t.Fatalf("resumed job finished %q (%s), want done", detail.State, detail.Error)
	}
	if !detail.Resumed || detail.Restarts != 1 {
		t.Errorf("resumed job reports resumed=%v restarts=%d, want true/1", detail.Resumed, detail.Restarts)
	}

	// And its result must be bit-identical to the uninterrupted build.
	resp, got, _ := postStudyIdem(t, ts2.URL, body, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetching resumed result: status %d", resp.StatusCode)
	}
	if !got.Cached {
		t.Error("resumed result not served from cache")
	}
	assertSameTables(t, got, want)

	// The idempotency key recorded before the crash replays too.
	resp, replayed, _ := postStudyIdem(t, ts2.URL, body, "retry-after-crash")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent retry after crash: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Idempotency-Replayed") != "true" {
		t.Error("idempotent retry after crash not marked as replayed")
	}
	assertSameTables(t, replayed, want)
}

// assertSameTables compares the paper tables of two study responses.
func assertSameTables(t *testing.T, got, want StudyResponse) {
	t.Helper()
	g, err := json.Marshal(struct {
		R, H             Breakdown
		RTotals, HTotals []ConstraintTotals
	}{got.Regular, got.Horizontal, got.RegularTotals, got.HorizontalTotals})
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(struct {
		R, H             Breakdown
		RTotals, HTotals []ConstraintTotals
	}{want.Regular, want.Horizontal, want.RegularTotals, want.HorizontalTotals})
	if err != nil {
		t.Fatal(err)
	}
	if string(g) != string(w) {
		t.Errorf("tables differ:\n got %s\nwant %s", g, w)
	}
}

// The Idempotency-Key contract: same key + same body replays the stored
// response; same key + different body is refused with 409; keys expire
// with the result cache.
func TestIdempotencyKeyContract(t *testing.T) {
	srv := New(Config{Workers: 2, Store: store.NewMem(), CacheEntries: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer drain(t, srv)

	body := `{"chips": 40, "seed": 2006}`
	resp, first, _ := postStudyIdem(t, ts.URL, body, "key-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Idempotency-Replayed") == "true" {
		t.Error("first use of a key marked replayed")
	}
	jobID := resp.Header.Get("X-Job-Id")

	// Same key, same body: replayed.
	resp, second, _ := postStudyIdem(t, ts.URL, body, "key-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Idempotency-Replayed") != "true" {
		t.Error("replay not marked with Idempotency-Replayed")
	}
	if resp.Header.Get("X-Job-Id") != jobID {
		t.Errorf("replay attributed to %q, want %q", resp.Header.Get("X-Job-Id"), jobID)
	}
	if second.Regular.BaseTotal != first.Regular.BaseTotal {
		t.Error("replayed body differs from original")
	}

	// Same key, different body: conflict.
	resp, _, fail := postStudyIdem(t, ts.URL, `{"chips": 41, "seed": 2006}`, "key-1")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("key reuse with different body: status %d, want 409", resp.StatusCode)
	}
	if fail.Class != "validation" {
		t.Errorf("conflict class %q, want validation", fail.Class)
	}

	// A new study evicts the old result (CacheEntries: 1) and with it
	// the key binding: the key is then free for a different body.
	resp, _, _ = postStudyIdem(t, ts.URL, `{"chips": 45, "seed": 7}`, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evicting build: status %d", resp.StatusCode)
	}
	resp, _, _ = postStudyIdem(t, ts.URL, `{"chips": 46, "seed": 8}`, "key-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("key after expiry: status %d, want 200 (rebound to new body)", resp.StatusCode)
	}

	// Oversized keys are rejected outright.
	resp, _, _ = postStudyIdem(t, ts.URL, body, strings.Repeat("k", maxIdemKeyLen+1))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized key: status %d, want 400", resp.StatusCode)
	}
}

// Storage failures must degrade durability, never fail requests.
func TestStoreErrorsDoNotFailRequests(t *testing.T) {
	st := store.NewMem()
	if err := st.Close(); err != nil { // every write now errors
		t.Fatal(err)
	}
	srv := New(Config{Workers: 1, Store: st})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer drain(t, srv)

	resp, res, _ := postStudyIdem(t, ts.URL, `{"chips": 30, "seed": 2006}`, "key-x")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("study with dead store: status %d, want 200", resp.StatusCode)
	}
	if res.Regular.N != 30 {
		t.Errorf("study with dead store returned %d chips", res.Regular.N)
	}
}
