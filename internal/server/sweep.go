package server

// POST /v1/sweep: design-space exploration as a service. A sweep names
// a grid (technology axes × cache geometries × constraint sets); the
// server plans it through the facade's delta-reuse planner, evaluates
// it on one worker slot with per-config progress events and durable
// per-config checkpoints, reduces the results to Pareto frontiers, and
// caches the response under a canonical spec hash. docs/SWEEPS.md is
// the narrative reference; docs/API.md the field reference.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"yieldcache"
	"yieldcache/internal/obs"
	"yieldcache/internal/store"
)

// sweepKeyPrefix namespaces sweep cache/store keys away from study
// keys (which always start with a digit).
const sweepKeyPrefix = "sweep/"

// SweepRequest is the body of POST /v1/sweep. Zero fields take the
// paper's defaults: seed 2006, 2000 chips per config, the 16 KB paper
// geometry, nominal constraints, all three schemes, no tech axes (a
// single-point "sweep").
type SweepRequest struct {
	// Seed is the master variation seed shared by every config (common
	// random numbers; default 2006).
	Seed int64 `json:"seed,omitempty"`
	// Chips is the Monte Carlo population size per config (default
	// 2000, capped by -max-chips).
	Chips int `json:"chips,omitempty"`
	// Axes are the swept technology parameters; the config grid is
	// their cross product applied to the 45 nm base technology. Valid
	// params: GET /v1/constraints documents the study knobs; the sweep
	// params are listed in docs/SWEEPS.md (vdd, vt_nominal, alpha, …).
	Axes []SweepAxis `json:"axes,omitempty"`
	// Constraints are the yield-requirement sets evaluated per grid
	// point: named ("nominal", "relaxed", "strict") or custom
	// (delay_sigma_k + leakage_mult, with an optional label).
	Constraints []SweepConstraintSpec `json:"constraints,omitempty"`
	// Geometries are the cache organisations to sweep (ways must stay
	// 1..4; default the paper's 4w×4b×64r×128c).
	Geometries []SweepGeometry `json:"geometries,omitempty"`
	// Schemes selects the yield-aware schemes evaluated per config, a
	// subset of YAPD, VACA, Hybrid (default all).
	Schemes []string `json:"schemes,omitempty"`
	// Economics, when present, prices every config with the generalised
	// Table 6 two-bin model; it shapes the response only and does not
	// affect the cache key.
	Economics *SweepEconomicsSpec `json:"economics,omitempty"`
	// TimeoutMS bounds the whole sweep in milliseconds (default and cap
	// set by the server; exceeding the deadline returns 504).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// SweepAxis is one swept technology parameter and its grid values. The
// first value anchors the delta-build base, so listing values nearest
// nominal first keeps deltas small.
type SweepAxis struct {
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// SweepConstraintSpec is one constraint set of a sweep: a named preset
// or a custom (delay_sigma_k, leakage_mult) pair.
type SweepConstraintSpec struct {
	Name        string  `json:"name,omitempty"`
	DelaySigmaK float64 `json:"delay_sigma_k,omitempty"`
	LeakageMult float64 `json:"leakage_mult,omitempty"`
}

// SweepGeometry is a cache organisation on the wire.
type SweepGeometry struct {
	Ways         int `json:"ways"`
	BanksPerWay  int `json:"banks_per_way"`
	RowsPerBank  int `json:"rows_per_bank"`
	BitsPerRow   int `json:"bits_per_row"`
	PathsPerBank int `json:"paths_per_bank"`
}

// SweepEconomicsSpec parameterises the per-config binning economics.
// Zero fields take the 45 nm defaults (a $4000 wafer, 600 gross dies,
// 85% functional yield, $60 parts); degraded_cpi_pct defaults to 5 —
// the CPI cost charged to chips a scheme saves.
type SweepEconomicsSpec struct {
	WaferCost       float64 `json:"wafer_cost,omitempty"`
	DiesPerWafer    int     `json:"dies_per_wafer,omitempty"`
	FunctionalYield float64 `json:"functional_yield,omitempty"`
	FullPrice       float64 `json:"full_price,omitempty"`
	PriceSlope      float64 `json:"price_slope,omitempty"`
	MinPriceFrac    float64 `json:"min_price_frac,omitempty"`
	DegradedCPIPct  float64 `json:"degraded_cpi_pct,omitempty"`
}

// SweepResponse is the body of a successful POST /v1/sweep.
type SweepResponse struct {
	Seed int64 `json:"seed"`
	// Chips is the population size per config; Configs the number of
	// evaluated design points.
	Chips   int      `json:"chips"`
	Configs int      `json:"configs"`
	Schemes []string `json:"schemes"`
	// Stats reports the delta-reuse structure of the evaluation: full
	// builds, delta builds, copies and shared evaluations.
	Stats yieldcache.SweepStats `json:"stats"`
	// Results holds every config's evaluation, densely indexed in spec
	// order (geometry-major, then tech grid row-major, then constraints).
	Results []SweepConfigResult `json:"results"`
	// Frontiers maps "Base" and each scheme name to the Pareto-optimal
	// config indices under (yield max, mean latency min, mean leakage
	// min).
	Frontiers map[string][]int `json:"frontiers"`
	// ResumedConfigs counts configs restored from a durable checkpoint
	// rather than evaluated in this process lifetime.
	ResumedConfigs int `json:"resumed_configs,omitempty"`
	// Cached reports whether the response came from the result cache.
	Cached bool `json:"cached"`
	// ElapsedMS is the wall time of the sweep that produced the result.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// SweepConfigResult is one design point's evaluation.
type SweepConfigResult struct {
	Index int `json:"index"`
	// Label is the human-readable config identity ("vdd=1.08 nominal"),
	// also carried on sweep_config events.
	Label string `json:"label"`
	// Point maps swept parameter names to this config's values.
	Point       map[string]float64 `json:"point,omitempty"`
	Geometry    SweepGeometry      `json:"geometry"`
	Constraints ConstraintsInfo    `json:"constraints"`
	// Limits are the absolute thresholds derived from this config's own
	// population, exactly as a standalone study would derive them.
	Limits LimitsInfo `json:"limits"`
	// MeanLatencyPS and MeanLeakageW are population means — the
	// performance and power axes of the Pareto reduction.
	MeanLatencyPS float64 `json:"mean_latency_ps"`
	MeanLeakageW  float64 `json:"mean_leakage_w"`
	// BaseYield is the yield-unaware sellable fraction; BaseLost the
	// chips it discards. BaseCILow/BaseCIHigh is the 95% Wilson
	// interval on BaseYield over the config's population.
	BaseYield  float64 `json:"base_yield"`
	BaseLost   int     `json:"base_lost"`
	BaseCILow  float64 `json:"base_ci_low"`
	BaseCIHigh float64 `json:"base_ci_high"`
	// Yields are the per-scheme outcomes in request scheme order.
	Yields []SweepYield `json:"yields"`
	// Economics prices base plus each scheme (present only when the
	// request carried an economics spec).
	Economics []SweepEconomicsResult `json:"economics,omitempty"`
}

// SweepYield is one scheme's outcome at one config, with the 95%
// Wilson interval on its yield.
type SweepYield struct {
	Scheme string  `json:"scheme"`
	Yield  float64 `json:"yield"`
	Lost   int     `json:"lost"`
	CILow  float64 `json:"ci_low"`
	CIHigh float64 `json:"ci_high"`
}

// SweepEconomicsResult prices one scheme at one config under the
// request's cost model.
type SweepEconomicsResult struct {
	Scheme           string  `json:"scheme"`
	SellableFraction float64 `json:"sellable_fraction"`
	DiesPerWafer     float64 `json:"dies_per_wafer"`
	RevenuePerWafer  float64 `json:"revenue_per_wafer"`
	CostPerDie       float64 `json:"cost_per_die"`
}

// sweepEconParams is a resolved, validated economics spec.
type sweepEconParams struct {
	model  yieldcache.CostModel
	cpiPct float64
}

// sweepParams is a validated, normalised sweep request: the planned
// evaluation, the canonical spec bytes behind the cache key, and the
// presentation-only economics.
type sweepParams struct {
	plan      *yieldcache.SweepPlan
	schemes   []string // canonical order, non-empty
	econ      *sweepEconParams
	timeout   time.Duration
	canonical []byte // resolved spec JSON; hashed into key, persisted for resume
	key       string
}

// jobParams renders the sweep's shared knobs as study params so the
// job registry can echo them; the constraint name "sweep" flags the
// job kind in listings that predate the kind field.
func (sp sweepParams) jobParams() params {
	return params{
		seed:    sp.plan.Spec.Seed,
		chips:   sp.plan.Spec.N,
		cons:    yieldcache.Constraints{Name: "sweep"},
		schemes: sp.schemes,
		timeout: sp.timeout,
	}
}

// sweepCanonical is the canonical resolved request: the filled spec
// plus the normalised scheme set. Its JSON bytes are hashed into the
// cache key and persisted in the job record for crash resume, so two
// requests that resolve to the same grid share one evaluation.
type sweepCanonical struct {
	Spec    yieldcache.SweepSpec `json:"spec"`
	Schemes []string             `json:"schemes"`
}

// sweepCheckpoint is the durable config-granular checkpoint of a
// running sweep: every completed config result. JSON round-trips Go
// float64 values exactly, so resumed configs are bit-identical to
// freshly evaluated ones.
type sweepCheckpoint struct {
	Results []SweepConfigResult `json:"results"`
}

// parseSweepRequest validates a SweepRequest against the server limits,
// resolves defaults, and plans the sweep (planning is pure arithmetic,
// bounded by MaxSweepConfigs).
func (s *Server) parseSweepRequest(req *SweepRequest) (sweepParams, error) {
	sp := sweepParams{}
	spec := yieldcache.SweepSpec{Seed: req.Seed, N: req.Chips}
	if spec.Seed == 0 {
		spec.Seed = 2006
	}
	if spec.N == 0 {
		spec.N = 2000
	}
	if spec.N < 0 {
		return sp, fmt.Errorf("chips must be positive, got %d", req.Chips)
	}
	if spec.N > s.cfg.MaxChips {
		return sp, fmt.Errorf("chips %d exceeds the server limit %d", spec.N, s.cfg.MaxChips)
	}

	for _, ax := range req.Axes {
		spec.Axes = append(spec.Axes, yieldcache.TechAxis{Param: ax.Param, Values: ax.Values})
	}
	for i, c := range req.Constraints {
		switch c.Name {
		case "nominal", "relaxed", "strict":
			if c.DelaySigmaK != 0 || c.LeakageMult != 0 {
				return sp, fmt.Errorf("constraints[%d]: named set %q cannot also carry custom parameters", i, c.Name)
			}
			switch c.Name {
			case "nominal":
				spec.Constraints = append(spec.Constraints, yieldcache.Nominal())
			case "relaxed":
				spec.Constraints = append(spec.Constraints, yieldcache.Relaxed())
			case "strict":
				spec.Constraints = append(spec.Constraints, yieldcache.Strict())
			}
		default:
			if c.DelaySigmaK <= 0 || c.LeakageMult <= 0 {
				return sp, fmt.Errorf("constraints[%d]: want a named set (nominal, relaxed, strict) or positive delay_sigma_k and leakage_mult", i)
			}
			spec.Constraints = append(spec.Constraints, yieldcache.Constraints{
				Name: c.Name, DelaySigmaK: c.DelaySigmaK, LeakageMult: c.LeakageMult})
		}
	}
	for _, g := range req.Geometries {
		spec.Geometries = append(spec.Geometries, yieldcache.CacheGeometry{
			Ways: g.Ways, BanksPerWay: g.BanksPerWay, RowsPerBank: g.RowsPerBank,
			BitsPerRow: g.BitsPerRow, PathsPerBank: g.PathsPerBank})
	}

	schemes, err := normalizeSweepSchemes(req.Schemes)
	if err != nil {
		return sp, err
	}
	sp.schemes = schemes

	plan, err := yieldcache.PlanSweep(spec)
	if err != nil {
		return sp, err
	}
	if len(plan.Configs) > s.cfg.MaxSweepConfigs {
		return sp, fmt.Errorf("sweep resolves to %d configs, exceeding the server limit %d",
			len(plan.Configs), s.cfg.MaxSweepConfigs)
	}
	sp.plan = plan

	if req.Economics != nil {
		e := *req.Economics
		m := yieldcache.DefaultCostModel()
		if e.WaferCost != 0 {
			m.WaferCost = e.WaferCost
		}
		if e.DiesPerWafer != 0 {
			m.DiesPerWafer = e.DiesPerWafer
		}
		if e.FunctionalYield != 0 {
			m.FunctionalYield = e.FunctionalYield
		}
		if e.FullPrice != 0 {
			m.FullPrice = e.FullPrice
		}
		if e.PriceSlope != 0 {
			m.PriceSlope = e.PriceSlope
		}
		if e.MinPriceFrac != 0 {
			m.MinPriceFrac = e.MinPriceFrac
		}
		if err := m.Validate(); err != nil {
			return sp, err
		}
		cpi := e.DegradedCPIPct
		if cpi == 0 {
			cpi = 5
		}
		if cpi < 0 {
			return sp, fmt.Errorf("economics: degraded_cpi_pct must be non-negative, got %g", cpi)
		}
		sp.econ = &sweepEconParams{model: m, cpiPct: cpi}
	}

	if req.TimeoutMS < 0 {
		return sp, fmt.Errorf("timeout_ms must be positive, got %d", req.TimeoutMS)
	}
	sp.timeout = s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		sp.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if sp.timeout > s.cfg.MaxTimeout {
		sp.timeout = s.cfg.MaxTimeout
	}

	// The canonical bytes hash the *resolved* spec — two requests that
	// spell the same grid differently (explicit vs defaulted fields)
	// share one key. Economics and timeout shape the response or the
	// deadline, never the computation, so they stay out.
	canonical, err := json.Marshal(sweepCanonical{Spec: plan.Spec, Schemes: sp.schemes})
	if err != nil {
		return sp, err
	}
	sp.canonical = canonical
	sum := sha256.Sum256(canonical)
	sp.key = sweepKeyPrefix + hex.EncodeToString(sum[:])
	return sp, nil
}

// normalizeSweepSchemes validates a scheme subset and returns it in
// canonical order (empty means all).
func normalizeSweepSchemes(names []string) ([]string, error) {
	if len(names) == 0 {
		return schemeOrder, nil
	}
	want := make(map[string]bool, len(names))
	for _, name := range names {
		ok := false
		for _, known := range schemeOrder {
			if name == known {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("unknown scheme %q (want a subset of %s)",
				name, strings.Join(schemeOrder, ", "))
		}
		want[name] = true
	}
	var out []string
	for _, known := range schemeOrder {
		if want[known] {
			out = append(out, known)
		}
	}
	return out, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request: "+err.Error())
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	sp, err := s.parseSweepRequest(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := sp.key

	idemKey := r.Header.Get("Idempotency-Key")
	if len(idemKey) > maxIdemKeyLen {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("Idempotency-Key longer than %d bytes", maxIdemKeyLen))
		return
	}
	var bodyHash string
	if idemKey != "" {
		// Salted with the endpoint so a key reused across /v1/study and
		// /v1/sweep with the same bytes still reads as a body conflict.
		sum := sha256.Sum256(append([]byte("sweep\x00"), body...))
		bodyHash = hex.EncodeToString(sum[:])
	}

	s.mu.Lock()
	if idemKey != "" && s.sweepIdemLookupLocked(w, r, idemKey, bodyHash, sp) {
		return
	}
	if res, ok := s.cache[key].(*SweepResponse); ok {
		s.mu.Unlock()
		obs.C("server_sweep_cache_hits_total").Inc()
		jobID := ""
		if j, ok := s.jobsReg.lookupKey(key); ok {
			j.cacheHits.Add(1)
			jobID = j.id
		}
		s.bus.Publish(obs.Event{Type: obs.EventCacheHit, Job: jobID, Key: key})
		s.log.Debug("sweep served from cache", "job", jobID, "key", key)
		s.recordIdem(idemKey, bodyHash, key, jobID)
		writeSweepResult(w, res, sp.econ, true, jobID)
		return
	}
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		obs.C("server_sweep_coalesced_total").Inc()
		c.job.coalesced.Add(1)
		s.recordIdem(idemKey, bodyHash, key, c.job.id)
		s.awaitSweep(w, r, c, sp)
		return
	}
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.jobs >= s.cfg.Workers+s.cfg.QueueDepth {
		admitted := s.jobs
		s.mu.Unlock()
		obs.C("server_sweep_shed_total").Inc()
		j := s.jobsReg.createFailed(sp.jobParams(), key, obs.ClassShed, "build queue is full")
		s.bus.Publish(obs.Event{Type: obs.EventShed, Job: j.id, Key: key,
			Class: string(obs.ClassShed), Queued: admitted})
		s.log.Warn("sweep shed: build queue full", "job", j.id, "key", key)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		w.Header().Set("X-Job-Id", j.id)
		writeError(w, http.StatusTooManyRequests, "build queue is full")
		return
	}
	c := &call{done: make(chan struct{}), job: s.jobsReg.createSweep(sp.jobParams(), key, sp.canonical, s.log)}
	s.inflight[key] = c
	s.jobs++
	admitted := s.jobs
	obs.G("server_jobs_admitted").Set(float64(s.jobs))
	s.wg.Add(1)
	s.mu.Unlock()
	obs.C("server_sweep_cache_misses_total").Inc()
	configs := len(sp.plan.Configs)
	s.bus.Publish(obs.Event{Type: obs.EventJobAdmitted, Job: c.job.id, Key: key,
		Total: int64(configs)})
	if admitted > s.cfg.Workers {
		s.bus.Publish(obs.Event{Type: obs.EventQueuePressure,
			Queued: admitted - s.cfg.Workers, Running: s.cfg.Workers})
	}
	st := sp.plan.Stats()
	c.job.scope.Log().Info("sweep admitted",
		"seed", sp.plan.Spec.Seed, "chips", sp.plan.Spec.N, "configs", configs,
		"full_builds", st.FullBuilds, "delta_builds", st.DeltaBuilds,
		"schemes", strings.Join(sp.schemes, "+"), "timeout", sp.timeout)
	s.recordIdem(idemKey, bodyHash, key, c.job.id)
	s.persistSweepJob(c.job, sp, jobQueued)

	go s.runSweep(key, sp, c)
	s.awaitSweep(w, r, c, sp)
}

// sweepIdemLookupLocked is idemLookupLocked's sweep twin: resolve a
// recorded Idempotency-Key while s.mu is held, replaying the cached
// sweep or coalescing onto the in-flight one. Returns true when the
// request was fully answered (lock released).
func (s *Server) sweepIdemLookupLocked(w http.ResponseWriter, r *http.Request, idemKey, bodyHash string, sp sweepParams) bool {
	rec, ok := s.idem[idemKey]
	if !ok {
		return false
	}
	if rec.BodyHash != bodyHash {
		s.mu.Unlock()
		obs.C("server_idempotency_conflicts_total").Inc()
		s.log.Warn("idempotency key reused with different body", "job", rec.JobID)
		writeErrorClass(w, http.StatusConflict, obs.ClassValidation,
			"Idempotency-Key was already used with a different request body")
		return true
	}
	if res, hit := s.cache[rec.StudyKey].(*SweepResponse); hit {
		s.mu.Unlock()
		obs.C("server_idempotent_replays_total").Inc()
		if j, found := s.jobsReg.lookupKey(rec.StudyKey); found {
			j.cacheHits.Add(1)
		}
		w.Header().Set("Idempotency-Replayed", "true")
		s.log.Debug("sweep replayed for idempotency key", "job", rec.JobID, "key", rec.StudyKey)
		writeSweepResult(w, res, sp.econ, true, rec.JobID)
		return true
	}
	if c, flying := s.inflight[rec.StudyKey]; flying {
		s.mu.Unlock()
		obs.C("server_sweep_coalesced_total").Inc()
		c.job.coalesced.Add(1)
		s.awaitSweep(w, r, c, sp)
		return true
	}
	delete(s.idem, idemKey)
	go s.storeDo("delete_idem", func() error { return s.store.DeleteIdem(idemKey) })
	return false
}

// runSweep executes one admitted sweep on a single worker slot,
// mirroring run: queue, evaluate under the request timeout, publish to
// the cache and wake every waiter. The sweep's internal cluster
// parallelism never exceeds the configured worker count, so a sweep
// cannot oversubscribe the pool it occupies one slot of.
func (s *Server) runSweep(key string, sp sweepParams, c *call) {
	defer s.wg.Done()
	j := c.job
	ctx, cancel := context.WithTimeout(s.baseCtx, sp.timeout)
	defer cancel()
	ctx = obs.WithScope(ctx, j.scope)

	qsp := j.scope.StartSpan("queue_wait")
	select {
	case s.slots <- struct{}{}:
		qsp.End()
		wait := s.jobsReg.markRunning(j)
		obs.H("server_queue_wait_seconds", obs.ExpBuckets(1e-4, 4, 10)).
			Observe(wait.Seconds())
		s.bus.Publish(obs.Event{Type: obs.EventJobStarted, Job: j.id,
			QueueWaitMS: wait.Seconds() * 1e3, Total: int64(len(sp.plan.Configs))})
		j.scope.Log().Info("sweep started", "queue_wait_ms", wait.Seconds()*1e3)
		s.persistSweepJob(j, sp, jobRunning)
		c.sweep, c.err = s.computeSweep(ctx, sp, c)
		<-s.slots
	case <-ctx.Done():
		qsp.End()
		c.err = fmt.Errorf("waiting for a worker: %w", ctx.Err())
	}

	s.observePhases(j.scope)
	s.jobsReg.finish(j, c.err)
	done, total := j.scope.Progress()
	if c.err != nil {
		s.bus.Publish(obs.Event{Type: obs.EventJobFailed, Job: j.id,
			Class: string(j.class), Error: c.err.Error(), Done: done, Total: total})
		j.scope.Log().Error("sweep failed", "error", c.err.Error(), "class", j.class)
	} else {
		s.bus.Publish(obs.Event{Type: obs.EventJobCompleted, Job: j.id,
			Class: string(obs.ClassOK), Done: done, Total: total, ElapsedMS: c.sweep.ElapsedMS})
		j.scope.Log().Info("sweep done",
			"configs", total, "elapsed_ms", c.sweep.ElapsedMS)
	}

	var evicted, expiredIdem []string
	cached := false
	s.mu.Lock()
	delete(s.inflight, key)
	if c.err == nil && s.cfg.CacheEntries > 0 {
		if _, dup := s.cache[key]; !dup {
			for len(s.cache) >= s.cfg.CacheEntries {
				oldest := s.order[0]
				s.order = s.order[1:]
				delete(s.cache, oldest)
				evicted = append(evicted, oldest)
				expiredIdem = append(expiredIdem, s.expireIdemLocked(oldest)...)
				obs.C("server_study_cache_evictions_total").Inc()
			}
			s.cache[key] = c.sweep
			s.order = append(s.order, key)
			cached = true
		}
	}
	s.jobs--
	obs.G("server_jobs_admitted").Set(float64(s.jobs))
	s.mu.Unlock()
	for _, old := range evicted {
		s.bus.Publish(obs.Event{Type: obs.EventCacheEvict, Key: old})
	}
	s.persistSweepOutcome(j, sp, c, key, cached, evicted, expiredIdem)
	close(c.done)
}

// computeSweep runs the planned sweep with per-config events and
// durable config-granular checkpoints, overlays any resumed results,
// and reduces the merged set to Pareto frontiers. Frontiers are always
// computed from the wire-typed results (which round-trip exactly
// through JSON), so a crash-resumed sweep reduces to bit-identical
// frontiers.
func (s *Server) computeSweep(ctx context.Context, sp sweepParams, c *call) (*SweepResponse, error) {
	t0 := time.Now()
	plan := sp.plan
	j := c.job
	results := make([]SweepConfigResult, len(plan.Configs))

	var (
		mu        sync.Mutex
		completed []SweepConfigResult
		lastCkpt  time.Time
	)
	ckptEnabled := s.store != nil && s.cfg.CheckpointInterval > 0
	for _, r := range c.sweepResume {
		completed = append(completed, r)
	}

	par := s.cfg.Workers
	opt := yieldcache.SweepOptions{
		Schemes:  regularSchemes(sp.schemes),
		Parallel: par,
		OnEval: func(ev yieldcache.SweepEval, done, total int) {
			r := toSweepConfigResult(ev)
			mu.Lock()
			results[r.Index] = r
			completed = append(completed, r)
			nDone := len(completed)
			if ckptEnabled && time.Since(lastCkpt) >= s.cfg.CheckpointInterval {
				lastCkpt = time.Now()
				if data, err := json.Marshal(sweepCheckpoint{Results: completed}); err == nil {
					if err := store.Do("put_checkpoint", func() error {
						return s.store.PutCheckpoint(j.id, nDone, data)
					}); err != nil {
						s.log.Warn("sweep checkpoint persist failed",
							"job", j.id, "configs", nDone, "error", err)
					} else {
						s.bus.Publish(obs.Event{Type: obs.EventJobCheckpoint, Job: j.id,
							Done: int64(nDone), Total: int64(total)})
					}
				}
			}
			mu.Unlock()
			s.bus.Publish(obs.Event{Type: obs.EventSweepConfig, Job: j.id, Key: r.Label,
				Done: int64(done), Total: int64(total)})
		},
	}
	if len(c.sweepResume) > 0 {
		opt.Skip = func(i int) bool {
			_, ok := c.sweepResume[i]
			return ok
		}
	}

	evals, err := yieldcache.RunSweep(ctx, plan, opt)
	if err != nil {
		return nil, err
	}
	resumed := 0
	for i := range evals {
		if evals[i].Skipped {
			results[i] = c.sweepResume[i]
			resumed++
		}
	}
	// CIs derive from (lost, n) alone, so recomputing here also fills
	// them on configs resumed from checkpoints written before the CI
	// fields existed.
	for i := range results {
		results[i].fillCIs(plan.Spec.N)
	}

	elapsed := time.Since(t0).Seconds()
	obs.H("server_sweep_seconds", obs.ExpBuckets(1e-3, 4, 10)).Observe(elapsed)
	s.observeBuild(elapsed)

	return &SweepResponse{
		Seed:           plan.Spec.Seed,
		Chips:          plan.Spec.N,
		Configs:        len(plan.Configs),
		Schemes:        sp.schemes,
		Stats:          plan.Stats(),
		Results:        results,
		Frontiers:      sweepWireFrontiers(results, sp.schemes),
		ResumedConfigs: resumed,
		ElapsedMS:      elapsed * 1e3,
	}, nil
}

// toSweepConfigResult converts a core evaluation to the wire shape.
func toSweepConfigResult(ev yieldcache.SweepEval) SweepConfigResult {
	g := ev.Config.Geometry
	r := SweepConfigResult{
		Index: ev.Config.Index,
		Label: ev.Config.Label(),
		Point: ev.Config.Point,
		Geometry: SweepGeometry{
			Ways: g.Ways, BanksPerWay: g.BanksPerWay, RowsPerBank: g.RowsPerBank,
			BitsPerRow: g.BitsPerRow, PathsPerBank: g.PathsPerBank,
		},
		Constraints: ConstraintsInfo{
			Name:        ev.Config.Constraints.Name,
			DelaySigmaK: ev.Config.Constraints.DelaySigmaK,
			LeakageMult: ev.Config.Constraints.LeakageMult,
		},
		Limits:        LimitsInfo{DelayPS: ev.Limits.DelayPS, LeakageW: ev.Limits.LeakageW},
		MeanLatencyPS: ev.MeanLatencyPS,
		MeanLeakageW:  ev.MeanLeakageW,
		BaseYield:     ev.BaseYield,
		BaseLost:      ev.BaseLost,
		Yields:        make([]SweepYield, len(ev.Yields)),
	}
	for i, y := range ev.Yields {
		r.Yields[i] = SweepYield{Scheme: y.Scheme, Yield: y.Yield, Lost: y.Lost}
	}
	return r
}

// fillCIs stamps the config's base and per-scheme yields with their
// post-hoc 95% Wilson intervals over a population of n chips.
func (r *SweepConfigResult) fillCIs(n int) {
	base := wilsonYieldCI(n-r.BaseLost, n)
	r.BaseCILow, r.BaseCIHigh = base.Low, base.High
	for i := range r.Yields {
		ci := wilsonYieldCI(n-r.Yields[i].Lost, n)
		r.Yields[i].CILow, r.Yields[i].CIHigh = ci.Low, ci.High
	}
}

// sweepWireFrontiers reduces wire results to one Pareto frontier per
// scheme (plus "Base"), mirroring the facade's SweepFrontiers but over
// the wire types so cached and resumed responses reduce identically.
func sweepWireFrontiers(results []SweepConfigResult, schemes []string) map[string][]int {
	names := append([]string{"Base"}, schemes...)
	out := make(map[string][]int, len(names))
	pts := make([]yieldcache.ParetoPoint, len(results))
	for ni, name := range names {
		for i, r := range results {
			y := r.BaseYield
			if ni > 0 && ni-1 < len(r.Yields) {
				y = r.Yields[ni-1].Yield
			}
			pts[i] = yieldcache.ParetoPoint{Yield: y, LatencyPS: r.MeanLatencyPS, LeakageW: r.MeanLeakageW}
		}
		out[name] = yieldcache.ParetoFrontier(pts)
	}
	return out
}

// awaitSweep blocks the request on the sweep or the request's own
// context, mirroring await.
func (s *Server) awaitSweep(w http.ResponseWriter, r *http.Request, c *call, sp sweepParams) {
	select {
	case <-c.done:
		if c.err != nil {
			w.Header().Set("X-Job-Id", c.job.id)
			class := obs.ClassifyError(c.err)
			switch class {
			case obs.ClassTimeout:
				obs.C("server_sweep_timeouts_total").Inc()
				writeErrorClass(w, http.StatusGatewayTimeout, class, "sweep timed out: "+c.err.Error())
			case obs.ClassCanceled:
				writeErrorClass(w, http.StatusServiceUnavailable, class, "sweep cancelled: server shutting down")
			default:
				writeErrorClass(w, http.StatusInternalServerError, class, c.err.Error())
			}
			return
		}
		writeSweepResult(w, c.sweep, sp.econ, false, c.job.id)
	case <-r.Context().Done():
		obs.C("server_requests_abandoned_total").Inc()
		w.Header().Set("X-Job-Id", c.job.id)
		writeErrorClass(w, http.StatusGatewayTimeout, obs.ClassCanceled, "request cancelled")
	}
}

// writeSweepResult sends a shared sweep response with per-request
// presentation: the Cached flag and — when the request carried an
// economics spec — per-config pricing, both applied to copies so the
// cached entry stays immutable. Economics is presentation because it is
// pure arithmetic over the cached yields; it never reruns the sweep.
func writeSweepResult(w http.ResponseWriter, res *SweepResponse, econ *sweepEconParams, cached bool, jobID string) {
	if jobID != "" {
		w.Header().Set("X-Job-Id", jobID)
	}
	obs.C(`server_requests_total{class="` + string(obs.ClassOK) + `"}`).Inc()
	out := *res
	out.Cached = cached
	if econ != nil {
		rows := make([]SweepConfigResult, len(res.Results))
		copy(rows, res.Results)
		for i := range rows {
			rows[i].Economics = sweepEconomicsRow(rows[i], econ)
		}
		out.Results = rows
	}
	writeJSON(w, http.StatusOK, &out)
}

// sweepEconomicsRow prices one config: base at full price, then each
// scheme with its saved chips in the degraded bin.
func sweepEconomicsRow(r SweepConfigResult, econ *sweepEconParams) []SweepEconomicsResult {
	out := make([]SweepEconomicsResult, 0, len(r.Yields)+1)
	add := func(scheme string, schemeYield, cpiPct float64) {
		res, err := econ.model.FromYields(scheme, r.BaseYield, schemeYield, cpiPct)
		if err != nil {
			return
		}
		out = append(out, SweepEconomicsResult{
			Scheme:           res.Scheme,
			SellableFraction: res.SellableFraction,
			DiesPerWafer:     res.DiesPerWafer,
			RevenuePerWafer:  res.RevenuePerWafer,
			CostPerDie:       res.CostPerDie,
		})
	}
	add("Base", r.BaseYield, 0)
	for _, y := range r.Yields {
		add(y.Scheme, y.Yield, econ.cpiPct)
	}
	return out
}

// persistSweepJob appends the sweep job's lifecycle state to the store,
// carrying the canonical spec so a crashed sweep can be replanned and
// resumed.
func (s *Server) persistSweepJob(j *job, sp sweepParams, state string) {
	if s.store == nil {
		return
	}
	rec := store.JobRecord{
		ID: j.id, Seq: j.seq, Key: j.key, State: state,
		Seed: sp.plan.Spec.Seed, Chips: sp.plan.Spec.N,
		ConsName: "sweep",
		Schemes:  sp.schemes, TimeoutMS: sp.timeout.Milliseconds(),
		Kind: jobKindSweep, Spec: j.spec,
		Restarts:      j.restarts,
		QueueWaitMS:   j.priorWaitMS,
		CreatedUnixMS: j.created.UnixMilli(),
	}
	if state != jobQueued && !j.started.IsZero() {
		rec.QueueWaitMS = j.priorWaitMS + j.started.Sub(j.admitted).Seconds()*1e3
	}
	if state == jobDone || state == jobFailed {
		rec.Class = string(j.class)
		rec.Error = j.errMsg
	}
	s.storeDo("put_job", func() error { return s.store.PutJob(rec) })
}

// persistSweepOutcome records a sweep's terminal state, mirroring
// persistOutcome.
func (s *Server) persistSweepOutcome(j *job, sp sweepParams, c *call, key string, cached bool, evicted, expiredIdem []string) {
	if s.store == nil {
		return
	}
	state := jobDone
	if c.err != nil {
		state = jobFailed
	}
	s.persistSweepJob(j, sp, state)
	if cached {
		if body, err := json.Marshal(c.sweep); err == nil {
			s.storeDo("put_result", func() error { return s.store.PutResult(key, body) })
		}
	}
	for _, old := range evicted {
		old := old
		s.storeDo("delete_result", func() error { return s.store.DeleteResult(old) })
	}
	for _, ik := range expiredIdem {
		ik := ik
		s.storeDo("delete_idem", func() error { return s.store.DeleteIdem(ik) })
	}
	if s.cfg.CheckpointInterval > 0 || len(c.sweepResume) > 0 {
		s.storeDo("delete_checkpoint", func() error { return s.store.DeleteCheckpoint(j.id) })
	}
}

// sweepParamsFromRecord replans a persisted sweep from its canonical
// spec bytes, so a resumed sweep evaluates exactly the grid the crashed
// server admitted.
func (s *Server) sweepParamsFromRecord(rec store.JobRecord) (sweepParams, error) {
	var can sweepCanonical
	if err := json.Unmarshal(rec.Spec, &can); err != nil {
		return sweepParams{}, fmt.Errorf("decoding canonical sweep spec: %w", err)
	}
	plan, err := yieldcache.PlanSweep(can.Spec)
	if err != nil {
		return sweepParams{}, fmt.Errorf("replanning sweep: %w", err)
	}
	sp := sweepParams{
		plan:      plan,
		schemes:   can.Schemes,
		timeout:   time.Duration(rec.TimeoutMS) * time.Millisecond,
		canonical: rec.Spec,
		key:       rec.Key,
	}
	if len(sp.schemes) == 0 {
		sp.schemes = schemeOrder
	}
	if sp.timeout <= 0 {
		sp.timeout = s.cfg.DefaultTimeout
	}
	return sp, nil
}

// resumeSweepJob re-admits one interrupted sweep under its original id,
// loading its config-granular checkpoint so already-evaluated configs
// are overlaid rather than rebuilt. An unreadable spec fails the job
// terminally (there is nothing to re-run); an unreadable checkpoint
// just falls back to a full re-evaluation.
func (s *Server) resumeSweepJob(jr store.JobRecord) {
	sp, err := s.sweepParamsFromRecord(jr)
	if err != nil {
		s.log.Warn("sweep spec unreadable; job failed", "job", jr.ID, "error", err)
		jr.State = jobFailed
		jr.Class = string(obs.ClassInternal)
		jr.Error = "sweep spec unreadable after restart: " + err.Error()
		s.jobsReg.restoreFinished(jr, s.log)
		s.storeDo("put_job", func() error { return s.store.PutJob(jr) })
		return
	}
	resume := make(map[int]SweepConfigResult)
	if data, _, err := s.store.Checkpoint(jr.ID); err == nil {
		var ck sweepCheckpoint
		if derr := json.Unmarshal(data, &ck); derr != nil {
			s.log.Warn("sweep checkpoint unreadable; resuming from scratch", "job", jr.ID, "error", derr)
		} else {
			for _, r := range ck.Results {
				if r.Index >= 0 && r.Index < len(sp.plan.Configs) {
					resume[r.Index] = r
				}
			}
		}
	}

	j := s.jobsReg.restoreResumed(jr, s.log)
	c := &call{done: make(chan struct{}), job: j, sweepResume: resume}
	s.mu.Lock()
	s.inflight[jr.Key] = c
	s.jobs++
	admitted := s.jobs
	s.mu.Unlock()
	obs.G("server_jobs_admitted").Set(float64(admitted))
	obs.C("server_jobs_resumed_total").Inc()
	s.wg.Add(1)
	s.bus.Publish(obs.Event{Type: obs.EventJobResumed, Job: j.id, Key: jr.Key,
		Done: int64(len(resume)), Total: int64(len(sp.plan.Configs)), Restarts: j.restarts})
	j.scope.Log().Info("sweep resumed from store",
		"restarts", j.restarts, "checkpoint_configs", len(resume),
		"configs", len(sp.plan.Configs))
	s.persistSweepJob(j, sp, jobQueued)
	go s.runSweep(jr.Key, sp, c)
}
