// Package server implements yieldd, the yield-analysis service: an HTTP
// JSON API over the yieldcache facade. Requests name a study by its
// canonical parameters (seed, chips, constraints, scheme set); the
// server runs the Monte Carlo on a bounded worker pool, coalesces
// concurrent identical requests onto one build (singleflight), caches
// finished results by canonical key, sheds load with 429 + Retry-After
// when the queue is full, honours per-request timeouts threaded into
// the population build, and drains in-flight jobs on shutdown.
// docs/API.md documents the wire format; docs/ARCHITECTURE.md places
// the package in the repo's dependency stack.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"yieldcache"
	"yieldcache/internal/obs"
	"yieldcache/internal/stats"
	"yieldcache/internal/store"
)

// Config parameterises the service. Zero fields take the defaults
// documented on each field.
type Config struct {
	// Workers is the number of concurrent study builds (default 2; each
	// build already parallelises across all CPUs).
	Workers int
	// QueueDepth is how many builds may wait for a worker beyond the
	// ones running; admission beyond Workers+QueueDepth is refused with
	// 429 (default 8).
	QueueDepth int
	// CacheEntries caps the result cache, evicting oldest-first
	// (default 128; 0 keeps the default, negative disables caching).
	CacheEntries int
	// MaxChips is the largest accepted population size (default 20000).
	MaxChips int
	// MaxSweepConfigs is the largest design-space sweep accepted by
	// POST /v1/sweep, counted in resolved configs (geometry × tech grid ×
	// constraint sets); larger plans are refused with 400 (default 256).
	MaxSweepConfigs int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request timeouts (default 2m).
	MaxTimeout time.Duration
	// JobHistory caps how many finished jobs stay inspectable via
	// /v1/jobs after completion, evicted oldest-first (default 64;
	// negative keeps no history).
	JobHistory int
	// StreamInterval throttles job_progress events on the SSE streams:
	// at most one progress event per job per interval (default 250ms;
	// negative publishes every chip — tests only).
	StreamInterval time.Duration
	// EventBuffer is the per-SSE-connection event buffer. A subscriber
	// that falls more than a full buffer behind is disconnected rather
	// than allowed to stall the bus (default 64).
	EventBuffer int
	// FlightInterval is the runtime flight recorder's sampling period
	// (default 1s; negative disables the recorder).
	FlightInterval time.Duration
	// FlightSamples is the flight recorder's ring capacity — how many
	// samples GET /v1/runtime/history can return (default 512).
	FlightSamples int
	// Logger receives the server's structured logs; per-job logs carry
	// a "job" attribute matching the /v1/jobs id. Nil discards logs
	// (tests); yieldd passes a text or JSON slog handler.
	Logger *slog.Logger
	// Store persists job records, the result cache, idempotency keys
	// and build checkpoints so they survive restarts. Nil (the default)
	// disables durability entirely — no storage code runs on any
	// request path. The server replays the store on New and resumes
	// incomplete jobs; the caller owns the store's lifetime (Close).
	Store store.Store
	// CheckpointInterval is how often a running build checkpoints its
	// measured prefix to the Store (default 2s; negative disables
	// checkpointing while keeping the rest of the durability layer).
	// Ignored when Store is nil.
	CheckpointInterval time.Duration
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	} else if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.MaxChips <= 0 {
		c.MaxChips = 20000
	}
	if c.MaxSweepConfigs <= 0 {
		c.MaxSweepConfigs = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.JobHistory < 0 {
		c.JobHistory = 0
	} else if c.JobHistory == 0 {
		c.JobHistory = 64
	}
	if c.StreamInterval < 0 {
		c.StreamInterval = 0
	} else if c.StreamInterval == 0 {
		c.StreamInterval = 250 * time.Millisecond
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 64
	}
	if c.FlightInterval == 0 {
		c.FlightInterval = time.Second
	}
	if c.FlightSamples <= 0 {
		c.FlightSamples = 512
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 2 * time.Second
	} else if c.CheckpointInterval < 0 {
		c.CheckpointInterval = 0
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// studyBuilder builds a study; tests swap it for a controllable fake.
type studyBuilder func(ctx context.Context, cfg yieldcache.StudyConfig) (*yieldcache.Study, error)

// call is one in-progress build; requests for the same canonical key
// wait on done instead of building again. A call carries either a study
// (res) or a sweep (sweep) result, never both — the job's kind decides.
type call struct {
	done   chan struct{}
	job    *job                        // the build's job-registry entry; immutable
	resume *yieldcache.BuildCheckpoint // non-nil when resuming a crashed study build
	res    *StudyResponse              // immutable once done is closed
	err    error

	sweepResume map[int]SweepConfigResult // per-config checkpoint of a resumed sweep
	sweep       *SweepResponse            // immutable once done is closed
}

// Server is the yieldd request handler plus its job queue and caches.
type Server struct {
	cfg   Config
	build studyBuilder
	log   *slog.Logger

	baseCtx context.Context // parent of every build; cancelled on forced stop
	cancel  context.CancelFunc

	slots chan struct{} // worker pool: holds a token per running build

	mu       sync.Mutex
	jobs     int // builds admitted (queued + running)
	inflight map[string]*call
	cache    map[string]any // *StudyResponse, or *SweepResponse under "sweep/" keys
	order    []string       // cache keys, oldest first
	draining bool

	store     store.Store                 // nil when durability is disabled
	idem      map[string]store.IdemRecord // Idempotency-Key -> record
	idemByKey map[string][]string         // study key -> idempotency keys bound to it

	jobsReg *jobRegistry   // per-job telemetry behind /v1/jobs
	phases  *phaseLabelSet // cardinality cap for build-phase histograms

	bus    *obs.EventBus       // live telemetry fan-out behind the SSE endpoints
	flight *obs.FlightRecorder // runtime sampler behind /v1/runtime/history; nil when disabled

	streamCtx    context.Context // cancelled on Drain/Close so SSE connections end
	streamCancel context.CancelFunc

	wg sync.WaitGroup // tracks builds for Drain

	buildEWMA atomic.Uint64 // float64 bits: smoothed build seconds, for Retry-After

	// Build-throughput EWMA behind the build_chips_per_second gauge:
	// each flight-recorder sample diffs the summed per-job chip counters
	// against the previous sample and folds the rate into chipsEWMA.
	chipsEWMA    atomic.Uint64 // float64 bits: smoothed chips/second
	lastChips    atomic.Int64  // summed chip progress at the previous flight sample
	lastFlightNS atomic.Int64  // UnixNano of the previous flight sample
}

// maxPhaseLabels bounds the distinct phase label values of the
// server_build_phase_seconds histogram family.
const maxPhaseLabels = 24

// New returns a Server over the real yieldcache facade.
func New(cfg Config) *Server {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	streamCtx, streamCancel := context.WithCancel(context.Background())
	bus := obs.NewEventBus()
	s := &Server{
		cfg: cfg,
		build: func(ctx context.Context, sc yieldcache.StudyConfig) (*yieldcache.Study, error) {
			return yieldcache.NewStudyCtx(ctx, sc)
		},
		log:          cfg.Logger,
		baseCtx:      ctx,
		cancel:       cancel,
		slots:        make(chan struct{}, cfg.Workers),
		inflight:     make(map[string]*call),
		cache:        make(map[string]any),
		store:        cfg.Store,
		idem:         make(map[string]store.IdemRecord),
		idemByKey:    make(map[string][]string),
		jobsReg:      newJobRegistry(cfg.JobHistory, bus, cfg.StreamInterval),
		phases:       newPhaseLabelSet(maxPhaseLabels),
		bus:          bus,
		streamCtx:    streamCtx,
		streamCancel: streamCancel,
	}
	if cfg.FlightInterval > 0 {
		s.flight = obs.NewFlightRecorder(cfg.FlightInterval, cfg.FlightSamples, s.flightExtra)
		s.flight.Start()
	}
	s.recoverFromStore()
	return s
}

// flightExtra feeds server-level gauges into every flight-recorder
// sample (and, mirrored, onto /metrics): worker occupancy, queue depth,
// the smoothed build estimate, the live SSE subscriber count, and the
// smoothed Monte Carlo throughput in chips/second.
func (s *Server) flightExtra() map[string]float64 {
	busy := len(s.slots)
	s.mu.Lock()
	queued := s.jobs - busy
	s.mu.Unlock()
	if queued < 0 {
		queued = 0
	}
	return map[string]float64{
		"server_workers_busy":       float64(busy),
		"server_queue_depth":        float64(queued),
		"server_build_ewma_seconds": math.Float64frombits(s.buildEWMA.Load()),
		"server_event_subscribers":  float64(s.bus.Subscribers()),
		"build_chips_per_second":    s.observeChipRate(),
	}
}

// observeChipRate advances the chips/second EWMA by one flight-recorder
// occupancy sample: the delta of the summed per-job chip counters over
// the wall time since the previous sample, smoothed 70/30 so an idle
// sample decays the gauge instead of zeroing it. Eviction of finished
// jobs can shrink the sum; negative deltas clamp to an idle sample.
func (s *Server) observeChipRate() float64 {
	now := time.Now().UnixNano()
	total := s.jobsReg.totalChips()
	prev := s.lastChips.Swap(total)
	prevNS := s.lastFlightNS.Swap(now)
	rate := 0.0
	if dt := float64(now-prevNS) / 1e9; prevNS > 0 && dt > 0 {
		if dc := total - prev; dc > 0 {
			rate = float64(dc) / dt
		}
	}
	for {
		old := s.chipsEWMA.Load()
		smoothed := math.Float64frombits(old)
		next := rate
		if smoothed > 0 {
			next = 0.7*smoothed + 0.3*rate
		}
		if s.chipsEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return next
		}
	}
}

// Handler returns the instrumented route table: POST /v1/study,
// POST /v1/sweep, GET /v1/constraints, GET /v1/jobs, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/trace, GET /v1/jobs/{id}/estimate,
// GET /v1/jobs/{id}/events, GET /v1/events, GET /v1/runtime/history,
// GET /healthz, GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/study", obs.Instrument("study", http.HandlerFunc(s.handleStudy)))
	mux.Handle("/v1/sweep", obs.Instrument("sweep", http.HandlerFunc(s.handleSweep)))
	mux.Handle("/v1/constraints", obs.Instrument("constraints", http.HandlerFunc(s.handleConstraints)))
	mux.Handle("/v1/jobs", obs.Instrument("jobs", http.HandlerFunc(s.handleJobs)))
	mux.Handle("/v1/jobs/{id}", obs.Instrument("job", http.HandlerFunc(s.handleJob)))
	mux.Handle("/v1/jobs/{id}/trace", obs.Instrument("job_trace", http.HandlerFunc(s.handleJobTrace)))
	mux.Handle("/v1/jobs/{id}/estimate", obs.Instrument("job_estimate", http.HandlerFunc(s.handleJobEstimate)))
	mux.Handle("/v1/jobs/{id}/events", obs.Instrument("job_events", http.HandlerFunc(s.handleJobEvents)))
	mux.Handle("/v1/events", obs.Instrument("events", http.HandlerFunc(s.handleEvents)))
	mux.Handle("/v1/runtime/history", obs.Instrument("runtime_history", http.HandlerFunc(s.handleRuntimeHistory)))
	mux.Handle("/healthz", obs.Instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	mux.Handle("/metrics", obs.Instrument("metrics", obs.MetricsHandler()))
	return mux
}

// Drain stops admitting new builds (they get 503) and waits for every
// in-flight build to finish, or until ctx expires — in which case the
// remaining builds are cancelled, waited for, and ctx.Err() returned.
// SSE streams are ended up front — a long-lived /v1/events connection
// must not hold graceful shutdown hostage.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.streamCancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.flight.Stop()
		return nil
	case <-ctx.Done():
		s.cancel() // force: the population build polls cancellation per chip
		<-done
		s.flight.Stop()
		return ctx.Err()
	}
}

// Close cancels all in-flight builds and SSE streams immediately and
// stops the flight recorder.
func (s *Server) Close() {
	s.streamCancel()
	s.cancel()
	s.flight.Stop()
}

// params is a validated, normalised study request.
type params struct {
	seed    int64
	chips   int
	cons    yieldcache.Constraints
	schemes []string // canonical order, non-empty
	scatter bool
	saved   bool
	timeout time.Duration

	// targetCI > 0 arms precision-targeted stopping at that half-width;
	// confidence is the interval level (resolved to 0.95 when the
	// request names none) and applies to streamed estimates either way.
	targetCI   float64
	confidence float64
}

// schemeOrder is the canonical scheme order; request scheme sets are
// normalised against it so equivalent requests share a cache key.
var schemeOrder = []string{"YAPD", "VACA", "Hybrid"}

// parseRequest validates a StudyRequest against the server limits and
// resolves defaults.
func (s *Server) parseRequest(req *StudyRequest) (params, error) {
	p := params{seed: req.Seed, chips: req.Chips}
	if p.seed == 0 {
		p.seed = 2006
	}
	if p.chips == 0 {
		p.chips = 2000
	}
	if p.chips < 0 {
		return p, fmt.Errorf("chips must be positive, got %d", req.Chips)
	}
	if p.chips > s.cfg.MaxChips {
		return p, fmt.Errorf("chips %d exceeds the server limit %d", p.chips, s.cfg.MaxChips)
	}

	switch {
	case req.CustomConstraints != nil && req.Constraints != "":
		return p, errors.New("constraints and custom_constraints are mutually exclusive")
	case req.CustomConstraints != nil:
		c := req.CustomConstraints
		if c.DelaySigmaK < 0 || c.LeakageMult <= 0 {
			return p, fmt.Errorf("custom_constraints out of range: delay_sigma_k %g (>= 0), leakage_mult %g (> 0)",
				c.DelaySigmaK, c.LeakageMult)
		}
		p.cons = yieldcache.Constraints{Name: "custom", DelaySigmaK: c.DelaySigmaK, LeakageMult: c.LeakageMult}
	default:
		switch req.Constraints {
		case "", "nominal":
			p.cons = yieldcache.Nominal()
		case "relaxed":
			p.cons = yieldcache.Relaxed()
		case "strict":
			p.cons = yieldcache.Strict()
		default:
			return p, fmt.Errorf("unknown constraints %q (want nominal, relaxed or strict)", req.Constraints)
		}
	}

	if len(req.Schemes) == 0 {
		p.schemes = schemeOrder
	} else {
		want := make(map[string]bool, len(req.Schemes))
		for _, name := range req.Schemes {
			ok := false
			for _, known := range schemeOrder {
				if name == known {
					ok = true
					break
				}
			}
			if !ok {
				return p, fmt.Errorf("unknown scheme %q (want a subset of %s)",
					name, strings.Join(schemeOrder, ", "))
			}
			want[name] = true
		}
		for _, known := range schemeOrder {
			if want[known] {
				p.schemes = append(p.schemes, known)
			}
		}
	}

	p.confidence = 0.95
	if req.Precision != nil {
		pr := req.Precision
		if pr.TargetCIWidth <= 0 || pr.TargetCIWidth >= 1 {
			return p, fmt.Errorf("precision.target_ci_width must be in (0, 1), got %g", pr.TargetCIWidth)
		}
		if pr.Confidence < 0 || pr.Confidence >= 1 {
			return p, fmt.Errorf("precision.confidence must be in (0, 1), got %g", pr.Confidence)
		}
		p.targetCI = pr.TargetCIWidth
		if pr.Confidence > 0 {
			p.confidence = pr.Confidence
		}
	}

	p.scatter = req.IncludeScatter
	p.saved = req.IncludeSavedConfigs
	if req.TimeoutMS < 0 {
		return p, fmt.Errorf("timeout_ms must be positive, got %d", req.TimeoutMS)
	}
	p.timeout = s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		p.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if p.timeout > s.cfg.MaxTimeout {
		p.timeout = s.cfg.MaxTimeout
	}
	return p, nil
}

// key is the canonical cache/singleflight key: every request that must
// produce the same populations and breakdown columns shares it. The
// include_* presentation flags and the timeout are deliberately
// excluded — they shape the response, not the computation. A precision
// target joins the key (it can truncate the populations); its absence
// leaves the key bit-compatible with records from earlier versions.
func (p params) key() string {
	k := fmt.Sprintf("%d/%d/%s:%x:%x/%s",
		p.seed, p.chips, p.cons.Name, p.cons.DelaySigmaK, p.cons.LeakageMult,
		strings.Join(p.schemes, "+"))
	if p.targetCI > 0 {
		k += fmt.Sprintf("/ci:%x@%x", p.targetCI, p.confidence)
	}
	return k
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// The body is read raw (not streamed into the decoder) because the
	// idempotency layer hashes the exact bytes the client sent.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request: "+err.Error())
		return
	}
	var req StudyRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	p, err := s.parseRequest(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := p.key()

	idemKey := r.Header.Get("Idempotency-Key")
	if len(idemKey) > maxIdemKeyLen {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("Idempotency-Key longer than %d bytes", maxIdemKeyLen))
		return
	}
	var bodyHash string
	if idemKey != "" {
		sum := sha256.Sum256(body)
		bodyHash = hex.EncodeToString(sum[:])
	}

	s.mu.Lock()
	if idemKey != "" && s.idemLookupLocked(w, r, idemKey, bodyHash, p) {
		return
	}
	if res, ok := s.cache[key].(*StudyResponse); ok {
		s.mu.Unlock()
		obs.C("server_study_cache_hits_total").Inc()
		jobID := ""
		if j, ok := s.jobsReg.lookupKey(key); ok {
			j.cacheHits.Add(1)
			jobID = j.id
		}
		s.bus.Publish(obs.Event{Type: obs.EventCacheHit, Job: jobID, Key: key})
		s.log.Debug("study served from cache", "job", jobID, "key", key)
		s.recordIdem(idemKey, bodyHash, key, jobID)
		writeResult(w, res, p, true, jobID)
		return
	}
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		obs.C("server_study_coalesced_total").Inc()
		c.job.coalesced.Add(1)
		s.recordIdem(idemKey, bodyHash, key, c.job.id)
		s.await(w, r, c, p)
		return
	}
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.jobs >= s.cfg.Workers+s.cfg.QueueDepth {
		admitted := s.jobs
		s.mu.Unlock()
		obs.C("server_study_shed_total").Inc()
		j := s.jobsReg.createFailed(p, key, obs.ClassShed, "build queue is full")
		s.bus.Publish(obs.Event{Type: obs.EventShed, Job: j.id, Key: key,
			Class: string(obs.ClassShed), Queued: admitted})
		s.log.Warn("study shed: build queue full", "job", j.id, "key", key,
			"admitted", s.cfg.Workers+s.cfg.QueueDepth)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		w.Header().Set("X-Job-Id", j.id)
		writeError(w, http.StatusTooManyRequests, "build queue is full")
		return
	}
	c := &call{done: make(chan struct{}), job: s.jobsReg.create(p, key, s.log)}
	s.inflight[key] = c
	s.jobs++
	admitted := s.jobs
	obs.G("server_jobs_admitted").Set(float64(s.jobs))
	s.wg.Add(1)
	s.mu.Unlock()
	obs.C("server_study_cache_misses_total").Inc()
	s.bus.Publish(obs.Event{Type: obs.EventJobAdmitted, Job: c.job.id, Key: key,
		Total: int64(p.chips)})
	if admitted > s.cfg.Workers {
		// More admitted builds than worker slots: someone is queueing.
		s.bus.Publish(obs.Event{Type: obs.EventQueuePressure,
			Queued: admitted - s.cfg.Workers, Running: s.cfg.Workers})
	}
	c.job.scope.Log().Info("job admitted",
		"seed", p.seed, "chips", p.chips, "constraints", p.cons.Name,
		"schemes", strings.Join(p.schemes, "+"), "timeout", p.timeout)
	s.recordIdem(idemKey, bodyHash, key, c.job.id)
	s.persistJob(c.job, p, jobQueued)

	go s.run(key, p, c)
	s.await(w, r, c, p)
}

// run executes one admitted build: queue for a worker slot, build the
// study under the request timeout, publish the result to the cache and
// wake every waiter. It runs detached from the initiating request so a
// client disconnect does not waste the work for coalesced waiters. The
// build context carries the job's telemetry scope, so every phase span
// and the per-chip progress counter are attributable to this job alone.
func (s *Server) run(key string, p params, c *call) {
	defer s.wg.Done()
	j := c.job
	ctx, cancel := context.WithTimeout(s.baseCtx, p.timeout)
	defer cancel()
	ctx = obs.WithScope(ctx, j.scope)

	qsp := j.scope.StartSpan("queue_wait")
	select {
	case s.slots <- struct{}{}:
		qsp.End()
		wait := s.jobsReg.markRunning(j)
		obs.H("server_queue_wait_seconds", obs.ExpBuckets(1e-4, 4, 10)).
			Observe(wait.Seconds())
		s.bus.Publish(obs.Event{Type: obs.EventJobStarted, Job: j.id,
			QueueWaitMS: wait.Seconds() * 1e3, Total: int64(p.chips)})
		j.scope.Log().Info("build started", "queue_wait_ms", wait.Seconds()*1e3)
		s.persistJob(j, p, jobRunning)
		c.res, c.err = s.compute(ctx, p, c)
		<-s.slots
	case <-ctx.Done():
		qsp.End()
		c.err = fmt.Errorf("waiting for a worker: %w", ctx.Err())
	}

	s.observePhases(j.scope)
	s.jobsReg.finish(j, c.err)
	done, total := j.scope.Progress()
	if c.err != nil {
		s.bus.Publish(obs.Event{Type: obs.EventJobFailed, Job: j.id,
			Class: string(j.class), Error: c.err.Error(), Done: done, Total: total})
		j.scope.Log().Error("job failed", "error", c.err.Error(), "class", j.class)
	} else {
		s.bus.Publish(obs.Event{Type: obs.EventJobCompleted, Job: j.id,
			Class: string(obs.ClassOK), Done: done, Total: total, ElapsedMS: c.res.ElapsedMS})
		j.scope.Log().Info("job done",
			"chips_done", done, "chips_total", total, "elapsed_ms", c.res.ElapsedMS)
	}

	var evicted, expiredIdem []string
	cached := false
	s.mu.Lock()
	delete(s.inflight, key)
	if c.err == nil && s.cfg.CacheEntries > 0 {
		if _, dup := s.cache[key]; !dup {
			for len(s.cache) >= s.cfg.CacheEntries {
				oldest := s.order[0]
				s.order = s.order[1:]
				delete(s.cache, oldest)
				evicted = append(evicted, oldest)
				expiredIdem = append(expiredIdem, s.expireIdemLocked(oldest)...)
				obs.C("server_study_cache_evictions_total").Inc()
			}
			s.cache[key] = c.res
			s.order = append(s.order, key)
			cached = true
		}
	}
	s.jobs--
	obs.G("server_jobs_admitted").Set(float64(s.jobs))
	s.mu.Unlock()
	for _, old := range evicted {
		s.bus.Publish(obs.Event{Type: obs.EventCacheEvict, Key: old})
	}
	s.persistOutcome(j, p, c, key, cached, evicted, expiredIdem)
	close(c.done)
}

// compute builds the populations and assembles the full (unfiltered)
// response. Scatter and saved configurations are always computed — they
// are cheap next to the build — so a cached entry can serve any
// combination of include_* flags. With a store attached, the build
// checkpoints its measured prefix every CheckpointInterval and, on a
// resumed call, continues from the checkpoint decoded at recovery.
func (s *Server) compute(ctx context.Context, p params, c *call) (*StudyResponse, error) {
	t0 := time.Now()
	scfg := yieldcache.StudyConfig{Chips: p.chips, Seed: p.seed, Constraints: &p.cons}
	if s.store != nil && (s.cfg.CheckpointInterval > 0 || c.resume != nil) {
		scfg.Checkpoint = &yieldcache.CheckpointConfig{
			Interval: s.cfg.CheckpointInterval,
			Sink:     s.checkpointSink(c.job),
			Resume:   c.resume,
		}
	}
	scfg.Estimate = s.estimateConfig(p, c.job)
	study, err := s.build(ctx, scfg)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(t0).Seconds()
	obs.H("server_build_seconds", obs.ExpBuckets(1e-3, 4, 10)).Observe(elapsed)
	s.observeBuild(elapsed)

	asp := obs.StartSpanCtx(ctx, "assemble_response")
	defer asp.End()
	extra := []yieldcache.Constraints{yieldcache.Relaxed(), yieldcache.Strict()}
	res := &StudyResponse{
		Seed:  p.seed,
		Chips: p.chips,
		Constraints: ConstraintsInfo{
			Name:        p.cons.Name,
			DelaySigmaK: p.cons.DelaySigmaK,
			LeakageMult: p.cons.LeakageMult,
		},
		Limits:           LimitsInfo{DelayPS: study.Limits.DelayPS, LeakageW: study.Limits.LeakageW},
		Regular:          toBreakdown(study.Breakdown(regularSchemes(p.schemes)...)),
		Horizontal:       toBreakdown(study.BreakdownHorizontal(horizontalSchemes(p.schemes)...)),
		RegularTotals:    toTotals(study.Totals(extra, regularSchemes(p.schemes)...)),
		HorizontalTotals: toTotals(study.TotalsHorizontal(extra, horizontalSchemes(p.schemes)...)),
		ElapsedMS:        elapsed * 1e3,
	}
	for _, pt := range study.Figure8() {
		res.Scatter = append(res.Scatter, ScatterPoint{
			LatencyPS:         pt.LatencyPS,
			NormalizedLeakage: pt.NormalizedLeakage,
			Reason:            pt.Reason.String(),
		})
	}
	for _, sc := range study.SavedConfigurations() {
		res.SavedConfigs = append(res.SavedConfigs, SavedConfig{
			N4: sc.Key.N4, N5: sc.Key.N5, N6: sc.Key.N6,
			LeakageLimited: sc.LeakageLimited, Chips: sc.Chips,
		})
	}
	if study.Estimate != nil {
		ei := toEstimateInfo(study.Estimate)
		res.Estimate = &ei
		res.EarlyStop = study.Estimate.EarlyStop
		if res.EarlyStop {
			c.job.earlyStop.Store(true)
		}
	}
	return res, nil
}

// estimateConfig arms streaming yield estimation for one build: every
// snapshot lands on the job (GET /v1/jobs/{id}/estimate), streams as a
// throttled job_estimate SSE event, and mirrors onto the global
// estimate_* gauges; a request precision target adds early stopping.
func (s *Server) estimateConfig(p params, j *job) *yieldcache.EstimateConfig {
	interval := s.cfg.StreamInterval
	if interval <= 0 {
		// Per-chip streaming (tests): publish at every estimator poll.
		interval = time.Nanosecond
	} else if p.targetCI > 0 && interval > time.Millisecond {
		// The stopping rule is only evaluated when a snapshot publishes,
		// so a precision-targeted build polls much tighter than the SSE
		// cadence — otherwise a build that finishes within one stream
		// interval never gets a chance to stop. PublishEstimate's own
		// throttle still bounds the event rate on the wire.
		interval = time.Millisecond
	}
	return &yieldcache.EstimateConfig{
		Interval:      interval,
		Confidence:    p.confidence,
		TargetCIWidth: p.targetCI,
		Sink: func(e *yieldcache.YieldEstimate) {
			snap := *e // detach from the estimator's reusable buffer
			j.estimate.Store(&snap)
			j.scope.PublishEstimate(e.Yield, e.CILow, e.CIHigh, int64(e.Chips), int64(e.Total))
			obs.G("estimate_yield").Set(e.Yield)
			obs.G("estimate_ci_low").Set(e.CILow)
			obs.G("estimate_ci_high").Set(e.CIHigh)
			obs.G("estimate_half_width").Set(e.HalfWidth)
			obs.G("estimate_chips").Set(float64(e.Chips))
		},
	}
}

// toEstimateInfo converts a core estimate snapshot to the wire shape.
func toEstimateInfo(e *yieldcache.YieldEstimate) EstimateInfo {
	out := EstimateInfo{
		Chips:           e.Chips,
		Total:           e.Total,
		Confidence:      e.Confidence,
		Yield:           e.Yield,
		CILow:           e.CILow,
		CIHigh:          e.CIHigh,
		HalfWidth:       e.HalfWidth,
		Lost:            e.Lost,
		MeanLatencyPS:   e.MeanLatencyPS,
		StdErrLatencyPS: e.StdErrLatencyPS,
		MeanLeakageW:    e.MeanLeakageW,
		StdErrLeakageW:  e.StdErrLeakageW,
		Reasons:         make([]ReasonEstimateInfo, 0, len(e.Reasons)),
		EarlyStop:       e.EarlyStop,
	}
	for _, r := range e.Reasons {
		out.Reasons = append(out.Reasons, ReasonEstimateInfo{
			Reason: r.Reason.String(), Lost: r.Lost, Share: r.Share,
			CILow: r.CILow, CIHigh: r.CIHigh,
		})
	}
	return out
}

// wilsonYieldCI is the post-hoc 95% Wilson interval on a final yield:
// k passing chips out of n.
func wilsonYieldCI(k, n int) YieldCI {
	lo, hi := stats.WilsonInterval(int64(k), int64(n), 0.95)
	return YieldCI{Low: lo, High: hi}
}

// regularSchemes maps request scheme names to the regular-organisation
// scheme set (Table 2 columns).
func regularSchemes(names []string) []yieldcache.Scheme {
	out := make([]yieldcache.Scheme, len(names))
	for i, n := range names {
		switch n {
		case "YAPD":
			out[i] = yieldcache.SchemeYAPD()
		case "VACA":
			out[i] = yieldcache.SchemeVACA()
		case "Hybrid":
			out[i] = yieldcache.SchemeHybrid(false)
		}
	}
	return out
}

// horizontalSchemes maps request scheme names to their horizontal
// analogues (Table 3 columns): YAPD becomes H-YAPD and the Hybrid
// powers down horizontal regions.
func horizontalSchemes(names []string) []yieldcache.Scheme {
	out := make([]yieldcache.Scheme, len(names))
	for i, n := range names {
		switch n {
		case "YAPD":
			out[i] = yieldcache.SchemeHYAPD()
		case "VACA":
			out[i] = yieldcache.SchemeVACA()
		case "Hybrid":
			out[i] = yieldcache.SchemeHybrid(true)
		}
	}
	return out
}

func toBreakdown(bd yieldcache.LossBreakdown) Breakdown {
	out := Breakdown{
		N:         bd.N,
		BaseTotal: bd.BaseTotal,
		Totals:    make(map[string]int, len(bd.Schemes)),
		Yields:    make(map[string]float64, len(bd.Schemes)+1),
	}
	out.YieldCIs = make(map[string]YieldCI, len(bd.Schemes)+1)
	out.Yields["base"] = bd.Yield(-1)
	out.YieldCIs["base"] = wilsonYieldCI(bd.N-bd.BaseTotal, bd.N)
	for i, s := range bd.Schemes {
		out.Totals[s.Scheme] = s.Total
		out.Yields[s.Scheme] = bd.Yield(i)
		out.YieldCIs[s.Scheme] = wilsonYieldCI(bd.N-s.Total, bd.N)
	}
	for _, r := range yieldcache.AllLossReasons() {
		row := BreakdownRow{
			Reason:    r.String(),
			Base:      bd.Base[r],
			Remaining: make(map[string]int, len(bd.Schemes)),
		}
		for _, s := range bd.Schemes {
			row.Remaining[s.Scheme] = s.ByReason[r]
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func toTotals(rows []yieldcache.ConstraintTotals) []ConstraintTotals {
	out := make([]ConstraintTotals, 0, len(rows))
	for _, r := range rows {
		row := ConstraintTotals{
			Constraint: r.Constraint.Name,
			Base:       r.Base,
			Totals:     make(map[string]int, len(r.Schemes)),
		}
		for _, s := range r.Schemes {
			row.Totals[s.Scheme] = s.Total
		}
		out = append(out, row)
	}
	return out
}

// await blocks the request on the build (leader and coalesced waiters
// alike) or the request's own context, whichever ends first. Every
// outcome — success or failure — carries the job's id in X-Job-Id, so a
// 504 can still be chased down at /v1/jobs/{id}.
func (s *Server) await(w http.ResponseWriter, r *http.Request, c *call, p params) {
	select {
	case <-c.done:
		if c.err != nil {
			w.Header().Set("X-Job-Id", c.job.id)
			class := obs.ClassifyError(c.err)
			switch class {
			case obs.ClassTimeout:
				obs.C("server_study_timeouts_total").Inc()
				writeErrorClass(w, http.StatusGatewayTimeout, class, "study timed out: "+c.err.Error())
			case obs.ClassCanceled:
				writeErrorClass(w, http.StatusServiceUnavailable, class, "study cancelled: server shutting down")
			default:
				writeErrorClass(w, http.StatusInternalServerError, class, c.err.Error())
			}
			return
		}
		writeResult(w, c.res, p, false, c.job.id)
	case <-r.Context().Done():
		// Client gone (or server closing the connection); the build
		// keeps running for coalesced waiters and the cache.
		obs.C("server_requests_abandoned_total").Inc()
		w.Header().Set("X-Job-Id", c.job.id)
		writeErrorClass(w, http.StatusGatewayTimeout, obs.ClassCanceled, "request cancelled")
	}
}

func (s *Server) handleConstraints(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	sets := []yieldcache.Constraints{yieldcache.Nominal(), yieldcache.Relaxed(), yieldcache.Strict()}
	out := make([]ConstraintsInfo, 0, len(sets))
	for _, c := range sets {
		out = append(out, ConstraintsInfo{Name: c.Name, DelaySigmaK: c.DelaySigmaK, LeakageMult: c.LeakageMult})
	}
	writeJSON(w, http.StatusOK, map[string]any{"constraints": out, "schemes": schemeOrder})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining, jobs := s.draining, s.jobs
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining", "jobs": jobs})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "jobs": jobs})
}

// observeBuild folds one build duration into the smoothed estimate
// behind Retry-After.
func (s *Server) observeBuild(seconds float64) {
	for {
		old := s.buildEWMA.Load()
		prev := math.Float64frombits(old)
		next := seconds
		if prev > 0 {
			next = 0.7*prev + 0.3*seconds
		}
		if s.buildEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfterSeconds advises a shed client when a worker is likely to
// free up: one smoothed build duration, clamped to [1s, 60s].
func (s *Server) retryAfterSeconds() int {
	est := math.Float64frombits(s.buildEWMA.Load())
	sec := int(math.Ceil(est))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// writeResult sends a shared response with per-request presentation:
// the Cached flag and the include_* filters apply to a shallow copy, so
// the cached entry itself stays immutable. jobID, when known, is echoed
// in the X-Job-Id header so clients can follow the build's live state
// and trace at /v1/jobs/{id}; cache hits carry the producing job's id
// as long as it is still within the bounded job history.
func writeResult(w http.ResponseWriter, res *StudyResponse, p params, cached bool, jobID string) {
	if jobID != "" {
		w.Header().Set("X-Job-Id", jobID)
	}
	obs.C(`server_requests_total{class="` + string(obs.ClassOK) + `"}`).Inc()
	out := *res
	out.Cached = cached
	if !p.scatter {
		out.Scatter = nil
	}
	if !p.saved {
		out.SavedConfigs = nil
	}
	writeJSON(w, http.StatusOK, &out)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError classifies the failure from its HTTP status; paths that
// know a more precise class call writeErrorClass directly.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeErrorClass(w, code, classForStatus(code), msg)
}

// writeErrorClass sends an ErrorResponse stamped with its taxonomy
// class and counts it on server_requests_total{class=...}.
func writeErrorClass(w http.ResponseWriter, code int, class obs.ErrClass, msg string) {
	obs.C(`server_requests_total{class="` + string(class) + `"}`).Inc()
	writeJSON(w, code, ErrorResponse{Error: msg, Class: string(class)})
}

// classForStatus maps an HTTP status to the error taxonomy: 429 is
// shed, 504 timeout, 503 canceled (draining/shutdown), other 4xx
// validation, the rest internal.
func classForStatus(code int) obs.ErrClass {
	switch {
	case code == http.StatusTooManyRequests:
		return obs.ClassShed
	case code == http.StatusGatewayTimeout:
		return obs.ClassTimeout
	case code == http.StatusServiceUnavailable:
		return obs.ClassCanceled
	case code >= 400 && code < 500:
		return obs.ClassValidation
	default:
		return obs.ClassInternal
	}
}
