package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"yieldcache"
	"yieldcache/internal/obs"
)

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id, event, data string
}

// readSSE parses frames from body until stop returns true or the
// stream ends. Comment-only frames (keepalives, markers) are skipped.
func readSSE(t *testing.T, body io.Reader, stop func(sseEvent) bool) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				out = append(out, cur)
				if stop != nil && stop(cur) {
					return out
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return out
}

func decodeEvent(t *testing.T, fr sseEvent) obs.Event {
	t.Helper()
	var ev obs.Event
	if err := json.Unmarshal([]byte(fr.data), &ev); err != nil {
		t.Fatalf("decoding event %q data %q: %v", fr.event, fr.data, err)
	}
	return ev
}

// A subscriber attaching while the build runs must see live progress
// and the terminal completion event, each frame flushed as it happens.
func TestJobEventsStreamMidBuild(t *testing.T) {
	srv := New(Config{Workers: 1, StreamInterval: -1, FlightInterval: -1})
	defer srv.Close()
	started := make(chan struct{})
	attached := make(chan struct{})
	srv.build = func(ctx context.Context, cfg yieldcache.StudyConfig) (*yieldcache.Study, error) {
		sc := obs.ScopeFrom(ctx)
		sc.SetProgressTotal(int64(cfg.Chips))
		close(started)
		<-attached // hold the build until the SSE client is connected
		for i := 0; i < cfg.Chips; i++ {
			sc.AddProgress(1)
		}
		// Scope-free context: the fake drives the scope's progress itself.
		return yieldcache.NewStudyCtx(context.Background(), yieldcache.StudyConfig{Chips: 20, Seed: cfg.Seed})
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/study", "application/json",
			strings.NewReader(`{"chips": 8, "seed": 11}`))
		if err != nil {
			post <- nil
			return
		}
		resp.Body.Close()
		post <- resp
	}()
	<-started

	// The build is mid-flight; its id is visible on /v1/jobs.
	jresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jobs JobsResponse
	if err := json.NewDecoder(jresp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if len(jobs.Jobs) != 1 {
		t.Fatalf("jobs = %+v, want exactly one", jobs.Jobs)
	}
	id := jobs.Jobs[0].ID

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	close(attached)

	frames := readSSE(t, sresp.Body, func(fr sseEvent) bool { return fr.event == "job_completed" })
	if resp := <-post; resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("study request failed: %+v", resp)
	}

	var progress, completed int
	for _, fr := range frames {
		ev := decodeEvent(t, fr)
		if ev.Job != id {
			t.Errorf("event for job %q on a %q stream", ev.Job, id)
		}
		switch fr.event {
		case "job_progress":
			progress++
		case "job_completed":
			completed++
			if ev.Class != "ok" || ev.Done != ev.Total || ev.Done == 0 {
				t.Errorf("terminal event = %+v, want class ok and done == total > 0", ev)
			}
		}
	}
	if progress == 0 {
		t.Error("no job_progress events observed mid-build")
	}
	if completed != 1 {
		t.Errorf("job_completed events = %d, want 1 (stream must end at the terminal event)", completed)
	}
}

// A late subscriber to a finished job gets a replayed snapshot plus the
// terminal event and the stream closes — it never hangs waiting for
// events that already happened.
func TestJobEventsReplayOnFinishedJob(t *testing.T) {
	srv := New(Config{Workers: 1, FlightInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _, _ := postStudy(t, ts.URL, `{"chips": 20, "seed": 5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("study: status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Job-Id")
	if id == "" {
		t.Fatal("no X-Job-Id on the study response")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()

	// The handler returns after the replayed terminal event, so the body
	// ends on its own: read it all.
	frames := readSSE(t, sresp.Body, nil)
	if len(frames) != 3 || frames[0].event != "job_progress" ||
		frames[1].event != "job_estimate" || frames[2].event != "job_completed" {
		t.Fatalf("replay frames = %+v, want job_progress, job_estimate, then job_completed", frames)
	}
	est := decodeEvent(t, frames[1])
	if est.Yield <= 0 || est.CILow >= est.Yield || est.CIHigh <= est.Yield || est.Done != 20 {
		t.Errorf("replayed estimate event = %+v", est)
	}
	term := decodeEvent(t, frames[2])
	if term.Class != "ok" || term.Done != 20 || term.Total != 20 || term.ElapsedMS <= 0 {
		t.Errorf("replayed terminal event = %+v", term)
	}
	if frames[1].id != "" || frames[2].id != "" {
		t.Errorf("replayed events carry bus seq ids %q/%q, want none", frames[1].id, frames[2].id)
	}
}

// The firehose honours ?types= filtering and rejects unknown types.
func TestEventsFirehoseTypeFilter(t *testing.T) {
	srv := New(Config{Workers: 1, FlightInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/events?types=bogus")
	if err != nil {
		t.Fatal(err)
	}
	var fail ErrorResponse
	json.NewDecoder(resp.Body).Decode(&fail)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(fail.Error, "unknown event type") {
		t.Errorf("types=bogus: status %d, error %q; want 400 unknown event type", resp.StatusCode, fail.Error)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/v1/events?types=job_completed,shed", nil)
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()

	got := make(chan []sseEvent, 1)
	go func() {
		got <- readSSE(t, sresp.Body, func(fr sseEvent) bool { return fr.event == "job_completed" })
	}()
	// Wait for the subscription to be live before generating events:
	// the stream registers before sending its opening comment, so one
	// subscriber on the bus means the filter is in place.
	deadline := time.Now().Add(2 * time.Second)
	for srv.bus.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if r2, _, _ := postStudy(t, ts.URL, `{"chips": 20, "seed": 9}`); r2.StatusCode != http.StatusOK {
		t.Fatalf("study: status %d", r2.StatusCode)
	}

	frames := <-got
	if len(frames) == 0 {
		t.Fatal("firehose delivered nothing")
	}
	for _, fr := range frames {
		if fr.event != "job_completed" && fr.event != "shed" {
			t.Errorf("filtered firehose leaked a %q event", fr.event)
		}
	}
	last := frames[len(frames)-1]
	if last.event != "job_completed" {
		t.Errorf("last frame = %q, want job_completed", last.event)
	}
	if last.id == "" {
		t.Error("live event carries no bus seq id")
	}
}

// slowWriter blocks every Write until released, simulating a client
// that stops reading while events keep arriving.
type slowWriter struct {
	hdr     http.Header
	release chan struct{}
	mu      sync.Mutex
	buf     bytes.Buffer
}

func (w *slowWriter) Header() http.Header {
	if w.hdr == nil {
		w.hdr = make(http.Header)
	}
	return w.hdr
}
func (w *slowWriter) WriteHeader(int) {}
func (w *slowWriter) Write(p []byte) (int, error) {
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}
func (w *slowWriter) Flush() {}
func (w *slowWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// A subscriber that falls more than a full buffer behind is cut loose
// instead of silently streaming gaps forever.
func TestStreamDisconnectsSlowClient(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	srv := New(Config{Workers: 1, EventBuffer: 2, FlightInterval: -1})
	defer srv.Close()

	sub := srv.bus.Subscribe(srv.cfg.EventBuffer)
	defer sub.Close()
	w := &slowWriter{release: make(chan struct{})}
	sw := &sseWriter{w: w, rc: http.NewResponseController(w)}
	req := httptest.NewRequest(http.MethodGet, "/v1/events", nil)

	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.streamLoop(req, sw, sub, "")
	}()

	// First event: the loop picks it up and blocks inside Write.
	srv.bus.Publish(obs.Event{Type: obs.EventShed, Job: "j000001"})
	deadline := time.Now().Add(2 * time.Second)
	for sub.Dropped() <= uint64(srv.cfg.EventBuffer) && time.Now().Before(deadline) {
		// Flood while the writer is stuck: buffer 2 fills, rest drop.
		srv.bus.Publish(obs.Event{Type: obs.EventShed, Job: "j000002"})
	}
	if sub.Dropped() <= uint64(srv.cfg.EventBuffer) {
		t.Fatalf("dropped = %d, want > %d", sub.Dropped(), srv.cfg.EventBuffer)
	}
	close(w.release) // client "resumes"; the loop must now disconnect it

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("streamLoop did not disconnect the slow client")
	}
	if out := w.String(); !strings.Contains(out, "client too slow") {
		t.Errorf("stream output missing the disconnect notice:\n%s", out)
	}
	if got := reg.Counter("server_sse_slow_disconnects_total").Value(); got != 1 {
		t.Errorf("server_sse_slow_disconnects_total = %d, want 1", got)
	}
}

// Draining ends live streams so a long-lived firehose cannot hold
// graceful shutdown hostage.
func TestDrainEndsEventStreams(t *testing.T) {
	srv := New(Config{Workers: 1, FlightInterval: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/events", nil)
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.bus.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	body, _ := io.ReadAll(sresp.Body) // the stream must end on its own
	if !strings.Contains(string(body), "server draining") {
		t.Errorf("stream did not announce the drain:\n%s", body)
	}
}

// A shed request carries the failed job's id and class, and the job is
// inspectable afterwards on /v1/jobs.
func TestShedRecordsFailedJob(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	srv := New(Config{Workers: 1, QueueDepth: -1, FlightInterval: -1})
	defer srv.Close()
	started := make(chan string, 4)
	release := make(chan struct{})
	srv.build, _ = blockingBuilder(started, release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := make(chan *http.Response, 1)
	go func() {
		resp, _ := http.Post(ts.URL+"/v1/study", "application/json",
			strings.NewReader(`{"chips": 20, "seed": 1}`))
		first <- resp
	}()
	<-started

	resp, _, fail := postStudy(t, ts.URL, `{"chips": 20, "seed": 2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if fail.Class != "shed" {
		t.Errorf("error class = %q, want shed", fail.Class)
	}
	id := resp.Header.Get("X-Job-Id")
	if id == "" {
		t.Fatal("429 without X-Job-Id")
	}

	jresp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var detail JobDetail
	if err := json.NewDecoder(jresp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if detail.State != jobFailed || detail.Class != "shed" || !strings.Contains(detail.Error, "queue is full") {
		t.Errorf("shed job detail = %+v, want failed/shed with a queue-full error", detail.JobSummary)
	}
	if got := reg.Counter(`server_requests_total{class="shed"}`).Value(); got != 1 {
		t.Errorf(`server_requests_total{class="shed"} = %d, want 1`, got)
	}

	close(release)
	if resp := <-first; resp != nil {
		resp.Body.Close()
	}
}

// A timed-out build returns 504 with the job id and the timeout class,
// on the wire and in the job record.
func TestTimeoutClassOnResponseAndJob(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	srv := New(Config{Workers: 1, FlightInterval: -1})
	defer srv.Close()
	srv.build, _ = blockingBuilder(nil, nil) // only ctx ends the build
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _, fail := postStudy(t, ts.URL, `{"chips": 20, "timeout_ms": 25}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%v)", resp.StatusCode, fail)
	}
	if fail.Class != "timeout" {
		t.Errorf("error class = %q, want timeout", fail.Class)
	}
	id := resp.Header.Get("X-Job-Id")
	if id == "" {
		t.Fatal("504 without X-Job-Id")
	}

	jresp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var detail JobDetail
	if err := json.NewDecoder(jresp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if detail.State != jobFailed || detail.Class != "timeout" {
		t.Errorf("job = state %q class %q, want failed/timeout", detail.State, detail.Class)
	}
	if got := reg.Counter(`server_requests_total{class="timeout"}`).Value(); got != 1 {
		t.Errorf(`server_requests_total{class="timeout"} = %d, want 1`, got)
	}
}

// The flight recorder samples immediately on start and serves its ring
// through /v1/runtime/history with the server's extra gauges attached.
func TestRuntimeHistoryEndpoint(t *testing.T) {
	srv := New(Config{Workers: 3, FlightInterval: time.Hour, FlightSamples: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/runtime/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out RuntimeHistoryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Capacity != 4 || out.IntervalMS != time.Hour.Seconds()*1e3 {
		t.Errorf("capacity = %d interval = %g", out.Capacity, out.IntervalMS)
	}
	if len(out.Samples) < 1 {
		t.Fatal("no samples despite the start-time sample")
	}
	s0 := out.Samples[0]
	if s0.Goroutines <= 0 || s0.HeapAllocBytes == 0 {
		t.Errorf("sample = %+v, missing runtime stats", s0)
	}
	for _, key := range []string{"server_workers_busy", "server_queue_depth",
		"server_build_ewma_seconds", "server_event_subscribers"} {
		if _, ok := s0.Extra[key]; !ok {
			t.Errorf("sample missing extra gauge %q (have %v)", key, s0.Extra)
		}
	}
}

// The recorder can be disabled; the endpoint still answers.
func TestRuntimeHistoryDisabled(t *testing.T) {
	srv := New(Config{Workers: 1, FlightInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/runtime/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out RuntimeHistoryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Capacity != 0 || len(out.Samples) != 0 {
		t.Errorf("disabled recorder served %+v", out)
	}
}

// Unknown job ids and wrong methods are rejected cleanly.
func TestStreamEndpointValidation(t *testing.T) {
	srv := New(Config{Workers: 1, FlightInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/jobs/j999999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job stream: status %d, want 404", resp.StatusCode)
	}
	for _, path := range []string{"/v1/events", "/v1/runtime/history"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
	}
}

// A cache hit publishes a cache_hit event attributing the producing job.
func TestCacheHitPublishesEvent(t *testing.T) {
	srv := New(Config{Workers: 1, FlightInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _, _ := postStudy(t, ts.URL, `{"chips": 20, "seed": 3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("study: status %d", resp.StatusCode)
	}
	producer := resp.Header.Get("X-Job-Id")

	sub := srv.bus.Subscribe(8, obs.EventCacheHit)
	defer sub.Close()
	resp2, res, _ := postStudy(t, ts.URL, `{"chips": 20, "seed": 3}`)
	if resp2.StatusCode != http.StatusOK || !res.Cached {
		t.Fatalf("second study: status %d cached %v", resp2.StatusCode, res.Cached)
	}
	select {
	case ev := <-sub.Events():
		if ev.Type != obs.EventCacheHit || ev.Job != producer || ev.Key == "" {
			t.Errorf("cache_hit event = %+v, want job %q with a key", ev, producer)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no cache_hit event published")
	}
}
