package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"yieldcache"
	"yieldcache/internal/obs"
	"yieldcache/internal/store"
)

// maxIdemKeyLen bounds the Idempotency-Key header so a hostile client
// cannot stuff arbitrary blobs into the idempotency map and the WAL.
const maxIdemKeyLen = 256

// storeDo runs one storage operation through the bounded-retry helper
// and logs (but never propagates) a final failure: storage errors
// degrade durability, they do not fail requests.
func (s *Server) storeDo(op string, fn func() error) {
	if s.store == nil {
		return
	}
	if err := store.Do(op, fn); err != nil {
		s.log.Warn("store operation failed; durability degraded", "op", op, "error", err)
	}
}

// persistJob appends the job's current lifecycle state to the store.
// The non-synchronised job fields read here (started, class, errMsg)
// are only ever written by the goroutine calling persistJob, so the
// reads are race-free.
func (s *Server) persistJob(j *job, p params, state string) {
	if s.store == nil {
		return
	}
	rec := store.JobRecord{
		ID: j.id, Seq: j.seq, Key: j.key, State: state,
		Seed: p.seed, Chips: p.chips,
		ConsName: p.cons.Name, DelaySigmaK: p.cons.DelaySigmaK, LeakageMult: p.cons.LeakageMult,
		Schemes: p.schemes, TimeoutMS: p.timeout.Milliseconds(),
		TargetCIWidth: p.targetCI, Confidence: p.confidence,
		EarlyStop:     j.earlyStop.Load(),
		Restarts:      j.restarts,
		QueueWaitMS:   j.priorWaitMS,
		CreatedUnixMS: j.created.UnixMilli(),
	}
	if state != jobQueued && !j.started.IsZero() {
		rec.QueueWaitMS = j.priorWaitMS + j.started.Sub(j.admitted).Seconds()*1e3
	}
	if state == jobDone || state == jobFailed {
		rec.Class = string(j.class)
		rec.Error = j.errMsg
	}
	s.storeDo("put_job", func() error { return s.store.PutJob(rec) })
}

// persistOutcome records a build's terminal state: the final job
// record, the cached result body, evicted results, expired idempotency
// keys, and the checkpoint that is no longer needed.
func (s *Server) persistOutcome(j *job, p params, c *call, key string, cached bool, evicted, expiredIdem []string) {
	if s.store == nil {
		return
	}
	state := jobDone
	if c.err != nil {
		state = jobFailed
	}
	s.persistJob(j, p, state)
	if cached {
		if body, err := json.Marshal(c.res); err == nil {
			s.storeDo("put_result", func() error { return s.store.PutResult(key, body) })
		}
	}
	for _, old := range evicted {
		old := old
		s.storeDo("delete_result", func() error { return s.store.DeleteResult(old) })
	}
	for _, ik := range expiredIdem {
		ik := ik
		s.storeDo("delete_idem", func() error { return s.store.DeleteIdem(ik) })
	}
	if s.cfg.CheckpointInterval > 0 || c.resume != nil {
		s.storeDo("delete_checkpoint", func() error { return s.store.DeleteCheckpoint(j.id) })
	}
}

// checkpointSink returns the build-checkpoint callback for one job:
// encode, persist with retry, and announce on the event bus. A sink
// error skips that checkpoint; the build carries on.
//
// The sink self-clocks against the storage it writes to: a checkpoint
// snapshot grows with the build (retained draws are O(chips)), and on
// slow disks persisting one can take far longer than the configured
// interval. Each persisted checkpoint therefore postpones the next by
// its own cost, so slow storage degrades checkpoint granularity —
// bounded at a ~50% duty cycle of the publishing worker — instead of
// starving the build itself.
func (s *Server) checkpointSink(j *job) func(*yieldcache.BuildCheckpoint) error {
	jobID := j.id
	var wrote time.Time    // when the last persisted checkpoint finished
	var cost time.Duration // how long it took to persist
	return func(bc *yieldcache.BuildCheckpoint) error {
		if !wrote.IsZero() && time.Since(wrote) < cost {
			return nil // still paying for the last write: skip this offer
		}
		var buf bytes.Buffer
		if err := bc.Encode(&buf); err != nil {
			return err
		}
		t0 := time.Now()
		if err := store.Do("put_checkpoint", func() error {
			return s.store.PutCheckpoint(jobID, bc.Done, buf.Bytes())
		}); err != nil {
			s.log.Warn("checkpoint persist failed", "job", jobID, "chips", bc.Done, "error", err)
			return err
		}
		wrote = time.Now()
		cost = wrote.Sub(t0)
		s.bus.Publish(obs.Event{Type: obs.EventJobCheckpoint, Job: jobID,
			Done: int64(bc.Done), Total: int64(bc.N)})
		return nil
	}
}

// recordIdem binds an Idempotency-Key to the study that answers it, in
// memory and (when a store is attached) durably. No-op without a key.
// Idempotency works store-less too — it then lasts one process
// lifetime, like the rest of the in-memory state.
func (s *Server) recordIdem(idemKey, bodyHash, studyKey, jobID string) {
	if idemKey == "" {
		return
	}
	rec := store.IdemRecord{Key: idemKey, BodyHash: bodyHash, StudyKey: studyKey, JobID: jobID}
	s.mu.Lock()
	s.idem[idemKey] = rec
	s.idemByKey[studyKey] = append(s.idemByKey[studyKey], idemKey)
	s.mu.Unlock()
	s.storeDo("put_idem", func() error { return s.store.PutIdem(rec) })
}

// idemLookupLocked resolves a recorded Idempotency-Key while s.mu is
// held. When it fully answers the request — body-hash conflict (409),
// replay of the recorded response, or coalescing onto the in-flight
// build — it unlocks and returns true. Otherwise the stale record (if
// any) is expired and the caller proceeds with the lock still held.
func (s *Server) idemLookupLocked(w http.ResponseWriter, r *http.Request, idemKey, bodyHash string, p params) bool {
	rec, ok := s.idem[idemKey]
	if !ok {
		return false
	}
	if rec.BodyHash != bodyHash {
		s.mu.Unlock()
		obs.C("server_idempotency_conflicts_total").Inc()
		s.log.Warn("idempotency key reused with different body", "job", rec.JobID)
		writeErrorClass(w, http.StatusConflict, obs.ClassValidation,
			"Idempotency-Key was already used with a different request body")
		return true
	}
	if res, hit := s.cache[rec.StudyKey].(*StudyResponse); hit {
		s.mu.Unlock()
		obs.C("server_idempotent_replays_total").Inc()
		if j, found := s.jobsReg.lookupKey(rec.StudyKey); found {
			j.cacheHits.Add(1)
		}
		w.Header().Set("Idempotency-Replayed", "true")
		s.log.Debug("study replayed for idempotency key", "job", rec.JobID, "key", rec.StudyKey)
		writeResult(w, res, p, true, rec.JobID)
		return true
	}
	if c, flying := s.inflight[rec.StudyKey]; flying {
		s.mu.Unlock()
		obs.C("server_study_coalesced_total").Inc()
		c.job.coalesced.Add(1)
		s.await(w, r, c, p)
		return true
	}
	// The recorded result was evicted (or its build failed): the key
	// expired with the cache entry. Forget it and retry fresh.
	delete(s.idem, idemKey)
	go s.storeDo("delete_idem", func() error { return s.store.DeleteIdem(idemKey) })
	return false
}

// expireIdemLocked drops every idempotency record bound to an evicted
// study key, returning the expired keys so the caller can delete them
// from the store after releasing s.mu. Caller holds s.mu.
func (s *Server) expireIdemLocked(studyKey string) []string {
	keys := s.idemByKey[studyKey]
	delete(s.idemByKey, studyKey)
	expired := keys[:0]
	for _, ik := range keys {
		if _, ok := s.idem[ik]; ok {
			delete(s.idem, ik)
			expired = append(expired, ik)
		}
	}
	return expired
}

// paramsFromRecord rebuilds the canonical study parameters from a
// persisted job record, so a resumed build runs exactly the study the
// crashed server admitted.
func (s *Server) paramsFromRecord(rec store.JobRecord) params {
	p := params{
		seed:       rec.Seed,
		chips:      rec.Chips,
		cons:       yieldcache.Constraints{Name: rec.ConsName, DelaySigmaK: rec.DelaySigmaK, LeakageMult: rec.LeakageMult},
		schemes:    rec.Schemes,
		timeout:    time.Duration(rec.TimeoutMS) * time.Millisecond,
		targetCI:   rec.TargetCIWidth,
		confidence: rec.Confidence,
	}
	if p.timeout <= 0 {
		p.timeout = s.cfg.DefaultTimeout
	}
	if p.confidence <= 0 {
		// Records from before the estimation layer carry no confidence.
		p.confidence = 0.95
	}
	return p
}

// recoverFromStore replays the store into the server's in-memory state:
// the result cache (in original FIFO order), live idempotency records,
// finished-job history, and — the point of the exercise — re-admits
// every job that was queued or running when the last process died,
// resuming each from its newest readable checkpoint. Runs once from
// New, before the server serves any request.
func (s *Server) recoverFromStore() {
	if s.store == nil {
		return
	}
	rec, err := s.store.Recover()
	if err != nil {
		s.log.Error("store recovery failed; starting empty", "error", err)
		return
	}

	if s.cfg.CacheEntries > 0 {
		start := 0
		if len(rec.Results) > s.cfg.CacheEntries {
			start = len(rec.Results) - s.cfg.CacheEntries
		}
		for _, res := range rec.Results[start:] {
			var body any
			if strings.HasPrefix(res.Key, sweepKeyPrefix) {
				var sw SweepResponse
				if err := json.Unmarshal(res.Body, &sw); err != nil {
					s.log.Warn("recovered result unreadable; dropped", "key", res.Key, "error", err)
					continue
				}
				body = &sw
			} else {
				var sr StudyResponse
				if err := json.Unmarshal(res.Body, &sr); err != nil {
					s.log.Warn("recovered result unreadable; dropped", "key", res.Key, "error", err)
					continue
				}
				body = &sr
			}
			s.cache[res.Key] = body
			s.order = append(s.order, res.Key)
		}
	}

	resumable := make(map[string]bool)
	for _, jr := range rec.Jobs {
		if jr.State == jobQueued || jr.State == jobRunning {
			resumable[jr.Key] = true
		}
	}
	for _, ir := range rec.Idem {
		if _, cached := s.cache[ir.StudyKey]; cached || resumable[ir.StudyKey] {
			s.idem[ir.Key] = ir
			s.idemByKey[ir.StudyKey] = append(s.idemByKey[ir.StudyKey], ir.Key)
		} else {
			// The result this key replayed is gone: expired.
			ik := ir.Key
			s.storeDo("delete_idem", func() error { return s.store.DeleteIdem(ik) })
		}
	}

	resumed := 0
	for _, jr := range rec.Jobs {
		switch jr.State {
		case jobDone, jobFailed:
			s.jobsReg.restoreFinished(jr, s.log)
		case jobQueued, jobRunning:
			if jr.Kind == jobKindSweep {
				s.resumeSweepJob(jr)
			} else {
				s.resumeJob(jr)
			}
			resumed++
		}
	}
	obs.C("server_store_recoveries_total").Inc()
	obs.G("server_jobs_resumed").Set(float64(resumed))
	s.log.Info("store recovered",
		"results", len(s.order), "jobs", len(rec.Jobs), "resumed", resumed, "idem_keys", len(s.idem))
}

// resumeJob re-admits one interrupted job under its original id,
// loading its newest checkpoint so the build continues where the dead
// process stopped (an unreadable checkpoint falls back to a full
// rebuild — correctness never depends on the checkpoint).
func (s *Server) resumeJob(jr store.JobRecord) {
	p := s.paramsFromRecord(jr)
	key := jr.Key
	var resume *yieldcache.BuildCheckpoint
	ckptChips := 0
	if data, chips, err := s.store.Checkpoint(jr.ID); err == nil {
		bc, derr := yieldcache.DecodeBuildCheckpoint(bytes.NewReader(data))
		if derr != nil {
			s.log.Warn("checkpoint unreadable; resuming from scratch", "job", jr.ID, "error", derr)
		} else {
			resume, ckptChips = bc, chips
		}
	}

	j := s.jobsReg.restoreResumed(jr, s.log)
	c := &call{done: make(chan struct{}), job: j, resume: resume}
	s.mu.Lock()
	s.inflight[key] = c
	s.jobs++
	admitted := s.jobs
	s.mu.Unlock()
	obs.G("server_jobs_admitted").Set(float64(admitted))
	obs.C("server_jobs_resumed_total").Inc()
	s.wg.Add(1)
	s.bus.Publish(obs.Event{Type: obs.EventJobResumed, Job: j.id, Key: key,
		Done: int64(ckptChips), Total: int64(p.chips), Restarts: j.restarts})
	j.scope.Log().Info("job resumed from store",
		"restarts", j.restarts, "checkpoint_chips", ckptChips,
		"seed", p.seed, "chips", p.chips)
	// Persist the bumped restart count right away, so a crash during
	// the resumed build counts this lifetime too.
	s.persistJob(j, p, jobQueued)
	go s.run(key, p, c)
}

// restoreFinished rebuilds one finished job's history entry from its
// persisted record. Span traces and exact timings died with the old
// process; identity, outcome and provenance survive.
func (r *jobRegistry) restoreFinished(rec store.JobRecord, base *slog.Logger) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec.Seq > r.seq {
		r.seq = rec.Seq
	}
	j := &job{
		id: rec.ID, seq: rec.Seq, key: rec.Key,
		kind: rec.Kind, spec: rec.Spec,
		scope: obs.NewScope(rec.ID, base),
		seed:  rec.Seed, chips: rec.Chips,
		constraints: rec.ConsName, schemes: rec.Schemes,
		created:     time.UnixMilli(rec.CreatedUnixMS),
		state:       rec.State,
		class:       obs.ErrClass(rec.Class),
		errMsg:      rec.Error,
		restarts:    rec.Restarts,
		priorWaitMS: rec.QueueWaitMS,
	}
	j.admitted = j.created
	j.earlyStop.Store(rec.EarlyStop)
	j.scope.SetProgressTotal(int64(rec.Chips))
	if rec.State == jobDone && !rec.EarlyStop {
		j.scope.AddProgress(int64(rec.Chips))
	}
	r.byID[j.id] = j
	if rec.State == jobDone {
		r.byKey[j.key] = j
	}
	r.done = append(r.done, j)
	r.evictLocked()
}

// restoreResumed rebuilds an interrupted job under its original id —
// X-Job-Id stays valid across the restart — with its restart count
// bumped and its past queue waits carried in priorWaitMS.
func (r *jobRegistry) restoreResumed(rec store.JobRecord, base *slog.Logger) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec.Seq > r.seq {
		r.seq = rec.Seq
	}
	j := &job{
		id: rec.ID, seq: rec.Seq, key: rec.Key,
		kind: rec.Kind, spec: rec.Spec,
		scope: obs.NewScope(rec.ID, base),
		seed:  rec.Seed, chips: rec.Chips,
		constraints: rec.ConsName, schemes: rec.Schemes,
		created:     time.UnixMilli(rec.CreatedUnixMS),
		state:       jobQueued,
		restarts:    rec.Restarts + 1,
		priorWaitMS: rec.QueueWaitMS,
	}
	j.admitted = time.Now()
	j.scope.AttachEvents(r.bus, r.streamInterval)
	r.byID[j.id] = j
	r.byKey[j.key] = j
	return j
}
