package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"yieldcache"
	"yieldcache/internal/obs"
)

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

// Two concurrent builds must produce disjoint per-job traces: each
// job's trace contains the spans of its own build and none of the
// other's. This is the regression test for the process-global tracer
// interleaving that scopes exist to fix.
func TestConcurrentJobTracesIsolated(t *testing.T) {
	srv := New(Config{Workers: 2})
	started := make(chan string, 2)
	release := make(chan struct{})
	srv.build = func(ctx context.Context, cfg yieldcache.StudyConfig) (*yieldcache.Study, error) {
		// Emit a span named after the seed into whatever tracer the
		// context routes to — isolation means it lands in this job's
		// trace only.
		sp := obs.StartSpanCtx(ctx, fmt.Sprintf("build_seed_%d", cfg.Seed))
		started <- fmt.Sprint(cfg.Seed)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		sp.End()
		return yieldcache.NewStudyCtx(ctx, yieldcache.StudyConfig{Chips: 20, Seed: cfg.Seed})
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	jobIDs := make(chan string, 2)
	var wg sync.WaitGroup
	for _, seed := range []int{1, 2} {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/study", "application/json",
				strings.NewReader(fmt.Sprintf(`{"chips": 20, "seed": %d}`, seed)))
			if err != nil {
				t.Errorf("seed %d: %v", seed, err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("seed %d: status %d", seed, resp.StatusCode)
				return
			}
			jobIDs <- resp.Header.Get("X-Job-Id") + "=" + fmt.Sprint(seed)
		}(seed)
	}
	<-started
	<-started // both builds are in flight simultaneously
	close(release)
	wg.Wait()
	close(jobIDs)

	for tagged := range jobIDs {
		id, seed, _ := strings.Cut(tagged, "=")
		if id == "" {
			t.Fatal("study response missing X-Job-Id header")
		}
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		trace := readAll(t, resp)
		resp.Body.Close()
		own := fmt.Sprintf(`"name":"build_seed_%s"`, seed)
		other := fmt.Sprintf(`"name":"build_seed_%d"`, 3-mustInt(t, seed))
		if !strings.Contains(trace, own) {
			t.Errorf("job %s trace missing its own span %s:\n%s", id, own, trace)
		}
		if strings.Contains(trace, other) {
			t.Errorf("job %s trace contains the concurrent job's span %s:\n%s", id, other, trace)
		}
		if !strings.Contains(trace, `"name":"queue_wait"`) {
			t.Errorf("job %s trace missing the queue_wait span", id)
		}
	}
}

func mustInt(t *testing.T, s string) int {
	t.Helper()
	var n int
	if _, err := fmt.Sscan(s, &n); err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return n
}

// A running job must be observable live: /v1/jobs/{id} reports state
// "running" with chips_done advancing monotonically, and after the
// build state "done" with chips_done == chips_total.
func TestJobLiveProgress(t *testing.T) {
	const total = 3
	srv := New(Config{Workers: 1})
	step := make(chan struct{}) // one receive per chip
	entered := make(chan string, 1)
	srv.build = func(ctx context.Context, cfg yieldcache.StudyConfig) (*yieldcache.Study, error) {
		sc := obs.ScopeFrom(ctx)
		// Shadow the scope for the real inner build so its own progress
		// accounting does not overwrite the staged counts under test.
		inner := obs.WithScope(ctx, nil)
		if sc == nil {
			t.Error("build context carries no telemetry scope")
			return yieldcache.NewStudyCtx(inner, yieldcache.StudyConfig{Chips: 20, Seed: cfg.Seed})
		}
		entered <- sc.ID
		for i := 0; i < total; i++ {
			select {
			case <-step:
				sc.AddProgress(1)
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		study, err := yieldcache.NewStudyCtx(inner, yieldcache.StudyConfig{Chips: 20, Seed: cfg.Seed})
		sc.SetProgressTotal(total)
		return study, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	respCh := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/study", "application/json",
			strings.NewReader(`{"chips": 20, "seed": 5}`))
		if err != nil {
			respCh <- -1
			return
		}
		resp.Body.Close()
		respCh <- resp.StatusCode
	}()
	id := <-entered

	poll := func() JobDetail {
		t.Helper()
		var d JobDetail
		if resp := getJSON(t, ts.URL+"/v1/jobs/"+id, &d); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job: status %d", resp.StatusCode)
		}
		return d
	}

	var last int64
	for i := 0; i < total; i++ {
		d := poll()
		if d.State != "running" {
			t.Errorf("step %d: state %q, want running", i, d.State)
		}
		if d.ChipsDone < last || d.ChipsDone > total {
			t.Errorf("step %d: chips_done %d out of order (last %d)", i, d.ChipsDone, last)
		}
		last = d.ChipsDone
		step <- struct{}{}
		// Wait until the worker has recorded the chip before re-polling,
		// so the observed sequence is deterministic.
		for n := 0; n < 200; n++ {
			if d = poll(); d.ChipsDone > last || d.State == "done" {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if d.ChipsDone <= last && d.State != "done" {
			t.Fatalf("step %d: chips_done stuck at %d", i, d.ChipsDone)
		}
		last = d.ChipsDone
	}
	if code := <-respCh; code != http.StatusOK {
		t.Fatalf("study request: status %d", code)
	}
	d := poll()
	if d.State != "done" || d.ChipsDone != total || d.ChipsTotal != total {
		t.Errorf("final job = state %q %d/%d, want done %d/%d",
			d.State, d.ChipsDone, d.ChipsTotal, total, total)
	}
	if d.Error != "" {
		t.Errorf("done job carries error %q", d.Error)
	}
	if d.TraceURL != "/v1/jobs/"+id+"/trace" {
		t.Errorf("trace_url = %q", d.TraceURL)
	}
}

// Finished jobs are retained FIFO up to Config.JobHistory; the oldest
// is evicted first and its endpoints answer 404.
func TestJobHistoryFIFOEviction(t *testing.T) {
	srv := New(Config{Workers: 1, JobHistory: 2, CacheEntries: -1})
	release := make(chan struct{})
	close(release)
	srv.build, _ = blockingBuilder(nil, release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ids []string
	for seed := 1; seed <= 3; seed++ {
		resp, _, _ := postStudy(t, ts.URL, fmt.Sprintf(`{"chips": 20, "seed": %d}`, seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
		id := resp.Header.Get("X-Job-Id")
		if id == "" {
			t.Fatalf("seed %d: no X-Job-Id", seed)
		}
		ids = append(ids, id)
	}

	var list JobsResponse
	if resp := getJSON(t, ts.URL+"/v1/jobs", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs: status %d", resp.StatusCode)
	}
	if list.HistoryCap != 2 {
		t.Errorf("history_cap = %d, want 2", list.HistoryCap)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("listed jobs = %d, want 2 after eviction (%+v)", len(list.Jobs), list.Jobs)
	}
	// Newest first: the two survivors are jobs 3 and 2.
	if list.Jobs[0].ID != ids[2] || list.Jobs[1].ID != ids[1] {
		t.Errorf("listed ids = %s, %s; want %s, %s (newest first)",
			list.Jobs[0].ID, list.Jobs[1].ID, ids[2], ids[1])
	}
	for _, j := range list.Jobs {
		if j.State != "done" {
			t.Errorf("job %s state = %q, want done", j.ID, j.State)
		}
	}

	if resp := getJSON(t, ts.URL+"/v1/jobs/"+ids[0], nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job detail: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+ids[0]+"/trace", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job trace: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+ids[1], nil); resp.StatusCode != http.StatusOK {
		t.Errorf("retained job detail: status %d, want 200", resp.StatusCode)
	}
}

// The jobs endpoints reject wrong methods with 405 and unknown ids
// with 404, in the service's JSON error format.
func TestJobEndpointErrors(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp := getJSON(t, ts.URL+"/v1/jobs/j999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
	for _, path := range []string{"/v1/jobs", "/v1/jobs/j000001", "/v1/jobs/j000001/trace"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Errorf("POST %s: Allow = %q, want GET", path, allow)
		}
	}
}

// Cache hits must stay attributable: the cached response carries the
// producing job's id in X-Job-Id and the job's cache_hits counter
// increments.
func TestCacheHitProvenance(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"chips": 30, "seed": 11}`
	first, _, _ := postStudy(t, ts.URL, body)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first: status %d", first.StatusCode)
	}
	id := first.Header.Get("X-Job-Id")
	if id == "" {
		t.Fatal("first response missing X-Job-Id")
	}

	second, res, _ := postStudy(t, ts.URL, body)
	if second.StatusCode != http.StatusOK || !res.Cached {
		t.Fatalf("second: status %d cached %v, want cached 200", second.StatusCode, res.Cached)
	}
	if got := second.Header.Get("X-Job-Id"); got != id {
		t.Errorf("cached X-Job-Id = %q, want producing job %q", got, id)
	}

	var d JobDetail
	getJSON(t, ts.URL+"/v1/jobs/"+id, &d)
	if d.CacheHits != 1 {
		t.Errorf("cache_hits = %d, want 1", d.CacheHits)
	}
	if d.State != "done" {
		t.Errorf("state = %q, want done", d.State)
	}
}

// A real (tiny) study must leave per-phase build-duration histograms
// and a queue-wait histogram on /metrics, with the core build phases
// as label values.
func TestBuildPhaseHistogramsInMetrics(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, _, _ := postStudy(t, ts.URL, `{"chips": 40, "seed": 3}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("study: status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text := readAll(t, resp)
	for _, want := range []string{
		`server_build_phase_seconds_count{phase="build_population/pair"} 1`,
		`server_build_phase_seconds_count{phase="new_study"} 1`,
		`server_build_phase_seconds_count{phase="derive_limits"} 1`,
		`server_build_phase_seconds_count{phase="assemble_response"} 1`,
		"server_queue_wait_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(text, `phase="queue_wait"`) {
		t.Error("queue_wait leaked into the build-phase histogram family")
	}
}

// The phase label set must cap the number of distinct label values so a
// hostile or buggy span namer cannot blow up /metrics cardinality, and
// must sanitise names into safe label characters.
func TestPhaseLabelCardinalityCap(t *testing.T) {
	ps := newPhaseLabelSet(4)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("phase_%d", i)
		if got := ps.label(name); got != name {
			t.Errorf("label(%q) = %q within cap", name, got)
		}
	}
	for i := 4; i < 40; i++ {
		if got := ps.label(fmt.Sprintf("phase_%d", i)); got != "other" {
			t.Errorf("label beyond cap = %q, want other", got)
		}
	}
	// Names admitted before the cap keep resolving to themselves.
	if got := ps.label("phase_2"); got != "phase_2" {
		t.Errorf("admitted label folded to %q", got)
	}

	if got := sanitizePhase(`evil"} 1e9{x="`); strings.ContainsAny(got, `"{}= `) {
		t.Errorf("sanitizePhase left label-breaking characters: %q", got)
	}
	if got := sanitizePhase("build_population/pair"); got != "build_population/pair" {
		t.Errorf("sanitizePhase mangled a legitimate name: %q", got)
	}
}

// End-to-end cardinality: a job with more distinct span names than the
// cap folds the excess into phase="other" instead of minting new series.
func TestObservePhasesRespectsCap(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	srv := New(Config{})
	srv.phases = newPhaseLabelSet(3)

	sc := obs.NewScope("j1", nil)
	for i := 0; i < 10; i++ {
		sc.StartSpan(fmt.Sprintf("weird_phase_%d", i)).End()
	}
	srv.observePhases(sc)

	if got := reg.Histogram(`server_build_phase_seconds{phase="other"}`, nil).Count(); got != 7 {
		t.Errorf("other bucket count = %d, want 7 (10 spans, cap 3)", got)
	}
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf(`server_build_phase_seconds{phase="weird_phase_%d"}`, i)
		if got := reg.Histogram(key, nil).Count(); got != 1 {
			t.Errorf("%s count = %d, want 1", key, got)
		}
	}
}
