package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"yieldcache"
	"yieldcache/internal/obs"
)

func postStudy(t *testing.T, url string, body string) (*http.Response, StudyResponse, ErrorResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/study", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/study: %v", err)
	}
	defer resp.Body.Close()
	var ok StudyResponse
	var fail ErrorResponse
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&ok); err != nil {
			t.Fatalf("decoding StudyResponse: %v", err)
		}
	} else {
		if err := dec.Decode(&fail); err != nil {
			t.Fatalf("decoding ErrorResponse (status %d): %v", resp.StatusCode, err)
		}
	}
	return resp, ok, fail
}

// A real end-to-end pass over a tiny population: the second identical
// request must come from the cache without rebuilding, and the cache
// counters must show up in /metrics.
func TestStudyCacheHitVisibleInMetrics(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"chips": 60, "seed": 2006, "include_scatter": true}`
	resp, first, _ := postStudy(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", resp.StatusCode)
	}
	if first.Cached {
		t.Error("first request reported cached")
	}
	if len(first.Scatter) != 60 {
		t.Errorf("scatter points = %d, want 60", len(first.Scatter))
	}
	if first.Regular.N != 60 || first.Horizontal.N != 60 {
		t.Errorf("breakdown N = %d/%d, want 60", first.Regular.N, first.Horizontal.N)
	}
	if len(first.RegularTotals) != 2 || len(first.HorizontalTotals) != 2 {
		t.Errorf("constraint totals rows = %d/%d, want 2 (relaxed+strict)",
			len(first.RegularTotals), len(first.HorizontalTotals))
	}

	// Identical parameters, different presentation flags: still a hit.
	resp, second, _ := postStudy(t, ts.URL, `{"chips": 60, "seed": 2006, "include_saved_configs": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second request: status %d", resp.StatusCode)
	}
	if !second.Cached {
		t.Error("second identical request was not served from the cache")
	}
	if len(second.Scatter) != 0 {
		t.Error("scatter included without include_scatter")
	}
	if second.Regular.BaseTotal != first.Regular.BaseTotal {
		t.Errorf("cached breakdown differs: %d vs %d", second.Regular.BaseTotal, first.Regular.BaseTotal)
	}

	if got := reg.Counter("server_study_cache_hits_total").Value(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if got := reg.Counter("server_study_cache_misses_total").Value(); got != 1 {
		t.Errorf("cache misses = %d, want 1", got)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	text := readAll(t, mresp)
	for _, want := range []string{
		"server_study_cache_hits_total 1",
		"server_study_cache_misses_total 1",
		`http_requests_total{handler="study",code="200"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// blockingBuilder returns a builder that signals entry on started and
// blocks until release is closed (or the build context ends).
func blockingBuilder(started chan<- string, release <-chan struct{}) (studyBuilder, *atomic.Int64) {
	var calls atomic.Int64
	return func(ctx context.Context, cfg yieldcache.StudyConfig) (*yieldcache.Study, error) {
		calls.Add(1)
		if started != nil {
			started <- fmt.Sprintf("%d/%d", cfg.Seed, cfg.Chips)
		}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return yieldcache.NewStudyCtx(ctx, yieldcache.StudyConfig{Chips: 20, Seed: cfg.Seed})
	}, &calls
}

func TestQueueFullShedsWith429(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: -1}) // QueueDepth < 0 → 0 after fill
	started := make(chan string, 4)
	release := make(chan struct{})
	srv.build, _ = blockingBuilder(started, release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := make(chan *http.Response, 1)
	go func() {
		resp, _ := http.Post(ts.URL+"/v1/study", "application/json",
			strings.NewReader(`{"chips": 20, "seed": 1}`))
		first <- resp
	}()
	<-started // the only worker slot is now occupied

	resp, _, fail := postStudy(t, ts.URL, `{"chips": 20, "seed": 2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%v)", resp.StatusCode, fail)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}

	close(release)
	if resp := <-first; resp.StatusCode != http.StatusOK {
		t.Errorf("first request: status %d after release", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

func TestRequestTimeoutReturns504(t *testing.T) {
	srv := New(Config{Workers: 1})
	// The real builder on a population large enough to outlive the
	// request deadline: exercises cancellation through NewStudyCtx and
	// the population build itself.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _, fail := postStudy(t, ts.URL, `{"chips": 20000, "timeout_ms": 1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%v)", resp.StatusCode, fail)
	}
	if !strings.Contains(fail.Error, "timed out") {
		t.Errorf("error = %q, want a timeout message", fail.Error)
	}
}

func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	srv := New(Config{Workers: 2})
	started := make(chan string, 1)
	release := make(chan struct{})
	builder, calls := blockingBuilder(started, release)
	srv.build = builder
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/study", "application/json",
				strings.NewReader(`{"chips": 20, "seed": 7}`))
			if err != nil {
				results <- -1
				return
			}
			resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	<-started // leader is inside the builder
	// Give the second request time to reach the coalescing path, then
	// let the build finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("request %d: status %d", i, code)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("builder ran %d times for identical concurrent requests, want 1", got)
	}
}

func TestDrainWaitsForInflightAndShedsNew(t *testing.T) {
	srv := New(Config{Workers: 1})
	started := make(chan string, 1)
	release := make(chan struct{})
	srv.build, _ = blockingBuilder(started, release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/study", "application/json",
			strings.NewReader(`{"chips": 20, "seed": 1}`))
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-started

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()

	// Drain must not finish while the build is running.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a build in flight", err)
	case <-time.After(30 * time.Millisecond):
	}

	// New work is refused while draining...
	resp, _, _ := postStudy(t, ts.URL, `{"chips": 20, "seed": 2}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("request during drain: status %d, want 503", resp.StatusCode)
	}
	// ...and health reports it.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status %d, want 503", hresp.StatusCode)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Errorf("Drain: %v", err)
	}
	if code := <-first; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", code)
	}
}

func TestDrainDeadlineCancelsBuilds(t *testing.T) {
	srv := New(Config{Workers: 1})
	started := make(chan string, 1)
	srv.build, _ = blockingBuilder(started, nil) // never released: only ctx ends it
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	go func() {
		resp, err := http.Post(ts.URL+"/v1/study", "application/json",
			strings.NewReader(`{"chips": 20, "seed": 1}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err != context.DeadlineExceeded {
		t.Errorf("Drain = %v, want context.DeadlineExceeded", err)
	}
}

func TestRequestValidation(t *testing.T) {
	srv := New(Config{Workers: 1, MaxChips: 500})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
		wantSubstr string
	}{
		{"unknown scheme", `{"chips": 10, "schemes": ["H-YAPD"]}`, "unknown scheme"},
		{"unknown constraints", `{"chips": 10, "constraints": "loose"}`, "unknown constraints"},
		{"both constraint forms", `{"chips": 10, "constraints": "strict", "custom_constraints": {"delay_sigma_k": 1, "leakage_mult": 3}}`, "mutually exclusive"},
		{"bad custom constraints", `{"chips": 10, "custom_constraints": {"delay_sigma_k": 1, "leakage_mult": 0}}`, "out of range"},
		{"too many chips", `{"chips": 501}`, "exceeds the server limit"},
		{"negative chips", `{"chips": -1}`, "must be positive"},
		{"negative timeout", `{"chips": 10, "timeout_ms": -5}`, "must be positive"},
		{"unknown field", `{"chip": 10}`, "unknown field"},
		{"malformed JSON", `{`, "decoding request"},
	}
	for _, c := range cases {
		resp, _, fail := postStudy(t, ts.URL, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
			continue
		}
		if !strings.Contains(fail.Error, c.wantSubstr) {
			t.Errorf("%s: error %q, want substring %q", c.name, fail.Error, c.wantSubstr)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/study")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/study: status %d, want 405", resp.StatusCode)
	}
}

// Equivalent requests must share a canonical key; different parameters
// must not.
func TestCanonicalKey(t *testing.T) {
	srv := New(Config{})
	key := func(body string) string {
		t.Helper()
		var req StudyRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		p, err := srv.parseRequest(&req)
		if err != nil {
			t.Fatal(err)
		}
		return p.key()
	}
	same := [][2]string{
		{`{}`, `{"seed": 2006, "chips": 2000, "constraints": "nominal"}`},
		{`{"schemes": ["Hybrid", "YAPD", "VACA"]}`, `{"schemes": ["YAPD", "VACA", "Hybrid", "YAPD"]}`},
		{`{"include_scatter": true, "timeout_ms": 5000}`, `{}`},
	}
	for _, pair := range same {
		if key(pair[0]) != key(pair[1]) {
			t.Errorf("keys differ for equivalent requests %s and %s", pair[0], pair[1])
		}
	}
	distinct := []string{
		`{}`,
		`{"seed": 7}`,
		`{"chips": 100}`,
		`{"constraints": "strict"}`,
		`{"custom_constraints": {"delay_sigma_k": 1, "leakage_mult": 3}}`,
		`{"schemes": ["YAPD"]}`,
	}
	seen := map[string]string{}
	for _, body := range distinct {
		k := key(body)
		if prev, dup := seen[k]; dup {
			t.Errorf("requests %s and %s share key %q", prev, body, k)
		}
		seen[k] = body
	}
}

// The cache evicts oldest-first at its capacity bound.
func TestCacheEviction(t *testing.T) {
	srv := New(Config{Workers: 1, CacheEntries: 2})
	release := make(chan struct{})
	close(release)
	srv.build, _ = blockingBuilder(nil, release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for seed := 1; seed <= 3; seed++ {
		resp, _, _ := postStudy(t, ts.URL, fmt.Sprintf(`{"chips": 20, "seed": %d}`, seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
	}
	// Seed 1 was evicted; seeds 2 and 3 remain.
	if resp, res, _ := postStudy(t, ts.URL, `{"chips": 20, "seed": 3}`); resp.StatusCode != http.StatusOK || !res.Cached {
		t.Errorf("seed 3 should be cached (status %d, cached %v)", resp.StatusCode, res.Cached)
	}
	if resp, res, _ := postStudy(t, ts.URL, `{"chips": 20, "seed": 1}`); resp.StatusCode != http.StatusOK || res.Cached {
		t.Errorf("seed 1 should have been evicted (status %d, cached %v)", resp.StatusCode, res.Cached)
	}
}

func TestConstraintsEndpoint(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/constraints")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Constraints []ConstraintsInfo `json:"constraints"`
		Schemes     []string          `json:"schemes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Constraints) != 3 || out.Constraints[0].Name != "nominal" {
		t.Errorf("constraints = %+v", out.Constraints)
	}
	if len(out.Schemes) != 3 {
		t.Errorf("schemes = %v", out.Schemes)
	}
}
