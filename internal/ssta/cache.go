package ssta

import (
	"math"

	"yieldcache/internal/circuit"
	"yieldcache/internal/sram"
	"yieldcache/internal/variation"
)

// CacheAnalysis is the SSTA view of the cache's access latency.
type CacheAnalysis struct {
	// Ways holds each way's canonical latency (max over its paths).
	Ways []Canonical
	// Latency is the cache-level canonical (max over ways).
	Latency Canonical
}

// localFactor aggregates the sub-chip correlation factors into the
// single independent-random weight the first-order model can carry: the
// way mesh factors (≈0.5 on average), the block factor and the band
// factor stack roughly in quadrature. Everything the Monte Carlo model
// resolves spatially (which rows share a band, which bank owns a sense
// amp) is flattened here — that flattening is part of the accuracy gap
// this package exists to measure.
const localFactor = 0.62

// AnalyzeCache linearises the circuit model around the nominal corner
// and propagates the Table 1 variation through the cache's path forest:
// each representative path becomes a canonical form whose shared
// sensitivities come from finite differences of the path delay with
// respect to the five chip-common parameters, and whose independent
// part carries the factor-scaled local variation. Ways and then the
// cache fold up with Clark max.
//
// Two known underestimates, by construction: the sense-margin
// amplification is linearised away (at the nominal corner its
// derivative is zero), and sub-chip spatial structure is reduced to an
// independent term. Both make the analytical tail lighter than the
// Monte Carlo tail — the inaccuracy Section 2 attributes to analytical
// approaches.
func AnalyzeCache(tech circuit.Tech, spec variation.Spec, geom sram.Geometry, hyapd bool) CacheAnalysis {
	totalRows := float64(geom.BanksPerWay * geom.RowsPerBank)
	penalty := 1.0
	if hyapd {
		penalty = sram.HYAPDLatencyPenalty
	}

	// Per-path canonical builder.
	buildPath := func(distFrac float64) Canonical {
		nominal := pathDelay(tech, distFrac, circuit.Device{VtV: tech.VtNominal}, circuit.Wire{}) * penalty
		c := New(nominal, int(variation.NumParams))
		for p := variation.Param(0); p < variation.NumParams; p++ {
			d := sensitivity(tech, spec, distFrac, p) * penalty
			c.Sens[p] = d
			c.Rand = hypot(c.Rand, d*localFactor)
		}
		return c
	}

	var ways []Canonical
	for w := 0; w < geom.Ways; w++ {
		var paths []Canonical
		for b := 0; b < geom.BanksPerWay; b++ {
			for s := 0; s < geom.PathsPerBank; s++ {
				rowIdx := s * geom.RowsPerBank / geom.PathsPerBank
				distFrac := (float64(b*geom.RowsPerBank) + float64(rowIdx) + 0.5) / totalRows
				paths = append(paths, buildPath(distFrac))
			}
		}
		ways = append(ways, MaxAll(paths))
	}
	return CacheAnalysis{Ways: ways, Latency: MaxAll(ways)}
}

// sensitivity returns the 1-sigma delay change of a path with respect
// to one chip-common parameter, by central finite difference.
func sensitivity(tech circuit.Tech, spec variation.Spec, distFrac float64, p variation.Param) float64 {
	up := pathDelay(tech, distFrac, deviceAt(tech, spec, p, +1), wireAt(spec, p, +1))
	dn := pathDelay(tech, distFrac, deviceAt(tech, spec, p, -1), wireAt(spec, p, -1))
	return (up - dn) / 2
}

func deviceAt(tech circuit.Tech, spec variation.Spec, p variation.Param, dir float64) circuit.Device {
	d := circuit.Device{VtV: tech.VtNominal}
	switch p {
	case variation.Leff:
		d.DLeff = dir * spec.Sigma(variation.Leff) / spec.Nominal[variation.Leff]
	case variation.Vt:
		d.VtV += dir * spec.Sigma(variation.Vt) / 1000
	}
	return d
}

func wireAt(spec variation.Spec, p variation.Param, dir float64) circuit.Wire {
	var w circuit.Wire
	frac := func(q variation.Param) float64 { return dir * spec.Sigma(q) / spec.Nominal[q] }
	switch p {
	case variation.W:
		w.DW = frac(variation.W)
	case variation.T:
		w.DT = frac(variation.T)
	case variation.H:
		w.DH = frac(variation.H)
	}
	return w
}

// pathDelay evaluates one access path with a single device/wire state
// shared by all stages (the linearisation point does not resolve
// per-block structure) and the nominal (unity) sense margin.
func pathDelay(t circuit.Tech, distFrac float64, dev circuit.Device, wire circuit.Wire) float64 {
	total := 0.0
	for _, s := range sram.NominalStages(distFrac) {
		total += s.Eval(t, dev, wire)
	}
	return total
}

func hypot(a, b float64) float64 { return math.Hypot(a, b) }
