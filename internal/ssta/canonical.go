// Package ssta implements first-order block-based statistical static
// timing analysis in the canonical form of Visweswariah et al. and
// Chang/Sapatnekar (the paper's references [38] and [8]).
//
// Section 2 of the paper weighs this analytical approach against Monte
// Carlo: "Analytical approaches to statistical timing analysis have
// been proposed recently, but suffer from inaccuracies due to a large
// number of assumptions. However, these approaches are efficient…  For
// accurate analysis, Monte Carlo simulations are widely employed."
// This package exists to make that trade-off measurable in this
// reproduction: it predicts the cache's latency distribution and
// delay-limit violation probabilities in microseconds instead of
// seconds, and the comparison drivers in package core quantify exactly
// how much accuracy the linearisation costs against the Monte Carlo
// population (the sense-margin nonlinearity is what it misses most).
package ssta

import "math"

// Canonical is a first-order canonical delay form:
//
//	D = Mean + Σ_i Sens[i]·X_i + Rand·R
//
// where the X_i are shared unit-normal process parameters (one per
// global variation source) and R is an independent unit-normal specific
// to this delay. Correlation between two delays comes entirely from the
// shared sensitivities.
type Canonical struct {
	Mean float64
	Sens []float64
	Rand float64
}

// New returns a canonical form with n shared parameters.
func New(mean float64, n int) Canonical {
	return Canonical{Mean: mean, Sens: make([]float64, n)}
}

// Variance returns the total variance.
func (c Canonical) Variance() float64 {
	v := c.Rand * c.Rand
	for _, s := range c.Sens {
		v += s * s
	}
	return v
}

// Sigma returns the standard deviation.
func (c Canonical) Sigma() float64 { return math.Sqrt(c.Variance()) }

// Covariance returns Cov(a, b) (shared sensitivities only; the Rand
// parts are independent by construction).
func Covariance(a, b Canonical) float64 {
	n := len(a.Sens)
	if len(b.Sens) < n {
		n = len(b.Sens)
	}
	cov := 0.0
	for i := 0; i < n; i++ {
		cov += a.Sens[i] * b.Sens[i]
	}
	return cov
}

// Correlation returns the correlation coefficient of two canonical
// delays, 0 when either is deterministic.
func Correlation(a, b Canonical) float64 {
	sa, sb := a.Sigma(), b.Sigma()
	if sa == 0 || sb == 0 {
		return 0
	}
	return Covariance(a, b) / (sa * sb)
}

// Add returns the canonical form of a + b (series composition of path
// segments). The independent parts add in quadrature.
func Add(a, b Canonical) Canonical {
	n := len(a.Sens)
	if len(b.Sens) > n {
		n = len(b.Sens)
	}
	out := New(a.Mean+b.Mean, n)
	for i := range out.Sens {
		if i < len(a.Sens) {
			out.Sens[i] += a.Sens[i]
		}
		if i < len(b.Sens) {
			out.Sens[i] += b.Sens[i]
		}
	}
	out.Rand = math.Hypot(a.Rand, b.Rand)
	return out
}

// Scale returns k·a.
func Scale(a Canonical, k float64) Canonical {
	out := New(a.Mean*k, len(a.Sens))
	for i, s := range a.Sens {
		out.Sens[i] = s * k
	}
	out.Rand = a.Rand * k
	return out
}

// Max returns the canonical approximation of max(a, b) using Clark's
// moment-matching: the exact first two moments of the max of two
// correlated Gaussians, with the sensitivities blended by the tightness
// probability so downstream correlations stay usable. This is the
// linearisation step where block-based SSTA loses accuracy on
// max-dominated structures like a cache's path forest.
func Max(a, b Canonical) Canonical {
	sa2, sb2 := a.Variance(), b.Variance()
	cov := Covariance(a, b)
	theta := math.Sqrt(math.Max(sa2+sb2-2*cov, 1e-24))
	alpha := (a.Mean - b.Mean) / theta

	t := phi(alpha)     // tightness: P(a > b)
	pdf := gauss(alpha) // standard normal density at alpha

	mean := a.Mean*t + b.Mean*(1-t) + theta*pdf
	second := (sa2+a.Mean*a.Mean)*t + (sb2+b.Mean*b.Mean)*(1-t) +
		(a.Mean+b.Mean)*theta*pdf
	variance := math.Max(second-mean*mean, 0)

	n := len(a.Sens)
	if len(b.Sens) > n {
		n = len(b.Sens)
	}
	out := New(mean, n)
	shared := 0.0
	for i := 0; i < n; i++ {
		var va, vb float64
		if i < len(a.Sens) {
			va = a.Sens[i]
		}
		if i < len(b.Sens) {
			vb = b.Sens[i]
		}
		out.Sens[i] = t*va + (1-t)*vb
		shared += out.Sens[i] * out.Sens[i]
	}
	if rest := variance - shared; rest > 0 {
		out.Rand = math.Sqrt(rest)
	}
	return out
}

// MaxAll folds Max over a slice; it panics on an empty slice.
func MaxAll(cs []Canonical) Canonical {
	if len(cs) == 0 {
		panic("ssta: MaxAll of empty slice")
	}
	out := cs[0]
	for _, c := range cs[1:] {
		out = Max(out, c)
	}
	return out
}

// ProbAbove returns P(D > x) under the Gaussian canonical model.
func (c Canonical) ProbAbove(x float64) float64 {
	s := c.Sigma()
	if s == 0 {
		if c.Mean > x {
			return 1
		}
		return 0
	}
	return 1 - phi((x-c.Mean)/s)
}

// Quantile returns the q-quantile (0 < q < 1) of the canonical delay.
func (c Canonical) Quantile(q float64) float64 {
	return c.Mean + c.Sigma()*probit(q)
}

// phi is the standard normal CDF.
func phi(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// gauss is the standard normal density.
func gauss(x float64) float64 { return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi) }

// probit inverts phi by bisection (sufficient precision for reporting;
// called rarely).
func probit(q float64) float64 {
	if q <= 0 {
		return math.Inf(-1)
	}
	if q >= 1 {
		return math.Inf(1)
	}
	lo, hi := -10.0, 10.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if phi(mid) < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
