package ssta

import (
	"math"
	"testing"
	"testing/quick"

	"yieldcache/internal/circuit"
	"yieldcache/internal/sram"
	"yieldcache/internal/stats"
	"yieldcache/internal/variation"
)

func TestCanonicalBasics(t *testing.T) {
	c := New(100, 3)
	c.Sens[0] = 3
	c.Sens[1] = 4
	if got := c.Sigma(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Sigma = %v, want 5", got)
	}
	c.Rand = 12
	if got := c.Sigma(); math.Abs(got-13) > 1e-12 {
		t.Errorf("Sigma with Rand = %v, want 13", got)
	}
}

func TestAddAndScale(t *testing.T) {
	a := New(10, 2)
	a.Sens[0] = 1
	a.Rand = 3
	b := New(20, 2)
	b.Sens[0] = 2
	b.Sens[1] = 1
	b.Rand = 4
	s := Add(a, b)
	if s.Mean != 30 || s.Sens[0] != 3 || s.Sens[1] != 1 {
		t.Errorf("Add wrong: %+v", s)
	}
	if math.Abs(s.Rand-5) > 1e-12 {
		t.Errorf("independent parts should add in quadrature: %v", s.Rand)
	}
	k := Scale(a, 2)
	if k.Mean != 20 || k.Sens[0] != 2 || k.Rand != 6 {
		t.Errorf("Scale wrong: %+v", k)
	}
}

func TestCorrelation(t *testing.T) {
	a := New(0, 1)
	a.Sens[0] = 1
	b := New(0, 1)
	b.Sens[0] = 1
	if c := Correlation(a, b); math.Abs(c-1) > 1e-12 {
		t.Errorf("identical forms should correlate at 1, got %v", c)
	}
	b.Sens[0] = 0
	b.Rand = 1
	if c := Correlation(a, b); c != 0 {
		t.Errorf("independent forms should correlate at 0, got %v", c)
	}
}

func TestMaxDominatedCase(t *testing.T) {
	// When a >> b, max(a, b) ~ a.
	a := New(100, 1)
	a.Sens[0] = 2
	b := New(10, 1)
	b.Sens[0] = 2
	m := Max(a, b)
	if math.Abs(m.Mean-100) > 0.1 {
		t.Errorf("dominated max mean = %v, want ~100", m.Mean)
	}
	if math.Abs(m.Sigma()-2) > 0.1 {
		t.Errorf("dominated max sigma = %v, want ~2", m.Sigma())
	}
}

func TestMaxEqualIndependent(t *testing.T) {
	// max of two iid N(0,1): mean 1/sqrt(pi), variance 1 - 1/pi.
	a := New(0, 0)
	a.Rand = 1
	b := New(0, 0)
	b.Rand = 1
	m := Max(a, b)
	wantMean := 1 / math.Sqrt(math.Pi)
	wantVar := 1 - 1/math.Pi
	if math.Abs(m.Mean-wantMean) > 1e-9 {
		t.Errorf("max mean = %v, want %v", m.Mean, wantMean)
	}
	if math.Abs(m.Variance()-wantVar) > 1e-9 {
		t.Errorf("max variance = %v, want %v", m.Variance(), wantVar)
	}
}

func TestProbAboveAndQuantile(t *testing.T) {
	c := New(100, 0)
	c.Rand = 10
	if p := c.ProbAbove(100); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("P(D > mean) = %v, want 0.5", p)
	}
	if p := c.ProbAbove(110); math.Abs(p-0.1586) > 1e-3 {
		t.Errorf("P(D > mean+sigma) = %v, want ~0.159", p)
	}
	if q := c.Quantile(0.5); math.Abs(q-100) > 1e-6 {
		t.Errorf("median = %v", q)
	}
	if q := c.Quantile(0.8413); math.Abs(q-110) > 0.01 {
		t.Errorf("84th percentile = %v, want ~110", q)
	}
	det := New(5, 0)
	if det.ProbAbove(4) != 1 || det.ProbAbove(6) != 0 {
		t.Error("deterministic tail probabilities wrong")
	}
}

// Property: Clark's max is exact in mean/variance against brute-force
// Monte Carlo for a pair of correlated Gaussians.
func TestMaxAgainstMonteCarlo(t *testing.T) {
	g := stats.NewRNG(7)
	cases := []struct {
		m1, m2, s1, s2, rho float64
	}{
		{0, 0, 1, 1, 0.8},
		{10, 11, 2, 1, 0.3},
		{5, 5, 1, 3, -0.5},
	}
	for _, c := range cases {
		a := New(c.m1, 2)
		a.Sens[0] = c.s1 * math.Sqrt(math.Abs(c.rho))
		a.Rand = c.s1 * math.Sqrt(1-math.Abs(c.rho))
		b := New(c.m2, 2)
		sign := 1.0
		if c.rho < 0 {
			sign = -1
		}
		b.Sens[0] = sign * c.s2 * math.Sqrt(math.Abs(c.rho))
		b.Rand = c.s2 * math.Sqrt(1-math.Abs(c.rho))

		m := Max(a, b)
		n := 200000
		sum, sum2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := g.Normal(0, 1)
			va := c.m1 + a.Sens[0]*x + a.Rand*g.Normal(0, 1)
			vb := c.m2 + b.Sens[0]*x + b.Rand*g.Normal(0, 1)
			v := math.Max(va, vb)
			sum += v
			sum2 += v * v
		}
		mcMean := sum / float64(n)
		mcVar := sum2/float64(n) - mcMean*mcMean
		if math.Abs(m.Mean-mcMean) > 0.02*math.Max(1, math.Abs(mcMean)) {
			t.Errorf("case %+v: Clark mean %v vs MC %v", c, m.Mean, mcMean)
		}
		if math.Abs(m.Variance()-mcVar) > 0.05*mcVar+0.01 {
			t.Errorf("case %+v: Clark var %v vs MC %v", c, m.Variance(), mcVar)
		}
	}
}

func TestMaxAllOrderInsensitiveMean(t *testing.T) {
	cs := []Canonical{}
	for i := 0; i < 5; i++ {
		c := New(float64(90+i*2), 1)
		c.Sens[0] = 5
		c.Rand = 3
		cs = append(cs, c)
	}
	fwd := MaxAll(cs)
	rev := MaxAll([]Canonical{cs[4], cs[3], cs[2], cs[1], cs[0]})
	if math.Abs(fwd.Mean-rev.Mean) > 0.5 {
		t.Errorf("MaxAll order sensitivity too strong: %v vs %v", fwd.Mean, rev.Mean)
	}
}

func TestAnalyzeCacheAgainstMonteCarlo(t *testing.T) {
	tech := circuit.PTM45()
	spec := variation.Nassif45nm()
	an := AnalyzeCache(tech, spec, sram.Paper16KB(), false)
	if len(an.Ways) != 4 {
		t.Fatalf("ways = %d", len(an.Ways))
	}
	// Monte Carlo reference.
	model := sram.NewModel(tech, false)
	sampler := variation.NewSampler(spec, variation.PaperFactors(), 2006)
	n := 1500
	lat := make([]float64, n)
	for i := 0; i < n; i++ {
		lat[i] = model.Measure(sampler.Chip(i)).LatencyPS
	}
	mcMean, mcSigma := stats.MeanStd(lat)

	// The analytical mean lands below the Monte Carlo mean — the margin
	// nonlinearity (zero derivative at the nominal corner, strictly
	// positive everywhere else) shifts the true population upward. The
	// gap is the Section 2 inaccuracy; it must be a gap, not a collapse.
	if r := an.Latency.Mean / mcMean; r < 0.55 || r > 1.05 {
		t.Errorf("SSTA mean %v vs MC %v (ratio %v)", an.Latency.Mean, mcMean, r)
	}
	if an.Latency.Sigma() <= 0 {
		t.Fatal("SSTA sigma collapsed — sensitivities broken")
	}
	// The analytical tail must be *lighter*: P(D > mc mean + sigma)
	// under SSTA far below the MC fraction.
	limit := mcMean + mcSigma
	mcViol := 0
	for _, l := range lat {
		if l > limit {
			mcViol++
		}
	}
	mcFrac := float64(mcViol) / float64(n)
	sstaFrac := an.Latency.ProbAbove(limit)
	if sstaFrac >= mcFrac {
		t.Errorf("SSTA tail (%v) should underestimate the MC tail (%v)", sstaFrac, mcFrac)
	}
	// At its own mean the canonical model behaves like a Gaussian.
	if p := an.Latency.ProbAbove(an.Latency.Mean); math.Abs(p-0.5) > 1e-6 {
		t.Errorf("P(D > own mean) = %v", p)
	}
	// Inter-way correlation in the canonical model must be strong, as in
	// the MC population.
	if c := Correlation(an.Ways[0], an.Ways[1]); c < 0.2 || c > 0.99 {
		t.Errorf("canonical inter-way correlation = %v", c)
	}
}

func TestAnalyzeCacheHYAPDPenalty(t *testing.T) {
	tech := circuit.PTM45()
	spec := variation.Nassif45nm()
	reg := AnalyzeCache(tech, spec, sram.Paper16KB(), false)
	hor := AnalyzeCache(tech, spec, sram.Paper16KB(), true)
	if r := hor.Latency.Mean / reg.Latency.Mean; math.Abs(r-sram.HYAPDLatencyPenalty) > 1e-6 {
		t.Errorf("H-YAPD analytical penalty = %v, want %v", r, sram.HYAPDLatencyPenalty)
	}
}

// Property: Max is commutative (in mean and variance) and its mean
// dominates both inputs' means.
func TestMaxProperties(t *testing.T) {
	f := func(m1, m2 int8, s1, s2, r uint8) bool {
		a := New(float64(m1), 1)
		a.Sens[0] = float64(s1%10) / 2
		a.Rand = float64(r%10) / 3
		b := New(float64(m2), 1)
		b.Sens[0] = float64(s2%10) / 2
		ab := Max(a, b)
		ba := Max(b, a)
		if math.Abs(ab.Mean-ba.Mean) > 1e-9 || math.Abs(ab.Variance()-ba.Variance()) > 1e-9 {
			return false
		}
		return ab.Mean >= math.Max(a.Mean, b.Mean)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
