// Package report renders the study's tables and figures as aligned text
// and CSV, including an ASCII scatter plot for Figure 8. The CLI tools
// and the benchmark harness print through this package so that every
// table of the paper has one canonical textual form.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned-text table builder.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with every column padded to its widest cell.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (title omitted).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, 0, len(t.Headers))
	for _, h := range t.Headers {
		cells = append(cells, esc(h))
	}
	b.WriteString(strings.Join(cells, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		cells = cells[:0]
		for _, c := range r {
			cells = append(cells, esc(c))
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
