package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Table X", "Reason", "#Chips", "YAPD")
	tb.AddRow("Leakage Constraint", 138, 33)
	tb.AddRow("Total", 339, 108)
	s := tb.String()
	if !strings.Contains(s, "Table X") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if len(lines[1]) != len(lines[2]) {
		t.Error("separator width does not match header")
	}
	if !strings.Contains(lines[3], "138") || !strings.Contains(lines[3], "33") {
		t.Error("row values missing")
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(1.081)
	if !strings.Contains(tb.String(), "1.08") {
		t.Errorf("float not formatted to 2 decimals:\n%s", tb.String())
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("x,y", 2)
	tb.AddRow(`q"q`, 3)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `"x,y",2` {
		t.Errorf("comma escaping wrong: %q", lines[1])
	}
	if lines[2] != `"q""q",3` {
		t.Errorf("quote escaping wrong: %q", lines[2])
	}
}

func TestScatterPlacesPoints(t *testing.T) {
	pts := []Point{
		{X: 0, Y: 0, Glyph: 'a'},
		{X: 10, Y: 10, Glyph: 'b'},
	}
	s := Scatter("fig", "x", "y", pts, 20, 10)
	lines := strings.Split(s, "\n")
	// Bottom-left 'a', top-right 'b'.
	var gridLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			gridLines = append(gridLines, l)
		}
	}
	if len(gridLines) != 10 {
		t.Fatalf("grid has %d rows", len(gridLines))
	}
	if gridLines[0][len(gridLines[0])-2] != 'b' {
		t.Errorf("top-right should be 'b': %q", gridLines[0])
	}
	if gridLines[9][1] != 'a' {
		t.Errorf("bottom-left should be 'a': %q", gridLines[9])
	}
	if !strings.Contains(s, "(0 .. 10)") {
		t.Error("axis ranges missing")
	}
}

func TestScatterDegenerate(t *testing.T) {
	if s := Scatter("t", "x", "y", nil, 20, 10); !strings.Contains(s, "no data") {
		t.Error("empty scatter should say so")
	}
	if s := Scatter("t", "x", "y", []Point{}, 20, 10); !strings.Contains(s, "no data") {
		t.Error("zero-length scatter should say so")
	}
	// Constant data must not divide by zero.
	s := Scatter("t", "x", "y", []Point{{X: 1, Y: 1}}, 20, 10)
	if !strings.Contains(s, "*") {
		t.Error("single constant point missing")
	}
}

func TestScatterSinglePoint(t *testing.T) {
	s := Scatter("t", "x", "y", []Point{{X: 3, Y: 7, Glyph: 'q'}}, 20, 10)
	if !strings.Contains(s, "q") {
		t.Errorf("single point not plotted:\n%s", s)
	}
	// The degenerate range is widened by one, so the point lands at the
	// range minimum and both axis labels stay finite.
	if !strings.Contains(s, "(3 .. 4)") || !strings.Contains(s, "(7 .. 8)") {
		t.Errorf("degenerate axis ranges wrong:\n%s", s)
	}
}

func TestScatterAllEqualX(t *testing.T) {
	pts := []Point{{X: 5, Y: 0}, {X: 5, Y: 1}, {X: 5, Y: 2}}
	s := Scatter("t", "x", "y", pts, 20, 10)
	if strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Errorf("degenerate X range produced non-finite output:\n%s", s)
	}
	if got := strings.Count(s, "*"); got != 3 {
		t.Errorf("plotted %d points, want 3:\n%s", got, s)
	}
}

func TestScatterAllEqualY(t *testing.T) {
	pts := []Point{{X: 0, Y: 5}, {X: 1, Y: 5}, {X: 2, Y: 5}}
	s := Scatter("t", "x", "y", pts, 20, 10)
	if strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Errorf("degenerate Y range produced non-finite output:\n%s", s)
	}
	if got := strings.Count(s, "*"); got != 3 {
		t.Errorf("plotted %d points, want 3:\n%s", got, s)
	}
}

func TestSeries(t *testing.T) {
	s := Series("fig9", []string{"gzip", "mcf"}, []float64{1.0, 8.0}, 8.0, 40)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	gzipBars := strings.Count(lines[1], "#")
	mcfBars := strings.Count(lines[2], "#")
	if mcfBars != 40 {
		t.Errorf("full-scale bar should be 40 wide, got %d", mcfBars)
	}
	if gzipBars != 5 {
		t.Errorf("1/8 scale bar should be 5 wide, got %d", gzipBars)
	}
	// Negative and over-scale values are clipped, not crashed.
	s2 := Series("x", []string{"a", "b"}, []float64{-1, 100}, 8, 40)
	if !strings.Contains(s2, "-1.00") {
		t.Error("negative value not printed")
	}
}
