package report

import (
	"fmt"
	"strings"
)

// Point is one sample of a 2-D scatter plot.
type Point struct {
	X, Y  float64
	Glyph rune // optional per-point glyph; 0 means '*'
}

// Scatter renders points into a width x height character grid with axis
// labels — the textual form of Figure 8. When several points land in one
// cell, the glyph of the last one wins.
func Scatter(title, xLabel, yLabel string, pts []Point, width, height int) string {
	if width < 8 || height < 4 || len(pts) == 0 {
		return title + "\n(no data)\n"
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		x := int(float64(width-1) * (p.X - minX) / (maxX - minX))
		y := int(float64(height-1) * (p.Y - minY) / (maxY - minY))
		g := p.Glyph
		if g == 0 {
			g = '*'
		}
		grid[height-1-y][x] = g
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%s (%.3g .. %.3g)\n", yLabel, minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s|\n", string(row))
	}
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s (%.3g .. %.3g)\n", xLabel, minX, maxX)
	return b.String()
}

// Series renders a labelled bar per (label, value) pair — the textual
// form of the per-benchmark bar charts of Figures 9 and 10. scale is the
// value corresponding to a full-width bar; bars are clipped there.
func Series(title string, labels []string, values []float64, scale float64, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	labW := 0
	for _, l := range labels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	for i, l := range labels {
		v := values[i]
		n := 0
		if scale > 0 {
			n = int(v / scale * float64(width))
		}
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(&b, "%-*s %6.2f |%s\n", labW, l, v, strings.Repeat("#", n))
	}
	return b.String()
}
