package stats

import "math"

// Moments is a streaming accumulator for the first two moments of a
// series: count, mean and M2 (the sum of squared deviations from the
// running mean), maintained with Welford's update. It supports exact
// O(1) merging of independently accumulated partials (Chan et al.'s
// parallel variance formula), which is what lets build workers keep
// per-stripe moments and combine them without a second pass. The zero
// value is an empty accumulator ready for use.
type Moments struct {
	N    int64
	Mean float64
	M2   float64
}

// Add folds one observation into the accumulator.
func (m *Moments) Add(x float64) {
	m.N++
	d := x - m.Mean
	m.Mean += d / float64(m.N)
	m.M2 += d * (x - m.Mean)
}

// Merge folds another accumulator into m in O(1). Merging partials is
// algebraically exact: the combined N, Mean and M2 equal those of a
// single accumulator fed both series (up to floating-point rounding,
// which the merge-order tests bound).
func (m *Moments) Merge(o Moments) {
	if o.N == 0 {
		return
	}
	if m.N == 0 {
		*m = o
		return
	}
	n1, n2 := float64(m.N), float64(o.N)
	n := n1 + n2
	d := o.Mean - m.Mean
	m.Mean += d * n2 / n
	m.M2 += o.M2 + d*d*n1*n2/n
	m.N += o.N
}

// Variance returns the population variance M2/N; 0 when fewer than two
// observations have been added. Population semantics match StdDev and
// MeanStd — the paper's constraints are derived over the full
// population.
func (m *Moments) Variance() float64 {
	if m.N < 2 {
		return 0
	}
	v := m.M2 / float64(m.N)
	if v < 0 {
		return 0
	}
	return v
}

// Std returns the population standard deviation.
func (m *Moments) Std() float64 { return math.Sqrt(m.Variance()) }

// StdErr returns the standard error of the mean using the sample
// (n-1) variance, the quantity a confidence interval on the mean
// wants; 0 when fewer than two observations have been added.
func (m *Moments) StdErr() float64 {
	if m.N < 2 {
		return 0
	}
	v := m.M2 / float64(m.N-1)
	if v < 0 {
		return 0
	}
	return math.Sqrt(v / float64(m.N))
}

// Tally is a streaming Bernoulli accumulator: K successes out of N
// trials. Merging is exact integer addition, so tallies accumulated
// per worker combine independently of merge order. The zero value is
// an empty tally.
type Tally struct {
	K int64 // successes
	N int64 // trials
}

// Add folds one trial into the tally.
func (t *Tally) Add(success bool) {
	t.N++
	if success {
		t.K++
	}
}

// AddN folds k successes out of n trials into the tally.
func (t *Tally) AddN(k, n int64) {
	t.K += k
	t.N += n
}

// Merge folds another tally into t.
func (t *Tally) Merge(o Tally) {
	t.K += o.K
	t.N += o.N
}

// Rate returns the success fraction K/N; 0 for an empty tally.
func (t Tally) Rate() float64 {
	if t.N == 0 {
		return 0
	}
	return float64(t.K) / float64(t.N)
}

// ZForConfidence returns the two-sided standard-normal quantile for a
// confidence level in (0, 1): the z with P(-z < Z < z) = conf. It is
// computed from the inverse error function (z = sqrt(2)*erfinv(conf)),
// so the usual 0.95 → 1.9599… needs no table. Out-of-range inputs are
// clamped to a near-degenerate interval rather than returning NaN.
func ZForConfidence(conf float64) float64 {
	if conf <= 0 {
		return 0
	}
	if conf >= 1 {
		conf = 1 - 1e-12
	}
	return math.Sqrt2 * math.Erfinv(conf)
}

// NormalInterval returns the normal-approximation (Wald) confidence
// interval for a Bernoulli proportion with k successes in n trials,
// clamped to [0, 1]. It degenerates to a zero-width interval at p = 0
// and p = 1 — which is why yield reporting uses WilsonInterval — but
// is the textbook comparison point and is exposed for tests and for
// mean-style intervals.
func NormalInterval(k, n int64, conf float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	z := ZForConfidence(conf)
	half := z * math.Sqrt(p*(1-p)/float64(n))
	return clamp01(p - half), clamp01(p + half)
}

// WilsonInterval returns the Wilson score confidence interval for a
// Bernoulli proportion with k successes in n trials. Unlike the normal
// approximation it stays meaningful at k = 0 and k = n (the interval
// keeps positive width, acknowledging that a streak proves nothing
// exactly) and at small n, which is exactly the regime a streaming
// yield estimate passes through early in a build. An empty tally gets
// the vacuous interval [0, 1].
func WilsonInterval(k, n int64, conf float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	z := ZForConfidence(conf)
	z2 := z * z
	nn := float64(n)
	denom := 1 + z2/nn
	center := (p + z2/(2*nn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn))
	lo, hi = clamp01(center-half), clamp01(center+half)
	// The score bound touches the observed extreme exactly; pin the
	// endpoints the algebra guarantees so rounding noise cannot move a
	// k=0 lower bound off zero (or a k=n upper bound off one).
	if k == 0 {
		lo = 0
	}
	if k == n {
		hi = 1
	}
	return lo, hi
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
