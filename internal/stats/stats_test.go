package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed generators diverged at sample %d", i)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	// Children with different labels must produce different streams, and
	// splitting must be reproducible from the same parent state.
	p1 := NewRNG(7)
	p2 := NewRNG(7)
	c1 := p1.Split(1)
	c2 := p2.Split(1)
	d1 := NewRNG(7).Split(2)
	same, diff := true, false
	for i := 0; i < 32; i++ {
		x, y, z := c1.Float64(), c2.Float64(), d1.Float64()
		if x != y {
			same = false
		}
		if x != z {
			diff = true
		}
	}
	if !same {
		t.Error("Split with same label from same parent state is not reproducible")
	}
	if !diff {
		t.Error("Split with different labels produced identical streams")
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(1)
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Normal(10, 2)
	}
	m, s := MeanStd(xs)
	if math.Abs(m-10) > 0.05 {
		t.Errorf("Normal mean = %v, want ~10", m)
	}
	if math.Abs(s-2) > 0.05 {
		t.Errorf("Normal stddev = %v, want ~2", s)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	g := NewRNG(2)
	mean, sigma := 45.0, 1.5
	bound := 3 * sigma
	for i := 0; i < 50000; i++ {
		v := g.TruncNormal(mean, sigma, bound)
		if v < mean-bound || v > mean+bound {
			t.Fatalf("TruncNormal sample %v outside [%v, %v]", v, mean-bound, mean+bound)
		}
	}
}

func TestTruncNormalDegenerate(t *testing.T) {
	g := NewRNG(3)
	if v := g.TruncNormal(5, 0, 1); v != 5 {
		t.Errorf("TruncNormal with sigma=0 = %v, want 5", v)
	}
	if v := g.TruncNormal(5, 1, 0); v != 5 {
		t.Errorf("TruncNormal with bound=0 = %v, want 5", v)
	}
	// Pathological ratio must still terminate and stay in bounds.
	for i := 0; i < 1000; i++ {
		v := g.TruncNormal(0, 100, 0.001)
		if v < -0.001 || v > 0.001 {
			t.Fatalf("pathological TruncNormal escaped bound: %v", v)
		}
	}
}

func TestMeanStdAgainstDefinitions(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v, want 2", s)
	}
	m, s := MeanStd(xs)
	if m != 5 || math.Abs(s-2) > 1e-12 {
		t.Errorf("MeanStd = %v, %v, want 5, 2", m, s)
	}
}

func TestMeanStdEmptyAndSingle(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if s := StdDev([]float64{3}); s != 0 {
		t.Errorf("StdDev of single sample = %v", s)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 30); math.Abs(got-3) > 1e-12 {
		t.Errorf("Percentile(30) = %v, want 3", got)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if c := Correlation(xs, ys); math.Abs(c-1) > 1e-12 {
		t.Errorf("perfect positive correlation = %v", c)
	}
	neg := []float64{8, 6, 4, 2}
	if c := Correlation(xs, neg); math.Abs(c+1) > 1e-12 {
		t.Errorf("perfect negative correlation = %v", c)
	}
	if c := Correlation(xs, []float64{5, 5, 5, 5}); c != 0 {
		t.Errorf("correlation with constant = %v, want 0", c)
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 2, 3}
	n := Normalize(xs)
	if math.Abs(Mean(n)-1) > 1e-12 {
		t.Errorf("normalized mean = %v, want 1", Mean(n))
	}
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Normalize of zeros altered values: %v", zero)
	}
}

func TestWeightedMean(t *testing.T) {
	// The Table 6 VACA example from the paper: degradations weighted by
	// saved-chip counts.
	degr := []float64{1.81, 3.32, 5.47, 6.42}
	w := []float64{91, 16, 4, 1}
	got := WeightedMean(degr, w)
	if math.Abs(got-2.20) > 0.02 {
		t.Errorf("weighted mean = %v, want ~2.20 (paper Table 6)", got)
	}
	if WeightedMean(nil, nil) != 0 {
		t.Error("WeightedMean of empty inputs should be 0")
	}
	if WeightedMean([]float64{1}, []float64{0}) != 0 {
		t.Error("WeightedMean with zero total weight should be 0")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0.05, 0.15, 0.95, -1, 2}, 10, 0, 1)
	if h.N != 5 {
		t.Fatalf("N = %d, want 5", h.N)
	}
	if h.Counts[0] != 2 { // 0.05 and clamped -1
		t.Errorf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 {
		t.Errorf("bin 1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 0.95 and clamped 2
		t.Errorf("bin 9 = %d, want 2", h.Counts[9])
	}
	if c := h.BinCenter(0); math.Abs(c-0.05) > 1e-12 {
		t.Errorf("BinCenter(0) = %v, want 0.05", c)
	}
	if f := h.Fraction(0); math.Abs(f-0.4) > 1e-12 {
		t.Errorf("Fraction(0) = %v, want 0.4", f)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.1, 0.9}, 2, 0, 1)
	s := h.String()
	if len(s) == 0 {
		t.Error("histogram rendering is empty")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		return v1 <= v2 && v1 >= Min(xs) && v2 <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: correlation is symmetric and within [-1, 1].
func TestCorrelationBoundsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		g := NewRNG(seed)
		k := int(n%50) + 2
		xs := make([]float64, k)
		ys := make([]float64, k)
		for i := range xs {
			xs[i] = g.Normal(0, 1)
			ys[i] = g.Normal(0, 1)
		}
		c1 := Correlation(xs, ys)
		c2 := Correlation(ys, xs)
		return math.Abs(c1-c2) < 1e-9 && c1 >= -1-1e-9 && c1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean of Normalize(xs) is 1 whenever mean(xs) != 0.
func TestNormalizeProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		g := NewRNG(seed)
		k := int(n%40) + 1
		xs := make([]float64, k)
		for i := range xs {
			xs[i] = g.Uniform(0.5, 10)
		}
		return math.Abs(Mean(Normalize(xs))-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
