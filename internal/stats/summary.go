package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs
// (sqrt of the mean squared deviation), or 0 for fewer than two samples.
// The paper's delay constraint "mean + k*sigma" is computed over the full
// Monte Carlo population, for which the population estimator is the
// natural choice.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanStd returns both the mean and the population standard deviation in
// a single pass over the data.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var s, ss float64
	for _, x := range xs {
		s += x
		ss += x * x
	}
	n := float64(len(xs))
	mean = s / n
	v := ss/n - mean*mean
	if v < 0 {
		v = 0
	}
	return mean, math.Sqrt(v)
}

// Min returns the smallest element of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between order statistics. It panics on an empty
// slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation returns the Pearson correlation coefficient between xs and
// ys. It returns 0 when either series is constant. It panics when the
// slices have different lengths.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Correlation length mismatch")
	}
	if len(xs) == 0 {
		return 0
	}
	mx, sx := MeanStd(xs)
	my, sy := MeanStd(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / (float64(len(xs)) * sx * sy)
}

// Normalize returns xs scaled so its mean is 1. A zero-mean series is
// returned unchanged. Used for the "normalized leakage" axis of Figure 8.
func Normalize(xs []float64) []float64 {
	m := Mean(xs)
	out := make([]float64, len(xs))
	if m == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / m
	}
	return out
}

// WeightedMean returns sum(w_i * x_i) / sum(w_i); 0 when the weights sum
// to zero. Table 6's bottom row is a weighted mean of per-configuration
// CPI degradations weighted by saved-chip counts.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var sw, sx float64
	for i := range xs {
		sw += ws[i]
		sx += ws[i] * xs[i]
	}
	if sw == 0 {
		return 0
	}
	return sx / sw
}
