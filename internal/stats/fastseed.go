package stats

import (
	"math/rand"
	"reflect"
	"unsafe"
)

// This file makes reseeding a generator cheap. math/rand's default
// source (the Mitchell-Reeds additive lagged-Fibonacci generator) pays
// ~1900 Lehmer-LCG steps in Seed() to fill a 607-word state vector, of
// which a short-lived stream reads only a handful of entries. The
// variation sampler creates one stream per region node and draws ~5-10
// values from it, so seeding dominates the entire Monte Carlo build
// (>80% of CPU in profiles).
//
// fastSource produces the bit-identical output stream while seeding in
// O(1): Seed() records the normalized Lehmer seed, and each output
// computes the two state entries it needs on demand. Entry i of the
// seeded vector is a pure function of the seed — three consecutive
// values of the Lehmer chain x_{n+1} = 48271*x_n mod (2^31-1), XORed
// with a constant "cooked" word — and the chain can jump to any
// position with one modular multiplication by a precomputed power of
// 48271. The cooked words are private to math/rand, so they are
// recovered once at init from a real seeded source; an output-stream
// cross-check then gates the fast path, falling back to plain
// math/rand seeding (still correct, just slower) if the runtime's
// layout ever changes.

const (
	rngLen   = 607
	rngTap   = 273
	rngMask  = 1<<63 - 1
	int32max = 1<<31 - 1
	lcgA     = 48271
)

var (
	// lcgJump[i] = 48271^(21+3i) mod (2^31-1): the Lehmer chain
	// position of the first of the three draws that feed vec[i]
	// (Seed runs 20 warmup steps, then 3 steps per entry).
	lcgJump [rngLen]uint64
	// rngCooked mirrors math/rand's private seeding constants,
	// recovered at init.
	rngCooked [rngLen]int64
	// seedJumpOK reports that recovery succeeded and the fast source
	// reproduces math/rand streams exactly.
	seedJumpOK bool
)

// rngSourceMirror matches the memory layout of math/rand's rngSource.
type rngSourceMirror struct {
	tap, feed int
	vec       [rngLen]int64
}

func init() {
	p := uint64(1)
	for k := 0; k < 21; k++ {
		p = p * lcgA % int32max
	}
	for i := 0; i < rngLen; i++ {
		lcgJump[i] = p
		for k := 0; k < 3; k++ {
			p = p * lcgA % int32max
		}
	}
	seedJumpOK = recoverCooked() && verifySeedJump()
}

// normSeed replicates rngSource.Seed's reduction of the seed to the
// initial Lehmer state.
func normSeed(seed int64) uint64 {
	seed = seed % int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	return uint64(seed)
}

// recoverCooked extracts math/rand's seeding constants by seeding a real
// source and XOR-ing out the (reproducible) Lehmer contribution.
func recoverCooked() bool {
	src := rand.NewSource(1)
	v := reflect.ValueOf(src)
	if v.Kind() != reflect.Pointer {
		return false
	}
	m := (*rngSourceMirror)(unsafe.Pointer(v.Pointer()))
	if m.tap != 0 || m.feed != rngLen-rngTap {
		return false
	}
	x := normSeed(1)
	for k := 0; k < 20; k++ {
		x = x * lcgA % int32max
	}
	for i := 0; i < rngLen; i++ {
		x = x * lcgA % int32max
		u := int64(x) << 40
		x = x * lcgA % int32max
		u ^= int64(x) << 20
		x = x * lcgA % int32max
		u ^= int64(x)
		rngCooked[i] = m.vec[i] ^ u
	}
	return true
}

// verifySeedJump cross-checks the fast source against math/rand on a
// spread of seeds, past the lazy window (273 draws), the feed wrap
// (334) and a full vector cycle (607), plus mid-stream reseeds.
func verifySeedJump() bool {
	fs := new(fastSource)
	for _, seed := range []int64{1, 2006, 0, -1, -5, 89482311, int32max, int32max + 1, 1 << 62, -1 << 62} {
		ref := rand.NewSource(seed).(rand.Source64)
		fs.Seed(seed)
		for j := 0; j < 1500; j++ {
			if ref.Uint64() != fs.Uint64() {
				return false
			}
		}
	}
	for depth := 0; depth < 700; depth += 61 {
		fs.Seed(7)
		for j := 0; j < depth; j++ {
			fs.Uint64()
		}
		ref := rand.NewSource(2006).(rand.Source64)
		fs.Seed(2006)
		for j := 0; j < 800; j++ {
			if ref.Uint64() != fs.Uint64() {
				return false
			}
		}
	}
	return true
}

// SeedJumpEnabled reports whether the O(1)-reseed source is active. When
// false (unexpected runtime layout), stats falls back to stock math/rand
// seeding: identical streams, slower Reseed.
func SeedJumpEnabled() bool { return seedJumpOK }

// fastSource is a rand.Source64 emitting exactly the stream of
// math/rand's default source for the same seed. Until the 274th draw of
// a seeding it stays lazy, computing only the two state entries each
// draw touches; a longer-lived stream materializes the full vector once
// and proceeds like the original. Not safe for concurrent use.
type fastSource struct {
	vec       [rngLen]int64
	x0        uint64 // normalized Lehmer seed
	tap, feed int
	drawn     int // draws since Seed while lazy
	lazy      bool
}

// Seed repositions the stream for seed in O(1).
func (s *fastSource) Seed(seed int64) {
	s.x0 = normSeed(seed)
	s.drawn = 0
	s.lazy = true
}

// entry returns seeded-vector entry i for the current seed.
func (s *fastSource) entry(i int) int64 {
	x := s.x0 * lcgJump[i] % int32max
	u := int64(x) << 40
	x = x * lcgA % int32max
	u ^= int64(x) << 20
	x = x * lcgA % int32max
	u ^= int64(x)
	return u ^ rngCooked[i]
}

// materialize fills the rest of the vector so drawing can continue past
// the lazy window. Entries already overwritten by lazy draws (the feed
// positions) are kept: the generator's recurrence reads them later.
func (s *fastSource) materialize() {
	for i := 0; i <= rngLen-rngTap-1-s.drawn; i++ {
		s.vec[i] = s.entry(i)
	}
	for i := rngLen - rngTap; i < rngLen; i++ {
		s.vec[i] = s.entry(i)
	}
	s.tap = ((0-s.drawn)%rngLen + rngLen) % rngLen
	s.feed = ((rngLen-rngTap-s.drawn)%rngLen + rngLen) % rngLen
	s.lazy = false
}

func (s *fastSource) Uint64() uint64 {
	if s.lazy {
		if s.drawn < rngTap {
			f := rngLen - rngTap - 1 - s.drawn
			t := rngLen - 1 - s.drawn
			x := s.entry(f) + s.entry(t)
			s.vec[f] = x
			s.drawn++
			return uint64(x)
		}
		s.materialize()
	}
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

func (s *fastSource) Int63() int64 { return int64(s.Uint64() & rngMask) }
