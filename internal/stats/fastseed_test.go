package stats

import (
	"math/rand"
	"testing"
)

func TestSeedJumpEnabled(t *testing.T) {
	if !SeedJumpEnabled() {
		t.Error("seed-jump source unavailable: fell back to slow math/rand seeding " +
			"(rngSource layout changed?)")
	}
}

// TestFastSourceMatchesMathRand pins the bit-identity contract: the fast
// source must emit exactly math/rand's stream for any seed, including
// past the lazy window (273 draws), the feed wrap (334) and a full
// vector cycle (607).
func TestFastSourceMatchesMathRand(t *testing.T) {
	if !SeedJumpEnabled() {
		t.Skip("seed-jump source unavailable")
	}
	fs := new(fastSource)
	for _, seed := range []int64{2006, 1, 0, -42, 1<<63 - 1, -1 << 62, 12345678901234} {
		ref := rand.NewSource(seed).(rand.Source64)
		fs.Seed(seed)
		for j := 0; j < 2000; j++ {
			if got, want := fs.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: got %d, want %d", seed, j, got, want)
			}
		}
	}
}

// TestReseedEqualsFresh checks that a reused generator repositioned with
// Reseed reproduces a fresh generator's full sampling behaviour,
// including the rejection loops of TruncNormal.
func TestReseedEqualsFresh(t *testing.T) {
	g := NewRNG(999)
	for _, seed := range []int64{2006, 7, -3, 0, 1 << 40} {
		// Advance g arbitrarily before reseeding.
		for i := 0; i < 57; i++ {
			g.Float64()
		}
		g.Reseed(seed)
		fresh := NewRNG(seed)
		for i := 0; i < 200; i++ {
			if a, b := g.TruncNormal(1, 0.1, 0.3), fresh.TruncNormal(1, 0.1, 0.3); a != b {
				t.Fatalf("seed %d TruncNormal %d: %v != %v", seed, i, a, b)
			}
			if a, b := g.Normal(0, 1), fresh.Normal(0, 1); a != b {
				t.Fatalf("seed %d Normal %d: %v != %v", seed, i, a, b)
			}
			if a, b := g.Intn(1000), fresh.Intn(1000); a != b {
				t.Fatalf("seed %d Intn %d: %v != %v", seed, i, a, b)
			}
		}
	}
}

// TestReseedZeroAlloc verifies the reuse contract the allocation-free
// measurement kernel depends on.
func TestReseedZeroAlloc(t *testing.T) {
	g := NewRNG(1)
	allocs := testing.AllocsPerRun(200, func() {
		g.Reseed(42)
		for i := 0; i < 8; i++ {
			g.TruncNormal(1, 0.1, 0.3)
		}
	})
	if allocs != 0 {
		t.Errorf("Reseed+draw allocates %.1f times per run, want 0", allocs)
	}
}

func BenchmarkReseed(b *testing.B) {
	g := NewRNG(1)
	for i := 0; i < b.N; i++ {
		g.Reseed(int64(i))
		for j := 0; j < 6; j++ {
			g.TruncNormal(1, 0.1, 0.3)
		}
	}
}

func BenchmarkFreshSeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := NewRNG(int64(i))
		for j := 0; j < 6; j++ {
			g.TruncNormal(1, 0.1, 0.3)
		}
	}
}
