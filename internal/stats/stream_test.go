package stats

import (
	"math"
	"testing"
)

func TestMomentsMatchesMeanStd(t *testing.T) {
	xs := []float64{3.1, -2.2, 7.7, 0, 4.25, 4.25, -9.5, 1e3}
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	wantMean, wantStd := MeanStd(xs)
	if math.Abs(m.Mean-wantMean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", m.Mean, wantMean)
	}
	if math.Abs(m.Std()-wantStd) > 1e-9 {
		t.Errorf("Std = %v, want %v", m.Std(), wantStd)
	}
	if m.N != int64(len(xs)) {
		t.Errorf("N = %d, want %d", m.N, len(xs))
	}
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if m.Variance() != 0 || m.Std() != 0 || m.StdErr() != 0 || m.Mean != 0 {
		t.Errorf("empty accumulator not all-zero: %+v", m)
	}
	// Merging an empty accumulator in either direction is a no-op /
	// copy.
	var a Moments
	a.Add(2)
	a.Add(4)
	b := a
	b.Merge(Moments{})
	if b != a {
		t.Errorf("merge with empty changed accumulator: %+v != %+v", b, a)
	}
	var c Moments
	c.Merge(a)
	if c != a {
		t.Errorf("empty.Merge(a) = %+v, want %+v", c, a)
	}
}

func TestMomentsSingleObservation(t *testing.T) {
	var m Moments
	m.Add(5)
	if m.Mean != 5 || m.Variance() != 0 || m.StdErr() != 0 {
		t.Errorf("single observation: %+v", m)
	}
}

// stripe splits xs into w round-robin stripes, mirroring how build
// workers partition the chip range.
func stripe(xs []float64, w int) []Moments {
	parts := make([]Moments, w)
	for i, x := range xs {
		parts[i%w].Add(x)
	}
	return parts
}

// TestMomentsMergeWorkerCounts accumulates the same series under
// permuted worker counts and merge orders and checks every combined
// result agrees with the sequential accumulator to tight tolerance —
// the associativity/commutativity the lock-free estimate merge relies
// on.
func TestMomentsMergeWorkerCounts(t *testing.T) {
	rng := NewRNG(99)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Normal(100, 7)
	}
	var seq Moments
	for _, x := range xs {
		seq.Add(x)
	}
	for _, w := range []int{1, 2, 3, 4, 7, 8, 16, 33} {
		parts := stripe(xs, w)
		// Forward merge order.
		var fwd Moments
		for _, p := range parts {
			fwd.Merge(p)
		}
		// Reverse merge order (commutativity under reordering).
		var rev Moments
		for i := len(parts) - 1; i >= 0; i-- {
			rev.Merge(parts[i])
		}
		// Pairwise tree merge (associativity).
		tree := append([]Moments(nil), parts...)
		for len(tree) > 1 {
			var next []Moments
			for i := 0; i < len(tree); i += 2 {
				m := tree[i]
				if i+1 < len(tree) {
					m.Merge(tree[i+1])
				}
				next = append(next, m)
			}
			tree = next
		}
		for _, got := range []Moments{fwd, rev, tree[0]} {
			if got.N != seq.N {
				t.Fatalf("w=%d: N = %d, want %d", w, got.N, seq.N)
			}
			if math.Abs(got.Mean-seq.Mean) > 1e-9 {
				t.Errorf("w=%d: Mean = %v, want %v", w, got.Mean, seq.Mean)
			}
			if relDiff(got.M2, seq.M2) > 1e-9 {
				t.Errorf("w=%d: M2 = %v, want %v", w, got.M2, seq.M2)
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
		return d / m
	}
	return d
}

func TestTallyMergeExact(t *testing.T) {
	outcomes := make([]bool, 501)
	rng := NewRNG(7)
	for i := range outcomes {
		outcomes[i] = rng.Float64() < 0.17
	}
	var seq Tally
	for _, s := range outcomes {
		seq.Add(s)
	}
	for _, w := range []int{1, 2, 3, 5, 8, 13} {
		parts := make([]Tally, w)
		for i, s := range outcomes {
			parts[i%w].Add(s)
		}
		var fwd, rev Tally
		for _, p := range parts {
			fwd.Merge(p)
		}
		for i := len(parts) - 1; i >= 0; i-- {
			rev.Merge(parts[i])
		}
		if fwd != seq || rev != seq {
			t.Errorf("w=%d: merged tallies %+v / %+v, want %+v", w, fwd, rev, seq)
		}
	}
	var n Tally
	n.AddN(seq.K, seq.N)
	if n != seq {
		t.Errorf("AddN = %+v, want %+v", n, seq)
	}
}

func TestZForConfidence(t *testing.T) {
	cases := []struct{ conf, want float64 }{
		{0.6827, 1.0},
		{0.90, 1.6449},
		{0.95, 1.9600},
		{0.99, 2.5758},
	}
	for _, c := range cases {
		if got := ZForConfidence(c.conf); math.Abs(got-c.want) > 5e-4 {
			t.Errorf("ZForConfidence(%v) = %v, want %v", c.conf, got, c.want)
		}
	}
	if got := ZForConfidence(0); got != 0 {
		t.Errorf("ZForConfidence(0) = %v, want 0", got)
	}
	if got := ZForConfidence(1); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("ZForConfidence(1) = %v, want finite", got)
	}
	if got := ZForConfidence(-3); got != 0 {
		t.Errorf("ZForConfidence(-3) = %v, want 0", got)
	}
}

// TestWilsonIntervalEdges covers the regimes a streaming yield
// estimate passes through: empty, all-success (yield exactly 1),
// all-failure (yield exactly 0) and small N, where the normal
// approximation degenerates but Wilson must not.
func TestWilsonIntervalEdges(t *testing.T) {
	lo, hi := WilsonInterval(0, 0, 0.95)
	if lo != 0 || hi != 1 {
		t.Errorf("empty interval = [%v, %v], want [0, 1]", lo, hi)
	}

	// Yield exactly 1: interval must keep positive width below 1.
	lo, hi = WilsonInterval(50, 50, 0.95)
	if hi != 1 {
		t.Errorf("k=n: hi = %v, want 1", hi)
	}
	if lo >= 1 || lo <= 0 {
		t.Errorf("k=n: lo = %v, want in (0, 1)", lo)
	}

	// Yield exactly 0: mirror image.
	lo0, hi0 := WilsonInterval(0, 50, 0.95)
	if lo0 != 0 {
		t.Errorf("k=0: lo = %v, want 0", lo0)
	}
	if hi0 <= 0 || hi0 >= 1 {
		t.Errorf("k=0: hi = %v, want in (0, 1)", hi0)
	}
	// The k=0 and k=n intervals mirror each other.
	if math.Abs(hi0-(1-lo)) > 1e-12 {
		t.Errorf("mirror symmetry broken: k=0 hi %v vs 1-lo %v", hi0, 1-lo)
	}

	// Small N (< 30): interval is wide but proper, and contains p.
	lo, hi = WilsonInterval(3, 7, 0.95)
	p := 3.0 / 7.0
	if !(0 < lo && lo < p && p < hi && hi < 1) {
		t.Errorf("small-n interval [%v, %v] does not bracket %v properly", lo, hi, p)
	}
	if hi-lo < 0.3 {
		t.Errorf("small-n interval [%v, %v] implausibly narrow", lo, hi)
	}

	// Width shrinks as n grows at fixed p.
	_, hiSmall := WilsonInterval(10, 20, 0.95)
	loSmall, _ := WilsonInterval(10, 20, 0.95)
	loBig, hiBig := WilsonInterval(10000, 20000, 0.95)
	if hiBig-loBig >= hiSmall-loSmall {
		t.Errorf("interval did not shrink with n: %v vs %v", hiBig-loBig, hiSmall-loSmall)
	}

	// Higher confidence widens the interval.
	lo90, hi90 := WilsonInterval(40, 80, 0.90)
	lo99, hi99 := WilsonInterval(40, 80, 0.99)
	if hi99-lo99 <= hi90-lo90 {
		t.Errorf("99%% interval not wider than 90%%: %v vs %v", hi99-lo99, hi90-lo90)
	}
}

func TestNormalIntervalEdges(t *testing.T) {
	lo, hi := NormalInterval(0, 0, 0.95)
	if lo != 0 || hi != 1 {
		t.Errorf("empty interval = [%v, %v], want [0, 1]", lo, hi)
	}
	// The Wald interval famously collapses at p = 0 and p = 1.
	lo, hi = NormalInterval(50, 50, 0.95)
	if lo != 1 || hi != 1 {
		t.Errorf("k=n normal interval = [%v, %v], want degenerate [1, 1]", lo, hi)
	}
	lo, hi = NormalInterval(0, 50, 0.95)
	if lo != 0 || hi != 0 {
		t.Errorf("k=0 normal interval = [%v, %v], want degenerate [0, 0]", lo, hi)
	}
	// Away from the edges it brackets p and stays in [0, 1].
	lo, hi = NormalInterval(30, 100, 0.95)
	if !(0 <= lo && lo < 0.3 && 0.3 < hi && hi <= 1) {
		t.Errorf("normal interval [%v, %v] does not bracket 0.3", lo, hi)
	}
	// For moderate p and large n, Wilson and normal agree closely.
	wlo, whi := WilsonInterval(5000, 10000, 0.95)
	nlo, nhi := NormalInterval(5000, 10000, 0.95)
	if math.Abs(wlo-nlo) > 1e-3 || math.Abs(whi-nhi) > 1e-3 {
		t.Errorf("Wilson [%v,%v] vs normal [%v,%v] diverge at large n", wlo, whi, nlo, nhi)
	}
}
