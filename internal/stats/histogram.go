package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-width binning of a scalar sample set.
type Histogram struct {
	Lo, Hi float64 // covered range; samples outside are clamped to edge bins
	Counts []int
	N      int
}

// NewHistogram builds a histogram of xs with the given number of bins
// over [lo, hi]. Samples outside the range are clamped into the first or
// last bin so that every sample is accounted for.
func NewHistogram(xs []float64, bins int, lo, hi float64) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.N++
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of all samples that fell into bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// String renders the histogram as a fixed-width ASCII bar chart, one bin
// per line, suitable for the CLI reports.
func (h *Histogram) String() string {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * 50 / maxC
		}
		fmt.Fprintf(&b, "%10.4f |%-50s| %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}
