package stats

// Batched draw generation for the structure-of-arrays measurement
// kernel. The Monte Carlo variation model draws one short stream per
// region node (a handful of truncated normals), and the O(1) seed-jump
// Reseed makes repositioning the generator between nodes free — so the
// natural batch primitive is "for each seed, reseed and draw one value
// per column". Layouts are column-major: cols[k][l] is column k of lane
// l, matching variation.Batch, so the per-column sigma/bound lookups
// hoist out of the lane loop and the inner loop is straight-line code
// over flat float64 slices.

// TruncNormalColumns draws, for each lane l, one truncated normal per
// column: the generator is repositioned to seeds[l], then cols[k][l] is
// overwritten, in ascending k, with TruncNormal(cols[k][l], sigma[k],
// bound[k]) — the value already in the column is the mean of the draw.
// The per-lane draw sequence is bit-identical to Reseed(seeds[l])
// followed by k sequential TruncNormal calls, so a batched caller
// reproduces the scalar sampling stream exactly. len(cols), len(sigma)
// and len(bound) must agree; every column must have at least len(seeds)
// entries.
func (g *RNG) TruncNormalColumns(seeds []int64, cols [][]float64, sigma, bound []float64) {
	for l, seed := range seeds {
		g.Reseed(seed)
		for k := range cols {
			cols[k][l] = g.TruncNormal(cols[k][l], sigma[k], bound[k])
		}
	}
}

// MixSeeds fills dst[l] with MixSeed(parents[l], label) for every lane.
// It is the batched form of the child-seed derivation used when a whole
// column of sibling regions is drawn at once.
func MixSeeds(dst, parents []int64, label int64) {
	for l, p := range parents {
		dst[l] = MixSeed(p, label)
	}
}
