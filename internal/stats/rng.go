// Package stats provides the statistical substrate for the yield-aware
// cache study: deterministic random number generation, truncated Gaussian
// sampling as used by the Monte Carlo process-variation framework, and
// summary statistics (mean, standard deviation, percentiles, histograms,
// correlation) used to set yield constraints and report results.
//
// Everything in this package is deterministic given a seed, so that the
// 2000-chip Monte Carlo populations used in the experiments are exactly
// reproducible from run to run.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic source of random samples. It wraps math/rand
// with the sampling primitives the variation model needs. It is not safe
// for concurrent use; derive independent streams with Split, or reuse
// one generator across many short streams with Reseed.
type RNG struct {
	seed int64
	r    *rand.Rand
	fsrc *fastSource // O(1)-reseed source (nil when unavailable)
	src  rand.Source // stock source fallback
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	if seedJumpOK {
		fs := new(fastSource)
		fs.Seed(seed)
		return &RNG{seed: seed, r: rand.New(fs), fsrc: fs}
	}
	src := rand.NewSource(seed)
	return &RNG{seed: seed, r: rand.New(src), src: src}
}

// Reseed repositions the generator at the start of the stream for seed,
// producing exactly the sequence a fresh NewRNG(seed) would. It never
// allocates, and with the seed-jump source it is O(1), which is what
// lets the Monte Carlo measurement kernel draw one short stream per
// region node without re-seeding cost.
func (g *RNG) Reseed(seed int64) {
	g.seed = seed
	if g.fsrc != nil {
		g.fsrc.Seed(seed)
		return
	}
	g.src.Seed(seed)
}

// MixSeed derives a child seed from a parent seed and a label using a
// splitmix64-style finalizer. It is a pure function, so derivations are
// independent of sampling order.
func MixSeed(parent, label int64) int64 {
	z := uint64(parent) + uint64(label)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// Split derives an independent child generator. The child's stream is a
// pure function of the parent's *seed* and the label — it does not
// consume or depend on the parent's sampling position — so a fixed
// (seed, label) pair always yields the same child stream regardless of
// how much either generator has been used.
func (g *RNG) Split(label int64) *RNG {
	return NewRNG(MixSeed(g.seed, label))
}

// Seed returns the seed this generator was created with.
func (g *RNG) Seed() int64 { return g.seed }

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, sigma float64) float64 {
	return mean + sigma*g.r.NormFloat64()
}

// TruncNormal returns a Gaussian sample with the given mean and standard
// deviation, truncated (by rejection) to [mean-bound, mean+bound].
// The variation model uses bound = 3*sigma: process parameters are drawn
// inside their published 3-sigma windows, matching the paper's use of the
// Nassif variation limits as hard sampling intervals.
func (g *RNG) TruncNormal(mean, sigma, bound float64) float64 {
	if sigma <= 0 || bound <= 0 {
		return mean
	}
	for i := 0; i < 64; i++ {
		v := sigma * g.r.NormFloat64()
		if v >= -bound && v <= bound {
			return mean + v
		}
	}
	// Pathological sigma/bound ratio: fall back to a uniform draw in the
	// window so the sampler always terminates.
	return mean + (2*g.r.Float64()-1)*bound
}

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// LogNormal returns exp(N(mu, sigma)); used in tests as a reference
// heavy-tailed distribution for leakage-like quantities.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }
