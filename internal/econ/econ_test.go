package econ

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultModelValid(t *testing.T) {
	if err := Default45nm().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	m := Default45nm()
	m.WaferCost = 0
	if m.Validate() == nil {
		t.Error("zero wafer cost accepted")
	}
	m = Default45nm()
	m.FunctionalYield = 1.2
	if m.Validate() == nil {
		t.Error("yield > 1 accepted")
	}
	m = Default45nm()
	m.MinPriceFrac = -0.1
	if m.Validate() == nil {
		t.Error("negative price floor accepted")
	}
}

func TestUnitPrice(t *testing.T) {
	m := Default45nm()
	if p := m.UnitPrice(0); p != m.FullPrice {
		t.Errorf("full-spec price = %v", p)
	}
	// 1% CPI loss at 3%/1% slope: 97% of full price.
	if p := m.UnitPrice(1); math.Abs(p-0.97*m.FullPrice) > 1e-9 {
		t.Errorf("1%% degraded price = %v", p)
	}
	// Floor: huge degradation still sells at half price.
	if p := m.UnitPrice(100); p != m.MinPriceFrac*m.FullPrice {
		t.Errorf("floored price = %v", p)
	}
	// Negative degradation clamps to full price.
	if p := m.UnitPrice(-5); p != m.FullPrice {
		t.Errorf("negative degradation price = %v", p)
	}
}

func TestEvaluateBaseVsScheme(t *testing.T) {
	m := Default45nm()
	// Base: 83% sellable at full spec.
	base, err := m.Evaluate("base", []Bin{{Fraction: 0.83}})
	if err != nil {
		t.Fatal(err)
	}
	// Hybrid: same 83% plus 14% degraded ~1.8%.
	hybrid, err := m.Evaluate("hybrid", []Bin{{Fraction: 0.83}, {Fraction: 0.14, CPILossPct: 1.8}})
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.RevenuePerWafer <= base.RevenuePerWafer {
		t.Error("saving chips must raise wafer revenue")
	}
	if hybrid.CostPerDie >= base.CostPerDie {
		t.Error("saving chips must cut cost per sellable die")
	}
	wantDies := 600 * 0.85 * 0.97
	if math.Abs(hybrid.DiesPerWafer-wantDies) > 1e-9 {
		t.Errorf("dies per wafer = %v, want %v", hybrid.DiesPerWafer, wantDies)
	}
	// Revenue accounting: full bins at $60, degraded at 60*(1-0.054).
	wantRev := 600 * 0.85 * (0.83*60 + 0.14*60*(1-0.03*1.8))
	if math.Abs(hybrid.RevenuePerWafer-wantRev) > 1e-6 {
		t.Errorf("revenue = %v, want %v", hybrid.RevenuePerWafer, wantRev)
	}
}

func TestEvaluateRejectsNonsense(t *testing.T) {
	m := Default45nm()
	if _, err := m.Evaluate("x", []Bin{{Fraction: -0.1}}); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := m.Evaluate("x", []Bin{{Fraction: 0.7}, {Fraction: 0.7}}); err == nil {
		t.Error("fractions summing over 1 accepted")
	}
	bad := m
	bad.DiesPerWafer = 0
	if _, err := bad.Evaluate("x", nil); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestEvaluateEmptyBins(t *testing.T) {
	r, err := Default45nm().Evaluate("dead", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.DiesPerWafer != 0 || r.RevenuePerWafer != 0 || r.CostPerDie != 0 {
		t.Errorf("empty bins should price to zero: %+v", r)
	}
}

// Property: revenue is monotone in bin fraction and antitone in
// degradation.
func TestEvaluateMonotonicityProperty(t *testing.T) {
	m := Default45nm()
	f := func(fr, loss uint8) bool {
		f1 := float64(fr%90) / 100
		l1 := float64(loss % 30)
		a, err1 := m.Evaluate("a", []Bin{{Fraction: f1, CPILossPct: l1}})
		b, err2 := m.Evaluate("b", []Bin{{Fraction: f1 + 0.05, CPILossPct: l1}})
		c, err3 := m.Evaluate("c", []Bin{{Fraction: f1, CPILossPct: l1 + 5}})
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return b.RevenuePerWafer >= a.RevenuePerWafer && c.RevenuePerWafer <= a.RevenuePerWafer
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// FromYields is the sweep pricing path: base chips at full price, the
// scheme-saved slice degraded. Check the two-bin decomposition against
// a hand-priced expectation and the error paths.
func TestFromYields(t *testing.T) {
	m := Default45nm()
	r, err := m.FromYields("YAPD", 0.80, 0.95, 10)
	if err != nil {
		t.Fatal(err)
	}
	gross := float64(m.DiesPerWafer) * m.FunctionalYield
	want := gross*0.80*m.UnitPrice(0) + gross*0.15*m.UnitPrice(10)
	if r.RevenuePerWafer != want {
		t.Errorf("revenue = %v, want %v", r.RevenuePerWafer, want)
	}
	if r.SellableFraction != 0.95 {
		t.Errorf("sellable fraction = %v, want 0.95", r.SellableFraction)
	}

	// Equal yields collapse to a single full-price bin.
	same, err := m.FromYields("Base", 0.80, 0.80, 10)
	if err != nil {
		t.Fatal(err)
	}
	if same.RevenuePerWafer != gross*0.80*m.UnitPrice(0) {
		t.Errorf("base-only revenue = %v", same.RevenuePerWafer)
	}

	if _, err := m.FromYields("bad", -0.1, 0.5, 0); err == nil {
		t.Error("negative base yield accepted")
	}
	if _, err := m.FromYields("bad", 0.9, 0.5, 0); err == nil {
		t.Error("scheme yield below base accepted")
	}
}
