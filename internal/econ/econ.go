// Package econ turns yields into money. The paper's motivation is
// economic — "every discarded chip increases the cost of those chips
// that survive" — and this package quantifies it: given a wafer cost, a
// die count, the non-parametric (defect + lithography) yield and a
// pricing curve for performance-degraded parts, it computes cost per
// sellable die and revenue per wafer for each yield-aware scheme.
package econ

import "fmt"

// CostModel describes the manufacturing economics.
type CostModel struct {
	WaferCost    float64 // fabrication cost per wafer
	DiesPerWafer int     // gross dies per wafer
	// FunctionalYield is the non-parametric component (defect density +
	// lithography); parametric yield multiplies it.
	FunctionalYield float64
	// FullPrice is the selling price of a full-spec part. Degraded parts
	// (saved by a scheme at some CPI cost) sell at
	// FullPrice * (1 - PriceSlope * CPIloss%), floored at MinPriceFrac.
	FullPrice    float64
	PriceSlope   float64
	MinPriceFrac float64
}

// Default45nm returns a plausible cost model for a 45 nm part: a $4000
// wafer with 600 gross dies, 85% functional yield, $60 full-spec parts,
// and 3% price loss per 1% CPI degradation (performance parts price
// roughly on benchmark scores), floored at half price.
func Default45nm() CostModel {
	return CostModel{
		WaferCost:       4000,
		DiesPerWafer:    600,
		FunctionalYield: 0.85,
		FullPrice:       60,
		PriceSlope:      0.03,
		MinPriceFrac:    0.5,
	}
}

// Validate reports configuration errors.
func (m CostModel) Validate() error {
	if m.WaferCost <= 0 || m.DiesPerWafer <= 0 || m.FullPrice <= 0 {
		return fmt.Errorf("econ: non-positive cost model values")
	}
	if m.FunctionalYield <= 0 || m.FunctionalYield > 1 {
		return fmt.Errorf("econ: functional yield %v outside (0, 1]", m.FunctionalYield)
	}
	if m.MinPriceFrac < 0 || m.MinPriceFrac > 1 {
		return fmt.Errorf("econ: minimum price fraction %v outside [0, 1]", m.MinPriceFrac)
	}
	return nil
}

// UnitPrice returns the selling price of a part with the given CPI
// degradation (percent).
func (m CostModel) UnitPrice(cpiLossPct float64) float64 {
	if cpiLossPct < 0 {
		cpiLossPct = 0
	}
	frac := 1 - m.PriceSlope*cpiLossPct
	if frac < m.MinPriceFrac {
		frac = m.MinPriceFrac
	}
	return m.FullPrice * frac
}

// Bin is a population of sellable parts at one degradation level,
// expressed as a fraction of the parametric-test population.
type Bin struct {
	Fraction   float64 // of all parametrically tested dies
	CPILossPct float64
}

// Result summarises the economics of one scheme.
type Result struct {
	Scheme string
	// SellableFraction is the parametric yield (sum of bin fractions).
	SellableFraction float64
	// DiesPerWafer is the expected sellable dies per wafer after both
	// functional and parametric yield.
	DiesPerWafer float64
	// RevenuePerWafer and CostPerDie price the outcome.
	RevenuePerWafer float64
	CostPerDie      float64
}

// Evaluate prices a scheme described by its sellable bins.
func (m CostModel) Evaluate(scheme string, bins []Bin) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	r := Result{Scheme: scheme}
	gross := float64(m.DiesPerWafer) * m.FunctionalYield
	for _, b := range bins {
		if b.Fraction < 0 {
			return Result{}, fmt.Errorf("econ: negative bin fraction in %s", scheme)
		}
		r.SellableFraction += b.Fraction
		r.RevenuePerWafer += gross * b.Fraction * m.UnitPrice(b.CPILossPct)
	}
	if r.SellableFraction > 1+1e-9 {
		return Result{}, fmt.Errorf("econ: %s sells %.3f of the population", scheme, r.SellableFraction)
	}
	r.DiesPerWafer = gross * r.SellableFraction
	if r.DiesPerWafer > 0 {
		r.CostPerDie = m.WaferCost / r.DiesPerWafer
	}
	return r, nil
}

// FromYields generalises the Table 6 pricing to any sweep point
// described only by its yields: chips the base test passes sell at
// full price; the extra fraction a scheme saves (schemeYield −
// baseYield) sells as a degraded bin at degradedCPIPct CPI loss. This
// two-bin shape is the economics proxy design-space sweeps use — it
// needs no per-chip CPI simulation, yet preserves the paper's
// structure (saved chips are worth less, but far more than zero).
func (m CostModel) FromYields(scheme string, baseYield, schemeYield, degradedCPIPct float64) (Result, error) {
	if baseYield < 0 || baseYield > 1 {
		return Result{}, fmt.Errorf("econ: base yield %v outside [0, 1]", baseYield)
	}
	if schemeYield < baseYield-1e-9 {
		return Result{}, fmt.Errorf("econ: %s yield %v below base yield %v", scheme, schemeYield, baseYield)
	}
	bins := []Bin{{Fraction: baseYield}}
	if saved := schemeYield - baseYield; saved > 0 {
		bins = append(bins, Bin{Fraction: saved, CPILossPct: degradedCPIPct})
	}
	return m.Evaluate(scheme, bins)
}
