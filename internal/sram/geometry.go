// Package sram models the 16 KB 4-way set-associative L1 data cache of
// Section 3: each way is divided into 4 banks of 64x128 bits, bitlines
// are partitioned in two, and the access path follows the
// Amrutur–Horowitz organisation (address bus -> predecode/decode ->
// global word line -> local word line -> bitline/cell -> sense amplifier
// -> output drive). The package evaluates, for one sampled chip, the
// access latency of every representative critical path and the leakage
// power of every bank, which is everything the yield schemes consume.
package sram

import "yieldcache/internal/circuit"

// Geometry describes the cache organisation of the paper's model.
type Geometry struct {
	Ways         int // set-associative ways, laid out on a 2x2 mesh
	BanksPerWay  int // banks stacked per way; also the horizontal regions
	RowsPerBank  int
	BitsPerRow   int
	PathsPerBank int // representative critical/near-critical rows modelled per bank
}

// Paper16KB returns the geometry of the paper's 16 KB cache:
// 4 ways x 4 banks x (64 rows x 128 bits).
func Paper16KB() Geometry {
	return Geometry{
		Ways:         4,
		BanksPerWay:  4,
		RowsPerBank:  64,
		BitsPerRow:   128,
		PathsPerBank: 4,
	}
}

// CellsPerBank returns the number of SRAM cells in one bank.
func (g Geometry) CellsPerBank() int { return g.RowsPerBank * g.BitsPerRow }

// CellsPerWay returns the number of SRAM cells in one way.
func (g Geometry) CellsPerWay() int { return g.BanksPerWay * g.CellsPerBank() }

// NumStages is the number of pipeline stages on one access path.
const NumStages = 7

// PathStages returns the nominal (variation-free) stage delays of one
// access path, in picoseconds, calibrated to a ~500 ps 16 KB SRAM at
// 45 nm. distFrac in [0,1] is the fractional routing distance of the
// addressed row from the decoder (bank position and row position
// combined): further rows see longer global word-line routing, which is
// why the upper-most row of a bank is the critical path and mid-bank rows
// are near-critical, exactly the structure H-YAPD exploits. The fixed
// array return keeps the measurement hot loop off the heap.
func PathStages(distFrac float64) [NumStages]circuit.Stage {
	return [NumStages]circuit.Stage{
		{Name: "addr-bus", Kind: circuit.WireStage, NominalPS: 30},
		{Name: "decode", Kind: circuit.GateStage, NominalPS: 85},
		{Name: "global-wl", Kind: circuit.WireStage, NominalPS: 60 * (0.15 + 0.85*distFrac)},
		{Name: "local-wl", Kind: circuit.DrivenWireStage, NominalPS: 65},
		{Name: "bitline", Kind: circuit.BitlineStage, NominalPS: 150},
		{Name: "sense", Kind: circuit.GateStage, NominalPS: 70},
		{Name: "output", Kind: circuit.DrivenWireStage, NominalPS: 60},
	}
}

// NominalStages returns PathStages as a slice, for callers that iterate
// over paths outside the allocation-sensitive kernel.
func NominalStages(distFrac float64) []circuit.Stage {
	s := PathStages(distFrac)
	return s[:]
}
