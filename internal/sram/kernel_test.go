package sram

import (
	"reflect"
	"testing"

	"yieldcache/internal/circuit"
	"yieldcache/internal/variation"
)

func measViews(n int, g Geometry) []*CacheMeasurement {
	ms := make([]CacheMeasurement, n)
	vs := make([]*CacheMeasurement, n)
	for i := range ms {
		Prepare(&ms[i], g)
		vs[i] = &ms[i]
	}
	return vs
}

// TestBatchKernelMatchesScalarReference pins the SoA kernel to the
// scalar reference implementation bit for bit, across batch widths
// around and beyond BatchWidth and for both decoder organisations.
// This is the anchor that keeps the golden seed-2006 tables stable
// through the data-layout rewrite.
func TestBatchKernelMatchesScalarReference(t *testing.T) {
	for _, hyapd := range []bool{false, true} {
		m, s := evalFixture(hyapd)
		ev := m.NewEvaluator(s.NewScratch())
		ref := m.NewEvaluator(s.NewScratch())
		id := 0
		for _, width := range []int{1, 2, BatchWidth - 1, BatchWidth, BatchWidth + 1, 2*BatchWidth + 3} {
			ids := make([]int, width)
			for j := range ids {
				ids[j] = id
				id++
			}
			got := measViews(width, m.Geom)
			ev.MeasureBatch(ids, got)
			for j, cid := range ids {
				chip := ref.Scratch().Chip(cid)
				var want CacheMeasurement
				ref.measureRef(&chip, &want, hyapd)
				if !reflect.DeepEqual(want, *got[j]) {
					t.Fatalf("hyapd=%v width=%d chip %d: batch kernel diverges from scalar reference\nwant %+v\ngot  %+v",
						hyapd, width, cid, want, *got[j])
				}
			}
		}
	}
}

// TestMeasurePairBatchMatchesScalarPair pins the batched pair path:
// each lane must equal the scalar MeasurePair (itself pinned to two
// independent measurements).
func TestMeasurePairBatchMatchesScalarPair(t *testing.T) {
	m, s := evalFixture(false)
	ev := m.NewEvaluator(s.NewScratch())
	ref := m.NewEvaluator(s.NewScratch())
	ids := []int{3, 7, 11, 19, 23}
	reg := measViews(len(ids), m.Geom)
	hor := measViews(len(ids), m.Geom)
	ev.MeasurePairBatch(ids, reg, hor)
	var wantReg, wantHor CacheMeasurement
	for j, cid := range ids {
		chip := ref.Scratch().Chip(cid)
		ref.measureRef(&chip, &wantReg, false)
		deriveHYAPD(&wantReg, &wantHor, m.Geom)
		if !reflect.DeepEqual(wantReg, *reg[j]) {
			t.Fatalf("chip %d: regular lane diverges from scalar pair", cid)
		}
		if !reflect.DeepEqual(wantHor, *hor[j]) {
			t.Fatalf("chip %d: H-YAPD lane diverges from scalar pair", cid)
		}
	}
}

// TestBatchZeroAlloc verifies the batched entry points are
// allocation-free once warm — the property the population builder's
// throughput depends on.
func TestBatchZeroAlloc(t *testing.T) {
	m, s := evalFixture(false)
	ev := m.NewEvaluator(s.NewScratch())
	ids := make([]int, BatchWidth)
	dst := measViews(BatchWidth, m.Geom)
	hor := measViews(BatchWidth, m.Geom)
	ev.MeasureBatch(ids, dst)
	ev.MeasurePairBatch(ids, dst, hor)

	next := BatchWidth
	if allocs := testing.AllocsPerRun(20, func() {
		for j := range ids {
			ids[j] = next
			next++
		}
		ev.MeasureBatch(ids, dst)
	}); allocs != 0 {
		t.Errorf("warm MeasureBatch allocates %.1f times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		for j := range ids {
			ids[j] = next
			next++
		}
		ev.MeasurePairBatch(ids, dst, hor)
	}); allocs != 0 {
		t.Errorf("warm MeasurePairBatch allocates %.1f times per run, want 0", allocs)
	}
}

// deltaTechCases enumerates one technology perturbation per DiffTech
// classification bucket plus multi-part combinations.
func deltaTechCases() []struct {
	name string
	mut  func(*circuit.Tech)
	want TechParts
} {
	return []struct {
		name string
		mut  func(*circuit.Tech)
		want TechParts
	}{
		{"identical", func(t *circuit.Tech) {}, TechParts{}},
		{"cell-leakage", func(t *circuit.Tech) { t.CellLeakage *= 1.25 }, TechParts{LeakScale: true}},
		{"periph-frac", func(t *circuit.Tech) { t.PeripheryLeakFrac = 0.30 }, TechParts{LeakScale: true}},
		{"subvt-slope", func(t *circuit.Tech) { t.SubVtSlope = 0.030 }, TechParts{LeakFactors: true}},
		{"alpha", func(t *circuit.Tech) { t.Alpha = 1.4 }, TechParts{Delay: true}},
		{"coupling", func(t *circuit.Tech) { t.CouplingFrac = 0.40 }, TechParts{Delay: true}},
		{"diffusion", func(t *circuit.Tech) { t.DiffusionFrac = 0.50 }, TechParts{Delay: true}},
		{"sense-gain", func(t *circuit.Tech) { t.SenseMarginGain = 2.5 }, TechParts{Delay: true}},
		{"sense-max", func(t *circuit.Tech) { t.SenseMarginMax = 6 }, TechParts{Delay: true}},
		{"vdd", func(t *circuit.Tech) { t.Vdd = 0.95 }, TechParts{Delay: true, LeakFactors: true}},
		{"vt-nominal", func(t *circuit.Tech) { t.VtNominal = 0.230 }, TechParts{Delay: true, LeakFactors: true}},
		{"dibl", func(t *circuit.Tech) { t.DIBL = 0.50 }, TechParts{Delay: true, LeakFactors: true}},
		{"leak-and-delay", func(t *circuit.Tech) { t.CellLeakage *= 0.8; t.Alpha = 1.35 },
			TechParts{Delay: true, LeakScale: true}},
		{"everything", func(t *circuit.Tech) { t.Vdd = 1.05; t.CellLeakage *= 1.1; t.SubVtSlope = 0.026 },
			TechParts{Delay: true, LeakFactors: true, LeakScale: true}},
	}
}

// TestDiffTechClassification pins the part classification of every
// Tech field, and the field count itself so a new field cannot be
// added without deciding its classification (DiffTech falls back to
// re-evaluating everything for unknown solo diffs, but combined diffs
// need the explicit entry).
func TestDiffTechClassification(t *testing.T) {
	if n := reflect.TypeOf(circuit.Tech{}).NumField(); n != 11 {
		t.Fatalf("circuit.Tech has %d fields, DiffTech classifies 11: update DiffTech and this test", n)
	}
	base := circuit.PTM45()
	for _, tc := range deltaTechCases() {
		mod := base
		tc.mut(&mod)
		if got := DiffTech(base, mod); got != tc.want {
			t.Errorf("%s: DiffTech = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestEvalPairDeltaBitIdentical is the delta-build acceptance anchor:
// for every diff class, re-evaluating a retained DrawSet with only the
// touched parts must reproduce a full evaluation under the new
// technology bit for bit — both organisations, every field.
func TestEvalPairDeltaBitIdentical(t *testing.T) {
	const n = BatchWidth + 3 // cover a ragged batch too
	base := circuit.PTM45()
	mBase := NewModel(base, false)
	s := variation.NewSampler(variation.Nassif45nm(), variation.PaperFactors(), 2006)
	evBase := mBase.NewEvaluator(s.NewScratch())

	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	ds := new(DrawSet)
	var ls LeakState
	baseReg := measViews(n, mBase.Geom)
	baseHor := measViews(n, mBase.Geom)
	evBase.Sample(ids, ds)
	evBase.EvalPair(ds, baseReg, baseHor, &ls)

	for _, tc := range deltaTechCases() {
		mod := base
		tc.mut(&mod)
		m2 := NewModel(mod, false)
		ev2 := m2.NewEvaluator(s.NewScratch())

		wantReg := measViews(n, m2.Geom)
		wantHor := measViews(n, m2.Geom)
		ev2.EvalPair(ds, wantReg, wantHor, nil)

		gotReg := measViews(n, m2.Geom)
		gotHor := measViews(n, m2.Geom)
		ev2.EvalPairDelta(ds, DiffTech(base, mod), baseReg, &ls, gotReg, gotHor)

		for l := 0; l < n; l++ {
			if !reflect.DeepEqual(*wantReg[l], *gotReg[l]) {
				t.Fatalf("%s: chip %d regular delta eval diverges from full eval\nwant %+v\ngot  %+v",
					tc.name, l, *wantReg[l], *gotReg[l])
			}
			if !reflect.DeepEqual(*wantHor[l], *gotHor[l]) {
				t.Fatalf("%s: chip %d H-YAPD delta eval diverges from full eval", tc.name, l)
			}
		}
	}
}
