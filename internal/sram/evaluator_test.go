package sram

import (
	"reflect"
	"testing"

	"yieldcache/internal/circuit"
	"yieldcache/internal/variation"
)

func evalFixture(hyapd bool) (*Model, *variation.Sampler) {
	return NewModel(circuit.PTM45(), hyapd), variation.NewSampler(variation.Nassif45nm(), variation.PaperFactors(), 2006)
}

// TestEvaluatorMatchesTreeMeasure pins the value-typed kernel to the
// tree-based path: for both decoder organisations, Evaluator.Measure
// must reproduce Model.Measure(Node) field for field.
func TestEvaluatorMatchesTreeMeasure(t *testing.T) {
	for _, hyapd := range []bool{false, true} {
		m, s := evalFixture(hyapd)
		ev := m.NewEvaluator(s.NewScratch())
		var got CacheMeasurement
		for id := 0; id < 50; id++ {
			want := m.Measure(s.Chip(id))
			chip := ev.Scratch().Chip(id)
			ev.Measure(&chip, &got)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("hyapd=%v chip %d: evaluator diverges from tree measure\nwant %+v\ngot  %+v",
					hyapd, id, want, got)
			}
		}
	}
}

// TestMeasurePairMatchesSeparateBuilds pins the shared-draw guarantee:
// one MeasurePair call must equal two independent measurements of the
// same chip, one per decoder organisation — bit-identical, not merely
// close.
func TestMeasurePairMatchesSeparateBuilds(t *testing.T) {
	mReg, s := evalFixture(false)
	mHor, _ := evalFixture(true)
	ev := mReg.NewEvaluator(s.NewScratch())
	var reg, hor CacheMeasurement
	for id := 0; id < 50; id++ {
		chip := ev.Scratch().Chip(id)
		ev.MeasurePair(&chip, &reg, &hor)
		wantReg := mReg.Measure(s.Chip(id))
		wantHor := mHor.Measure(s.Chip(id))
		if !reflect.DeepEqual(wantReg, reg) {
			t.Fatalf("chip %d: regular half of pair diverges", id)
		}
		if !reflect.DeepEqual(wantHor, hor) {
			t.Fatalf("chip %d: H-YAPD half of pair diverges", id)
		}
	}
}

// TestMeasureZeroAlloc verifies the kernel's steady state never touches
// the heap: after the first measurement warms the destination, Measure
// and MeasurePair are allocation-free.
func TestMeasureZeroAlloc(t *testing.T) {
	m, s := evalFixture(false)
	ev := m.NewEvaluator(s.NewScratch())
	var cm, reg, hor CacheMeasurement
	chip := ev.Scratch().Chip(0)
	ev.Measure(&chip, &cm)
	ev.MeasurePair(&chip, &reg, &hor)

	id := 1
	if allocs := testing.AllocsPerRun(50, func() {
		chip := ev.Scratch().Chip(id)
		ev.Measure(&chip, &cm)
		id++
	}); allocs != 0 {
		t.Errorf("warm Measure allocates %.1f times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		chip := ev.Scratch().Chip(id)
		ev.MeasurePair(&chip, &reg, &hor)
		id++
	}); allocs != 0 {
		t.Errorf("warm MeasurePair allocates %.1f times per run, want 0", allocs)
	}
}
