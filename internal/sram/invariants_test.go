package sram

import (
	"math"
	"testing"
	"testing/quick"

	"yieldcache/internal/circuit"
	"yieldcache/internal/variation"
)

// Property: for any chip, the measurement invariants hold — positive
// delays, way latency equals its slowest bank, leakage decomposes into
// banks plus periphery, and removing any bank never increases latency.
func TestMeasurementInvariantsProperty(t *testing.T) {
	m := NewModel(circuit.PTM45(), false)
	s := variation.NewSampler(variation.Nassif45nm(), variation.PaperFactors(), 99)
	f := func(id uint16) bool {
		cm := m.Measure(s.Chip(int(id)))
		for _, w := range cm.Ways {
			sum := w.PeriphLeakW
			maxBank := 0.0
			for b := range w.Banks {
				if w.Banks[b].MaxPS <= 0 || w.Banks[b].ArrayLeakW <= 0 {
					return false
				}
				sum += w.Banks[b].ArrayLeakW
				if w.Banks[b].MaxPS > maxBank {
					maxBank = w.Banks[b].MaxPS
				}
				if w.LatencyWithoutBank(b) > w.LatencyPS+1e-9 {
					return false
				}
				if w.LeakageWithoutBank(b) >= w.LeakageW {
					return false
				}
			}
			if math.Abs(maxBank-w.LatencyPS) > 1e-9 {
				return false
			}
			if math.Abs(sum-w.LeakageW) > 1e-9*sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNominalChipIsNominal(t *testing.T) {
	// A chip with zero variation everywhere (factor-0 sampler via a spec
	// whose sigmas are zero) must land exactly on the nominal stage
	// delays for its slowest path.
	spec := variation.Nassif45nm()
	spec.Sigma3Pct = variation.Values{} // all zero: no variation at all
	s := variation.NewSampler(spec, variation.PaperFactors(), 1)
	m := NewModel(circuit.PTM45(), false)
	cm := m.Measure(s.Chip(0))

	// The farthest modelled row: bank 3, slot 3 -> row 48 of that bank.
	farthest := (float64(3*64) + 48 + 0.5) / 256
	want := 0.0
	for _, st := range NominalStages(farthest) {
		want += st.NominalPS
	}
	// With zero variation the sense margin is exactly 1 and every factor
	// unity, so the critical path equals the nominal sum.
	if math.Abs(cm.LatencyPS-want) > 1e-6 {
		t.Errorf("zero-variation latency = %v, want %v", cm.LatencyPS, want)
	}
	// All ways identical.
	for _, w := range cm.Ways {
		if math.Abs(w.LatencyPS-cm.LatencyPS) > 1e-9 {
			t.Error("zero-variation ways differ")
		}
	}
}

func TestLeakageScalesWithCellCount(t *testing.T) {
	tech := circuit.PTM45()
	spec := variation.Nassif45nm()
	spec.Sigma3Pct = variation.Values{}
	s := variation.NewSampler(spec, variation.PaperFactors(), 1)
	m := NewModel(tech, false)
	cm := m.Measure(s.Chip(0))
	// Zero variation: leakage = cells * CellLeakage * (1 + periphery).
	cells := float64(m.Geom.Ways * m.Geom.CellsPerWay())
	want := cells * tech.CellLeakage * (1 + tech.PeripheryLeakFrac)
	if math.Abs(cm.LeakageW-want) > 1e-9*want {
		t.Errorf("zero-variation leakage = %v, want %v", cm.LeakageW, want)
	}
}
