package sram

import (
	"yieldcache/internal/circuit"
	"yieldcache/internal/variation"
)

// Block labels for the circuit blocks that receive independent (but
// spatially correlated) variation draws, matching the paper's list:
// "the decoder, pre-charge circuits, memory cell arrays, sense amplifiers
// and output drivers". The decoder and output drivers are way-level
// structures; precharge and sense amplifiers exist per bank.
const (
	blockDecoder  = 0
	blockOutput   = 1
	blockPreBase  = 200 // + bank index: the bank's precharge circuits
	blockSenseAmp = 300 // + bank index: the bank's sense amplifiers
)

// HYAPDLatencyPenalty is the average access-latency increase of the
// H-YAPD decoder organisation measured by the paper's HSPICE simulations
// (Section 4.2: "a 2.5% increase in the access latencies on average").
const HYAPDLatencyPenalty = 1.025

// senseOffsetScale converts the sampled sense-amp pair mismatch (a
// full-range independent Vt deviation) into the margin-eating offset.
// The pair's differential offset is larger than a single device's random
// component, and the slowest of the bank's many amplifiers governs.
const senseOffsetScale = 2.8

// replicaTracking is the fraction of the chip-common process deviation
// that the replica-bitline sense-timing circuit compensates; the residue
// still erodes sense margin on globally slow chips.
const replicaTracking = 0.50

// bandFactor is the correlation factor of a horizontal band (one row
// region at a fixed die y-coordinate, spanning all ways) relative to the
// chip. Spatial correlation is location-dependent (Section 2): the same
// row range of different ways sits at the same vertical position, so all
// ways see nearly the same band parameters — this is exactly the
// "either all the upper-most rows or all the middle rows violate"
// behaviour that motivates H-YAPD (Section 4.2). The paper does not
// publish this factor; it sits between the row factor (0.05) and the
// way factors (0.375..0.7125).
const bandFactor = 0.50

// Model evaluates sampled chips into cache measurements.
type Model struct {
	Tech circuit.Tech
	Geom Geometry
	// HYAPD selects the horizontal-power-down decoder organisation,
	// which costs HYAPDLatencyPenalty on every access path.
	HYAPD bool
}

// NewModel returns a model of the paper's 16 KB cache on the given
// technology.
func NewModel(tech circuit.Tech, hyapd bool) *Model {
	return &Model{Tech: tech, Geom: Paper16KB(), HYAPD: hyapd}
}

// PathMeasurement is the evaluated delay of one representative critical
// path (one row position of one bank).
type PathMeasurement struct {
	Bank, Slot int
	DelayPS    float64
}

// BankMeasurement aggregates one bank of one way.
type BankMeasurement struct {
	Paths      []PathMeasurement
	MaxPS      float64 // slowest path through this bank
	ArrayLeakW float64 // leakage of this bank's cell array
}

// WayMeasurement aggregates one way.
type WayMeasurement struct {
	Banks       []BankMeasurement
	PeriphLeakW float64 // decoder/precharge/sense/driver leakage (not removable by H-YAPD)
	LatencyPS   float64 // slowest path through the way
	LeakageW    float64 // array + periphery
}

// CacheMeasurement is the full evaluation of one sampled chip's cache.
type CacheMeasurement struct {
	Ways      []WayMeasurement
	LatencyPS float64 // slowest way (the cache access latency of Section 5.1)
	LeakageW  float64 // sum over ways
}

// Prepare sizes dst for geometry g, reusing slice capacity when it is
// already there and zeroing every aggregate the kernel accumulates
// into. After one measurement a re-Prepared value costs no allocation.
func Prepare(dst *CacheMeasurement, g Geometry) {
	if cap(dst.Ways) >= g.Ways {
		dst.Ways = dst.Ways[:g.Ways]
	} else {
		dst.Ways = make([]WayMeasurement, g.Ways)
	}
	for w := range dst.Ways {
		wm := &dst.Ways[w]
		wm.PeriphLeakW, wm.LatencyPS, wm.LeakageW = 0, 0, 0
		if cap(wm.Banks) >= g.BanksPerWay {
			wm.Banks = wm.Banks[:g.BanksPerWay]
		} else {
			wm.Banks = make([]BankMeasurement, g.BanksPerWay)
		}
		for b := range wm.Banks {
			bm := &wm.Banks[b]
			bm.MaxPS, bm.ArrayLeakW = 0, 0
			if cap(bm.Paths) >= g.PathsPerBank {
				bm.Paths = bm.Paths[:g.PathsPerBank]
			} else {
				bm.Paths = make([]PathMeasurement, g.PathsPerBank)
			}
		}
	}
	dst.LatencyPS, dst.LeakageW = 0, 0
}

// Evaluator is the single-pass measurement engine: one variation
// scratch plus the reusable draw and derived-column storage of the
// batched structure-of-arrays kernel (kernel.go), so that a warm
// Measure or MeasureBatch does zero heap allocations. Evaluators are
// not safe for concurrent use; the population builder gives each worker
// its own.
type Evaluator struct {
	m        *Model
	sc       *variation.Scratch
	ks       *kernelScratch       // pooled draw + column buffers (Release returns them)
	stageNom [][NumStages]float64 // nominal stage delays per (bank, path)

	// Scalar reference-path buffers, allocated lazily by measureRef
	// (the batch-vs-scalar parity tests are its only caller).
	bands     []variation.Draw // per (bank, path slot), shared by all ways
	bankBands []variation.Draw // per bank aggregate, shared by all ways
}

// NewEvaluator returns an evaluator drawing from sc. The scratch's spec
// and correlation factors must match the population being measured.
// Kernel buffers come from a pool; call Release when the evaluator is
// done to recycle them.
func (m *Model) NewEvaluator(sc *variation.Scratch) *Evaluator {
	ks := kernelPool.Get().(*kernelScratch)
	if ks.stageNom == nil || ks.stageGeom != m.Geom {
		ks.stageNom = stageNominals(m.Geom)
		ks.stageGeom = m.Geom
	}
	return &Evaluator{
		m:        m,
		sc:       sc,
		ks:       ks,
		stageNom: ks.stageNom,
	}
}

// Scratch returns the evaluator's variation scratch (chip root draws
// come from it so that the whole pipeline shares one generator).
func (e *Evaluator) Scratch() *variation.Scratch { return e.sc }

// Measure evaluates the model's cache organisation on the chip
// described by the root draw, into dst. Steady-state calls are
// allocation-free once dst has been through one measurement (or
// Prepare) at this geometry. It runs the batched kernel at width 1;
// the result is bit-identical to the scalar reference path.
func (e *Evaluator) Measure(chip *variation.Draw, dst *CacheMeasurement) {
	ds := &e.ks.ds
	ds.IDs = ds.IDs[:0]
	ds.Chips.Resize(1)
	ds.Chips.SetLane(0, chip)
	e.sampleRegions(ds)
	Prepare(dst, e.m.Geom)
	e.ks.one[0] = dst
	e.eval(ds, e.ks.one[:], e.m.HYAPD, true, true, nil)
	e.ks.one[0] = nil
}

// MeasurePair evaluates both cache organisations from one set of
// variation draws: the regular organisation into reg and H-YAPD into
// hor. Because H-YAPD differs only by its constant decoder latency
// penalty, the H-YAPD result is derived from the same path delays,
// bit-identical to an independent H-YAPD measurement of the same chip —
// the paper's "same process variation parameters" guarantee holds by
// construction instead of by re-sampling.
func (e *Evaluator) MeasurePair(chip *variation.Draw, reg, hor *CacheMeasurement) {
	ds := &e.ks.ds
	ds.IDs = ds.IDs[:0]
	ds.Chips.Resize(1)
	ds.Chips.SetLane(0, chip)
	e.sampleRegions(ds)
	Prepare(reg, e.m.Geom)
	e.ks.one[0] = reg
	e.eval(ds, e.ks.one[:], false, true, true, nil)
	e.ks.one[0] = nil
	deriveHYAPD(reg, hor, e.m.Geom)
}

// measureRef is the scalar reference implementation the batched kernel
// must match bit for bit; it is retained (and exercised by the parity
// tests) as the executable specification of the measurement arithmetic.
func (e *Evaluator) measureRef(chip *variation.Draw, dst *CacheMeasurement, hyapd bool) {
	m := e.m
	if e.bands == nil {
		e.bands = make([]variation.Draw, m.Geom.BanksPerWay*m.Geom.PathsPerBank)
		e.bankBands = make([]variation.Draw, m.Geom.BanksPerWay)
	}
	Prepare(dst, m.Geom)
	// Horizontal bands: one per (bank, path slot), common to all ways.
	// Each bank also has an aggregate band node whose leakage state is
	// shared by the same physical rows of every way — horizontal regions
	// run hot or cold together, which is what lets H-YAPD excise the
	// hottest region of all four ways at once.
	for i := range e.bands {
		e.bands[i] = e.sc.Child(chip, bandFactor, int64(5000+i))
	}
	for b := range e.bankBands {
		e.bankBands[b] = e.sc.Child(chip, bandFactor, int64(6000+b))
	}
	for w := 0; w < m.Geom.Ways; w++ {
		way := e.sc.Way(chip, w)
		e.measureWay(&dst.Ways[w], chip, &way, w, hyapd)
		if dst.Ways[w].LatencyPS > dst.LatencyPS {
			dst.LatencyPS = dst.Ways[w].LatencyPS
		}
		dst.LeakageW += dst.Ways[w].LeakageW
	}
}

// measureWay evaluates one way into wm (pre-sized by Prepare). The
// correlation structure follows Sections 2-3: ways on the 2x2 mesh;
// horizontal bands drawn at chip level and shared by all ways because
// they sit at the same die y-coordinate; per-bank circuit blocks at the
// block factor; one row draw per representative path.
func (e *Evaluator) measureWay(wm *WayMeasurement, chip, way *variation.Draw, wayIdx int, hyapd bool) {
	m := e.m
	t := m.Tech
	sc := e.sc
	spec := sc.Spec()
	chipDev := circuit.DeviceOf(&chip.Values, spec)
	dec := sc.Block(way, blockDecoder)
	out := sc.Block(way, blockOutput)

	decDev, decWire := circuit.DeviceOf(&dec.Values, spec), circuit.WireOf(&dec.Values, spec)
	outDev, outWire := circuit.DeviceOf(&out.Values, spec), circuit.WireOf(&out.Values, spec)

	totalRows := float64(m.Geom.BanksPerWay * m.Geom.RowsPerBank)

	periphLeakSum := decDev.LeakageFactor(t) + outDev.LeakageFactor(t)
	periphBlocks := 2.0
	var arrayLeakTotal float64

	for b := 0; b < m.Geom.BanksPerWay; b++ {
		pre := sc.Block(way, int64(blockPreBase+b))
		sa := sc.Block(way, int64(blockSenseAmp+b))
		preWire := circuit.WireOf(&pre.Values, spec)
		saDev := circuit.DeviceOf(&sa.Values, spec)
		periphLeakSum += (circuit.DeviceOf(&pre.Values, spec).LeakageFactor(t) + saDev.LeakageFactor(t)) /
			float64(m.Geom.BanksPerWay)
		periphBlocks += 2.0 / float64(m.Geom.BanksPerWay)

		// Sense-amplifier signal margin erodes from two sources: random
		// within-die mismatch between the two devices of the pair (dopant
		// fluctuation, uncorrelated across banks and ways — a factor-1.0
		// child captures exactly that: an independent full-range deviation
		// around the bank's systematic value; offset eats margin whichever
		// side it lands on, so it enters as |ΔVt|) and, at half weight,
		// the bank's systematic sense-amp weakness.
		mmDraw := sc.Child(&sa, 1.0, 9000)
		offset := mmDraw.Values[variation.Vt]/1000 - saDev.VtV
		if offset < 0 {
			offset = -offset
		}

		bm := &wm.Banks[b]
		var bankLeakSum float64
		for p := 0; p < m.Geom.PathsPerBank; p++ {
			band := &e.bands[b*m.Geom.PathsPerBank+p]
			// This way's instance of the band's rows: nearly identical to
			// the band (row factor) but distinguishable per way.
			row := sc.Row(band, int64(wayIdx))
			cellDev := circuit.DeviceOf(&row.Values, spec)
			cellWire := circuit.WireOf(&row.Values, spec)
			bankLeakSum += cellDev.LeakageFactor(t)

			// The sense clock is generated by a replica bitline that
			// tracks (imperfectly — replicaTracking of it) the chip's
			// common process corner, so the margin is eaten mostly by
			// *local deviations from that corner*: the amp's random pair
			// offset, half the amp's systematic deviation, and the full
			// deviation of this row's cell (the device that develops the
			// differential). The cell deviation comes from the chip-level
			// horizontal band, so it is shared by the same row region of
			// every way — weak bands slow all ways together, which is
			// exactly the failure mode H-YAPD excises (Section 4.2).
			resid := 1 - replicaTracking
			saEff := circuit.Device{
				DLeff: 0.5*(saDev.DLeff-chipDev.DLeff) + (cellDev.DLeff - chipDev.DLeff) +
					resid*chipDev.DLeff,
				VtV: t.VtNominal + senseOffsetScale*offset +
					0.5*(saDev.VtV-chipDev.VtV) + (cellDev.VtV - chipDev.VtV) +
					resid*(chipDev.VtV-t.VtNominal),
			}
			margin := circuit.SenseMargin(t, saEff)

			rowIdx := p * m.Geom.RowsPerBank / m.Geom.PathsPerBank
			distFrac := (float64(b*m.Geom.RowsPerBank) + float64(rowIdx) + 0.5) / totalRows
			delay := 0.0
			stages := PathStages(distFrac)
			for _, s := range stages {
				var d float64
				switch s.Name {
				case "addr-bus", "decode", "global-wl":
					d = s.Eval(t, decDev, decWire)
				case "local-wl":
					d = s.Eval(t, cellDev, cellWire)
				case "bitline":
					d = s.Eval(t, cellDev, preWire) * margin
				case "sense":
					d = s.Eval(t, saDev, preWire) * margin
				case "output":
					d = s.Eval(t, outDev, outWire)
				default:
					d = s.Eval(t, cellDev, cellWire)
				}
				delay += d
			}
			if hyapd {
				delay *= HYAPDLatencyPenalty
			}
			bm.Paths[p] = PathMeasurement{Bank: b, Slot: p, DelayPS: delay}
			if delay > bm.MaxPS {
				bm.MaxPS = delay
			}
		}
		// Array leakage: the bank-band aggregate (shared across ways)
		// carries most of the weight; the per-path rows add this way's
		// local contribution.
		bandRow := sc.Row(&e.bankBands[b], int64(wayIdx))
		bandLeak := circuit.DeviceOf(&bandRow.Values, spec).LeakageFactor(t)
		slotLeak := bankLeakSum / float64(m.Geom.PathsPerBank)
		bm.ArrayLeakW = t.CellLeakage * float64(m.Geom.CellsPerBank()) *
			(0.7*bandLeak + 0.3*slotLeak)
		arrayLeakTotal += bm.ArrayLeakW
		if bm.MaxPS > wm.LatencyPS {
			wm.LatencyPS = bm.MaxPS
		}
	}

	wm.PeriphLeakW = t.PeripheryLeakFrac * t.CellLeakage *
		float64(m.Geom.CellsPerWay()) * periphLeakSum / periphBlocks
	wm.LeakageW = arrayLeakTotal + wm.PeriphLeakW
}

// deriveHYAPD fills hor with the H-YAPD organisation's measurement of
// the chip already measured (regular organisation) in reg: every path
// delay takes the constant decoder penalty, maxima are re-selected from
// the scaled delays, and leakage carries over unchanged — exactly the
// arithmetic an independent H-YAPD measurement performs on the same
// draws.
func deriveHYAPD(reg, hor *CacheMeasurement, g Geometry) {
	Prepare(hor, g)
	for w := range reg.Ways {
		rw, hw := &reg.Ways[w], &hor.Ways[w]
		for b := range rw.Banks {
			rb, hb := &rw.Banks[b], &hw.Banks[b]
			for p := range rb.Paths {
				delay := rb.Paths[p].DelayPS * HYAPDLatencyPenalty
				hb.Paths[p] = PathMeasurement{Bank: rb.Paths[p].Bank, Slot: rb.Paths[p].Slot, DelayPS: delay}
				if delay > hb.MaxPS {
					hb.MaxPS = delay
				}
			}
			hb.ArrayLeakW = rb.ArrayLeakW
			if hb.MaxPS > hw.LatencyPS {
				hw.LatencyPS = hb.MaxPS
			}
		}
		hw.PeriphLeakW = rw.PeriphLeakW
		hw.LeakageW = rw.LeakageW
		if hw.LatencyPS > hor.LatencyPS {
			hor.LatencyPS = hw.LatencyPS
		}
		hor.LeakageW += hw.LeakageW
	}
}

// Measure evaluates the cache on the chip described by the variation
// root node. It is the tree-based compatibility entry point; the
// population builder uses an Evaluator directly to amortise scratch
// state across chips.
func (m *Model) Measure(chip *variation.Node) CacheMeasurement {
	e := m.NewEvaluator(chip.NewScratch())
	defer e.Release()
	d := chip.AsDraw()
	var cm CacheMeasurement
	e.Measure(&d, &cm)
	return cm
}

// LatencyWithoutBank returns the way's slowest path when physical bank b
// (one horizontal region) is disabled. Used by the H-YAPD scheme.
func (w WayMeasurement) LatencyWithoutBank(b int) float64 {
	max := 0.0
	for i, bm := range w.Banks {
		if i == b {
			continue
		}
		if bm.MaxPS > max {
			max = bm.MaxPS
		}
	}
	return max
}

// LeakageWithoutBank returns the way's leakage when physical bank b is
// disabled. Only the bank's cell array is removed: the paper notes that
// with horizontal power-down "some parts of the decoder as well as
// pre-charge and sense amplifier circuits cannot be turned off
// completely", so the periphery keeps leaking.
func (w WayMeasurement) LeakageWithoutBank(b int) float64 {
	return w.LeakageW - w.Banks[b].ArrayLeakW
}
