package sram

import (
	"yieldcache/internal/circuit"
	"yieldcache/internal/variation"
)

// Block labels for the circuit blocks that receive independent (but
// spatially correlated) variation draws, matching the paper's list:
// "the decoder, pre-charge circuits, memory cell arrays, sense amplifiers
// and output drivers". The decoder and output drivers are way-level
// structures; precharge and sense amplifiers exist per bank.
const (
	blockDecoder  = 0
	blockOutput   = 1
	blockPreBase  = 200 // + bank index: the bank's precharge circuits
	blockSenseAmp = 300 // + bank index: the bank's sense amplifiers
)

// HYAPDLatencyPenalty is the average access-latency increase of the
// H-YAPD decoder organisation measured by the paper's HSPICE simulations
// (Section 4.2: "a 2.5% increase in the access latencies on average").
const HYAPDLatencyPenalty = 1.025

// senseOffsetScale converts the sampled sense-amp pair mismatch (a
// full-range independent Vt deviation) into the margin-eating offset.
// The pair's differential offset is larger than a single device's random
// component, and the slowest of the bank's many amplifiers governs.
const senseOffsetScale = 2.8

// replicaTracking is the fraction of the chip-common process deviation
// that the replica-bitline sense-timing circuit compensates; the residue
// still erodes sense margin on globally slow chips.
const replicaTracking = 0.50

// bandFactor is the correlation factor of a horizontal band (one row
// region at a fixed die y-coordinate, spanning all ways) relative to the
// chip. Spatial correlation is location-dependent (Section 2): the same
// row range of different ways sits at the same vertical position, so all
// ways see nearly the same band parameters — this is exactly the
// "either all the upper-most rows or all the middle rows violate"
// behaviour that motivates H-YAPD (Section 4.2). The paper does not
// publish this factor; it sits between the row factor (0.05) and the
// way factors (0.375..0.7125).
const bandFactor = 0.50

// Model evaluates sampled chips into cache measurements.
type Model struct {
	Tech circuit.Tech
	Geom Geometry
	// HYAPD selects the horizontal-power-down decoder organisation,
	// which costs HYAPDLatencyPenalty on every access path.
	HYAPD bool
}

// NewModel returns a model of the paper's 16 KB cache on the given
// technology.
func NewModel(tech circuit.Tech, hyapd bool) *Model {
	return &Model{Tech: tech, Geom: Paper16KB(), HYAPD: hyapd}
}

// PathMeasurement is the evaluated delay of one representative critical
// path (one row position of one bank).
type PathMeasurement struct {
	Bank, Slot int
	DelayPS    float64
}

// BankMeasurement aggregates one bank of one way.
type BankMeasurement struct {
	Paths      []PathMeasurement
	MaxPS      float64 // slowest path through this bank
	ArrayLeakW float64 // leakage of this bank's cell array
}

// WayMeasurement aggregates one way.
type WayMeasurement struct {
	Banks       []BankMeasurement
	PeriphLeakW float64 // decoder/precharge/sense/driver leakage (not removable by H-YAPD)
	LatencyPS   float64 // slowest path through the way
	LeakageW    float64 // array + periphery
}

// CacheMeasurement is the full evaluation of one sampled chip's cache.
type CacheMeasurement struct {
	Ways      []WayMeasurement
	LatencyPS float64 // slowest way (the cache access latency of Section 5.1)
	LeakageW  float64 // sum over ways
}

// Measure evaluates the cache on the chip described by the variation
// root node. The correlation structure follows Sections 2-3: ways on the
// 2x2 mesh; horizontal bands (row regions) drawn at chip level and
// shared by all ways because they sit at the same die y-coordinate;
// per-bank circuit blocks at the block factor; one row draw per
// representative path.
func (m *Model) Measure(chip *variation.Node) CacheMeasurement {
	// Horizontal bands: one per (bank, path slot), common to all ways.
	// Each bank also has an aggregate band node whose leakage state is
	// shared by the same physical rows of every way — horizontal regions
	// run hot or cold together, which is what lets H-YAPD excise the
	// hottest region of all four ways at once.
	bands := make([]*variation.Node, m.Geom.BanksPerWay*m.Geom.PathsPerBank)
	for i := range bands {
		bands[i] = chip.Child(bandFactor, int64(5000+i))
	}
	bankBands := make([]*variation.Node, m.Geom.BanksPerWay)
	for b := range bankBands {
		bankBands[b] = chip.Child(bandFactor, int64(6000+b))
	}
	cm := CacheMeasurement{Ways: make([]WayMeasurement, m.Geom.Ways)}
	for w := 0; w < m.Geom.Ways; w++ {
		cm.Ways[w] = m.measureWay(chip, chip.Way(w), bands, bankBands, w)
		if cm.Ways[w].LatencyPS > cm.LatencyPS {
			cm.LatencyPS = cm.Ways[w].LatencyPS
		}
		cm.LeakageW += cm.Ways[w].LeakageW
	}
	return cm
}

func (m *Model) measureWay(chip, way *variation.Node, bands, bankBands []*variation.Node, wayIdx int) WayMeasurement {
	t := m.Tech
	chipDev := circuit.DeviceFrom(chip)
	dec := way.Block(blockDecoder)
	out := way.Block(blockOutput)

	decDev, decWire := circuit.DeviceFrom(dec), circuit.WireFrom(dec)
	outDev, outWire := circuit.DeviceFrom(out), circuit.WireFrom(out)

	wm := WayMeasurement{Banks: make([]BankMeasurement, m.Geom.BanksPerWay)}
	totalRows := float64(m.Geom.BanksPerWay * m.Geom.RowsPerBank)

	periphLeakSum := decDev.LeakageFactor(t) + outDev.LeakageFactor(t)
	periphBlocks := 2.0
	var arrayLeakTotal float64

	for b := 0; b < m.Geom.BanksPerWay; b++ {
		pre := way.Block(int64(blockPreBase + b))
		sa := way.Block(int64(blockSenseAmp + b))
		preWire := circuit.WireFrom(pre)
		saDev := circuit.DeviceFrom(sa)
		periphLeakSum += (circuit.DeviceFrom(pre).LeakageFactor(t) + saDev.LeakageFactor(t)) /
			float64(m.Geom.BanksPerWay)
		periphBlocks += 2.0 / float64(m.Geom.BanksPerWay)

		// Sense-amplifier signal margin erodes from two sources: random
		// within-die mismatch between the two devices of the pair (dopant
		// fluctuation, uncorrelated across banks and ways — a factor-1.0
		// child captures exactly that: an independent full-range deviation
		// around the bank's systematic value; offset eats margin whichever
		// side it lands on, so it enters as |ΔVt|) and, at half weight,
		// the bank's systematic sense-amp weakness.
		mmNode := sa.Child(1.0, 9000)
		offset := mmNode.Values[variation.Vt]/1000 - saDev.VtV
		if offset < 0 {
			offset = -offset
		}

		bm := BankMeasurement{Paths: make([]PathMeasurement, m.Geom.PathsPerBank)}
		var bankLeakSum float64
		for p := 0; p < m.Geom.PathsPerBank; p++ {
			band := bands[b*m.Geom.PathsPerBank+p]
			// This way's instance of the band's rows: nearly identical to
			// the band (row factor) but distinguishable per way.
			row := band.Row(int64(wayIdx))
			cellDev := circuit.DeviceFrom(row)
			cellWire := circuit.WireFrom(row)
			bankLeakSum += cellDev.LeakageFactor(t)

			// The sense clock is generated by a replica bitline that
			// tracks (imperfectly — replicaTracking of it) the chip's
			// common process corner, so the margin is eaten mostly by
			// *local deviations from that corner*: the amp's random pair
			// offset, half the amp's systematic deviation, and the full
			// deviation of this row's cell (the device that develops the
			// differential). The cell deviation comes from the chip-level
			// horizontal band, so it is shared by the same row region of
			// every way — weak bands slow all ways together, which is
			// exactly the failure mode H-YAPD excises (Section 4.2).
			resid := 1 - replicaTracking
			saEff := circuit.Device{
				DLeff: 0.5*(saDev.DLeff-chipDev.DLeff) + (cellDev.DLeff - chipDev.DLeff) +
					resid*chipDev.DLeff,
				VtV: t.VtNominal + senseOffsetScale*offset +
					0.5*(saDev.VtV-chipDev.VtV) + (cellDev.VtV - chipDev.VtV) +
					resid*(chipDev.VtV-t.VtNominal),
			}
			margin := circuit.SenseMargin(t, saEff)

			rowIdx := p * m.Geom.RowsPerBank / m.Geom.PathsPerBank
			distFrac := (float64(b*m.Geom.RowsPerBank) + float64(rowIdx) + 0.5) / totalRows
			delay := 0.0
			for _, s := range NominalStages(distFrac) {
				var d float64
				switch s.Name {
				case "addr-bus", "decode", "global-wl":
					d = s.Eval(t, decDev, decWire)
				case "local-wl":
					d = s.Eval(t, cellDev, cellWire)
				case "bitline":
					d = s.Eval(t, cellDev, preWire) * margin
				case "sense":
					d = s.Eval(t, saDev, preWire) * margin
				case "output":
					d = s.Eval(t, outDev, outWire)
				default:
					d = s.Eval(t, cellDev, cellWire)
				}
				delay += d
			}
			if m.HYAPD {
				delay *= HYAPDLatencyPenalty
			}
			bm.Paths[p] = PathMeasurement{Bank: b, Slot: p, DelayPS: delay}
			if delay > bm.MaxPS {
				bm.MaxPS = delay
			}
		}
		// Array leakage: the bank-band aggregate (shared across ways)
		// carries most of the weight; the per-path rows add this way's
		// local contribution.
		bandLeak := circuit.DeviceFrom(bankBands[b].Row(int64(wayIdx))).LeakageFactor(t)
		slotLeak := bankLeakSum / float64(m.Geom.PathsPerBank)
		bm.ArrayLeakW = t.CellLeakage * float64(m.Geom.CellsPerBank()) *
			(0.7*bandLeak + 0.3*slotLeak)
		arrayLeakTotal += bm.ArrayLeakW
		wm.Banks[b] = bm
		if bm.MaxPS > wm.LatencyPS {
			wm.LatencyPS = bm.MaxPS
		}
	}

	wm.PeriphLeakW = t.PeripheryLeakFrac * t.CellLeakage *
		float64(m.Geom.CellsPerWay()) * periphLeakSum / periphBlocks
	wm.LeakageW = arrayLeakTotal + wm.PeriphLeakW
	return wm
}

// LatencyWithoutBank returns the way's slowest path when physical bank b
// (one horizontal region) is disabled. Used by the H-YAPD scheme.
func (w WayMeasurement) LatencyWithoutBank(b int) float64 {
	max := 0.0
	for i, bm := range w.Banks {
		if i == b {
			continue
		}
		if bm.MaxPS > max {
			max = bm.MaxPS
		}
	}
	return max
}

// LeakageWithoutBank returns the way's leakage when physical bank b is
// disabled. Only the bank's cell array is removed: the paper notes that
// with horizontal power-down "some parts of the decoder as well as
// pre-charge and sense amplifier circuits cannot be turned off
// completely", so the periphery keeps leaking.
func (w WayMeasurement) LeakageWithoutBank(b int) float64 {
	return w.LeakageW - w.Banks[b].ArrayLeakW
}
