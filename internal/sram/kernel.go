package sram

import (
	"math"
	"sync"

	"yieldcache/internal/circuit"
	"yieldcache/internal/variation"
)

// This file is the structure-of-arrays measurement kernel. The scalar
// path (measure/measureWay in measure.go) walks one chip's variation
// tree node by node, re-deriving every circuit factor per stage; the
// batched kernel instead samples the same region node of several chips
// into flat columns (variation.Batch), derives each circuit factor once
// per region in straight-line loops over those columns, and assembles
// the per-path delays and per-bank leakages from the derived columns.
//
// Bit-identity argument (the golden seed-2006 tables must not move):
//   - Every region node's draw stream is self-contained — its seed is
//     MixSeed(parent seed, label) and drawing a child never consumes
//     the parent's generator — so nodes can be sampled in any order,
//     including column-major across chips, without changing any value.
//   - Per-chip float arithmetic keeps the exact expression shapes and
//     accumulation order of the scalar path: stage delays are summed in
//     stage order, bank/path/way aggregates in ascending index order,
//     and factor computations are hoisted only as whole expressions
//     (common-subexpression reuse of a pure function is exact; no term
//     is reassociated or fused).

// BatchWidth is the number of chips the population builder evaluates
// per kernel invocation. Eight chips keep every derived column of a
// region (8 lanes x 16 bank-paths) inside the L1 cache while giving the
// fill loops enough trip count to amortise their setup.
const BatchWidth = 8

// WayDraws holds the sampled variation batches of one way: the way
// node itself, its circuit blocks, the sense-amp mismatch children, and
// this way's row instances of the chip-level horizontal bands. Lane
// order is chip-major: chip c's bank b lands in lane c*BanksPerWay+b,
// and its path p in lane (c*BanksPerWay+b)*PathsPerBank+p.
type WayDraws struct {
	Way      variation.Batch // the way region (parent of the blocks)
	Dec      variation.Batch // decoder block, one lane per chip
	Out      variation.Batch // output-driver block, one lane per chip
	Pre      variation.Batch // precharge blocks, one lane per (chip, bank)
	SA       variation.Batch // sense-amp blocks, one lane per (chip, bank)
	MM       variation.Batch // sense-amp pair mismatch, one lane per (chip, bank)
	Rows     variation.Batch // this way's row per band, one lane per (chip, bank, path)
	BandRows variation.Batch // this way's row per bank-band, one lane per (chip, bank)
}

// DrawSet is the complete set of variation draws for a batch of chips:
// everything the kernel needs to evaluate them under any technology.
// A DrawSet can be retained and re-evaluated (the delta-build path
// shares draws across sweep points — common random numbers), and its
// buffers are reused across Sample calls.
type DrawSet struct {
	IDs       []int           // chip ids, lane order
	Chips     variation.Batch // root draws, one lane per chip
	Bands     variation.Batch // horizontal bands, one lane per (chip, bank, path)
	BankBands variation.Batch // bank aggregate bands, one lane per (chip, bank)
	Ways      []WayDraws      // per way
}

// Len returns the number of chips in the set.
func (ds *DrawSet) Len() int { return ds.Chips.Len() }

// Sample draws the full variation tree of the given chips into ds,
// reusing its buffers. Lane l holds chip ids[l]; every draw is
// bit-identical to the scalar Scratch walk of the same chip.
func (e *Evaluator) Sample(ids []int, ds *DrawSet) {
	ds.IDs = append(ds.IDs[:0], ids...)
	e.sc.ChipBatch(ids, &ds.Chips)
	e.sampleRegions(ds)
}

// sampleRegions draws every region batch below the already-filled chip
// roots, mirroring the scalar measure/measureWay sampling structure.
func (e *Evaluator) sampleRegions(ds *DrawSet) {
	g := e.m.Geom
	sc := e.sc
	nb, np := g.BanksPerWay, g.PathsPerBank
	sc.ChildrenBatch(&ds.Chips, bandFactor, 5000, nb*np, &ds.Bands)
	sc.ChildrenBatch(&ds.Chips, bandFactor, 6000, nb, &ds.BankBands)
	if len(ds.Ways) != g.Ways {
		ds.Ways = make([]WayDraws, g.Ways)
	}
	for w := 0; w < g.Ways; w++ {
		wd := &ds.Ways[w]
		sc.WayBatch(&ds.Chips, w, &wd.Way)
		sc.BlocksBatch(&wd.Way, blockDecoder, 1, &wd.Dec)
		sc.BlocksBatch(&wd.Way, blockOutput, 1, &wd.Out)
		sc.BlocksBatch(&wd.Way, blockPreBase, nb, &wd.Pre)
		sc.BlocksBatch(&wd.Way, blockSenseAmp, nb, &wd.SA)
		sc.ChildrenBatch(&wd.SA, 1.0, 9000, 1, &wd.MM)
		sc.RowsBatch(&ds.Bands, int64(w), &wd.Rows)
		sc.RowsBatch(&ds.BankBands, int64(w), &wd.BandRows)
	}
}

// kernelScratch is the draw and derived-column storage of the batched
// kernel, reused across calls so a warm evaluation allocates nothing.
// Columns are refilled per way; sizes are per-lane (n), per bank lane
// (n*banks) or per path lane (n*banks*paths). Scratches are recycled
// through kernelPool so that building a population costs a pool Get
// instead of re-allocating the ~40 column slices per evaluator.
type kernelScratch struct {
	ds        DrawSet              // draw storage for Measure/MeasureBatch
	one, oneH [1]*CacheMeasurement // width-1 views for the scalar entry points

	// stageNom caches stageNominals for stageGeom so a recycled scratch
	// hands the table to its next evaluator without reallocating it.
	stageNom  [][NumStages]float64
	stageGeom Geometry

	chipDL, chipVt []float64 // n

	decGate, decRC   []float64 // n
	outGate, outRC   []float64 // n
	decLeak, outLeak []float64 // n

	preCap, preLeak []float64 // n*banks
	saDL, saVt      []float64 // n*banks
	saGate, saDrive []float64 // n*banks
	saLeak, offset  []float64 // n*banks
	bandRowLeak     []float64 // n*banks

	cellDL, cellVt      []float64 // n*banks*paths
	cellGate, cellDrive []float64 // n*banks*paths
	cellRC, cellLeak    []float64 // n*banks*paths
}

// kernelPool recycles kernel scratches across evaluators. The buffers
// carry no values between uses (every lane is overwritten before it is
// read), only warm capacity; Release returns an evaluator's scratch.
var kernelPool = sync.Pool{New: func() any { return new(kernelScratch) }}

// Release returns the evaluator's pooled kernel buffers for reuse by
// future evaluators. The evaluator must not be used afterwards. An
// evaluator that is never released simply lets its buffers be garbage
// collected; releasing keeps steady-state population builds at a
// handful of allocations.
func (e *Evaluator) Release() {
	if e.ks != nil {
		e.ks.one[0], e.ks.oneH[0] = nil, nil
		kernelPool.Put(e.ks)
		e.ks = nil
	}
}

// grow returns s resized to n lanes, reusing capacity when present.
func grow(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func (ks *kernelScratch) size(n, nb, np int) {
	ks.chipDL = grow(ks.chipDL, n)
	ks.chipVt = grow(ks.chipVt, n)
	ks.decGate = grow(ks.decGate, n)
	ks.decRC = grow(ks.decRC, n)
	ks.outGate = grow(ks.outGate, n)
	ks.outRC = grow(ks.outRC, n)
	ks.decLeak = grow(ks.decLeak, n)
	ks.outLeak = grow(ks.outLeak, n)
	bn := n * nb
	ks.preCap = grow(ks.preCap, bn)
	ks.preLeak = grow(ks.preLeak, bn)
	ks.saDL = grow(ks.saDL, bn)
	ks.saVt = grow(ks.saVt, bn)
	ks.saGate = grow(ks.saGate, bn)
	ks.saDrive = grow(ks.saDrive, bn)
	ks.saLeak = grow(ks.saLeak, bn)
	ks.offset = grow(ks.offset, bn)
	ks.bandRowLeak = grow(ks.bandRowLeak, bn)
	pn := bn * np
	ks.cellDL = grow(ks.cellDL, pn)
	ks.cellVt = grow(ks.cellVt, pn)
	ks.cellGate = grow(ks.cellGate, pn)
	ks.cellDrive = grow(ks.cellDrive, pn)
	ks.cellRC = grow(ks.cellRC, pn)
	ks.cellLeak = grow(ks.cellLeak, pn)
}

// stageNominals precomputes the nominal stage delays of every
// representative path, indexed [bank*PathsPerBank+path][stage]. The
// kernel hardcodes the canonical seven-stage path structure of
// PathStages (addr-bus, decode, global-wl, local-wl, bitline, sense,
// output); only the nominal picoseconds vary with routing distance.
func stageNominals(g Geometry) [][NumStages]float64 {
	sn := make([][NumStages]float64, g.BanksPerWay*g.PathsPerBank)
	totalRows := float64(g.BanksPerWay * g.RowsPerBank)
	for b := 0; b < g.BanksPerWay; b++ {
		for p := 0; p < g.PathsPerBank; p++ {
			rowIdx := p * g.RowsPerBank / g.PathsPerBank
			distFrac := (float64(b*g.RowsPerBank) + float64(rowIdx) + 0.5) / totalRows
			st := PathStages(distFrac)
			for s := range st {
				sn[b*g.PathsPerBank+p][s] = st[s].NominalPS
			}
		}
	}
	return sn
}

// fillDevice derives the device columns (fractional gate-length delta,
// threshold in volts) of a batch, matching circuit.DeviceOf lane-wise.
func fillDevice(spec *variation.Spec, b *variation.Batch, dl, vt []float64) {
	lc, vc := b.Col[variation.Leff], b.Col[variation.Vt]
	for l := range dl {
		dl[l] = spec.DeltaOf(variation.Leff, lc[l])
		vt[l] = vc[l] / 1000
	}
}

// fillGate derives the gate-delay factor column of a batch, matching
// Device.GateDelayFactor lane-wise (one pow per lane instead of one per
// stage — exact, because the factor is a pure function of the draw).
func fillGate(t circuit.Tech, spec *variation.Spec, b *variation.Batch, gate []float64) {
	lc, vc := b.Col[variation.Leff], b.Col[variation.Vt]
	nominal := t.Vdd - t.VtNominal
	maxVt := t.Vdd - 0.05
	for l := range gate {
		dl := spec.DeltaOf(variation.Leff, lc[l])
		vt := vc[l]/1000 + t.DIBL*dl
		if vt > maxVt {
			vt = maxVt
		}
		drive := (1 / (1 + dl)) * math.Pow((t.Vdd-vt)/nominal, t.Alpha)
		gate[l] = (1 + 0.5*dl) / drive
	}
}

// fillDeviceDelay derives the delay-side device columns from dl/vt
// columns already produced by fillDevice: gate-delay factor and drive
// factor (cells need both; the drive also feeds the bitline stage).
func fillDeviceDelay(t circuit.Tech, dl, vt, gate, drive []float64) {
	nominal := t.Vdd - t.VtNominal
	maxVt := t.Vdd - 0.05
	for l := range gate {
		d := dl[l]
		evt := vt[l] + t.DIBL*d
		if evt > maxVt {
			evt = maxVt
		}
		dr := (1 / (1 + d)) * math.Pow((t.Vdd-evt)/nominal, t.Alpha)
		drive[l] = dr
		gate[l] = (1 + 0.5*d) / dr
	}
}

// fillDeviceLeak derives the leakage factor column of a batch, matching
// Device.LeakageFactor lane-wise.
func fillDeviceLeak(t circuit.Tech, spec *variation.Spec, b *variation.Batch, leak []float64) {
	lc, vc := b.Col[variation.Leff], b.Col[variation.Vt]
	maxVt := t.Vdd - 0.05
	for l := range leak {
		dl := spec.DeltaOf(variation.Leff, lc[l])
		evt := vc[l]/1000 + t.DIBL*dl
		if evt > maxVt {
			evt = maxVt
		}
		dvt := evt - t.VtNominal
		leak[l] = (1 / (1 + dl)) * math.Exp(-dvt/t.SubVtSlope)
	}
}

// fillWireRC derives the distributed-RC factor column of a batch,
// matching Wire.RCFactor lane-wise.
func fillWireRC(t circuit.Tech, spec *variation.Spec, b *variation.Batch, rc []float64) {
	wc, tc, hc := b.Col[variation.W], b.Col[variation.T], b.Col[variation.H]
	for l := range rc {
		dw := spec.DeltaOf(variation.W, wc[l])
		dt := spec.DeltaOf(variation.T, tc[l])
		dh := spec.DeltaOf(variation.H, hc[l])
		res := 1 / ((1 + dw) * (1 + dt))
		ground := (1 + dw) / (1 + dh)
		spacing := 1 - dw
		if spacing < 0.05 {
			spacing = 0.05
		}
		coupling := (1 + dt) / spacing
		capf := (1-t.CouplingFrac)*ground + t.CouplingFrac*coupling
		rc[l] = res * capf
	}
}

// fillWireCap derives the capacitance factor column of a batch,
// matching Wire.CapFactor lane-wise (the bitline stage consumes the
// precharge wire's capacitance without its resistance).
func fillWireCap(t circuit.Tech, spec *variation.Spec, b *variation.Batch, capCol []float64) {
	wc, tc, hc := b.Col[variation.W], b.Col[variation.T], b.Col[variation.H]
	for l := range capCol {
		dw := spec.DeltaOf(variation.W, wc[l])
		dt := spec.DeltaOf(variation.T, tc[l])
		dh := spec.DeltaOf(variation.H, hc[l])
		ground := (1 + dw) / (1 + dh)
		spacing := 1 - dw
		if spacing < 0.05 {
			spacing = 0.05
		}
		coupling := (1 + dt) / spacing
		capCol[l] = (1-t.CouplingFrac)*ground + t.CouplingFrac*coupling
	}
}

// fillOffset derives the sense-amp pair offset column: |mismatch Vt -
// systematic sense-amp Vt|, matching the scalar offset computation.
func fillOffset(mm *variation.Batch, saVt, offset []float64) {
	mmVt := mm.Col[variation.Vt]
	for l := range offset {
		off := mmVt[l]/1000 - saVt[l]
		if off < 0 {
			off = -off
		}
		offset[l] = off
	}
}

// LeakState caches the technology-independent leakage aggregates of an
// evaluated batch: the per-(chip, way, bank) band/slot leakage mix and
// the per-(chip, way) periphery leakage-factor sum. Rescaling these by
// a new CellLeakage/PeripheryLeakFrac reproduces a full rebuild bit for
// bit, because the multiplication chain is preserved and the cached
// values are the exact floats the full build computes.
type LeakState struct {
	// Mix is 0.7*bandLeak + 0.3*slotLeak per bank, indexed
	// (chip*Ways+way)*BanksPerWay+bank.
	Mix []float64
	// PeriphSum is the accumulated periphery leakage-factor sum per way,
	// indexed chip*Ways+way.
	PeriphSum []float64
	// PeriphBlocks is the periphery block-count normaliser (identical
	// for every way of every chip).
	PeriphBlocks float64
}

func (ls *LeakState) resize(n int, g Geometry) {
	ls.Mix = grow(ls.Mix, n*g.Ways*g.BanksPerWay)
	ls.PeriphSum = grow(ls.PeriphSum, n*g.Ways)
}

// TechParts classifies which parts of the measurement a technology
// change touches; DiffTech computes it for a pair of technologies. The
// delta-build path re-evaluates only the touched parts from retained
// draws and copies or rescales the rest.
type TechParts struct {
	// Delay: path delays must be re-evaluated (drive/gate/wire/sense
	// factors moved).
	Delay bool
	// LeakFactors: per-device leakage factors must be re-evaluated
	// (the exponential's shape moved).
	LeakFactors bool
	// LeakScale: only the leakage magnitude scaling moved; cached
	// LeakState aggregates can be rescaled without touching draws.
	LeakScale bool
}

// Any reports whether the diff touches anything at all.
func (p TechParts) Any() bool { return p.Delay || p.LeakFactors || p.LeakScale }

// DiffTech classifies the difference between two technology models into
// the measurement parts that must be re-evaluated. Unknown differences
// (a Tech field this classification does not know about) conservatively
// re-evaluate everything.
func DiffTech(a, b circuit.Tech) TechParts {
	var p TechParts
	if a.Vdd != b.Vdd || a.VtNominal != b.VtNominal || a.DIBL != b.DIBL {
		// These enter both the drive overdrive and the leakage
		// exponential.
		p.Delay = true
		p.LeakFactors = true
	}
	if a.Alpha != b.Alpha || a.CouplingFrac != b.CouplingFrac || a.DiffusionFrac != b.DiffusionFrac ||
		a.SenseMarginGain != b.SenseMarginGain || a.SenseMarginMax != b.SenseMarginMax {
		p.Delay = true
	}
	if a.SubVtSlope != b.SubVtSlope {
		p.LeakFactors = true
	}
	if a.CellLeakage != b.CellLeakage || a.PeripheryLeakFrac != b.PeripheryLeakFrac {
		p.LeakScale = true
	}
	if a != b && !p.Any() {
		p.Delay, p.LeakFactors, p.LeakScale = true, true, true
	}
	return p
}

// Eval evaluates every lane of ds into dst under the model's cache
// organisation. dst[l] receives the chip in lane l; storage is
// (re-)prepared in place.
func (e *Evaluator) Eval(ds *DrawSet, dst []*CacheMeasurement) {
	for l := range dst {
		Prepare(dst[l], e.m.Geom)
	}
	e.eval(ds, dst, e.m.HYAPD, true, true, nil)
}

// EvalPair evaluates every lane of ds into both cache organisations:
// the regular one into reg and H-YAPD (derived from the same path
// delays) into hor. When rec is non-nil it captures the leakage
// aggregates for later LeakScale-only delta evaluation.
func (e *Evaluator) EvalPair(ds *DrawSet, reg, hor []*CacheMeasurement, rec *LeakState) {
	n := ds.Len()
	g := e.m.Geom
	if rec != nil {
		rec.resize(n, g)
	}
	for l := 0; l < n; l++ {
		Prepare(reg[l], g)
	}
	e.eval(ds, reg, false, true, true, rec)
	for l := 0; l < n; l++ {
		deriveHYAPD(reg[l], hor[l], g)
	}
}

// EvalPairDelta re-evaluates a retained DrawSet under the evaluator's
// technology, reusing base measurements of the same draws taken under a
// technology whose difference is parts (from DiffTech): untouched parts
// are copied from baseReg, leak aggregates are rescaled from baseLeak
// when only the leakage scaling moved, and only the touched columns are
// recomputed. The result is bit-identical to a full EvalPair of ds
// under the evaluator's technology.
func (e *Evaluator) EvalPairDelta(ds *DrawSet, parts TechParts, baseReg []*CacheMeasurement,
	baseLeak *LeakState, reg, hor []*CacheMeasurement) {
	n := ds.Len()
	g := e.m.Geom
	for l := 0; l < n; l++ {
		Prepare(reg[l], g)
	}
	if !parts.Delay {
		for l := 0; l < n; l++ {
			copyDelayInto(reg[l], baseReg[l])
		}
	}
	if !parts.LeakFactors {
		if parts.LeakScale {
			e.rescaleLeak(baseLeak, reg)
		} else {
			for l := 0; l < n; l++ {
				copyLeakInto(reg[l], baseReg[l])
			}
		}
	}
	if parts.Delay || parts.LeakFactors {
		e.eval(ds, reg, false, parts.Delay, parts.LeakFactors, nil)
	}
	for l := 0; l < n; l++ {
		deriveHYAPD(reg[l], hor[l], g)
	}
}

// MeasureBatch samples and evaluates the given chips in one pass;
// dst[l] receives chip ids[l]. Warm calls are allocation-free.
func (e *Evaluator) MeasureBatch(ids []int, dst []*CacheMeasurement) {
	ds := &e.ks.ds
	e.Sample(ids, ds)
	for l := range dst {
		Prepare(dst[l], e.m.Geom)
	}
	e.eval(ds, dst, e.m.HYAPD, true, true, nil)
}

// MeasurePairBatch samples the given chips once and evaluates both
// cache organisations; reg[l]/hor[l] receive chip ids[l]. Warm calls
// are allocation-free.
func (e *Evaluator) MeasurePairBatch(ids []int, reg, hor []*CacheMeasurement) {
	ds := &e.ks.ds
	e.Sample(ids, ds)
	e.EvalPair(ds, reg, hor, nil)
}

// eval is the kernel core: derive factor columns per region, then
// assemble measurements lane by lane in the scalar accumulation order.
// dst lanes must already be Prepared (or, in delta mode, carry the
// copied untouched parts). doDelay/doLeak select which halves run; rec,
// when non-nil, captures leakage aggregates (requires doLeak).
func (e *Evaluator) eval(ds *DrawSet, dst []*CacheMeasurement, hyapd, doDelay, doLeak bool, rec *LeakState) {
	m := e.m
	t := m.Tech
	g := m.Geom
	spec := e.sc.Spec()
	n := ds.Len()
	nb, np := g.BanksPerWay, g.PathsPerBank
	ks := e.ks
	ks.size(n, nb, np)

	if doDelay {
		fillDevice(spec, &ds.Chips, ks.chipDL, ks.chipVt)
	}
	cellsPerBank := float64(g.CellsPerBank())
	cellsPerWay := float64(g.CellsPerWay())
	nbf := float64(nb)
	npf := float64(np)
	resid := 1 - replicaTracking

	for w := 0; w < g.Ways; w++ {
		wd := &ds.Ways[w]
		if doDelay {
			fillGate(t, spec, &wd.Dec, ks.decGate)
			fillWireRC(t, spec, &wd.Dec, ks.decRC)
			fillGate(t, spec, &wd.Out, ks.outGate)
			fillWireRC(t, spec, &wd.Out, ks.outRC)
			fillWireCap(t, spec, &wd.Pre, ks.preCap)
			fillDevice(spec, &wd.SA, ks.saDL, ks.saVt)
			fillDeviceDelay(t, ks.saDL, ks.saVt, ks.saGate, ks.saDrive)
			fillOffset(&wd.MM, ks.saVt, ks.offset)
			fillDevice(spec, &wd.Rows, ks.cellDL, ks.cellVt)
			fillDeviceDelay(t, ks.cellDL, ks.cellVt, ks.cellGate, ks.cellDrive)
			fillWireRC(t, spec, &wd.Rows, ks.cellRC)

			for c := 0; c < n; c++ {
				cm := dst[c]
				wm := &cm.Ways[w]
				chipDL, chipVt := ks.chipDL[c], ks.chipVt[c]
				decG, decR := ks.decGate[c], ks.decRC[c]
				outG, outR := ks.outGate[c], ks.outRC[c]
				for b := 0; b < nb; b++ {
					bl := c*nb + b
					bm := &wm.Banks[b]
					off := ks.offset[bl]
					saDL, saVt := ks.saDL[bl], ks.saVt[bl]
					saG, preC := ks.saGate[bl], ks.preCap[bl]
					for p := 0; p < np; p++ {
						pl := bl*np + p
						cellDL, cellVt := ks.cellDL[pl], ks.cellVt[pl]
						// saEff mirrors the scalar expression term for
						// term; see measureWay for the physics.
						saEff := circuit.Device{
							DLeff: 0.5*(saDL-chipDL) + (cellDL - chipDL) +
								resid*chipDL,
							VtV: t.VtNominal + senseOffsetScale*off +
								0.5*(saVt-chipVt) + (cellVt - chipVt) +
								resid*(chipVt-t.VtNominal),
						}
						margin := circuit.SenseMargin(t, saEff)
						sn := &e.stageNom[b*np+p]
						delay := 0.0
						delay += sn[0] * decR                                      // addr-bus
						delay += sn[1] * decG                                      // decode
						delay += sn[2] * decR                                      // global-wl
						delay += sn[3] * (0.5*ks.cellGate[pl] + 0.5*ks.cellRC[pl]) // local-wl
						capf := t.DiffusionFrac*(1+cellDL) + (1-t.DiffusionFrac)*preC
						delay += sn[4] * capf / ks.cellDrive[pl] * margin // bitline
						delay += sn[5] * saG * margin                     // sense
						delay += sn[6] * (0.5*outG + 0.5*outR)            // output
						if hyapd {
							delay *= HYAPDLatencyPenalty
						}
						bm.Paths[p] = PathMeasurement{Bank: b, Slot: p, DelayPS: delay}
						if delay > bm.MaxPS {
							bm.MaxPS = delay
						}
					}
					if bm.MaxPS > wm.LatencyPS {
						wm.LatencyPS = bm.MaxPS
					}
				}
				if wm.LatencyPS > cm.LatencyPS {
					cm.LatencyPS = wm.LatencyPS
				}
			}
		}

		if doLeak {
			fillDeviceLeak(t, spec, &wd.Dec, ks.decLeak)
			fillDeviceLeak(t, spec, &wd.Out, ks.outLeak)
			fillDeviceLeak(t, spec, &wd.Pre, ks.preLeak)
			fillDeviceLeak(t, spec, &wd.SA, ks.saLeak)
			fillDeviceLeak(t, spec, &wd.Rows, ks.cellLeak)
			fillDeviceLeak(t, spec, &wd.BandRows, ks.bandRowLeak)

			for c := 0; c < n; c++ {
				cm := dst[c]
				wm := &cm.Ways[w]
				periphLeakSum := ks.decLeak[c] + ks.outLeak[c]
				periphBlocks := 2.0
				arrayLeakTotal := 0.0
				for b := 0; b < nb; b++ {
					bl := c*nb + b
					bm := &wm.Banks[b]
					periphLeakSum += (ks.preLeak[bl] + ks.saLeak[bl]) / nbf
					periphBlocks += 2.0 / nbf
					bankLeakSum := 0.0
					base := bl * np
					for p := 0; p < np; p++ {
						bankLeakSum += ks.cellLeak[base+p]
					}
					bandLeak := ks.bandRowLeak[bl]
					slotLeak := bankLeakSum / npf
					mix := 0.7*bandLeak + 0.3*slotLeak
					bm.ArrayLeakW = t.CellLeakage * cellsPerBank * mix
					arrayLeakTotal += bm.ArrayLeakW
					if rec != nil {
						rec.Mix[(c*g.Ways+w)*nb+b] = mix
					}
				}
				wm.PeriphLeakW = t.PeripheryLeakFrac * t.CellLeakage *
					cellsPerWay * periphLeakSum / periphBlocks
				wm.LeakageW = arrayLeakTotal + wm.PeriphLeakW
				cm.LeakageW += wm.LeakageW
				if rec != nil {
					rec.PeriphSum[c*g.Ways+w] = periphLeakSum
				}
			}
		}
	}
	if rec != nil {
		// Replicate the scalar accumulation of the block-count
		// normaliser so the cached value matches bit for bit.
		pb := 2.0
		for b := 0; b < nb; b++ {
			pb += 2.0 / nbf
		}
		rec.PeriphBlocks = pb
	}
}

// rescaleLeak fills the leakage side of dst from cached aggregates
// under the evaluator's technology — the LeakScale-only delta path.
// dst must be Prepared (LeakageW zero).
func (e *Evaluator) rescaleLeak(ls *LeakState, dst []*CacheMeasurement) {
	t := e.m.Tech
	g := e.m.Geom
	cellsPerBank := float64(g.CellsPerBank())
	cellsPerWay := float64(g.CellsPerWay())
	nb := g.BanksPerWay
	for c, cm := range dst {
		for w := range cm.Ways {
			wm := &cm.Ways[w]
			arrayLeakTotal := 0.0
			for b := range wm.Banks {
				bm := &wm.Banks[b]
				bm.ArrayLeakW = t.CellLeakage * cellsPerBank * ls.Mix[(c*g.Ways+w)*nb+b]
				arrayLeakTotal += bm.ArrayLeakW
			}
			wm.PeriphLeakW = t.PeripheryLeakFrac * t.CellLeakage *
				cellsPerWay * ls.PeriphSum[c*g.Ways+w] / ls.PeriphBlocks
			wm.LeakageW = arrayLeakTotal + wm.PeriphLeakW
			cm.LeakageW += wm.LeakageW
		}
	}
}

// copyDelayInto copies the delay side of a measurement (path delays and
// all latency maxima) between identically-sized measurements.
func copyDelayInto(dst, src *CacheMeasurement) {
	dst.LatencyPS = src.LatencyPS
	for w := range dst.Ways {
		dw, sw := &dst.Ways[w], &src.Ways[w]
		dw.LatencyPS = sw.LatencyPS
		for b := range dw.Banks {
			db, sb := &dw.Banks[b], &sw.Banks[b]
			db.MaxPS = sb.MaxPS
			copy(db.Paths, sb.Paths)
		}
	}
}

// copyLeakInto copies the leakage side of a measurement between
// identically-sized measurements.
func copyLeakInto(dst, src *CacheMeasurement) {
	dst.LeakageW = src.LeakageW
	for w := range dst.Ways {
		dw, sw := &dst.Ways[w], &src.Ways[w]
		dw.PeriphLeakW = sw.PeriphLeakW
		dw.LeakageW = sw.LeakageW
		for b := range dw.Banks {
			dw.Banks[b].ArrayLeakW = sw.Banks[b].ArrayLeakW
		}
	}
}
