package sram

import (
	"math"
	"testing"

	"yieldcache/internal/circuit"
	"yieldcache/internal/stats"
	"yieldcache/internal/variation"
)

func testSampler(seed int64) *variation.Sampler {
	return variation.NewSampler(variation.Nassif45nm(), variation.PaperFactors(), seed)
}

func TestGeometryPaper(t *testing.T) {
	g := Paper16KB()
	if g.Ways != 4 || g.BanksPerWay != 4 || g.RowsPerBank != 64 || g.BitsPerRow != 128 {
		t.Errorf("geometry does not match Section 3: %+v", g)
	}
	// 4 ways x 4 banks x 64 x 128 bits = 16 KB.
	bits := g.Ways * g.BanksPerWay * g.RowsPerBank * g.BitsPerRow
	if bits != 16*1024*8 {
		t.Errorf("total capacity = %d bits, want 16KB", bits)
	}
	if g.CellsPerBank() != 8192 || g.CellsPerWay() != 32768 {
		t.Errorf("cell counts wrong: bank %d way %d", g.CellsPerBank(), g.CellsPerWay())
	}
}

func TestNominalStagesDistance(t *testing.T) {
	near := NominalStages(0)
	far := NominalStages(1)
	var nearSum, farSum float64
	for i := range near {
		nearSum += near[i].NominalPS
		farSum += far[i].NominalPS
	}
	if farSum <= nearSum {
		t.Error("far rows must have longer nominal paths than near rows")
	}
	// Total nominal access should be in the hundreds of picoseconds.
	if farSum < 300 || farSum > 800 {
		t.Errorf("nominal far-path delay = %v ps, outside plausible 45nm range", farSum)
	}
}

func TestMeasureShape(t *testing.T) {
	m := NewModel(circuit.PTM45(), false)
	cm := m.Measure(testSampler(1).Chip(0))
	if len(cm.Ways) != 4 {
		t.Fatalf("ways = %d", len(cm.Ways))
	}
	for wi, w := range cm.Ways {
		if len(w.Banks) != 4 {
			t.Fatalf("way %d banks = %d", wi, len(w.Banks))
		}
		if w.LatencyPS <= 0 || w.LeakageW <= 0 {
			t.Errorf("way %d non-positive measurement: %v ps, %v W", wi, w.LatencyPS, w.LeakageW)
		}
		maxBank := 0.0
		leak := w.PeriphLeakW
		for _, b := range w.Banks {
			if len(b.Paths) != 4 {
				t.Fatalf("paths per bank = %d", len(b.Paths))
			}
			if b.MaxPS > maxBank {
				maxBank = b.MaxPS
			}
			leak += b.ArrayLeakW
			for _, p := range b.Paths {
				if p.DelayPS <= 0 || p.DelayPS > b.MaxPS+1e-9 {
					t.Errorf("path delay %v inconsistent with bank max %v", p.DelayPS, b.MaxPS)
				}
			}
		}
		if math.Abs(maxBank-w.LatencyPS) > 1e-9 {
			t.Errorf("way latency %v != max bank %v", w.LatencyPS, maxBank)
		}
		if math.Abs(leak-w.LeakageW) > 1e-9*leak {
			t.Errorf("way leakage %v != sum of parts %v", w.LeakageW, leak)
		}
	}
	wantLat := 0.0
	wantLeak := 0.0
	for _, w := range cm.Ways {
		if w.LatencyPS > wantLat {
			wantLat = w.LatencyPS
		}
		wantLeak += w.LeakageW
	}
	if cm.LatencyPS != wantLat {
		t.Errorf("cache latency %v != slowest way %v", cm.LatencyPS, wantLat)
	}
	if math.Abs(cm.LeakageW-wantLeak) > 1e-9*wantLeak {
		t.Errorf("cache leakage %v != sum %v", cm.LeakageW, wantLeak)
	}
}

func TestMeasureDeterminism(t *testing.T) {
	m := NewModel(circuit.PTM45(), false)
	s := testSampler(42)
	a := m.Measure(s.Chip(7))
	b := m.Measure(s.Chip(7))
	if a.LatencyPS != b.LatencyPS || a.LeakageW != b.LeakageW {
		t.Error("measurement is not deterministic for the same chip")
	}
	c := m.Measure(s.Chip(8))
	if a.LatencyPS == c.LatencyPS {
		t.Error("different chips produced identical latency")
	}
}

func TestHYAPDPenalty(t *testing.T) {
	// With the same variation draws, the H-YAPD organisation must be
	// exactly 2.5% slower on every path and identical in leakage.
	reg := NewModel(circuit.PTM45(), false)
	hor := NewModel(circuit.PTM45(), true)
	s := testSampler(3)
	for id := 0; id < 20; id++ {
		chip := s.Chip(id)
		a := reg.Measure(chip)
		b := hor.Measure(chip)
		if math.Abs(b.LatencyPS/a.LatencyPS-HYAPDLatencyPenalty) > 1e-9 {
			t.Fatalf("chip %d: H-YAPD latency ratio = %v, want %v",
				id, b.LatencyPS/a.LatencyPS, HYAPDLatencyPenalty)
		}
		if math.Abs(b.LeakageW-a.LeakageW) > 1e-9*a.LeakageW {
			t.Fatalf("chip %d: H-YAPD changed leakage", id)
		}
	}
}

func TestLatencyWithoutBank(t *testing.T) {
	m := NewModel(circuit.PTM45(), true)
	cm := m.Measure(testSampler(4).Chip(1))
	w := cm.Ways[0]
	// Find the critical bank; removing it must not increase latency and
	// removing any other bank must leave latency unchanged.
	crit := 0
	for i, b := range w.Banks {
		if b.MaxPS == w.LatencyPS {
			crit = i
		}
	}
	if got := w.LatencyWithoutBank(crit); got > w.LatencyPS {
		t.Errorf("removing critical bank raised latency: %v > %v", got, w.LatencyPS)
	}
	other := (crit + 1) % len(w.Banks)
	if got := w.LatencyWithoutBank(other); math.Abs(got-w.LatencyPS) > 1e-9 {
		t.Errorf("removing non-critical bank changed latency: %v != %v", got, w.LatencyPS)
	}
}

func TestLeakageWithoutBank(t *testing.T) {
	m := NewModel(circuit.PTM45(), true)
	w := m.Measure(testSampler(5).Chip(2)).Ways[1]
	for b := range w.Banks {
		got := w.LeakageWithoutBank(b)
		want := w.LeakageW - w.Banks[b].ArrayLeakW
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("bank %d: LeakageWithoutBank = %v, want %v", b, got, want)
		}
		if got <= w.PeriphLeakW {
			t.Errorf("bank %d: removing one bank cannot eliminate other banks' leakage", b)
		}
	}
}

func TestPopulationDistributions(t *testing.T) {
	// The Monte Carlo population must have the gross statistical shape
	// Section 5.1 depends on: meaningful latency spread, heavy-tailed
	// leakage (mean well above median), strong inter-way latency
	// correlation, and the inverse latency-leakage relation of Figure 8.
	if testing.Short() {
		t.Skip("population statistics need a few hundred chips")
	}
	m := NewModel(circuit.PTM45(), false)
	s := testSampler(6)
	n := 600
	lat := make([]float64, n)
	leak := make([]float64, n)
	w0 := make([]float64, n)
	w3 := make([]float64, n)
	for i := 0; i < n; i++ {
		cm := m.Measure(s.Chip(i))
		lat[i] = cm.LatencyPS
		leak[i] = cm.LeakageW
		w0[i] = cm.Ways[0].LatencyPS
		w3[i] = cm.Ways[3].LatencyPS
	}
	mLat, sLat := stats.MeanStd(lat)
	if cv := sLat / mLat; cv < 0.03 || cv > 0.40 {
		t.Errorf("latency coefficient of variation = %v, want a meaningful spread (3%%..40%%)", cv)
	}
	mLeak := stats.Mean(leak)
	medLeak := stats.Percentile(leak, 50)
	if mLeak/medLeak < 1.05 {
		t.Errorf("leakage mean/median = %v, want a right-skewed (heavy-tailed) distribution", mLeak/medLeak)
	}
	if c := stats.Correlation(w0, w3); c < 0.5 {
		t.Errorf("inter-way latency correlation = %v, want strong (the premise of Section 4.2)", c)
	}
	if c := stats.Correlation(lat, leak); c > -0.1 {
		t.Errorf("latency-leakage correlation = %v, want clearly negative (fast chips leak)", c)
	}
}
