package variation

import "fmt"

// TechNode identifies a process technology node by its drawn gate
// length in nanometres.
type TechNode int

// The technology nodes of the Figure 1 trend discussion.
const (
	Node90 TechNode = 90
	Node65 TechNode = 65
	Node45 TechNode = 45
	Node32 TechNode = 32
)

// SpecAt returns a process specification for the given node. The 45 nm
// spec is Table 1 (Nassif's limits); the other nodes scale it along the
// trends Section 1 describes: geometric dimensions shrink roughly with
// the node, while *relative* variation grows as feature sizes approach
// atomic granularity (channel-length control, dopant fluctuation and
// metal CMP all worsen) — which is exactly why Figure 1's parametric
// yield loss explodes below 130 nm.
func SpecAt(n TechNode) (Spec, error) {
	base := Nassif45nm()
	switch n {
	case Node45:
		return base, nil
	case Node90:
		return Spec{
			Nominal:   Values{Leff: 90, Vt: 280, W: 0.45, T: 0.85, H: 0.30},
			Sigma3Pct: Values{Leff: 6, Vt: 12, W: 25, T: 25, H: 27},
		}, nil
	case Node65:
		return Spec{
			Nominal:   Values{Leff: 65, Vt: 250, W: 0.32, T: 0.65, H: 0.20},
			Sigma3Pct: Values{Leff: 8, Vt: 15, W: 29, T: 29, H: 31},
		}, nil
	case Node32:
		return Spec{
			Nominal:   Values{Leff: 32, Vt: 200, W: 0.18, T: 0.40, H: 0.11},
			Sigma3Pct: Values{Leff: 13, Vt: 22, W: 38, T: 38, H: 40},
		}, nil
	default:
		return Spec{}, fmt.Errorf("variation: no specification for %d nm", int(n))
	}
}

// Nodes lists the supported nodes newest-last (the Figure 1 x-axis
// direction).
func Nodes() []TechNode { return []TechNode{Node90, Node65, Node45, Node32} }
