package variation

import "yieldcache/internal/stats"

// Sampler draws correlated process-variation parameters for a population
// of chips. Chip i's entire parameter tree is a deterministic function of
// (seed, i), so populations are reproducible and independent of
// evaluation order.
type Sampler struct {
	spec Spec
	fact Factors
	seed int64
}

// NewSampler returns a sampler for the given process spec, correlation
// factors and master seed.
func NewSampler(spec Spec, fact Factors, seed int64) *Sampler {
	return &Sampler{spec: spec, fact: fact, seed: seed}
}

// Spec returns the process specification the sampler draws from.
func (s *Sampler) Spec() Spec { return s.spec }

// Factors returns the correlation factors in use.
func (s *Sampler) Factors() Factors { return s.fact }

// Chip returns the root variation node for chip id. The root draw covers
// the combined inter-die and way-0 intra-die variation: parameters are
// drawn around the Table 1 nominals inside the full 3-sigma window.
func (s *Sampler) Chip(id int) *Node {
	rng := stats.NewRNG(s.seed).Split(int64(id) + 1)
	n := &Node{spec: s.spec, fact: s.fact, rng: rng}
	for p := Param(0); p < NumParams; p++ {
		n.Values[p] = rng.TruncNormal(s.spec.Nominal[p], s.spec.Sigma(p), s.spec.Bound(p))
	}
	return n
}

// Node is one region of the chip with its sampled parameter values.
// Child regions are drawn around the node's values with the Table 1
// range scaled by a correlation factor.
type Node struct {
	Values Values
	spec   Spec
	fact   Factors
	rng    *stats.RNG
}

// Child draws a sub-region correlated with n: each parameter is redrawn
// with mean n.Values[p] and the Table 1 sigma and 3-sigma window scaled
// by factor. label distinguishes siblings; the same (node, factor, label)
// always yields the same child.
func (n *Node) Child(factor float64, label int64) *Node {
	rng := n.rng.Split(label)
	c := &Node{spec: n.spec, fact: n.fact, rng: rng}
	if factor <= 0 {
		c.Values = n.Values
		return c
	}
	for p := Param(0); p < NumParams; p++ {
		c.Values[p] = rng.TruncNormal(n.Values[p], factor*n.spec.Sigma(p), factor*n.spec.Bound(p))
	}
	return c
}

// Way returns the variation node for way i (0..3) of the cache, using
// the 2x2-mesh way factors. Way 0 is perfectly correlated with the chip
// root (it *is* the reference region).
func (n *Node) Way(i int) *Node {
	return n.Child(n.fact.WayFactor(i), int64(1000+i))
}

// Block returns the variation node for a circuit block (decoder,
// precharge, cell array, sense amplifiers, output drivers) of a region.
func (n *Node) Block(label int64) *Node {
	return n.Child(n.fact.Block, 2000+label)
}

// Row returns the variation node for one row (word line) of a bank.
func (n *Node) Row(label int64) *Node {
	return n.Child(n.fact.Row, 3000+label)
}

// Bit returns the variation node for one bit cell of a row.
func (n *Node) Bit(label int64) *Node {
	return n.Child(n.fact.Bit, 4000+label)
}

// Delta returns the fractional deviation of parameter p from nominal:
// (value - nominal) / nominal. Circuit models consume deltas so they
// stay unit-agnostic.
func (n *Node) Delta(p Param) float64 {
	return n.spec.DeltaOf(p, n.Values[p])
}

// AsDraw returns the node's value-typed form for the scratch-based
// measurement path. The draw reproduces the node exactly: same values,
// and children derived from it match the node's children draw for draw.
func (n *Node) AsDraw() Draw {
	return Draw{Values: n.Values, seed: n.rng.Seed()}
}

// NewScratch returns a scratch sharing the node's spec and correlation
// factors, for deriving the node's subtree without allocation.
func (n *Node) NewScratch() *Scratch {
	return &Scratch{spec: n.spec, fact: n.fact, seed: n.rng.Seed(), rng: stats.NewRNG(0)}
}

// Draw is a value-typed variation node: the sampled parameter values
// plus the seed of the node's random stream, from which children are
// derived. Unlike Node it carries no generator or spec of its own —
// a Scratch performs the sampling — so the Monte Carlo measurement
// kernel can hold draws in reusable buffers with zero heap traffic.
type Draw struct {
	Values Values
	seed   int64
}

// Scratch is the per-worker sampling state of the allocation-free
// measurement path: one reusable generator plus the spec and factors.
// A Scratch draws exactly the streams the Node tree would — chip i's
// subtree is a pure function of (seed, i) either way — but repositions
// one generator per region instead of allocating one. Not safe for
// concurrent use; give each worker its own.
type Scratch struct {
	spec Spec
	fact Factors
	seed int64 // master sampler seed, used by Chip
	rng  *stats.RNG
}

// NewScratch returns a scratch drawing from the sampler's process spec,
// correlation factors and master seed.
func (s *Sampler) NewScratch() *Scratch {
	return &Scratch{spec: s.spec, fact: s.fact, seed: s.seed, rng: stats.NewRNG(0)}
}

// Spec returns the process specification the scratch draws from.
func (sc *Scratch) Spec() *Spec { return &sc.spec }

// Chip returns the root draw for chip id, identical to
// Sampler.Chip(id).Values.
func (sc *Scratch) Chip(id int) Draw {
	seed := stats.MixSeed(sc.seed, int64(id)+1)
	sc.rng.Reseed(seed)
	d := Draw{seed: seed}
	for p := Param(0); p < NumParams; p++ {
		d.Values[p] = sc.rng.TruncNormal(sc.spec.Nominal[p], sc.spec.Sigma(p), sc.spec.Bound(p))
	}
	return d
}

// Child draws a sub-region correlated with parent, mirroring Node.Child.
func (sc *Scratch) Child(parent *Draw, factor float64, label int64) Draw {
	seed := stats.MixSeed(parent.seed, label)
	d := Draw{seed: seed}
	if factor <= 0 {
		d.Values = parent.Values
		return d
	}
	sc.rng.Reseed(seed)
	for p := Param(0); p < NumParams; p++ {
		d.Values[p] = sc.rng.TruncNormal(parent.Values[p], factor*sc.spec.Sigma(p), factor*sc.spec.Bound(p))
	}
	return d
}

// Way mirrors Node.Way for draws.
func (sc *Scratch) Way(parent *Draw, i int) Draw {
	return sc.Child(parent, sc.fact.WayFactor(i), int64(1000+i))
}

// Block mirrors Node.Block for draws.
func (sc *Scratch) Block(parent *Draw, label int64) Draw {
	return sc.Child(parent, sc.fact.Block, 2000+label)
}

// Row mirrors Node.Row for draws.
func (sc *Scratch) Row(parent *Draw, label int64) Draw {
	return sc.Child(parent, sc.fact.Row, 3000+label)
}

// Bit mirrors Node.Bit for draws.
func (sc *Scratch) Bit(parent *Draw, label int64) Draw {
	return sc.Child(parent, sc.fact.Bit, 4000+label)
}

// Delta returns the fractional deviation of parameter p from nominal
// for a draw, mirroring Node.Delta.
func (sc *Scratch) Delta(d *Draw, p Param) float64 {
	return sc.spec.DeltaOf(p, d.Values[p])
}
