package variation

import "yieldcache/internal/stats"

// Sampler draws correlated process-variation parameters for a population
// of chips. Chip i's entire parameter tree is a deterministic function of
// (seed, i), so populations are reproducible and independent of
// evaluation order.
type Sampler struct {
	spec Spec
	fact Factors
	seed int64
}

// NewSampler returns a sampler for the given process spec, correlation
// factors and master seed.
func NewSampler(spec Spec, fact Factors, seed int64) *Sampler {
	return &Sampler{spec: spec, fact: fact, seed: seed}
}

// Spec returns the process specification the sampler draws from.
func (s *Sampler) Spec() Spec { return s.spec }

// Factors returns the correlation factors in use.
func (s *Sampler) Factors() Factors { return s.fact }

// Chip returns the root variation node for chip id. The root draw covers
// the combined inter-die and way-0 intra-die variation: parameters are
// drawn around the Table 1 nominals inside the full 3-sigma window.
func (s *Sampler) Chip(id int) *Node {
	rng := stats.NewRNG(s.seed).Split(int64(id) + 1)
	n := &Node{spec: s.spec, fact: s.fact, rng: rng}
	for p := Param(0); p < NumParams; p++ {
		n.Values[p] = rng.TruncNormal(s.spec.Nominal[p], s.spec.Sigma(p), s.spec.Bound(p))
	}
	return n
}

// Node is one region of the chip with its sampled parameter values.
// Child regions are drawn around the node's values with the Table 1
// range scaled by a correlation factor.
type Node struct {
	Values Values
	spec   Spec
	fact   Factors
	rng    *stats.RNG
}

// Child draws a sub-region correlated with n: each parameter is redrawn
// with mean n.Values[p] and the Table 1 sigma and 3-sigma window scaled
// by factor. label distinguishes siblings; the same (node, factor, label)
// always yields the same child.
func (n *Node) Child(factor float64, label int64) *Node {
	rng := n.rng.Split(label)
	c := &Node{spec: n.spec, fact: n.fact, rng: rng}
	if factor <= 0 {
		c.Values = n.Values
		return c
	}
	for p := Param(0); p < NumParams; p++ {
		c.Values[p] = rng.TruncNormal(n.Values[p], factor*n.spec.Sigma(p), factor*n.spec.Bound(p))
	}
	return c
}

// Way returns the variation node for way i (0..3) of the cache, using
// the 2x2-mesh way factors. Way 0 is perfectly correlated with the chip
// root (it *is* the reference region).
func (n *Node) Way(i int) *Node {
	return n.Child(n.fact.WayFactor(i), int64(1000+i))
}

// Block returns the variation node for a circuit block (decoder,
// precharge, cell array, sense amplifiers, output drivers) of a region.
func (n *Node) Block(label int64) *Node {
	return n.Child(n.fact.Block, 2000+label)
}

// Row returns the variation node for one row (word line) of a bank.
func (n *Node) Row(label int64) *Node {
	return n.Child(n.fact.Row, 3000+label)
}

// Bit returns the variation node for one bit cell of a row.
func (n *Node) Bit(label int64) *Node {
	return n.Child(n.fact.Bit, 4000+label)
}

// Delta returns the fractional deviation of parameter p from nominal:
// (value - nominal) / nominal. Circuit models consume deltas so they
// stay unit-agnostic.
func (n *Node) Delta(p Param) float64 {
	nom := n.spec.Nominal[p]
	if nom == 0 {
		return 0
	}
	return (n.Values[p] - nom) / nom
}
