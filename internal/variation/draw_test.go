package variation

import "testing"

// TestScratchMatchesNodeTree pins the shared-draw contract: the
// value-typed scratch path must reproduce the pointer-based node tree
// draw for draw, at every level of the hierarchy.
func TestScratchMatchesNodeTree(t *testing.T) {
	s := NewSampler(Nassif45nm(), PaperFactors(), 2006)
	sc := s.NewScratch()
	for id := 0; id < 25; id++ {
		root := s.Chip(id)
		rootD := sc.Chip(id)
		if root.Values != rootD.Values {
			t.Fatalf("chip %d: root values differ\nnode:  %v\ndraw:  %v", id, root.Values, rootD.Values)
		}
		for w := 0; w < 4; w++ {
			way := root.Way(w)
			wayD := sc.Way(&rootD, w)
			if way.Values != wayD.Values {
				t.Fatalf("chip %d way %d: values differ", id, w)
			}
			blk := way.Block(3)
			blkD := sc.Block(&wayD, 3)
			if blk.Values != blkD.Values {
				t.Fatalf("chip %d way %d block: values differ", id, w)
			}
			row := blk.Row(9)
			rowD := sc.Row(&blkD, 9)
			if row.Values != rowD.Values {
				t.Fatalf("chip %d way %d row: values differ", id, w)
			}
			bit := row.Bit(1)
			bitD := sc.Bit(&rowD, 1)
			if bit.Values != bitD.Values {
				t.Fatalf("chip %d way %d bit: values differ", id, w)
			}
			mm := blk.Child(1.0, 9000)
			mmD := sc.Child(&blkD, 1.0, 9000)
			if mm.Values != mmD.Values {
				t.Fatalf("chip %d way %d full-range child: values differ", id, w)
			}
			for p := Param(0); p < NumParams; p++ {
				if row.Delta(p) != sc.Delta(&rowD, p) {
					t.Fatalf("chip %d way %d param %v: deltas differ", id, w, p)
				}
			}
		}
	}
}

// TestAsDrawBridges checks that a Node can enter the scratch path
// mid-tree and keep producing identical subtrees.
func TestAsDrawBridges(t *testing.T) {
	s := NewSampler(Nassif45nm(), PaperFactors(), 7)
	n := s.Chip(3).Way(2)
	d := n.AsDraw()
	sc := n.NewScratch()
	if n.Values != d.Values {
		t.Fatal("AsDraw changed values")
	}
	a := n.Block(5).Row(1)
	bD := sc.Block(&d, 5)
	b := sc.Row(&bD, 1)
	if a.Values != b.Values {
		t.Fatal("subtree from AsDraw diverges from node subtree")
	}
}

// TestScratchZeroAlloc verifies drawing through a warm scratch never
// touches the heap.
func TestScratchZeroAlloc(t *testing.T) {
	s := NewSampler(Nassif45nm(), PaperFactors(), 2006)
	sc := s.NewScratch()
	allocs := testing.AllocsPerRun(100, func() {
		chip := sc.Chip(11)
		way := sc.Way(&chip, 3)
		blk := sc.Block(&way, 2)
		sc.Row(&blk, 4)
	})
	if allocs != 0 {
		t.Errorf("scratch draws allocate %.1f times per run, want 0", allocs)
	}
}
