package variation

import "yieldcache/internal/stats"

// Batch is a structure-of-arrays set of draws: one flat column per
// variation source plus the per-lane stream seeds. It is the batched
// counterpart of Draw for the column-major measurement kernel — a
// worker samples the same region node of several chips into one Batch,
// then evaluates the batch with straight-line loops over the columns.
// Lane l of a Batch corresponds to Draw{Values: {Col[p][l]...},
// seed: Seeds[l]}; the scalar and batched forms are interchangeable
// bit for bit. Buffers are reused across Resize calls, so a warm Batch
// costs no allocation.
type Batch struct {
	// Seeds holds the per-lane stream seeds (children are derived from
	// them exactly as Draw children are).
	Seeds []int64
	// Col holds one column per variation source: Col[p][l] is the value
	// of parameter p in lane l.
	Col [NumParams][]float64

	n    int
	view [][]float64 // Col as a slice-of-slices, for stats batch calls
}

// Len returns the number of lanes currently in the batch.
func (b *Batch) Len() int { return b.n }

// Resize sets the batch to n lanes, reusing buffer capacity. Lane
// contents are unspecified after a resize; callers fill every lane.
func (b *Batch) Resize(n int) {
	if cap(b.Seeds) < n {
		b.Seeds = make([]int64, n)
		for p := range b.Col {
			b.Col[p] = make([]float64, n)
		}
	} else {
		b.Seeds = b.Seeds[:n]
		for p := range b.Col {
			b.Col[p] = b.Col[p][:n]
		}
	}
	if b.view == nil {
		b.view = make([][]float64, NumParams)
	}
	for p := range b.Col {
		b.view[p] = b.Col[p]
	}
	b.n = n
}

// Lane returns the scalar Draw view of lane l.
func (b *Batch) Lane(l int) Draw {
	d := Draw{seed: b.Seeds[l]}
	for p := range b.Col {
		d.Values[p] = b.Col[p][l]
	}
	return d
}

// SetLane overwrites lane l with the given draw.
func (b *Batch) SetLane(l int, d *Draw) {
	b.Seeds[l] = d.seed
	for p := range b.Col {
		b.Col[p][l] = d.Values[p]
	}
}

// ChipBatch fills dst with the root draws of the given chip ids, lane
// i holding chip ids[i]. Each lane is bit-identical to Scratch.Chip of
// the same id.
func (sc *Scratch) ChipBatch(ids []int, dst *Batch) {
	dst.Resize(len(ids))
	for l, id := range ids {
		dst.Seeds[l] = stats.MixSeed(sc.seed, int64(id)+1)
	}
	var sigma, bound [NumParams]float64
	for p := Param(0); p < NumParams; p++ {
		sigma[p] = sc.spec.Sigma(p)
		bound[p] = sc.spec.Bound(p)
		col := dst.Col[p]
		nom := sc.spec.Nominal[p]
		for l := range col {
			col[l] = nom
		}
	}
	sc.rng.TruncNormalColumns(dst.Seeds, dst.view, sigma[:], bound[:])
}

// ChildrenBatch draws, for every parent lane, fanout correlated
// children with labels label0..label0+fanout-1, into dst in
// parent-major lane order (child j of parent lane l lands in lane
// l*fanout+j). Each child lane is bit-identical to Scratch.Child of
// the corresponding parent draw and label.
func (sc *Scratch) ChildrenBatch(parent *Batch, factor float64, label0 int64, fanout int, dst *Batch) {
	n := parent.n * fanout
	dst.Resize(n)
	for pl := 0; pl < parent.n; pl++ {
		base := pl * fanout
		ps := parent.Seeds[pl]
		for j := 0; j < fanout; j++ {
			dst.Seeds[base+j] = stats.MixSeed(ps, label0+int64(j))
		}
	}
	// The parent's value is the mean of every child draw; expand it
	// into the destination columns (TruncNormalColumns reads the mean
	// in place). A non-positive factor means a perfectly correlated
	// child: values copy through, only the seed advances.
	for p := range dst.Col {
		dcol, pcol := dst.Col[p], parent.Col[p]
		for pl := 0; pl < parent.n; pl++ {
			v := pcol[pl]
			base := pl * fanout
			for j := 0; j < fanout; j++ {
				dcol[base+j] = v
			}
		}
	}
	if factor <= 0 {
		return
	}
	var sigma, bound [NumParams]float64
	for p := Param(0); p < NumParams; p++ {
		sigma[p] = factor * sc.spec.Sigma(p)
		bound[p] = factor * sc.spec.Bound(p)
	}
	sc.rng.TruncNormalColumns(dst.Seeds, dst.view, sigma[:], bound[:])
}

// WayBatch mirrors Scratch.Way for batches: one lane per parent lane,
// drawn at way i's mesh correlation factor.
func (sc *Scratch) WayBatch(parent *Batch, i int, dst *Batch) {
	sc.ChildrenBatch(parent, sc.fact.WayFactor(i), int64(1000+i), 1, dst)
}

// BlocksBatch mirrors Scratch.Block for batches: fanout consecutive
// block labels label0..label0+fanout-1 per parent lane.
func (sc *Scratch) BlocksBatch(parent *Batch, label0 int64, fanout int, dst *Batch) {
	sc.ChildrenBatch(parent, sc.fact.Block, 2000+label0, fanout, dst)
}

// RowsBatch mirrors Scratch.Row for batches: one row child per parent
// lane at the given label.
func (sc *Scratch) RowsBatch(parent *Batch, label int64, dst *Batch) {
	sc.ChildrenBatch(parent, sc.fact.Row, 3000+label, 1, dst)
}
