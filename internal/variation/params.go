// Package variation models process variations for the yield study.
//
// It implements the sampling scheme of Section 3 of the paper: five
// variation sources (gate length, threshold voltage, metal width, metal
// thickness, inter-layer-dielectric thickness) drawn inside the 3-sigma
// windows published by Nassif for a 45 nm process (Table 1), with spatial
// correlation expressed through the paper's "correlation factors".
//
// A correlation factor is a number in (0, 1]. Given a parent region whose
// parameters are already drawn, a child region redraws each parameter
// with the parent's value as the new mean and the Table 1 variation range
// scaled by the factor. A *small* factor therefore means the child tracks
// the parent closely (strong correlation) — note this is the opposite
// sense of a correlation coefficient, as the paper points out.
package variation

import "fmt"

// Param identifies one source of process variation.
type Param int

// The five variation sources of Table 1.
const (
	Leff Param = iota // effective gate length, nm
	Vt                // threshold voltage, mV
	W                 // metal line width, um
	T                 // metal thickness, um
	H                 // inter-layer dielectric thickness, um
	NumParams
)

var paramNames = [NumParams]string{"Leff", "Vt", "W", "T", "H"}

func (p Param) String() string {
	if p < 0 || p >= NumParams {
		return fmt.Sprintf("Param(%d)", int(p))
	}
	return paramNames[p]
}

// Values holds one value per variation source, in the units of Table 1
// (Leff in nm, Vt in mV, W/T/H in um).
type Values [NumParams]float64

// Spec describes the nominal value and the 3-sigma variation (as a
// fraction of nominal) for each source.
type Spec struct {
	Nominal   Values
	Sigma3Pct Values // 3-sigma variation in percent of nominal
}

// Nassif45nm returns the Table 1 process specification: 45 nm PTM nominal
// values with Nassif's variation limits.
func Nassif45nm() Spec {
	return Spec{
		Nominal: Values{
			Leff: 45,   // nm
			Vt:   220,  // mV
			W:    0.25, // um
			T:    0.55, // um
			H:    0.15, // um
		},
		Sigma3Pct: Values{
			Leff: 10,
			Vt:   18,
			W:    33,
			T:    33,
			H:    35,
		},
	}
}

// Sigma returns the 1-sigma absolute deviation of parameter p.
func (s Spec) Sigma(p Param) float64 {
	return s.Nominal[p] * s.Sigma3Pct[p] / 100 / 3
}

// Bound returns the 3-sigma absolute deviation (the hard sampling window
// half-width) of parameter p.
func (s Spec) Bound(p Param) float64 {
	return s.Nominal[p] * s.Sigma3Pct[p] / 100
}

// DeltaOf returns the fractional deviation of value from p's nominal:
// (value - nominal) / nominal, or 0 when the nominal is zero.
func (s *Spec) DeltaOf(p Param, value float64) float64 {
	nom := s.Nominal[p]
	if nom == 0 {
		return 0
	}
	return (value - nom) / nom
}

// Factors holds the spatial correlation factors of Section 3. They scale
// the Table 1 range when a child region is drawn around its parent.
type Factors struct {
	Bit         float64 // between bits in a cache block
	Row         float64 // between rows of a bank
	Block       float64 // between circuit blocks of one way (decoder, precharge, cells, sense amps, drivers)
	VerticalWay float64 // way sharing a vertical mesh edge with way 0
	HorizWay    float64 // way sharing a horizontal mesh edge with way 0
	DiagWay     float64 // way diagonal to way 0 on the 2x2 mesh
}

// PaperFactors returns the correlation factors used in the paper,
// derived from the Friedberg et al. spatial-correlation data. The paper
// does not publish a separate factor for circuit blocks inside a way; we
// reuse the row factor, since the blocks of one way are physically
// adjacent at row scale.
func PaperFactors() Factors {
	return Factors{
		Bit:         0.01,
		Row:         0.05,
		Block:       0.05,
		VerticalWay: 0.45,
		HorizWay:    0.375,
		DiagWay:     0.7125,
	}
}

// WayFactor returns the correlation factor between way 0 and way i for
// ways laid out on a 2x2 mesh:
//
//	way 0 | way 1      (way 1 shares the horizontal line with way 0)
//	------+------
//	way 2 | way 3      (way 2 the vertical line, way 3 the diagonal)
//
// Way 0 is the reference and has factor 0 (identical parameters).
func (f Factors) WayFactor(i int) float64 {
	switch i {
	case 0:
		return 0
	case 1:
		return f.HorizWay
	case 2:
		return f.VerticalWay
	case 3:
		return f.DiagWay
	default:
		panic(fmt.Sprintf("variation: way index %d outside 2x2 mesh", i))
	}
}
