package variation

import (
	"math"
	"testing"
	"testing/quick"

	"yieldcache/internal/stats"
)

func TestSpecTable1(t *testing.T) {
	s := Nassif45nm()
	if s.Nominal[Leff] != 45 || s.Nominal[Vt] != 220 || s.Nominal[W] != 0.25 ||
		s.Nominal[T] != 0.55 || s.Nominal[H] != 0.15 {
		t.Errorf("nominal values do not match Table 1: %+v", s.Nominal)
	}
	if s.Sigma3Pct[Leff] != 10 || s.Sigma3Pct[Vt] != 18 || s.Sigma3Pct[W] != 33 ||
		s.Sigma3Pct[T] != 33 || s.Sigma3Pct[H] != 35 {
		t.Errorf("3-sigma percentages do not match Table 1: %+v", s.Sigma3Pct)
	}
}

func TestSigmaAndBound(t *testing.T) {
	s := Nassif45nm()
	// Leff: 10% of 45nm = 4.5nm at 3 sigma -> sigma 1.5nm.
	if got := s.Sigma(Leff); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Sigma(Leff) = %v, want 1.5", got)
	}
	if got := s.Bound(Leff); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("Bound(Leff) = %v, want 4.5", got)
	}
	if got := s.Bound(Vt); math.Abs(got-39.6) > 1e-9 {
		t.Errorf("Bound(Vt) = %v, want 39.6 mV", got)
	}
}

func TestParamString(t *testing.T) {
	if Leff.String() != "Leff" || Vt.String() != "Vt" || H.String() != "H" {
		t.Error("parameter names wrong")
	}
	if Param(99).String() != "Param(99)" {
		t.Error("out-of-range parameter name wrong")
	}
}

func TestPaperFactors(t *testing.T) {
	f := PaperFactors()
	if f.Bit != 0.01 || f.Row != 0.05 || f.VerticalWay != 0.45 ||
		f.HorizWay != 0.375 || f.DiagWay != 0.7125 {
		t.Errorf("factors do not match Section 3: %+v", f)
	}
	if f.WayFactor(0) != 0 {
		t.Error("way 0 must be the reference (factor 0)")
	}
	if f.WayFactor(1) != 0.375 || f.WayFactor(2) != 0.45 || f.WayFactor(3) != 0.7125 {
		t.Error("mesh way factors wrong")
	}
}

func TestWayFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WayFactor(4) should panic")
		}
	}()
	PaperFactors().WayFactor(4)
}

func TestChipDeterminism(t *testing.T) {
	s := NewSampler(Nassif45nm(), PaperFactors(), 99)
	a := s.Chip(5)
	b := s.Chip(5)
	if a.Values != b.Values {
		t.Error("same chip id produced different root draws")
	}
	aw := a.Way(3)
	bw := b.Way(3)
	if aw.Values != bw.Values {
		t.Error("same chip id produced different way draws")
	}
	c := s.Chip(6)
	if a.Values == c.Values {
		t.Error("different chip ids produced identical draws")
	}
}

func TestChipOrderIndependence(t *testing.T) {
	s := NewSampler(Nassif45nm(), PaperFactors(), 7)
	first := s.Chip(3).Way(2).Values
	// Drawing other chips in between must not change chip 3.
	s.Chip(0)
	s.Chip(9)
	second := s.Chip(3).Way(2).Values
	if first != second {
		t.Error("chip draws depend on evaluation order")
	}
}

func TestRootWithinBounds(t *testing.T) {
	spec := Nassif45nm()
	s := NewSampler(spec, PaperFactors(), 1)
	for id := 0; id < 500; id++ {
		n := s.Chip(id)
		for p := Param(0); p < NumParams; p++ {
			lo := spec.Nominal[p] - spec.Bound(p)
			hi := spec.Nominal[p] + spec.Bound(p)
			if n.Values[p] < lo || n.Values[p] > hi {
				t.Fatalf("chip %d %v = %v outside [%v, %v]", id, p, n.Values[p], lo, hi)
			}
		}
	}
}

func TestChildTracksParentByFactor(t *testing.T) {
	spec := Nassif45nm()
	s := NewSampler(spec, PaperFactors(), 2)
	n := 2000
	var devSmall, devLarge float64
	for id := 0; id < n; id++ {
		root := s.Chip(id)
		small := root.Child(0.05, 1) // strongly correlated
		large := root.Child(0.7125, 2)
		devSmall += math.Abs(small.Values[Vt] - root.Values[Vt])
		devLarge += math.Abs(large.Values[Vt] - root.Values[Vt])
	}
	if devSmall >= devLarge {
		t.Errorf("smaller factor should track parent more closely: mean|dev| %v vs %v",
			devSmall/float64(n), devLarge/float64(n))
	}
}

func TestChildFactorZeroCopies(t *testing.T) {
	s := NewSampler(Nassif45nm(), PaperFactors(), 3)
	root := s.Chip(0)
	c := root.Child(0, 1)
	if c.Values != root.Values {
		t.Error("factor-0 child must copy parent values exactly")
	}
	if w := root.Way(0); w.Values != root.Values {
		t.Error("way 0 must equal the chip root")
	}
}

func TestChildBounds(t *testing.T) {
	spec := Nassif45nm()
	s := NewSampler(spec, PaperFactors(), 4)
	for id := 0; id < 200; id++ {
		root := s.Chip(id)
		for wi := 0; wi < 4; wi++ {
			w := root.Way(wi)
			f := PaperFactors().WayFactor(wi)
			for p := Param(0); p < NumParams; p++ {
				if d := math.Abs(w.Values[p] - root.Values[p]); d > f*spec.Bound(p)+1e-12 {
					t.Fatalf("way %d %v deviates %v > factor-scaled bound %v", wi, p, d, f*spec.Bound(p))
				}
			}
		}
	}
}

func TestSiblingLabelsDiffer(t *testing.T) {
	s := NewSampler(Nassif45nm(), PaperFactors(), 5)
	root := s.Chip(0)
	r1 := root.Row(1)
	r2 := root.Row(2)
	r1again := root.Row(1)
	if r1.Values == r2.Values {
		t.Error("different row labels gave identical draws")
	}
	if r1.Values != r1again.Values {
		t.Error("same row label gave different draws")
	}
}

func TestInterWayCorrelationOrdering(t *testing.T) {
	// The diagonal way (factor 0.7125) must be less correlated with way 0
	// than the horizontal way (0.375), which is less than vertical (0.45)
	// ... i.e. correlation coefficient ordering is the inverse of factor
	// ordering: horiz > vert > diag.
	s := NewSampler(Nassif45nm(), PaperFactors(), 6)
	n := 4000
	w0 := make([]float64, n)
	w1 := make([]float64, n)
	w2 := make([]float64, n)
	w3 := make([]float64, n)
	for id := 0; id < n; id++ {
		root := s.Chip(id)
		w0[id] = root.Way(0).Values[Leff]
		w1[id] = root.Way(1).Values[Leff]
		w2[id] = root.Way(2).Values[Leff]
		w3[id] = root.Way(3).Values[Leff]
	}
	c1 := stats.Correlation(w0, w1) // horizontal, factor 0.375
	c2 := stats.Correlation(w0, w2) // vertical, factor 0.45
	c3 := stats.Correlation(w0, w3) // diagonal, factor 0.7125
	if !(c1 > c2 && c2 > c3) {
		t.Errorf("correlation ordering violated: horiz %v, vert %v, diag %v", c1, c2, c3)
	}
	if c3 < 0.3 {
		t.Errorf("even the diagonal way should remain substantially correlated, got %v", c3)
	}
}

func TestDelta(t *testing.T) {
	s := NewSampler(Nassif45nm(), PaperFactors(), 8)
	root := s.Chip(0)
	for p := Param(0); p < NumParams; p++ {
		want := (root.Values[p] - s.Spec().Nominal[p]) / s.Spec().Nominal[p]
		if got := root.Delta(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("Delta(%v) = %v, want %v", p, got, want)
		}
		if math.Abs(root.Delta(p)) > s.Spec().Sigma3Pct[p]/100+1e-12 {
			t.Errorf("Delta(%v) = %v exceeds the 3-sigma fractional window", p, root.Delta(p))
		}
	}
}

// Property: for any seed and chip id, every descendant drawn with the
// paper factors stays within the chip root's window +/- the factor-scaled
// bound, and the whole tree is reproducible.
func TestTreeProperty(t *testing.T) {
	spec := Nassif45nm()
	f := func(seed int64, id uint16, label uint8) bool {
		s := NewSampler(spec, PaperFactors(), seed)
		root := s.Chip(int(id))
		w := root.Way(int(label) % 4)
		row := w.Row(int64(label))
		bit := row.Bit(int64(label))
		// Bit factor 0.01: the bit must be within 1% of the Table 1 bound
		// from its row.
		for p := Param(0); p < NumParams; p++ {
			if math.Abs(bit.Values[p]-row.Values[p]) > 0.01*spec.Bound(p)+1e-12 {
				return false
			}
		}
		again := s.Chip(int(id)).Way(int(label) % 4).Row(int64(label)).Bit(int64(label))
		return bit.Values == again.Values
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpecAtNodes(t *testing.T) {
	for _, n := range Nodes() {
		spec, err := SpecAt(n)
		if err != nil {
			t.Fatalf("%d nm: %v", int(n), err)
		}
		if spec.Nominal[Leff] != float64(n) {
			t.Errorf("%d nm: Leff nominal = %v", int(n), spec.Nominal[Leff])
		}
		for p := Param(0); p < NumParams; p++ {
			if spec.Nominal[p] <= 0 || spec.Sigma3Pct[p] <= 0 {
				t.Errorf("%d nm: degenerate %v", int(n), p)
			}
		}
	}
	if _, err := SpecAt(TechNode(7)); err == nil {
		t.Error("unknown node should error")
	}
	// Relative variation must grow monotonically with scaling.
	prev := -1.0
	for _, n := range []TechNode{Node90, Node65, Node45, Node32} {
		spec, _ := SpecAt(n)
		if spec.Sigma3Pct[Leff] <= prev {
			t.Errorf("Leff variation should grow with scaling, %d nm has %v", int(n), spec.Sigma3Pct[Leff])
		}
		prev = spec.Sigma3Pct[Leff]
	}
}
