package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestElmoreSingleSegment(t *testing.T) {
	// One segment: delay = Rd*(C+CL) + R*(C/2 + CL).
	l := RCLadder{Segments: 1, DriverR: 100, RTotal: 50, CTotal: 2e-15, LoadC: 1e-15}
	want := 100*(2e-15+1e-15) + 50*(1e-15+1e-15)
	if got := l.Elmore(0); math.Abs(got-want) > 1e-25 {
		t.Errorf("Elmore = %v, want %v", got, want)
	}
}

func TestElmoreMatchesDistributedLimit(t *testing.T) {
	// With the capacitance of each segment counted at its midpoint
	// (the cSeg/2 term), the ladder's Elmore delay equals the
	// distributed closed form for *any* segment count — the
	// discretisation is exact, not merely convergent.
	base := RCLadder{DriverR: 200, RTotal: 400, CTotal: 5e-15, CCoupling: 2e-15, LoadC: 3e-15}
	limit := base.DistributedLimit(1)
	for _, n := range []int{1, 2, 8, 64, 512} {
		l := base
		l.Segments = n
		if err := math.Abs(l.Elmore(1)-limit) / limit; err > 1e-9 {
			t.Errorf("%d segments: relative error %v from the distributed limit", n, err)
		}
	}
}

func TestMillerFactorOrdering(t *testing.T) {
	l := RCLadder{Segments: 16, DriverR: 100, RTotal: 300, CTotal: 4e-15, CCoupling: 3e-15, LoadC: 1e-15}
	same := l.Elmore(0)    // neighbour switching with us
	quiet := l.Elmore(1)   // neighbour quiet
	opposed := l.Elmore(2) // neighbour switching against us
	if !(same < quiet && quiet < opposed) {
		t.Errorf("Miller ordering violated: %v, %v, %v", same, quiet, opposed)
	}
	// Without coupling capacitance the Miller factor is irrelevant.
	l.CCoupling = 0
	if l.Elmore(0) != l.Elmore(2) {
		t.Error("Miller factor changed delay with zero coupling")
	}
}

func TestLadderJustifiesLumpedFactor(t *testing.T) {
	// The lumped Wire.RCFactor used throughout the cache model must
	// track the full ladder's Elmore ratio across process corners for a
	// wire-dominated stage (small driver, small load). This is the test
	// that licenses the abstraction.
	tech := PTM45()
	corners := []Wire{
		{},
		{DW: 0.2, DT: -0.1, DH: 0.1},
		{DW: -0.3, DT: 0.3, DH: -0.3},
		{DW: 0.33, DT: 0.33, DH: 0.35},
		{DW: -0.33, DT: -0.33, DH: -0.35},
	}
	nomLadder := LadderFor(tech, Wire{}, 64, 1, 500, 10e-15, 0.01e-15)
	nomDelay := nomLadder.Elmore(1)
	for _, w := range corners {
		l := LadderFor(tech, w, 64, 1, 500, 10e-15, 0.01e-15)
		ladderRatio := l.Elmore(1) / nomDelay
		lumped := w.RCFactor(tech)
		if math.Abs(ladderRatio-lumped)/lumped > 0.02 {
			t.Errorf("corner %+v: ladder ratio %v vs lumped factor %v", w, ladderRatio, lumped)
		}
	}
}

func TestElmoreDegenerateSegments(t *testing.T) {
	l := RCLadder{Segments: 0, DriverR: 10, RTotal: 10, CTotal: 1e-15}
	if got := l.Elmore(1); got <= 0 || math.IsNaN(got) {
		t.Errorf("zero-segment ladder should clamp to one segment, got %v", got)
	}
}

// Property: Elmore delay is monotone in every electrical parameter.
func TestElmoreMonotoneProperty(t *testing.T) {
	f := func(rd, r, c, cc, cl uint8) bool {
		l := RCLadder{
			Segments:  16,
			DriverR:   float64(rd) + 1,
			RTotal:    float64(r) + 1,
			CTotal:    (float64(c) + 1) * 1e-16,
			CCoupling: float64(cc) * 1e-16,
			LoadC:     float64(cl) * 1e-16,
		}
		base := l.Elmore(1)
		bigger := l
		bigger.RTotal *= 1.1
		if bigger.Elmore(1) < base {
			return false
		}
		bigger = l
		bigger.CTotal *= 1.1
		if bigger.Elmore(1) < base {
			return false
		}
		bigger = l
		bigger.DriverR *= 1.1
		return bigger.Elmore(1) >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
