package circuit

// RCLadder is a distributed interconnect model: a driver of resistance
// DriverR feeding a wire of total resistance RTotal and total ground
// capacitance CTotal split into Segments equal RC sections, with a
// lumped load LoadC at the far end and optional coupling capacitance
// CCoupling to a neighbouring line. This is the "distributed RC ladders
// representing the local interconnect wires inside the cache" of
// Section 3, made explicit; the lumped Wire.RCFactor used on the hot
// path is validated against it (see TestLadderJustifiesLumpedFactor).
type RCLadder struct {
	Segments  int
	DriverR   float64 // ohms
	RTotal    float64 // ohms
	CTotal    float64 // farads (ground/area+fringe)
	CCoupling float64 // farads (to the adjacent line)
	LoadC     float64 // farads
}

// Elmore returns the Elmore delay of the ladder with the coupling
// capacitance counted at the given Miller factor: 0 when the neighbour
// switches in the same direction, 1 when quiet, 2 when it switches the
// opposite way — the worst case the cache's address bus and bitline
// pairs must be timed for.
func (l RCLadder) Elmore(miller float64) float64 {
	n := l.Segments
	if n < 1 {
		n = 1
	}
	cSeg := (l.CTotal + miller*l.CCoupling) / float64(n)
	rSeg := l.RTotal / float64(n)

	// Driver sees the whole wire plus the load.
	delay := l.DriverR * (float64(n)*cSeg + l.LoadC)
	// Each segment's resistance sees the downstream capacitance.
	for i := 1; i <= n; i++ {
		downstream := float64(n-i)*cSeg + cSeg/2 + l.LoadC
		delay += rSeg * downstream
	}
	return delay
}

// DistributedLimit returns the closed-form Elmore delay of the
// infinitely-fine ladder: Rd·(Cw+CL) + Rw·Cw/2 + Rw·CL. The finite
// ladder converges to this as Segments grows.
func (l RCLadder) DistributedLimit(miller float64) float64 {
	cw := l.CTotal + miller*l.CCoupling
	return l.DriverR*(cw+l.LoadC) + l.RTotal*cw/2 + l.RTotal*l.LoadC
}

// LadderFor builds the ladder of a wire under process state w: the
// nominal electricals scale with the geometric factors exactly as the
// lumped model's ResFactor/CapFactor, so comparing Elmore ratios across
// process corners against RCFactor quantifies what the lumped
// abstraction gives away (nothing, to first order, when the load is
// wire-dominated).
func LadderFor(t Tech, w Wire, segments int, driverR, rNominal, cNominal, loadC float64) RCLadder {
	cTot := cNominal * (1 - t.CouplingFrac)
	cCpl := cNominal * t.CouplingFrac
	ground := (1 + w.DW) / (1 + w.DH)
	spacing := 1 - w.DW
	if spacing < 0.05 {
		spacing = 0.05
	}
	coupling := (1 + w.DT) / spacing
	return RCLadder{
		Segments:  segments,
		DriverR:   driverR,
		RTotal:    rNominal * w.ResFactor(),
		CTotal:    cTot * ground,
		CCoupling: cCpl * coupling,
		LoadC:     loadC,
	}
}
