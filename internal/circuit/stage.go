package circuit

// StageKind classifies how a pipeline stage of the cache access path
// responds to process variation.
type StageKind int

const (
	// GateStage is dominated by transistor switching (decoder logic,
	// sense amplifier, output latch): delay scales with GateDelayFactor.
	GateStage StageKind = iota
	// WireStage is dominated by distributed interconnect RC (address bus,
	// global word line routing, data bus): delay scales with RCFactor.
	WireStage
	// DrivenWireStage is a driver charging a wire: half the delay is the
	// driver (gate-limited), half the wire (RC-limited). Local word lines
	// behave this way.
	DrivenWireStage
	// BitlineStage is the cell discharging the bitline: delay scales with
	// the bitline capacitance (wire + drain diffusion) divided by the
	// cell drive current.
	BitlineStage
)

// Stage is one component of an SRAM access critical path with its
// nominal (no-variation) delay in picoseconds.
type Stage struct {
	Name      string
	Kind      StageKind
	NominalPS float64
}

// Eval returns the stage delay in picoseconds under the given device and
// wire process state.
func (s Stage) Eval(t Tech, d Device, w Wire) float64 {
	switch s.Kind {
	case GateStage:
		return s.NominalPS * d.GateDelayFactor(t)
	case WireStage:
		return s.NominalPS * w.RCFactor(t)
	case DrivenWireStage:
		return s.NominalPS * (0.5*d.GateDelayFactor(t) + 0.5*w.RCFactor(t))
	case BitlineStage:
		capf := t.DiffusionFrac*(1+d.DLeff) + (1-t.DiffusionFrac)*w.CapFactor(t)
		return s.NominalPS * capf / d.DriveFactor(t)
	default:
		panic("circuit: unknown stage kind")
	}
}

// PathDelayPS sums the stage delays of a critical path where every stage
// shares one device/wire process state. Callers that model per-block
// variation evaluate stages individually instead.
func PathDelayPS(t Tech, stages []Stage, d Device, w Wire) float64 {
	total := 0.0
	for _, s := range stages {
		total += s.Eval(t, d, w)
	}
	return total
}
