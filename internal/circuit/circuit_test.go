package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"yieldcache/internal/variation"
)

func nominalDevice() Device { return Device{DLeff: 0, VtV: 0.220} }
func nominalWire() Wire     { return Wire{} }

func TestNominalFactorsAreUnity(t *testing.T) {
	tech := PTM45()
	d := nominalDevice()
	w := nominalWire()
	checks := []struct {
		name string
		got  float64
	}{
		{"DriveFactor", d.DriveFactor(tech)},
		{"GateDelayFactor", d.GateDelayFactor(tech)},
		{"LeakageFactor", d.LeakageFactor(tech)},
		{"ResFactor", w.ResFactor()},
		{"CapFactor", w.CapFactor(tech)},
		{"RCFactor", w.RCFactor(tech)},
	}
	for _, c := range checks {
		if math.Abs(c.got-1) > 1e-12 {
			t.Errorf("%s at nominal = %v, want 1", c.name, c.got)
		}
	}
}

func TestEffectiveVtDIBL(t *testing.T) {
	tech := PTM45()
	short := Device{DLeff: -0.10, VtV: 0.220}
	long := Device{DLeff: +0.10, VtV: 0.220}
	if got, want := short.EffectiveVt(tech), 0.220-0.10*tech.DIBL; math.Abs(got-want) > 1e-12 {
		t.Errorf("short-channel Vt_eff = %v, want %v", got, want)
	}
	if got, want := long.EffectiveVt(tech), 0.220+0.10*tech.DIBL; math.Abs(got-want) > 1e-12 {
		t.Errorf("long-channel Vt_eff = %v, want %v", got, want)
	}
	// Clamp: Vt_eff never reaches Vdd.
	crazy := Device{DLeff: 10, VtV: 5}
	if got := crazy.EffectiveVt(tech); got >= tech.Vdd {
		t.Errorf("Vt_eff clamp failed: %v", got)
	}
}

func TestFastDevicesLeak(t *testing.T) {
	// The inverse delay-leakage relation of Section 1: a device that is
	// faster than nominal must leak more, and vice versa.
	tech := PTM45()
	fast := Device{DLeff: -0.08, VtV: 0.200}
	slow := Device{DLeff: +0.08, VtV: 0.245}
	if fast.GateDelayFactor(tech) >= 1 {
		t.Error("fast corner is not fast")
	}
	if fast.LeakageFactor(tech) <= 1 {
		t.Error("fast corner does not leak more than nominal")
	}
	if slow.GateDelayFactor(tech) <= 1 {
		t.Error("slow corner is not slow")
	}
	if slow.LeakageFactor(tech) >= 1 {
		t.Error("slow corner does not leak less than nominal")
	}
}

func TestLeakageSpreadMatchesLiterature(t *testing.T) {
	// Section 1: small Vt variations give ~5-10x leakage differences and
	// a 10% Leff change gives multi-fold subthreshold changes. Check the
	// model spread across the 3-sigma window is in the multi-fold range.
	tech := PTM45()
	worst := Device{DLeff: -0.10, VtV: 0.220 * (1 - 0.18)} // short and low-Vt
	best := Device{DLeff: +0.10, VtV: 0.220 * (1 + 0.18)}
	hot := worst.LeakageFactor(tech)
	if hot < 5 || hot > 100 {
		t.Errorf("worst-corner leakage = %.1fx nominal, want multi-fold (5x..100x)", hot)
	}
	if ratio := hot / best.LeakageFactor(tech); ratio < 25 {
		t.Errorf("corner-to-corner leakage spread = %.1fx, want >= 25x (Section 1 cites 20x population spreads)", ratio)
	}
}

func TestVtOnlyLeakageSensitivity(t *testing.T) {
	// A 3-sigma Vt drop alone (18% of 220mV = 39.6mV) should change
	// leakage by exactly e^(0.0396/slope) — multi-fold.
	tech := PTM45()
	lo := Device{VtV: 0.220 - 0.0396}
	want := math.Exp(0.0396 / tech.SubVtSlope)
	if got := lo.LeakageFactor(tech); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("low-Vt leakage factor = %v, want %v", got, want)
	}
	if lo.LeakageFactor(tech) < 2 {
		t.Error("3-sigma Vt swing should change leakage multi-fold")
	}
}

func TestGateDelaySensitivity(t *testing.T) {
	tech := PTM45()
	// +10% Leff with DIBL: load factor (1 + dl/2) (gate cap tracks L, the
	// wire part of the load does not), drive ∝ (1/1.1)·(ov/ovNom)^alpha.
	d := Device{DLeff: 0.10, VtV: 0.220}
	got := d.GateDelayFactor(tech)
	ov := tech.Vdd - (0.220 + 0.10*tech.DIBL)
	ovNom := tech.Vdd - tech.VtNominal
	want := 1.05 * 1.1 / math.Pow(ov/ovNom, tech.Alpha)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("GateDelayFactor(+10%% L) = %v, want %v", got, want)
	}
	if got < 1.15 || got > 1.6 {
		t.Errorf("GateDelayFactor(+10%% L) = %v, expected a 15-60%% slowdown", got)
	}
}

func TestSenseMargin(t *testing.T) {
	tech := PTM45()
	if m := SenseMargin(tech, nominalDevice()); m != 1 {
		t.Errorf("sense margin at nominal = %v, want 1", m)
	}
	fast := Device{DLeff: -0.05, VtV: 0.200}
	if m := SenseMargin(tech, fast); m != 1 {
		t.Errorf("sense margin for strong device = %v, want 1", m)
	}
	weak := Device{DLeff: 0.10, VtV: 0.250}
	m := SenseMargin(tech, weak)
	if m <= 1 {
		t.Errorf("sense margin for weak device = %v, want > 1", m)
	}
	// Monotone in weakness and capped.
	weaker := Device{DLeff: 0.10, VtV: 0.26}
	if SenseMargin(tech, weaker) < m {
		t.Error("sense margin not monotone in device weakness")
	}
	terrible := Device{DLeff: 0.10, VtV: 0.9}
	if got := SenseMargin(tech, terrible); got > tech.SenseMarginMax+1e-9 {
		t.Errorf("sense margin %v exceeds cap %v", got, tech.SenseMarginMax)
	}
}

func TestWireFactors(t *testing.T) {
	tech := PTM45()
	// Wider, thicker wire: lower R; capacitance rises (both ground, and
	// coupling via reduced spacing).
	w := Wire{DW: 0.2, DT: 0.2, DH: 0}
	if r := w.ResFactor(); math.Abs(r-1/(1.2*1.2)) > 1e-12 {
		t.Errorf("ResFactor = %v", r)
	}
	if c := w.CapFactor(tech); c <= 1 {
		t.Errorf("CapFactor for wide+thick wire = %v, want > 1", c)
	}
	// Thinner dielectric raises ground capacitance.
	thin := Wire{DH: -0.3}
	if c := thin.CapFactor(tech); c <= 1 {
		t.Errorf("CapFactor for thin ILD = %v, want > 1", c)
	}
	// Narrow line: higher R, lower coupling (more spacing).
	narrow := Wire{DW: -0.3}
	if r := narrow.ResFactor(); r <= 1 {
		t.Errorf("ResFactor for narrow line = %v, want > 1", r)
	}
}

func TestCapFactorSpacingGuard(t *testing.T) {
	tech := PTM45()
	w := Wire{DW: 0.999}
	if c := w.CapFactor(tech); math.IsInf(c, 0) || math.IsNaN(c) || c < 0 {
		t.Errorf("CapFactor near closed spacing = %v", c)
	}
}

func TestStageEvalKinds(t *testing.T) {
	tech := PTM45()
	d := Device{DLeff: 0.05, VtV: 0.230}
	w := Wire{DW: 0.1, DT: -0.1, DH: 0.05}
	gate := Stage{Name: "dec", Kind: GateStage, NominalPS: 100}
	wire := Stage{Name: "bus", Kind: WireStage, NominalPS: 100}
	driven := Stage{Name: "wl", Kind: DrivenWireStage, NominalPS: 100}
	bl := Stage{Name: "bl", Kind: BitlineStage, NominalPS: 100}

	if got, want := gate.Eval(tech, d, w), 100*d.GateDelayFactor(tech); math.Abs(got-want) > 1e-9 {
		t.Errorf("gate stage = %v, want %v", got, want)
	}
	if got, want := wire.Eval(tech, d, w), 100*w.RCFactor(tech); math.Abs(got-want) > 1e-9 {
		t.Errorf("wire stage = %v, want %v", got, want)
	}
	dw := driven.Eval(tech, d, w)
	if dw <= math.Min(gate.Eval(tech, d, w), wire.Eval(tech, d, w))-1e-9 ||
		dw >= math.Max(gate.Eval(tech, d, w), wire.Eval(tech, d, w))+1e-9 {
		t.Errorf("driven-wire stage %v not between gate and wire delays", dw)
	}
	if b := bl.Eval(tech, d, w); b <= 0 {
		t.Errorf("bitline stage = %v", b)
	}
}

func TestStageEvalNominal(t *testing.T) {
	tech := PTM45()
	d, w := nominalDevice(), nominalWire()
	for _, k := range []StageKind{GateStage, WireStage, DrivenWireStage, BitlineStage} {
		s := Stage{Kind: k, NominalPS: 42}
		if got := s.Eval(tech, d, w); math.Abs(got-42) > 1e-9 {
			t.Errorf("kind %d at nominal = %v, want 42", k, got)
		}
	}
}

func TestStageEvalUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown stage kind should panic")
		}
	}()
	Stage{Kind: StageKind(99), NominalPS: 1}.Eval(PTM45(), nominalDevice(), nominalWire())
}

func TestPathDelaySums(t *testing.T) {
	tech := PTM45()
	stages := []Stage{
		{Kind: GateStage, NominalPS: 50},
		{Kind: WireStage, NominalPS: 30},
	}
	got := PathDelayPS(tech, stages, nominalDevice(), nominalWire())
	if math.Abs(got-80) > 1e-9 {
		t.Errorf("PathDelayPS at nominal = %v, want 80", got)
	}
}

func TestDeviceWireFromNode(t *testing.T) {
	spec := variation.Nassif45nm()
	s := variation.NewSampler(spec, variation.PaperFactors(), 11)
	n := s.Chip(0)
	d := DeviceFrom(n)
	w := WireFrom(n)
	if math.Abs(d.VtV-n.Values[variation.Vt]/1000) > 1e-12 {
		t.Errorf("DeviceFrom Vt conversion wrong: %v", d.VtV)
	}
	if d.DLeff != n.Delta(variation.Leff) {
		t.Error("DeviceFrom DLeff wrong")
	}
	if w.DW != n.Delta(variation.W) || w.DT != n.Delta(variation.T) || w.DH != n.Delta(variation.H) {
		t.Error("WireFrom deltas wrong")
	}
}

// Property: within the 3-sigma sampling windows, all factors are finite,
// positive, and delay is monotone in Leff (longer channel never speeds a
// gate up) while leakage is antitone in Vt.
func TestFactorSanityProperty(t *testing.T) {
	tech := PTM45()
	f := func(a, b, c, d, e int8) bool {
		dl := float64(a) / 127 * 0.10
		vt := 0.220 * (1 + float64(b)/127*0.18)
		dw := float64(c) / 127 * 0.33
		dt := float64(d) / 127 * 0.33
		dh := float64(e) / 127 * 0.35
		dev := Device{DLeff: dl, VtV: vt}
		wire := Wire{DW: dw, DT: dt, DH: dh}
		vals := []float64{
			dev.DriveFactor(tech), dev.GateDelayFactor(tech), dev.LeakageFactor(tech),
			wire.ResFactor(), wire.CapFactor(tech), wire.RCFactor(tech),
		}
		for _, v := range vals {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		longer := Device{DLeff: dl + 0.01, VtV: vt}
		if longer.GateDelayFactor(tech) < dev.GateDelayFactor(tech) {
			return false
		}
		higherVt := Device{DLeff: dl, VtV: vt + 0.005}
		return higherVt.LeakageFactor(tech) <= dev.LeakageFactor(tech)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTechAtNodes(t *testing.T) {
	prevVdd := 10.0
	for _, n := range []int{90, 65, 45, 32} {
		tech, err := TechAt(n)
		if err != nil {
			t.Fatalf("%d nm: %v", n, err)
		}
		if tech.Vdd >= prevVdd {
			t.Errorf("Vdd should fall with scaling: %d nm has %v", n, tech.Vdd)
		}
		prevVdd = tech.Vdd
		if tech.VtNominal <= 0 || tech.VtNominal >= tech.Vdd {
			t.Errorf("%d nm: implausible Vt %v at Vdd %v", n, tech.VtNominal, tech.Vdd)
		}
	}
	if _, err := TechAt(7); err == nil {
		t.Error("unknown node should error")
	}
}
