// Package circuit is the analytical circuit-evaluation substrate that
// stands in for the paper's HSPICE + 45 nm PTM simulations.
//
// The yield study consumes exactly two scalars per cache way — access
// latency and leakage power — together with their sensitivities to the
// five process parameters of Table 1. This package provides those
// sensitivities from first-order device and interconnect physics:
//
//   - Gate delay from the alpha-power law: drive current of a MOSFET is
//     proportional to (W/L_eff)·(Vdd−Vt)^alpha, with a DIBL correction
//     that lowers the effective threshold of short-channel devices, and
//     gate load proportional to L_eff. Delay ∝ load/current.
//   - Subthreshold leakage exponential in −Vt_eff/(n·vT), again with the
//     DIBL shift, giving the heavy-tailed leakage distribution the paper
//     relies on (5–20x spreads inside the 3-sigma window).
//   - Interconnect RC from the geometric parameters: resistance
//     ∝ 1/(W·T); ground capacitance ∝ W/H; coupling capacitance to the
//     neighbouring line ∝ T/S where the spacing S shrinks as the line
//     width grows (line-space is not an independent parameter, exactly as
//     in Section 2 of the paper). Distributed-RC (Elmore) stage delays
//     scale with the R·C product.
//
// All evaluations are expressed as dimensionless factors relative to the
// nominal process corner, applied to nominal stage delays calibrated to
// an Amrutur–Horowitz-style 16 KB SRAM (see package sram). This keeps the
// substitution honest: the Monte Carlo distributions inherit the same
// monotone dependencies and the same correlation structure that the
// HSPICE model would produce, which is what Tables 2–5 and Figure 8
// measure.
package circuit

// Tech bundles the technology constants of the 45 nm operating point.
type Tech struct {
	Vdd        float64 // supply voltage, V
	VtNominal  float64 // nominal threshold voltage, V
	Alpha      float64 // alpha-power-law velocity-saturation exponent
	DIBL       float64 // Vt shift in V per unit fractional gate-length change
	SubVtSlope float64 // n·vT in V (subthreshold swing / ln 10)
	// CouplingFrac is the fraction of total wire capacitance contributed
	// by coupling to neighbouring lines at the nominal geometry. The rest
	// is area+fringe capacitance to the ground plane.
	CouplingFrac float64
	// DiffusionFrac is the fraction of bitline capacitance contributed by
	// the access-transistor drain diffusions (the rest is wire).
	DiffusionFrac float64
	// CellLeakage is the nominal subthreshold leakage of one SRAM cell in
	// watts; PeripheryLeakFrac is the additional leakage of decoder,
	// precharge, sense-amp and driver circuitry as a fraction of the
	// array leakage of a way.
	CellLeakage       float64
	PeripheryLeakFrac float64
	// SenseMarginGain models the super-linear slowdown of the
	// bitline/sense-amplifier stage at weak process corners: when the
	// cell's drive current drops, the differential the sense amp needs
	// takes disproportionately longer to develop (offset eats into the
	// signal margin). Delay is amplified by 1/(1 − gain·(1 − drive)),
	// capped at SenseMarginMax. This is the mechanism that gives the
	// latency distribution its fat right tail (the 5- and 6+-cycle ways
	// of Tables 2–6); a plain linear model would make 6+-cycle chips
	// essentially impossible, contradicting the paper's populations.
	SenseMarginGain float64
	SenseMarginMax  float64
}

// PTM45 returns the technology constants used throughout the study,
// matching a 45 nm predictive-technology high-performance process:
// 1.0 V supply, 220 mV nominal Vt, alpha = 1.3, a steep (near-ideal)
// subthreshold swing of ~60 mV/decade as used in high-performance
// low-Vt L1 arrays, and 55 mV of DIBL per 10% of channel-length loss —
// the strong short-channel sensitivity reported for sub-65 nm nodes
// (Section 1 cites 20x leakage increases at 90 nm and below; these
// constants reproduce multi-fold leakage spreads inside the 3-sigma
// window, which the 3x-average leakage constraint of Section 5.1 needs
// in order to bind on a measurable fraction of chips).
func PTM45() Tech {
	return Tech{
		Vdd:               1.0,
		VtNominal:         0.220,
		Alpha:             1.3,
		DIBL:              0.58,
		SubVtSlope:        0.027, // ~55 mV/dec / ln(10)
		CouplingFrac:      0.35,
		DiffusionFrac:     0.45,
		CellLeakage:       250e-9, // W per cell, array-dominated ~33 mW per 16 KB
		PeripheryLeakFrac: 0.25,
		SenseMarginGain:   3.0,
		SenseMarginMax:    5,
	}
}

// SenseMargin returns the bitline/sense stage delay amplification for a
// sense amplifier built from device sa: 1/(1 − gain·(1 − drive)), capped
// at SenseMarginMax, and 1 for at- or above-nominal drive.
func SenseMargin(t Tech, sa Device) float64 {
	deficit := 1 - sa.DriveFactor(t)
	if deficit <= 0 {
		return 1
	}
	den := 1 - t.SenseMarginGain*deficit
	if den <= 1/t.SenseMarginMax {
		return t.SenseMarginMax
	}
	return 1 / den
}
