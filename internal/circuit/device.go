package circuit

import (
	"math"

	"yieldcache/internal/variation"
)

// Device captures the process state of the MOSFETs in one circuit region:
// the fractional gate-length deviation and the absolute sampled threshold
// voltage. Gate-width variation is not modelled, following the paper
// (W_gate >> L_gate in the cache's sized transistors).
type Device struct {
	DLeff float64 // (L - Lnom) / Lnom
	VtV   float64 // sampled threshold voltage, V (before DIBL correction)
}

// DeviceFrom extracts the device state from a variation node.
func DeviceFrom(n *variation.Node) Device {
	return Device{
		DLeff: n.Delta(variation.Leff),
		VtV:   n.Values[variation.Vt] / 1000, // mV -> V
	}
}

// DeviceOf extracts the device state from sampled parameter values under
// the given process spec. It is the value-typed counterpart of
// DeviceFrom for the allocation-free measurement path.
func DeviceOf(v *variation.Values, spec *variation.Spec) Device {
	return Device{
		DLeff: spec.DeltaOf(variation.Leff, v[variation.Leff]),
		VtV:   v[variation.Vt] / 1000, // mV -> V
	}
}

// EffectiveVt returns the DIBL-corrected threshold voltage: shorter
// channels see a lower barrier, so Vt_eff = Vt + DIBL·ΔL/L (the shift is
// negative for short devices). The result is clamped to stay below Vdd
// so delay remains finite even at absurd corners.
func (d Device) EffectiveVt(t Tech) float64 {
	vt := d.VtV + t.DIBL*d.DLeff
	if max := t.Vdd - 0.05; vt > max {
		vt = max
	}
	return vt
}

// DriveFactor returns the saturation drive current relative to the
// nominal device: I ∝ (1/L)·(Vdd − Vt_eff)^alpha.
func (d Device) DriveFactor(t Tech) float64 {
	overdrive := t.Vdd - d.EffectiveVt(t)
	nominal := t.Vdd - t.VtNominal
	return (1 / (1 + d.DLeff)) * math.Pow(overdrive/nominal, t.Alpha)
}

// GateDelayFactor returns the delay of a logic stage relative to nominal.
// A stage drives the next stage's gate capacitance (proportional to
// L_eff) plus local wiring whose capacitance does not track L, so the
// load scales as (1 + DLeff/2) and delay ∝ load / drive current.
func (d Device) GateDelayFactor(t Tech) float64 {
	return (1 + 0.5*d.DLeff) / d.DriveFactor(t)
}

// LeakageFactor returns the subthreshold leakage relative to the nominal
// device: I_sub ∝ (1/L)·exp(−Vt_eff / (n·vT)). The exponential in the
// DIBL-shifted threshold is what produces the multi-fold leakage spreads
// (and the inverse delay↔leakage correlation: fast devices leak).
func (d Device) LeakageFactor(t Tech) float64 {
	dvt := d.EffectiveVt(t) - t.VtNominal
	return (1 / (1 + d.DLeff)) * math.Exp(-dvt/t.SubVtSlope)
}

// Wire captures the process state of the interconnect in one region as
// fractional deviations of the Table 1 geometry.
type Wire struct {
	DW float64 // line width
	DT float64 // metal thickness
	DH float64 // inter-layer dielectric thickness
}

// WireFrom extracts the interconnect state from a variation node.
func WireFrom(n *variation.Node) Wire {
	return Wire{
		DW: n.Delta(variation.W),
		DT: n.Delta(variation.T),
		DH: n.Delta(variation.H),
	}
}

// WireOf extracts the interconnect state from sampled parameter values
// under the given process spec (value-typed counterpart of WireFrom).
func WireOf(v *variation.Values, spec *variation.Spec) Wire {
	return Wire{
		DW: spec.DeltaOf(variation.W, v[variation.W]),
		DT: spec.DeltaOf(variation.T, v[variation.T]),
		DH: spec.DeltaOf(variation.H, v[variation.H]),
	}
}

// ResFactor returns wire resistance relative to nominal: R ∝ 1/(W·T).
func (w Wire) ResFactor() float64 {
	return 1 / ((1 + w.DW) * (1 + w.DT))
}

// CapFactor returns total wire capacitance relative to nominal. Ground
// (area) capacitance scales as W/H; coupling capacitance to the adjacent
// line scales as T/S, with the spacing S = pitch − W shrinking when the
// line widens (at nominal geometry S equals W, so S/S0 = 1 − DW). The
// two components are blended with the technology's nominal coupling
// fraction. This is where the paper's explicitly-added coupling
// capacitances (address bus, decoder wires, bitline pairs) enter the
// model.
func (w Wire) CapFactor(t Tech) float64 {
	ground := (1 + w.DW) / (1 + w.DH)
	spacing := 1 - w.DW
	if spacing < 0.05 {
		spacing = 0.05 // a 33% 3-sigma window cannot close the gap, but stay safe
	}
	coupling := (1 + w.DT) / spacing
	return (1-t.CouplingFrac)*ground + t.CouplingFrac*coupling
}

// RCFactor returns the distributed-RC (Elmore) delay of a wire segment
// relative to nominal; for a wire-dominated stage the delay scales with
// the R·C product.
func (w Wire) RCFactor(t Tech) float64 {
	return w.ResFactor() * w.CapFactor(t)
}
