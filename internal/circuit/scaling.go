package circuit

import "fmt"

// TechAt returns the technology constants for a process node (in nm).
// PTM45 is the paper's operating point; the other nodes follow the
// published scaling trends: supply and threshold voltages drop with the
// node, short-channel effects (DIBL) and the relative weight of leakage
// worsen, and sense margins tighten (less signal swing to work with).
func TechAt(nodeNM int) (Tech, error) {
	t := PTM45()
	switch nodeNM {
	case 45:
		return t, nil
	case 90:
		t.Vdd = 1.2
		t.VtNominal = 0.280
		t.DIBL = 0.38
		t.SubVtSlope = 0.030
		t.SenseMarginGain = 2.2
		t.CellLeakage = 60e-9
		return t, nil
	case 65:
		t.Vdd = 1.1
		t.VtNominal = 0.250
		t.DIBL = 0.48
		t.SubVtSlope = 0.028
		t.SenseMarginGain = 2.6
		t.CellLeakage = 130e-9
		return t, nil
	case 32:
		t.Vdd = 0.9
		t.VtNominal = 0.200
		t.DIBL = 0.70
		t.SubVtSlope = 0.026
		t.SenseMarginGain = 3.6
		t.CellLeakage = 500e-9
		return t, nil
	default:
		return Tech{}, fmt.Errorf("circuit: no technology constants for %d nm", nodeNM)
	}
}
