// Quickstart: build a Monte Carlo chip population, derive the paper's
// nominal yield constraints, and see how many parametric losses each
// yield-aware scheme recovers.
package main

import (
	"fmt"

	"yieldcache"
)

func main() {
	// 1. Sample 1000 chips (16 KB 4-way L1 data caches under 45 nm
	//    process variation) and derive the nominal limits: latency within
	//    mean+sigma, leakage within 3x the population average.
	study := yieldcache.NewStudy(yieldcache.StudyConfig{Chips: 1000})
	fmt.Printf("delay limit %.0f ps, leakage limit %.1f mW\n\n",
		study.Limits.DelayPS, study.Limits.LeakageW*1e3)

	// 2. Classify every chip and apply YAPD, VACA and the Hybrid scheme.
	bd := study.Table2()
	fmt.Println(yieldcache.RenderBreakdown("Loss breakdown (regular cache)", bd))

	// 3. Yield summary: the Hybrid scheme recovers most parametric losses.
	fmt.Printf("\nbase yield:   %5.1f%%\n", bd.Yield(-1)*100)
	for i, s := range bd.Schemes {
		fmt.Printf("%-8s yield: %5.1f%%  (parametric loss reduced by %.1f%%)\n",
			s.Scheme, bd.Yield(i)*100, bd.LossReduction(i)*100)
	}

	// 4. Price the saved chips in performance: the average CPI increase
	//    on the SPEC2000 models for the most common saved configuration,
	//    one way at 5 cycles (VACA keeps it enabled).
	perf := yieldcache.NewPerfEvaluator(yieldcache.PerfConfig{Instructions: 100_000})
	cfg := yieldcache.CacheConfig{WayCycles: []int{5, 4, 4, 4}, HRegionOff: -1}
	fmt.Printf("\nCPI cost of running one way at 5 cycles: %.2f%% on average\n",
		perf.AverageDegradation(cfg, 0))
}
