// Designspace: sweep the yield-constraint space (the delay sigma
// multiplier and the leakage multiple) and watch how much each scheme
// recovers — a generalisation of the paper's Tables 4 and 5 from three
// points to a grid. Also sweeps the Monte Carlo population size to show
// convergence of the yield estimate.
package main

import (
	"fmt"

	"yieldcache"
	"yieldcache/internal/core"
	"yieldcache/internal/report"
)

func main() {
	pop := core.BuildPopulation(core.PopulationConfig{N: 1500, Seed: 2006})

	t := report.NewTable("Yield [%] across the constraint grid (1500 chips)",
		"delay k", "leak mult", "base", "YAPD", "VACA", "Hybrid")
	for _, k := range []float64{0.5, 1.0, 1.5, 2.0} {
		for _, m := range []float64{2, 3, 4} {
			cons := yieldcache.Constraints{Name: "sweep", DelaySigmaK: k, LeakageMult: m}
			lim := core.DeriveLimits(pop, cons)
			bd := core.BreakdownLosses(pop, lim, core.YAPD{}, core.VACA{}, core.Hybrid{})
			t.AddRow(k, m,
				fmt.Sprintf("%.1f", bd.Yield(-1)*100),
				fmt.Sprintf("%.1f", bd.Yield(0)*100),
				fmt.Sprintf("%.1f", bd.Yield(1)*100),
				fmt.Sprintf("%.1f", bd.Yield(2)*100))
		}
	}
	fmt.Println(t.String())

	// Convergence of the Monte Carlo estimate with population size.
	conv := report.NewTable("Monte Carlo convergence (nominal constraints)",
		"chips", "base yield [%]", "Hybrid yield [%]")
	for _, n := range []int{250, 500, 1000, 2000} {
		p := core.BuildPopulation(core.PopulationConfig{N: n, Seed: 2006})
		lim := core.DeriveLimits(p, yieldcache.Nominal())
		bd := core.BreakdownLosses(p, lim, core.Hybrid{})
		conv.AddRow(n, fmt.Sprintf("%.1f", bd.Yield(-1)*100), fmt.Sprintf("%.1f", bd.Yield(0)*100))
	}
	fmt.Println(conv.String())

	fmt.Println("Tighter delay constraints shift losses toward multi-way violations")
	fmt.Println("(which only the Hybrid addresses); tighter leakage constraints shift")
	fmt.Println("them toward the power-down schemes. The Hybrid dominates everywhere.")
}
