// Economics: the paper's motivation in dollars. Every discarded chip
// raises the cost of the survivors; this example prices the base case
// and each yield-aware scheme on a 45 nm wafer model where degraded
// parts sell at a performance-indexed discount, and shows how tester
// measurement error eats into the gain (test escapes ship bad parts,
// overkill discards good ones).
package main

import (
	"fmt"
	"log"

	"yieldcache"
	"yieldcache/internal/report"
)

func main() {
	study := yieldcache.NewStudy(yieldcache.StudyConfig{Chips: 1000})
	perf := yieldcache.NewPerfEvaluator(yieldcache.PerfConfig{Instructions: 100_000})
	model := yieldcache.DefaultCostModel()

	rows, err := study.Economics(perf, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(yieldcache.RenderEconomics(rows))
	base, hybrid := rows[0], rows[3]
	fmt.Printf("The Hybrid scheme is worth $%.0f per wafer (+%.1f%%) and cuts the\n",
		hybrid.RevenuePerWafer-base.RevenuePerWafer,
		(hybrid.RevenuePerWafer/base.RevenuePerWafer-1)*100)
	fmt.Printf("effective die cost from $%.2f to $%.2f.\n\n", base.CostPerDie, hybrid.CostPerDie)

	// How good does the tester have to be? Sweep measurement error.
	t := report.NewTable("Hybrid shipping decisions under tester noise (1000 chips)",
		"latency err", "leakage err", "shipped", "escapes", "overkill")
	for _, sigma := range []struct{ lat, leak float64 }{
		{0.00, 0.00}, {0.01, 0.03}, {0.02, 0.08}, {0.05, 0.15}, {0.10, 0.30},
	} {
		out := study.MeasurementStudy(yieldcache.SchemeHybrid(false), yieldcache.MeasurementModel{
			LatencySigma: sigma.lat, LeakageSigma: sigma.leak, Seed: 7,
		})
		t.AddRow(fmt.Sprintf("%.0f%%", sigma.lat*100), fmt.Sprintf("%.0f%%", sigma.leak*100),
			out.Shipped, out.Escapes, out.Overkill)
	}
	fmt.Println(t.String())
	fmt.Println("Escapes are parts shipped in a configuration their true parameters")
	fmt.Println("violate; overkill is yield left on the table by a noisy tester.")
}
