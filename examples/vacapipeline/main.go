// Vacapipeline: drive the out-of-order core directly with a VACA cache
// and watch the Section 4.3 machinery at work — speculative scheduling
// of load dependents, the load-bypass buffers absorbing 5-cycle hits,
// selective replay on misses — and the paper's rejected extension of
// deeper buffers covering 6-cycle ways.
package main

import (
	"fmt"

	"yieldcache/internal/cpu"
	"yieldcache/internal/report"
	"yieldcache/internal/workload"
)

func main() {
	const n = 500_000
	benchmarks := []string{"gzip", "gcc", "eon", "mcf", "swim", "mesa"}

	fmt.Println("One way at 5 cycles: dependents of loads hitting that way stall")
	fmt.Println("one cycle in the load-bypass buffers; dependents of misses replay.")
	fmt.Println()

	t := report.NewTable("VACA datapath activity (5,4,4,4 ways; 500k instructions)",
		"benchmark", "CPI base", "CPI VACA", "ΔCPI [%]", "slow hits", "bypass stalls", "buffer conflicts", "replays")
	for _, name := range benchmarks {
		p, _ := workload.ByName(name)
		base := cpu.Run(workload.NewGenerator(p, 1), n, cpu.DefaultConfig())
		vaca := cpu.Run(workload.NewGenerator(p, 1), n,
			cpu.DefaultConfig().WithL1D([]int{5, 4, 4, 4}, -1, 4))
		t.AddRow(name,
			fmt.Sprintf("%.3f", base.CPI), fmt.Sprintf("%.3f", vaca.CPI),
			fmt.Sprintf("%+.2f", (vaca.CPI/base.CPI-1)*100),
			vaca.L1DSlowHits, vaca.BypassStalls, vaca.BufferConflict, vaca.Replays)
	}
	fmt.Println(t.String())

	// The rejected extension (Section 4.3): deeper buffers tolerate
	// 6-cycle ways, at the cost the paper deemed not worth it.
	fmt.Println("Extension: a 6-cycle way with 1-entry vs 2-entry bypass buffers")
	fmt.Println()
	ext := report.NewTable("", "benchmark", "CPI 1-entry", "replays", "CPI 2-entry", "replays")
	for _, name := range benchmarks {
		p, _ := workload.ByName(name)
		cfg1 := cpu.DefaultConfig().WithL1D([]int{6, 4, 4, 4}, -1, 4)
		cfg2 := cfg1
		cfg2.BypassEntries = 2
		r1 := cpu.Run(workload.NewGenerator(p, 1), n, cfg1)
		r2 := cpu.Run(workload.NewGenerator(p, 1), n, cfg2)
		ext.AddRow(name, fmt.Sprintf("%.3f", r1.CPI), r1.Replays,
			fmt.Sprintf("%.3f", r2.CPI), r2.Replays)
	}
	fmt.Println(ext.String())
	fmt.Println("With a single entry every 6-cycle hit replays its dependents; the")
	fmt.Println("second entry converts those replays into one extra stall cycle.")
}
