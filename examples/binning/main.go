// Binning: the Section 4.5 study. The easy way to sell a chip whose
// cache misses its timing is to bin the whole part at a slower cache
// latency — every load then takes 5 (or 6) cycles. This example compares
// that naive approach against the yield-aware schemes, both in how many
// chips each can sell and in what the sold chips cost in CPI.
package main

import (
	"fmt"

	"yieldcache"
	"yieldcache/internal/core"
	"yieldcache/internal/report"
)

func main() {
	study := yieldcache.NewStudy(yieldcache.StudyConfig{Chips: 1000})
	perf := yieldcache.NewPerfEvaluator(yieldcache.PerfConfig{Instructions: 100_000})

	// Yield side: how many of the failing chips can each approach sell?
	schemes := []core.Scheme{
		core.NaiveBinning{MaxCycles: 5},
		core.NaiveBinning{MaxCycles: 6},
		core.YAPD{},
		core.VACA{},
		core.Hybrid{},
	}
	names := []string{"bin@5cyc", "bin@6cyc", "YAPD", "VACA", "Hybrid"}
	lost := make([]int, len(schemes))
	baseLoss := 0
	for _, chip := range study.Regular.Chips {
		if core.Classify(chip.Meas, study.Limits) == core.LossNone {
			continue
		}
		baseLoss++
		for i, s := range schemes {
			if out := s.Apply(chip.Meas, study.Limits); !out.Saved {
				lost[i]++
			}
		}
	}

	t := report.NewTable("Saved chips and their CPI cost (1000-chip population)",
		"approach", "chips lost", "chips saved", "avg CPI cost of saved config [%]")
	plusOne, plusTwo := perf.NaiveBinning()
	cost := []float64{
		plusOne,
		plusTwo, // worst case: every load pays 2 extra cycles
		perf.AverageDegradation(yieldcache.CacheConfig{WayCycles: []int{0, 4, 4, 4}, HRegionOff: -1}, 0),
		perf.AverageDegradation(yieldcache.CacheConfig{WayCycles: []int{5, 4, 4, 4}, HRegionOff: -1}, 0),
		perf.AverageDegradation(yieldcache.CacheConfig{WayCycles: []int{5, 4, 4, 4}, HRegionOff: -1}, 0),
	}
	for i, n := range names {
		t.AddRow(n, lost[i], baseLoss-lost[i], fmt.Sprintf("%.2f", cost[i]))
	}
	fmt.Printf("base parametric losses: %d of %d chips\n\n", baseLoss, len(study.Regular.Chips))
	fmt.Println(t.String())
	fmt.Println("The naive bins pay their latency on every load of every saved chip;")
	fmt.Println("VACA pays only on hits in the actually-slow way, and YAPD/Hybrid")
	fmt.Println("trade a sliver of hit rate instead — the paper's Section 4.5 point.")
}
