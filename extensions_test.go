package yieldcache

import (
	"strings"
	"testing"
)

func TestEconomicsOrdering(t *testing.T) {
	study := NewStudy(StudyConfig{Chips: 400, Seed: 2006})
	perf := smallPerf()
	rows, err := study.Economics(perf, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	base, yapd, vaca, hybrid := rows[0], rows[1], rows[2], rows[3]
	if base.Scheme != "Base" || hybrid.Scheme != "Hybrid" {
		t.Fatal("row order wrong")
	}
	// Every scheme beats the base in revenue and cost per die; the
	// Hybrid sells the most dies.
	for _, r := range []EconResult{yapd, vaca, hybrid} {
		if r.RevenuePerWafer <= base.RevenuePerWafer {
			t.Errorf("%s revenue (%v) does not beat base (%v)", r.Scheme, r.RevenuePerWafer, base.RevenuePerWafer)
		}
		if r.CostPerDie >= base.CostPerDie {
			t.Errorf("%s cost/die (%v) does not beat base (%v)", r.Scheme, r.CostPerDie, base.CostPerDie)
		}
	}
	if !(hybrid.DiesPerWafer >= yapd.DiesPerWafer && hybrid.DiesPerWafer >= vaca.DiesPerWafer) {
		t.Error("Hybrid should sell the most dies")
	}
	out := RenderEconomics(rows)
	if !strings.Contains(out, "cost/die") {
		t.Error("economics rendering incomplete")
	}
}

func TestMeasurementStudyFacade(t *testing.T) {
	study := NewStudy(StudyConfig{Chips: 300, Seed: 2006})
	perfect := study.MeasurementStudy(SchemeHybrid(false), MeasurementModel{Seed: 1})
	if perfect.Escapes != 0 || perfect.Overkill != 0 {
		t.Errorf("perfect tester misdecided: %+v", perfect)
	}
	noisy := study.MeasurementStudy(SchemeHybrid(false), MeasurementModel{
		LatencySigma: 0.08, LeakageSigma: 0.25, Seed: 1,
	})
	if noisy.Escapes+noisy.Overkill == 0 {
		t.Error("harsh noise should cause some misdecisions")
	}
}

func TestSchemeConstructors(t *testing.T) {
	study := NewStudy(StudyConfig{Chips: 100, Seed: 2006})
	schemes := []Scheme{
		SchemeBase(), SchemeYAPD(), SchemeHYAPD(), SchemeVACA(),
		SchemeHybrid(false), SchemeHybrid(true),
		SchemeNaiveBinning(5), SchemeLineDisable(0.25),
		AdaptiveHybrid{MemoryIntensity: 0.3},
	}
	for _, s := range schemes {
		if s.Name() == "" {
			t.Error("scheme without a name")
		}
		saved := 0
		for _, chip := range study.Regular.Chips {
			if s.Apply(chip.Meas, study.Limits).Saved {
				saved++
			}
		}
		if saved == 0 {
			t.Errorf("%s saved nothing, not even passing chips", s.Name())
		}
	}
}

func TestTechnologyTrendFacade(t *testing.T) {
	rows, err := TechnologyTrend(200, 2006)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("nodes = %d", len(rows))
	}
	out := RenderTrend(rows)
	if !strings.Contains(out, "32") || !strings.Contains(out, "90") {
		t.Error("trend rendering incomplete")
	}
}

func TestCompareSSTA(t *testing.T) {
	study := NewStudy(StudyConfig{Chips: 400, Seed: 2006})
	c := study.CompareSSTA()
	if c.AnalyticMeanPS <= 0 || c.MCMeanPS <= 0 {
		t.Fatal("degenerate comparison")
	}
	if c.AnalyticMeanPS >= c.MCMeanPS {
		t.Error("the analytical mean should sit below the Monte Carlo mean (margin nonlinearity)")
	}
	if c.AnalyticViolationPct >= c.MCViolationPct {
		t.Errorf("SSTA should underestimate violations: %v vs %v",
			c.AnalyticViolationPct, c.MCViolationPct)
	}
	if !strings.Contains(RenderSSTA(c), "Monte Carlo") {
		t.Error("rendering incomplete")
	}
}
