package yieldcache

// Extensions beyond the paper's evaluation: manufacturing economics,
// measurement-noise (test escape / overkill) analysis, the
// technology-scaling trend, and the adaptive Hybrid policy. See
// DESIGN.md §4 ("Ablations beyond the paper").

import (
	"io"

	"yieldcache/internal/circuit"
	"yieldcache/internal/core"
	"yieldcache/internal/econ"
	"yieldcache/internal/report"
	"yieldcache/internal/sram"
	"yieldcache/internal/ssta"
	"yieldcache/internal/stats"
	"yieldcache/internal/variation"
)

// Re-exports for the extension surfaces.
type (
	// CostModel prices wafers, dies and degraded parts.
	CostModel = econ.CostModel
	// EconResult is one scheme's wafer economics.
	EconResult = econ.Result
	// MeasurementModel is the tester-accuracy model.
	MeasurementModel = core.MeasurementModel
	// TestOutcome summarises decisions under measurement noise.
	TestOutcome = core.TestOutcome
	// NodeYield is one technology node's yield row.
	NodeYield = core.NodeYield
	// AdaptiveHybrid is the workload-aware Hybrid policy of Section 4.4's
	// discussion.
	AdaptiveHybrid = core.AdaptiveHybrid
)

// DefaultCostModel returns the 45 nm wafer economics used by the
// examples.
func DefaultCostModel() CostModel { return econ.Default45nm() }

// Economics prices the base case and each scheme on the study's
// population: passing chips sell at full price, chips saved by a scheme
// sell at the price of their degraded configuration.
func (s *Study) Economics(e *PerfEvaluator, model CostModel) ([]EconResult, error) {
	bd := s.Table2()
	n := float64(bd.N)
	passFrac := 1 - float64(bd.BaseTotal)/n

	t6 := s.Table6(e)
	mkBins := func(pick func(Table6Row) (float64, bool)) []econ.Bin {
		bins := []econ.Bin{{Fraction: passFrac}}
		for _, r := range t6.Rows {
			if loss, ok := pick(r); ok {
				bins = append(bins, econ.Bin{Fraction: float64(r.Chips) / n, CPILossPct: loss})
			}
		}
		return bins
	}

	specs := []struct {
		name string
		bins []econ.Bin
	}{
		{"Base", []econ.Bin{{Fraction: passFrac}}},
		{"YAPD", mkBins(func(r Table6Row) (float64, bool) { return r.YAPD, r.YAPDOK })},
		{"VACA", mkBins(func(r Table6Row) (float64, bool) { return r.VACA, r.VACAOK })},
		{"Hybrid", mkBins(func(r Table6Row) (float64, bool) { return r.Hybrid, r.HybridOK })},
	}
	out := make([]EconResult, 0, len(specs))
	for _, sp := range specs {
		r, err := model.Evaluate(sp.name, sp.bins)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RenderEconomics formats the wafer-economics comparison.
func RenderEconomics(rows []EconResult) string {
	t := report.NewTable("Wafer economics by scheme",
		"scheme", "parametric yield [%]", "sellable dies/wafer", "revenue/wafer [$]", "cost/die [$]")
	for _, r := range rows {
		t.AddRow(r.Scheme, r.SellableFraction*100, r.DiesPerWafer, r.RevenuePerWafer, r.CostPerDie)
	}
	return t.String()
}

// MeasurementStudy evaluates a scheme's shipping decisions under
// tester noise on the regular population.
func (s *Study) MeasurementStudy(scheme Scheme, mm MeasurementModel) TestOutcome {
	return core.EvaluateUnderNoise(s.Regular, s.Limits, scheme, mm)
}

// SchemeBase returns the baseline scheme: ship a chip only if it meets
// both limits unmodified. Its losses are the "base" column of Table 2.
func SchemeBase() Scheme { return core.Base{} }

// SchemeYAPD returns yield-aware power-down (Section 4.1): power down
// whole ways that violate the delay or leakage limit, vertically.
func SchemeYAPD() Scheme { return core.YAPD{} }

// SchemeHYAPD returns the horizontal variant of YAPD (Section 4.3),
// which powers down a horizontal region across all ways. Apply it to a
// study's horizontal population.
func SchemeHYAPD() Scheme { return core.HYAPD{} }

// SchemeVACA returns variable-access-time cache binning (Section 4.2):
// slow ways are kept enabled but accessed in extra cycles.
func SchemeVACA() Scheme { return core.VACA{} }

// SchemeHybrid returns the combined scheme (Section 4.4) that tries
// VACA-style slow-way binning first and falls back to powering down.
// With horizontal set it disables horizontal regions instead of ways.
func SchemeHybrid(horizontal bool) Scheme { return core.Hybrid{Horizontal: horizontal} }

// SchemeNaiveBinning returns the speed-binning strawman: ship every
// chip at its slowest way's cycle count, provided that count does not
// exceed maxCycles. No power-down, so leakage violators are lost.
func SchemeNaiveBinning(maxCycles int) Scheme {
	return core.NaiveBinning{MaxCycles: maxCycles}
}

// SchemeLineDisable returns the cache-line-disable comparison point:
// individual faulty lines are disabled, up to maxFrac of the cache.
func SchemeLineDisable(maxFrac float64) Scheme {
	return core.LineDisable{MaxDisabledFrac: maxFrac}
}

// SSTAComparison contrasts the analytical (first-order canonical SSTA)
// latency distribution against the Monte Carlo population — the
// Section 2 trade-off between efficiency and accuracy, quantified.
type SSTAComparison struct {
	AnalyticMeanPS  float64
	AnalyticSigmaPS float64
	MCMeanPS        float64
	MCSigmaPS       float64
	// Violation percentages against the study's delay limit.
	AnalyticViolationPct float64
	MCViolationPct       float64
}

// CompareSSTA runs the block-based SSTA on the same cache and compares
// its latency prediction with the study's Monte Carlo population. The
// analytical tail comes out lighter (the sense-margin nonlinearity and
// the sub-chip spatial structure are linearised away), which is why the
// paper — like this reproduction — uses Monte Carlo for the yield
// numbers.
func (s *Study) CompareSSTA() SSTAComparison {
	an := ssta.AnalyzeCache(circuit.PTM45(), variation.Nassif45nm(), sram.Paper16KB(), false)
	lat := s.Regular.Latencies()
	m, sd := stats.MeanStd(lat)
	viol := 0
	for _, l := range lat {
		if l > s.Limits.DelayPS {
			viol++
		}
	}
	return SSTAComparison{
		AnalyticMeanPS:       an.Latency.Mean,
		AnalyticSigmaPS:      an.Latency.Sigma(),
		MCMeanPS:             m,
		MCSigmaPS:            sd,
		AnalyticViolationPct: an.Latency.ProbAbove(s.Limits.DelayPS) * 100,
		MCViolationPct:       float64(viol) / float64(len(lat)) * 100,
	}
}

// RenderSSTA formats the comparison.
func RenderSSTA(c SSTAComparison) string {
	t := report.NewTable("SSTA vs Monte Carlo (cache access latency)",
		"method", "mean [ps]", "sigma [ps]", "P(delay violation) [%]")
	t.AddRow("SSTA (canonical, Clark max)", c.AnalyticMeanPS, c.AnalyticSigmaPS, c.AnalyticViolationPct)
	t.AddRow("Monte Carlo (2000 chips)", c.MCMeanPS, c.MCSigmaPS, c.MCViolationPct)
	return t.String()
}

// TechnologyTrend evaluates the parametric yield across the 90/65/45/32
// nm nodes — the modelled counterpart of Figure 1's parametric
// component.
func TechnologyTrend(chips int, seed int64) ([]NodeYield, error) {
	return core.YieldTrend(chips, seed)
}

// RenderTrend formats the technology trend.
func RenderTrend(rows []NodeYield) string {
	t := report.NewTable("Parametric yield vs technology node (modelled Figure 1 trend)",
		"node [nm]", "base [%]", "YAPD [%]", "Hybrid [%]", "leakage losses", "delay losses")
	for _, r := range rows {
		t.AddRow(r.NodeNM, r.BaseYield*100, r.YAPDYield*100, r.HybridYield*100,
			r.LeakageLoss, r.DelayLoss)
	}
	return t.String()
}

// SavePopulation writes the study's regular population to w as a
// versioned gob stream so later runs can skip the Monte Carlo. The
// yieldsim -save flag uses this; docs/API.md describes the format.
func (s *Study) SavePopulation(w io.Writer) error { return s.Regular.Save(w) }
