package yieldcache

// Design-space exploration: sweep a grid over technology parameters,
// cache geometries and constraint sets, evaluating every point from one
// shared set of variation draws (common random numbers via
// core.DeltaBuilder) and reducing the results to Pareto frontiers.
// docs/SWEEPS.md is the reference for the spec schema and guarantees.

import (
	"context"

	"yieldcache/internal/circuit"
	"yieldcache/internal/core"
	"yieldcache/internal/sram"
)

// Re-exports for the sweep surface.
type (
	// Tech is the technology parameter set every config perturbs.
	Tech = circuit.Tech
	// CacheGeometry is a cache organisation (ways × banks × rows ×
	// bits × paths).
	CacheGeometry = sram.Geometry
	// SweepSpec names a design-space grid; zero dimensions fall back to
	// the paper defaults.
	SweepSpec = core.SweepSpec
	// TechAxis is one swept technology parameter and its grid values.
	TechAxis = core.TechAxis
	// SweepPlan is a planned sweep: resolved spec, dense config list
	// and the delta-reuse evaluation structure.
	SweepPlan = core.SweepPlan
	// SweepConfig is one resolved design point.
	SweepConfig = core.SweepConfig
	// SweepStats counts the builds a plan performs and avoids.
	SweepStats = core.SweepStats
	// SweepEval is one config's evaluated yields, limits and population
	// means.
	SweepEval = core.SweepEval
	// SchemeYield is one scheme's yield at one config.
	SchemeYield = core.SchemeYield
	// SweepOptions tune RunSweep (scheme set, parallelism, resume skip,
	// per-config callback).
	SweepOptions = core.SweepRunOptions
	// ParetoPoint is one frontier candidate (maximise yield, minimise
	// latency and leakage).
	ParetoPoint = core.ParetoPoint
)

// DefaultTech returns the 45 nm PTM technology every study and sweep
// starts from.
func DefaultTech() Tech { return circuit.PTM45() }

// PaperGeometry returns the paper's 16 KB 4-way cache organisation.
func PaperGeometry() CacheGeometry { return sram.Paper16KB() }

// SweepTechParams lists the canonical technology parameter names a
// TechAxis may sweep.
func SweepTechParams() []string { return core.TechParamNames() }

// PlanSweep validates a spec and plans the evaluation order that
// maximises draw reuse: one full build per geometry, delta builds for
// every distinct technology, shared populations across constraint
// sets. See core.PlanSweep.
func PlanSweep(spec SweepSpec) (*SweepPlan, error) { return core.PlanSweep(spec) }

// RunSweep executes a plan, returning evaluations densely indexed by
// SweepConfig.Index. Callers that resume from a checkpoint pass a
// SweepOptions.Skip hook and overlay the skipped entries before
// reducing frontiers.
func RunSweep(ctx context.Context, plan *SweepPlan, opt SweepOptions) ([]SweepEval, error) {
	return core.RunSweep(ctx, plan, opt)
}

// SweepFrontiers reduces complete evaluations into one Pareto frontier
// per scheme (plus "Base"): config indices no other config dominates
// on (yield, mean latency, mean leakage).
func SweepFrontiers(evals []SweepEval) map[string][]int { return core.SweepFrontiers(evals) }

// ParetoFrontier returns the indices of the non-dominated points.
func ParetoFrontier(pts []ParetoPoint) []int { return core.ParetoFrontier(pts) }

// SweepResult bundles a completed sweep: the plan, every evaluation in
// spec order, the per-scheme Pareto frontiers and the reuse stats.
type SweepResult struct {
	Plan      *SweepPlan
	Evals     []SweepEval
	Frontiers map[string][]int
	Stats     SweepStats
}

// RunSweepCtx plans and runs a sweep in one call — the facade
// counterpart of NewStudyCtx for grid-shaped questions.
func RunSweepCtx(ctx context.Context, spec SweepSpec, opt SweepOptions) (*SweepResult, error) {
	plan, err := core.PlanSweep(spec)
	if err != nil {
		return nil, err
	}
	evals, err := core.RunSweep(ctx, plan, opt)
	if err != nil {
		return nil, err
	}
	return &SweepResult{
		Plan:      plan,
		Evals:     evals,
		Frontiers: core.SweepFrontiers(evals),
		Stats:     plan.Stats(),
	}, nil
}

// SweepEconomics prices every evaluation under the cost model using
// the generalised two-bin Table 6 pricing (econ.CostModel.FromYields):
// base-passing chips at full price, scheme-saved chips degraded by
// degradedCPIPct. Row i holds the base result followed by one result
// per scheme, aligned with Evals[i].Yields.
func SweepEconomics(evals []SweepEval, model CostModel, degradedCPIPct float64) ([][]EconResult, error) {
	out := make([][]EconResult, len(evals))
	for i, ev := range evals {
		row := make([]EconResult, 0, len(ev.Yields)+1)
		base, err := model.FromYields("Base", ev.BaseYield, ev.BaseYield, 0)
		if err != nil {
			return nil, err
		}
		row = append(row, base)
		for _, y := range ev.Yields {
			r, err := model.FromYields(y.Scheme, ev.BaseYield, y.Yield, degradedCPIPct)
			if err != nil {
				return nil, err
			}
			row = append(row, r)
		}
		out[i] = row
	}
	return out, nil
}
