package yieldcache

// One benchmark per table and figure of the paper's evaluation section,
// plus ablation benches for the design choices called out in DESIGN.md.
// Each benchmark regenerates its experiment's data; run with
//
//	go test -bench=. -benchmem
//
// The shared study/evaluator are built once (paper-scale population,
// reduced instruction counts so a full -bench=. pass stays minutes, not
// hours) and the per-iteration work is the experiment's analysis step.

import (
	"context"
	"sync"
	"testing"
	"time"

	"yieldcache/internal/circuit"
	"yieldcache/internal/core"
	"yieldcache/internal/cpu"
	"yieldcache/internal/sram"
	"yieldcache/internal/variation"
	"yieldcache/internal/workload"
)

var benchState struct {
	once  sync.Once
	study *Study
	perf  *PerfEvaluator
}

func benchSetup(b *testing.B) (*Study, *PerfEvaluator) {
	b.Helper()
	benchState.once.Do(func() {
		benchState.study = NewStudy(StudyConfig{Chips: 2000, Seed: 2006})
		benchState.perf = NewPerfEvaluator(PerfConfig{Instructions: 150_000})
	})
	return benchState.study, benchState.perf
}

func BenchmarkTable2(b *testing.B) {
	s, _ := benchSetup(b)
	var bd LossBreakdown
	for i := 0; i < b.N; i++ {
		bd = s.Table2()
	}
	b.ReportMetric(float64(bd.BaseTotal), "base-losses")
	b.ReportMetric(float64(bd.Schemes[0].Total), "YAPD-losses")
	b.ReportMetric(float64(bd.Schemes[1].Total), "VACA-losses")
	b.ReportMetric(float64(bd.Schemes[2].Total), "Hybrid-losses")
	b.ReportMetric(bd.Yield(2)*100, "Hybrid-yield-%")
}

func BenchmarkTable3(b *testing.B) {
	s, _ := benchSetup(b)
	var bd LossBreakdown
	for i := 0; i < b.N; i++ {
		bd = s.Table3()
	}
	b.ReportMetric(float64(bd.BaseTotal), "base-losses")
	b.ReportMetric(float64(bd.Schemes[0].Total), "HYAPD-losses")
	b.ReportMetric(float64(bd.Schemes[2].Total), "HybridH-losses")
}

func BenchmarkTable4(b *testing.B) {
	s, _ := benchSetup(b)
	var rows []ConstraintTotals
	for i := 0; i < b.N; i++ {
		rows = s.Table4()
	}
	b.ReportMetric(float64(rows[0].Base), "relaxed-base")
	b.ReportMetric(float64(rows[1].Base), "strict-base")
	b.ReportMetric(float64(rows[0].Schemes[2].Total), "relaxed-hybrid")
	b.ReportMetric(float64(rows[1].Schemes[2].Total), "strict-hybrid")
}

func BenchmarkTable5(b *testing.B) {
	s, _ := benchSetup(b)
	var rows []ConstraintTotals
	for i := 0; i < b.N; i++ {
		rows = s.Table5()
	}
	b.ReportMetric(float64(rows[0].Base), "relaxed-base")
	b.ReportMetric(float64(rows[1].Base), "strict-base")
}

func BenchmarkTable6(b *testing.B) {
	s, e := benchSetup(b)
	var t6 Table6
	for i := 0; i < b.N; i++ {
		t6 = s.Table6(e)
	}
	b.ReportMetric(t6.YAPDSum, "YAPD-wsum-%")
	b.ReportMetric(t6.VACASum, "VACA-wsum-%")
	b.ReportMetric(t6.HybridSum, "Hybrid-wsum-%")
}

func BenchmarkFigure8(b *testing.B) {
	s, _ := benchSetup(b)
	var pts []ScatterPoint
	for i := 0; i < b.N; i++ {
		pts = s.Figure8()
	}
	b.ReportMetric(float64(len(pts)), "points")
}

func BenchmarkFigure9(b *testing.B) {
	_, e := benchSetup(b)
	var f FigureSeries
	for i := 0; i < b.N; i++ {
		f = e.Figure9()
	}
	yapd, vaca := 0.0, 0.0
	for i := range f.Series["YAPD"] {
		yapd += f.Series["YAPD"][i]
		vaca += f.Series["VACA"][i]
	}
	b.ReportMetric(yapd/24, "YAPD-avg-%")
	b.ReportMetric(vaca/24, "VACA-avg-%")
}

func BenchmarkFigure10(b *testing.B) {
	_, e := benchSetup(b)
	var f FigureSeries
	for i := 0; i < b.N; i++ {
		f = e.Figure10()
	}
	sum := 0.0
	for _, v := range f.Series["VACA"] {
		sum += v
	}
	b.ReportMetric(sum/24, "VACA-avg-%")
}

func BenchmarkNaiveBinning(b *testing.B) {
	_, e := benchSetup(b)
	var p1, p2 float64
	for i := 0; i < b.N; i++ {
		p1, p2 = e.NaiveBinning()
	}
	b.ReportMetric(p1, "plus1-%")
	b.ReportMetric(p2, "plus2-%")
}

// BenchmarkHYAPDLatency verifies the Section 4.2 claim in circuit form:
// the H-YAPD decoder organisation costs 2.5% average access latency.
func BenchmarkHYAPDLatency(b *testing.B) {
	s, _ := benchSetup(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		var reg, hor float64
		for j := range s.Regular.Chips {
			reg += s.Regular.Chips[j].Meas.LatencyPS
			hor += s.Horizontal.Chips[j].Meas.LatencyPS
		}
		ratio = hor / reg
	}
	b.ReportMetric((ratio-1)*100, "latency-overhead-%")
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationCorrelation sweeps the inter-way correlation factors:
// weaker spatial correlation (larger factors) moves loss mass from
// multi-way violations to single-way ones, which is the regime where
// plain YAPD already suffices — the argument for H-YAPD rests on strong
// correlation.
func BenchmarkAblationCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, scale := range []float64{0.5, 1.0, 2.0} {
			f := variation.PaperFactors()
			f.VerticalWay *= scale
			f.HorizWay *= scale
			f.DiagWay *= scale
			if f.DiagWay > 1 {
				f.DiagWay = 1
			}
			pop := core.BuildPopulation(core.PopulationConfig{N: 500, Seed: 2006, Fact: &f})
			lim := core.DeriveLimits(pop, core.Nominal())
			bd := core.BreakdownLosses(pop, lim, core.YAPD{})
			multi := bd.Base[core.LossDelay2] + bd.Base[core.LossDelay3] + bd.Base[core.LossDelay4]
			b.ReportMetric(float64(multi), "multiway@"+scaleName(scale))
		}
	}
}

func scaleName(s float64) string {
	switch s {
	case 0.5:
		return "0.5x"
	case 1.0:
		return "1x"
	default:
		return "2x"
	}
}

// BenchmarkAblationBufferDepth prices the paper's rejected extension:
// 2-entry load-bypass buffers (supporting 6-cycle ways) against the
// single-entry design, on a cache with one 6-cycle way.
func BenchmarkAblationBufferDepth(b *testing.B) {
	p, _ := workload.ByName("gcc")
	for i := 0; i < b.N; i++ {
		cfg1 := cpu.DefaultConfig().WithL1D([]int{6, 4, 4, 4}, -1, 4)
		cfg2 := cfg1
		cfg2.BypassEntries = 2
		base := cpu.Run(workload.NewGenerator(p, 1), 150_000, cpu.DefaultConfig())
		r1 := cpu.Run(workload.NewGenerator(p, 1), 150_000, cfg1)
		r2 := cpu.Run(workload.NewGenerator(p, 1), 150_000, cfg2)
		b.ReportMetric((r1.CPI/base.CPI-1)*100, "depth1-dCPI-%")
		b.ReportMetric((r2.CPI/base.CPI-1)*100, "depth2-dCPI-%")
	}
}

// BenchmarkAblationPopulation sweeps the Monte Carlo population size:
// the yield estimate converges well before the paper's 2000 chips.
func BenchmarkAblationPopulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{250, 1000, 2000} {
			pop := core.BuildPopulation(core.PopulationConfig{N: n, Seed: 2006})
			lim := core.DeriveLimits(pop, core.Nominal())
			bd := core.BreakdownLosses(pop, lim, core.Hybrid{})
			b.ReportMetric(bd.Yield(0)*100, "hybrid-yield@"+popName(n))
		}
	}
}

func popName(n int) string {
	switch n {
	case 250:
		return "250"
	case 1000:
		return "1000"
	default:
		return "2000"
	}
}

// BenchmarkAblationPrefetch asks whether a next-line prefetcher (not in
// the paper's machine) changes the picture: it cuts the stream-miss
// baseline, which *raises* the relative cost of VACA's slow hits — the
// schemes matter more, not less, on a prefetching core.
func BenchmarkAblationPrefetch(b *testing.B) {
	p, _ := workload.ByName("swim")
	for i := 0; i < b.N; i++ {
		plain := cpu.DefaultConfig()
		pf := plain
		pf.NextLinePrefetch = true
		pfSlow := pf.WithL1D([]int{5, 4, 4, 4}, -1, 4)
		slow := plain.WithL1D([]int{5, 4, 4, 4}, -1, 4)

		base := cpu.Run(workload.NewGenerator(p, 1), 150_000, plain)
		baseP := cpu.Run(workload.NewGenerator(p, 1), 150_000, pf)
		d := cpu.Run(workload.NewGenerator(p, 1), 150_000, slow)
		dP := cpu.Run(workload.NewGenerator(p, 1), 150_000, pfSlow)
		b.ReportMetric((d.CPI/base.CPI-1)*100, "vaca-dCPI-noPF-%")
		b.ReportMetric((dP.CPI/baseP.CPI-1)*100, "vaca-dCPI-PF-%")
		b.ReportMetric(base.CPI/baseP.CPI, "PF-speedup")
	}
}

// BenchmarkAblationThreshold sweeps the 5-cycle binning threshold: the
// paper bins a way at 5 cycles when its latency fits 5/4 of the delay
// limit. A pessimistic (tighter) threshold pushes ways into the
// 6+-cycle bin, growing VACA's losses.
func BenchmarkAblationThreshold(b *testing.B) {
	s, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		for _, scale := range []float64{0.95, 1.0, 1.05} {
			lim := s.Limits
			lim.DelayPS *= scale
			bd := core.BreakdownLosses(s.Regular, lim, core.VACA{})
			b.ReportMetric(float64(bd.Schemes[0].Total), "VACA-losses@"+thName(scale))
		}
	}
}

func thName(s float64) string {
	switch {
	case s < 1:
		return "tight"
	case s > 1:
		return "loose"
	default:
		return "paper"
	}
}

// BenchmarkAblationAdaptiveHybrid compares the fixed Hybrid against the
// adaptive policy (Section 4.4's discussion) on the yield side: both
// save the same chips, so the difference is purely in shipped
// configurations — reported as the fraction of saved chips whose
// configuration changed for a compute-bound workload.
func BenchmarkAblationAdaptiveHybrid(b *testing.B) {
	s, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		changed, saved := 0, 0
		a := core.AdaptiveHybrid{MemoryIntensity: 0.1}
		for _, chip := range s.Regular.Chips {
			if core.Classify(chip.Meas, s.Limits) == core.LossNone {
				continue
			}
			h := core.Hybrid{}.Apply(chip.Meas, s.Limits)
			if !h.Saved {
				continue
			}
			saved++
			if g := a.Apply(chip.Meas, s.Limits); g.DisabledWay != h.DisabledWay {
				changed++
			}
		}
		b.ReportMetric(float64(saved), "saved")
		b.ReportMetric(float64(changed), "reconfigured")
	}
}

// BenchmarkPopulationBuild measures the Monte Carlo throughput itself
// (chips evaluated per second drives every other experiment).
func BenchmarkPopulationBuild(b *testing.B) {
	const n = 200
	for i := 0; i < b.N; i++ {
		core.BuildPopulation(core.PopulationConfig{N: n, Seed: int64(i + 1)})
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "chips/s")
}

// BenchmarkPopulationBuildPair measures the shared-draw pair builder:
// one sampling pass yields both organisations, so each iteration
// produces 2N measurements.
func BenchmarkPopulationBuildPair(b *testing.B) {
	const n = 200
	for i := 0; i < b.N; i++ {
		core.BuildPopulationPair(core.PopulationConfig{N: n, Seed: int64(i + 1)})
	}
	b.ReportMetric(float64(2*n*b.N)/b.Elapsed().Seconds(), "chips/s")
}

// BenchmarkPopulationBuildPairCheckpointed is the pair builder with the
// durable-jobs checkpointer armed at a server-realistic interval. The
// comparison against BenchmarkPopulationBuildPair (Checkpoint nil) pins
// the acceptance bar: the disabled-store path adds zero allocations to
// the per-chip hot loop, and enabling checkpointing costs only the
// checkpointer goroutine plus per-tick sink work, nothing per chip.
func BenchmarkPopulationBuildPairCheckpointed(b *testing.B) {
	const n = 200
	sunk := 0
	ck := &core.CheckpointConfig{
		Interval: 2 * time.Millisecond,
		Sink:     func(*core.BuildCheckpoint) error { sunk++; return nil },
	}
	for i := 0; i < b.N; i++ {
		core.BuildPopulationPair(core.PopulationConfig{
			N: n, Seed: int64(i + 1), Checkpoint: ck,
		})
	}
	b.ReportMetric(float64(2*n*b.N)/b.Elapsed().Seconds(), "chips/s")
	b.ReportMetric(float64(sunk)/float64(b.N), "ckpts/op")
}

// BenchmarkEstimateArmed is the pair builder with streaming yield
// estimation armed at a server-realistic snapshot interval. Like the
// checkpointer, the estimator must stay off the per-chip hot path: the
// benchmark first pins the alloc budget (arming costs at most two
// allocations per build — the estimator and its frontier slice — and
// nothing per chip) and then reports the throughput with snapshots
// publishing.
func BenchmarkEstimateArmed(b *testing.B) {
	const n = 200
	plainCfg := core.PopulationConfig{N: n, Seed: 2006}
	plain := testing.AllocsPerRun(10, func() { core.BuildPopulationPair(plainCfg) })
	published := 0
	est := &core.EstimateConfig{
		Interval: 2 * time.Millisecond,
		Sink:     func(*core.YieldEstimate) { published++ },
	}
	armedCfg := plainCfg
	armedCfg.Estimate = est
	armed := testing.AllocsPerRun(10, func() { core.BuildPopulationPair(armedCfg) })
	if extra := armed - plain; extra > 2 {
		b.Fatalf("arming estimation costs %.0f extra allocs per build, budget is 2", extra)
	}
	published = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		armedCfg.Seed = int64(i + 1)
		core.BuildPopulationPair(armedCfg)
	}
	b.ReportMetric(float64(2*n*b.N)/b.Elapsed().Seconds(), "chips/s")
	b.ReportMetric(float64(published)/float64(b.N), "snapshots/op")
}

// BenchmarkMeasure is the steady-state single-chip kernel: one warm
// evaluator, one reused destination. The interesting numbers are
// allocs/op (must be 0) and ns/op.
func BenchmarkMeasure(b *testing.B) {
	model := sram.NewModel(circuit.PTM45(), false)
	sampler := variation.NewSampler(variation.Nassif45nm(), variation.PaperFactors(), 2006)
	ev := model.NewEvaluator(sampler.NewScratch())
	var cm sram.CacheMeasurement
	warm := ev.Scratch().Chip(0)
	ev.Measure(&warm, &cm) // sizes cm and the kernel scratch outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip := ev.Scratch().Chip(i)
		ev.Measure(&chip, &cm)
	}
}

// BenchmarkCPUSim measures the cycle-model throughput on one benchmark.
func BenchmarkCPUSim(b *testing.B) {
	p, _ := workload.ByName("gzip")
	cfg := cpu.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Run(workload.NewGenerator(p, 1), 100_000, cfg)
	}
	b.ReportMetric(100_000, "instructions/op")
}

// BenchmarkCPUSimDetailed measures the event-driven core's throughput
// and reports its agreement with the fast model on the same run.
func BenchmarkCPUSimDetailed(b *testing.B) {
	p, _ := workload.ByName("gzip")
	cfg := cpu.DefaultConfig()
	fast := cpu.Run(workload.NewGenerator(p, 1), 100_000, cfg)
	b.ResetTimer()
	var det cpu.Result
	for i := 0; i < b.N; i++ {
		det = cpu.RunDetailed(workload.NewGenerator(p, 1), 100_000, cfg)
	}
	b.ReportMetric(det.CPI/fast.CPI, "detailed/fast-CPI")
}

// sweepBenchSpec is the grid shared by the delta-reuse and
// full-rebuild sweep benchmarks: a 3×2 vdd × vt_nominal technology
// grid, 200 chips per config. Six configs, one full build, five delta
// builds.
func sweepBenchSpec() SweepSpec {
	return SweepSpec{
		N: 200, Seed: 2006,
		Axes: []TechAxis{
			{Param: "vdd", Values: []float64{1.10, 1.08, 1.05}},
			{Param: "vt_nominal", Values: []float64{0.30, 0.32}},
		},
	}
}

// BenchmarkSweepDelta runs the grid through the sweep planner: the
// base config is built once and every neighbouring technology is a
// delta rebuild over the retained draws. Compare chips/s against
// BenchmarkSweepFullRebuild to see what the reuse buys.
func BenchmarkSweepDelta(b *testing.B) {
	spec := sweepBenchSpec()
	var res *SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = RunSweepCtx(context.Background(), spec, SweepOptions{Parallel: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	st := res.Stats
	b.ReportMetric(float64(st.Configs*spec.N*b.N)/b.Elapsed().Seconds(), "chips/s")
	b.ReportMetric(float64(st.DeltaBuilds), "delta-builds")
}

// BenchmarkSweepFullRebuild evaluates the same grid the naive way: an
// independent full population build per config, no draw reuse. This is
// the wall-clock baseline the sweep service's delta planning is judged
// against.
func BenchmarkSweepFullRebuild(b *testing.B) {
	spec := sweepBenchSpec()
	plan, err := PlanSweep(spec)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, cfg := range plan.Configs {
			tech := cfg.Tech
			core.BuildPopulation(core.PopulationConfig{
				N: spec.N, Seed: spec.Seed, Tech: &tech, Workers: 1,
			})
		}
	}
	b.ReportMetric(float64(len(plan.Configs)*spec.N*b.N)/b.Elapsed().Seconds(), "chips/s")
}
