module yieldcache

go 1.22
