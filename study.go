package yieldcache

import (
	"context"

	"yieldcache/internal/core"
	"yieldcache/internal/obs"
	"yieldcache/internal/report"
)

// Re-exported core types: the facade's vocabulary is the paper's.
type (
	// Constraints is a yield requirement (delay mean+k*sigma, leakage
	// m*average).
	Constraints = core.Constraints
	// Limits are absolute pass/fail thresholds.
	Limits = core.Limits
	// LossBreakdown is the content of Tables 2/3.
	LossBreakdown = core.LossBreakdown
	// ConstraintTotals is one row of Tables 4/5.
	ConstraintTotals = core.ConstraintTotals
	// ScatterPoint is one chip of Figure 8.
	ScatterPoint = core.ScatterPoint
	// CacheConfig is a saved chip's cache configuration.
	CacheConfig = core.CacheConfig
	// SavedConfig is one Table 6 row key.
	SavedConfig = core.SavedConfig
	// Scheme is a yield-aware cache architecture.
	Scheme = core.Scheme
	// LossReason classifies a parametric failure.
	LossReason = core.LossReason
	// BuildCheckpoint is a consistent prefix of an interrupted pair
	// build: the chips measured so far plus the parameters that validate
	// a resume (see CheckpointConfig).
	BuildCheckpoint = core.BuildCheckpoint
	// CheckpointConfig enables periodic build checkpointing and crash
	// resume on a study build (StudyConfig.Checkpoint).
	CheckpointConfig = core.CheckpointConfig
	// EstimateConfig arms streaming yield estimation on a study build
	// (StudyConfig.Estimate): live Wilson confidence intervals,
	// per-loss-reason error bars and optional precision-targeted
	// stopping.
	EstimateConfig = core.EstimateConfig
	// YieldEstimate is one streaming snapshot of a build's statistical
	// state (and, via Study.Estimate, the final one).
	YieldEstimate = core.YieldEstimate
	// ReasonEstimate is one loss reason's share with its confidence
	// interval inside a YieldEstimate.
	ReasonEstimate = core.ReasonEstimate
)

// DecodeBuildCheckpoint reads a checkpoint written by
// BuildCheckpoint.Encode, verifying its magic, format version and
// payload checksum before decoding.
var DecodeBuildCheckpoint = core.DecodeBuildCheckpoint

// The constraint sets of Section 5.1.
var (
	Nominal = core.Nominal
	Relaxed = core.Relaxed
	Strict  = core.Strict
)

// LossNoneReason returns the classification of a chip with no
// parametric violation.
func LossNoneReason() LossReason { return core.LossNone }

// LossLeakageReason returns the classification of a chip lost to the
// leakage limit — the Table 2/3 "leakage" row.
func LossLeakageReason() LossReason { return core.LossLeakage }

// LossDelayWays returns the reason for a delay violation by n ways
// (1 <= n <= 4).
func LossDelayWays(n int) LossReason { return core.LossDelay1 + core.LossReason(n-1) }

// AllLossReasons lists the loss rows in table order.
func AllLossReasons() []LossReason { return core.LossReasons() }

// StudyConfig parameterises a yield study.
type StudyConfig struct {
	// Chips is the Monte Carlo population size (default 2000, the
	// paper's).
	Chips int
	// Seed drives all process-variation sampling (default 2006).
	Seed int64
	// Constraints selects the yield requirement (default Nominal()).
	Constraints *Constraints
	// Checkpoint enables periodic checkpointing of the population build
	// and, via its Resume field, continuation of an interrupted build
	// from a saved prefix. Nil adds nothing to the build's hot loop.
	Checkpoint *CheckpointConfig
	// Estimate arms streaming yield estimation on the build: snapshots
	// with confidence intervals reach Estimate.Sink while chips are
	// measured, the final one lands on Study.Estimate, and a positive
	// TargetCIWidth stops sampling early once the yield interval is
	// tight enough (the study's populations are then truncated to the
	// measured prefix). Its Constraints default to the study's. Nil
	// adds nothing to the build's hot loop.
	Estimate *EstimateConfig
}

// Study holds the two cache-organisation populations (regular and
// H-YAPD, built from identical variation draws) and the derived limits.
type Study struct {
	Regular    *core.Population
	Horizontal *core.Population
	Cons       Constraints
	Limits     Limits
	// Estimate is the final streaming yield estimate when
	// StudyConfig.Estimate armed estimation (nil otherwise). Its
	// EarlyStop field reports whether a precision target truncated the
	// build; the populations' chip counts reflect any truncation.
	Estimate *YieldEstimate
}

// NewStudy builds the Monte Carlo populations and derives the limits
// from the regular organisation, as in Section 5.1.
func NewStudy(cfg StudyConfig) *Study {
	s, err := NewStudyCtx(context.Background(), cfg)
	if err != nil {
		// Unreachable: a background context never cancels the build.
		panic(err)
	}
	return s
}

// NewStudyCtx is NewStudy with cancellation: the Monte Carlo population
// build aborts early and returns ctx.Err() when ctx is cancelled or its
// deadline passes. Servers use it to bound a study by a request timeout.
// When ctx carries an obs.Scope (yieldd's per-job telemetry), the
// study's phase spans and progress counters land on that scope instead
// of the process-global tracer.
func NewStudyCtx(ctx context.Context, cfg StudyConfig) (*Study, error) {
	sp := obs.StartSpanCtx(ctx, "new_study")
	defer sp.End()
	if cfg.Seed == 0 {
		cfg.Seed = 2006
	}
	cons := Nominal()
	if cfg.Constraints != nil {
		cons = *cfg.Constraints
	}
	pcfg := core.PopulationConfig{N: cfg.Chips, Seed: cfg.Seed, Checkpoint: cfg.Checkpoint}
	if cfg.Estimate != nil {
		// Work on a copy: the estimate classifies against the study's
		// constraints unless the caller pinned its own.
		ecfg := *cfg.Estimate
		if ecfg.Constraints == (Constraints{}) {
			ecfg.Constraints = cons
		}
		pcfg.Estimate = &ecfg
	}
	reg, hor, est, err := core.BuildPopulationPairEstimate(ctx, pcfg)
	if err != nil {
		return nil, err
	}
	lsp := obs.StartSpanCtx(ctx, "derive_limits")
	lim := core.DeriveLimits(reg, cons)
	lsp.End()
	return &Study{
		Regular:    reg,
		Horizontal: hor,
		Cons:       cons,
		Limits:     lim,
		Estimate:   est,
	}, nil
}

// Breakdown classifies the regular population's losses under a
// caller-chosen scheme set — Table 2 with custom columns. The yieldd
// study endpoint uses it to honour a request's scheme list.
func (s *Study) Breakdown(schemes ...Scheme) LossBreakdown {
	return core.BreakdownLosses(s.Regular, s.Limits, schemes...)
}

// BreakdownHorizontal classifies the horizontal-power-down population's
// losses under a caller-chosen scheme set — Table 3 with custom columns.
// Limits stay those of the regular organisation (see Table3).
func (s *Study) BreakdownHorizontal(schemes ...Scheme) LossBreakdown {
	return core.BreakdownLosses(s.Horizontal, s.Limits, schemes...)
}

// Totals evaluates the regular population under extra constraint sets
// with a caller-chosen scheme set — Table 4 with custom columns.
func (s *Study) Totals(cs []Constraints, schemes ...Scheme) []ConstraintTotals {
	return core.TotalsUnderConstraints(s.Regular, s.Regular, cs, schemes...)
}

// TotalsHorizontal evaluates the horizontal population under extra
// constraint sets — Table 5 with custom columns. Limits derive from the
// regular organisation, as everywhere.
func (s *Study) TotalsHorizontal(cs []Constraints, schemes ...Scheme) []ConstraintTotals {
	return core.TotalsUnderConstraints(s.Horizontal, s.Regular, cs, schemes...)
}

// Table2 returns the loss breakdown of the regular cache under YAPD,
// VACA and Hybrid.
func (s *Study) Table2() LossBreakdown {
	return s.Breakdown(core.YAPD{}, core.VACA{}, core.Hybrid{})
}

// Table3 returns the loss breakdown of the horizontal-power-down cache
// under H-YAPD, VACA and the horizontal Hybrid. Limits stay those of the
// regular organisation, so the 2.5% H-YAPD latency tax shows up as extra
// base losses, matching Section 5.1.
func (s *Study) Table3() LossBreakdown {
	return s.BreakdownHorizontal(core.HYAPD{}, core.VACA{}, core.Hybrid{Horizontal: true})
}

// Table4 returns total losses for the relaxed and strict constraint sets
// on the regular cache.
func (s *Study) Table4() []ConstraintTotals {
	return s.Totals([]Constraints{Relaxed(), Strict()},
		core.YAPD{}, core.VACA{}, core.Hybrid{})
}

// Table5 returns total losses for the relaxed and strict constraint sets
// on the horizontal-power-down cache.
func (s *Study) Table5() []ConstraintTotals {
	return s.TotalsHorizontal([]Constraints{Relaxed(), Strict()},
		core.HYAPD{}, core.VACA{}, core.Hybrid{Horizontal: true})
}

// Figure8 returns the latency-vs-normalised-leakage scatter of the
// regular population.
func (s *Study) Figure8() []ScatterPoint {
	return s.Regular.Scatter(s.Limits)
}

// SavedConfigurations returns the Table 6 row keys: the way-latency
// configurations of chips converted from loss to gain (by the Hybrid,
// which saves the union of what the schemes save), with frequencies.
func (s *Study) SavedConfigurations() []SavedConfig {
	return core.SavedConfigurations(s.Regular, s.Limits, core.Hybrid{})
}

// RenderBreakdown renders a LossBreakdown as the paper's Table 2/3
// layout.
func RenderBreakdown(title string, bd LossBreakdown) string {
	headers := []string{"Reason of Loss", "# Chips"}
	for _, s := range bd.Schemes {
		headers = append(headers, s.Scheme)
	}
	t := report.NewTable(title, headers...)
	for _, r := range core.LossReasons() {
		row := []interface{}{r.String(), bd.Base[r]}
		for _, s := range bd.Schemes {
			row = append(row, s.ByReason[r])
		}
		t.AddRow(row...)
	}
	total := []interface{}{"Total", bd.BaseTotal}
	for _, s := range bd.Schemes {
		total = append(total, s.Total)
	}
	t.AddRow(total...)
	return t.String()
}

// RenderTotals renders Tables 4/5.
func RenderTotals(title string, rows []ConstraintTotals) string {
	if len(rows) == 0 {
		return title + "\n(no rows)\n"
	}
	headers := []string{"Constraint", "# Chips"}
	for _, s := range rows[0].Schemes {
		headers = append(headers, s.Scheme)
	}
	t := report.NewTable(title, headers...)
	for _, r := range rows {
		row := []interface{}{r.Constraint.Name, r.Base}
		for _, s := range r.Schemes {
			row = append(row, s.Total)
		}
		t.AddRow(row...)
	}
	return t.String()
}

// RenderFigure8 renders the scatter plot as text; loss reasons get their
// own glyphs (l = leakage loss, d = delay loss, . = passing).
func RenderFigure8(pts []ScatterPoint, width, height int) string {
	rp := make([]report.Point, len(pts))
	for i, p := range pts {
		g := '.'
		switch {
		case p.Reason == core.LossLeakage:
			g = 'l'
		case p.Reason != core.LossNone:
			g = 'd'
		}
		rp[i] = report.Point{X: p.LatencyPS, Y: p.NormalizedLeakage, Glyph: g}
	}
	return report.Scatter(
		"Figure 8: normalized leakage vs cache latency (l=leakage loss, d=delay loss)",
		"latency [ps]", "leakage / average", rp, width, height)
}
