package yieldcache

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

func smallPerf() *PerfEvaluator {
	return NewPerfEvaluator(PerfConfig{Instructions: 40_000})
}

func TestConfigKeyNoCollisions(t *testing.T) {
	// Regression for the fmt.Sprint-based key: field boundaries must be
	// unambiguous, so distinct configurations that flatten to the same
	// digit stream still get distinct keys.
	type cfg struct {
		ways      []int
		hRegion   int
		predicted int
	}
	cases := []cfg{
		{nil, -1, 0},
		{[]int{}, -1, 0}, // empty slice must equal nil's key...
		{[]int{4, 4, 4, 4}, -1, 0},
		{[]int{4, 4, 4}, 4, -10}, // same digits as above, shifted across fields
		{[]int{4, 4, 44}, -1, 0},
		{[]int{44, 4, 4}, -1, 0},
		{[]int{5, 4, 4, 4}, -1, 0},
		{[]int{5, 4, 4, 4}, -1, 5},
		{[]int{5, 4, 4, 45}, -1, 0},
		{[]int{5, 4, 4}, 45, 0},
		{[]int{0, 4, 4, 4}, 0, 4},
		{[]int{0, 4, 4, 40}, 4, 0},
	}
	// ...so treat nil and empty as one config and require all other
	// pairs to differ.
	if configKey(cases[0].ways, -1, 0) != configKey(cases[1].ways, -1, 0) {
		t.Error("nil and empty wayCycles should share a key")
	}
	keys := make(map[string]cfg)
	for _, c := range cases[1:] {
		k := configKey(c.ways, c.hRegion, c.predicted)
		if prev, dup := keys[k]; dup {
			t.Errorf("collision: %+v and %+v both map to %q", prev, c, k)
		}
		keys[k] = c
	}
	// And the key is stable for identical inputs.
	if configKey([]int{5, 4}, 1, 2) != configKey([]int{5, 4}, 1, 2) {
		t.Error("key not deterministic")
	}
}

func TestPerfBenchmarks(t *testing.T) {
	e := smallPerf()
	if len(e.Benchmarks()) != 24 {
		t.Fatalf("suite size = %d", len(e.Benchmarks()))
	}
}

func TestDegradationsSignsAndCache(t *testing.T) {
	e := smallPerf()
	slow := CacheConfig{WayCycles: []int{5, 4, 4, 4}, HRegionOff: -1}
	d1 := e.Degradations(slow, 0)
	if len(d1) != 24 {
		t.Fatalf("degradations per benchmark = %d", len(d1))
	}
	pos := 0
	for _, v := range d1 {
		if v > 0 {
			pos++
		}
	}
	if pos < 20 {
		t.Errorf("a slow way should cost CPI on nearly every benchmark, positive on %d/24", pos)
	}
	// Evaluation is memoized: a second call must return identical values.
	d2 := e.Degradations(slow, 0)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("memoized degradations differ")
		}
	}
}

func TestAverageDegradationOrdering(t *testing.T) {
	e := smallPerf()
	one5 := e.AverageDegradation(CacheConfig{WayCycles: []int{5, 4, 4, 4}, HRegionOff: -1}, 0)
	two5 := e.AverageDegradation(CacheConfig{WayCycles: []int{5, 5, 4, 4}, HRegionOff: -1}, 0)
	all5 := e.AverageDegradation(CacheConfig{WayCycles: []int{5, 5, 5, 5}, HRegionOff: -1}, 0)
	if !(0 < one5 && one5 < two5 && two5 < all5) {
		t.Errorf("slow-way ordering violated: %v < %v < %v", one5, two5, all5)
	}
}

func TestNaiveBinningNumbers(t *testing.T) {
	e := smallPerf()
	p1, p2 := e.NaiveBinning()
	// Shape targets from Section 4.5: +1 cycle ~6.4%, +2 cycles ~12.6%,
	// the second roughly double the first.
	if p1 < 2 || p1 > 12 {
		t.Errorf("+1 cycle binning = %v%%, want the 6.4%% neighbourhood", p1)
	}
	if p2 < 1.6*p1 || p2 > 2.6*p1 {
		t.Errorf("+2 cycles (%v%%) should be roughly double +1 cycle (%v%%)", p2, p1)
	}
}

func TestFigure9Shape(t *testing.T) {
	e := smallPerf()
	f := e.Figure9()
	if len(f.Series["YAPD"]) != 24 || len(f.Series["VACA"]) != 24 {
		t.Fatal("figure series incomplete")
	}
	// Memory-bound mcf must be among the least VACA-sensitive, eon among
	// the most (the spread of Figure 9).
	idx := func(name string) int {
		for i, b := range f.Benchmarks {
			if b == name {
				return i
			}
		}
		t.Fatalf("benchmark %s missing", name)
		return -1
	}
	vaca := f.Series["VACA"]
	if vaca[idx("eon")] <= vaca[idx("mcf")] {
		t.Errorf("eon (%v) should suffer more from a 5-cycle way than mcf (%v)",
			vaca[idx("eon")], vaca[idx("mcf")])
	}
	out := RenderFigure(f, 40)
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "eon") {
		t.Error("figure rendering incomplete")
	}
}

func TestFigure10Shape(t *testing.T) {
	e := smallPerf()
	f := e.Figure10()
	if _, ok := f.Series["YAPD"]; ok {
		t.Error("YAPD cannot save a 2-2-0 chip; it has no Figure 10 series")
	}
	if len(f.Series["VACA"]) != 24 {
		t.Fatal("VACA series incomplete")
	}
}

func TestTable6EndToEnd(t *testing.T) {
	study := NewStudy(StudyConfig{Chips: 400, Seed: 2006})
	e := smallPerf()
	t6 := study.Table6(e)
	if len(t6.Rows) == 0 {
		t.Fatal("no saved configurations")
	}
	totalChips := 0
	for _, r := range t6.Rows {
		totalChips += r.Chips
		// Applicability rules of Table 6.
		if r.Key.N5+r.Key.N6 > 1 && r.YAPDOK {
			t.Errorf("YAPD cannot save %+v", r.Key)
		}
		if (r.Key.N6 > 0 || r.LeakageLimited) && r.VACAOK {
			t.Errorf("VACA cannot save %+v leak=%v", r.Key, r.LeakageLimited)
		}
		if r.Key.N6 > 1 && r.HybridOK {
			t.Errorf("Hybrid cannot save %+v", r.Key)
		}
		if r.HybridOK && r.Hybrid < 0 {
			t.Errorf("negative degradation for %+v", r.Key)
		}
	}
	if totalChips == 0 {
		t.Fatal("no chips in Table 6")
	}
	if t6.HybridSum <= 0 || t6.YAPDSum <= 0 || t6.VACASum <= 0 {
		t.Error("weighted sums missing")
	}
	// Paper ordering of the weighted sums: YAPD < Hybrid < VACA.
	if !(t6.YAPDSum < t6.VACASum) {
		t.Errorf("YAPD weighted sum (%v) should undercut VACA (%v)", t6.YAPDSum, t6.VACASum)
	}
	out := RenderTable6(t6)
	if !strings.Contains(out, "Weighted Sum") {
		t.Error("Table 6 rendering incomplete")
	}
}

// TestSuiteCPISingleflight pins the check-then-compute fix: concurrent
// Degradations calls for the same uncached configuration must coalesce
// onto one suite evaluation per distinct key instead of racing to
// recompute it.
func TestSuiteCPISingleflight(t *testing.T) {
	e := smallPerf()
	cfg := CacheConfig{WayCycles: []int{5, 4, 4, 4}, HRegionOff: -1}
	const callers = 16
	results := make([][]float64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.Degradations(cfg, 0)
		}(i)
	}
	wg.Wait()
	// Two distinct keys were needed: the baseline and the 5-cycle config.
	if got := e.computes.Load(); got != 2 {
		t.Errorf("suite computed %d times for 2 distinct keys across %d concurrent callers", got, callers)
	}
	for i := 1; i < callers; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("caller %d saw different degradations", i)
		}
	}
	// Warm calls stay cache hits.
	e.Degradations(cfg, 0)
	if got := e.computes.Load(); got != 2 {
		t.Errorf("warm call recomputed the suite (computes=%d)", got)
	}
}
