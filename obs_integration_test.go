package yieldcache

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"yieldcache/internal/obs"
)

// TestInstrumentedPipeline runs the yield pipeline with the metrics
// registry and tracer enabled, proving the instrumentation is
// concurrency-safe under the parallel population build and the
// PerfEvaluator's worker fan-out (the race detector covers this whole
// test under scripts/check.sh) and that the recorded numbers agree
// with the pipeline's own outputs.
func TestInstrumentedPipeline(t *testing.T) {
	reg := obs.Enable()
	tracer := obs.EnableTracing()
	defer obs.Disable()

	s := NewStudy(StudyConfig{Chips: 200, Seed: 2006})
	bd := s.Table2()

	if got := reg.Counter("core_chips_built_total").Value(); got != 400 {
		t.Errorf("chips built = %d, want 400 (200 regular + 200 H-YAPD)", got)
	}
	if got := reg.Counter("core_chips_classified_total").Value(); got != 200 {
		t.Errorf("chips classified = %d, want 200", got)
	}
	if got := reg.Counter("core_chips_lost_base_total").Value(); got != int64(bd.BaseTotal) {
		t.Errorf("lost counter = %d, Table 2 base total = %d", got, bd.BaseTotal)
	}
	for i, sch := range bd.Schemes {
		key := `core_scheme_lost_total{scheme="` + sch.Scheme + `"}`
		if got := reg.Counter(key).Value(); got != int64(sch.Total) {
			t.Errorf("%s = %d, Table 2 column %d = %d", key, got, i, sch.Total)
		}
	}

	e := NewPerfEvaluator(PerfConfig{Instructions: 20_000})
	cfg := CacheConfig{WayCycles: []int{5, 4, 4, 4}, HRegionOff: -1}
	e.AverageDegradation(cfg, 0) // baseline + config: two cache misses
	e.AverageDegradation(cfg, 0) // both memoized: two cache hits
	if got := reg.Counter("perf_config_cache_misses_total").Value(); got != 2 {
		t.Errorf("config-cache misses = %d, want 2", got)
	}
	if got := reg.Counter("perf_config_cache_hits_total").Value(); got != 2 {
		t.Errorf("config-cache hits = %d, want 2", got)
	}
	if got := reg.Histogram("perf_benchmark_cpi", nil).Count(); got != 48 {
		t.Errorf("CPI observations = %d, want 48 (2 sweeps × 24 benchmarks)", got)
	}
	if got := reg.Counter("cpu_instructions_total").Value(); got != 48*20_000 {
		t.Errorf("instructions simulated = %d, want %d", got, 48*20_000)
	}

	// Both encoders must produce well-formed output of the live registry.
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("metrics JSON invalid")
	}
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# TYPE core_chips_built_total counter") {
		t.Error("Prometheus exposition missing TYPE line")
	}

	// The trace must contain the pipeline phases and encode cleanly.
	sum := tracer.Summary()
	for _, phase := range []string{"new_study", "build_population", "breakdown_losses", "suite_cpi"} {
		if !strings.Contains(sum, phase) {
			t.Errorf("flame summary missing phase %q:\n%s", phase, sum)
		}
	}
	buf.Reset()
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("Chrome trace JSON invalid")
	}
}
