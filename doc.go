// Package yieldcache reproduces "Yield-Aware Cache Architectures"
// (Ozdemir, Sinha, Memik, Adams, Zhou — MICRO 2006): parametric-yield
// analysis of an L1 data cache under process variation, four
// yield-aware microarchitecture schemes (YAPD, H-YAPD, VACA, Hybrid),
// and the performance evaluation of the saved chips on an out-of-order
// processor model.
//
// The package is a facade over the internal substrates:
//
//   - internal/variation — Table 1 process parameters and the spatial
//     correlation-factor sampling of Section 3;
//   - internal/circuit — analytical device/interconnect models standing
//     in for HSPICE + 45 nm PTM;
//   - internal/sram — the 16 KB 4-way cache (4 banks/way, 64x128-bit
//     banks, split bitlines) evaluated into per-way latency and leakage;
//   - internal/core — yield constraints, loss classification and the
//     schemes themselves;
//   - internal/cpu — the 4-wide out-of-order core with load-bypass
//     buffers and selective replay (the SimpleScalar substitute);
//   - internal/workload — 24 synthetic SPEC2000 benchmark models.
//
// Typical use:
//
//	study := yieldcache.NewStudy(yieldcache.StudyConfig{})
//	t2 := study.Table2()                    // loss breakdown, regular cache
//	fmt.Println(yieldcache.RenderBreakdown("Table 2", t2))
//	perf := yieldcache.NewPerfEvaluator(yieldcache.PerfConfig{})
//	t6 := study.Table6(perf)                // CPI cost of saved chips
//
// Every experiment of the paper's evaluation (Tables 2-6, Figures 8-10,
// and the Section 4.5 naive-binning numbers) has a driver method here
// and a benchmark in bench_test.go; cmd/paper regenerates all of them.
package yieldcache
