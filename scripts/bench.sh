#!/usr/bin/env sh
# Performance snapshot: runs the headline benchmarks with -benchmem and
# writes a machine-readable summary (ns/op, B/op, allocs/op, and chips/s
# where the benchmark reports it) to $BENCH_OUT (default BENCH_pr10.json).
# After writing it, prints a per-benchmark delta table against the most
# recent other committed BENCH_*.json so regressions and wins are
# visible at a glance.
#
# Usage: [BENCH_OUT=FILE.json] scripts/bench.sh [benchtime] [micro-benchtime]
#   benchtime defaults to 3x; pass e.g. 10x or 2s for steadier numbers.
#   micro-benchtime (default 1s) drives the nanosecond-scale event-bus
#   benchmarks, which need many iterations for stable numbers.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
MICROTIME="${2:-1s}"
OUT="${BENCH_OUT:-BENCH_pr10.json}"
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench (benchtime=$BENCHTIME) =="
go test -run '^$' \
    -bench '^(BenchmarkPopulationBuild|BenchmarkPopulationBuildPair|BenchmarkPopulationBuildPairCheckpointed|BenchmarkEstimateArmed|BenchmarkMeasure|BenchmarkTable2|BenchmarkTable6|BenchmarkCPUSim|BenchmarkSweepDelta|BenchmarkSweepFullRebuild)$' \
    -benchtime "$BENCHTIME" -benchmem . | tee "$RAW"

echo "== event-bus hot-path benchmarks (benchtime=$MICROTIME) =="
go test -run '^$' \
    -bench '^(BenchmarkEventBusIdlePublish|BenchmarkScopeProgressIdleBus|BenchmarkEventBusPublishOneSubscriber)$' \
    -benchtime "$MICROTIME" -benchmem ./internal/obs/ | tee -a "$RAW"

awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; chips = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")    ns = $(i - 1)
        if ($(i) == "B/op")     bytes = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
        if ($(i) == "chips/s")  chips = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (chips != "")  printf ", \"chips_per_sec\": %s", chips
    printf "}"
}
END { print "\n}" }
' "$RAW" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"

# Delta table: compare against the most recently modified BENCH_*.json
# other than the one just written. Positive ns/op deltas are slower,
# positive chips/s deltas are faster.
PREV=$(ls -t BENCH_*.json 2>/dev/null | grep -vx "$OUT" | head -n 1 || true)
if [ -n "$PREV" ]; then
    echo ""
    echo "== delta vs $PREV =="
    awk -v prevfile="$PREV" '
    function parse(file, store,    line, name, m, kv) {
        while ((getline line < file) > 0) {
            if (!match(line, /"Benchmark[^"]+"/)) continue
            name = substr(line, RSTART + 1, RLENGTH - 2)
            line = substr(line, RSTART + RLENGTH)
            while (match(line, /"[a-z_]+": *[0-9.]+/)) {
                m = substr(line, RSTART, RLENGTH)
                split(m, kv, /": */)
                gsub(/"/, "", kv[1])
                store[name "." kv[1]] = kv[2]
                line = substr(line, RSTART + RLENGTH)
            }
        }
        close(file)
    }
    BEGIN {
        parse(prevfile, prev)
        parse(ARGV[1], cur)
        printf "%-42s %14s %14s %8s\n", "benchmark", "prev", "now", "delta"
        for (key in cur) {
            if (key !~ /\.ns_per_op$/) continue
            name = key; sub(/\.ns_per_op$/, "", name)
            if (names == "") names = name; else names = names "\n" name
        }
        nn = split(names, order, "\n")
        for (i = 1; i <= nn; i++) {
            for (j = i + 1; j <= nn; j++)
                if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
        }
        for (i = 1; i <= nn; i++) {
            name = order[i]
            row(name, "ns_per_op", "ns/op")
            row(name, "allocs_per_op", "allocs")
            row(name, "chips_per_sec", "chips/s")
        }
    }
    function row(name, field, unit,    p, c, d) {
        c = cur[name "." field]
        if (c == "") return
        p = prev[name "." field]
        if (p == "") { printf "%-42s %14s %14s %8s\n", name " " unit, "-", c, "new"; return }
        if (p + 0 == 0) d = "n/a"
        else d = sprintf("%+.1f%%", (c - p) / p * 100)
        printf "%-42s %14s %14s %8s\n", name " " unit, p, c, d
    }
    ' "$OUT"
fi
