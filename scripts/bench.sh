#!/usr/bin/env sh
# Performance snapshot: runs the headline benchmarks with -benchmem and
# writes a machine-readable summary (ns/op, B/op, allocs/op, and chips/s
# where the benchmark reports it) to $BENCH_OUT (default BENCH_pr3.json).
#
# Usage: [BENCH_OUT=FILE.json] scripts/bench.sh [benchtime] [micro-benchtime]
#   benchtime defaults to 3x; pass e.g. 10x or 2s for steadier numbers.
#   micro-benchtime (default 1s) drives the nanosecond-scale event-bus
#   benchmarks, which need many iterations for stable numbers.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
MICROTIME="${2:-1s}"
OUT="${BENCH_OUT:-BENCH_pr3.json}"
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench (benchtime=$BENCHTIME) =="
go test -run '^$' \
    -bench '^(BenchmarkPopulationBuild|BenchmarkPopulationBuildPair|BenchmarkPopulationBuildPairCheckpointed|BenchmarkMeasure|BenchmarkTable2|BenchmarkTable6|BenchmarkCPUSim)$' \
    -benchtime "$BENCHTIME" -benchmem . | tee "$RAW"

echo "== event-bus hot-path benchmarks (benchtime=$MICROTIME) =="
go test -run '^$' \
    -bench '^(BenchmarkEventBusIdlePublish|BenchmarkScopeProgressIdleBus|BenchmarkEventBusPublishOneSubscriber)$' \
    -benchtime "$MICROTIME" -benchmem ./internal/obs/ | tee -a "$RAW"

awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; chips = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")    ns = $(i - 1)
        if ($(i) == "B/op")     bytes = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
        if ($(i) == "chips/s")  chips = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (chips != "")  printf ", \"chips_per_sec\": %s", chips
    printf "}"
}
END { print "\n}" }
' "$RAW" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
