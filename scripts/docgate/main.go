// Command docgate is the documentation gate run by scripts/check.sh and
// CI. It enforces two invariants:
//
//  1. Every exported identifier of the root yieldcache package (types,
//     funcs, methods, const/var groups) carries a doc comment — the
//     facade is the public API, and godoc is its reference.
//  2. Every CLI flag shown in a fenced code block of README.md or
//     docs/*.md is actually defined by the command it is shown with, so
//     the documentation cannot drift from the flag definitions.
//
// Usage: go run ./scripts/docgate [repo-root]   (default ".")
//
// Exit status 1 with one line per violation when either check fails.
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkRootDocs(root)...)
	problems = append(problems, checkFlagSync(root)...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docgate: "+p)
		}
		fmt.Fprintf(os.Stderr, "docgate: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docgate: root-package godoc complete, docs flags in sync")
}

// checkRootDocs reports exported identifiers of the root package that
// lack doc comments.
func checkRootDocs(root string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, root, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("parsing root package: %v", err)}
	}
	astPkg, ok := pkgs["yieldcache"]
	if !ok {
		return []string{"root package yieldcache not found"}
	}
	d := doc.New(astPkg, "yieldcache", 0)

	var out []string
	report := func(kind, name string) {
		out = append(out, fmt.Sprintf("undocumented exported %s: %s", kind, name))
	}
	if d.Doc == "" {
		report("package", "yieldcache")
	}
	for _, f := range d.Funcs {
		if ast.IsExported(f.Name) && f.Doc == "" {
			report("func", f.Name)
		}
	}
	for _, t := range d.Types {
		if ast.IsExported(t.Name) && t.Doc == "" {
			report("type", t.Name)
		}
		for _, f := range t.Funcs {
			if ast.IsExported(f.Name) && f.Doc == "" {
				report("func", f.Name)
			}
		}
		for _, m := range t.Methods {
			if ast.IsExported(m.Name) && m.Doc == "" {
				report("method", t.Name+"."+m.Name)
			}
		}
		out = append(out, checkValueGroups(t.Consts, "const")...)
		out = append(out, checkValueGroups(t.Vars, "var")...)
	}
	out = append(out, checkValueGroups(d.Consts, "const")...)
	out = append(out, checkValueGroups(d.Vars, "var")...)
	sort.Strings(out)
	return out
}

// checkValueGroups reports const/var declaration groups with exported
// names where neither the group nor any spec carries a comment.
func checkValueGroups(values []*doc.Value, kind string) []string {
	var out []string
	for _, v := range values {
		if v.Doc != "" {
			continue
		}
		exported := ""
		for _, name := range v.Names {
			if ast.IsExported(name) {
				exported = name
				break
			}
		}
		if exported != "" {
			out = append(out, fmt.Sprintf("undocumented exported %s group: %s", kind, exported))
		}
	}
	return out
}

// flagCall maps flag-registration method names to the argument index of
// the flag-name string literal.
var flagCall = map[string]int{
	"Bool": 0, "Duration": 0, "Float64": 0, "Int": 0, "Int64": 0, "String": 0, "Uint": 0,
	"BoolVar": 1, "DurationVar": 1, "Float64Var": 1, "IntVar": 1, "Int64Var": 1, "StringVar": 1, "UintVar": 1,
}

// obsFlags are registered by obs.AddFlags and shared by the batch CLIs.
var obsFlags = []string{"metrics-out", "trace-out", "manifest-out", "pprof", "log-format"}

// commandFlags parses one command's main.go and returns the set of flag
// names it defines.
func commandFlags(mainPath string) (map[string]bool, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, mainPath, nil, 0)
	if err != nil {
		return nil, err
	}
	flags := make(map[string]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if recv, ok := sel.X.(*ast.Ident); ok && recv.Name == "obs" && sel.Sel.Name == "AddFlags" {
			for _, name := range obsFlags {
				flags[name] = true
			}
			return true
		}
		argIdx, ok := flagCall[sel.Sel.Name]
		if !ok || len(call.Args) <= argIdx {
			return true
		}
		if lit, ok := call.Args[argIdx].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if name, err := strconv.Unquote(lit.Value); err == nil {
				flags[name] = true
			}
		}
		return true
	})
	return flags, nil
}

var flagToken = regexp.MustCompile(`(?:^|[\s\[])-([a-z][a-z0-9-]*)`)

// checkFlagSync verifies that every -flag shown next to a command name
// inside a fenced code block of README.md or docs/*.md is defined by
// that command.
func checkFlagSync(root string) []string {
	cmdDirs, err := filepath.Glob(filepath.Join(root, "cmd", "*"))
	if err != nil || len(cmdDirs) == 0 {
		return []string{"no cmd/* directories found"}
	}
	defined := make(map[string]map[string]bool)
	for _, dir := range cmdDirs {
		name := filepath.Base(dir)
		flags, err := commandFlags(filepath.Join(dir, "main.go"))
		if err != nil {
			return []string{fmt.Sprintf("parsing %s: %v", dir, err)}
		}
		defined[name] = flags
	}

	docFiles, _ := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	docFiles = append(docFiles, filepath.Join(root, "README.md"))
	var out []string
	for _, path := range docFiles {
		data, err := os.ReadFile(path)
		if err != nil {
			out = append(out, fmt.Sprintf("reading %s: %v", path, err))
			continue
		}
		rel := strings.TrimPrefix(path, root+string(filepath.Separator))
		inCode := false
		for lineNo, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inCode = !inCode
				continue
			}
			if !inCode {
				continue
			}
			cmd := commandOnLine(line, defined)
			if cmd == "" {
				continue
			}
			for _, m := range flagToken.FindAllStringSubmatch(line, -1) {
				if !defined[cmd][m[1]] {
					out = append(out, fmt.Sprintf("%s:%d: flag -%s is not defined by cmd/%s",
						rel, lineNo+1, m[1], cmd))
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// commandOnLine returns the single command a code line refers to (via
// ./cmd/<name> or a usage line starting with <name>), or "" when none
// or several match — ambiguous lines are skipped rather than guessed.
func commandOnLine(line string, defined map[string]map[string]bool) string {
	trimmed := strings.TrimSpace(line)
	found := ""
	for name := range defined {
		if strings.Contains(line, "cmd/"+name) ||
			strings.HasPrefix(trimmed, name+" ") || trimmed == name {
			if found != "" {
				return ""
			}
			found = name
		}
	}
	return found
}
