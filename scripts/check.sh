#!/usr/bin/env sh
# Pre-merge gate: formatting, vet, the docs gate (godoc coverage of the
# facade + README/docs flag sync, see scripts/docgate), the full test
# suite under the race detector (the metrics registry, tracer and
# yieldd server must stay safe under the parallel population build),
# and the chaos-tagged storage fault-injection suite.
#
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== docs gate =="
go run ./scripts/docgate

echo "== go test -race =="
go test -race ./...

echo "== go test -race -tags chaos (storage fault injection) =="
go test -race -tags chaos ./internal/store/...

echo "check.sh: all green"
