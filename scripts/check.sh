#!/usr/bin/env sh
# Pre-merge gate: formatting, vet, and the full test suite under the
# race detector (the metrics registry and tracer must stay safe under
# the parallel population build and PerfEvaluator).
#
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "check.sh: all green"
