#!/usr/bin/env sh
# End-to-end smoke test for yieldd, run by CI after the unit suite:
# boot the server, wait for /healthz, run one tiny study, then verify
# the observability surface — the X-Job-Id correlation header, the
# finished job's state at /v1/jobs/{id}, a non-empty Chrome trace at
# /v1/jobs/{id}/trace, the SSE event streams (progress + terminal
# event), the runtime flight recorder at /v1/runtime/history, and the
# per-phase build histograms on /metrics. A second, store-backed boot
# then exercises the durability layer for real: Idempotency-Key replay,
# kill -9 mid-build, and a restart that must resume the interrupted job
# from its WAL checkpoint and finish with the same tables an
# uninterrupted build produces.
#
# Usage: scripts/smoke_yieldd.sh [port]   (default 18080)
set -eu

cd "$(dirname "$0")/.."

PORT="${1:-18080}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
PID=""

cleanup() {
    status=$?
    [ -n "$PID" ] && kill "$PID" 2>/dev/null && wait "$PID" 2>/dev/null
    if [ $status -ne 0 ] && [ -f "$TMP/yieldd.log" ]; then
        echo "--- yieldd log ---" >&2
        cat "$TMP/yieldd.log" >&2
    fi
    rm -rf "$TMP"
    exit $status
}
trap cleanup EXIT INT TERM

fail() {
    echo "smoke_yieldd: $*" >&2
    exit 1
}

echo "== build =="
go build -o "$TMP/yieldd" ./cmd/yieldd

echo "== boot =="
"$TMP/yieldd" -addr "127.0.0.1:$PORT" -log-format json >"$TMP/yieldd.log" 2>&1 &
PID=$!

i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ $i -ge 50 ] && fail "server did not become healthy within 10s"
    kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
    sleep 0.2
done
curl -sf "$BASE/healthz" | grep -q '"status": "ok"' || fail "/healthz not ok"

echo "== study =="
curl -sf -D "$TMP/headers" -o "$TMP/study.json" \
    -X POST "$BASE/v1/study" \
    -H 'Content-Type: application/json' \
    -d '{"chips": 40, "seed": 2006}' || fail "POST /v1/study failed"
grep -q '"cached": false' "$TMP/study.json" || fail "fresh study reported cached"
grep -q '"ci_low"' "$TMP/study.json" || fail "study response has no ci_low interval bound"
grep -q '"ci_high"' "$TMP/study.json" || fail "study response has no ci_high interval bound"
grep -q '"estimate"' "$TMP/study.json" || fail "study response has no final estimate block"

JOB="$(tr -d '\r' <"$TMP/headers" | awk 'tolower($1) == "x-job-id:" {print $2}')"
[ -n "$JOB" ] && echo "job: $JOB" || fail "study response carried no X-Job-Id header"

echo "== job introspection =="
curl -sf "$BASE/v1/jobs/$JOB" >"$TMP/job.json" || fail "GET /v1/jobs/$JOB failed"
grep -q '"state": "done"' "$TMP/job.json" || fail "job not done: $(cat "$TMP/job.json")"
grep -q '"chips_done": 40' "$TMP/job.json" || fail "job chips_done != 40: $(cat "$TMP/job.json")"
curl -sf "$BASE/v1/jobs" | grep -q "\"$JOB\"" || fail "job missing from /v1/jobs listing"

echo "== job trace =="
curl -sf "$BASE/v1/jobs/$JOB/trace" >"$TMP/trace.json" || fail "GET trace failed"
grep -q '"name":"build_population/pair"' "$TMP/trace.json" ||
    fail "trace has no build_population/pair span: $(cat "$TMP/trace.json")"
grep -q '"name":"queue_wait"' "$TMP/trace.json" || fail "trace has no queue_wait span"

echo "== sse job stream =="
# The job has finished, so the stream replays its state and closes on
# its own: a progress snapshot, the latest yield-estimate snapshot, and
# the terminal job_completed event.
curl -sfN -m 10 "$BASE/v1/jobs/$JOB/events" >"$TMP/stream.txt" || fail "GET job events failed"
grep -q '^event: job_progress$' "$TMP/stream.txt" ||
    fail "job stream has no progress event: $(cat "$TMP/stream.txt")"
grep -q '^event: job_estimate$' "$TMP/stream.txt" ||
    fail "job stream has no yield-estimate event: $(cat "$TMP/stream.txt")"
grep -q '^event: job_completed$' "$TMP/stream.txt" ||
    fail "job stream has no terminal event: $(cat "$TMP/stream.txt")"
grep -q '"done":40' "$TMP/stream.txt" || fail "stream progress lacks done=40"
grep -q '"ci_low"' "$TMP/stream.txt" || fail "estimate event lacks ci_low"
grep -q '"class":"ok"' "$TMP/stream.txt" || fail "terminal event lacks class ok"

echo "== job estimate endpoint =="
curl -sf "$BASE/v1/jobs/$JOB/estimate" >"$TMP/estimate.json" || fail "GET job estimate failed"
grep -q '"ci_low"' "$TMP/estimate.json" || fail "estimate endpoint has no ci_low"
grep -q '"half_width"' "$TMP/estimate.json" || fail "estimate endpoint has no half_width"

echo "== precision-targeted study =="
curl -sf -X POST "$BASE/v1/study" -H 'Content-Type: application/json' \
    -d '{"chips": 6000, "seed": 2006, "precision": {"target_ci_width": 0.05}}' \
    >"$TMP/precision.json" || fail "precision study failed"
grep -q '"early_stop": true' "$TMP/precision.json" ||
    fail "precision study did not stop early: $(head -c 400 "$TMP/precision.json")"

echo "== sse firehose =="
# Tail the live firehose while a second (different-seed) study runs;
# the stream stays open, so background it and grep with retries.
curl -sN -m 10 "$BASE/v1/events?types=job_admitted,job_progress,job_completed" \
    >"$TMP/firehose.txt" 2>/dev/null &
CURL_PID=$!
sleep 0.3
curl -sf -X POST "$BASE/v1/study" -H 'Content-Type: application/json' \
    -d '{"chips": 40, "seed": 7}' >/dev/null || fail "second study failed"
i=0
until grep -q '^event: job_completed$' "$TMP/firehose.txt" 2>/dev/null; do
    i=$((i + 1))
    [ $i -ge 50 ] && fail "firehose never saw job_completed: $(cat "$TMP/firehose.txt")"
    sleep 0.2
done
kill "$CURL_PID" 2>/dev/null || true
wait "$CURL_PID" 2>/dev/null || true
grep -q '^event: job_admitted$' "$TMP/firehose.txt" || fail "firehose missing job_admitted"
if grep -q '^event: cache_hit$' "$TMP/firehose.txt"; then
    fail "type filter leaked a cache_hit event"
fi

echo "== runtime history =="
curl -sf "$BASE/v1/runtime/history" >"$TMP/runtime.json" || fail "GET runtime history failed"
grep -q '"goroutines":' "$TMP/runtime.json" || fail "runtime history has no samples"
grep -q '"server_workers_busy"' "$TMP/runtime.json" || fail "runtime history lacks server gauges"

echo "== metrics =="
curl -sf "$BASE/metrics" >"$TMP/metrics.prom" || fail "GET /metrics failed"
grep -q 'server_build_phase_seconds_count{phase="build_population/pair"}' "$TMP/metrics.prom" ||
    fail "/metrics missing per-phase build histogram"
grep -q 'server_queue_wait_seconds_count' "$TMP/metrics.prom" ||
    fail "/metrics missing queue-wait histogram"
grep -q 'server_requests_total{class="ok"}' "$TMP/metrics.prom" ||
    fail "/metrics missing error-taxonomy request counter"
grep -q '^runtime_goroutines ' "$TMP/metrics.prom" ||
    fail "/metrics missing flight-recorder runtime gauges"
grep -q '^build_chips_per_second ' "$TMP/metrics.prom" ||
    fail "/metrics missing build_chips_per_second EWMA gauge"
grep -q '^estimate_yield ' "$TMP/metrics.prom" ||
    fail "/metrics missing estimate_yield gauge"
grep -q '^estimate_half_width ' "$TMP/metrics.prom" ||
    fail "/metrics missing estimate_half_width gauge"

echo "== structured logs =="
grep -q "\"job\":\"$JOB\"" "$TMP/yieldd.log" || fail "no JSON log line carries the job id"

echo "== sweep (scenarios/smoke.json) =="
# Watch the firehose for per-config sweep events while the smoke
# scenario runs for the first time.
curl -sN -m 10 "$BASE/v1/events?types=sweep_config,job_completed" \
    >"$TMP/sweepevents.txt" 2>/dev/null &
CURL_PID=$!
sleep 0.3
curl -sf -D "$TMP/sweep.h" -o "$TMP/sweep.json" \
    -X POST "$BASE/v1/sweep" \
    -H 'Content-Type: application/json' \
    -d @scenarios/smoke.json || fail "POST /v1/sweep failed"
grep -q '"configs": 2' "$TMP/sweep.json" || fail "smoke sweep did not resolve 2 configs"
grep -q '"delta_builds": 1' "$TMP/sweep.json" || fail "smoke sweep reports no delta build"
grep -q '"frontiers"' "$TMP/sweep.json" || fail "sweep response has no frontiers"
grep -q '"revenue_per_wafer"' "$TMP/sweep.json" || fail "sweep economics missing"
SWEEP_JOB="$(tr -d '\r' <"$TMP/sweep.h" | awk 'tolower($1) == "x-job-id:" {print $2}')"
[ -n "$SWEEP_JOB" ] || fail "sweep response carried no X-Job-Id header"
curl -sf "$BASE/v1/jobs/$SWEEP_JOB" | grep -q '"kind": "sweep"' ||
    fail "sweep job not marked kind=sweep in /v1/jobs/$SWEEP_JOB"
i=0
until grep -q '^event: sweep_config$' "$TMP/sweepevents.txt" 2>/dev/null; do
    i=$((i + 1))
    [ $i -ge 50 ] && fail "firehose never saw a sweep_config event: $(cat "$TMP/sweepevents.txt")"
    sleep 0.2
done
kill "$CURL_PID" 2>/dev/null || true
wait "$CURL_PID" 2>/dev/null || true
curl -sf -X POST "$BASE/v1/sweep" -H 'Content-Type: application/json' \
    -d @scenarios/smoke.json | grep -q '"cached": true' || fail "sweep replay not cached"

echo "== scenario corpus =="
for f in scenarios/*.json; do
    curl -sf -X POST "$BASE/v1/sweep" -H 'Content-Type: application/json' \
        -d @"$f" >"$TMP/scenario.json" || fail "scenario $f failed"
    grep -q '"frontiers"' "$TMP/scenario.json" || fail "scenario $f returned no frontiers"
    echo "scenario $f ok"
done

# --- durability: the crash-recovery path -----------------------------
# Reference tables from the ephemeral server above: the big study the
# durable server will crash out of and resume must end with these.
CRASH_STUDY='{"chips": 6000, "seed": 2006}'
echo "== reference build (uninterrupted) =="
curl -sf -X POST "$BASE/v1/study" -H 'Content-Type: application/json' \
    -d "$CRASH_STUDY" >"$TMP/reference.json" || fail "reference study failed"
REF_TOTALS="$(grep -o '"base_total": [0-9]*' "$TMP/reference.json")"
[ -n "$REF_TOTALS" ] || fail "reference study has no base totals"

kill "$PID" 2>/dev/null && wait "$PID" 2>/dev/null
PID=""

echo "== durable boot (-store file) =="
DATA="$TMP/data"
start_durable() {
    "$TMP/yieldd" -addr "127.0.0.1:$PORT" -log-format json \
        -store file -data-dir "$DATA" -checkpoint-interval 10ms \
        >>"$TMP/yieldd.log" 2>&1 &
    PID=$!
    i=0
    until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ $i -ge 50 ] && fail "durable server did not become healthy within 10s"
        kill -0 "$PID" 2>/dev/null || fail "durable server exited during startup"
        sleep 0.2
    done
}
start_durable

echo "== idempotency replay =="
curl -sf -D "$TMP/idem1.h" -X POST "$BASE/v1/study" \
    -H 'Content-Type: application/json' -H 'Idempotency-Key: smoke-key' \
    -d '{"chips": 40, "seed": 2006}' >/dev/null || fail "idempotent study failed"
curl -sf -D "$TMP/idem2.h" -X POST "$BASE/v1/study" \
    -H 'Content-Type: application/json' -H 'Idempotency-Key: smoke-key' \
    -d '{"chips": 40, "seed": 2006}' >/dev/null || fail "idempotent retry failed"
tr -d '\r' <"$TMP/idem2.h" | grep -qi '^idempotency-replayed: true' ||
    fail "idempotent retry not replayed"
CONFLICT=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/study" \
    -H 'Content-Type: application/json' -H 'Idempotency-Key: smoke-key' \
    -d '{"chips": 41, "seed": 2006}')
[ "$CONFLICT" = "409" ] || fail "key reuse with different body returned $CONFLICT, want 409"

echo "== kill -9 mid-build =="
curl -s -X POST "$BASE/v1/study" -H 'Content-Type: application/json' \
    -d "$CRASH_STUDY" >/dev/null 2>&1 &
i=0
until [ -n "$(find "$DATA/checkpoints" -name '*.ckpt' 2>/dev/null)" ]; do
    i=$((i + 1))
    [ $i -ge 100 ] && fail "no checkpoint landed within 10s of starting the build"
    sleep 0.1
done
CRASH_JOB="$(find "$DATA/checkpoints" -name '*.ckpt' | head -1 | xargs basename | sed 's/\.ckpt$//')"
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null || true
PID=""
echo "killed mid-build; job $CRASH_JOB checkpointed"

echo "== restart and resume =="
start_durable
i=0
until curl -sf "$BASE/v1/jobs/$CRASH_JOB" 2>/dev/null | grep -q '"state": "done"'; do
    i=$((i + 1))
    [ $i -ge 150 ] && fail "job $CRASH_JOB did not finish after restart: $(curl -s "$BASE/v1/jobs/$CRASH_JOB")"
    sleep 0.2
done
curl -sf "$BASE/v1/jobs/$CRASH_JOB" >"$TMP/resumed.json"
grep -q '"resumed": true' "$TMP/resumed.json" || fail "job not marked resumed: $(cat "$TMP/resumed.json")"
grep -q '"restarts": 1' "$TMP/resumed.json" || fail "job restarts != 1: $(cat "$TMP/resumed.json")"
grep -q "job_resumed" "$TMP/yieldd.log" || grep -q "job resumed from store" "$TMP/yieldd.log" ||
    fail "restart logged no resume"

echo "== resumed tables match the uninterrupted build =="
curl -sf -X POST "$BASE/v1/study" -H 'Content-Type: application/json' \
    -d "$CRASH_STUDY" >"$TMP/resumed_study.json" || fail "post-resume study failed"
grep -q '"cached": true' "$TMP/resumed_study.json" || fail "resumed result not cached"
GOT_TOTALS="$(grep -o '"base_total": [0-9]*' "$TMP/resumed_study.json")"
[ "$GOT_TOTALS" = "$REF_TOTALS" ] ||
    fail "resumed tables differ from reference: got [$GOT_TOTALS] want [$REF_TOTALS]"

echo "smoke_yieldd: all green"
