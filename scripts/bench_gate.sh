#!/usr/bin/env sh
# Bench smoke tolerance gate: runs the pair-build benchmark and fails
# if its chips/s throughput drops more than $BENCH_GATE_TOLERANCE
# percent (default 10) below the figure recorded in the most recently
# modified committed BENCH_*.json. This catches data-layout or hot-loop
# regressions that the correctness suite cannot see, while a generous
# tolerance absorbs ordinary runner noise.
#
# Usage: [BENCH_GATE_TOLERANCE=pct] [BENCH_GATE_BASELINE=FILE.json] \
#   scripts/bench_gate.sh [benchtime]
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
TOL="${BENCH_GATE_TOLERANCE:-10}"
BASE="${BENCH_GATE_BASELINE:-}"
if [ -z "$BASE" ]; then
    BASE=$(ls -t BENCH_*.json 2>/dev/null | head -n 1 || true)
fi
if [ -z "$BASE" ] || [ ! -f "$BASE" ]; then
    echo "bench_gate: no committed BENCH_*.json baseline; skipping gate"
    exit 0
fi

WANT=$(awk '
    /"BenchmarkPopulationBuildPair"/ {
        if (match($0, /"chips_per_sec": *[0-9.]+/)) {
            v = substr($0, RSTART, RLENGTH)
            sub(/.*: */, "", v)
            print v
        }
    }
' "$BASE")
if [ -z "$WANT" ]; then
    echo "bench_gate: $BASE has no pair-build chips_per_sec; skipping gate"
    exit 0
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT
go test -run '^$' -bench '^BenchmarkPopulationBuildPair$' \
    -benchtime "$BENCHTIME" -benchmem . | tee "$RAW"

GOT=$(awk '$1 ~ /^BenchmarkPopulationBuildPair/ {
    for (i = 2; i <= NF; i++) if ($(i) == "chips/s") print $(i - 1)
}' "$RAW")
if [ -z "$GOT" ]; then
    echo "bench_gate: benchmark did not report chips/s" >&2
    exit 1
fi

awk -v got="$GOT" -v want="$WANT" -v tol="$TOL" -v base="$BASE" '
BEGIN {
    floor = want * (1 - tol / 100)
    printf "bench_gate: pair build %.0f chips/s vs %.0f in %s (floor %.0f, tolerance %s%%)\n",
        got, want, base, floor, tol
    if (got < floor) {
        printf "bench_gate: FAIL — throughput dropped more than %s%%\n", tol
        exit 1
    }
    print "bench_gate: OK"
}'
