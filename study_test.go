package yieldcache

import (
	"strings"
	"testing"
)

// smallStudy builds a reduced population so the facade tests stay fast;
// the statistical assertions below are on coarse properties that hold at
// this size.
func smallStudy(t *testing.T) *Study {
	t.Helper()
	return NewStudy(StudyConfig{Chips: 400, Seed: 2006})
}

func TestStudyDefaults(t *testing.T) {
	s := NewStudy(StudyConfig{Chips: 50})
	if len(s.Regular.Chips) != 50 || len(s.Horizontal.Chips) != 50 {
		t.Fatal("population sizes wrong")
	}
	if s.Cons.Name != "nominal" {
		t.Errorf("default constraints = %s", s.Cons.Name)
	}
	if s.Limits.DelayPS <= 0 || s.Limits.LeakageW <= 0 {
		t.Error("limits not derived")
	}
}

func TestStudyDeterminism(t *testing.T) {
	a := NewStudy(StudyConfig{Chips: 60, Seed: 7})
	b := NewStudy(StudyConfig{Chips: 60, Seed: 7})
	if a.Limits != b.Limits {
		t.Error("same seed produced different limits")
	}
	ta, tb := a.Table2(), b.Table2()
	if ta.BaseTotal != tb.BaseTotal {
		t.Error("same seed produced different loss totals")
	}
}

func TestTable2Shape(t *testing.T) {
	s := smallStudy(t)
	bd := s.Table2()
	if bd.N != 400 {
		t.Fatalf("N = %d", bd.N)
	}
	if bd.BaseTotal == 0 {
		t.Fatal("no base losses at nominal constraints — population or limits broken")
	}
	// Base loss fraction should be in the paper's neighbourhood (16.9%):
	// allow a wide band for the small population.
	frac := float64(bd.BaseTotal) / float64(bd.N)
	if frac < 0.08 || frac > 0.30 {
		t.Errorf("base loss fraction = %v, want roughly 0.17", frac)
	}
	if len(bd.Schemes) != 3 {
		t.Fatalf("expected YAPD/VACA/Hybrid columns, got %d", len(bd.Schemes))
	}
	yapd, vaca, hybrid := bd.Schemes[0], bd.Schemes[1], bd.Schemes[2]
	if yapd.Scheme != "YAPD" || vaca.Scheme != "VACA" || hybrid.Scheme != "Hybrid" {
		t.Fatalf("scheme order wrong: %s %s %s", yapd.Scheme, vaca.Scheme, hybrid.Scheme)
	}
	// The paper's structural facts: YAPD nullifies all 1-way delay
	// losses; VACA leaves all leakage losses; Hybrid loses no more than
	// either ingredient in any category.
	if yapd.ByReason[LossDelayWays(1)] != 0 {
		t.Error("YAPD should nullify single-way delay losses")
	}
	if vaca.ByReason[LossLeakageReason()] != bd.Base[LossLeakageReason()] {
		t.Error("VACA cannot fix leakage losses")
	}
	for _, r := range AllLossReasons() {
		if hybrid.ByReason[r] > yapd.ByReason[r] || hybrid.ByReason[r] > vaca.ByReason[r] {
			t.Errorf("Hybrid lost more than an ingredient in %v", r)
		}
	}
	if !(hybrid.Total <= yapd.Total && hybrid.Total <= vaca.Total) {
		t.Error("Hybrid should dominate both schemes in total")
	}
}

func TestTable3BaseWorseThanTable2(t *testing.T) {
	s := smallStudy(t)
	t2, t3 := s.Table2(), s.Table3()
	// The H-YAPD organisation pays 2.5% latency against the same limits,
	// so its base case must lose at least as many chips (Section 5.1).
	if t3.BaseTotal < t2.BaseTotal {
		t.Errorf("horizontal base losses (%d) below regular (%d)", t3.BaseTotal, t2.BaseTotal)
	}
	if t3.Schemes[2].Scheme != "Hybrid(H)" {
		t.Errorf("third column = %s", t3.Schemes[2].Scheme)
	}
	// H-YAPD nullifies the bulk (>=75%) of single-way delay losses.
	one := LossDelayWays(1)
	if base := t3.Base[one]; base > 0 {
		saved := base - t3.Schemes[0].ByReason[one]
		if float64(saved)/float64(base) < 0.75 {
			t.Errorf("H-YAPD saved only %d of %d single-way losses", saved, base)
		}
	}
}

func TestTables4And5Ordering(t *testing.T) {
	s := smallStudy(t)
	for _, rows := range [][]ConstraintTotals{s.Table4(), s.Table5()} {
		if len(rows) != 2 {
			t.Fatalf("want relaxed+strict rows, got %d", len(rows))
		}
		relaxed, strict := rows[0], rows[1]
		if relaxed.Constraint.Name != "relaxed" || strict.Constraint.Name != "strict" {
			t.Fatal("row order wrong")
		}
		if relaxed.Base >= strict.Base {
			t.Errorf("relaxed losses (%d) should be below strict (%d)", relaxed.Base, strict.Base)
		}
		for _, row := range rows {
			hybrid := row.Schemes[len(row.Schemes)-1]
			for _, sc := range row.Schemes {
				if hybrid.Total > sc.Total {
					t.Errorf("%s: Hybrid (%d) lost more than %s (%d)",
						row.Constraint.Name, hybrid.Total, sc.Scheme, sc.Total)
				}
			}
		}
	}
}

func TestFigure8Points(t *testing.T) {
	s := smallStudy(t)
	pts := s.Figure8()
	if len(pts) != 400 {
		t.Fatalf("points = %d", len(pts))
	}
	loss := 0
	for _, p := range pts {
		if p.Reason != LossNoneReason() {
			loss++
		}
	}
	bd := s.Table2()
	if loss != bd.BaseTotal {
		t.Errorf("scatter losses (%d) disagree with Table 2 (%d)", loss, bd.BaseTotal)
	}
	out := RenderFigure8(pts, 60, 20)
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "l") {
		t.Error("figure rendering incomplete")
	}
}

func TestRenderFigure8EmptyPopulation(t *testing.T) {
	// An empty population must render a clear placeholder, not panic or
	// divide by zero.
	out := RenderFigure8(nil, 72, 24)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty Figure 8 should say 'no data':\n%s", out)
	}
	out = RenderFigure8([]ScatterPoint{}, 72, 24)
	if !strings.Contains(out, "no data") {
		t.Errorf("zero-point Figure 8 should say 'no data':\n%s", out)
	}
}

func TestSavedConfigurationsConsistentWithHybrid(t *testing.T) {
	s := smallStudy(t)
	rows := s.SavedConfigurations()
	total := 0
	for _, r := range rows {
		if r.Chips <= 0 {
			t.Errorf("row %+v has non-positive count", r.Key)
		}
		if r.Key.N4+r.Key.N5+r.Key.N6 != 4 {
			t.Errorf("row %+v does not describe 4 ways", r.Key)
		}
		total += r.Chips
	}
	bd := s.Table2()
	hybrid := bd.Schemes[2]
	if want := bd.BaseTotal - hybrid.Total; total != want {
		t.Errorf("saved-config total = %d, want base-hybrid losses %d", total, want)
	}
}

func TestRenderBreakdown(t *testing.T) {
	s := smallStudy(t)
	out := RenderBreakdown("Table 2", s.Table2())
	for _, want := range []string{"Leakage Constraint", "Delay Constraint (1 Way)", "Total", "YAPD", "VACA", "Hybrid"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
	tots := RenderTotals("Table 4", s.Table4())
	if !strings.Contains(tots, "relaxed") || !strings.Contains(tots, "strict") {
		t.Error("totals rendering incomplete")
	}
}
