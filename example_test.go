package yieldcache_test

import (
	"fmt"

	"yieldcache"
)

// The basic flow: build a population, classify losses, apply a scheme.
func Example() {
	study := yieldcache.NewStudy(yieldcache.StudyConfig{Chips: 500, Seed: 2006})
	bd := study.Table2()
	fmt.Printf("chips: %d\n", bd.N)
	fmt.Printf("base losses exceed scheme losses: %v\n", bd.BaseTotal > bd.Schemes[2].Total)
	fmt.Printf("YAPD zeroes 1-way delay losses: %v\n",
		bd.Schemes[0].ByReason[yieldcache.LossDelayWays(1)] == 0)
	// Output:
	// chips: 500
	// base losses exceed scheme losses: true
	// YAPD zeroes 1-way delay losses: true
}

// Constraint sets reproduce the paper's relaxed and strict analyses.
func ExampleConstraints() {
	n := yieldcache.Nominal()
	r := yieldcache.Relaxed()
	s := yieldcache.Strict()
	fmt.Printf("%s: mean+%.1f sigma, %gx leakage\n", n.Name, n.DelaySigmaK, n.LeakageMult)
	fmt.Printf("%s: mean+%.1f sigma, %gx leakage\n", r.Name, r.DelaySigmaK, r.LeakageMult)
	fmt.Printf("%s: mean+%.1f sigma, %gx leakage\n", s.Name, s.DelaySigmaK, s.LeakageMult)
	// Output:
	// nominal: mean+1.0 sigma, 3x leakage
	// relaxed: mean+1.5 sigma, 4x leakage
	// strict: mean+0.5 sigma, 2x leakage
}

// Schemes can be applied chip by chip for custom analyses.
func ExampleScheme() {
	study := yieldcache.NewStudy(yieldcache.StudyConfig{Chips: 200, Seed: 2006})
	hybrid := yieldcache.SchemeHybrid(false)
	saved := 0
	for _, chip := range study.Regular.Chips {
		if hybrid.Apply(chip.Meas, study.Limits).Saved {
			saved++
		}
	}
	fmt.Printf("hybrid sells most of the 200 chips: %v\n", saved > 180)
	// Output:
	// hybrid sells most of the 200 chips: true
}

// The cost model prices degraded parts on a performance-indexed curve.
func ExampleCostModel() {
	m := yieldcache.DefaultCostModel()
	fmt.Printf("full-spec: $%.2f\n", m.UnitPrice(0))
	fmt.Printf("2%% slower: $%.2f\n", m.UnitPrice(2))
	// Output:
	// full-spec: $60.00
	// 2% slower: $56.40
}
