package yieldcache_test

import (
	"context"
	"fmt"

	"yieldcache"
)

// The basic flow: build a population, classify losses, apply a scheme.
func Example() {
	study := yieldcache.NewStudy(yieldcache.StudyConfig{Chips: 500, Seed: 2006})
	bd := study.Table2()
	fmt.Printf("chips: %d\n", bd.N)
	fmt.Printf("base losses exceed scheme losses: %v\n", bd.BaseTotal > bd.Schemes[2].Total)
	fmt.Printf("YAPD zeroes 1-way delay losses: %v\n",
		bd.Schemes[0].ByReason[yieldcache.LossDelayWays(1)] == 0)
	// Output:
	// chips: 500
	// base losses exceed scheme losses: true
	// YAPD zeroes 1-way delay losses: true
}

// Constraint sets reproduce the paper's relaxed and strict analyses.
func ExampleConstraints() {
	n := yieldcache.Nominal()
	r := yieldcache.Relaxed()
	s := yieldcache.Strict()
	fmt.Printf("%s: mean+%.1f sigma, %gx leakage\n", n.Name, n.DelaySigmaK, n.LeakageMult)
	fmt.Printf("%s: mean+%.1f sigma, %gx leakage\n", r.Name, r.DelaySigmaK, r.LeakageMult)
	fmt.Printf("%s: mean+%.1f sigma, %gx leakage\n", s.Name, s.DelaySigmaK, s.LeakageMult)
	// Output:
	// nominal: mean+1.0 sigma, 3x leakage
	// relaxed: mean+1.5 sigma, 4x leakage
	// strict: mean+0.5 sigma, 2x leakage
}

// Schemes can be applied chip by chip for custom analyses.
func ExampleScheme() {
	study := yieldcache.NewStudy(yieldcache.StudyConfig{Chips: 200, Seed: 2006})
	hybrid := yieldcache.SchemeHybrid(false)
	saved := 0
	for _, chip := range study.Regular.Chips {
		if hybrid.Apply(chip.Meas, study.Limits).Saved {
			saved++
		}
	}
	fmt.Printf("hybrid sells most of the 200 chips: %v\n", saved > 180)
	// Output:
	// hybrid sells most of the 200 chips: true
}

// Table 6 prices each saved-chip configuration in CPI. A small
// population and short traces keep the example fast; the relations it
// checks hold at paper scale too.
func ExampleStudy_Table6() {
	study := yieldcache.NewStudy(yieldcache.StudyConfig{Chips: 300, Seed: 2006})
	eval := yieldcache.NewPerfEvaluator(yieldcache.PerfConfig{Instructions: 20_000})
	t6 := study.Table6(eval)
	fmt.Printf("has configuration rows: %v\n", len(t6.Rows) > 0)
	fmt.Printf("hybrid no costlier than pure binning: %v\n", t6.HybridSum <= t6.VACASum)
	fmt.Printf("all degradations are losses, not gains: %v\n",
		t6.YAPDSum >= 0 && t6.VACASum >= 0 && t6.HybridSum >= 0)
	// Output:
	// has configuration rows: true
	// hybrid no costlier than pure binning: true
	// all degradations are losses, not gains: true
}

// NewStudyCtx threads a context into the Monte Carlo build, so servers
// and batch drivers can abort long population builds.
func ExampleNewStudyCtx() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // abort before the build starts
	_, err := yieldcache.NewStudyCtx(ctx, yieldcache.StudyConfig{Chips: 2000})
	fmt.Println(err)
	// Output:
	// context canceled
}

// A minimal design-space sweep: one technology axis, three grid
// points. The planner builds the first (origin) config from scratch
// and delta-evaluates the neighbours over the same retained draws —
// every config bit-identical to a standalone full build — then reduces
// the evaluations to one Pareto frontier per scheme.
func ExampleRunSweepCtx() {
	res, err := yieldcache.RunSweepCtx(context.Background(), yieldcache.SweepSpec{
		N: 200, Seed: 2006,
		Axes: []yieldcache.TechAxis{
			{Param: "vdd", Values: []float64{1.1, 1.08, 1.05}},
		},
	}, yieldcache.SweepOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("configs: %d\n", res.Stats.Configs)
	fmt.Printf("full builds: %d, delta builds: %d\n",
		res.Stats.FullBuilds, res.Stats.DeltaBuilds)
	fmt.Printf("first config: %s\n", res.Evals[0].Config.Label())
	fmt.Printf("hybrid frontier non-empty: %v\n", len(res.Frontiers["Hybrid"]) > 0)
	// Output:
	// configs: 3
	// full builds: 1, delta builds: 2
	// first config: vdd=1.1 nominal
	// hybrid frontier non-empty: true
}

// The cost model prices degraded parts on a performance-indexed curve.
func ExampleCostModel() {
	m := yieldcache.DefaultCostModel()
	fmt.Printf("full-spec: $%.2f\n", m.UnitPrice(0))
	fmt.Printf("2%% slower: $%.2f\n", m.UnitPrice(2))
	// Output:
	// full-spec: $60.00
	// 2% slower: $56.40
}
