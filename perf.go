package yieldcache

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"yieldcache/internal/core"
	"yieldcache/internal/cpu"
	"yieldcache/internal/obs"
	"yieldcache/internal/report"
	"yieldcache/internal/stats"
	"yieldcache/internal/workload"
)

// PerfConfig parameterises the CPI evaluation.
type PerfConfig struct {
	// Instructions per benchmark run (default 300k; the paper runs 100M
	// on SimpleScalar — the synthetic traces converge much faster).
	Instructions int
	// Seed drives the trace generators.
	Seed int64
}

// PerfEvaluator prices cache configurations in CPI over the SPEC2000
// suite. Identical configurations are evaluated once and cached; a
// per-key singleflight guard makes that "once" hold under concurrency.
type PerfEvaluator struct {
	cfg PerfConfig

	mu       sync.Mutex
	cache    map[string][]float64 // config key -> per-benchmark CPI
	inflight map[string]*perfCall // config key -> in-progress evaluation
	computes atomic.Int64         // suite evaluations actually run (tests)
	names    []string
}

// perfCall is one in-progress suite evaluation; latecomers for the same
// key wait on done instead of recomputing.
type perfCall struct {
	done chan struct{}
	cpis []float64
}

// NewPerfEvaluator returns an evaluator over the full 24-benchmark
// suite.
func NewPerfEvaluator(cfg PerfConfig) *PerfEvaluator {
	if cfg.Instructions == 0 {
		cfg.Instructions = 300_000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &PerfEvaluator{
		cfg:      cfg,
		cache:    make(map[string][]float64),
		inflight: make(map[string]*perfCall),
		names:    workload.Names(),
	}
}

// Benchmarks returns the benchmark names in evaluation order.
func (e *PerfEvaluator) Benchmarks() []string { return e.names }

// configKey encodes a cache configuration unambiguously: each field is
// separated by a delimiter that cannot appear inside a number, so no
// two distinct (wayCycles, hRegion, predicted) triples share a key.
// (fmt.Sprint's space-joined form left field boundaries ambiguous.)
func configKey(wayCycles []int, hRegion, predicted int) string {
	var b strings.Builder
	for i, c := range wayCycles {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(hRegion))
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(predicted))
	return b.String()
}

// suiteCPI returns the per-benchmark CPI of the given L1D configuration,
// evaluating the whole suite in parallel on first use. Concurrent calls
// for the same uncached key coalesce onto one evaluation: the first
// caller computes, latecomers block on its completion — without this
// guard every concurrent miss ran the full 24-benchmark suite.
func (e *PerfEvaluator) suiteCPI(wayCycles []int, hRegion, predicted int) []float64 {
	key := configKey(wayCycles, hRegion, predicted)
	e.mu.Lock()
	if got, ok := e.cache[key]; ok {
		e.mu.Unlock()
		obs.C("perf_config_cache_hits_total").Inc()
		return got
	}
	if call, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		obs.C("perf_config_cache_coalesced_total").Inc()
		<-call.done
		return call.cpis
	}
	call := &perfCall{done: make(chan struct{})}
	e.inflight[key] = call
	e.mu.Unlock()
	obs.C("perf_config_cache_misses_total").Inc()
	e.computes.Add(1)

	sp := obs.StartSpan("suite_cpi " + key)
	defer sp.End()
	runSec := obs.H("perf_benchmark_run_seconds", obs.ExpBuckets(1e-3, 4, 10))
	cpiHist := obs.H("perf_benchmark_cpi", obs.LinearBuckets(0.5, 0.25, 14))

	suite := workload.SPEC2000()
	cpis := make([]float64, len(suite))
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			ws := sp.Worker("cpi_runs", start)
			for i := start; i < len(suite); i += workers {
				cfg := cpu.DefaultConfig().WithL1D(wayCycles, hRegion, predicted)
				gen := workload.NewGenerator(suite[i], e.cfg.Seed)
				t0 := time.Now()
				cpis[i] = cpu.Run(gen, e.cfg.Instructions, cfg).CPI
				runSec.Observe(time.Since(t0).Seconds())
				cpiHist.Observe(cpis[i])
			}
			ws.End()
		}(w)
	}
	wg.Wait()

	e.mu.Lock()
	e.cache[key] = cpis
	delete(e.inflight, key)
	e.mu.Unlock()
	call.cpis = cpis
	close(call.done)
	return cpis
}

// baselineCPI is the unmodified 4-cycle 4-way cache.
func (e *PerfEvaluator) baselineCPI() []float64 {
	return e.suiteCPI(nil, -1, 0)
}

// Degradations returns the per-benchmark CPI increase (percent) of a
// cache configuration relative to the unmodified cache.
func (e *PerfEvaluator) Degradations(cfg CacheConfig, predicted int) []float64 {
	way := cfg.WayCycles
	if len(way) == 0 {
		way = nil
	}
	base := e.baselineCPI()
	cur := e.suiteCPI(way, cfg.HRegionOff, predicted)
	out := make([]float64, len(base))
	for i := range base {
		out[i] = (cur[i]/base[i] - 1) * 100
	}
	return out
}

// AverageDegradation returns the suite-average CPI increase (percent).
func (e *PerfEvaluator) AverageDegradation(cfg CacheConfig, predicted int) float64 {
	return stats.Mean(e.Degradations(cfg, predicted))
}

// Table6Row is one row of Table 6: a way-latency configuration, how many
// saved chips exhibit it, and each scheme's CPI cost for it (NaN-free:
// Applicable reports N/A).
type Table6Row struct {
	Key            core.ConfigKey
	LeakageLimited bool
	Chips          int
	YAPD           float64
	YAPDOK         bool
	VACA           float64
	VACAOK         bool
	Hybrid         float64
	HybridOK       bool
}

// Table6 combines the yield study's saved-chip configurations with the
// CPI evaluator, reproducing Table 6 including the weighted-sum bottom
// row.
type Table6 struct {
	Rows []Table6Row
	// Weighted sums over saved chips, percent CPI increase.
	YAPDSum, VACASum, HybridSum float64
}

// Table6 evaluates the performance cost of every saved configuration.
// Rows reuse scheme-effective configurations heavily (every YAPD row is
// the same 3-way cache, the VACA rows collapse to a handful of
// way-cycle vectors), so the distinct set is deduplicated and evaluated
// in parallel up front; the row loop then reads cache hits.
func (s *Study) Table6(e *PerfEvaluator) Table6 {
	sp := obs.StartSpan("table6_cpi")
	defer sp.End()
	rows := s.SavedConfigurations()
	out := Table6{}

	// Scheme-effective configurations per row.
	threeWay := CacheConfig{WayCycles: []int{0, 4, 4, 4}, HRegionOff: -1}

	distinct := map[string]CacheConfig{}
	need := func(cfg CacheConfig) {
		distinct[configKey(cfg.WayCycles, cfg.HRegionOff, 0)] = cfg
	}
	for _, r := range rows {
		if r.Key.N5+r.Key.N6 <= 1 {
			need(threeWay)
		}
		if r.Key.N6 == 0 && !r.LeakageLimited {
			need(vacaConfig(r.Key.N5, 4))
		}
		switch {
		case r.LeakageLimited && r.Key.N5 == 0 && r.Key.N6 == 0:
			need(threeWay)
		case r.Key.N6 == 1:
			need(vacaConfig(r.Key.N5, 3))
		}
	}
	var wg sync.WaitGroup
	for _, cfg := range distinct {
		wg.Add(1)
		go func(cfg CacheConfig) {
			defer wg.Done()
			// Warms the config's suite CPI (and, via singleflight, the
			// shared baseline) into the evaluator cache.
			e.Degradations(cfg, 0)
		}(cfg)
	}
	wg.Wait()

	for _, r := range rows {
		row := Table6Row{Key: r.Key, LeakageLimited: r.LeakageLimited, Chips: r.Chips}

		// YAPD: applicable when at most one way is slow (it gets turned
		// off) or the chip is leakage-limited; result is always a 3-way
		// 4-cycle cache.
		if r.Key.N5+r.Key.N6 <= 1 {
			row.YAPD = e.AverageDegradation(threeWay, 0)
			row.YAPDOK = true
		}

		// VACA: applicable when nothing needs more than 5 cycles and the
		// chip is not leakage-limited; all ways stay on.
		if r.Key.N6 == 0 && !r.LeakageLimited {
			row.VACA = e.AverageDegradation(vacaConfig(r.Key.N5, 4), 0)
			row.VACAOK = true
		}

		// Hybrid: keeps ways on when possible (VACA behaviour), turns off
		// a single 6-cycle way, or the leakiest way on leakage limits.
		switch {
		case r.LeakageLimited && r.Key.N5 == 0 && r.Key.N6 == 0:
			row.Hybrid = e.AverageDegradation(threeWay, 0)
			row.HybridOK = true
		case r.Key.N6 == 0 && !r.LeakageLimited:
			row.Hybrid = row.VACA
			row.HybridOK = row.VACAOK
		case r.Key.N6 == 1:
			row.Hybrid = e.AverageDegradation(vacaConfig(r.Key.N5, 3), 0)
			row.HybridOK = true
		}
		out.Rows = append(out.Rows, row)
	}

	var yw, yv, vw, vv, hw, hv float64
	for _, r := range out.Rows {
		if r.YAPDOK {
			yw += float64(r.Chips)
			yv += float64(r.Chips) * r.YAPD
		}
		if r.VACAOK {
			vw += float64(r.Chips)
			vv += float64(r.Chips) * r.VACA
		}
		if r.HybridOK {
			hw += float64(r.Chips)
			hv += float64(r.Chips) * r.Hybrid
		}
	}
	if yw > 0 {
		out.YAPDSum = yv / yw
	}
	if vw > 0 {
		out.VACASum = vv / vw
	}
	if hw > 0 {
		out.HybridSum = hv / hw
	}
	return out
}

// vacaConfig builds a configuration with `ways` enabled ways, of which
// n5 run at 5 cycles and the rest at 4 (remaining ways disabled).
func vacaConfig(n5, ways int) CacheConfig {
	cfg := CacheConfig{WayCycles: make([]int, 4), HRegionOff: -1}
	w := 0
	for i := 0; i < n5 && w < ways; i++ {
		cfg.WayCycles[w] = 5
		w++
	}
	for w < ways {
		cfg.WayCycles[w] = 4
		w++
	}
	return cfg
}

// RenderTable6 renders the Table 6 layout.
func RenderTable6(t6 Table6) string {
	t := report.NewTable("Table 6: CPI degradation of saved cache configurations",
		"4cyc", "5cyc", "6+cyc", "Limited by", "Chips", "YAPD[%]", "VACA[%]", "Hybrid[%]")
	fmtCol := func(v float64, ok bool) string {
		if !ok {
			return "N/A"
		}
		return fmt.Sprintf("%.2f", v)
	}
	for _, r := range t6.Rows {
		lim := "delay"
		if r.LeakageLimited {
			lim = "leakage"
		}
		t.AddRow(r.Key.N4, r.Key.N5, r.Key.N6, lim, r.Chips,
			fmtCol(r.YAPD, r.YAPDOK), fmtCol(r.VACA, r.VACAOK), fmtCol(r.Hybrid, r.HybridOK))
	}
	t.AddRow("", "", "", "Weighted Sum", "",
		fmt.Sprintf("%.2f", t6.YAPDSum), fmt.Sprintf("%.2f", t6.VACASum), fmt.Sprintf("%.2f", t6.HybridSum))
	return t.String()
}

// FigureSeries is a per-benchmark CPI-increase series (Figures 9/10).
type FigureSeries struct {
	Title      string
	Benchmarks []string
	Series     map[string][]float64 // scheme name -> per-benchmark %
}

// Figure9 returns the per-benchmark CPI increase for configuration
// 3-1-0 under YAPD (way off) and VACA (5-cycle way kept on; the Hybrid
// behaves identically here, Section 5.2).
func (e *PerfEvaluator) Figure9() FigureSeries {
	return FigureSeries{
		Title:      "Figure 9: CPI increase, cache configuration 3-1-0",
		Benchmarks: e.Benchmarks(),
		Series: map[string][]float64{
			"YAPD": e.Degradations(CacheConfig{WayCycles: []int{0, 4, 4, 4}, HRegionOff: -1}, 0),
			"VACA": e.Degradations(CacheConfig{WayCycles: []int{5, 4, 4, 4}, HRegionOff: -1}, 0),
		},
	}
}

// Figure10 returns the per-benchmark CPI increase for configuration
// 2-2-0 under VACA (YAPD cannot save it).
func (e *PerfEvaluator) Figure10() FigureSeries {
	return FigureSeries{
		Title:      "Figure 10: CPI increase, cache configuration 2-2-0",
		Benchmarks: e.Benchmarks(),
		Series: map[string][]float64{
			"VACA": e.Degradations(CacheConfig{WayCycles: []int{5, 5, 4, 4}, HRegionOff: -1}, 0),
		},
	}
}

// NaiveBinning returns the Section 4.5 numbers: the suite-average CPI
// increase when all loads take one and two extra cycles (the scheduler
// expecting the slower latency, so no bypass buffers are involved).
func (e *PerfEvaluator) NaiveBinning() (plusOne, plusTwo float64) {
	plusOne = e.AverageDegradation(CacheConfig{WayCycles: []int{5, 5, 5, 5}, HRegionOff: -1}, 5)
	plusTwo = e.AverageDegradation(CacheConfig{WayCycles: []int{6, 6, 6, 6}, HRegionOff: -1}, 6)
	return
}

// RenderFigure renders a FigureSeries as labelled text bars.
func RenderFigure(f FigureSeries, width int) string {
	out := f.Title + "\n"
	schemes := make([]string, 0, len(f.Series))
	for name := range f.Series {
		schemes = append(schemes, name)
	}
	sort.Strings(schemes)
	maxV := 0.0
	for _, vs := range f.Series {
		for _, v := range vs {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for _, name := range schemes {
		out += report.Series(name, f.Benchmarks, f.Series[name], maxV, width)
	}
	return out
}
